// Package parseq is a scalable sequence-data analysis framework: a Go
// reproduction of "Removing Sequential Bottlenecks in Analysis of
// Next-Generation Sequencing Data" (Wang, Ozer, Agrawal, Huang — IPPS
// 2014).
//
// The framework has two components. The sequence data format converter
// turns SAM/BAM datasets into SAM, BED, BEDGRAPH, FASTA, FASTQ, JSON or
// YAML with shared-memory parallelism, through three converter instances:
//
//   - ConvertSAM — the SAM format converter (Algorithm 1 byte
//     partitioning with line-breaker adjustment);
//   - PreprocessBAM + ConvertBAMX — the BAM format converter (sequential
//     preprocessing into the fixed-stride BAMX format plus a BAIX index,
//     then embarrassingly parallel conversion, including partial
//     conversion of a chromosome region);
//   - ConvertSAMPreprocessed — the preprocessing-optimized SAM format
//     converter (parallel SAM→BAMX preprocessing, then BAMX conversion).
//
// The statistical analysis component parallelises 1-D non-local means
// denoising of coverage histograms (Denoise, DenoiseParallel) and false
// discovery rate computation (FDR, FDRParallel — Algorithm 2's fused
// single-synchronisation reduction).
//
// Everything underneath is built from scratch on the standard library:
// SAM/BAM codecs, BGZF block compression, the UCSC-binning BAI index,
// the BAMX/BAIX formats, an in-process MPI-style runtime, a synthetic
// NGS dataset generator, and the experiment harness that regenerates the
// paper's Table I and Figures 6-12.
package parseq

import (
	"io"

	"parseq/internal/conv"
	"parseq/internal/experiments"
	"parseq/internal/fdr"
	"parseq/internal/flagstat"
	"parseq/internal/formats"
	"parseq/internal/formats/pamx"
	"parseq/internal/hist"
	"parseq/internal/mpi"
	"parseq/internal/nlmeans"
	"parseq/internal/peaks"
	"parseq/internal/sam"
	"parseq/internal/simdata"
	"parseq/internal/sorter"
)

// Options configures a conversion. See the field documentation in the
// converter runtime.
type Options = conv.Options

// Region selects a chromosome region (1-based, inclusive) for partial
// conversion.
type Region = conv.Region

// Result reports a completed conversion: per-rank target files plus
// counters and phase timings.
type Result = conv.Result

// Stats holds a conversion's counters and timings.
type Stats = conv.Stats

// PreprocessResult reports a preprocessing phase: the generated BAMX and
// BAIX files.
type PreprocessResult = conv.PreprocessResult

// ParseRegion parses "chr1", "chr1:100-200" or "chr1:100-".
func ParseRegion(s string) (Region, error) { return conv.ParseRegion(s) }

// Formats lists the supported target formats.
func Formats() []string { return formats.Names() }

// FormatEncoder is the "user program" interface: one conversion function
// from an alignment object to a target object, with partitioning,
// concurrency and file management handled by the runtime.
type FormatEncoder = formats.Encoder

// RegisterFormat adds a user-supplied target format to every converter —
// the paper's extensibility mechanism. See examples/customformat.
func RegisterFormat(name string, factory func() FormatEncoder) error {
	return formats.Register(name, factory)
}

// ConvertSAM runs the SAM format converter: Algorithm 1 partitions the
// file into opts.Cores line-aligned byte ranges, and each rank converts
// its partition into a separate target file with no communication.
func ConvertSAM(samPath string, opts Options) (*Result, error) {
	return conv.ConvertSAM(samPath, opts)
}

// ConvertBAMSequential converts a BAM file record-at-a-time on one core
// (the "without preprocessing" configuration of Table I).
func ConvertBAMSequential(bamPath string, opts Options) (*Result, error) {
	return conv.ConvertBAMSequential(bamPath, opts)
}

// PreprocessBAM runs the BAM converter's sequential preprocessing phase:
// BAM in, fixed-stride BAMX plus BAIX index out. The cost is paid once
// and amortised over any number of parallel conversions.
func PreprocessBAM(bamPath, bamxPath, baixPath string) (*PreprocessResult, error) {
	return conv.PreprocessBAMFile(bamPath, bamxPath, baixPath)
}

// PreprocessBAMWorkers is PreprocessBAM with BGZF block inflation
// pipelined over codecWorkers goroutines. The record scan itself stays
// sequential — the BAM format forces that — but the codec underneath it
// parallelises, which is where most of the preprocessing time goes.
func PreprocessBAMWorkers(bamPath, bamxPath, baixPath string, codecWorkers int) (*PreprocessResult, error) {
	return conv.PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, codecWorkers)
}

// ConvertBAM is the complete BAM format converter: sequential
// preprocessing into a temporary BAMX/BAIX pair under opts.OutDir, then
// parallel conversion. PreprocessTime reports the sequential phase
// separately.
func ConvertBAM(bamPath string, opts Options) (*Result, error) {
	return conv.ConvertBAM(bamPath, opts)
}

// ConvertBAMX runs the parallel conversion phase over a BAMX file.
// With opts.Region set, the BAIX index maps the region to a contiguous
// record range first (partial conversion); baixPath may be empty to
// rebuild the index by scanning.
func ConvertBAMX(bamxPath, baixPath string, opts Options) (*Result, error) {
	return conv.ConvertBAMX(bamxPath, baixPath, opts)
}

// PreprocessSAM runs the preprocessing-optimized SAM converter's parallel
// preprocessing: the SAM input becomes `cores` BAMX files with BAIX
// indices, one per rank.
func PreprocessSAM(samPath, outDir, prefix string, cores int) (*PreprocessResult, error) {
	return conv.PreprocessSAMParallel(samPath, outDir, prefix, cores)
}

// PreprocessSAMLaunch is PreprocessSAM with an explicit rank launcher —
// pass a distributed world's launcher (mpiflag / internal/mpinet) to
// preprocess across processes; nil selects the in-process runtime.
func PreprocessSAMLaunch(samPath, outDir, prefix string, cores int, launch mpi.Launcher) (*PreprocessResult, error) {
	return conv.PreprocessSAMParallelLaunch(samPath, outDir, prefix, cores, 0, launch)
}

// ConvertPreprocessed converts previously generated BAMX shards.
func ConvertPreprocessed(bamxFiles, baixFiles []string, opts Options) (*Result, error) {
	return conv.ConvertPreprocessed(bamxFiles, baixFiles, opts)
}

// ConvertSAMPreprocessed is the complete preprocessing-optimized SAM
// format converter: parallel SAM→BAMX preprocessing with preCores ranks,
// then parallel conversion with opts.Cores ranks.
func ConvertSAMPreprocessed(samPath string, preCores int, opts Options) (*Result, error) {
	return conv.ConvertSAMPreprocessed(samPath, preCores, opts)
}

// ConvertSAMToBAM converts a SAM file into per-rank BAM shards in
// parallel (the converter's binary-target path).
func ConvertSAMToBAM(samPath string, opts Options) (*Result, error) {
	return conv.ConvertSAMToBAM(samPath, opts)
}

// MergeBAMShards fuses per-rank BAM shards into one BAM file.
func MergeBAMShards(shardPaths []string, outPath string) (int64, error) {
	return conv.MergeBAMShards(shardPaths, outPath)
}

// MergeBAMShardsWorkers is MergeBAMShards with codecWorkers BGZF
// goroutines on both the shard decode and the fused encode.
func MergeBAMShardsWorkers(shardPaths []string, outPath string, codecWorkers int) (int64, error) {
	return conv.MergeBAMShardsWorkers(shardPaths, outPath, codecWorkers)
}

// CompressBAMX rewrites a plain BAMX file as the block-compressed BAMZ
// variant (the paper's Section VII compression extension), preserving
// record indices so existing BAIX indices keep working.
func CompressBAMX(bamxPath, bamzPath string, recsPerBlock int) (int64, error) {
	return conv.CompressBAMXFile(bamxPath, bamzPath, recsPerBlock)
}

// CompressBAMXWorkers is CompressBAMX with block deflation fanned out
// over `workers` goroutines; the output is byte-identical.
func CompressBAMXWorkers(bamxPath, bamzPath string, recsPerBlock, workers int) (int64, error) {
	return conv.CompressBAMXFileWorkers(bamxPath, bamzPath, recsPerBlock, workers)
}

// ConvertBAMZ is ConvertBAMX for compressed BAMX files: each rank
// decompresses only the blocks its record range touches.
func ConvertBAMZ(bamzPath, baixPath string, opts Options) (*Result, error) {
	return conv.ConvertBAMZ(bamzPath, baixPath, opts)
}

// PAMXOptions tunes the columnar PAMX writer: codec worker count (0
// attaches to the shared BGZF pool) and column-group cut thresholds.
type PAMXOptions = pamx.Options

// PAMXFields selects the columns a PAMX reader inflates; see the
// pamx.Field* constants re-exported by internal analyses.
type PAMXFields = pamx.Fields

// ConvertBAMToPAMX rewrites a BAM file as columnar PAMX: per-field
// streams compressed independently into coordinate-sharded column
// groups, so later analyses inflate only the fields they project.
func ConvertBAMToPAMX(bamPath, pamxPath string, opts PAMXOptions) (int64, error) {
	return pamx.FromBAM(bamPath, pamxPath, opts)
}

// ConvertBAMXToPAMX rewrites a fixed-stride BAMX file as columnar PAMX.
func ConvertBAMXToPAMX(bamxPath, pamxPath string, opts PAMXOptions) (int64, error) {
	return pamx.FromBAMX(bamxPath, pamxPath, opts)
}

// ConvertPAMXToBAM converts a PAMX file back into BAM with the full
// projection; the output is byte-identical to a sequential BAM rewrite
// of the original input at any codec worker count.
func ConvertPAMXToBAM(pamxPath, bamPath string, opts PAMXOptions) (int64, error) {
	return pamx.ToBAM(pamxPath, bamPath, opts)
}

// NLMeansParams are the non-local means parameters: search radius R,
// half patch size L and filtering parameter Sigma.
type NLMeansParams = nlmeans.Params

// Denoise runs sequential 1-D NL-means over a histogram.
func Denoise(histogram []float64, p NLMeansParams) ([]float64, error) {
	return nlmeans.Denoise(histogram, p)
}

// DenoiseParallel runs NL-means with `cores` parallel workers; the result
// is bit-identical to Denoise.
func DenoiseParallel(histogram []float64, p NLMeansParams, cores int) ([]float64, error) {
	return nlmeans.DenoiseParallel(histogram, p, cores)
}

// DenoiseDistributed runs the paper's halo-replication strategy on the
// in-process message-passing runtime with `ranks` ranks.
func DenoiseDistributed(histogram []float64, p NLMeansParams, ranks int) ([]float64, error) {
	var out []float64
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		v, err := nlmeans.DenoiseDistributed(c, histogram, p)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = v
		}
		return nil
	})
	return out, err
}

// FDR computes the false discovery rate FDR(pt) for one histogram and B
// simulation datasets with the fused single-pass reduction.
func FDR(histogram []float64, sims [][]float64, pt float64) (float64, error) {
	return fdr.Fused(histogram, sims, pt)
}

// FDRParallel computes FDR(pt) with Algorithm 2 on `ranks` ranks of the
// message-passing runtime: bin-direction partitioning, concurrent
// numerator/denominator local sums, one global synchronisation.
func FDRParallel(histogram []float64, sims [][]float64, pt float64, ranks int) (float64, error) {
	var out float64
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		v, err := fdr.ParallelFused(c, histogram, sims, pt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = v
		}
		return nil
	})
	return out, err
}

// FDRSweep evaluates FDR over several candidate thresholds.
func FDRSweep(histogram []float64, sims [][]float64, thresholds []float64) ([]float64, error) {
	return fdr.Sweep(histogram, sims, thresholds)
}

// DatasetConfig controls synthetic dataset generation.
type DatasetConfig = simdata.Config

// Dataset is a generated synthetic dataset.
type Dataset = simdata.Dataset

// DefaultDatasetConfig mirrors the paper's dataset shape (paired-end
// 90 bp Illumina-style reads over mouse-like chromosomes) at the given
// record count.
func DefaultDatasetConfig(numReads int) DatasetConfig {
	return simdata.DefaultConfig(numReads)
}

// GenerateDataset builds a deterministic synthetic dataset.
func GenerateDataset(cfg DatasetConfig) *Dataset { return simdata.Generate(cfg) }

// GenerateHistogram builds a synthetic binned coverage histogram with
// enriched regions, the statistical module's input.
func GenerateHistogram(bins int, seed int64) []float64 {
	return simdata.Histogram(bins, seed)
}

// GenerateSimulations builds B random-background simulation datasets for
// the FDR computation.
func GenerateSimulations(b, bins int, seed int64) [][]float64 {
	return simdata.Simulations(b, bins, seed)
}

// Histogram is a binned coverage track over one reference.
type Histogram = hist.Histogram

// Coverage accumulates alignment records into a coverage histogram for
// one reference sequence.
func Coverage(recs []sam.Record, header *sam.Header, rname string, binSize int) (*Histogram, error) {
	return hist.Coverage(recs, header, rname, binSize)
}

// CoverageParallel builds a coverage histogram directly from a SAM file
// with `cores` ranks (Algorithm 1 partitioning plus a gather-reduce) —
// the paper's parallel histogram-construction step.
func CoverageParallel(samPath, rname string, binSize, cores int) (*Histogram, error) {
	return hist.FromSAMParallel(samPath, rname, binSize, cores)
}

// FlagstatStats are samtools-flagstat-style dataset counters.
type FlagstatStats = flagstat.Stats

// Flagstat computes summary statistics over a SAM file with `cores`
// parallel ranks.
func Flagstat(samPath string, cores int) (FlagstatStats, error) {
	return flagstat.SAMFile(samPath, cores)
}

// SortOptions tunes the coordinate sorter.
type SortOptions = sorter.Options

// SortSAMToBAM coordinate-sorts a SAM file into BAM via a parallel
// external merge sort, preparing it for indexing and partial conversion.
func SortSAMToBAM(samPath, outPath string, opts SortOptions) (int64, error) {
	return sorter.SortSAMToBAM(samPath, outPath, opts)
}

// SortBAM coordinate-sorts a BAM file into a new BAM file.
func SortBAM(bamPath, outPath string, opts SortOptions) (int64, error) {
	return sorter.SortBAM(bamPath, outPath, opts)
}

// Peak is one enriched region in bin coordinates.
type Peak = peaks.Peak

// PeakOptions tunes peak calling.
type PeakOptions = peaks.Options

// CallPeaks selects an FDR-minimising threshold from the candidates and
// returns the enriched regions of the histogram, completing the
// denoise → FDR → region-selection pipeline.
func CallPeaks(histogram []float64, sims [][]float64, candidates []float64,
	opts PeakOptions) ([]Peak, float64, float64, error) {
	return peaks.CallWithFDR(histogram, sims, candidates, opts)
}

// ExperimentScale sets the workload sizes the paper experiments run at.
type ExperimentScale = experiments.Scale

// DefaultExperimentScale sizes the experiments for a few-minute full run.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// Experiments lists the reproducible paper experiments (table1, fig6..fig12).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure and prints it to w.
func RunExperiment(w io.Writer, id string, sc ExperimentScale) error {
	rep, err := experiments.Run(id, sc)
	if err != nil {
		return err
	}
	return rep.Print(w)
}

// RunAllExperiments regenerates every paper table and figure.
func RunAllExperiments(w io.Writer, sc ExperimentScale) error {
	return experiments.PrintAll(w, sc)
}
