// End-to-end pipeline: every stage of the framework on one dataset.
// Raw unsorted alignments are coordinate-sorted, summarised, preprocessed
// into the indexed BAMX form, compressed, partially converted, and
// finally analysed statistically — the full workflow the paper's two
// components enable.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"parseq"
)

func main() {
	dir, err := os.MkdirTemp("", "parseq-pipeline-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	step := stepper{}

	// Raw data: unsorted, as an aligner would emit it.
	cfg := parseq.DefaultDatasetConfig(30000)
	cfg.Sorted = false
	dataset := parseq.GenerateDataset(cfg)
	rawSAM := filepath.Join(dir, "raw.sam")
	f, err := os.Create(rawSAM)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteSAM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	step.done("generated %d unsorted alignments → %s", len(dataset.Records), rawSAM)

	// 1. Parallel dataset summary.
	stats, err := parseq.Flagstat(rawSAM, 4)
	if err != nil {
		log.Fatal(err)
	}
	step.done("flagstat: %d records, %d mapped, %d properly paired",
		stats.Total, stats.Mapped, stats.ProperlyPaired)

	// 2. Coordinate sort (external merge sort, parallel chunk sorting).
	sorted := filepath.Join(dir, "sorted.bam")
	n, err := parseq.SortSAMToBAM(rawSAM, sorted, parseq.SortOptions{
		ChunkRecords: 8192, Cores: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	step.done("sorted %d records → %s", n, sorted)

	// 3. Preprocess into the indexed fixed-stride BAMX form and compress.
	bamx := filepath.Join(dir, "sorted.bamx")
	baix := filepath.Join(dir, "sorted.baix")
	pre, err := parseq.PreprocessBAM(sorted, bamx, baix)
	if err != nil {
		log.Fatal(err)
	}
	bamz := filepath.Join(dir, "sorted.bamz")
	if _, err := parseq.CompressBAMX(bamx, bamz, 512); err != nil {
		log.Fatal(err)
	}
	xi, _ := os.Stat(bamx)
	zi, _ := os.Stat(bamz)
	step.done("preprocessed %d indexed alignments; BAMX %d B, compressed BAMZ %d B (%.0f%%)",
		pre.Records, xi.Size(), zi.Size(), 100*float64(zi.Size())/float64(xi.Size()))

	// 4. Partial conversion of one region from the compressed file.
	region, err := parseq.ParseRegion("chr1:1-80000")
	if err != nil {
		log.Fatal(err)
	}
	res, err := parseq.ConvertBAMZ(bamz, baix, parseq.Options{
		Format: "fastq", Cores: 4, OutDir: dir, OutPrefix: "region",
		Region: &region,
	})
	if err != nil {
		log.Fatal(err)
	}
	step.done("extracted %s: %d reads as FASTQ across %d rank files",
		region.String(), res.Stats.Emitted, len(res.Files))

	// 5. Parallel coverage histogram, NL-means denoising, peak calling.
	cov, err := parseq.CoverageParallel(rawSAM, "chr1", 25, 4)
	if err != nil {
		log.Fatal(err)
	}
	histogram := make([]float64, len(cov.Bins))
	enrich := parseq.GenerateHistogram(len(cov.Bins), 9)
	for i := range histogram {
		histogram[i] = cov.Bins[i]/25 + enrich[i]
	}
	denoised, err := parseq.DenoiseParallel(histogram,
		parseq.NLMeansParams{R: 20, L: 15, Sigma: 10}, 4)
	if err != nil {
		log.Fatal(err)
	}
	sims := parseq.GenerateSimulations(40, len(denoised), 10)
	found, pt, estimate, err := parseq.CallPeaks(denoised, sims,
		[]float64{1, 2, 4, 8}, parseq.PeakOptions{MaxGap: 2, MinWidth: 3})
	if err != nil {
		log.Fatal(err)
	}
	step.done("statistics: %d bins denoised, %d enriched regions at p_t=%g (FDR %.3f)",
		len(denoised), len(found), pt, estimate)
}

type stepper struct{ n int }

func (s *stepper) done(format string, args ...any) {
	s.n++
	fmt.Printf("[%d] ", s.n)
	fmt.Printf(format+"\n", args...)
}
