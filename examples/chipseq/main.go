// ChIP-seq enrichment analysis: the paper's end-to-end statistical
// pipeline. Aligned reads become a binned coverage histogram, NL-means
// removes the sampling noise, and the FDR computation selects a peak
// threshold from random simulations.
//
//	go run ./examples/chipseq
package main

import (
	"fmt"
	"log"

	"parseq"
)

func main() {
	// 1. Generate aligned reads and pile them into a 25 bp-bin coverage
	// histogram on chr1 (the converter's BED/BEDGRAPH output feeds this
	// same structure in a file-based pipeline).
	dataset := parseq.GenerateDataset(parseq.DefaultDatasetConfig(30000))
	cov, err := parseq.Coverage(dataset.Records, dataset.Header, "chr1", 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage histogram: %d bins of %d bp on %s\n",
		len(cov.Bins), cov.BinSize, cov.RName)

	// Overlay synthetic enrichment so the pipeline has peaks to find
	// (the generator's reads are uniform; real ChIP-seq is not).
	enriched := parseq.GenerateHistogram(len(cov.Bins), 7)
	histogram := make([]float64, len(cov.Bins))
	for i := range histogram {
		histogram[i] = cov.Bins[i]/25 + enriched[i]
	}

	// 2. Denoise with parallel NL-means (paper parameters: l=15, σ=10;
	// r chosen small here to keep the example quick).
	p := parseq.NLMeansParams{R: 20, L: 15, Sigma: 10}
	denoised, err := parseq.DenoiseParallel(histogram, p, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NL-means denoised %d bins (r=%d, l=%d, σ=%g)\n",
		len(denoised), p.R, p.L, p.Sigma)

	// 3. Build B random simulations, sweep FDR over candidate thresholds
	// and call enriched regions at the FDR-minimising threshold.
	const B = 40
	sims := parseq.GenerateSimulations(B, len(denoised), 11)
	thresholds := []float64{1, 2, 4, 8, 12, 16, 20}
	fdrs, err := parseq.FDRSweep(denoised, sims, thresholds)
	if err != nil {
		log.Fatal(err)
	}
	for k, pt := range thresholds {
		fmt.Printf("  FDR(p_t=%4.0f) = %.4f\n", pt, fdrs[k])
	}
	found, chosen, estimate, err := parseq.CallPeaks(denoised, sims, thresholds,
		parseq.PeakOptions{MaxGap: 2, MinWidth: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected threshold p_t = %g (estimated FDR %.3f)\n", chosen, estimate)

	// 4. Report the enriched regions in genome coordinates.
	fmt.Printf("enriched regions detected on %s: %d\n", cov.RName, len(found))
	for i, p := range found {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(found)-5)
			break
		}
		fmt.Printf("  %s:%d-%d (peak coverage %.1f)\n",
			cov.RName, p.Start*cov.BinSize+1, p.End*cov.BinSize, p.MaxValue)
	}
}
