// Custom target format: the paper's extensibility claim in action. "If
// the user needs to convert SAM into another format … all the user has
// to do is to implement a format conversion function in the user
// program" — here a GFF3 encoder is registered and immediately usable by
// every converter instance, with partitioning, concurrency and file
// management untouched.
//
//	go run ./examples/customformat
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"parseq"
	"parseq/internal/sam"
)

// gff3 emits one GFF3 feature line per mapped alignment.
type gff3 struct{}

func (gff3) Name() string      { return "gff3" }
func (gff3) Extension() string { return ".gff3" }

func (gff3) Header(*sam.Header) []byte {
	return []byte("##gff-version 3\n")
}

func (gff3) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	if rec.Unmapped() {
		return dst, nil
	}
	strand := "+"
	if rec.Flag.Reverse() {
		strand = "-"
	}
	// seqid source type start end score strand phase attributes
	dst = append(dst, rec.RName...)
	dst = append(dst, "\tparseq\tread\t"...)
	dst = strconv.AppendInt(dst, int64(rec.Pos), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(rec.End()), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(rec.MapQ), 10)
	dst = append(dst, '\t')
	dst = append(dst, strand...)
	dst = append(dst, "\t.\tID="...)
	dst = append(dst, rec.QName...)
	return append(dst, '\n'), nil
}

func main() {
	// One registration call makes "gff3" a first-class target format.
	if err := parseq.RegisterFormat("gff3", func() parseq.FormatEncoder { return gff3{} }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formats now: %v\n", parseq.Formats())

	dir, err := os.MkdirTemp("", "parseq-custom-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataset := parseq.GenerateDataset(parseq.DefaultDatasetConfig(5000))
	samPath := filepath.Join(dir, "reads.sam")
	f, err := os.Create(samPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteSAM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// The parallel runtime drives the new format like any built-in.
	res, err := parseq.ConvertSAM(samPath, parseq.Options{
		Format: "gff3", Cores: 4, OutDir: dir, OutPrefix: "reads",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d records → %d GFF3 features across %d rank files\n",
		res.Stats.Records, res.Stats.Emitted, len(res.Files))

	head, err := os.ReadFile(res.Files[0])
	if err != nil {
		log.Fatal(err)
	}
	if len(head) > 300 {
		head = head[:300]
	}
	fmt.Printf("first shard preview:\n%s…\n", head)
}
