// Quickstart: generate a synthetic NGS dataset, run the parallel SAM
// format converter, and inspect the per-rank output files.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"parseq"
)

func main() {
	dir, err := os.MkdirTemp("", "parseq-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate a dataset shaped like the paper's mouse WGS data:
	// paired-end 90 bp Illumina-style reads, coordinate sorted.
	dataset := parseq.GenerateDataset(parseq.DefaultDatasetConfig(10000))
	samPath := filepath.Join(dir, "mouse.sam")
	f, err := os.Create(samPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteSAM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d alignments → %s\n", len(dataset.Records), samPath)

	// 2. Convert SAM → BED on 4 ranks. Algorithm 1 splits the file into
	// line-aligned byte ranges; each rank converts its partition into its
	// own target file with no communication.
	res, err := parseq.ConvertSAM(samPath, parseq.Options{
		Format:    "bed",
		Cores:     4,
		OutDir:    dir,
		OutPrefix: "mouse",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d records (%d emitted as BED features) in %v\n",
		res.Stats.Records, res.Stats.Emitted,
		res.Stats.PartitionTime+res.Stats.ConvertTime)

	// 3. Each rank produced one shard; concatenated in rank order they
	// form the complete conversion.
	for rank, path := range res.Files {
		fi, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d: %s (%d bytes)\n", rank, filepath.Base(path), fi.Size())
	}

	// 4. The same API drives every target format.
	fmt.Printf("supported formats: %v\n", parseq.Formats())
}
