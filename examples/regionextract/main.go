// Region extraction with partial conversion: preprocess a BAM dataset
// into BAMX + BAIX once, then repeatedly extract chromosome regions in
// parallel without touching the rest of the file — the paper's partial
// conversion workflow.
//
//	go run ./examples/regionextract
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"parseq"
)

func main() {
	dir, err := os.MkdirTemp("", "parseq-region-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Materialise a BAM dataset.
	dataset := parseq.GenerateDataset(parseq.DefaultDatasetConfig(40000))
	bamPath := filepath.Join(dir, "sample.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.WriteBAM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. Sequential preprocessing: BAM → fixed-stride BAMX + BAIX index.
	// Paid once, amortised over every later conversion.
	bamxPath := filepath.Join(dir, "sample.bamx")
	baixPath := filepath.Join(dir, "sample.baix")
	pre, err := parseq.PreprocessBAM(bamPath, bamxPath, baixPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed %d indexed alignments in %v\n", pre.Records, pre.Duration)

	// 3. Full conversion for comparison.
	start := time.Now()
	full, err := parseq.ConvertBAMX(bamxPath, baixPath, parseq.Options{
		Format: "sam", Cores: 4, OutDir: dir, OutPrefix: "full",
	})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	fmt.Printf("full conversion: %d records in %v\n", full.Stats.Records, fullTime)

	// 4. Partial conversions: the BAIX binary search maps each region to
	// a contiguous record range, so cost tracks the region size.
	for _, spec := range []string{"chr1:1-50000", "chr2", "chrX:10000-80000"} {
		region, err := parseq.ParseRegion(spec)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := parseq.ConvertBAMX(bamxPath, baixPath, parseq.Options{
			Format: "sam", Cores: 4, OutDir: dir,
			OutPrefix: "region_" + region.RName,
			Region:    &region,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s → %5d records in %8v (%.1f%% of records, %.1f%% of full time)\n",
			spec, res.Stats.Records, time.Since(start),
			100*float64(res.Stats.Records)/float64(full.Stats.Records),
			100*float64(time.Since(start))/float64(fullTime))
	}

	// 5. The extracted shards are ordinary SAM files.
	shard := filepath.Join(dir, "region_chr1_p000.sam")
	fi, err := os.Stat(shard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first chr1 shard: %s (%d bytes)\n", filepath.Base(shard), fi.Size())
}
