package parseq

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSample materialises a small dataset for the facade tests.
func writeSample(t *testing.T, n int) (samPath, bamPath string, d *Dataset) {
	t.Helper()
	d = GenerateDataset(DefaultDatasetConfig(n))
	dir := t.TempDir()
	samPath = filepath.Join(dir, "s.sam")
	bamPath = filepath.Join(dir, "s.bam")
	sf, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	bf, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return samPath, bamPath, d
}

func TestFormats(t *testing.T) {
	fs := Formats()
	if len(fs) != 7 {
		t.Fatalf("Formats = %v", fs)
	}
}

func TestEndToEndSAMConversion(t *testing.T) {
	samPath, _, _ := writeSample(t, 200)
	res, err := ConvertSAM(samPath, Options{
		Format: "bed", Cores: 4, OutDir: t.TempDir(), OutPrefix: "api",
	})
	if err != nil {
		t.Fatalf("ConvertSAM: %v", err)
	}
	if res.Stats.Records != 200 || len(res.Files) != 4 {
		t.Errorf("Result = %+v", res.Stats)
	}
}

func TestEndToEndBAMPipeline(t *testing.T) {
	_, bamPath, _ := writeSample(t, 200)
	dir := t.TempDir()
	bamx := filepath.Join(dir, "d.bamx")
	baix := filepath.Join(dir, "d.baix")
	pre, err := PreprocessBAM(bamPath, bamx, baix)
	if err != nil {
		t.Fatalf("PreprocessBAM: %v", err)
	}
	if len(pre.BAMXFiles) != 1 {
		t.Fatalf("pre = %+v", pre)
	}
	region, err := ParseRegion("chr1:1-100000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConvertBAMX(bamx, baix, Options{
		Format: "sam", Cores: 2, OutDir: dir, OutPrefix: "partial",
		Region: &region,
	})
	if err != nil {
		t.Fatalf("ConvertBAMX: %v", err)
	}
	if res.Stats.Records == 0 {
		t.Error("partial conversion selected nothing")
	}
}

func TestEndToEndPreprocessedSAM(t *testing.T) {
	samPath, _, _ := writeSample(t, 150)
	res, err := ConvertSAMPreprocessed(samPath, 2, Options{
		Format: "fastq", Cores: 2, OutDir: t.TempDir(), OutPrefix: "pp",
	})
	if err != nil {
		t.Fatalf("ConvertSAMPreprocessed: %v", err)
	}
	if len(res.Files) != 4 { // M=2 × N=2
		t.Errorf("files = %d, want 4", len(res.Files))
	}
}

func TestStatisticsFacade(t *testing.T) {
	h := GenerateHistogram(2000, 1)
	p := NLMeansParams{R: 10, L: 3, Sigma: 10}
	seq, err := Denoise(h, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DenoiseParallel(h, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DenoiseDistributed(h, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("parallel differs at %d", i)
		}
		if diff := seq[i] - dist[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("distributed differs at %d", i)
		}
	}

	sims := GenerateSimulations(8, 2000, 2)
	seqFDR, err := FDR(h, sims, 2)
	if err != nil {
		t.Fatal(err)
	}
	parFDR, err := FDRParallel(h, sims, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqFDR != parFDR {
		t.Errorf("FDR %g vs parallel %g", seqFDR, parFDR)
	}
	sweep, err := FDRSweep(h, sims, []float64{1, 2, 4})
	if err != nil || len(sweep) != 3 {
		t.Errorf("FDRSweep = %v, %v", sweep, err)
	}
}

func TestCoverageFacade(t *testing.T) {
	_, _, d := writeSample(t, 200)
	h, err := Coverage(d.Records, d.Header, "chr1", 25)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	if len(h.Bins) == 0 {
		t.Error("empty histogram")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) != 9 {
		t.Fatalf("Experiments = %v", ids)
	}
	sc := ExperimentScale{Reads: 500, Bins: 1000, Sims: 5, TmpDir: t.TempDir(), KeepTmp: true}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "fig6", sc); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(buf.String(), "FIG6") {
		t.Errorf("output = %q", buf.String())
	}
	if err := RunExperiment(&buf, "nope", sc); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSortFlagstatCoverageFacade(t *testing.T) {
	// Unsorted dataset → sort → index-ready BAM; plus parallel flagstat
	// and coverage over the SAM.
	cfg := DefaultDatasetConfig(300)
	cfg.Sorted = false
	d := GenerateDataset(cfg)
	dir := t.TempDir()
	samPath := filepath.Join(dir, "u.sam")
	f, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sorted := filepath.Join(dir, "s.bam")
	n, err := SortSAMToBAM(samPath, sorted, SortOptions{ChunkRecords: 64, Cores: 2})
	if err != nil {
		t.Fatalf("SortSAMToBAM: %v", err)
	}
	if n != 300 {
		t.Errorf("sorted %d records", n)
	}
	// Sorted output preprocesses and partially converts.
	bamx := filepath.Join(dir, "s.bamx")
	baix := filepath.Join(dir, "s.baix")
	if _, err := PreprocessBAM(sorted, bamx, baix); err != nil {
		t.Fatalf("PreprocessBAM over sorted output: %v", err)
	}

	stats, err := Flagstat(samPath, 3)
	if err != nil {
		t.Fatalf("Flagstat: %v", err)
	}
	if stats.Total != 300 {
		t.Errorf("Flagstat Total = %d", stats.Total)
	}

	cov, err := CoverageParallel(samPath, "chr1", 25, 3)
	if err != nil {
		t.Fatalf("CoverageParallel: %v", err)
	}
	want, err := Coverage(d.Records, d.Header, "chr1", 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cov.Bins {
		if cov.Bins[i] != want.Bins[i] {
			t.Fatalf("bin %d = %g, want %g", i, cov.Bins[i], want.Bins[i])
		}
	}
}

func TestCompressedPipelineFacade(t *testing.T) {
	_, bamPath, _ := writeSample(t, 150)
	dir := t.TempDir()
	bamx := filepath.Join(dir, "c.bamx")
	baix := filepath.Join(dir, "c.baix")
	if _, err := PreprocessBAM(bamPath, bamx, baix); err != nil {
		t.Fatal(err)
	}
	bamz := filepath.Join(dir, "c.bamz")
	n, err := CompressBAMX(bamx, bamz, 32)
	if err != nil {
		t.Fatalf("CompressBAMX: %v", err)
	}
	if n != 150 {
		t.Errorf("compressed %d records", n)
	}
	res, err := ConvertBAMZ(bamz, baix, Options{
		Format: "bed", Cores: 2, OutDir: dir, OutPrefix: "z",
	})
	if err != nil {
		t.Fatalf("ConvertBAMZ: %v", err)
	}
	if res.Stats.Records != 150 {
		t.Errorf("Records = %d", res.Stats.Records)
	}
}

func TestSAMToBAMFacade(t *testing.T) {
	samPath, _, _ := writeSample(t, 120)
	dir := t.TempDir()
	res, err := ConvertSAMToBAM(samPath, Options{Cores: 3, OutDir: dir, OutPrefix: "b"})
	if err != nil {
		t.Fatalf("ConvertSAMToBAM: %v", err)
	}
	merged := filepath.Join(dir, "all.bam")
	n, err := MergeBAMShards(res.Files, merged)
	if err != nil {
		t.Fatalf("MergeBAMShards: %v", err)
	}
	if n != 120 {
		t.Errorf("merged %d records", n)
	}
}

func TestPeaksFacade(t *testing.T) {
	h := GenerateHistogram(3000, 5)
	sims := GenerateSimulations(15, 3000, 6)
	ps, pt, estimate, err := CallPeaks(h, sims, []float64{0, 1, 3}, PeakOptions{MinWidth: 2})
	if err != nil {
		t.Fatalf("CallPeaks: %v", err)
	}
	if len(ps) == 0 {
		t.Error("no peaks on peaked data")
	}
	if pt < 0 || estimate < 0 {
		t.Errorf("pt=%g estimate=%g", pt, estimate)
	}
}
