# parseq build/test entry points. `make ci` is the gate every change
# must pass: vet, staticcheck (when installed), formatting, build, the
# full race-enabled test suite, a one-iteration smoke run of the BGZF
# codec and obs-overhead benchmarks, and the metrics-schema and
# live-endpoint smoke tests.

GO ?= go

.PHONY: all build test race race-decode race-convert race-mpinet race-kern race-obs race-shard race-pamx race-daemon vet staticcheck fmt-check bench-smoke bench-decode bench-convert bench-kern bench-shard bench-pamx metrics-smoke metrics-endpoint-smoke daemon-endpoint-smoke fuzz-frame fuzz-kern fuzz-index fuzz-pamx fuzz-daemon ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race run over the parallel decode path (zero-copy block API,
# prefetcher, record scanner, BAMZ readahead and their consumers) —
# faster feedback than the full `race` sweep when touching that code.
race-decode:
	$(GO) test -race -count=1 ./internal/bgzf ./internal/bam ./internal/bamx ./internal/sorter

# Focused race run over the parallel convert/write path (byte-slice
# parsing, the batched line pipeline, the shared deflate pool and the
# parpipe pool plumbing under it).
race-convert:
	$(GO) test -race -count=1 ./internal/conv ./internal/sam ./internal/formats ./internal/bgzf ./internal/parpipe

# Focused race run over the rank transports: the transport conformance
# table on both the in-process and TCP worlds, the multi-process
# loopback acceptance tests (byte-identical distributed conversion,
# killed-worker abort) and the flag plumbing.
race-mpinet:
	$(GO) test -race -count=1 ./internal/mpi ./internal/mpinet ./internal/mpiflag

# Focused race run over the word-wide kernels and the packages whose
# hot loops they were wired into (BAM record codec, SAM byte parser,
# format emitters, flagstat tally, BED coordinate parsing). The kernels
# are pure functions, but their zero-copy aliasing helpers deserve the
# race detector's eyes wherever records cross goroutines.
race-kern:
	$(GO) test -race -count=1 ./internal/kern ./internal/bam ./internal/sam ./internal/formats ./internal/flagstat ./internal/bed

# Focused race run over the observability plane: the registry and its
# Prometheus/trace renderers, the cross-rank telemetry gather (channel
# and TCP transports, including the multi-process /metrics acceptance
# tests) and the CLI flag plumbing around them.
race-obs:
	$(GO) test -race -count=1 ./internal/obs ./internal/mpi ./internal/mpinet ./internal/obsflag

# Focused race run over the genomic-range shard layer: the providers
# and the work-stealing drain, the index machinery they cut shards
# from, and the three analyses that ride them — all of whose identity
# tests drive shards across goroutines and both rank transports.
race-shard:
	$(GO) test -race -count=1 ./internal/shard ./internal/bam ./internal/bamx ./internal/flagstat ./internal/hist ./internal/peaks

# Focused race run over the columnar PAMX layer: the column writer and
# projecting reader (whose group decompressors run on the shared codec
# pool), the per-group shard provider, and the two analyses whose
# projection-equivalence tests drive PAMX shards across goroutines.
race-pamx:
	$(GO) test -race -count=1 ./internal/formats/pamx ./internal/shard ./internal/flagstat ./internal/hist

# Focused race run over the daemon: the bounded queue and admission
# paths under a concurrent HTTP burst, job cancellation and panic
# isolation, the fleet lockstep protocol on a loopback worker, and the
# obsflag shutdown hook the graceful drain rides on.
race-daemon:
	$(GO) test -race -count=1 ./internal/daemon ./internal/obsflag

# A short deterministic fuzz pass over the wire-frame decoder: corrupt
# frames must error, never panic or over-allocate.
fuzz-frame:
	$(GO) test -run '^$$' -fuzz 'FuzzFrameDecode' -fuzztime 10s ./internal/mpinet

# Short fuzz passes over the word-wide kernels: every kernel must agree
# with its scalar twin on arbitrary inputs, alignments and lengths.
fuzz-kern:
	$(GO) test -run '^$$' -fuzz 'FuzzUnpackSeq' -fuzztime 10s ./internal/kern
	$(GO) test -run '^$$' -fuzz 'FuzzShiftQual' -fuzztime 10s ./internal/kern
	$(GO) test -run '^$$' -fuzz 'FuzzParseUint' -fuzztime 10s ./internal/kern

# Short fuzz pass over the BAI reader: corrupt index bytes must error,
# never panic, and every accepted index must re-serialise byte-for-byte.
fuzz-index:
	$(GO) test -run '^$$' -fuzz 'FuzzReadIndex' -fuzztime 10s ./internal/bam

# Short fuzz pass over the PAMX footer decoder: corrupt footers must
# error, never panic, and every accepted footer must re-encode
# byte-for-byte and survive the bounds check without panicking.
fuzz-pamx:
	$(GO) test -run '^$$' -fuzz 'FuzzPAMXFooter' -fuzztime 10s ./internal/formats/pamx

# Short fuzz pass over the daemon's job-spec decoder: arbitrary
# submission bodies must yield a structured error or a spec that
# re-encodes to a fixed point — never a panic.
fuzz-daemon:
	$(GO) test -run '^$$' -fuzz 'FuzzJobSpec' -fuzztime 10s ./internal/daemon

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when the binary is on PATH,
# otherwise skip with a notice (CI images without it must still pass).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping"; \
	fi

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One iteration of the BGZF benchmarks (sequential + parallel sweeps)
# and the disabled-telemetry overhead guard: catches benchmark bit-rot
# without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBGZF' -benchtime 1x ./internal/bgzf
	$(GO) test -run '^$$' -bench 'BenchmarkParallelBAMScan' -benchtime 1x ./internal/bam
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchtime 1x ./internal/obs
	$(GO) test -run '^$$' -bench 'BenchmarkConvertSAM$$' -benchtime 1x ./internal/conv
	$(GO) test -run '^$$' -bench 'BenchmarkKernSpeedup' -benchtime 1x ./internal/kern
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSpeedup' -benchtime 1x ./internal/shard
	$(GO) test -run '^$$' -bench 'BenchmarkPAMXSpeedup' -benchtime 1x ./internal/shard

# Real measurement of the BAM decode worker sweep (sequential baseline
# vs bam.ParallelScanner at 1/2/4/8 workers), recorded for comparison
# across changes. The JSON wraps `go test -bench` text output with the
# machine's parallelism so runs on different hosts aren't conflated.
bench-decode:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkParallelBAMScan' -benchtime 2x ./internal/bam); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	{ \
		echo '{'; \
		echo '  "benchmark": "BenchmarkParallelBAMScan",'; \
		echo "  \"cpus\": $$(nproc),"; \
		echo '  "output": ['; \
		echo "$$out" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' | sed '$$ s/,$$//'; \
		echo '  ]'; \
		echo '}'; \
	} > BENCH_decode.json; \
	echo "wrote BENCH_decode.json"

# Real measurement of the pipelined converter: the worker sweep, the
# pre-PR loop baseline, and the paired before/after run whose "speedup"
# metric is the headline number (pairing the two passes per iteration
# and taking per-side minima keeps the ratio meaningful on hosts with
# CPU steal, where separately-timed runs drift 2-4x between runs).
bench-convert:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkConvertSAM$$|BenchmarkConvertSAMPrePR$$' -benchtime 3x ./internal/conv && \
		$(GO) test -run '^$$' -bench 'BenchmarkConvertSAMSpeedup$$' -benchtime 25x ./internal/conv); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	{ \
		echo '{'; \
		echo '  "benchmark": "BenchmarkConvertSAM",'; \
		echo "  \"cpus\": $$(nproc),"; \
		echo '  "output": ['; \
		echo "$$out" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' | sed '$$ s/,$$//'; \
		echo '  ]'; \
		echo '}'; \
	} > BENCH_convert.json; \
	echo "wrote BENCH_convert.json"

# Real measurement of the word-wide transcoding kernels against their
# scalar twins. The Speedup benchmark interleaves scalar and kernel
# batches per iteration and reports per-side minima, so its "speedup"
# metric holds up on noisy shared hosts; the plain benchmarks record
# absolute MB/s per kernel.
bench-kern:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkKern' -benchtime 100x ./internal/kern); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	{ \
		echo '{'; \
		echo '  "benchmark": "BenchmarkKern",'; \
		echo "  \"cpus\": $$(nproc),"; \
		echo '  "output": ['; \
		echo "$$out" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' | sed '$$ s/,$$//'; \
		echo '  ]'; \
		echo '}'; \
	} > BENCH_kern.json; \
	echo "wrote BENCH_kern.json"

# Real measurement of region-parallel whole-genome flagstat: the worker
# sweep over both shard providers against the single-stream baselines,
# and the paired before/after run whose "speedup" metric is the
# headline number (per-side minima keep the ratio meaningful on hosts
# with CPU steal).
bench-shard:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkShardedAnalysis' -benchtime 3x ./internal/shard && \
		$(GO) test -run '^$$' -bench 'BenchmarkShardedSpeedup$$' -benchtime 10x ./internal/shard); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	{ \
		echo '{'; \
		echo '  "benchmark": "BenchmarkShardedAnalysis",'; \
		echo "  \"cpus\": $$(nproc),"; \
		echo '  "output": ['; \
		echo "$$out" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' | sed '$$ s/,$$//'; \
		echo '  ]'; \
		echo '}'; \
	} > BENCH_shard.json; \
	echo "wrote BENCH_shard.json"

# Real measurement of columnar field projection: the worker sweep of
# projected flagstat over PAMX against the row-major BAMX sharded scan,
# and the paired run whose "speedup" and "bytes_inflated_ratio" metrics
# are the headline numbers (projection must inflate ≤30% of the bytes
# the row-major scan reads and beat its records/s by ≥1.5x).
bench-pamx:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkPAMXAnalysis' -benchtime 3x ./internal/shard && \
		$(GO) test -run '^$$' -bench 'BenchmarkPAMXSpeedup$$' -benchtime 10x ./internal/shard); \
	status=$$?; echo "$$out"; [ $$status -eq 0 ] || exit $$status; \
	{ \
		echo '{'; \
		echo '  "benchmark": "BenchmarkPAMXAnalysis",'; \
		echo "  \"cpus\": $$(nproc),"; \
		echo '  "output": ['; \
		echo "$$out" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g; s/^/    "/; s/$$/",/' | sed '$$ s/,$$//'; \
		echo '  ]'; \
		echo '}'; \
	} > BENCH_pamx.json; \
	echo "wrote BENCH_pamx.json"

# End-to-end telemetry check: a real conversion run must produce a
# metrics snapshot with the documented schema (MPI wait, codec
# pipeline gauges, phase walls) and a non-empty trace.
metrics-smoke:
	$(GO) test -run 'TestMetricsSchema' -count=1 ./internal/obsflag

# Live-endpoint check: a -metrics-addr session must serve a scrapeable
# /metrics and /progress and a SIGTERM-killed run must still flush its
# profiles; the subprocess tests cover the 4-rank gather end to end.
metrics-endpoint-smoke:
	$(GO) test -run 'TestMetricsEndpointSmoke|TestSIGTERMFlushesProfiles' -count=1 ./internal/obsflag
	$(GO) test -run 'TestSubprocessObs' -count=1 ./internal/mpinet

# End-to-end daemon check with the real binaries: build seqconvd,
# ngsbench, seqconvert and ngsgen, start the daemon on a loopback port,
# upload a generated SAM, convert it to BED through the job API, and
# verify the streamed result byte-identical to the seqconvert CLI's
# output. SIGTERM then drains the daemon, which must exit 128+15.
daemon-endpoint-smoke:
	@set -e; \
	tmp=$$(mktemp -d); pid=""; \
	trap '[ -n "$$pid" ] && kill "$$pid" 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp" ./cmd/seqconvd ./cmd/ngsbench ./cmd/seqconvert ./cmd/ngsgen; \
	"$$tmp/ngsgen" -reads 2000 -format sam -out "$$tmp/tiny" >/dev/null; \
	"$$tmp/seqconvert" -in "$$tmp/tiny.sam" -format bed -out "$$tmp" -prefix ref >/dev/null; \
	"$$tmp/seqconvd" -addr 127.0.0.1:0 -spool "$$tmp/spool" 2> "$$tmp/seqconvd.log" & pid=$$!; \
	base=""; \
	for i in $$(seq 1 100); do \
		base=$$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$$tmp/seqconvd.log"); \
		[ -n "$$base" ] && break; sleep 0.1; \
	done; \
	[ -n "$$base" ] || { echo "daemon-endpoint-smoke: seqconvd never came up"; cat "$$tmp/seqconvd.log"; exit 1; }; \
	"$$tmp/ngsbench" -daemon "$$base" \
		-daemon-spec '{"op":"convert","format":"bed"}' \
		-daemon-in "$$tmp/tiny.sam" -daemon-out "$$tmp/got.bed" \
		-daemon-verify "$$tmp/ref_p000.bed"; \
	kill -TERM "$$pid"; \
	wait "$$pid" && rc=0 || rc=$$?; pid=""; \
	[ "$$rc" -eq 143 ] || { echo "daemon-endpoint-smoke: seqconvd exit $$rc, want 143"; cat "$$tmp/seqconvd.log"; exit 1; }; \
	echo "daemon-endpoint-smoke: OK"

ci: vet staticcheck fmt-check build race race-decode race-convert race-mpinet race-kern race-obs race-shard race-pamx race-daemon bench-smoke metrics-smoke metrics-endpoint-smoke daemon-endpoint-smoke
	@echo "ci: all checks passed"
