# parseq build/test entry points. `make ci` is the gate every change
# must pass: vet, formatting, build, the full race-enabled test suite,
# and a one-iteration smoke run of the BGZF codec benchmarks.

GO ?= go

.PHONY: all build test race vet fmt-check bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One iteration of every BGZF benchmark (sequential + parallel sweeps):
# catches benchmark bit-rot without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBGZF' -benchtime 1x ./internal/bgzf

ci: vet fmt-check build race bench-smoke
	@echo "ci: all checks passed"
