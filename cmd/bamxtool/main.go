// Command bamxtool inspects and manipulates the framework's BAMX/BAIX
// files: print metadata, verify record integrity, rebuild indices,
// compress to the block-compressed BAMZ variant, and dump regions.
//
// Usage:
//
//	bamxtool info data.bamx
//	bamxtool verify data.bamx
//	bamxtool index data.bamx             # (re)build data.baix
//	bamxtool [-w N] compress data.bamx   # write data.bamz, N deflate workers
//	bamxtool region data.bamx chr1:1-50000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"parseq"
	"parseq/internal/bamx"
	"parseq/internal/bgzf"
	"parseq/internal/obsflag"
	"parseq/internal/sam"
)

var (
	workers  = flag.Int("w", 0, "compression worker goroutines (compress only; 0: auto, one per CPU capped; 1: sequential)")
	obsFlags = obsflag.Register(nil)
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}
	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bamxtool:", err)
		}
	}()
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "bamxtool: serving metrics on http://%s/metrics\n", addr)
	}
	cmd, path := args[0], args[1]
	switch cmd {
	case "info":
		runInfo(path)
	case "verify":
		runVerify(path)
	case "index":
		runIndex(path)
	case "compress":
		runCompress(path)
	case "region":
		if len(args) < 3 {
			usage()
		}
		runRegion(path, args[2])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bamxtool [-w N] {info|verify|index|compress} FILE.bamx")
	fmt.Fprintln(os.Stderr, "       bamxtool region FILE.bamx chr:beg-end")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "bamxtool:", err)
	os.Exit(1)
}

func open(path string) (*bamx.File, *os.File) {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	fi, err := f.Stat()
	if err != nil {
		die(err)
	}
	xf, err := bamx.Open(f, fi.Size())
	if err != nil {
		die(err)
	}
	return xf, f
}

func runInfo(path string) {
	xf, f := open(path)
	defer f.Close()
	caps := xf.Caps()
	fmt.Printf("file:        %s\n", path)
	fmt.Printf("records:     %d\n", xf.NumRecords())
	fmt.Printf("stride:      %d bytes\n", xf.Stride())
	fmt.Printf("caps:        qname=%d cigar=%d seq=%d aux=%d\n",
		caps.QName, caps.CigarOps, caps.Seq, caps.Aux)
	fmt.Printf("references:  %d\n", len(xf.Header().Refs))
	for _, ref := range xf.Header().Refs {
		fmt.Printf("  %-8s %d bp\n", ref.Name, ref.Length)
	}
}

func runVerify(path string) {
	xf, f := open(path)
	defer f.Close()
	scan := xf.Scan(0, xf.NumRecords())
	var rec, back sam.Record
	var line []byte
	n := int64(0)
	for {
		ok, err := scan.Next(&rec)
		if err != nil {
			die(fmt.Errorf("record %d: %w", n, err))
		}
		if !ok {
			break
		}
		// Each record must render and reparse as valid SAM; the byte
		// round-trip reuses line and back across records.
		line = rec.AppendTo(line[:0])
		if err := sam.ParseRecordIntoBytes(&back, line); err != nil {
			die(fmt.Errorf("record %d: %w", n, err))
		}
		n++
	}
	fmt.Printf("%s: %d records verified OK\n", path, n)
}

func runIndex(path string) {
	xf, f := open(path)
	defer f.Close()
	idx, err := bamx.BuildIndex(xf)
	if err != nil {
		die(err)
	}
	baixPath := strings.TrimSuffix(path, ".bamx") + ".baix"
	out, err := os.Create(baixPath)
	if err != nil {
		die(err)
	}
	if _, err := idx.WriteTo(out); err != nil {
		out.Close()
		die(err)
	}
	if err := out.Close(); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s (%d entries)\n", baixPath, idx.Len())
}

func runCompress(path string) {
	xf, f := open(path)
	defer f.Close()
	bamzPath := strings.TrimSuffix(path, ".bamx") + ".bamz"
	out, err := os.Create(bamzPath)
	if err != nil {
		die(err)
	}
	w := *workers
	if w <= 0 {
		w = bgzf.AutoWorkers() // adaptive default, like the converter CLIs
	}
	n, err := bamx.CompressBAMXWorkers(xf, out, bamx.DefaultRecsPerBlock, w)
	if err != nil {
		out.Close()
		die(err)
	}
	if err := out.Close(); err != nil {
		die(err)
	}
	fi, _ := f.Stat()
	zi, _ := os.Stat(bamzPath)
	fmt.Printf("wrote %s: %d records, %d → %d bytes (%.1f%%)\n",
		bamzPath, n, fi.Size(), zi.Size(), 100*float64(zi.Size())/float64(fi.Size()))
}

func runRegion(path, regionSpec string) {
	region, err := parseq.ParseRegion(regionSpec)
	if err != nil {
		die(err)
	}
	xf, f := open(path)
	defer f.Close()
	baixPath := strings.TrimSuffix(path, ".bamx") + ".baix"
	var idx *bamx.Index
	if ixf, err := os.Open(baixPath); err == nil {
		idx, err = bamx.ReadIndex(ixf)
		ixf.Close()
		if err != nil {
			die(err)
		}
	} else {
		idx, err = bamx.BuildIndex(xf)
		if err != nil {
			die(err)
		}
	}
	refID := xf.Header().RefID(region.RName)
	if refID < 0 {
		die(fmt.Errorf("reference %q not in header", region.RName))
	}
	beg, end := region.Beg, region.End
	if beg <= 0 {
		beg = 1
	}
	if end <= 0 {
		end = 1<<31 - 1
	}
	lo, hi := idx.Region(int32(refID), beg, end)
	fmt.Printf("%s: %d records start in %s\n", path, hi-lo, regionSpec)
	var rec sam.Record
	w := io.Writer(os.Stdout)
	for _, e := range idx.Entries()[lo:hi] {
		if err := xf.ReadRecord(e.Index, &rec); err != nil {
			die(err)
		}
		fmt.Fprintln(w, rec.String())
	}
}
