// The -daemon client mode: instead of running experiments in-process,
// ngsbench speaks to a resident seqconvd — submit a job, poll it to a
// terminal state, stream the result down. -daemon-verify compares the
// streamed bytes against a local reference file, which is how the
// Makefile's endpoint smoke proves the daemon path is byte-identical to
// the seqconvert CLI.

package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"parseq/internal/daemon"
)

func runDaemonClient(base, specJSON, inPath, outPath, pick, verifyPath string) error {
	spec, err := daemon.DecodeSpec([]byte(specJSON))
	if err != nil {
		return err
	}
	cl := &daemon.Client{Base: base}

	var input io.Reader
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if spec.InputName == "" && spec.InputPath == "" {
			spec.InputName = filepath.Base(inPath)
		}
		input = f
	}

	st, err := cl.Submit(spec, input)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ngsbench: job %s %s\n", st.ID, st.State)

	st, err = cl.Wait(context.Background(), st.ID, 200*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ngsbench: job %s %s (queued %dms, ran %dms, %d records, %d bytes out)\n",
		st.ID, st.State, st.QueuedMS, st.RunMS, st.Records, st.BytesOut)
	if st.State != daemon.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}

	// A directory destination receives every output file; otherwise the
	// job must resolve to one file (single output, or -daemon-file).
	if fi, err := os.Stat(outPath); err == nil && fi.IsDir() {
		for _, f := range st.Files {
			if err := fetchTo(cl, st.ID, f.Name, filepath.Join(outPath, f.Name), verifyPath); err != nil {
				return err
			}
		}
		return nil
	}
	return fetchTo(cl, st.ID, pick, outPath, verifyPath)
}

// fetchTo streams one result file to dst ("-" = stdout), optionally
// comparing it byte-for-byte against verifyPath.
func fetchTo(cl *daemon.Client, id, name, dst, verifyPath string) error {
	body, err := cl.Result(id, name)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	defer body.Close()

	var out io.Writer = os.Stdout
	if dst != "" && dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	if verifyPath == "" {
		_, err := io.Copy(out, body)
		return err
	}
	got, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	if _, err := out.(io.Writer).Write(got); err != nil {
		return err
	}
	want, err := os.ReadFile(verifyPath)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("verify: result (%d bytes) differs from %s (%d bytes)", len(got), verifyPath, len(want))
	}
	fmt.Fprintf(os.Stderr, "ngsbench: verified %d bytes identical to %s\n", len(got), verifyPath)
	return nil
}
