package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parseq"
	"parseq/internal/experiments"
	"parseq/internal/fdr"
	"parseq/internal/flagstat"
	"parseq/internal/hist"
	"parseq/internal/mpi"
	"parseq/internal/mpiflag"
)

// runDistributed exercises the analysis pipeline across a TCP rank
// world: the measured converter, histogram construction, flagstat and
// the Algorithm 2 FDR reduction all run with this process as one rank.
// Every process generates the same deterministic dataset (each needs a
// local copy of the input — ranks may sit on different hosts), runs the
// same sequence of worlds, and rank 0 reports. This is the real
// multi-process counterpart of the calibrated cluster model the
// figures use.
func runDistributed(sess *mpiflag.Session, sc experiments.Scale, tmp string, keep bool) error {
	rank, ranks := sess.Rank(), sess.Ranks(0)
	launch := sess.Launcher()
	if tmp == "" {
		dir, err := os.MkdirTemp("", "ngsbench-dist-*")
		if err != nil {
			return err
		}
		if !keep {
			defer os.RemoveAll(dir)
		}
		tmp = dir
	}

	reads := sc.Reads
	if reads <= 0 {
		reads = 50000
	}
	ds := parseq.GenerateDataset(parseq.DefaultDatasetConfig(reads))
	samPath := filepath.Join(tmp, "dist.sam")
	sf, err := os.Create(samPath)
	if err != nil {
		return err
	}
	if err := ds.WriteSAM(sf); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	report := func(format string, args ...any) {
		if rank == 0 {
			fmt.Printf(format, args...)
		}
	}
	report("distributed suite: %d ranks, %d reads, input %s\n", ranks, reads, samPath)

	// Converter: each rank converts its Algorithm 1 partition into its
	// own target file.
	start := time.Now()
	res, err := parseq.ConvertSAM(samPath, parseq.Options{
		Format: "sam", Cores: ranks, OutDir: tmp, OutPrefix: "dist",
		Launch: launch,
	})
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	report("convert     %8d records on rank 0 in %v\n", res.Stats.Records, time.Since(start))

	// Histogram: partition, accumulate, gather-reduce at rank 0.
	rname := ds.Header.RefByID(0).Name
	start = time.Now()
	hg, err := hist.FromSAMParallelLaunch(samPath, rname, 100, ranks, launch)
	if err != nil {
		return fmt.Errorf("hist: %w", err)
	}
	report("hist        %8d bins for %s in %v\n", len(hg.Bins), rname, time.Since(start))

	// Flagstat: partition, tally, gather-merge at rank 0.
	start = time.Now()
	fs, err := flagstat.SAMFileLaunch(samPath, ranks, launch)
	if err != nil {
		return fmt.Errorf("flagstat: %w", err)
	}
	report("flagstat    %8d records in %v\n", fs.Total, time.Since(start))

	// FDR: Algorithm 2's fused single-synchronisation reduction.
	bins, sims := sc.Bins, sc.Sims
	if bins <= 0 {
		bins = 4096
	}
	if sims <= 0 {
		sims = 8
	}
	histogram := parseq.GenerateHistogram(bins, 42)
	simsets := parseq.GenerateSimulations(sims, bins, 43)
	var rate float64
	start = time.Now()
	err = launchOrRun(launch, ranks, func(c *mpi.Comm) error {
		v, err := fdr.ParallelFused(c, histogram, simsets, 4.0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rate = v
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("fdr: %w", err)
	}
	report("fdr         FDR(4.0) = %.6f over %d sims in %v\n", rate, sims, time.Since(start))
	return nil
}

// launchOrRun resolves a nil launcher to the in-process runtime.
func launchOrRun(launch mpi.Launcher, ranks int, fn func(*mpi.Comm) error) error {
	if launch == nil {
		launch = mpi.Run
	}
	return launch(ranks, fn)
}
