// Command ngsbench regenerates the paper's evaluation: Table I and
// Figures 6-12. Sequential runs are measured for real on a scaled
// synthetic dataset; multi-core points come from the calibrated cluster
// model (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	ngsbench                    # every table and figure
//	ngsbench -exp fig8          # one experiment
//	ngsbench -reads 100000      # larger measured workload
//
// With -transport tcp the binary instead runs the distributed suite —
// converter, histogram, flagstat and FDR across a multi-process rank
// world (start one process per rank):
//
//	ngsbench -transport tcp -world 2 -rank 0 -coord :9900
//	ngsbench -transport tcp -world 2 -rank 1 -coord host0:9900
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parseq"
	"parseq/internal/experiments"
	"parseq/internal/mpiflag"
	"parseq/internal/obsflag"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, "+strings.Join(parseq.Experiments(), ", "))
		reads      = flag.Int("reads", 0, "alignment records in the measured dataset")
		bins       = flag.Int("bins", 0, "histogram bins for the statistical experiments")
		sims       = flag.Int("sims", 0, "FDR simulation datasets")
		tmp        = flag.String("tmpdir", "", "scratch directory (default: a fresh temp dir)")
		keep       = flag.Bool("keep", false, "keep scratch files")
		codec      = flag.Int("codec-workers", 0, "BGZF codec goroutines for BAM/BAMZ steps (0: auto, one per CPU capped; 1: sequential codec)")
		parse      = flag.Int("parse-workers", 0, "per-rank SAM parse/encode goroutines for the measured text conversions (0: auto; 1: sequential)")
		daemonURL  = flag.String("daemon", "", "submit a job to a seqconvd at this base URL instead of running experiments")
		daemonSpec = flag.String("daemon-spec", "", "job spec JSON for -daemon")
		daemonIn   = flag.String("daemon-in", "", "input file streamed with the -daemon submission (otherwise the spec's input_path is used)")
		daemonOut  = flag.String("daemon-out", "-", "result destination for -daemon: a file, a directory for multi-file results, or - for stdout")
		daemonFile = flag.String("daemon-file", "", "output file name to fetch for -daemon multi-file results")
		daemonVer  = flag.String("daemon-verify", "", "compare the -daemon result byte-for-byte against this local file")
		obsFlags   = obsflag.Register(nil)
		mpiFlags   = mpiflag.Register(nil)
	)
	flag.Parse()

	if *daemonURL != "" {
		if err := runDaemonClient(*daemonURL, *daemonSpec, *daemonIn, *daemonOut, *daemonFile, *daemonVer); err != nil {
			die(err)
		}
		return
	}

	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ngsbench:", err)
		}
	}()

	sc := experiments.DefaultScale()
	if *reads > 0 {
		sc.Reads = *reads
	}
	if *bins > 0 {
		sc.Bins = *bins
	}
	if *sims > 0 {
		sc.Sims = *sims
	}
	sc.TmpDir = *tmp
	sc.KeepTmp = *keep
	sc.CodecWorkers = *codec
	sc.ParseWorkers = *parse

	mpiSession, err := mpiFlags.Connect()
	if err != nil {
		die(err)
	}
	defer mpiSession.Close()
	// Distributed runs gather every rank's telemetry behind rank 0's
	// -metrics-addr endpoint.
	mpiSession.StartTelemetry(obsSession.View(), obsFlags.Heartbeat)
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "ngsbench: serving metrics on http://%s/metrics\n", addr)
	}
	if mpiSession.Distributed() {
		if err := runDistributed(mpiSession, sc, *tmp, *keep); err != nil {
			die(err)
		}
		return
	}

	if *exp == "all" {
		if err := parseq.RunAllExperiments(os.Stdout, sc); err != nil {
			die(err)
		}
		return
	}
	if err := parseq.RunExperiment(os.Stdout, *exp, sc); err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ngsbench:", err)
	os.Exit(1)
}
