// Command seqconvert is the parallel sequence data format converter: it
// converts SAM, BAM or preprocessed BAMX datasets into SAM, BED,
// BEDGRAPH, FASTA, FASTQ, JSON or YAML with one output file per rank.
//
// Usage:
//
//	seqconvert -in data.sam  -format bed -p 8 -out outdir
//	seqconvert -in data.bam  -preprocess              # data.bamx + data.baix
//	seqconvert -in data.bamx -format sam -p 8 -region chr1:1-500000
//	seqconvert -in data.sam  -converter psam -format fastq -p 8
//	seqconvert -in data.bam  -converter pamx -out outdir -prefix data   # columnar PAMX
//
// With -transport tcp the same command becomes one rank of a
// multi-process world (run it once per rank with the same work flags):
//
//	seqconvert -transport tcp -world 2 -rank 0 -coord :9900 -in data.sam -p 2
//	seqconvert -transport tcp -world 2 -rank 1 -coord host0:9900 -in data.sam -p 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parseq"
	"parseq/internal/mpiflag"
	"parseq/internal/obsflag"
)

func main() {
	var (
		in        = flag.String("in", "", "input file (.sam, .bam or .bamx)")
		format    = flag.String("format", "sam", "target format: "+strings.Join(parseq.Formats(), ", "))
		cores     = flag.Int("p", 1, "parallel ranks")
		outDir    = flag.String("out", ".", "output directory")
		prefix    = flag.String("prefix", "out", "output file prefix")
		region    = flag.String("region", "", "partial conversion region, e.g. chr1:100-200 (BAMX only)")
		converter = flag.String("converter", "auto", "converter instance: auto, sam, bam, psam, pamx")
		preproc   = flag.Bool("preprocess", false, "only preprocess the input into BAMX/BAIX")
		preCores  = flag.Int("pre-p", 0, "preprocessing ranks for the psam converter (default: -p)")
		baix      = flag.String("baix", "", "BAIX index path (default: input with .baix)")
		codecWork = flag.Int("codec-workers", 0, "BGZF codec goroutines per BAM stream (0: auto, one per CPU capped; 1: sequential codec)")
		parseWork = flag.Int("parse-workers", 0, "per-rank parse/encode goroutines for SAM text input (0: auto; 1: sequential line loop)")
		obsFlags  = obsflag.Register(nil)
		mpiFlags  = mpiflag.Register(nil)
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "seqconvert: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "seqconvert:", err)
		}
	}()
	mpiSession, err := mpiFlags.Connect()
	if err != nil {
		die(err)
	}
	defer mpiSession.Close()
	// Distributed runs ship live metric/span deltas to rank 0, whose
	// -metrics-addr endpoint then serves the whole world's telemetry.
	mpiSession.StartTelemetry(obsSession.View(), obsFlags.Heartbeat)
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "seqconvert: serving metrics on http://%s/metrics\n", addr)
	}
	// Under TCP the world size is the rank count; every phase of a
	// distributed run shares the one world, so -pre-p must match too.
	*cores = mpiSession.Ranks(*cores)
	if *preCores == 0 || mpiSession.Distributed() {
		*preCores = *cores
	}

	kind := *converter
	if kind == "auto" {
		switch {
		case strings.HasSuffix(*in, ".sam"):
			kind = "sam"
		case strings.HasSuffix(*in, ".bam"):
			kind = "bam"
		case strings.HasSuffix(*in, ".bamx"):
			kind = "bamx"
		case strings.HasSuffix(*in, ".bamz"):
			kind = "bamz"
		case strings.HasSuffix(*in, ".pamx"):
			kind = "pamx"
		default:
			die(fmt.Errorf("cannot infer converter for %q; pass -converter", *in))
		}
	}

	opts := parseq.Options{
		Format: *format, Cores: *cores, OutDir: *outDir, OutPrefix: *prefix,
		CodecWorkers: *codecWork, ParseWorkers: *parseWork,
		Launch: mpiSession.Launcher(),
	}
	if *region != "" {
		r, err := parseq.ParseRegion(*region)
		if err != nil {
			die(err)
		}
		opts.Region = &r
	}

	if *preproc {
		base := strings.TrimSuffix(*in, ".sam")
		base = strings.TrimSuffix(base, ".bam")
		switch kind {
		case "bam":
			res, err := parseq.PreprocessBAMWorkers(*in, base+".bamx", base+".baix", *codecWork)
			if err != nil {
				die(err)
			}
			fmt.Printf("preprocessed %d records into %s in %v\n",
				res.Records, res.BAMXFiles[0], res.Duration)
		case "sam", "psam":
			res, err := parseq.PreprocessSAMLaunch(*in, *outDir, *prefix, *preCores, mpiSession.Launcher())
			if err != nil {
				die(err)
			}
			fmt.Printf("preprocessed %d records into %d BAMX shards in %v\n",
				res.Records, len(res.BAMXFiles), res.Duration)
		default:
			die(fmt.Errorf("-preprocess needs a SAM or BAM input"))
		}
		return
	}

	// The columnar converter stands apart from the per-rank Result
	// shape: PAMX conversion is one output file either direction.
	if kind == "pamx" {
		popts := parseq.PAMXOptions{CodecWorkers: *codecWork}
		start := time.Now()
		var (
			count int64
			dst   string
		)
		switch {
		case strings.HasSuffix(*in, ".pamx"):
			dst = filepath.Join(*outDir, *prefix+".bam")
			count, err = parseq.ConvertPAMXToBAM(*in, dst, popts)
		case strings.HasSuffix(*in, ".bamx"):
			dst = filepath.Join(*outDir, *prefix+".pamx")
			count, err = parseq.ConvertBAMXToPAMX(*in, dst, popts)
		case strings.HasSuffix(*in, ".bam"):
			dst = filepath.Join(*outDir, *prefix+".pamx")
			count, err = parseq.ConvertBAMToPAMX(*in, dst, popts)
		default:
			err = fmt.Errorf("-converter pamx needs a .bam, .bamx or .pamx input")
		}
		if err != nil {
			die(err)
		}
		fmt.Printf("converted %d records into %s in %v\n", count, dst, time.Since(start))
		return
	}

	var res *parseq.Result
	switch kind {
	case "sam":
		if opts.Format == "bam" {
			res, err = parseq.ConvertSAMToBAM(*in, opts)
			break
		}
		res, err = parseq.ConvertSAM(*in, opts)
	case "bam":
		if *cores > 1 {
			// The complete BAM format converter: sequential preprocessing
			// into a temporary BAMX/BAIX pair, then parallel conversion.
			res, err = parseq.ConvertBAM(*in, opts)
			break
		}
		res, err = parseq.ConvertBAMSequential(*in, opts)
	case "bamx":
		ix := *baix
		if ix == "" {
			ix = strings.TrimSuffix(*in, ".bamx") + ".baix"
		}
		res, err = parseq.ConvertBAMX(*in, ix, opts)
	case "bamz":
		ix := *baix
		if ix == "" {
			ix = strings.TrimSuffix(*in, ".bamz") + ".baix"
		}
		res, err = parseq.ConvertBAMZ(*in, ix, opts)
	case "psam":
		res, err = parseq.ConvertSAMPreprocessed(*in, *preCores, opts)
	default:
		err = fmt.Errorf("unknown converter %q", kind)
	}
	if err != nil {
		die(err)
	}
	fmt.Printf("converted %d records (%d emitted, %d bytes) into %d files in %v\n",
		res.Stats.Records, res.Stats.Emitted, res.Stats.BytesOut,
		len(res.Files), res.Stats.PartitionTime+res.Stats.ConvertTime)
	if res.Stats.PreprocessTime > 0 {
		fmt.Printf("preprocessing took %v (amortisable)\n", res.Stats.PreprocessTime)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "seqconvert:", err)
	os.Exit(1)
}
