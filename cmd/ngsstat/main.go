// Command ngsstat runs the parallel statistical analysis module over
// histogram datasets: non-local means denoising and false discovery rate
// computation.
//
// Usage:
//
//	ngsstat -op nlmeans -in chip.hist.tsv -out denoised.tsv -r 80 -l 15 -sigma 10 -p 8
//	ngsstat -op fdr -in chip.hist.tsv -sims 'chip.sim*.tsv' -pt 20 -p 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parseq"
	"parseq/internal/hist"
)

func main() {
	var (
		op    = flag.String("op", "", "operation: nlmeans or fdr")
		in    = flag.String("in", "", "histogram dataset (one value per line)")
		out   = flag.String("out", "", "output path (nlmeans)")
		r     = flag.Int("r", 20, "NL-means search range radius")
		l     = flag.Int("l", 15, "NL-means half patch size")
		sigma = flag.Float64("sigma", 10, "NL-means filtering parameter")
		cores = flag.Int("p", 1, "parallel workers/ranks")
		sims  = flag.String("sims", "", "glob of simulation datasets (fdr)")
		pt    = flag.Float64("pt", 1, "FDR threshold p_t")
	)
	flag.Parse()
	if *in == "" || *op == "" {
		fmt.Fprintln(os.Stderr, "ngsstat: -op and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	histogram := readTSV(*in)

	switch *op {
	case "nlmeans":
		p := parseq.NLMeansParams{R: *r, L: *l, Sigma: *sigma}
		denoised, err := parseq.DenoiseParallel(histogram, p, *cores)
		if err != nil {
			die(err)
		}
		dst := *out
		if dst == "" {
			dst = *in + ".denoised"
		}
		f, err := os.Create(dst)
		if err != nil {
			die(err)
		}
		if err := hist.WriteTSV(f, denoised); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("denoised %d bins (r=%d l=%d sigma=%g, %d workers) → %s\n",
			len(denoised), *r, *l, *sigma, *cores, dst)

	case "fdr":
		if *sims == "" {
			die(fmt.Errorf("-op fdr requires -sims"))
		}
		paths, err := filepath.Glob(*sims)
		if err != nil {
			die(err)
		}
		if len(paths) == 0 {
			die(fmt.Errorf("no simulation datasets match %q", *sims))
		}
		sort.Strings(paths)
		simData := make([][]float64, len(paths))
		for i, p := range paths {
			simData[i] = readTSV(p)
		}
		v, err := parseq.FDRParallel(histogram, simData, *pt, *cores)
		if err != nil {
			die(err)
		}
		fmt.Printf("FDR(p_t=%g) = %.6g  (%d bins, %d simulations, %d ranks)\n",
			*pt, v, len(histogram), len(simData), *cores)

	default:
		die(fmt.Errorf("unknown -op %q (want nlmeans or fdr)", *op))
	}
}

func readTSV(path string) []float64 {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	v, err := hist.ReadTSV(f)
	if err != nil {
		die(fmt.Errorf("%s: %w", path, err))
	}
	return v
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ngsstat:", err)
	os.Exit(1)
}
