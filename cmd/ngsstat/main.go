// Command ngsstat runs the parallel statistical analysis module:
// coverage histogram construction region-parallel over genomic shards,
// non-local means denoising, false discovery rate computation, and
// FDR-thresholded peak calling over the sharded histogram.
//
// Usage:
//
//	ngsstat -op hist -bam chip.bam -rname chr1 -bin 200 -out chip.hist.tsv -p 4
//	ngsstat -op nlmeans -in chip.hist.tsv -out denoised.tsv -r 80 -l 15 -sigma 10 -p 8
//	ngsstat -op fdr -in chip.hist.tsv -sims 'chip.sim*.tsv' -pt 20 -p 8
//	ngsstat -op peaks -bam chip.bam -rname chr1 -sims 'chip.sim*.tsv' -candidates 1,2,5 -p 4
//
// With -transport tcp the hist path becomes one rank of a multi-process
// world: rank 0 scatters shard descriptors and reduces the per-rank
// partial histograms.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"parseq"
	"parseq/internal/hist"
	"parseq/internal/mpiflag"
	"parseq/internal/obsflag"
	"parseq/internal/peaks"
	"parseq/internal/shard"
)

func main() {
	var (
		op       = flag.String("op", "", "operation: hist, peaks, nlmeans or fdr")
		in       = flag.String("in", "", "histogram dataset (one value per line)")
		bam      = flag.String("bam", "", "BAM or BAMX file (hist)")
		rname    = flag.String("rname", "", "reference name to histogram (hist)")
		bin      = flag.Int("bin", 200, "histogram bin width in bases (hist)")
		shards   = flag.Int("shards", 0, "target shard count across the world (0: auto)")
		workers  = flag.Int("workers", 0, "shard workers per rank (0: one per CPU, capped)")
		out      = flag.String("out", "", "output path (hist, nlmeans)")
		r        = flag.Int("r", 20, "NL-means search range radius")
		l        = flag.Int("l", 15, "NL-means half patch size")
		sigma    = flag.Float64("sigma", 10, "NL-means filtering parameter")
		cores    = flag.Int("p", 1, "parallel workers/ranks")
		sims     = flag.String("sims", "", "glob of simulation datasets (fdr, peaks)")
		pt       = flag.Float64("pt", 1, "FDR threshold p_t")
		cands    = flag.String("candidates", "1,2,5,10,20", "comma-separated p_t candidates (peaks)")
		maxGap   = flag.Int("maxgap", 1, "merge peak runs separated by at most this many bins (peaks)")
		minWidth = flag.Int("minwidth", 2, "drop peaks narrower than this many bins (peaks)")
		obsFlags = obsflag.Register(nil)
		mpiFlags = mpiflag.Register(nil)
	)
	flag.Parse()
	if *op == "" {
		fmt.Fprintln(os.Stderr, "ngsstat: -op is required")
		flag.Usage()
		os.Exit(2)
	}
	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ngsstat:", err)
		}
	}()
	mpiSession, err := mpiFlags.Connect()
	if err != nil {
		die(err)
	}
	defer mpiSession.Close()
	mpiSession.StartTelemetry(obsSession.View(), obsFlags.Heartbeat)
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "ngsstat: serving metrics on http://%s/metrics\n", addr)
	}
	*cores = mpiSession.Ranks(*cores)

	switch *op {
	case "hist":
		if *bam == "" || *rname == "" {
			die(fmt.Errorf("-op hist requires -bam and -rname"))
		}
		p := shard.OpenPathProvider(*bam)
		defer p.Close()
		h, err := hist.FromProvider(p, *rname, *bin, shard.Config{
			Ranks:        *cores,
			Workers:      *workers,
			TargetShards: *shards,
			Launch:       mpiSession.Launcher(),
		})
		if err != nil {
			die(err)
		}
		// Under a distributed launch only rank 0 holds the reduced
		// histogram; other ranks exit quietly.
		if mpiSession.Rank() != 0 {
			return
		}
		dst := *out
		if dst == "" {
			dst = *bam + ".hist.tsv"
		}
		f, err := os.Create(dst)
		if err != nil {
			die(err)
		}
		if err := hist.WriteTSV(f, h.Bins); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("histogrammed %s into %d bins of %d bases → %s\n",
			*rname, len(h.Bins), *bin, dst)

	case "peaks":
		if *bam == "" || *rname == "" {
			die(fmt.Errorf("-op peaks requires -bam and -rname"))
		}
		if *sims == "" {
			die(fmt.Errorf("-op peaks requires -sims"))
		}
		paths, err := filepath.Glob(*sims)
		if err != nil {
			die(err)
		}
		if len(paths) == 0 {
			die(fmt.Errorf("no simulation datasets match %q", *sims))
		}
		sort.Strings(paths)
		simData := make([][]float64, len(paths))
		for i, sp := range paths {
			simData[i] = readTSV(sp)
		}
		var candidates []float64
		for _, s := range strings.Split(*cands, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				die(fmt.Errorf("-candidates: %w", err))
			}
			candidates = append(candidates, v)
		}
		p := shard.OpenPathProvider(*bam)
		defer p.Close()
		called, h, ptSel, fdr, err := peaks.CoveragePeaks(p, *rname, *bin, simData, candidates,
			peaks.Options{MaxGap: *maxGap, MinWidth: *minWidth},
			shard.Config{
				Ranks:        *cores,
				Workers:      *workers,
				TargetShards: *shards,
				Launch:       mpiSession.Launcher(),
			})
		if err != nil {
			die(err)
		}
		// Only rank 0 holds the reduced histogram the calls derive from.
		if mpiSession.Rank() != 0 {
			return
		}
		dst := *out
		if dst == "" {
			dst = *bam + ".peaks.tsv"
		}
		f, err := os.Create(dst)
		if err != nil {
			die(err)
		}
		for _, pk := range called {
			fmt.Fprintf(f, "%s\t%d\t%d\t%g\t%d\n",
				*rname, pk.Start*h.BinSize, pk.End*h.BinSize, pk.MaxValue, pk.MinSurvive)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("called %d peaks on %s (p_t=%g, FDR=%.6g, %d simulations) → %s\n",
			len(called), *rname, ptSel, fdr, len(simData), dst)

	case "nlmeans":
		histogram := requireTSV(*in, *op)
		p := parseq.NLMeansParams{R: *r, L: *l, Sigma: *sigma}
		denoised, err := parseq.DenoiseParallel(histogram, p, *cores)
		if err != nil {
			die(err)
		}
		dst := *out
		if dst == "" {
			dst = *in + ".denoised"
		}
		f, err := os.Create(dst)
		if err != nil {
			die(err)
		}
		if err := hist.WriteTSV(f, denoised); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("denoised %d bins (r=%d l=%d sigma=%g, %d workers) → %s\n",
			len(denoised), *r, *l, *sigma, *cores, dst)

	case "fdr":
		histogram := requireTSV(*in, *op)
		if *sims == "" {
			die(fmt.Errorf("-op fdr requires -sims"))
		}
		paths, err := filepath.Glob(*sims)
		if err != nil {
			die(err)
		}
		if len(paths) == 0 {
			die(fmt.Errorf("no simulation datasets match %q", *sims))
		}
		sort.Strings(paths)
		simData := make([][]float64, len(paths))
		for i, p := range paths {
			simData[i] = readTSV(p)
		}
		v, err := parseq.FDRParallel(histogram, simData, *pt, *cores)
		if err != nil {
			die(err)
		}
		fmt.Printf("FDR(p_t=%g) = %.6g  (%d bins, %d simulations, %d ranks)\n",
			*pt, v, len(histogram), len(simData), *cores)

	default:
		die(fmt.Errorf("unknown -op %q (want hist, peaks, nlmeans or fdr)", *op))
	}
}

func requireTSV(path, op string) []float64 {
	if path == "" {
		die(fmt.Errorf("-op %s requires -in", op))
	}
	return readTSV(path)
}

func readTSV(path string) []float64 {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	v, err := hist.ReadTSV(f)
	if err != nil {
		die(fmt.Errorf("%s: %w", path, err))
	}
	return v
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ngsstat:", err)
	os.Exit(1)
}
