// Command samsort coordinate-sorts a SAM or BAM file into BAM, the
// precondition for BAI/BAIX indexing and partial conversion.
//
// Usage:
//
//	samsort -in reads.sam -out sorted.bam -p 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parseq/internal/obsflag"
	"parseq/internal/sorter"
)

func main() {
	var (
		in       = flag.String("in", "", "input file (.sam or .bam)")
		out      = flag.String("out", "", "output BAM (default: input with .sorted.bam)")
		cores    = flag.Int("p", 1, "parallel chunk-sort workers")
		chunk    = flag.Int("chunk", 0, "records per in-memory chunk (default 100000)")
		codec    = flag.Int("codec-workers", 0, "BGZF codec goroutines per BAM stream (0: auto, one per CPU capped; 1: sequential codec)")
		shared   = flag.Bool("shared-codec", false, "compress spilled runs on the process-wide shared deflate pool")
		obsFlags = obsflag.Register(nil)
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "samsort: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(strings.TrimSuffix(*in, ".sam"), ".bam") + ".sorted.bam"
	}
	obsSession, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "samsort:", err)
		os.Exit(1)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samsort:", err)
		}
	}()
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "samsort: serving metrics on http://%s/metrics\n", addr)
	}
	opts := sorter.Options{ChunkRecords: *chunk, Cores: *cores, CodecWorkers: *codec, SharedCodec: *shared}
	var n int64
	switch {
	case strings.HasSuffix(*in, ".sam"):
		n, err = sorter.SortSAMToBAM(*in, dst, opts)
	case strings.HasSuffix(*in, ".bam"):
		n, err = sorter.SortBAM(*in, dst, opts)
	default:
		err = fmt.Errorf("cannot infer input format of %q (want .sam or .bam)", *in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "samsort:", err)
		os.Exit(1)
	}
	fmt.Printf("sorted %d records → %s\n", n, dst)
}
