// Command seqconvd is the resident conversion/analysis daemon: an HTTP
// front door over the seqconvert/samsort/samstat/ngsstat engines with a
// bounded job queue and load-shedding admission control. Submit a job,
// poll it, stream its result:
//
//	seqconvd -addr :8371 &
//	curl -X POST -H 'Content-Type: application/json' \
//	     -d '{"op":"convert","format":"bed","input_path":"/data/x.sam"}' \
//	     http://localhost:8371/v1/jobs
//	curl http://localhost:8371/v1/jobs/j000001
//	curl -o out.bed http://localhost:8371/v1/jobs/j000001/result
//
// Inputs can also stream in the submission body (the spec then rides
// the X-Seqconvd-Spec header). The observability plane — /metrics,
// /progress, /trace, /debug/pprof — shares the daemon's listener.
//
// With a worker fleet, jobs whose "ranks" match the fleet size fan out
// across processes over the mpinet transport:
//
//	seqconvd -addr :8371 -ranks 3 -coord :9900 &
//	seqconvd -worker -rank 1 -ranks 3 -coord host0:9900 &
//	seqconvd -worker -rank 2 -ranks 3 -coord host0:9900 &
//
// SIGINT/SIGTERM drains gracefully: admission stops immediately,
// in-flight jobs get -drain-timeout to finish, telemetry flushes, and
// the process exits 128+signal.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"parseq/internal/daemon"
	"parseq/internal/obs"
	"parseq/internal/obsflag"
)

func main() {
	var (
		addr     = flag.String("addr", ":8371", "HTTP listen address for the job API and observability plane")
		queue    = flag.Int("queue", daemon.DefaultMaxQueue, "bounded job queue capacity; submissions beyond it are shed with 429")
		maxBytes = flag.Int64("max-bytes", daemon.DefaultMaxBytes, "in-flight input byte budget across queued and running jobs")
		maxWait  = flag.Duration("max-wait", daemon.DefaultMaxWait, "predicted-wait ceiling; jobs the backlog would delay longer are shed")
		jobs     = flag.Int("jobs", 0, "jobs executed concurrently (0: 2)")
		spool    = flag.String("spool", "", "spool directory for job inputs and outputs (default: a temp dir)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget for in-flight jobs on SIGINT/SIGTERM")
		ranks    = flag.Int("ranks", 1, "fleet world size including the daemon; >1 forms a worker fleet at -coord")
		coord    = flag.String("coord", "", "fleet rendezvous address (daemon listens, workers dial)")
		worker   = flag.Bool("worker", false, "run as a fleet worker rank instead of the daemon")
		rank     = flag.Int("rank", 0, "this worker's rank in [1, ranks)")
		listen   = flag.String("listen", "", "worker mesh bind address (default: ephemeral)")
		obsFlags = obsflag.Register(nil)
	)
	flag.Parse()

	if *worker {
		if err := daemon.RunWorker(daemon.WorkerConfig{
			Rank: *rank, Ranks: *ranks, Coord: *coord, Listen: *listen,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "seqconvd: "+format+"\n", args...)
			},
		}); err != nil {
			die(err)
		}
		return
	}

	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "seqconvd:", err)
		}
	}()
	// A resident service always carries a registry: admission control
	// reads the shared codec pool's throughput EWMA from it, and the
	// /metrics endpoint serves it. The obs flags merely add outputs.
	reg := obsSession.Registry()
	if reg == nil {
		reg = obs.New()
		obs.SetDefault(reg)
		defer obs.SetDefault(nil)
	}

	var fleet *daemon.Fleet
	if *ranks > 1 {
		if *coord == "" {
			die(fmt.Errorf("-ranks %d needs -coord", *ranks))
		}
		fmt.Fprintf(os.Stderr, "seqconvd: waiting for %d workers at %s\n", *ranks-1, *coord)
		fleet, err = daemon.DialFleet(*coord, *ranks)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "seqconvd: fleet of %d ranks formed\n", *ranks)
	}

	d, err := daemon.New(daemon.Options{
		Registry: reg,
		Policy:   daemon.Policy{MaxQueue: *queue, MaxBytes: *maxBytes, MaxWait: *maxWait},
		SpoolDir: *spool, Concurrency: *jobs, Fleet: fleet,
	})
	if err != nil {
		die(err)
	}

	// One mux, one listener: the job API alongside the full
	// observability plane rather than a daemon-private copy of it.
	mux := http.NewServeMux()
	d.Install(mux)
	obsServer, err := obs.NewServer(reg, obsSession.View())
	if err != nil {
		die(err)
	}
	obsServer.Install(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Handler: mux}

	obsSession.OnShutdown(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "seqconvd: %v: draining (budget %v)\n", sig, *drainTO)
		finished, err := d.Drain(*drainTO)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seqconvd:", err)
		}
		fmt.Fprintf(os.Stderr, "seqconvd: drained; %d jobs finished\n", finished)
		httpSrv.Close()
		d.Close()
	})

	fmt.Fprintf(os.Stderr, "seqconvd: listening on http://%s (spool %s)\n", ln.Addr(), d.Spool())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		die(err)
	}
	// Serve only ends through the shutdown hook, whose signal handler
	// flushes telemetry and exits 128+signal; park here instead of
	// racing it to a plain exit 0.
	select {}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "seqconvd:", err)
	os.Exit(1)
}
