// Command ngsgen generates deterministic synthetic NGS datasets: SAM/BAM
// alignment files shaped like the paper's mouse WGS data, plus coverage
// histograms and FDR simulation datasets.
//
// Usage:
//
//	ngsgen -reads 100000 -out data/mouse            # data/mouse.sam + .bam
//	ngsgen -hist 640000 -sims 80 -out data/chip     # histogram + simulations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parseq"
	"parseq/internal/hist"
)

func main() {
	var (
		reads   = flag.Int("reads", 0, "alignment records to generate")
		readLen = flag.Int("readlen", 90, "bases per read")
		seed    = flag.Int64("seed", 1, "generator seed")
		sorted  = flag.Bool("sorted", true, "emit records in coordinate order")
		out     = flag.String("out", "dataset", "output path prefix")
		format  = flag.String("format", "both", "alignment output: sam, bam or both")
		bins    = flag.Int("hist", 0, "generate a coverage histogram with this many bins")
		sims    = flag.Int("sims", 0, "generate this many FDR simulation datasets (requires -hist)")
	)
	flag.Parse()

	if *reads <= 0 && *bins <= 0 {
		fmt.Fprintln(os.Stderr, "ngsgen: nothing to do; pass -reads and/or -hist")
		flag.Usage()
		os.Exit(2)
	}

	if *reads > 0 {
		cfg := parseq.DefaultDatasetConfig(*reads)
		cfg.Seed = *seed
		cfg.ReadLen = *readLen
		cfg.Sorted = *sorted
		d := parseq.GenerateDataset(cfg)
		if *format == "sam" || *format == "both" {
			writeOrDie(*out+".sam", d.WriteSAM)
			fmt.Printf("wrote %s.sam (%d records)\n", *out, len(d.Records))
		}
		if *format == "bam" || *format == "both" {
			writeOrDie(*out+".bam", d.WriteBAM)
			fmt.Printf("wrote %s.bam (%d records)\n", *out, len(d.Records))
		}
		if *format != "sam" && *format != "bam" && *format != "both" {
			die(fmt.Errorf("unknown -format %q (want sam, bam or both)", *format))
		}
	}

	if *bins > 0 {
		h := parseq.GenerateHistogram(*bins, *seed)
		writeOrDie(*out+".hist.tsv", func(f io.Writer) error {
			return hist.WriteTSV(f, h)
		})
		fmt.Printf("wrote %s.hist.tsv (%d bins)\n", *out, *bins)
		for s := 0; s < *sims; s++ {
			sim := parseq.GenerateSimulations(1, *bins, *seed+int64(s)+1)[0]
			path := fmt.Sprintf("%s.sim%03d.tsv", *out, s)
			writeOrDie(path, func(f io.Writer) error {
				return hist.WriteTSV(f, sim)
			})
		}
		if *sims > 0 {
			fmt.Printf("wrote %d simulation datasets (%s.sim*.tsv)\n", *sims, *out)
		}
	} else if *sims > 0 {
		die(fmt.Errorf("-sims requires -hist"))
	}
}

func writeOrDie(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		die(err)
	}
	if err := write(f); err != nil {
		f.Close()
		die(err)
	}
	if err := f.Close(); err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ngsgen:", err)
	os.Exit(1)
}
