// Command samstat prints samtools-flagstat-style summary statistics for
// a SAM file, computed in parallel with the framework's Algorithm 1
// partitioning.
//
// Usage:
//
//	samstat -in reads.sam -p 8
package main

import (
	"flag"
	"fmt"
	"os"

	"parseq/internal/flagstat"
)

func main() {
	var (
		in    = flag.String("in", "", "SAM file")
		cores = flag.Int("p", 1, "parallel ranks")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "samstat: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	stats, err := flagstat.SAMFile(*in, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samstat:", err)
		os.Exit(1)
	}
	fmt.Print(stats.Format())
}
