// Command samstat prints samtools-flagstat-style summary statistics,
// computed in parallel with the framework's Algorithm 1 partitioning
// for SAM input or region-parallel over genomic shards for BAM/BAMX
// input.
//
// Usage:
//
//	samstat -in reads.sam -p 8
//	samstat -bam reads.bam -p 2 -workers 4 -shards 32
//	samstat -bam reads.bamx -metrics-addr :9100
//
// With -transport tcp the BAM/BAMX path becomes one rank of a
// multi-process world: rank 0 scatters shard descriptors and reduces
// the per-rank partial tallies.
package main

import (
	"flag"
	"fmt"
	"os"

	"parseq/internal/flagstat"
	"parseq/internal/mpiflag"
	"parseq/internal/obsflag"
	"parseq/internal/shard"
)

func main() {
	var (
		in       = flag.String("in", "", "SAM file")
		bam      = flag.String("bam", "", "BAM or BAMX file (region-parallel shard path)")
		cores    = flag.Int("p", 1, "parallel ranks")
		workers  = flag.Int("workers", 0, "shard workers per rank (0: one per CPU, capped)")
		shards   = flag.Int("shards", 0, "target shard count across the world (0: auto)")
		obsFlags = obsflag.Register(nil)
		mpiFlags = mpiflag.Register(nil)
	)
	flag.Parse()
	if (*in == "") == (*bam == "") {
		fmt.Fprintln(os.Stderr, "samstat: exactly one of -in (SAM) or -bam (BAM/BAMX) is required")
		flag.Usage()
		os.Exit(2)
	}
	obsSession, err := obsFlags.Start()
	if err != nil {
		die(err)
	}
	defer func() {
		if err := obsSession.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samstat:", err)
		}
	}()
	mpiSession, err := mpiFlags.Connect()
	if err != nil {
		die(err)
	}
	defer mpiSession.Close()
	mpiSession.StartTelemetry(obsSession.View(), obsFlags.Heartbeat)
	if addr := obsSession.ServerAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "samstat: serving metrics on http://%s/metrics\n", addr)
	}
	*cores = mpiSession.Ranks(*cores)

	var stats flagstat.Stats
	if *bam != "" {
		p := shard.OpenPathProvider(*bam)
		defer p.Close()
		stats, err = flagstat.Sharded(p, shard.Config{
			Ranks:        *cores,
			Workers:      *workers,
			TargetShards: *shards,
			Launch:       mpiSession.Launcher(),
		})
		if err != nil {
			die(err)
		}
	} else {
		stats, err = flagstat.SAMFileLaunch(*in, *cores, mpiSession.Launcher())
		if err != nil {
			die(err)
		}
	}
	// Under a distributed launch the reduced tally is complete on rank 0
	// only; other ranks exit quietly.
	if mpiSession.Rank() != 0 {
		return
	}
	fmt.Print(stats.Format())
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "samstat:", err)
	os.Exit(1)
}
