module parseq

go 1.22
