package mpiflag

import (
	"flag"
	"net"
	"sync"
	"testing"
	"time"

	"parseq/internal/mpi"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInprocDefaults(t *testing.T) {
	s, err := parse(t).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Distributed() {
		t.Error("default session claims to be distributed")
	}
	if s.Rank() != 0 {
		t.Errorf("Rank() = %d", s.Rank())
	}
	if s.Ranks(5) != 5 {
		t.Errorf("Ranks(5) = %d", s.Ranks(5))
	}
	if s.Launcher() != nil {
		t.Error("in-process session must hand back a nil launcher (= mpi.Run)")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	cases := [][]string{
		{"-transport", "carrier-pigeon"},
		{"-transport", "tcp"},                // no -world
		{"-world", "2"},                      // -world without tcp
		{"-coord", "host:1"},                 // -coord without tcp
		{"-transport", "tcp", "-world", "2"}, // tcp without -coord
		{"-transport", "tcp", "-world", "2", "-rank", "2", "-coord", "h:1"}, // rank out of range
	}
	for _, args := range cases {
		if _, err := parse(t, args...).Connect(); err == nil {
			t.Errorf("Connect(%v) accepted an invalid flag set", args)
		}
	}
}

// TestTCPSessionRoundTrip forms a two-rank loopback world through the
// flag surface and runs a collective over the session launcher — the
// exact path the CLIs take.
func TestTCPSessionRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	ln.Close()

	const world = 2
	errs := make([]error, world)
	sums := make([]int64, world)
	var wg sync.WaitGroup
	wg.Add(world)
	for r := 0; r < world; r++ {
		go func(rank int) {
			defer wg.Done()
			f := parse(t, "-transport", "tcp",
				"-world", "2", "-rank", map[int]string{0: "0", 1: "1"}[rank],
				"-coord", coord)
			s, err := f.Connect()
			if err != nil {
				errs[rank] = err
				return
			}
			defer s.Close()
			if !s.Distributed() || s.Rank() != rank || s.Ranks(99) != world {
				t.Errorf("rank %d session: distributed=%v rank=%d ranks=%d",
					rank, s.Distributed(), s.Rank(), s.Ranks(99))
			}
			errs[rank] = s.Launcher()(world, func(c *mpi.Comm) error {
				sum, err := c.AllreduceInt64Sum(int64(c.Rank() + 10))
				if err != nil {
					return err
				}
				sums[rank] = sum
				return c.Barrier()
			})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("tcp session round trip timed out")
	}
	for r := 0; r < world; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if sums[r] != 21 {
			t.Errorf("rank %d allreduce sum = %d, want 21", r, sums[r])
		}
	}
}
