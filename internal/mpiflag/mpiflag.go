// Package mpiflag wires the distributed rank transport into the
// command-line tools the way obsflag wires telemetry: every CLI
// registers the same -transport/-rank/-world/-coord/-listen flags,
// connects one Session around its work, and closes it to tear the
// world down. With the default in-process transport the session is a
// no-op and the tools behave exactly as before; with -transport tcp
// the same binary becomes one rank of a multi-process world, and the
// conv/hist/fdr/flagstat rank code runs over it unmodified.
//
// A distributed run starts the same command once per rank:
//
//	seqconvert -transport tcp -world 2 -rank 0 -coord host0:9900 -in data.sam ...
//	seqconvert -transport tcp -world 2 -rank 1 -coord host0:9900 -in data.sam ...
//
// Rank 0's process listens on the coordinator address; the rest dial
// it. Every process must be launched with the same world size, the
// same coordinator address and the same work flags.
package mpiflag

import (
	"flag"
	"fmt"
	"time"

	"parseq/internal/mpi"
	"parseq/internal/mpinet"
	"parseq/internal/obs"
)

// Flags holds the parsed transport flag values.
type Flags struct {
	Transport string // -transport: "inproc" or "tcp"
	Rank      int    // -rank: this process's rank
	World     int    // -world: total rank count
	Coord     string // -coord: rendezvous host:port (rank 0 listens)
	Listen    string // -listen: worker mesh bind address
}

// Register installs the transport flags on fs (flag.CommandLine when
// nil) and returns the value holder to pass to Connect after parsing.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.Transport, "transport", "inproc", "rank transport: inproc (goroutine ranks in this process) or tcp (this process is one rank of a multi-process world)")
	fs.IntVar(&f.Rank, "rank", 0, "this process's rank in [0, world) (tcp transport)")
	fs.IntVar(&f.World, "world", 0, "total number of rank processes (tcp transport)")
	fs.StringVar(&f.Coord, "coord", "", "rendezvous address host:port; rank 0 listens on it, workers dial it (tcp transport)")
	fs.StringVar(&f.Listen, "listen", "", "bind address for this worker's mesh listener (tcp transport; default an ephemeral port)")
	return f
}

// Session is one CLI run's connection to the rank world. The zero-cost
// in-process session has a nil world; every method tolerates it, so
// callers use one code path for both transports.
type Session struct {
	world     *mpinet.World
	telemetry *mpi.Telemetry
}

// Connect validates the flags and, for the TCP transport, performs the
// rendezvous. It blocks until the whole world is connected (or the
// join times out).
func (f *Flags) Connect() (*Session, error) {
	switch f.Transport {
	case "", "inproc":
		if f.World != 0 || f.Coord != "" {
			return nil, fmt.Errorf("mpiflag: -world/-coord require -transport tcp")
		}
		return &Session{}, nil
	case "tcp":
		if f.World < 1 {
			return nil, fmt.Errorf("mpiflag: -transport tcp requires -world")
		}
		w, err := mpinet.Connect(mpinet.Config{
			Rank:   f.Rank,
			World:  f.World,
			Coord:  f.Coord,
			Listen: f.Listen,
		})
		if err != nil {
			return nil, err
		}
		return &Session{world: w}, nil
	}
	return nil, fmt.Errorf("mpiflag: unknown transport %q", f.Transport)
}

// Distributed reports whether this process is one rank of a TCP world.
func (s *Session) Distributed() bool { return s.world != nil }

// Rank returns this process's rank: 0 for the in-process transport,
// where one process holds every rank.
func (s *Session) Rank() int {
	if s.world == nil {
		return 0
	}
	return s.world.Rank()
}

// Ranks resolves the rank count: the world size under TCP (every
// process must agree with it), the requested count in-process.
func (s *Session) Ranks(requested int) int {
	if s.world == nil {
		return requested
	}
	return s.world.Size()
}

// Launcher returns the launcher library code should run rank functions
// through: nil (= mpi.Run) in-process, the world's local-rank launcher
// under TCP.
func (s *Session) Launcher() mpi.Launcher {
	if s.world == nil {
		return nil
	}
	return s.world.Launcher()
}

// StartTelemetry begins the cross-rank telemetry gather over the TCP
// world: this rank ships metric/span deltas and heartbeats to rank 0
// every interval (≤ 0 picks the default), and rank 0 folds every
// rank's deltas into view — the world picture behind its /metrics and
// /trace endpoints. A no-op in-process (one process already holds the
// whole world's registry) or when telemetry is disabled. The returned
// handle's Stop ships a final delta; Close calls it too.
func (s *Session) StartTelemetry(view *obs.WorldView, interval time.Duration) *mpi.Telemetry {
	if s.world == nil {
		return nil
	}
	s.telemetry = mpi.StartTelemetry(s.world, mpi.TelemetryOptions{
		View:     view,
		Interval: interval,
	})
	return s.telemetry
}

// Close tears the world down: the telemetry loop's final shipment, a
// clean goodbye to the peers, then the connections (TCP delivers any
// in-flight frames before the goodbye, so a peer mid-collective is not
// disturbed). Safe on the in-process session.
func (s *Session) Close() error {
	if s.world == nil {
		return nil
	}
	s.telemetry.Stop()
	return s.world.Close()
}
