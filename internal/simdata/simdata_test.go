package simdata

import (
	"bytes"
	"testing"

	"parseq/internal/bam"
	"parseq/internal/sam"
)

func TestMouseChromosomes(t *testing.T) {
	refs := MouseChromosomes(1000)
	if len(refs) != 21 {
		t.Fatalf("chromosomes = %d, want 21", len(refs))
	}
	if refs[0].Name != "chr1" || refs[0].Length != 197195 {
		t.Errorf("chr1 = %+v", refs[0])
	}
	if refs[20].Name != "chrY" {
		t.Errorf("last = %+v", refs[20])
	}
	// Scale clamping.
	if got := MouseChromosomes(0)[0].Length; got != 197195432 {
		t.Errorf("unscaled chr1 = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(100))
	b := Generate(DefaultConfig(100))
	if len(a.Records) != 100 || len(b.Records) != 100 {
		t.Fatalf("records = %d/%d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].String() != b.Records[i].String() {
			t.Fatalf("record %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	cfg := DefaultConfig(50)
	a := Generate(cfg)
	cfg.Seed = 2
	b := Generate(cfg)
	same := 0
	for i := range a.Records {
		if a.Records[i].String() == b.Records[i].String() {
			same++
		}
	}
	if same == len(a.Records) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateRecordsAreValid(t *testing.T) {
	d := Generate(DefaultConfig(500))
	for i := range d.Records {
		r := &d.Records[i]
		// Every record must survive a SAM text round trip.
		reparsed, err := sam.ParseRecord(r.String())
		if err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if reparsed.String() != r.String() {
			t.Fatalf("record %d not canonical", i)
		}
		if !r.Unmapped() {
			if got := r.Cigar.QueryLength(); got != len(r.Seq) {
				t.Fatalf("record %d CIGAR consumes %d bases, SEQ has %d", i, got, len(r.Seq))
			}
			if d.Header.RefID(r.RName) < 0 {
				t.Fatalf("record %d on unknown reference %q", i, r.RName)
			}
			ref := d.Header.RefByID(d.Header.RefID(r.RName))
			if int(r.Pos) > ref.Length {
				t.Fatalf("record %d at %d beyond %s length %d", i, r.Pos, ref.Name, ref.Length)
			}
		}
		if len(r.Seq) != 90 || len(r.Qual) != 90 {
			t.Fatalf("record %d SEQ/QUAL = %d/%d, want 90", i, len(r.Seq), len(r.Qual))
		}
	}
}

func TestGenerateSortedOrder(t *testing.T) {
	d := Generate(DefaultConfig(300))
	lastRef, lastPos := -2, int32(0)
	for i := range d.Records {
		r := &d.Records[i]
		ref := d.Header.RefID(r.RName)
		if ref < 0 {
			lastRef = 1 << 30 // unmapped sort last
			continue
		}
		if lastRef == 1<<30 {
			t.Fatalf("mapped record %d after unmapped block", i)
		}
		if ref < lastRef || (ref == lastRef && r.Pos < lastPos) {
			t.Fatalf("record %d out of order: %s:%d after ref %d pos %d", i, r.RName, r.Pos, lastRef, lastPos)
		}
		lastRef, lastPos = ref, r.Pos
	}
}

func TestGenerateUnsorted(t *testing.T) {
	cfg := DefaultConfig(200)
	cfg.Sorted = false
	d := Generate(cfg)
	if d.Header.SortOrder != sam.SortUnsorted {
		t.Errorf("SortOrder = %q", d.Header.SortOrder)
	}
}

func TestGenerateFractions(t *testing.T) {
	cfg := DefaultConfig(2000)
	d := Generate(cfg)
	unmapped, paired := 0, 0
	for i := range d.Records {
		if d.Records[i].Unmapped() {
			unmapped++
		}
		if d.Records[i].Flag.Paired() {
			paired++
		}
	}
	if unmapped == 0 || unmapped > 100 {
		t.Errorf("unmapped = %d of 2000, want ≈20", unmapped)
	}
	if paired < 1700 {
		t.Errorf("paired = %d of 2000, want ≈1900", paired)
	}
}

func TestWriteSAMReadable(t *testing.T) {
	d := Generate(DefaultConfig(100))
	var buf bytes.Buffer
	if err := d.WriteSAM(&buf); err != nil {
		t.Fatalf("WriteSAM: %v", err)
	}
	r, err := sam.NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	if len(r.Header().Refs) != len(d.Header.Refs) {
		t.Errorf("refs = %d, want %d", len(r.Header().Refs), len(d.Header.Refs))
	}
}

func TestWriteBAMReadable(t *testing.T) {
	d := Generate(DefaultConfig(100))
	var buf bytes.Buffer
	if err := d.WriteBAM(&buf); err != nil {
		t.Fatalf("WriteBAM: %v", err)
	}
	r, err := bam.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range recs {
		if recs[i].String() != d.Records[i].String() {
			t.Fatalf("BAM record %d differs from source", i)
		}
	}
}

func TestHistogramShape(t *testing.T) {
	h := Histogram(10000, 7)
	if len(h) != 10000 {
		t.Fatalf("bins = %d", len(h))
	}
	var sum, max float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative histogram value")
		}
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(h))
	if mean < 3 || mean > 10 {
		t.Errorf("mean = %g, want ≈5-6", mean)
	}
	if max < 25 {
		t.Errorf("max = %g, want a peak ≥ 25", max)
	}
}

func TestHistogramDeterministic(t *testing.T) {
	a := Histogram(1000, 3)
	b := Histogram(1000, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d differs", i)
		}
	}
}

func TestSimulations(t *testing.T) {
	sims := Simulations(5, 400, 11)
	if len(sims) != 5 {
		t.Fatalf("sims = %d", len(sims))
	}
	for i, s := range sims {
		if len(s) != 400 {
			t.Fatalf("sim %d bins = %d", i, len(s))
		}
		for _, v := range s {
			if v < 0 {
				t.Fatalf("sim %d has negative value", i)
			}
		}
	}
	// Different simulations differ.
	same := 0
	for i := range sims[0] {
		if sims[0][i] == sims[1][i] {
			same++
		}
	}
	if same == len(sims[0]) {
		t.Error("simulations 0 and 1 identical")
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(DefaultConfig(1000))
	}
}
