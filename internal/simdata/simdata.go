// Package simdata deterministically generates synthetic next-generation
// sequencing data standing in for the paper's experimental datasets
// (whole-genome mouse DNA-seq: Illumina HiSeq 2000 paired-end 90 bp reads
// aligned to mm9 with BWA). Generated alignments have realistic field
// distributions — varying CIGARs, qualities, optional tags and template
// geometry — because the converter's per-record cost, which the paper's
// experiments measure, is a function of exactly those field sizes.
package simdata

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"parseq/internal/bam"
	"parseq/internal/sam"
)

// MouseChromosomes mirrors the mm9 chromosome names with lengths scaled
// down by scale (mm9 chr1 is 197,195,432 bp; scale 1000 gives 197,195).
func MouseChromosomes(scale int) []sam.Reference {
	if scale < 1 {
		scale = 1
	}
	full := []struct {
		name string
		len  int
	}{
		{"chr1", 197195432}, {"chr2", 181748087}, {"chr3", 159599783},
		{"chr4", 155630120}, {"chr5", 152537259}, {"chr6", 149517037},
		{"chr7", 152524553}, {"chr8", 131738871}, {"chr9", 124076172},
		{"chr10", 129993255}, {"chr11", 121843856}, {"chr12", 121257530},
		{"chr13", 120284312}, {"chr14", 125194864}, {"chr15", 103494974},
		{"chr16", 98319150}, {"chr17", 95272651}, {"chr18", 90772031},
		{"chr19", 61342430}, {"chrX", 166650296}, {"chrY", 15902555},
	}
	refs := make([]sam.Reference, len(full))
	for i, c := range full {
		refs[i] = sam.Reference{Name: c.name, Length: c.len / scale, ID: i}
	}
	return refs
}

// Config controls dataset generation.
type Config struct {
	Seed         int64
	NumReads     int // number of alignment records to generate
	ReadLen      int // bases per read (paper: 90)
	Chromosomes  []sam.Reference
	Sorted       bool    // emit records in coordinate order
	PairedFrac   float64 // fraction of reads that are one end of a proper pair
	UnmappedFrac float64 // fraction of reads that are unmapped
	Sample       string  // read-group sample name
}

// DefaultConfig mirrors the paper's dataset shape at laptop scale.
func DefaultConfig(numReads int) Config {
	return Config{
		Seed:         1,
		NumReads:     numReads,
		ReadLen:      90,
		Chromosomes:  MouseChromosomes(1000),
		Sorted:       true,
		PairedFrac:   0.95,
		UnmappedFrac: 0.01,
		Sample:       "mouse1",
	}
}

// Dataset is a generated header plus records.
type Dataset struct {
	Header  *sam.Header
	Records []sam.Record
}

// Generate builds the synthetic dataset described by cfg.
func Generate(cfg Config) *Dataset {
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = 90
	}
	if len(cfg.Chromosomes) == 0 {
		cfg.Chromosomes = MouseChromosomes(1000)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := sam.NewHeader(cfg.Chromosomes...)
	if cfg.Sorted {
		h.SortOrder = sam.SortCoordinate
	} else {
		h.SortOrder = sam.SortUnsorted
	}
	h.ReadGroups = append(h.ReadGroups, sam.ReadGroup{
		ID: "grp1", Sample: cfg.Sample, Library: "lib1", Platform: "ILLUMINA",
	})
	h.Programs = append(h.Programs, sam.Program{
		ID: "bwa", Name: "bwa", Version: "0.6.2",
		CommandLine: "bwa sampe ref.fa r1.sai r2.sai r1.fq r2.fq",
	})

	recs := make([]sam.Record, 0, cfg.NumReads)
	for i := 0; i < cfg.NumReads; i++ {
		recs = append(recs, generateRecord(rng, cfg, h, i))
	}
	if cfg.Sorted {
		sort.SliceStable(recs, func(i, j int) bool {
			ri, rj := h.RefID(recs[i].RName), h.RefID(recs[j].RName)
			if ri != rj {
				// Unmapped (-1) records sort last, as samtools does.
				if ri < 0 {
					return false
				}
				if rj < 0 {
					return true
				}
				return ri < rj
			}
			return recs[i].Pos < recs[j].Pos
		})
	}
	return &Dataset{Header: h, Records: recs}
}

const bases = "ACGT"
const baseQualities = "##'+2:BFHIIJJJ" // Illumina-like quality alphabet, low to high

func generateRecord(rng *rand.Rand, cfg Config, h *sam.Header, i int) sam.Record {
	n := cfg.ReadLen
	seq := make([]byte, n)
	qual := make([]byte, n)
	for j := range seq {
		seq[j] = bases[rng.Intn(4)]
		// Qualities degrade toward the read's 3' end, like real Illumina data.
		idx := len(baseQualities) - 1 - rng.Intn(1+(j*len(baseQualities))/(2*n))
		qual[j] = baseQualities[idx]
	}
	qname := fmt.Sprintf("HWI-ST%04d:8:1101:%05d:%06d", rng.Intn(10000), rng.Intn(99999), i)

	if rng.Float64() < cfg.UnmappedFrac {
		return sam.Record{
			QName: qname, Flag: sam.FlagUnmapped, RName: "*", Pos: 0, MapQ: 0,
			RNext: "*", Seq: string(seq), Qual: string(qual),
			Tags: []sam.Tag{sam.StringTag("RG", "grp1")},
		}
	}

	ref := cfg.Chromosomes[rng.Intn(len(cfg.Chromosomes))]
	maxPos := ref.Length - n
	if maxPos < 1 {
		maxPos = 1
	}
	pos := int32(rng.Intn(maxPos) + 1)
	cigar := randomCigar(rng, n)
	mapq := uint8(20 + rng.Intn(41))

	rec := sam.Record{
		QName: qname,
		RName: ref.Name,
		Pos:   pos,
		MapQ:  mapq,
		Cigar: cigar,
		RNext: "*",
		Seq:   string(seq),
		Qual:  string(qual),
		Tags: []sam.Tag{
			sam.IntTag("NM", int64(rng.Intn(4))),
			sam.StringTag("RG", "grp1"),
			sam.IntTag("AS", int64(n-rng.Intn(10))),
		},
	}
	if rng.Float64() < cfg.PairedFrac {
		isize := 200 + rng.Intn(200)
		rec.Flag = sam.FlagPaired | sam.FlagProperPair
		if rng.Intn(2) == 0 {
			rec.Flag |= sam.FlagRead1 | sam.FlagMateReverse
			rec.PNext = pos + int32(isize-n)
			rec.TLen = int32(isize)
		} else {
			rec.Flag |= sam.FlagRead2 | sam.FlagReverse
			rec.PNext = pos - int32(isize-n)
			if rec.PNext < 1 {
				rec.PNext = 1
			}
			rec.TLen = int32(-isize)
		}
		rec.RNext = "="
	} else if rng.Intn(2) == 0 {
		rec.Flag = sam.FlagReverse
	}
	return rec
}

// randomCigar produces BWA-like CIGAR distributions: mostly full-length
// matches, with occasional soft clips, insertions and deletions.
func randomCigar(rng *rand.Rand, n int) sam.Cigar {
	switch r := rng.Float64(); {
	case r < 0.80:
		return sam.Cigar{sam.NewCigarOp(sam.CigarMatch, n)}
	case r < 0.90:
		clip := 1 + rng.Intn(n/4)
		if rng.Intn(2) == 0 {
			return sam.Cigar{
				sam.NewCigarOp(sam.CigarSoftClip, clip),
				sam.NewCigarOp(sam.CigarMatch, n-clip),
			}
		}
		return sam.Cigar{
			sam.NewCigarOp(sam.CigarMatch, n-clip),
			sam.NewCigarOp(sam.CigarSoftClip, clip),
		}
	case r < 0.95:
		ins := 1 + rng.Intn(5)
		left := 1 + rng.Intn(n-ins-1)
		return sam.Cigar{
			sam.NewCigarOp(sam.CigarMatch, left),
			sam.NewCigarOp(sam.CigarInsertion, ins),
			sam.NewCigarOp(sam.CigarMatch, n-left-ins),
		}
	default:
		del := 1 + rng.Intn(10)
		left := 1 + rng.Intn(n-2)
		return sam.Cigar{
			sam.NewCigarOp(sam.CigarMatch, left),
			sam.NewCigarOp(sam.CigarDeletion, del),
			sam.NewCigarOp(sam.CigarMatch, n-left),
		}
	}
}

// WriteSAM writes the dataset as SAM text.
func (d *Dataset) WriteSAM(w io.Writer) error {
	sw, err := sam.NewWriter(w, d.Header)
	if err != nil {
		return err
	}
	for i := range d.Records {
		if err := sw.Write(&d.Records[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// WriteBAM writes the dataset as BAM.
func (d *Dataset) WriteBAM(w io.Writer) error {
	bw, err := bam.NewWriter(w, d.Header)
	if err != nil {
		return err
	}
	for i := range d.Records {
		if err := bw.Write(&d.Records[i]); err != nil {
			return err
		}
	}
	return bw.Close()
}

// Histogram generates a synthetic binned coverage histogram of the kind
// the statistical module analyses: a noisy background with enriched
// regions (peaks), mimicking ChIP-seq coverage. Values are non-negative.
func Histogram(bins int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	h := make([]float64, bins)
	// Poisson-ish background around λ=5.
	for i := range h {
		h[i] = math.Max(0, 5+rng.NormFloat64()*2.2)
	}
	// Enriched regions: one peak per ~2000 bins, Gaussian profile.
	nPeaks := bins / 2000
	if nPeaks < 1 {
		nPeaks = 1
	}
	for p := 0; p < nPeaks; p++ {
		center := rng.Intn(bins)
		height := 30 + rng.Float64()*70
		width := 10 + rng.Float64()*40
		lo := center - int(4*width)
		hi := center + int(4*width)
		if lo < 0 {
			lo = 0
		}
		if hi > bins {
			hi = bins
		}
		for i := lo; i < hi; i++ {
			d := float64(i-center) / width
			h[i] += height * math.Exp(-d*d/2)
		}
	}
	return h
}

// Simulations generates B random-background simulation datasets of the
// given bin count, as used by the FDR computation: background noise with
// the same marginal distribution as the histogram's background but no
// true peaks.
func Simulations(b, bins int, seed int64) [][]float64 {
	out := make([][]float64, b)
	for s := range out {
		rng := rand.New(rand.NewSource(seed + int64(s)*7919))
		sim := make([]float64, bins)
		for i := range sim {
			sim[i] = math.Max(0, 5+rng.NormFloat64()*2.2)
		}
		out[s] = sim
	}
	return out
}
