package nlmeans

import (
	"math"
	"math/rand"
	"testing"

	"parseq/internal/mpi"
	"parseq/internal/simdata"
)

var testParams = Params{R: 10, L: 3, Sigma: 10}

func almostEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return i, false
		}
	}
	return 0, true
}

func TestValidate(t *testing.T) {
	cases := []Params{
		{R: 0, L: 1, Sigma: 1},
		{R: 1, L: -1, Sigma: 1},
		{R: 1, L: 1, Sigma: 0},
		{R: 1, L: 1, Sigma: math.NaN()},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded", p)
		}
	}
	if err := testParams.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if got := (Params{R: 5, L: 2}).Halo(); got != 7 {
		t.Errorf("Halo = %d, want 7", got)
	}
}

func TestDenoiseConstantSignalIsFixedPoint(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = 7.5
	}
	out, err := Denoise(v, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if math.Abs(o-7.5) > 1e-12 {
			t.Fatalf("bin %d = %g, want 7.5", i, o)
		}
	}
}

func TestDenoiseReducesNoiseVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	clean := make([]float64, n)
	noisy := make([]float64, n)
	for i := range clean {
		clean[i] = 20 + 10*math.Sin(float64(i)/50)
		noisy[i] = clean[i] + rng.NormFloat64()*3
	}
	out, err := Denoise(noisy, Params{R: 20, L: 5, Sigma: 15})
	if err != nil {
		t.Fatal(err)
	}
	mse := func(a []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - clean[i]
			s += d * d
		}
		return s / float64(n)
	}
	before, after := mse(noisy), mse(out)
	if after >= before {
		t.Errorf("denoising did not reduce MSE: %g → %g", before, after)
	}
	if after > before/2 {
		t.Errorf("denoising too weak: %g → %g", before, after)
	}
}

func TestDenoisePreservesMassApproximately(t *testing.T) {
	// NL-means is a weighted average: output values stay within the input
	// range.
	v := simdata.Histogram(3000, 5)
	out, err := Denoise(v, testParams)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	for i, o := range out {
		if o < lo-1e-9 || o > hi+1e-9 {
			t.Fatalf("bin %d = %g outside input range [%g, %g]", i, o, lo, hi)
		}
	}
}

func TestDenoiseParallelMatchesSequential(t *testing.T) {
	v := simdata.Histogram(5000, 9)
	want, err := Denoise(v, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 3, 8, 16} {
		got, err := DenoiseParallel(v, testParams, cores)
		if err != nil {
			t.Fatalf("DenoiseParallel(cores=%d): %v", cores, err)
		}
		if i, ok := almostEqual(got, want); !ok {
			t.Errorf("cores=%d differs at bin %d: %g vs %g", cores, i, got[i], want[i])
		}
	}
	// cores < 1 normalises to sequential.
	got, err := DenoiseParallel(v, testParams, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := almostEqual(got, want); !ok {
		t.Error("cores=0 differs from sequential")
	}
}

func TestDenoiseDistributedMatchesSequential(t *testing.T) {
	v := simdata.Histogram(4000, 13)
	want, err := Denoise(v, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4, 7} {
		results := make([][]float64, ranks)
		err := mpi.Run(ranks, func(c *mpi.Comm) error {
			out, err := DenoiseDistributed(c, v, testParams)
			if err != nil {
				return err
			}
			results[c.Rank()] = out
			return nil
		})
		if err != nil {
			t.Fatalf("DenoiseDistributed(ranks=%d): %v", ranks, err)
		}
		for r, got := range results {
			if i, ok := almostEqual(got, want); !ok {
				t.Errorf("ranks=%d rank %d differs at bin %d: %g vs %g",
					ranks, r, i, got[i], want[i])
			}
		}
	}
}

func TestDenoiseDistributedRejectsNarrowPartitions(t *testing.T) {
	v := simdata.Histogram(50, 1) // 50 bins, halo 13, 8 ranks → 6-bin parts
	err := mpi.Run(8, func(c *mpi.Comm) error {
		_, err := DenoiseDistributed(c, v, testParams)
		return err
	})
	if err == nil {
		t.Error("narrow partitions accepted")
	}
}

func TestDenoiseErrorsPropagate(t *testing.T) {
	if _, err := Denoise(nil, Params{}); err == nil {
		t.Error("invalid params accepted by Denoise")
	}
	if _, err := DenoiseParallel(nil, Params{}, 2); err == nil {
		t.Error("invalid params accepted by DenoiseParallel")
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := DenoiseDistributed(c, []float64{1, 2}, Params{})
		return err
	})
	if err == nil {
		t.Error("invalid params accepted by DenoiseDistributed")
	}
}

func TestDenoiseEmptyInput(t *testing.T) {
	out, err := Denoise(nil, testParams)
	if err != nil || len(out) != 0 {
		t.Errorf("Denoise(nil) = %v, %v", out, err)
	}
}

func TestPackUnpackFloat64s(t *testing.T) {
	want := []float64{0, -1.5, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	got := unpackFloat64s(packFloat64s(want))
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("v[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func BenchmarkDenoiseSequentialR20(b *testing.B) {
	v := simdata.Histogram(10000, 1)
	p := Params{R: 20, L: 15, Sigma: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Denoise(v, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenoiseParallel(b *testing.B) {
	v := simdata.Histogram(10000, 1)
	p := Params{R: 20, L: 15, Sigma: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DenoiseParallel(v, p, 8); err != nil {
			b.Fatal(err)
		}
	}
}
