// Package nlmeans implements the 1-D non-local means denoising of NGS
// coverage histograms (paper Section IV-A, after Buades et al. and Han et
// al.): each bin is replaced by a weighted average of the bins in its
// search range, weighted by the similarity of the patches around them.
//
// Three implementations share one kernel: a sequential reference, a
// shared-memory parallel version, and the paper's distributed version in
// which each rank's partition is expanded by an (r+l)-wide replicated
// halo from its neighbours so no communication happens during the sweep.
package nlmeans

import (
	"fmt"
	"math"
	"sync"

	"parseq/internal/mpi"
)

// Params are the three salient NL-means parameters.
type Params struct {
	R     int     // search range radius, in bins
	L     int     // half patch size, in bins
	Sigma float64 // filtering parameter σ
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.R < 1 {
		return fmt.Errorf("nlmeans: search radius %d < 1", p.R)
	}
	if p.L < 0 {
		return fmt.Errorf("nlmeans: half patch size %d < 0", p.L)
	}
	if !(p.Sigma > 0) {
		return fmt.Errorf("nlmeans: sigma %g must be positive", p.Sigma)
	}
	return nil
}

// Halo returns the per-side boundary width a partition must replicate:
// the search radius plus the patch half-size.
func (p Params) Halo() int { return p.R + p.L }

// patchDistance is the squared L2 distance between the patches centred
// at i and j, with indices clamped to the data (replicating edge bins).
func patchDistance(v []float64, i, j, l int) float64 {
	d := 0.0
	n := len(v)
	for k := -l; k <= l; k++ {
		a, b := clamp(i+k, n), clamp(j+k, n)
		diff := v[a] - v[b]
		d += diff * diff
	}
	return d
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// denoisePoint computes NL[v_i] per Equations 1-3.
func denoisePoint(v []float64, i int, p Params) float64 {
	twoSigma2 := 2 * p.Sigma * p.Sigma
	n := len(v)
	sum, z := 0.0, 0.0
	for j := i - p.R; j <= i+p.R; j++ {
		jc := clamp(j, n)
		w := math.Exp(-patchDistance(v, i, jc, p.L) / twoSigma2)
		z += w
		sum += w * v[jc]
	}
	return sum / z
}

// Denoise is the sequential reference implementation. Complexity is
// Θ(N·(2r+1)·(2l+1)) as the paper states.
func Denoise(v []float64, p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(v))
	for i := range v {
		out[i] = denoisePoint(v, i, p)
	}
	return out, nil
}

// DenoiseParallel computes the same result with shared-memory workers:
// the input is read-only, so partitions need no replication and no
// synchronisation beyond the final join.
func DenoiseParallel(v []float64, p Params, cores int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		cores = 1
	}
	out := make([]float64, len(v))
	var wg sync.WaitGroup
	wg.Add(cores)
	for c := 0; c < cores; c++ {
		go func(rank int) {
			defer wg.Done()
			lo, hi := mpi.SplitRange(len(v), cores, rank)
			for i := lo; i < hi; i++ {
				out[i] = denoisePoint(v, i, p)
			}
		}(c)
	}
	wg.Wait()
	return out, nil
}

// DenoiseDistributed is the paper's three-step distributed strategy run
// on the message-passing runtime: (1) the histogram is evenly divided
// among ranks, (2) each partition P_i is expanded to P'_i by replicating
// an (r+l)-wide region from each neighbour, (3) each rank denoises only
// its original span against the expanded data, and rank 0 gathers the
// result. All ranks receive the full denoised histogram.
func DenoiseDistributed(c *mpi.Comm, v []float64, p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rank, size := c.Rank(), c.Size()
	lo, hi := c.SplitRange(len(v))
	halo := p.Halo()
	if size > 1 && len(v)/size < halo {
		// A window may not reach past an immediate neighbour's partition:
		// the single-hop halo exchange (and the paper's replication
		// strategy) requires partitions at least (r+l) wide.
		return nil, fmt.Errorf("nlmeans: partition of %d bins narrower than the %d-bin halo; use fewer ranks or a smaller search radius", len(v)/size, halo)
	}

	// Step 2: halo exchange. Send my boundary regions to neighbours,
	// receive theirs. Even with empty partitions the protocol stays
	// symmetric: empty slices are exchanged.
	const (
		tagToNext = 10 // my ending region → successor's left halo
		tagToPrev = 11 // my starting region → predecessor's right halo
	)
	myPart := v[lo:hi]
	if rank+1 < size {
		end := myPart
		if len(end) > halo {
			end = myPart[len(myPart)-halo:]
		}
		if err := c.SendFloat64s(rank+1, tagToNext, end); err != nil {
			return nil, err
		}
	}
	if rank > 0 {
		start := myPart
		if len(start) > halo {
			start = myPart[:halo]
		}
		if err := c.SendFloat64s(rank-1, tagToPrev, start); err != nil {
			return nil, err
		}
	}
	var left, right []float64
	var err error
	if rank > 0 {
		left, err = c.RecvFloat64s(rank-1, tagToNext)
		if err != nil {
			return nil, err
		}
	}
	if rank+1 < size {
		right, err = c.RecvFloat64s(rank+1, tagToPrev)
		if err != nil {
			return nil, err
		}
	}

	// Expanded partition P'_i = left halo + P_i + right halo.
	expanded := make([]float64, 0, len(left)+len(myPart)+len(right))
	expanded = append(expanded, left...)
	expanded = append(expanded, myPart...)
	expanded = append(expanded, right...)

	// Step 3: denoise only the original span. Points whose window would
	// reach past the replicated halo fall back to global clamping only at
	// the true data edges, where the halo is absent by construction.
	local := make([]float64, len(myPart))
	for i := range myPart {
		local[i] = denoisePoint(expanded, len(left)+i, p)
	}

	// Gather rank partitions to root, then broadcast the assembled result.
	parts, err := c.Gather(0, packFloat64s(local))
	if err != nil {
		return nil, err
	}
	var full []byte
	if rank == 0 {
		assembled := make([]float64, 0, len(v))
		for _, part := range parts {
			assembled = append(assembled, unpackFloat64s(part)...)
		}
		full = packFloat64s(assembled)
	}
	full, err = c.Bcast(0, full)
	if err != nil {
		return nil, err
	}
	return unpackFloat64s(full), nil
}

func packFloat64s(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return out
}

func unpackFloat64s(d []byte) []float64 {
	out := make([]float64, len(d)/8)
	for i := range out {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(d[8*i+b]) << (8 * b)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out
}
