package obsflag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"parseq/internal/obs"
)

// TestMain routes the SIGTERM helper (re-exec pattern: the test binary
// becomes the process under test) around the suite.
func TestMain(m *testing.M) {
	if os.Getenv("OBSFLAG_TEST_MODE") == "sigterm" {
		helperSigterm()
		return
	}
	os.Exit(m.Run())
}

// helperSigterm is the process the SIGTERM test kills: a session with
// every file output requested, some recorded work, then an announce
// and a hang. The signal handler must flush everything on the way out.
func helperSigterm() {
	fs := flag.NewFlagSet("helper", flag.ContinueOnError)
	flags := Register(fs)
	if err := fs.Parse([]string{
		"-cpuprofile", os.Getenv("OBSFLAG_TEST_CPU"),
		"-trace", os.Getenv("OBSFLAG_TEST_TRACE"),
		"-metrics", os.Getenv("OBSFLAG_TEST_METRICS"),
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess, err := flags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := sess.Registry()
	sp := reg.StartSpan(0, 0, "spin")
	x := 0
	for i := 0; i < 50_000_000; i++ { // CPU samples for the profile
		x += i
	}
	sp.End()
	reg.Counter("conv.records").Add(7)
	if x == -1 {
		fmt.Println(x)
	}
	fmt.Println("ready")
	os.Stdout.Sync()
	select {} // SIGTERM lands here; the handler flushes and exits 143
}

// TestSIGTERMFlushesProfiles kills a profiled run with SIGTERM and
// asserts the CPU profile, trace and metrics snapshot still reach disk
// and the process dies with the conventional 128+15 status.
func TestSIGTERMFlushesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")

	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"OBSFLAG_TEST_MODE=sigterm",
		"OBSFLAG_TEST_CPU="+cpu,
		"OBSFLAG_TEST_TRACE="+trace,
		"OBSFLAG_TEST_METRICS="+metrics,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(stdout)
	line, err := r.ReadString('\n')
	if err != nil || line != "ready\n" {
		t.Fatalf("helper announcement: %q, %v\n%s", line, err, stderr.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 128+int(syscall.SIGTERM) {
		t.Fatalf("exit code %d, want %d\n%s", code, 128+int(syscall.SIGTERM), stderr.String())
	}
	if !strings.Contains(stderr.String(), "flushing profiles") {
		t.Errorf("no flush notice on stderr:\n%s", stderr.String())
	}

	// The CPU profile is a gzipped protobuf; the magic proves pprof's
	// writer ran to completion rather than being truncated mid-stream.
	prof, err := os.ReadFile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Errorf("CPU profile is not a finished pprof stream (%d bytes)", len(prof))
	}

	traceRaw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &doc); err != nil {
		t.Fatalf("flushed trace is not valid JSON: %v", err)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "spin" {
			found = true
		}
	}
	if !found {
		t.Error("flushed trace is missing the recorded span")
	}

	metricsRaw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(metricsRaw, &snap); err != nil {
		t.Fatalf("flushed metrics are not valid JSON: %v", err)
	}
	if snap.Counters["conv.records"] != 7 {
		t.Errorf("flushed conv.records = %d, want 7", snap.Counters["conv.records"])
	}
}

// TestMetricsEndpointSmoke is the live-endpoint smoke test: a session
// under -metrics-addr must serve a scrapeable /metrics (with runtime
// gauges) and /progress, and tear down cleanly.
func TestMetricsEndpointSmoke(t *testing.T) {
	fs := flag.NewFlagSet("live", flag.ContinueOnError)
	flags := Register(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0", "-heartbeat", "10ms"}); err != nil {
		t.Fatal(err)
	}
	sess, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Registry() == nil || sess.View() == nil {
		t.Fatal("-metrics-addr session has no registry or world view")
	}
	if obs.Default() != sess.Registry() {
		t.Error("session registry not installed as the process default")
	}
	sess.Registry().Counter("conv.records").Add(5)

	addr := sess.ServerAddr()
	if addr == "" {
		t.Fatal("no resolved server address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"conv_records 5",
		"# TYPE conv_records counter",
		"go_goroutines ",
		"process_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var p obs.Progress
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("/progress is not valid JSON: %v\n%s", err, body)
	}
	if p.Records != 5 {
		t.Errorf("/progress records = %d, want 5", p.Records)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if obs.Default() != nil {
		t.Error("Close left the default registry installed")
	}
	// The endpoint is gone after Close.
	cl := http.Client{Timeout: 500 * time.Millisecond}
	if _, err := cl.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}
