package obsflag

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parseq/internal/conv"
	"parseq/internal/simdata"
)

// TestMetricsSchema is the metrics-schema smoke test: a full in-process
// SAM→BAM conversion under a -metrics/-trace session must emit a
// metrics snapshot carrying the MPI wait totals, the codec pipeline
// gauges and derived rates, plus a non-empty trace.
func TestMetricsSchema(t *testing.T) {
	dir := t.TempDir()
	samPath := filepath.Join(dir, "in.sam")
	f, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	d := simdata.Generate(simdata.DefaultConfig(2000))
	if err := d.WriteSAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("smoke", flag.ContinueOnError)
	flags := Register(fs)
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	if err := fs.Parse([]string{"-metrics", metricsPath, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}

	sess, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	_, convErr := conv.ConvertSAMToBAM(samPath, conv.Options{
		Format: "bam", Cores: 2, OutDir: dir, OutPrefix: "smoke",
		CodecWorkers: 2,
	})
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if convErr != nil {
		t.Fatal(convErr)
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]struct {
			Value int64 `json:"value"`
			Max   int64 `json:"max"`
		} `json:"gauges"`
		Derived map[string]float64 `json:"derived"`
		Phases  map[string]any     `json:"phases"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}

	for _, name := range []string{"mpi.wait_ns", "mpi.rank0.sends", "bgzf.deflate.blocks"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from metrics snapshot", name)
		}
	}
	if _, ok := snap.Gauges["parpipe.bgzf.deflate.queue_depth"]; !ok {
		t.Errorf("gauge parpipe.bgzf.deflate.queue_depth missing from metrics snapshot")
	}
	for _, name := range []string{"parpipe.bgzf.deflate.busy_fraction", "bgzf.deflate.blocks_per_sec"} {
		if _, ok := snap.Derived[name]; !ok {
			t.Errorf("derived metric %q missing from metrics snapshot", name)
		}
	}
	for _, phase := range []string{"partition", "convert"} {
		if _, ok := snap.Phases[phase]; !ok {
			t.Errorf("phase %q missing from metrics snapshot", phase)
		}
	}

	traceRaw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans int
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			spans++
			names[ev.Name] = true
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete (X) events")
	}
	for _, want := range []string{"partition", "convert"} {
		if !names[want] {
			t.Errorf("trace missing a %q span (have %v)", want, keys(names))
		}
	}
}

// TestDisabledSessionIsInert checks the zero-flag path: Start must not
// install a registry and Close must write nothing.
func TestDisabledSessionIsInert(t *testing.T) {
	fs := flag.NewFlagSet("inert", flag.ContinueOnError)
	flags := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sess, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Registry() != nil {
		t.Error("disabled session installed a registry")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close on disabled session: %v", err)
	}
}

func keys(m map[string]bool) string {
	var s []string
	for k := range m {
		s = append(s, k)
	}
	return strings.Join(s, ",")
}
