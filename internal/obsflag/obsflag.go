// Package obsflag wires the obs telemetry layer into the command-line
// tools: every CLI registers the same -metrics/-trace/-cpuprofile/
// -memprofile/-metrics-addr/-heartbeat/-v flags, starts one Session
// around its work, and closes it to write the requested outputs.
// Centralising the plumbing keeps the four binaries' telemetry surfaces
// identical. With -metrics-addr the session also runs the live
// observability plane: an HTTP endpoint serving /metrics, /progress,
// /trace and /debug/pprof while the run is in flight, a runtime sampler
// feeding the go.* gauges, and (for distributed runs, via
// mpiflag.Session.StartTelemetry) the cross-rank telemetry gather.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"parseq/internal/obs"
)

// Flags holds the parsed telemetry flag values.
type Flags struct {
	Metrics     string        // -metrics: metrics snapshot JSON path
	Trace       string        // -trace: Chrome trace_event JSON path
	CPUProfile  string        // -cpuprofile: pprof CPU profile path
	MemProfile  string        // -memprofile: pprof heap profile path
	MetricsAddr string        // -metrics-addr: live observability endpoint
	Heartbeat   time.Duration // -heartbeat: sampler + telemetry-gather period
	Verbose     bool          // -v: per-phase/per-rank summary on stderr
}

// Register installs the telemetry flags on fs (flag.CommandLine when
// nil) and returns the value holder to pass to Start after parsing.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write a metrics snapshot (JSON) to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON trace to this file at exit (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve live /metrics, /progress, /trace and /debug/pprof on this address (host:port, :0 picks a port) while running")
	fs.DurationVar(&f.Heartbeat, "heartbeat", time.Second, "runtime sampling and cross-rank telemetry period")
	fs.BoolVar(&f.Verbose, "v", false, "print a per-phase/per-rank telemetry summary to stderr at exit")
	return f
}

// Session is one CLI run's active telemetry. Close writes every
// requested output; both methods tolerate a fully disabled Flags, so
// callers can run them unconditionally. Close is idempotent — the
// SIGINT/SIGTERM handler installed by Start races it by design, so a
// profile or trace requested before an interrupt still reaches disk.
type Session struct {
	flags       *Flags
	reg         *obs.Registry
	view        *obs.WorldView
	server      *obs.Server
	stopCPU     func() error
	stopSampler func()
	stopSignals func()

	hookMu       sync.Mutex
	shutdownHook func(os.Signal)

	closeOnce sync.Once
	closeErr  error
}

// Start enables whatever the flags ask for: a process-wide registry
// (with tracing when -trace or -metrics-addr is set) that the
// instrumented libraries pick up through obs.Default, CPU profiling,
// and — under -metrics-addr — the live HTTP endpoint plus the runtime
// sampler. With no telemetry flags set it is a no-op and the libraries
// stay on their free path.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: f}
	if f.Metrics != "" || f.Trace != "" || f.Verbose || f.MetricsAddr != "" {
		s.reg = obs.New()
		if f.Trace != "" || f.MetricsAddr != "" {
			// The live /trace endpoint (and the merged multi-rank trace)
			// needs spans regardless of -trace.
			s.reg.EnableTracing(0)
		}
		obs.SetDefault(s.reg)
	}
	if f.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		s.stopCPU = stop
	}
	if f.MetricsAddr != "" {
		// The world view exists on every rank; it only fills on the rank
		// the telemetry gather ships to (rank 0), and stays empty — at no
		// cost — elsewhere.
		s.view = obs.NewWorldView(s.reg, obs.WorldViewOptions{})
		srv, err := obs.StartServer(f.MetricsAddr, s.reg, s.view)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.server = srv
		s.stopSampler = obs.StartRuntimeSampler(s.reg, f.Heartbeat)
	}
	if f.CPUProfile != "" || f.MemProfile != "" || f.Trace != "" || f.Metrics != "" {
		s.handleSignals()
	}
	return s, nil
}

// Registry returns the session's registry, or nil when telemetry is
// disabled.
func (s *Session) Registry() *obs.Registry { return s.reg }

// View returns the session's cross-rank world view (non-nil only under
// -metrics-addr). Pass it to the telemetry gather on rank 0.
func (s *Session) View() *obs.WorldView { return s.view }

// ServerAddr returns the live endpoint's resolved listen address, or ""
// when -metrics-addr is off.
func (s *Session) ServerAddr() string { return s.server.Addr() }

// OnShutdown registers a hook the SIGINT/SIGTERM handler runs before
// flushing telemetry outputs and exiting — the seam seqconvd uses to
// drain its job queue gracefully: stop admitting, finish in-flight work
// within its timeout, then let the session flush profiles and metrics.
// It installs the signal handler when no profiling flag already did.
// The last registered hook wins.
func (s *Session) OnShutdown(hook func(os.Signal)) {
	s.hookMu.Lock()
	s.shutdownHook = hook
	s.hookMu.Unlock()
	if s.stopSignals == nil {
		s.handleSignals()
	}
}

// handleSignals flushes the requested outputs on SIGINT/SIGTERM before
// dying with the conventional 128+signal status. Without it an
// interrupted run leaves a truncated CPU profile and no trace — the
// moments one wants a profile most are the runs one kills.
func (s *Session) handleSignals() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	s.stopSignals = func() {
		signal.Stop(ch)
		close(done)
	}
	go func() {
		select {
		case sig := <-ch:
			s.hookMu.Lock()
			hook := s.shutdownHook
			s.hookMu.Unlock()
			if hook != nil {
				hook(sig)
			}
			fmt.Fprintf(os.Stderr, "obsflag: %v: flushing profiles and traces\n", sig)
			s.Close()
			code := 128 + int(syscall.SIGTERM)
			if sig == os.Interrupt {
				code = 128 + int(syscall.SIGINT)
			}
			os.Exit(code)
		case <-done:
		}
	}()
}

// Close stops the live endpoint, profiling and sampling, detaches the
// registry and writes the metrics file, the trace file (clock-aligned
// across ranks when a world view gathered any), the heap profile and
// the -v summary, returning the first error. Safe to call twice.
func (s *Session) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.close() })
	return s.closeErr
}

func (s *Session) close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.stopSignals != nil {
		s.stopSignals()
		s.stopSignals = nil
	}
	if s.stopSampler != nil {
		s.stopSampler()
		s.stopSampler = nil
	}
	if s.server != nil {
		keep(s.server.Close())
		s.server = nil
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
		s.stopCPU = nil
	}
	if s.reg != nil {
		obs.SetDefault(nil)
		if s.flags.Metrics != "" {
			keep(writeFile(s.flags.Metrics, s.reg.WriteJSON))
		}
		if s.flags.Trace != "" {
			if s.view != nil {
				keep(writeFile(s.flags.Trace, func(w io.Writer) error {
					return s.view.WriteMergedTrace(w, s.reg)
				}))
			} else {
				keep(writeFile(s.flags.Trace, s.reg.WriteTrace))
			}
		}
		if s.flags.Verbose {
			keep(s.reg.WriteSummary(os.Stderr))
		}
	}
	if s.flags.MemProfile != "" {
		keep(obs.WriteHeapProfile(s.flags.MemProfile))
	}
	return firstErr
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("obsflag: writing %s: %w", path, err)
	}
	return f.Close()
}
