// Package obsflag wires the obs telemetry layer into the command-line
// tools: every CLI registers the same -metrics/-trace/-cpuprofile/
// -memprofile/-v flags, starts one Session around its work, and closes
// it to write the requested outputs. Centralising the plumbing keeps
// the four binaries' telemetry surfaces identical.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parseq/internal/obs"
)

// Flags holds the parsed telemetry flag values.
type Flags struct {
	Metrics    string // -metrics: metrics snapshot JSON path
	Trace      string // -trace: Chrome trace_event JSON path
	CPUProfile string // -cpuprofile: pprof CPU profile path
	MemProfile string // -memprofile: pprof heap profile path
	Verbose    bool   // -v: per-phase/per-rank summary on stderr
}

// Register installs the telemetry flags on fs (flag.CommandLine when
// nil) and returns the value holder to pass to Start after parsing.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write a metrics snapshot (JSON) to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON trace to this file at exit (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.BoolVar(&f.Verbose, "v", false, "print a per-phase/per-rank telemetry summary to stderr at exit")
	return f
}

// Session is one CLI run's active telemetry. Close writes every
// requested output; both methods tolerate a fully disabled Flags, so
// callers can run them unconditionally.
type Session struct {
	flags   *Flags
	reg     *obs.Registry
	stopCPU func() error
}

// Start enables whatever the flags ask for: a process-wide registry
// (with tracing when -trace is set) that the instrumented libraries
// pick up through obs.Default, and CPU profiling. With no telemetry
// flags set it is a no-op and the libraries stay on their free path.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: f}
	if f.Metrics != "" || f.Trace != "" || f.Verbose {
		s.reg = obs.New()
		if f.Trace != "" {
			s.reg.EnableTracing(0)
		}
		obs.SetDefault(s.reg)
	}
	if f.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		s.stopCPU = stop
	}
	return s, nil
}

// Registry returns the session's registry, or nil when telemetry is
// disabled.
func (s *Session) Registry() *obs.Registry { return s.reg }

// Close stops profiling, detaches the registry and writes the metrics
// file, the trace file, the heap profile and the -v summary, returning
// the first error.
func (s *Session) Close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
		s.stopCPU = nil
	}
	if s.reg != nil {
		obs.SetDefault(nil)
		if s.flags.Metrics != "" {
			keep(writeFile(s.flags.Metrics, s.reg.WriteJSON))
		}
		if s.flags.Trace != "" {
			keep(writeFile(s.flags.Trace, s.reg.WriteTrace))
		}
		if s.flags.Verbose {
			keep(s.reg.WriteSummary(os.Stderr))
		}
	}
	if s.flags.MemProfile != "" {
		keep(obs.WriteHeapProfile(s.flags.MemProfile))
	}
	return firstErr
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("obsflag: writing %s: %w", path, err)
	}
	return f.Close()
}
