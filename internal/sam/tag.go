package sam

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Tag is one optional field of an alignment record, e.g. "NM:i:2".
// The value is kept in its SAM textual representation; typed accessors
// parse on demand. This keeps the hot conversion path free of per-tag
// boxing while still supporting every SAM tag type (A c C s S i I f Z H B).
type Tag struct {
	Name  [2]byte // two-character tag name, e.g. {'N','M'}
	Type  byte    // SAM type character: A, i, f, Z, H or B
	Value string  // textual value; for B tags includes the subtype prefix, e.g. "c,1,2"
}

// ErrInvalidTag reports a malformed optional field.
var ErrInvalidTag = errors.New("sam: invalid optional tag")

// ParseTag parses one tab-delimited optional field like "NM:i:2".
func ParseTag(s string) (Tag, error) {
	// Minimum form is "XX:T:" with possibly empty Z value; numeric types
	// need at least one value byte.
	if len(s) < 5 || s[2] != ':' || s[4] != ':' {
		return Tag{}, fmt.Errorf("%w: %q", ErrInvalidTag, s)
	}
	t := Tag{Type: s[3], Value: s[5:]}
	t.Name[0], t.Name[1] = s[0], s[1]
	switch t.Type {
	case 'A', 'i', 'f', 'Z', 'H', 'B':
		// BAM-only integer width codes (c, C, s, S, I) normalise to 'i'
		// on the SAM side, so they are not accepted here.
	default:
		return Tag{}, fmt.Errorf("%w: unknown type %q in %q", ErrInvalidTag, t.Type, s)
	}
	if (t.Type == 'A' && len(t.Value) != 1) ||
		((t.Type == 'i' || t.Type == 'f' || t.Type == 'B') && len(t.Value) == 0) {
		return Tag{}, fmt.Errorf("%w: bad value in %q", ErrInvalidTag, s)
	}
	return Tag{Name: t.Name, Type: t.Type, Value: t.Value}, nil
}

// String renders the tag in SAM text form.
func (t Tag) String() string {
	var b strings.Builder
	b.Grow(5 + len(t.Value))
	b.WriteByte(t.Name[0])
	b.WriteByte(t.Name[1])
	b.WriteByte(':')
	b.WriteByte(t.Type)
	b.WriteByte(':')
	b.WriteString(t.Value)
	return b.String()
}

// NameString returns the two-character tag name as a string.
func (t Tag) NameString() string { return string(t.Name[:]) }

// Int returns the tag value as an int64 for 'i' typed tags.
func (t Tag) Int() (int64, error) {
	if t.Type != 'i' {
		return 0, fmt.Errorf("sam: tag %s has type %c, not i", t.NameString(), t.Type)
	}
	return strconv.ParseInt(t.Value, 10, 64)
}

// Float returns the tag value as a float64 for 'f' typed tags.
func (t Tag) Float() (float64, error) {
	if t.Type != 'f' {
		return 0, fmt.Errorf("sam: tag %s has type %c, not f", t.NameString(), t.Type)
	}
	return strconv.ParseFloat(t.Value, 64)
}

// Char returns the tag value as a byte for 'A' typed tags.
func (t Tag) Char() (byte, error) {
	if t.Type != 'A' || len(t.Value) != 1 {
		return 0, fmt.Errorf("sam: tag %s is not a single character", t.NameString())
	}
	return t.Value[0], nil
}

// ArraySubtype returns the element type character of a 'B' array tag.
func (t Tag) ArraySubtype() (byte, error) {
	if t.Type != 'B' || len(t.Value) == 0 {
		return 0, fmt.Errorf("sam: tag %s is not an array", t.NameString())
	}
	switch sub := t.Value[0]; sub {
	case 'c', 'C', 's', 'S', 'i', 'I', 'f':
		return sub, nil
	default:
		return 0, fmt.Errorf("sam: tag %s has unknown array subtype %c", t.NameString(), sub)
	}
}

// Ints returns the elements of an integer 'B' array tag.
func (t Tag) Ints() ([]int64, error) {
	sub, err := t.ArraySubtype()
	if err != nil {
		return nil, err
	}
	if sub == 'f' {
		return nil, fmt.Errorf("sam: tag %s is a float array", t.NameString())
	}
	parts := strings.Split(t.Value, ",")
	out := make([]int64, 0, len(parts)-1)
	for _, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sam: tag %s: %w", t.NameString(), err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Floats returns the elements of a float 'B' array tag.
func (t Tag) Floats() ([]float64, error) {
	sub, err := t.ArraySubtype()
	if err != nil {
		return nil, err
	}
	if sub != 'f' {
		return nil, fmt.Errorf("sam: tag %s is an integer array", t.NameString())
	}
	parts := strings.Split(t.Value, ",")
	out := make([]float64, 0, len(parts)-1)
	for _, p := range parts[1:] {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("sam: tag %s: %w", t.NameString(), err)
		}
		out = append(out, v)
	}
	return out, nil
}

// IntTag builds an 'i' typed tag.
func IntTag(name string, v int64) Tag {
	return Tag{Name: [2]byte{name[0], name[1]}, Type: 'i', Value: strconv.FormatInt(v, 10)}
}

// StringTag builds a 'Z' typed tag.
func StringTag(name, v string) Tag {
	return Tag{Name: [2]byte{name[0], name[1]}, Type: 'Z', Value: v}
}

// FloatTag builds an 'f' typed tag.
func FloatTag(name string, v float64) Tag {
	return Tag{Name: [2]byte{name[0], name[1]}, Type: 'f', Value: strconv.FormatFloat(v, 'g', -1, 32)}
}

// CharTag builds an 'A' typed tag.
func CharTag(name string, c byte) Tag {
	return Tag{Name: [2]byte{name[0], name[1]}, Type: 'A', Value: string(c)}
}
