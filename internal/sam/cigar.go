package sam

import (
	"errors"
	"fmt"
	"strings"
)

// CigarOpType identifies one CIGAR operation kind. The numeric values
// match the BAM binary encoding (MIDNSHP=X → 0..8) so the SAM and BAM
// codecs share one representation.
type CigarOpType uint8

// CIGAR operation kinds.
const (
	CigarMatch     CigarOpType = iota // M: alignment match (can be mismatch)
	CigarInsertion                    // I: insertion to the reference
	CigarDeletion                     // D: deletion from the reference
	CigarSkipped                      // N: skipped region from the reference
	CigarSoftClip                     // S: soft clipping (clipped sequence present in SEQ)
	CigarHardClip                     // H: hard clipping (clipped sequence absent)
	CigarPadding                      // P: padding (silent deletion from padded reference)
	CigarEqual                        // =: sequence match
	CigarDiff                         // X: sequence mismatch
	cigarOpCount
)

const cigarOpChars = "MIDNSHP=X"

// consumesQuery[op] reports whether the op consumes query (read) bases.
var consumesQuery = [cigarOpCount]bool{
	CigarMatch: true, CigarInsertion: true, CigarSoftClip: true,
	CigarEqual: true, CigarDiff: true,
}

// consumesReference[op] reports whether the op consumes reference bases.
var consumesReference = [cigarOpCount]bool{
	CigarMatch: true, CigarDeletion: true, CigarSkipped: true,
	CigarEqual: true, CigarDiff: true,
}

// Char returns the single-letter SAM representation of the op type.
func (t CigarOpType) Char() byte {
	if t >= cigarOpCount {
		return '?'
	}
	return cigarOpChars[t]
}

// ConsumesQuery reports whether the op advances along the read.
func (t CigarOpType) ConsumesQuery() bool {
	return t < cigarOpCount && consumesQuery[t]
}

// ConsumesReference reports whether the op advances along the reference.
func (t CigarOpType) ConsumesReference() bool {
	return t < cigarOpCount && consumesReference[t]
}

// CigarOp packs an operation length and type in the BAM layout:
// length<<4 | type.
type CigarOp uint32

// NewCigarOp builds a CigarOp from a type and a length. Lengths are
// clamped to the 28-bit field of the BAM encoding.
func NewCigarOp(t CigarOpType, n int) CigarOp {
	const maxLen = 1<<28 - 1
	if n < 0 {
		n = 0
	}
	if n > maxLen {
		n = maxLen
	}
	return CigarOp(uint32(n)<<4 | uint32(t)&0xf)
}

// Type returns the operation kind.
func (op CigarOp) Type() CigarOpType { return CigarOpType(op & 0xf) }

// Len returns the operation length.
func (op CigarOp) Len() int { return int(op >> 4) }

// String renders the op in SAM text form, e.g. "76M".
func (op CigarOp) String() string {
	return fmt.Sprintf("%d%c", op.Len(), op.Type().Char())
}

// Cigar is a parsed CIGAR string.
type Cigar []CigarOp

// ErrInvalidCigar reports a malformed CIGAR string.
var ErrInvalidCigar = errors.New("sam: invalid CIGAR")

var cigarOpLookup = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i := 0; i < len(cigarOpChars); i++ {
		t[cigarOpChars[i]] = int8(i)
	}
	return t
}()

// ParseCigar parses a SAM CIGAR field. The unavailable marker "*" parses
// to a nil Cigar.
func ParseCigar(s string) (Cigar, error) {
	c, err := ParseCigarInto(make(Cigar, 0, 4), s)
	if err != nil {
		return nil, err
	}
	if len(c) == 0 {
		return nil, nil
	}
	return c, nil
}

// ParseCigarInto parses a SAM CIGAR field into dst's backing array,
// growing it only when the operation count exceeds its capacity. The
// unavailable marker "*" yields dst truncated to length zero (which
// renders as "*", exactly like nil). Error messages are identical to
// ParseCigar's. It is the allocation-free counterpart for hot loops
// that parse into one reused Record.
func ParseCigarInto(dst Cigar, s string) (Cigar, error) {
	dst = dst[:0]
	if s == "*" || s == "" {
		return dst, nil
	}
	n := 0
	haveDigit := false
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= '0' && b <= '9' {
			n = n*10 + int(b-'0')
			haveDigit = true
			continue
		}
		op := cigarOpLookup[b]
		if op < 0 || !haveDigit {
			return dst[:0], fmt.Errorf("%w: %q at offset %d", ErrInvalidCigar, s, i)
		}
		dst = append(dst, NewCigarOp(CigarOpType(op), n))
		n = 0
		haveDigit = false
	}
	if haveDigit {
		return dst[:0], fmt.Errorf("%w: %q ends in a length", ErrInvalidCigar, s)
	}
	return dst, nil
}

// String renders the CIGAR in SAM text form; a nil/empty Cigar renders as "*".
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var b strings.Builder
	b.Grow(len(c) * 4)
	for _, op := range c {
		appendInt(&b, op.Len())
		b.WriteByte(op.Type().Char())
	}
	return b.String()
}

// appendInt writes a non-negative int without strconv allocation churn.
func appendInt(b *strings.Builder, n int) {
	var buf [20]byte
	i := len(buf)
	if n == 0 {
		b.WriteByte('0')
		return
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	b.Write(buf[i:])
}

// QueryLength returns the number of read bases the CIGAR consumes
// (the expected length of SEQ when SEQ is present).
func (c Cigar) QueryLength() int {
	n := 0
	for _, op := range c {
		if op.Type().ConsumesQuery() {
			n += op.Len()
		}
	}
	return n
}

// ReferenceLength returns the number of reference bases the CIGAR spans.
func (c Cigar) ReferenceLength() int {
	n := 0
	for _, op := range c {
		if op.Type().ConsumesReference() {
			n += op.Len()
		}
	}
	return n
}
