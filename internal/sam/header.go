package sam

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Reference describes one @SQ header line: a reference sequence the
// alignments may be placed on. ID is the 0-based position of the sequence
// in the header, which doubles as the BAM reference ID.
type Reference struct {
	Name   string // SN: reference sequence name
	Length int    // LN: reference sequence length
	ID     int    // position within the header's reference dictionary
}

// ReadGroup describes one @RG header line.
type ReadGroup struct {
	ID       string
	Sample   string // SM
	Library  string // LB
	Platform string // PL
	Extra    map[string]string
}

// Program describes one @PG header line.
type Program struct {
	ID          string
	Name        string // PN
	CommandLine string // CL
	Version     string // VN
	Extra       map[string]string
}

// SortOrder is the SO field of the @HD line.
type SortOrder string

// Sort orders defined by the SAM specification.
const (
	SortUnknown    SortOrder = "unknown"
	SortUnsorted   SortOrder = "unsorted"
	SortQueryName  SortOrder = "queryname"
	SortCoordinate SortOrder = "coordinate"
)

// Header models the SAM header section: the optional @HD line, the
// reference dictionary (@SQ), read groups (@RG), programs (@PG) and
// free-text comments (@CO).
type Header struct {
	Version    string // VN of @HD
	SortOrder  SortOrder
	Refs       []Reference
	ReadGroups []ReadGroup
	Programs   []Program
	Comments   []string

	byName map[string]int // reference name → index in Refs
}

// ErrInvalidHeader reports a malformed header line.
var ErrInvalidHeader = errors.New("sam: invalid header")

// NewHeader returns a header with the given references registered.
func NewHeader(refs ...Reference) *Header {
	h := &Header{Version: "1.4", SortOrder: SortUnknown}
	for _, r := range refs {
		h.AddReference(r.Name, r.Length)
	}
	return h
}

// AddReference appends a reference sequence and returns its ID. Adding a
// name that already exists returns the existing ID unchanged.
func (h *Header) AddReference(name string, length int) int {
	if h.byName == nil {
		h.byName = make(map[string]int)
	}
	if id, ok := h.byName[name]; ok {
		return id
	}
	id := len(h.Refs)
	h.Refs = append(h.Refs, Reference{Name: name, Length: length, ID: id})
	h.byName[name] = id
	return id
}

// RefID returns the reference ID for name, or -1 when the name is not in
// the dictionary (including the unmapped marker "*").
func (h *Header) RefID(name string) int {
	if name == "*" || name == "" {
		return -1
	}
	if id, ok := h.byName[name]; ok {
		return id
	}
	return -1
}

// RefByID returns the reference with the given ID, or a zero Reference
// with Name "*" for out-of-range IDs (the unmapped convention).
func (h *Header) RefByID(id int) Reference {
	if id < 0 || id >= len(h.Refs) {
		return Reference{Name: "*", ID: -1}
	}
	return h.Refs[id]
}

// Clone returns a deep copy of the header.
func (h *Header) Clone() *Header {
	c := &Header{
		Version:   h.Version,
		SortOrder: h.SortOrder,
		Comments:  append([]string(nil), h.Comments...),
	}
	for _, r := range h.Refs {
		c.AddReference(r.Name, r.Length)
	}
	c.ReadGroups = append(c.ReadGroups, h.ReadGroups...)
	c.Programs = append(c.Programs, h.Programs...)
	return c
}

// ParseHeaderLine folds one "@..." line into the header.
func (h *Header) ParseHeaderLine(line string) error {
	if len(line) < 3 || line[0] != '@' {
		return fmt.Errorf("%w: %q", ErrInvalidHeader, line)
	}
	kind := line[1:3]
	if kind == "CO" {
		// @CO lines carry a single free-text field after the tab.
		if len(line) > 4 {
			h.Comments = append(h.Comments, line[4:])
		} else {
			h.Comments = append(h.Comments, "")
		}
		return nil
	}
	fields := strings.Split(line, "\t")
	switch kind {
	case "HD":
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "VN:"):
				h.Version = f[3:]
			case strings.HasPrefix(f, "SO:"):
				h.SortOrder = SortOrder(f[3:])
			}
		}
	case "SQ":
		var name string
		length := 0
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "SN:"):
				name = f[3:]
			case strings.HasPrefix(f, "LN:"):
				n, err := strconv.Atoi(f[3:])
				if err != nil {
					return fmt.Errorf("%w: bad LN in %q: %v", ErrInvalidHeader, line, err)
				}
				length = n
			}
		}
		if name == "" {
			return fmt.Errorf("%w: @SQ without SN: %q", ErrInvalidHeader, line)
		}
		h.AddReference(name, length)
	case "RG":
		rg := ReadGroup{}
		for _, f := range fields[1:] {
			if len(f) < 3 || f[2] != ':' {
				continue
			}
			key, val := f[:2], f[3:]
			switch key {
			case "ID":
				rg.ID = val
			case "SM":
				rg.Sample = val
			case "LB":
				rg.Library = val
			case "PL":
				rg.Platform = val
			default:
				if rg.Extra == nil {
					rg.Extra = make(map[string]string)
				}
				rg.Extra[key] = val
			}
		}
		if rg.ID == "" {
			return fmt.Errorf("%w: @RG without ID: %q", ErrInvalidHeader, line)
		}
		h.ReadGroups = append(h.ReadGroups, rg)
	case "PG":
		pg := Program{}
		for _, f := range fields[1:] {
			if len(f) < 3 || f[2] != ':' {
				continue
			}
			key, val := f[:2], f[3:]
			switch key {
			case "ID":
				pg.ID = val
			case "PN":
				pg.Name = val
			case "CL":
				pg.CommandLine = val
			case "VN":
				pg.Version = val
			default:
				if pg.Extra == nil {
					pg.Extra = make(map[string]string)
				}
				pg.Extra[key] = val
			}
		}
		h.Programs = append(h.Programs, pg)
	default:
		return fmt.Errorf("%w: unknown record type @%s", ErrInvalidHeader, kind)
	}
	return nil
}

// ParseHeader parses a full header text (the leading "@" lines of a SAM
// file, newline separated).
func ParseHeader(text string) (*Header, error) {
	h := NewHeader()
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" {
			continue
		}
		if err := h.ParseHeaderLine(line); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// String renders the header as SAM text, each line newline-terminated.
// The @HD line is emitted only when a version is set.
func (h *Header) String() string {
	var b strings.Builder
	if h.Version != "" {
		b.WriteString("@HD\tVN:")
		b.WriteString(h.Version)
		if h.SortOrder != "" && h.SortOrder != SortUnknown {
			b.WriteString("\tSO:")
			b.WriteString(string(h.SortOrder))
		}
		b.WriteByte('\n')
	}
	for _, r := range h.Refs {
		fmt.Fprintf(&b, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length)
	}
	for _, rg := range h.ReadGroups {
		b.WriteString("@RG\tID:")
		b.WriteString(rg.ID)
		if rg.Sample != "" {
			b.WriteString("\tSM:" + rg.Sample)
		}
		if rg.Library != "" {
			b.WriteString("\tLB:" + rg.Library)
		}
		if rg.Platform != "" {
			b.WriteString("\tPL:" + rg.Platform)
		}
		for k, v := range rg.Extra {
			b.WriteString("\t" + k + ":" + v)
		}
		b.WriteByte('\n')
	}
	for _, pg := range h.Programs {
		b.WriteString("@PG\tID:")
		b.WriteString(pg.ID)
		if pg.Name != "" {
			b.WriteString("\tPN:" + pg.Name)
		}
		if pg.Version != "" {
			b.WriteString("\tVN:" + pg.Version)
		}
		if pg.CommandLine != "" {
			b.WriteString("\tCL:" + pg.CommandLine)
		}
		for k, v := range pg.Extra {
			b.WriteString("\t" + k + ":" + v)
		}
		b.WriteByte('\n')
	}
	for _, c := range h.Comments {
		b.WriteString("@CO\t")
		b.WriteString(c)
		b.WriteByte('\n')
	}
	return b.String()
}
