// Byte-slice entry points for the converter hot path. The pipelined
// converter scans whole lines into pooled chunks and parses them in
// place; converting each line to a string first would put one copy per
// record back on the allocator, which is exactly the cost these entry
// points remove. The string fields of a record parsed this way alias
// the input buffer, so the buffer must stay untouched for as long as
// the record is in use.

package sam

import (
	"fmt"
	"math"
	"unsafe"

	"parseq/internal/kern"
)

// ParseRecordBytes parses one tab-delimited alignment line held in a
// byte slice. The returned record's string fields alias line's backing
// array — the caller must not modify or recycle that memory while the
// record is live. Error messages are identical to ParseRecord's.
func ParseRecordBytes(line []byte) (Record, error) {
	var r Record
	if err := ParseRecordIntoBytes(&r, line); err != nil {
		return Record{}, err
	}
	return r, nil
}

// ParseRecordIntoBytes is ParseRecordInto for a line held in a byte
// slice: the line is parsed in place with zero per-line allocation, so
// r's string fields alias line's backing array. The caller owns the
// lifetime contract — the buffer must not be modified or recycled
// while r is in use. Tags and Cigar capacity is reused as in
// ParseRecordInto, and error messages are identical to the string
// entry points'. Field delimitation and numeric fields run through the
// word-wide kern scanners instead of the string parser's per-byte
// loops.
func ParseRecordIntoBytes(r *Record, line []byte) error {
	r.Tags = r.Tags[:0]
	return parseRecordIntoBytes(r, line)
}

// parseRecordIntoBytes mirrors parseRecordInto field for field — same
// cursor semantics (a trailing tab does not produce a final empty
// field), same error text — with kern.IndexByte delimiting fields and
// kern.ParseUint converting the bounded numeric columns eight digits
// per step.
func parseRecordIntoBytes(r *Record, line []byte) error {
	rest := line
	next := func() ([]byte, bool) {
		if len(rest) == 0 {
			return nil, false
		}
		if i := kern.IndexByte(rest, '\t'); i >= 0 {
			f := rest[:i]
			rest = rest[i+1:]
			return f, true
		}
		f := rest
		rest = nil
		return f, true
	}

	field, ok := next()
	if !ok || len(field) == 0 {
		return fmt.Errorf("%w: empty QNAME", ErrInvalidRecord)
	}
	r.QName = bytesToString(field)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing FLAG", ErrInvalidRecord)
	}
	flag, pok := kern.ParseUint(field, 1<<16-1)
	if !pok {
		return fmt.Errorf("%w: FLAG %q", ErrInvalidRecord, field)
	}
	r.Flag = Flag(flag)

	field, ok = next()
	if !ok || len(field) == 0 {
		return fmt.Errorf("%w: missing RNAME", ErrInvalidRecord)
	}
	r.RName = bytesToString(field)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing POS", ErrInvalidRecord)
	}
	pos, pok := kern.ParseUint(field, 1<<31-1)
	if !pok {
		return fmt.Errorf("%w: POS %q", ErrInvalidRecord, field)
	}
	r.Pos = int32(pos)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing MAPQ", ErrInvalidRecord)
	}
	mapq, pok := kern.ParseUint(field, 255)
	if !pok {
		return fmt.Errorf("%w: MAPQ %q", ErrInvalidRecord, field)
	}
	r.MapQ = uint8(mapq)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing CIGAR", ErrInvalidRecord)
	}
	var err error
	r.Cigar, err = ParseCigarInto(r.Cigar, bytesToString(field))
	if err != nil {
		return err
	}

	field, ok = next()
	if !ok || len(field) == 0 {
		return fmt.Errorf("%w: missing RNEXT", ErrInvalidRecord)
	}
	r.RNext = bytesToString(field)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing PNEXT", ErrInvalidRecord)
	}
	pnext, pok := kern.ParseUint(field, 1<<31-1)
	if !pok {
		return fmt.Errorf("%w: PNEXT %q", ErrInvalidRecord, field)
	}
	r.PNext = int32(pnext)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing TLEN", ErrInvalidRecord)
	}
	tlen, pok := parseTLen(field)
	if !pok {
		return fmt.Errorf("%w: TLEN %q", ErrInvalidRecord, field)
	}
	r.TLen = tlen

	field, ok = next()
	if !ok || len(field) == 0 {
		return fmt.Errorf("%w: missing SEQ", ErrInvalidRecord)
	}
	r.Seq = bytesToString(field)

	field, ok = next()
	if !ok || len(field) == 0 {
		return fmt.Errorf("%w: missing QUAL", ErrInvalidRecord)
	}
	r.Qual = bytesToString(field)
	if r.Seq != "*" && r.Qual != "*" && len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("%w: SEQ/QUAL length mismatch (%d vs %d)",
			ErrInvalidRecord, len(r.Seq), len(r.Qual))
	}

	for {
		field, ok = next()
		if !ok {
			break
		}
		tag, err := ParseTag(bytesToString(field))
		if err != nil {
			return err
		}
		r.Tags = append(r.Tags, tag)
	}
	return nil
}

// parseTLen parses a signed 32-bit decimal with exactly
// strconv.ParseInt(s, 10, 32)'s accept set: optional single sign,
// digits only, range [-2^31, 2^31-1].
func parseTLen(field []byte) (int32, bool) {
	digits := field
	neg := false
	max := uint64(math.MaxInt32)
	if len(digits) > 0 && (digits[0] == '+' || digits[0] == '-') {
		neg = digits[0] == '-'
		digits = digits[1:]
		if neg {
			max = 1 << 31
		}
	}
	v, ok := kern.ParseUint(digits, max)
	if !ok {
		return 0, false
	}
	if neg {
		return int32(-int64(v)), true
	}
	return int32(v), true
}

// bytesToString aliases b as a string without copying. Safe exactly as
// long as b is not mutated while the string is reachable; the parse
// entry points above push that contract to their callers.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// stringBytes aliases s as a byte slice without copying — read-only by
// contract, used to hand string fields to the kern loops.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// AppendTo appends the record's SAM text form to dst, without a
// trailing newline — the byte-slice counterpart of AppendText, used by
// the SAM encoder so the convert hot path renders into pooled buffers
// instead of a fresh strings.Builder per record. The two renderers
// produce identical bytes.
func (r *Record) AppendTo(dst []byte) []byte {
	dst = append(dst, r.QName...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.Flag))
	dst = append(dst, '\t')
	dst = append(dst, r.RName...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.Pos))
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.MapQ))
	dst = append(dst, '\t')
	if len(r.Cigar) == 0 {
		dst = append(dst, '*')
	} else {
		for _, op := range r.Cigar {
			dst = appendUint(dst, uint64(op.Len()))
			dst = append(dst, op.Type().Char())
		}
	}
	dst = append(dst, '\t')
	dst = append(dst, r.RNext...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.PNext))
	dst = append(dst, '\t')
	if r.TLen < 0 {
		dst = append(dst, '-')
		dst = appendUint(dst, uint64(-int64(r.TLen)))
	} else {
		dst = appendUint(dst, uint64(r.TLen))
	}
	dst = append(dst, '\t')
	dst = append(dst, r.Seq...)
	dst = append(dst, '\t')
	dst = append(dst, r.Qual...)
	for _, t := range r.Tags {
		dst = append(dst, '\t', t.Name[0], t.Name[1], ':', t.Type, ':')
		dst = append(dst, t.Value...)
	}
	return dst
}

// appendUint appends the decimal form of a non-negative integer.
func appendUint(dst []byte, n uint64) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}
