// Byte-slice entry points for the converter hot path. The pipelined
// converter scans whole lines into pooled chunks and parses them in
// place; converting each line to a string first would put one copy per
// record back on the allocator, which is exactly the cost these entry
// points remove. The string fields of a record parsed this way alias
// the input buffer, so the buffer must stay untouched for as long as
// the record is in use.

package sam

import "unsafe"

// ParseRecordBytes parses one tab-delimited alignment line held in a
// byte slice. The returned record's string fields alias line's backing
// array — the caller must not modify or recycle that memory while the
// record is live. Error messages are identical to ParseRecord's.
func ParseRecordBytes(line []byte) (Record, error) {
	var r Record
	if err := ParseRecordIntoBytes(&r, line); err != nil {
		return Record{}, err
	}
	return r, nil
}

// ParseRecordIntoBytes is ParseRecordInto for a line held in a byte
// slice: the line is parsed in place with zero per-line allocation, so
// r's string fields alias line's backing array. The caller owns the
// lifetime contract — the buffer must not be modified or recycled
// while r is in use. Tags and Cigar capacity is reused as in
// ParseRecordInto, and error messages are identical to the string
// entry points'.
func ParseRecordIntoBytes(r *Record, line []byte) error {
	r.Tags = r.Tags[:0]
	return parseRecordInto(r, bytesToString(line))
}

// bytesToString aliases b as a string without copying. Safe exactly as
// long as b is not mutated while the string is reachable; the parse
// entry points above push that contract to their callers.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// AppendTo appends the record's SAM text form to dst, without a
// trailing newline — the byte-slice counterpart of AppendText, used by
// the SAM encoder so the convert hot path renders into pooled buffers
// instead of a fresh strings.Builder per record. The two renderers
// produce identical bytes.
func (r *Record) AppendTo(dst []byte) []byte {
	dst = append(dst, r.QName...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.Flag))
	dst = append(dst, '\t')
	dst = append(dst, r.RName...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.Pos))
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.MapQ))
	dst = append(dst, '\t')
	if len(r.Cigar) == 0 {
		dst = append(dst, '*')
	} else {
		for _, op := range r.Cigar {
			dst = appendUint(dst, uint64(op.Len()))
			dst = append(dst, op.Type().Char())
		}
	}
	dst = append(dst, '\t')
	dst = append(dst, r.RNext...)
	dst = append(dst, '\t')
	dst = appendUint(dst, uint64(r.PNext))
	dst = append(dst, '\t')
	if r.TLen < 0 {
		dst = append(dst, '-')
		dst = appendUint(dst, uint64(-int64(r.TLen)))
	} else {
		dst = appendUint(dst, uint64(r.TLen))
	}
	dst = append(dst, '\t')
	dst = append(dst, r.Seq...)
	dst = append(dst, '\t')
	dst = append(dst, r.Qual...)
	for _, t := range r.Tags {
		dst = append(dst, '\t', t.Name[0], t.Name[1], ':', t.Type, ':')
		dst = append(dst, t.Value...)
	}
	return dst
}

// appendUint appends the decimal form of a non-negative integer.
func appendUint(dst []byte, n uint64) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}
