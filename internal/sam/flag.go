// Package sam implements the SAM (Sequence Alignment/Map) text format:
// header parsing, the eleven mandatory alignment fields, optional typed
// tags, CIGAR strings and FLAG bits, per the SAM specification v1.4 the
// paper builds on.
//
// The package is the textual substrate for the parallel format converter:
// it favours allocation-light parsing (field splitting without
// intermediate slices, integer parsing without strconv error paths on the
// hot path) so that the converter's per-record cost is dominated by I/O,
// matching the behaviour the paper reports.
package sam

import "strings"

// Flag holds the bitwise FLAG field of an alignment record.
type Flag uint16

// FLAG bits from the SAM specification.
const (
	// FlagPaired indicates the template has multiple segments in sequencing.
	FlagPaired Flag = 0x1
	// FlagProperPair indicates each segment is properly aligned according to the aligner.
	FlagProperPair Flag = 0x2
	// FlagUnmapped indicates the segment is unmapped.
	FlagUnmapped Flag = 0x4
	// FlagMateUnmapped indicates the next segment in the template is unmapped.
	FlagMateUnmapped Flag = 0x8
	// FlagReverse indicates SEQ is reverse complemented.
	FlagReverse Flag = 0x10
	// FlagMateReverse indicates SEQ of the next segment is reverse complemented.
	FlagMateReverse Flag = 0x20
	// FlagRead1 indicates this is the first segment in the template.
	FlagRead1 Flag = 0x40
	// FlagRead2 indicates this is the last segment in the template.
	FlagRead2 Flag = 0x80
	// FlagSecondary indicates a secondary alignment.
	FlagSecondary Flag = 0x100
	// FlagQCFail indicates the read fails platform/vendor quality checks.
	FlagQCFail Flag = 0x200
	// FlagDuplicate indicates the read is a PCR or optical duplicate.
	FlagDuplicate Flag = 0x400
	// FlagSupplementary indicates a supplementary alignment.
	FlagSupplementary Flag = 0x800
)

var flagNames = [...]struct {
	bit  Flag
	name string
}{
	{FlagPaired, "PAIRED"},
	{FlagProperPair, "PROPER_PAIR"},
	{FlagUnmapped, "UNMAPPED"},
	{FlagMateUnmapped, "MATE_UNMAPPED"},
	{FlagReverse, "REVERSE"},
	{FlagMateReverse, "MATE_REVERSE"},
	{FlagRead1, "READ1"},
	{FlagRead2, "READ2"},
	{FlagSecondary, "SECONDARY"},
	{FlagQCFail, "QC_FAIL"},
	{FlagDuplicate, "DUPLICATE"},
	{FlagSupplementary, "SUPPLEMENTARY"},
}

// Has reports whether all bits in mask are set in f.
func (f Flag) Has(mask Flag) bool { return f&mask == mask }

// Paired reports whether the template had multiple segments.
func (f Flag) Paired() bool { return f&FlagPaired != 0 }

// Unmapped reports whether the segment is unmapped.
func (f Flag) Unmapped() bool { return f&FlagUnmapped != 0 }

// Mapped reports whether the segment is mapped.
func (f Flag) Mapped() bool { return f&FlagUnmapped == 0 }

// Reverse reports whether SEQ is reverse complemented.
func (f Flag) Reverse() bool { return f&FlagReverse != 0 }

// Read1 reports whether this is the first segment in the template.
func (f Flag) Read1() bool { return f&FlagRead1 != 0 }

// Read2 reports whether this is the last segment in the template.
func (f Flag) Read2() bool { return f&FlagRead2 != 0 }

// Secondary reports whether this is a secondary alignment.
func (f Flag) Secondary() bool { return f&FlagSecondary != 0 }

// Supplementary reports whether this is a supplementary alignment.
func (f Flag) Supplementary() bool { return f&FlagSupplementary != 0 }

// Primary reports whether this is a primary alignment line (neither
// secondary nor supplementary).
func (f Flag) Primary() bool { return f&(FlagSecondary|FlagSupplementary) == 0 }

// String returns a human-readable pipe-separated list of set flag names,
// or "0" when no bits are set.
func (f Flag) String() string {
	if f == 0 {
		return "0"
	}
	var parts []string
	for _, fn := range flagNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "|")
}
