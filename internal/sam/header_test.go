package sam

import (
	"strings"
	"testing"
)

const sampleHeader = "@HD\tVN:1.4\tSO:coordinate\n" +
	"@SQ\tSN:chr1\tLN:197195432\n" +
	"@SQ\tSN:chr2\tLN:181748087\n" +
	"@RG\tID:grp1\tSM:mouse1\tLB:lib1\tPL:ILLUMINA\n" +
	"@PG\tID:bwa\tPN:bwa\tVN:0.6.2\tCL:bwa aln ref.fa reads.fq\n" +
	"@CO\tsynthetic dataset\n"

func TestParseHeader(t *testing.T) {
	h, err := ParseHeader(sampleHeader)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if h.Version != "1.4" {
		t.Errorf("Version = %q", h.Version)
	}
	if h.SortOrder != SortCoordinate {
		t.Errorf("SortOrder = %q", h.SortOrder)
	}
	if len(h.Refs) != 2 {
		t.Fatalf("Refs = %d, want 2", len(h.Refs))
	}
	if h.Refs[0].Name != "chr1" || h.Refs[0].Length != 197195432 || h.Refs[0].ID != 0 {
		t.Errorf("Refs[0] = %+v", h.Refs[0])
	}
	if len(h.ReadGroups) != 1 || h.ReadGroups[0].Sample != "mouse1" {
		t.Errorf("ReadGroups = %+v", h.ReadGroups)
	}
	if len(h.Programs) != 1 || h.Programs[0].Name != "bwa" {
		t.Errorf("Programs = %+v", h.Programs)
	}
	if len(h.Comments) != 1 || h.Comments[0] != "synthetic dataset" {
		t.Errorf("Comments = %+v", h.Comments)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h, err := ParseHeader(sampleHeader)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.String(); got != sampleHeader {
		t.Errorf("round trip:\n got %q\nwant %q", got, sampleHeader)
	}
}

func TestHeaderRefID(t *testing.T) {
	h, err := ParseHeader(sampleHeader)
	if err != nil {
		t.Fatal(err)
	}
	if id := h.RefID("chr2"); id != 1 {
		t.Errorf("RefID(chr2) = %d, want 1", id)
	}
	if id := h.RefID("chrX"); id != -1 {
		t.Errorf("RefID(chrX) = %d, want -1", id)
	}
	if id := h.RefID("*"); id != -1 {
		t.Errorf("RefID(*) = %d, want -1", id)
	}
	if ref := h.RefByID(1); ref.Name != "chr2" {
		t.Errorf("RefByID(1) = %+v", ref)
	}
	if ref := h.RefByID(-1); ref.Name != "*" {
		t.Errorf("RefByID(-1) = %+v", ref)
	}
	if ref := h.RefByID(99); ref.Name != "*" {
		t.Errorf("RefByID(99) = %+v", ref)
	}
}

func TestAddReferenceIdempotent(t *testing.T) {
	h := NewHeader()
	a := h.AddReference("chr1", 100)
	b := h.AddReference("chr1", 100)
	if a != b {
		t.Errorf("AddReference twice: %d vs %d", a, b)
	}
	if len(h.Refs) != 1 {
		t.Errorf("Refs = %d, want 1", len(h.Refs))
	}
}

func TestHeaderClone(t *testing.T) {
	h, err := ParseHeader(sampleHeader)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clone()
	c.AddReference("chrM", 16299)
	if len(h.Refs) != 2 {
		t.Errorf("clone mutated original: Refs = %d", len(h.Refs))
	}
	if c.RefID("chrM") != 2 {
		t.Errorf("clone RefID(chrM) = %d", c.RefID("chrM"))
	}
	if c.RefID("chr1") != 0 {
		t.Errorf("clone lost chr1 mapping")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	cases := []string{
		"bad line",
		"@SQ\tLN:100",       // missing SN
		"@SQ\tSN:c\tLN:abc", // bad LN
		"@RG\tSM:x",         // missing ID
		"@ZZ\tfoo:bar",      // unknown record type
	}
	for _, line := range cases {
		if _, err := ParseHeader(line); err == nil {
			t.Errorf("ParseHeader(%q) succeeded, want error", line)
		}
	}
}

func TestParseHeaderCRLF(t *testing.T) {
	h, err := ParseHeader("@SQ\tSN:chr1\tLN:5\r\n@CO\thello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Refs) != 1 || h.Refs[0].Length != 5 {
		t.Errorf("Refs = %+v", h.Refs)
	}
	if len(h.Comments) != 1 || h.Comments[0] != "hello" {
		t.Errorf("Comments = %+v", h.Comments)
	}
}

func TestReaderWriter(t *testing.T) {
	input := sampleHeader + sampleLine + "\n" +
		"r002\t0\tchr2\t100\t60\t10M\t*\t0\t0\tAAAAACCCCC\tJJJJJJJJJJ\n"
	r, err := NewReader(strings.NewReader(input))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if len(r.Header().Refs) != 2 {
		t.Fatalf("header refs = %d", len(r.Header().Refs))
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[1].RName != "chr2" || recs[1].Pos != 100 {
		t.Errorf("recs[1] = %+v", recs[1])
	}

	var out strings.Builder
	w, err := NewWriter(&out, r.Header())
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.String() != input {
		t.Errorf("writer round trip:\n got %q\nwant %q", out.String(), input)
	}
}

func TestReaderHeaderless(t *testing.T) {
	r, err := NewReader(strings.NewReader(sampleLine + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
}

func TestReaderEmpty(t *testing.T) {
	r, err := NewReader(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("ReadAll = %d recs, %v", len(recs), err)
	}
}

func TestReaderNoTrailingNewline(t *testing.T) {
	r, err := NewReader(strings.NewReader(sampleLine))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].QName != "r001" {
		t.Errorf("records = %+v", recs)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r, err := NewReader(strings.NewReader(sampleLine + "\n\n" + sampleLine + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("records = %d, want 2", len(recs))
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	input := "@SQ\tSN:chr1\tLN:5\nnot\ta valid\trecord\n"
	r, err := NewReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 mention", err)
	}
}
