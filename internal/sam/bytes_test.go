package sam

import (
	"reflect"
	"testing"
)

// byteLines covers the renderer's branches: mapped/unmapped, negative
// TLEN, empty CIGAR, '\r'-free tags, multiple tag types.
var byteLines = []string{
	"r001\t99\tchr1\t7\t30\t8M2I4M1D3M\t=\t37\t39\tTTAGATAAAGGATACTG\t*",
	"r002\t0\tchr1\t9\t30\t3S6M1P1I4M\t*\t0\t0\tAAAAGATAAGGATA\t*\tNM:i:1\tRG:Z:rg1",
	"r003\t16\tchr2\t9\t0\t5S6M\t*\t0\t0\tGCCTAAGCTAA\tFFFFFFFFFFF\tSA:Z:ref,29,-,6H5M,17,0",
	"r004\t147\tchr1\t37\t30\t9M\t=\t7\t-39\tCAGCGGCAT\t*\tXS:f:1.5",
	"r005\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*",
}

func TestParseRecordBytesMatchesString(t *testing.T) {
	for _, line := range byteLines {
		want, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("ParseRecord(%q): %v", line, err)
		}
		got, err := ParseRecordBytes([]byte(line))
		if err != nil {
			t.Fatalf("ParseRecordBytes(%q): %v", line, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseRecordBytes(%q) = %+v, want %+v", line, got, want)
		}
	}
}

// TestParseRecordBytesParityTable sweeps accept/reject parity between
// the native bytes parser and the string parser over the edge shapes
// the kern-backed fields introduce: signed and boundary TLEN values,
// bounded-field overflow at and past each maximum, leading zeros long
// enough to cross an 8-digit word, trailing tabs (the cursor never
// yields a final empty field) and empty mid-fields.
func TestParseRecordBytesParityTable(t *testing.T) {
	lines := []string{
		// TLEN through strconv.ParseInt's full accept set.
		"q\t0\tchr1\t7\t30\t*\t*\t0\t-39\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t+39\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t-2147483648\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t2147483647\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t-2147483649\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t2147483648\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t+\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t-\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t--1\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t1_0\t*\t*",
		// Bounded fields at max and max+1.
		"q\t65535\tchr1\t7\t30\t*\t*\t0\t0\t*\t*",
		"q\t65536\tchr1\t7\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t2147483647\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t2147483648\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t7\t255\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t7\t256\t*\t*\t0\t0\t*\t*",
		// Leading zeros crossing the 8-digit word boundary.
		"q\t0\tchr1\t000000000000007\t30\t*\t*\t0\t0\t*\t*",
		"q\t000000000000000000000000000001\tchr1\t7\t30\t*\t*\t0\t0\t*\t*",
		// Digit-field junk at word and tail positions.
		"q\t0\tchr1\t12345678x\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t1234x678\t30\t*\t*\t0\t0\t*\t*",
		// Trailing-tab and empty-field shapes.
		"q\t0\tchr1\t7\t30\t*\t*\t0\t0\t*\t*\t",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t0\t*\t",
		"q\t0\t\t7\t30\t*\t*\t0\t0\t*\t*",
		"\tq\t0\tchr1\t7\t30\t*\t*\t0\t0\t*\t*",
		// SEQ/QUAL mismatch.
		"q\t0\tchr1\t7\t30\t*\t*\t0\t0\tACGT\tIII",
	}
	for _, line := range lines {
		want, serr := ParseRecord(line)
		got, berr := ParseRecordBytes([]byte(line))
		if (serr == nil) != (berr == nil) {
			t.Errorf("ParseRecordBytes(%q) err = %v, ParseRecord err = %v", line, berr, serr)
			continue
		}
		if serr != nil {
			if serr.Error() != berr.Error() {
				t.Errorf("error wording differs for %q:\n bytes:  %v\n string: %v", line, berr, serr)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseRecordBytes(%q) = %+v, want %+v", line, got, want)
		}
	}
}

func TestParseRecordBytesErrorsMatchString(t *testing.T) {
	bad := []string{
		"",
		"only\tthree\tfields",
		"q\tNOTANUMBER\tchr1\t7\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\tx\t30\t*\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t7\t30\t8Q\t*\t0\t0\t*\t*",
		"q\t0\tchr1\t7\t30\t*\t*\t0\t0\t*\t*\tbadtag",
	}
	for _, line := range bad {
		_, serr := ParseRecord(line)
		_, berr := ParseRecordBytes([]byte(line))
		if (serr == nil) != (berr == nil) {
			t.Errorf("ParseRecordBytes(%q) err = %v, ParseRecord err = %v", line, berr, serr)
			continue
		}
		if serr != nil && serr.Error() != berr.Error() {
			t.Errorf("error wording differs for %q:\n bytes:  %v\n string: %v", line, berr, serr)
		}
	}
}

func TestParseRecordIntoBytesReusesRecord(t *testing.T) {
	var r Record
	for i := 0; i < 3; i++ {
		for _, line := range byteLines {
			if err := ParseRecordIntoBytes(&r, []byte(line)); err != nil {
				t.Fatalf("pass %d: ParseRecordIntoBytes(%q): %v", i, line, err)
			}
			want, err := ParseRecord(line)
			if err != nil {
				t.Fatal(err)
			}
			if got := string(r.AppendTo(nil)); got != want.String() {
				t.Errorf("pass %d: reused record renders %q, want %q", i, got, want.String())
			}
		}
	}
}

func TestAppendToMatchesString(t *testing.T) {
	for _, line := range byteLines {
		rec, err := ParseRecord(line)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(rec.AppendTo(nil)); got != rec.String() {
			t.Errorf("AppendTo = %q, String = %q", got, rec.String())
		}
		// Appending to a non-empty prefix must leave the prefix alone.
		withPrefix := rec.AppendTo([]byte("prefix:"))
		if string(withPrefix) != "prefix:"+rec.String() {
			t.Errorf("AppendTo with prefix = %q", withPrefix)
		}
	}
}

func TestParseCigarIntoReusesCapacity(t *testing.T) {
	dst := make(Cigar, 0, 16)
	c, err := ParseCigarInto(dst, "8M2I4M1D3M")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 5 {
		t.Fatalf("len = %d, want 5", len(c))
	}
	if &c[0] != &dst[:1][0] {
		t.Error("ParseCigarInto reallocated despite sufficient capacity")
	}
	// A second parse over the same backing array overwrites it.
	c2, err := ParseCigarInto(c, "4M")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2) != 1 || &c2[0] != &dst[:1][0] {
		t.Error("second ParseCigarInto did not reuse the backing array")
	}
}

func TestParseCigarIntoMatchesParseCigar(t *testing.T) {
	for _, s := range []string{"*", "", "8M2I4M1D3M", "100S1D2N3H", "bad", "4", "4M3"} {
		want, werr := ParseCigar(s)
		got, gerr := ParseCigarInto(nil, s)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("ParseCigarInto(%q) err = %v, ParseCigar err = %v", s, gerr, werr)
			continue
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Errorf("error wording differs for %q: %v vs %v", s, gerr, werr)
			}
			continue
		}
		if len(got) != len(want) {
			t.Errorf("ParseCigarInto(%q) = %v, want %v", s, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("ParseCigarInto(%q)[%d] = %v, want %v", s, i, got[i], want[i])
			}
		}
	}
}
