package sam

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleLine = "r001\t99\tchr1\t7\t30\t8M2I4M1D3M\t=\t37\t39\tTTAGATAAAGGATACTG\tIIIIIIIIIIIIIIIII\tNM:i:2\tRG:Z:grp1"

func TestParseRecordMandatoryFields(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	if r.QName != "r001" {
		t.Errorf("QName = %q, want r001", r.QName)
	}
	if r.Flag != 99 {
		t.Errorf("Flag = %d, want 99", r.Flag)
	}
	if r.RName != "chr1" {
		t.Errorf("RName = %q, want chr1", r.RName)
	}
	if r.Pos != 7 {
		t.Errorf("Pos = %d, want 7", r.Pos)
	}
	if r.MapQ != 30 {
		t.Errorf("MapQ = %d, want 30", r.MapQ)
	}
	if got := r.Cigar.String(); got != "8M2I4M1D3M" {
		t.Errorf("Cigar = %q, want 8M2I4M1D3M", got)
	}
	if r.RNext != "=" || r.PNext != 37 || r.TLen != 39 {
		t.Errorf("mate fields = %q %d %d", r.RNext, r.PNext, r.TLen)
	}
	if len(r.Seq) != 17 || len(r.Qual) != 17 {
		t.Errorf("SEQ/QUAL lengths = %d/%d, want 17/17", len(r.Seq), len(r.Qual))
	}
	if len(r.Tags) != 2 {
		t.Fatalf("Tags = %d, want 2", len(r.Tags))
	}
	nm, ok := r.Tag("NM")
	if !ok {
		t.Fatal("NM tag missing")
	}
	if v, err := nm.Int(); err != nil || v != 2 {
		t.Errorf("NM = %d (%v), want 2", v, err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	if got := r.String(); got != sampleLine {
		t.Errorf("round trip:\n got %q\nwant %q", got, sampleLine)
	}
}

func TestRecordNegativeTLenRoundTrip(t *testing.T) {
	line := strings.Replace(sampleLine, "\t39\t", "\t-39\t", 1)
	r, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	if r.TLen != -39 {
		t.Fatalf("TLen = %d, want -39", r.TLen)
	}
	if got := r.String(); got != line {
		t.Errorf("round trip:\n got %q\nwant %q", got, line)
	}
}

func TestParseRecordUnmapped(t *testing.T) {
	line := "r9\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII"
	r, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	if !r.Unmapped() {
		t.Error("Unmapped() = false, want true")
	}
	if r.Cigar != nil {
		t.Errorf("Cigar = %v, want nil", r.Cigar)
	}
	if got := r.String(); got != line {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseRecordErrors(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty", ""},
		{"too few fields", "r1\t0\tchr1"},
		{"bad flag", "r1\tx\tchr1\t1\t0\t*\t*\t0\t0\tA\tI"},
		{"bad pos", "r1\t0\tchr1\t-1\t0\t*\t*\t0\t0\tA\tI"},
		{"pos overflow", "r1\t0\tchr1\t99999999999\t0\t*\t*\t0\t0\tA\tI"},
		{"bad mapq", "r1\t0\tchr1\t1\t300\t*\t*\t0\t0\tA\tI"},
		{"bad cigar", "r1\t0\tchr1\t1\t0\t4Q\t*\t0\t0\tACGT\tIIII"},
		{"cigar trailing len", "r1\t0\tchr1\t1\t0\t4M2\t*\t0\t0\tACGT\tIIII"},
		{"seq/qual mismatch", "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\tACGT\tII"},
		{"bad tag", "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\tA\tI\tNM"},
		{"bad tag type", "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\tA\tI\tNM:q:2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseRecord(tc.line); err == nil {
				t.Errorf("ParseRecord(%q) succeeded, want error", tc.line)
			}
		})
	}
}

func TestRecordEnd(t *testing.T) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	// 8M + 4M + 1D + 3M consume reference; 2I does not: 16 reference bases.
	if got := r.End(); got != 7+16-1 {
		t.Errorf("End = %d, want %d", got, 7+16-1)
	}
	unmapped, _ := ParseRecord("r9\t4\t*\t0\t0\t*\t*\t0\t0\tA\tI")
	if got := unmapped.End(); got != 0 {
		t.Errorf("unmapped End = %d, want 0", got)
	}
}

func TestMateRName(t *testing.T) {
	r, _ := ParseRecord(sampleLine)
	if got := r.MateRName(); got != "chr1" {
		t.Errorf("MateRName = %q, want chr1 (= resolution)", got)
	}
	r.RNext = "chr2"
	if got := r.MateRName(); got != "chr2" {
		t.Errorf("MateRName = %q, want chr2", got)
	}
}

func TestParseRecordInto_ReusesTags(t *testing.T) {
	var r Record
	if err := ParseRecordInto(&r, sampleLine); err != nil {
		t.Fatal(err)
	}
	if len(r.Tags) != 2 {
		t.Fatalf("Tags = %d, want 2", len(r.Tags))
	}
	// Re-parsing a tagless line must clear old tags.
	if err := ParseRecordInto(&r, "r9\t4\t*\t0\t0\t*\t*\t0\t0\tA\tI"); err != nil {
		t.Fatal(err)
	}
	if len(r.Tags) != 0 {
		t.Errorf("Tags after reuse = %d, want 0", len(r.Tags))
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"},
		{"AACC", "GGTT"},
		{"acgt", "acgt"},
		{"ANNT", "ANNT"},
		{"RYSWKM", "KMWSRY"},
	}
	for _, tc := range cases {
		if got := ReverseComplement(tc.in); got != tc.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(seq []byte) bool {
		// Restrict to unambiguous bases where complement is an involution.
		const bases = "ACGT"
		s := make([]byte, len(seq))
		for i, b := range seq {
			s[i] = bases[int(b)%4]
		}
		return ReverseComplement(ReverseComplement(string(s))) == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse("abc"); got != "cba" {
		t.Errorf("Reverse = %q", got)
	}
	if got := Reverse(""); got != "" {
		t.Errorf("Reverse empty = %q", got)
	}
}

// Property: formatting then reparsing any parseable record is the identity.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(qname uint32, flag uint16, pos int32, mapq uint8, tlen int32, n uint8) bool {
		if pos < 0 {
			pos = -pos
		}
		if pos == 0 {
			pos = 1
		}
		seqLen := int(n%50) + 1
		seq := strings.Repeat("A", seqLen)
		qual := strings.Repeat("I", seqLen)
		r := Record{
			QName: "q" + strings.Repeat("x", int(qname%8)),
			Flag:  Flag(flag),
			RName: "chr1",
			Pos:   pos % (1 << 29),
			MapQ:  mapq,
			Cigar: Cigar{NewCigarOp(CigarMatch, seqLen)},
			RNext: "*",
			PNext: 0,
			TLen:  tlen % (1 << 29),
			Seq:   seq,
			Qual:  qual,
		}
		got, err := ParseRecord(r.String())
		if err != nil {
			return false
		}
		return got.String() == r.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseRecord(b *testing.B) {
	var r Record
	b.SetBytes(int64(len(sampleLine)))
	for i := 0; i < b.N; i++ {
		if err := ParseRecordInto(&r, sampleLine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatRecord(b *testing.B) {
	r, err := ParseRecord(sampleLine)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		r.AppendText(&sb)
	}
}
