package sam

import (
	"math/rand"
	"strings"
	"testing"
)

// Parsers must never panic on arbitrary mutations of valid input — they
// either parse or return an error. This is the fuzz-shaped safety net for
// the converter's hot path, which feeds attacker-adjacent data (files
// from other tools) through ParseRecordInto millions of times.
func TestParseRecordNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := sampleLine
	mutate := func(s string) string {
		b := []byte(s)
		switch rng.Intn(5) {
		case 0: // flip a byte
			if len(b) > 0 {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
		case 1: // truncate
			if len(b) > 0 {
				b = b[:rng.Intn(len(b))]
			}
		case 2: // duplicate a slice
			if len(b) > 2 {
				i, j := rng.Intn(len(b)), rng.Intn(len(b))
				if i > j {
					i, j = j, i
				}
				b = append(b[:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
			}
		case 3: // insert tabs
			b = append(b, '\t')
			b = append(b, b[:rng.Intn(len(b))]...)
		case 4: // swap two bytes
			if len(b) > 1 {
				i, j := rng.Intn(len(b)), rng.Intn(len(b))
				b[i], b[j] = b[j], b[i]
			}
		}
		return string(b)
	}
	var rec Record
	for trial := 0; trial < 20000; trial++ {
		line := base
		for m := 0; m <= rng.Intn(4); m++ {
			line = mutate(line)
		}
		// Must not panic; error or success are both fine.
		_ = ParseRecordInto(&rec, line)
	}
}

func TestParseCigarNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "0123456789MIDNSHP=X*abc-"
	for trial := 0; trial < 20000; trial++ {
		n := rng.Intn(20)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		_, _ = ParseCigar(b.String())
	}
}

func TestParseHeaderNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := sampleHeader
	var lines []string
	for trial := 0; trial < 5000; trial++ {
		b := []byte(base)
		for m := 0; m < 3; m++ {
			if len(b) > 0 {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
		}
		_, _ = ParseHeader(string(b))
		lines = lines[:0]
	}
}

func TestParseTagNeverPanicsOnShortInputs(t *testing.T) {
	// Exhaustive short strings around the 5-byte minimum.
	alphabet := []byte{':', 'i', 'Z', 'A', 'B', 'x', '1'}
	var build func(prefix []byte, depth int)
	build = func(prefix []byte, depth int) {
		_, _ = ParseTag(string(prefix))
		if depth == 0 {
			return
		}
		for _, c := range alphabet {
			build(append(prefix, c), depth-1)
		}
	}
	build(nil, 5)
}
