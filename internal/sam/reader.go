package sam

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Reader streams a SAM file: it consumes the header lines eagerly and
// then yields one Record per alignment line.
type Reader struct {
	br     *bufio.Reader
	header *Header
	line   int // 1-based line number for error reporting
	err    error
}

// readerBufSize matches the converter's read-buffer granularity.
const readerBufSize = 256 << 10

// NewReader wraps r and parses the header section.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{br: bufio.NewReaderSize(r, readerBufSize), header: NewHeader()}
	for {
		peek, err := sr.br.Peek(1)
		if err == io.EOF {
			return sr, nil
		}
		if err != nil {
			return nil, err
		}
		if peek[0] != '@' {
			return sr, nil
		}
		line, err := sr.readLine()
		if err != nil {
			return nil, err
		}
		if err := sr.header.ParseHeaderLine(string(line)); err != nil {
			return nil, fmt.Errorf("line %d: %w", sr.line, err)
		}
	}
}

// Header returns the parsed header.
func (sr *Reader) Header() *Header { return sr.header }

// readLine reads one line without the trailing newline (and without a
// trailing carriage return, tolerating CRLF input).
func (sr *Reader) readLine() ([]byte, error) {
	line, err := sr.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, err
	}
	sr.line++
	line = bytes.TrimSuffix(line, []byte{'\n'})
	line = bytes.TrimSuffix(line, []byte{'\r'})
	return line, nil
}

// Read returns the next alignment record. It returns io.EOF at the end of
// the stream.
func (sr *Reader) Read() (Record, error) {
	var rec Record
	err := sr.ReadInto(&rec)
	return rec, err
}

// ReadInto parses the next alignment into rec, reusing its storage where
// possible. It returns io.EOF at the end of the stream. Blank lines are
// skipped.
func (sr *Reader) ReadInto(rec *Record) error {
	if sr.err != nil {
		return sr.err
	}
	for {
		line, err := sr.readLine()
		if err != nil {
			sr.err = err
			return err
		}
		if len(line) == 0 {
			continue
		}
		if err := ParseRecordInto(rec, string(line)); err != nil {
			sr.err = fmt.Errorf("line %d: %w", sr.line, err)
			return sr.err
		}
		return nil
	}
}

// ReadAll consumes the remaining records.
func (sr *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Writer emits a SAM file: the header first (via NewWriter), then one
// line per record.
type Writer struct {
	bw   *bufio.Writer
	werr error
}

// NewWriter wraps w and writes the header section immediately.
func NewWriter(w io.Writer, h *Header) (*Writer, error) {
	sw := &Writer{bw: bufio.NewWriterSize(w, readerBufSize)}
	if h != nil {
		if _, err := sw.bw.WriteString(h.String()); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// Write emits one alignment line.
func (sw *Writer) Write(rec *Record) error {
	if sw.werr != nil {
		return sw.werr
	}
	if _, err := sw.bw.WriteString(rec.String()); err != nil {
		sw.werr = err
		return err
	}
	if err := sw.bw.WriteByte('\n'); err != nil {
		sw.werr = err
		return err
	}
	return nil
}

// Flush flushes buffered output.
func (sw *Writer) Flush() error {
	if sw.werr != nil {
		return sw.werr
	}
	return sw.bw.Flush()
}
