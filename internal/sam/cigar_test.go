package sam

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseCigar(t *testing.T) {
	c, err := ParseCigar("8M2I4M1D3M")
	if err != nil {
		t.Fatalf("ParseCigar: %v", err)
	}
	want := Cigar{
		NewCigarOp(CigarMatch, 8),
		NewCigarOp(CigarInsertion, 2),
		NewCigarOp(CigarMatch, 4),
		NewCigarOp(CigarDeletion, 1),
		NewCigarOp(CigarMatch, 3),
	}
	if len(c) != len(want) {
		t.Fatalf("ops = %d, want %d", len(c), len(want))
	}
	for i := range c {
		if c[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestParseCigarStar(t *testing.T) {
	c, err := ParseCigar("*")
	if err != nil || c != nil {
		t.Errorf("ParseCigar(*) = %v, %v; want nil, nil", c, err)
	}
}

func TestParseCigarAllOps(t *testing.T) {
	c, err := ParseCigar("1M2I3D4N5S6H7P8=9X")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != "1M2I3D4N5S6H7P8=9X" {
		t.Errorf("round trip = %q", got)
	}
	// Query: M I S = X → 1+2+5+8+9 = 25.
	if got := c.QueryLength(); got != 25 {
		t.Errorf("QueryLength = %d, want 25", got)
	}
	// Reference: M D N = X → 1+3+4+8+9 = 25.
	if got := c.ReferenceLength(); got != 25 {
		t.Errorf("ReferenceLength = %d, want 25", got)
	}
}

func TestParseCigarErrors(t *testing.T) {
	for _, s := range []string{"M", "4Q", "4M2", "-4M", "4m"} {
		if _, err := ParseCigar(s); !errors.Is(err, ErrInvalidCigar) {
			t.Errorf("ParseCigar(%q) err = %v, want ErrInvalidCigar", s, err)
		}
	}
}

func TestCigarOpPacking(t *testing.T) {
	op := NewCigarOp(CigarSoftClip, 1234)
	if op.Type() != CigarSoftClip {
		t.Errorf("Type = %v", op.Type())
	}
	if op.Len() != 1234 {
		t.Errorf("Len = %d", op.Len())
	}
	if op.String() != "1234S" {
		t.Errorf("String = %q", op.String())
	}
}

func TestNewCigarOpClamps(t *testing.T) {
	if got := NewCigarOp(CigarMatch, -5).Len(); got != 0 {
		t.Errorf("negative length clamped to %d, want 0", got)
	}
	if got := NewCigarOp(CigarMatch, 1<<30).Len(); got != 1<<28-1 {
		t.Errorf("oversized length clamped to %d, want %d", got, 1<<28-1)
	}
}

func TestCigarOpConsumption(t *testing.T) {
	cases := []struct {
		op    CigarOpType
		query bool
		ref   bool
	}{
		{CigarMatch, true, true},
		{CigarInsertion, true, false},
		{CigarDeletion, false, true},
		{CigarSkipped, false, true},
		{CigarSoftClip, true, false},
		{CigarHardClip, false, false},
		{CigarPadding, false, false},
		{CigarEqual, true, true},
		{CigarDiff, true, true},
	}
	for _, tc := range cases {
		if got := tc.op.ConsumesQuery(); got != tc.query {
			t.Errorf("%c ConsumesQuery = %v, want %v", tc.op.Char(), got, tc.query)
		}
		if got := tc.op.ConsumesReference(); got != tc.ref {
			t.Errorf("%c ConsumesReference = %v, want %v", tc.op.Char(), got, tc.ref)
		}
	}
}

// Property: String→Parse is the identity on well-formed CIGARs.
func TestCigarRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c := make(Cigar, 0, len(raw))
		for _, v := range raw {
			// Length ≥ 1 so textual form is canonical.
			c = append(c, NewCigarOp(CigarOpType(v%uint16(cigarOpCount)), int(v/16)+1))
		}
		parsed, err := ParseCigar(c.String())
		if err != nil || len(parsed) != len(c) {
			return false
		}
		for i := range c {
			if parsed[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, s := range []string{
		"NM:i:2", "RG:Z:grp1", "XA:A:c", "AS:f:-12.5",
		"MD:Z:", "BQ:H:1AFF", "ZB:B:c,1,-2,3", "ZF:B:f,1.5,2",
	} {
		tag, err := ParseTag(s)
		if err != nil {
			t.Errorf("ParseTag(%q): %v", s, err)
			continue
		}
		if got := tag.String(); got != s {
			t.Errorf("Tag round trip = %q, want %q", got, s)
		}
	}
}

func TestTagTypedAccessors(t *testing.T) {
	tag, _ := ParseTag("NM:i:-7")
	if v, err := tag.Int(); err != nil || v != -7 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if _, err := tag.Float(); err == nil {
		t.Error("Float on i tag succeeded")
	}
	ftag, _ := ParseTag("AS:f:2.5")
	if v, err := ftag.Float(); err != nil || v != 2.5 {
		t.Errorf("Float = %g, %v", v, err)
	}
	atag, _ := ParseTag("XA:A:c")
	if c, err := atag.Char(); err != nil || c != 'c' {
		t.Errorf("Char = %c, %v", c, err)
	}
	btag, _ := ParseTag("ZB:B:s,1,2,-3")
	if sub, err := btag.ArraySubtype(); err != nil || sub != 's' {
		t.Errorf("ArraySubtype = %c, %v", sub, err)
	}
	ints, err := btag.Ints()
	if err != nil || len(ints) != 3 || ints[2] != -3 {
		t.Errorf("Ints = %v, %v", ints, err)
	}
	if _, err := btag.Floats(); err == nil {
		t.Error("Floats on int array succeeded")
	}
	fbtag, _ := ParseTag("ZF:B:f,0.5,1.5")
	floats, err := fbtag.Floats()
	if err != nil || len(floats) != 2 || floats[1] != 1.5 {
		t.Errorf("Floats = %v, %v", floats, err)
	}
}

func TestTagConstructors(t *testing.T) {
	if got := IntTag("NM", 3).String(); got != "NM:i:3" {
		t.Errorf("IntTag = %q", got)
	}
	if got := StringTag("RG", "g").String(); got != "RG:Z:g" {
		t.Errorf("StringTag = %q", got)
	}
	if got := CharTag("XA", 'q').String(); got != "XA:A:q" {
		t.Errorf("CharTag = %q", got)
	}
	if got := FloatTag("AS", 2.5).String(); got != "AS:f:2.5" {
		t.Errorf("FloatTag = %q", got)
	}
}

func TestParseTagErrors(t *testing.T) {
	for _, s := range []string{"", "NM", "NM:i", "NM:q:1", "NMi:2:", "XA:A:ab", "NM:i:"} {
		if _, err := ParseTag(s); !errors.Is(err, ErrInvalidTag) {
			t.Errorf("ParseTag(%q) err = %v, want ErrInvalidTag", s, err)
		}
	}
}

func TestFlagPredicates(t *testing.T) {
	f := FlagPaired | FlagProperPair | FlagMateReverse | FlagRead1
	if !f.Paired() || f.Unmapped() || !f.Mapped() || f.Reverse() {
		t.Errorf("predicates wrong for %v", f)
	}
	if !f.Read1() || f.Read2() || f.Secondary() || f.Supplementary() || !f.Primary() {
		t.Errorf("segment predicates wrong for %v", f)
	}
	if !f.Has(FlagPaired | FlagRead1) {
		t.Error("Has(paired|read1) = false")
	}
	if f.Has(FlagPaired | FlagReverse) {
		t.Error("Has(paired|reverse) = true")
	}
	sec := FlagSecondary
	if sec.Primary() {
		t.Error("secondary counted as primary")
	}
}

func TestFlagString(t *testing.T) {
	if got := Flag(0).String(); got != "0" {
		t.Errorf("Flag(0) = %q", got)
	}
	if got := (FlagPaired | FlagUnmapped).String(); got != "PAIRED|UNMAPPED" {
		t.Errorf("Flag string = %q", got)
	}
}
