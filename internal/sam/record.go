package sam

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"parseq/internal/kern"
)

// Record is one alignment: the eleven mandatory SAM fields plus optional
// tags. Pos and PNext are 1-based as in SAM text; 0 means unavailable.
type Record struct {
	QName string // query template name; "*" when unavailable
	Flag  Flag   // bitwise flag
	RName string // reference sequence name; "*" when unmapped
	Pos   int32  // 1-based leftmost mapping position; 0 when unmapped
	MapQ  uint8  // mapping quality; 255 when unavailable
	Cigar Cigar  // parsed CIGAR; nil renders as "*"
	RNext string // reference name of the mate; "=", "*" or a name
	PNext int32  // 1-based position of the mate
	TLen  int32  // observed template length
	Seq   string // segment sequence; "*" when unavailable
	Qual  string // ASCII of base quality plus 33; "*" when unavailable
	Tags  []Tag  // optional fields
}

// ErrInvalidRecord reports a malformed alignment line.
var ErrInvalidRecord = errors.New("sam: invalid alignment record")

// ParseRecord parses one tab-delimited alignment line (without the
// trailing newline).
func ParseRecord(line string) (Record, error) {
	var r Record
	if err := parseRecordInto(&r, line); err != nil {
		return Record{}, err
	}
	return r, nil
}

// ParseRecordInto parses line into r, reusing r's Tags and Cigar slice
// capacity. It is the allocation-light entry point for the converter
// hot path; callers that retain parsed records across calls must pass a
// fresh Record (or copy the slices) since the backing arrays are reused.
func ParseRecordInto(r *Record, line string) error {
	r.Tags = r.Tags[:0]
	return parseRecordInto(r, line)
}

func parseRecordInto(r *Record, line string) error {
	rest := line
	next := func() (string, bool) {
		if rest == "" {
			return "", false
		}
		if i := strings.IndexByte(rest, '\t'); i >= 0 {
			f := rest[:i]
			rest = rest[i+1:]
			return f, true
		}
		f := rest
		rest = ""
		return f, true
	}

	field, ok := next()
	if !ok || field == "" {
		return fmt.Errorf("%w: empty QNAME", ErrInvalidRecord)
	}
	r.QName = field

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing FLAG", ErrInvalidRecord)
	}
	flag, err := parseUint(field, 1<<16-1)
	if err != nil {
		return fmt.Errorf("%w: FLAG %q", ErrInvalidRecord, field)
	}
	r.Flag = Flag(flag)

	r.RName, ok = next()
	if !ok || r.RName == "" {
		return fmt.Errorf("%w: missing RNAME", ErrInvalidRecord)
	}

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing POS", ErrInvalidRecord)
	}
	pos, err := parseUint(field, 1<<31-1)
	if err != nil {
		return fmt.Errorf("%w: POS %q", ErrInvalidRecord, field)
	}
	r.Pos = int32(pos)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing MAPQ", ErrInvalidRecord)
	}
	mapq, err := parseUint(field, 255)
	if err != nil {
		return fmt.Errorf("%w: MAPQ %q", ErrInvalidRecord, field)
	}
	r.MapQ = uint8(mapq)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing CIGAR", ErrInvalidRecord)
	}
	r.Cigar, err = ParseCigarInto(r.Cigar, field)
	if err != nil {
		return err
	}

	r.RNext, ok = next()
	if !ok || r.RNext == "" {
		return fmt.Errorf("%w: missing RNEXT", ErrInvalidRecord)
	}

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing PNEXT", ErrInvalidRecord)
	}
	pnext, err := parseUint(field, 1<<31-1)
	if err != nil {
		return fmt.Errorf("%w: PNEXT %q", ErrInvalidRecord, field)
	}
	r.PNext = int32(pnext)

	field, ok = next()
	if !ok {
		return fmt.Errorf("%w: missing TLEN", ErrInvalidRecord)
	}
	tlen, err := strconv.ParseInt(field, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: TLEN %q", ErrInvalidRecord, field)
	}
	r.TLen = int32(tlen)

	r.Seq, ok = next()
	if !ok || r.Seq == "" {
		return fmt.Errorf("%w: missing SEQ", ErrInvalidRecord)
	}

	r.Qual, ok = next()
	if !ok || r.Qual == "" {
		return fmt.Errorf("%w: missing QUAL", ErrInvalidRecord)
	}
	if r.Seq != "*" && r.Qual != "*" && len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("%w: SEQ/QUAL length mismatch (%d vs %d)",
			ErrInvalidRecord, len(r.Seq), len(r.Qual))
	}

	for {
		field, ok = next()
		if !ok {
			break
		}
		tag, err := ParseTag(field)
		if err != nil {
			return err
		}
		r.Tags = append(r.Tags, tag)
	}
	return nil
}

// parseUint parses a non-negative decimal with an inclusive maximum,
// avoiding strconv's interface-heavy error path on the hot path.
func parseUint(s string, max uint64) (uint64, error) {
	if s == "" {
		return 0, ErrInvalidRecord
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b < '0' || b > '9' {
			return 0, ErrInvalidRecord
		}
		n = n*10 + uint64(b-'0')
		if n > max {
			return 0, ErrInvalidRecord
		}
	}
	return n, nil
}

// Unmapped reports whether the record is unmapped either by flag or by a
// missing reference name/position.
func (r *Record) Unmapped() bool {
	return r.Flag.Unmapped() || r.RName == "*" || r.Pos == 0
}

// End returns the 1-based inclusive rightmost reference position covered
// by the alignment. For unmapped records or records without a CIGAR it
// returns Pos.
func (r *Record) End() int32 {
	refLen := r.Cigar.ReferenceLength()
	if refLen == 0 {
		return r.Pos
	}
	return r.Pos + int32(refLen) - 1
}

// MateRName resolves the "=" convention of the RNEXT field.
func (r *Record) MateRName() string {
	if r.RNext == "=" {
		return r.RName
	}
	return r.RNext
}

// Tag returns the first optional field with the given two-character name.
func (r *Record) Tag(name string) (Tag, bool) {
	if len(name) != 2 {
		return Tag{}, false
	}
	for _, t := range r.Tags {
		if t.Name[0] == name[0] && t.Name[1] == name[1] {
			return t, true
		}
	}
	return Tag{}, false
}

// String renders the record as one SAM alignment line without a trailing
// newline.
func (r *Record) String() string {
	var b strings.Builder
	r.AppendText(&b)
	return b.String()
}

// AppendText writes the record's SAM text form into b, without a trailing
// newline. Using a caller-owned builder lets the converter reuse one
// buffer per partition.
func (r *Record) AppendText(b *strings.Builder) {
	b.Grow(len(r.QName) + len(r.Seq) + len(r.Qual) + 64)
	b.WriteString(r.QName)
	b.WriteByte('\t')
	appendInt(b, int(r.Flag))
	b.WriteByte('\t')
	b.WriteString(r.RName)
	b.WriteByte('\t')
	appendInt(b, int(r.Pos))
	b.WriteByte('\t')
	appendInt(b, int(r.MapQ))
	b.WriteByte('\t')
	if len(r.Cigar) == 0 {
		b.WriteByte('*')
	} else {
		for _, op := range r.Cigar {
			appendInt(b, op.Len())
			b.WriteByte(op.Type().Char())
		}
	}
	b.WriteByte('\t')
	b.WriteString(r.RNext)
	b.WriteByte('\t')
	appendInt(b, int(r.PNext))
	b.WriteByte('\t')
	if r.TLen < 0 {
		b.WriteByte('-')
		appendInt(b, int(-int64(r.TLen)))
	} else {
		appendInt(b, int(r.TLen))
	}
	b.WriteByte('\t')
	b.WriteString(r.Seq)
	b.WriteByte('\t')
	b.WriteString(r.Qual)
	for _, t := range r.Tags {
		b.WriteByte('\t')
		b.WriteByte(t.Name[0])
		b.WriteByte(t.Name[1])
		b.WriteByte(':')
		b.WriteByte(t.Type)
		b.WriteByte(':')
		b.WriteString(t.Value)
	}
}

// ReverseComplement returns the reverse complement of a nucleotide
// sequence; ambiguity codes map through the IUPAC complement table and
// unknown bytes map to 'N'. The mirror loop runs word-wide in kern.
func ReverseComplement(seq string) string {
	out := make([]byte, len(seq))
	kern.ReverseComplement(out, stringBytes(seq))
	return bytesToString(out)
}

// Reverse returns s reversed; used for qualities of reverse-strand reads.
func Reverse(s string) string {
	out := make([]byte, len(s))
	kern.Reverse(out, stringBytes(s))
	return bytesToString(out)
}
