// Package flagstat computes samtools-flagstat-style summary statistics
// over alignment datasets. It demonstrates that the converter runtime's
// partitioning generalises beyond format conversion: the same Algorithm 1
// byte split drives a parallel analysis whose per-partition results
// reduce associatively.
package flagstat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"parseq/internal/mpi"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// Stats are the counters flagstat reports.
type Stats struct {
	Total          int64 // alignment records
	Mapped         int64
	Paired         int64 // paired in sequencing
	ProperlyPaired int64
	Read1          int64
	Read2          int64
	Secondary      int64
	Supplementary  int64
	Duplicates     int64
	QCFail         int64
	MateMapped     int64 // paired, both this and mate mapped
}

// Add accumulates one record.
func (s *Stats) Add(rec *sam.Record) {
	s.tally(rec.Flag, rec.RName != "*")
}

// AddBody accumulates one BAM-encoded record body without decoding it —
// the shard hot loop. Only the flag and reference-ID words are read, so
// the call is equivalent to Add on the decoded record (RName is "*"
// exactly when refID is negative) at none of DecodeRecord's per-field
// allocation cost.
func (s *Stats) AddBody(body []byte) {
	f := sam.Flag(binary.LittleEndian.Uint16(body[14:]))
	refID := int32(binary.LittleEndian.Uint32(body[0:]))
	s.tally(f, refID >= 0)
}

// tally is the shared counting core of Add and AddBody. hasRef reports
// whether the record is placed on a real reference.
func (s *Stats) tally(f sam.Flag, hasRef bool) {
	s.Total++
	if f.Secondary() {
		s.Secondary++
	}
	if f.Supplementary() {
		s.Supplementary++
	}
	if f&sam.FlagDuplicate != 0 {
		s.Duplicates++
	}
	if f&sam.FlagQCFail != 0 {
		s.QCFail++
	}
	if f.Mapped() && hasRef {
		s.Mapped++
	}
	if !f.Paired() {
		return
	}
	s.Paired++
	if f&sam.FlagProperPair != 0 {
		s.ProperlyPaired++
	}
	if f.Read1() {
		s.Read1++
	}
	if f.Read2() {
		s.Read2++
	}
	if f.Mapped() && f&sam.FlagMateUnmapped == 0 {
		s.MateMapped++
	}
}

// Merge folds other into s; merging is the parallel reduction.
func (s *Stats) Merge(other Stats) {
	s.Total += other.Total
	s.Mapped += other.Mapped
	s.Paired += other.Paired
	s.ProperlyPaired += other.ProperlyPaired
	s.Read1 += other.Read1
	s.Read2 += other.Read2
	s.Secondary += other.Secondary
	s.Supplementary += other.Supplementary
	s.Duplicates += other.Duplicates
	s.QCFail += other.QCFail
	s.MateMapped += other.MateMapped
}

// fields serialises the counters for the gather step; order matters.
func (s *Stats) fields() []*int64 {
	return []*int64{
		&s.Total, &s.Mapped, &s.Paired, &s.ProperlyPaired, &s.Read1,
		&s.Read2, &s.Secondary, &s.Supplementary, &s.Duplicates,
		&s.QCFail, &s.MateMapped,
	}
}

func (s *Stats) pack() []byte {
	fs := s.fields()
	out := make([]byte, 0, 8*len(fs))
	for _, f := range fs {
		out = binary.LittleEndian.AppendUint64(out, uint64(*f))
	}
	return out
}

func unpack(data []byte) (Stats, error) {
	var s Stats
	fs := s.fields()
	if len(data) != 8*len(fs) {
		return s, fmt.Errorf("flagstat: payload of %d bytes", len(data))
	}
	for i, f := range fs {
		*f = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return s, nil
}

// percent renders "n (p%)" like samtools flagstat.
func percent(n, total int64) string {
	if total == 0 {
		return fmt.Sprintf("%d (N/A)", n)
	}
	return fmt.Sprintf("%d (%.2f%%)", n, 100*float64(n)/float64(total))
}

// Format renders the report in samtools-flagstat style.
func (s *Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d in total\n", s.Total)
	fmt.Fprintf(&b, "%d secondary\n", s.Secondary)
	fmt.Fprintf(&b, "%d supplementary\n", s.Supplementary)
	fmt.Fprintf(&b, "%d duplicates\n", s.Duplicates)
	fmt.Fprintf(&b, "%d QC-fail\n", s.QCFail)
	fmt.Fprintf(&b, "%s mapped\n", percent(s.Mapped, s.Total))
	fmt.Fprintf(&b, "%d paired in sequencing\n", s.Paired)
	fmt.Fprintf(&b, "%d read1\n", s.Read1)
	fmt.Fprintf(&b, "%d read2\n", s.Read2)
	fmt.Fprintf(&b, "%s properly paired\n", percent(s.ProperlyPaired, s.Paired))
	fmt.Fprintf(&b, "%s with itself and mate mapped\n", percent(s.MateMapped, s.Paired))
	return b.String()
}

// Of accumulates statistics over in-memory records.
func Of(recs []sam.Record) Stats {
	var s Stats
	for i := range recs {
		s.Add(&recs[i])
	}
	return s
}

// SAMFile computes flagstat over a SAM file with `cores` ranks: the text
// is partitioned with Algorithm 1, each rank tallies its partition, and
// rank 0 gathers and merges the partial counters.
func SAMFile(samPath string, cores int) (Stats, error) {
	return SAMFileLaunch(samPath, cores, nil)
}

// SAMFileLaunch is SAMFile with an explicit launcher; nil selects the
// in-process mpi.Run. Under a distributed launcher the merged Stats are
// complete on rank 0's process only.
func SAMFileLaunch(samPath string, cores int, launch mpi.Launcher) (Stats, error) {
	if launch == nil {
		launch = mpi.Run
	}
	if cores < 1 {
		cores = 1
	}
	f, err := os.Open(samPath)
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Stats{}, err
	}
	dataStart, err := headerEnd(f)
	if err != nil {
		return Stats{}, err
	}

	var total Stats
	err = launch(cores, func(c *mpi.Comm) error {
		br, err := partition.SAMForwardMPI(c, f, dataStart, fi.Size())
		if err != nil {
			return err
		}
		local, err := tallyRange(samPath, br)
		if err != nil {
			return err
		}
		parts, err := c.Gather(0, local.pack())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for _, p := range parts {
				s, err := unpack(p)
				if err != nil {
					return err
				}
				total.Merge(s)
			}
		}
		return nil
	})
	return total, err
}

// headerEnd returns the offset of the first alignment byte.
func headerEnd(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	var offset int64
	for {
		peek, err := br.Peek(1)
		if err == io.EOF {
			return offset, nil
		}
		if err != nil {
			return 0, err
		}
		if peek[0] != '@' {
			return offset, nil
		}
		line, err := br.ReadString('\n')
		offset += int64(len(line))
		if err == io.EOF {
			return offset, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// tallyRange tallies one text partition.
func tallyRange(samPath string, br partition.ByteRange) (Stats, error) {
	var s Stats
	in, err := os.Open(samPath)
	if err != nil {
		return s, err
	}
	defer in.Close()
	scan := bufio.NewScanner(io.NewSectionReader(in, br.Start, br.Len()))
	scan.Buffer(make([]byte, 256<<10), 4<<20)
	var rec sam.Record
	for scan.Scan() {
		line := scan.Bytes()
		if len(line) == 0 {
			continue
		}
		// Bytes path: no per-line string copy, kern-scanned fields. The
		// record is consumed by Add before the scanner reuses the buffer.
		if err := sam.ParseRecordIntoBytes(&rec, line); err != nil {
			return s, err
		}
		s.Add(&rec)
	}
	return s, scan.Err()
}
