package flagstat

import (
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"parseq/internal/bam"
	"parseq/internal/bamx"
	"parseq/internal/mpinet"
	"parseq/internal/shard"
	"parseq/internal/simdata"
)

// writeShardDataset materialises a deterministic dataset as BAM and
// BAMX (+BAIX) files.
func writeShardDataset(t testing.TB, n int) (bamPath, bamxPath string, d *simdata.Dataset) {
	t.Helper()
	dir := t.TempDir()
	d = simdata.Generate(simdata.DefaultConfig(n))
	bamPath = filepath.Join(dir, "data.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bamxPath = filepath.Join(dir, "data.bamx")
	xf, err := os.Create(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := bamx.BuildFromRecords(xf, d.Header, d.Records)
	if err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(filepath.Join(dir, "data.baix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(ixf); err != nil {
		t.Fatal(err)
	}
	if err := ixf.Close(); err != nil {
		t.Fatal(err)
	}
	return bamPath, bamxPath, d
}

// runLoopbackWorld forms a real loopback TCP world of size single-rank
// processes-in-goroutines and runs fn once per rank with its world.
func runLoopbackWorld(t *testing.T, size int, fn func(w *mpinet.World) error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	ln.Close()
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			w, err := mpinet.Connect(mpinet.Config{
				Rank:        rank,
				World:       size,
				Coord:       coord,
				DialTimeout: 10 * time.Second,
				JoinTimeout: 30 * time.Second,
				WaitTimeout: 30 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer w.Close()
			errs[rank] = fn(w)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestShardedIdentity: the sharded flagstat must equal the sequential
// tally at every shard count, worker count and rank count on the
// in-process channel world, for both providers.
func TestShardedIdentity(t *testing.T) {
	bamPath, bamxPath, d := writeShardDataset(t, 3000)
	want := Of(d.Records)

	seq, err := BAMFile(bamPath)
	if err != nil {
		t.Fatalf("BAMFile: %v", err)
	}
	if seq != want {
		t.Fatalf("sequential BAM scan:\n got %+v\nwant %+v", seq, want)
	}

	for _, tc := range []struct {
		name string
		p    shard.Provider
	}{
		{"bam", shard.NewBAMProvider(bamPath)},
		{"bamx", shard.NewBAMXProvider(bamxPath)},
	} {
		defer tc.p.Close()
		for _, shards := range []int{1, 2, 4, 8} {
			for _, ranks := range []int{1, 2} {
				got, err := Sharded(tc.p, shard.Config{
					Ranks:        ranks,
					Workers:      3,
					TargetShards: shards,
				})
				if err != nil {
					t.Fatalf("%s shards=%d ranks=%d: %v", tc.name, shards, ranks, err)
				}
				if got != want {
					t.Fatalf("%s shards=%d ranks=%d:\n got %+v\nwant %+v",
						tc.name, shards, ranks, got, want)
				}
			}
		}
	}
}

// TestShardedIdentityTCP: the same identity over a real loopback TCP
// world — shard descriptors scatter and partial tallies gather across
// the mesh, and rank 0's merged result must still match the sequential
// tally at every shard count.
func TestShardedIdentityTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP world in -short mode")
	}
	bamPath, _, d := writeShardDataset(t, 2000)
	want := Of(d.Records)
	const worldSize = 2
	for _, shards := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		var rank0 *Stats
		runLoopbackWorld(t, worldSize, func(w *mpinet.World) error {
			p := shard.NewBAMProvider(bamPath)
			defer p.Close()
			got, err := Sharded(p, shard.Config{
				Ranks:        worldSize,
				Workers:      2,
				TargetShards: shards,
				Launch:       w.Launcher(),
			})
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				rank0 = &got
				mu.Unlock()
			}
			return nil
		})
		if rank0 == nil {
			t.Fatalf("shards=%d: rank 0 produced no result", shards)
		}
		if *rank0 != want {
			t.Fatalf("shards=%d over TCP:\n got %+v\nwant %+v", shards, *rank0, want)
		}
	}
}

// TestAddBodyEquivalence: AddBody over encoded bodies must tally
// exactly like Add over the decoded records.
func TestAddBodyEquivalence(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(1000))
	want := Of(d.Records)
	var got Stats
	var buf []byte
	for i := range d.Records {
		var err error
		buf, err = bam.EncodeRecord(buf[:0], &d.Records[i], d.Header)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		// EncodeRecord prepends the block_size word; the body follows.
		got.AddBody(buf[4:])
	}
	if got != want {
		t.Fatalf("AddBody tally:\n got %+v\nwant %+v", got, want)
	}
}
