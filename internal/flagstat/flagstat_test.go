package flagstat

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parseq/internal/sam"
	"parseq/internal/simdata"
)

func TestAddCountsFlags(t *testing.T) {
	lines := []string{
		"a\t99\tchr1\t10\t30\t4M\t=\t20\t14\tACGT\tIIII",   // paired, proper, read1, mate mapped
		"b\t147\tchr1\t20\t30\t4M\t=\t10\t-14\tACGT\tIIII", // paired, proper, read2, reverse
		"c\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII",            // unmapped
		"d\t256\tchr1\t30\t0\t4M\t*\t0\t0\tACGT\tIIII",     // secondary
		"e\t1024\tchr1\t40\t30\t4M\t*\t0\t0\tACGT\tIIII",   // duplicate
		"f\t512\tchr1\t50\t30\t4M\t*\t0\t0\tACGT\tIIII",    // QC fail
		"g\t2048\tchr1\t60\t30\t4M\t*\t0\t0\tACGT\tIIII",   // supplementary
		"h\t73\tchr1\t70\t30\t4M\t*\t0\t0\tACGT\tIIII",     // paired, read1, mate unmapped
	}
	var recs []sam.Record
	for _, l := range lines {
		r, err := sam.ParseRecord(l)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	s := Of(recs)
	if s.Total != 8 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.Mapped != 7 {
		t.Errorf("Mapped = %d", s.Mapped)
	}
	if s.Paired != 3 {
		t.Errorf("Paired = %d", s.Paired)
	}
	if s.ProperlyPaired != 2 {
		t.Errorf("ProperlyPaired = %d", s.ProperlyPaired)
	}
	if s.Read1 != 2 || s.Read2 != 1 {
		t.Errorf("Read1/2 = %d/%d", s.Read1, s.Read2)
	}
	if s.Secondary != 1 || s.Supplementary != 1 || s.Duplicates != 1 || s.QCFail != 1 {
		t.Errorf("flag counters = %+v", s)
	}
	if s.MateMapped != 2 {
		t.Errorf("MateMapped = %d", s.MateMapped)
	}
}

func TestMergeEqualsWhole(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(500))
	whole := Of(d.Records)
	var merged Stats
	for _, part := range [][2]int{{0, 100}, {100, 350}, {350, 500}} {
		s := Of(d.Records[part[0]:part[1]])
		merged.Merge(s)
	}
	if merged != whole {
		t.Errorf("merged %+v != whole %+v", merged, whole)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(300))
	s := Of(d.Records)
	got, err := unpack(s.pack())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip %+v != %+v", got, s)
	}
	if _, err := unpack([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestSAMFileParallelMatchesSequential(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(800))
	dir := t.TempDir()
	samPath := filepath.Join(dir, "f.sam")
	f, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	want := Of(d.Records)
	for _, cores := range []int{1, 2, 7} {
		got, err := SAMFile(samPath, cores)
		if err != nil {
			t.Fatalf("SAMFile(cores=%d): %v", cores, err)
		}
		if got != want {
			t.Errorf("cores=%d: %+v != %+v", cores, got, want)
		}
	}
}

func TestSAMFileMissing(t *testing.T) {
	if _, err := SAMFile("/does/not/exist.sam", 2); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFormat(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(200))
	s := Of(d.Records)
	out := s.Format()
	for _, want := range []string{"in total", "mapped", "properly paired", "read1", "read2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	var empty Stats
	if !strings.Contains(empty.Format(), "N/A") {
		t.Error("empty stats should render N/A percentages")
	}
}
