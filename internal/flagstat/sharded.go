package flagstat

import (
	"io"
	"os"

	"parseq/internal/bam"
	"parseq/internal/formats/pamx"
	"parseq/internal/mpi"
	"parseq/internal/shard"
)

// BAMFile computes flagstat over a BAM file with one sequential
// whole-file scan — the single-stream reference path the sharded driver
// is measured against, and the fallback for unindexed inputs. The loop
// stays on the undecoded body path.
func BAMFile(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	br, err := bam.NewReader(f)
	if err != nil {
		return Stats{}, err
	}
	defer br.Close()
	var s Stats
	for {
		body, err := br.ReadBody()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.AddBody(body)
	}
}

// Sharded computes flagstat region-parallel over an indexed provider:
// rank 0 generates byte-balanced genomic shards and scatters contiguous
// descriptor groups across the world; each rank drains its group
// through local workers on independent seek-and-scan readers (the
// zero-decode body path); per-shard tallies fold in shard order and
// gather to rank 0. The start-within shard contract makes the merged
// counters identical to a sequential scan at any shard count, worker
// count or transport. Under a distributed launcher the result is
// complete on rank 0's process only.
func Sharded(p shard.Provider, cfg shard.Config) (Stats, error) {
	// Flagstat reads only the FLAG word and mate refs of the fixed
	// prefix: over a columnar provider, project the coordinate column
	// and skip the name/CIGAR/sequence/quality/aux bulk entirely.
	shard.Project(p, pamx.FieldFlag)
	launch, ranks := cfg.Launcher()
	var total Stats
	err := launch(ranks, func(c *mpi.Comm) error {
		var all []shard.Shard
		if c.Rank() == 0 {
			var err error
			all, err = p.GenerateShards(shard.Options{
				TargetShards: cfg.ResolveTargetShards(c.Size()),
			})
			if err != nil {
				return err
			}
		}
		local, err := shard.Scatter(c, all)
		if err != nil {
			return err
		}
		per := make([]Stats, len(local))
		err = shard.ForEach(p, local, cfg.Workers, func(i int, sh shard.Shard, rr shard.RecordReader) error {
			for {
				body, err := rr.NextBody()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				per[i].AddBody(body)
			}
		})
		if err != nil {
			return err
		}
		var sum Stats
		for i := range per {
			sum.Merge(per[i])
		}
		parts, err := c.Gather(0, sum.pack())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for _, pt := range parts {
				s, err := unpack(pt)
				if err != nil {
					return err
				}
				total.Merge(s)
			}
		}
		return nil
	})
	return total, err
}
