package flagstat

import (
	"path/filepath"
	"sync"
	"testing"

	"parseq/internal/formats/pamx"
	"parseq/internal/mpinet"
	"parseq/internal/shard"
)

// writePAMXDataset converts a BAM file into PAMX with the group-count
// knob set so the file holds at least target groups (groups also cut on
// every reference change) — PAMX shard counts are group counts.
func writePAMXDataset(t testing.TB, bamPath string, n, target int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.pamx")
	groupRecords := (n + target - 1) / target
	if _, err := pamx.FromBAM(bamPath, path, pamx.Options{GroupRecords: groupRecords}); err != nil {
		t.Fatalf("FromBAM: %v", err)
	}
	return path
}

// TestPAMXProjectionIdentity: flagstat over a columnar PAMX provider —
// which projects down to the coordinate column and never inflates
// names, CIGARs, sequences, qualities or tags — must equal the
// sequential whole-record BAM scan at every group structure and rank
// count on the in-process channel world.
func TestPAMXProjectionIdentity(t *testing.T) {
	const n = 3000
	bamPath, _, d := writeShardDataset(t, n)
	want := Of(d.Records)

	for _, target := range []int{1, 2, 4, 8} {
		pamxPath := writePAMXDataset(t, bamPath, n, target)
		for _, ranks := range []int{1, 2} {
			p := shard.NewPAMXProvider(pamxPath)
			got, err := Sharded(p, shard.Config{Ranks: ranks, Workers: 3})
			p.Close()
			if err != nil {
				t.Fatalf("groups=%d ranks=%d: %v", target, ranks, err)
			}
			if got != want {
				t.Fatalf("groups=%d ranks=%d:\n got %+v\nwant %+v", target, ranks, got, want)
			}
		}
	}
}

// TestPAMXProjectionIdentityTCP: the same identity over a real loopback
// TCP world — projected column scans on every rank, partial tallies
// gathered to rank 0.
func TestPAMXProjectionIdentityTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP world in -short mode")
	}
	const n = 2000
	bamPath, _, d := writeShardDataset(t, n)
	want := Of(d.Records)
	const worldSize = 2
	for _, target := range []int{1, 2, 4, 8} {
		pamxPath := writePAMXDataset(t, bamPath, n, target)
		var mu sync.Mutex
		var rank0 *Stats
		runLoopbackWorld(t, worldSize, func(w *mpinet.World) error {
			p := shard.NewPAMXProvider(pamxPath)
			defer p.Close()
			got, err := Sharded(p, shard.Config{
				Ranks:   worldSize,
				Workers: 2,
				Launch:  w.Launcher(),
			})
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				rank0 = &got
				mu.Unlock()
			}
			return nil
		})
		if rank0 == nil {
			t.Fatalf("groups=%d: rank 0 produced no result", target)
		}
		if *rank0 != want {
			t.Fatalf("groups=%d over TCP:\n got %+v\nwant %+v", target, *rank0, want)
		}
	}
}
