// Load-shedding admission control. The daemon rejects work *before*
// saturation: a bounded queue caps latency under burst, an in-flight
// byte budget caps memory/disk exposure, and the measured per-worker
// deflate throughput (the bgzf.shared_pool.throughput EWMA) turns the
// byte backlog into an estimated wait — when that wait exceeds the
// policy ceiling, a 429 with Retry-After is cheaper for everyone than
// an admission the server cannot serve in time. Decide is a pure
// function of the sampled load, so the accept/reject frontier is
// pinned by table-driven unit tests.

package daemon

import (
	"fmt"
	"time"
)

// Policy bounds the work the daemon accepts.
type Policy struct {
	// MaxQueue is the FIFO job queue's capacity. Submissions arriving
	// with the queue full are shed. ≤ 0 picks DefaultMaxQueue.
	MaxQueue int
	// MaxBytes caps the total spooled input bytes across queued and
	// running jobs. ≤ 0 picks DefaultMaxBytes.
	MaxBytes int64
	// MaxWait caps the estimated time a new job would wait for the
	// backlog ahead of it to drain, derived from the shared deflate
	// pool's measured throughput. ≤ 0 picks DefaultMaxWait.
	MaxWait time.Duration
	// FloorBps is the per-worker throughput assumed while the EWMA is
	// cold (no blocks compressed yet). ≤ 0 picks DefaultFloorBps.
	FloorBps int64
}

// Defaults: a queue two deep per expected concurrent job, a gigabyte
// of spool exposure, and a half-minute wait ceiling over a deliberately
// conservative 16 MB/s cold-start floor.
const (
	DefaultMaxQueue = 64
	DefaultMaxBytes = int64(1) << 30
	DefaultMaxWait  = 30 * time.Second
	DefaultFloorBps = int64(16) << 20
)

func (p Policy) withDefaults() Policy {
	if p.MaxQueue <= 0 {
		p.MaxQueue = DefaultMaxQueue
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	if p.MaxWait <= 0 {
		p.MaxWait = DefaultMaxWait
	}
	if p.FloorBps <= 0 {
		p.FloorBps = DefaultFloorBps
	}
	return p
}

// Load is one sample of the daemon's state, the input to Decide.
type Load struct {
	// QueueDepth is the number of admitted jobs not yet running.
	QueueDepth int
	// InFlightBytes is the total spooled input bytes of queued and
	// running jobs.
	InFlightBytes int64
	// ThroughputBps is the bgzf.shared_pool.throughput EWMA — measured
	// bytes/s one deflate worker delivers; 0 while cold.
	ThroughputBps int64
	// Workers is the shared pool's current worker count (≥ 1).
	Workers int
}

// Decision is the admission verdict. RetryAfter is set on every
// rejection: the client's next useful attempt time, derived from the
// backlog and the measured service rate.
type Decision struct {
	Admit      bool
	Reason     string        // stable code: "", CodeOverloaded reasons below
	Detail     string        // human-readable explanation
	RetryAfter time.Duration // ≥ 1s on rejection
}

// Rejection reasons, surfaced in the structured error body.
const (
	ReasonQueueFull = "queue_full"
	ReasonBytes     = "inflight_bytes"
	ReasonWait      = "predicted_wait"
)

// Decide applies the policy to one load sample and an incoming job of
// `incoming` input bytes (0 when the size is not yet known — chunked
// uploads are re-checked after spooling).
func (p Policy) Decide(l Load, incoming int64) Decision {
	p = p.withDefaults()
	if l.Workers < 1 {
		l.Workers = 1
	}
	bps := l.ThroughputBps
	if bps <= 0 {
		bps = p.FloorBps
	}
	total := float64(bps) * float64(l.Workers)

	// Estimated time for the present backlog plus this job to drain at
	// the measured aggregate service rate.
	backlog := l.InFlightBytes + incoming
	wait := time.Duration(float64(backlog) / total * float64(time.Second))

	if l.QueueDepth >= p.MaxQueue {
		// The queue itself would drain in roughly `wait`; suggest
		// returning after a share of it has moved.
		return reject(ReasonQueueFull,
			fmt.Sprintf("queue full (%d jobs)", l.QueueDepth), wait/2)
	}
	if backlog > p.MaxBytes {
		return reject(ReasonBytes,
			fmt.Sprintf("in-flight bytes %d + %d exceed budget %d",
				l.InFlightBytes, incoming, p.MaxBytes), wait/2)
	}
	if wait > p.MaxWait {
		return reject(ReasonWait,
			fmt.Sprintf("predicted wait %v exceeds %v at %d B/s × %d workers",
				wait.Round(time.Millisecond), p.MaxWait, bps, l.Workers), wait-p.MaxWait)
	}
	return Decision{Admit: true}
}

// reject clamps RetryAfter to [1s, 60s]: sub-second retries just feed
// the overload, and past a minute the estimate is noise.
func reject(reason, detail string, after time.Duration) Decision {
	if after < time.Second {
		after = time.Second
	}
	if after > time.Minute {
		after = time.Minute
	}
	return Decision{Reason: reason, Detail: detail, RetryAfter: after}
}
