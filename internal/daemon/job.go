// Job lifecycle. A job moves queued → running → done/failed/canceled;
// DELETE cancels it in any non-terminal state. The state word is
// guarded by one mutex per job, and every transition records its wall
// time so the status endpoint can report queue and service latency.

package daemon

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// State is one station of the job state machine.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// FileInfo describes one job output file.
type FileInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Job is one admitted unit of work.
type Job struct {
	ID   string
	Spec JobSpec

	dir        string // per-job spool directory (input + outputs)
	inputPath  string // resolved input: spooled upload or Spec.InputPath
	inputBytes int64

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	errMsg    string
	files     []FileInfo
	records   int64
	bytesOut  int64
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id string, spec JobSpec, dir, inputPath string, inputBytes int64) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		ID: id, Spec: spec, dir: dir, inputPath: inputPath, inputBytes: inputBytes,
		ctx: ctx, cancel: cancel, state: StateQueued, submitted: time.Now(),
	}
}

// toRunning attempts the queued → running transition; it fails when the
// job was canceled while waiting in the queue.
func (j *Job) toRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state of a run: done on nil error,
// canceled when the job's context was canceled mid-run (the engine's
// result is discarded), failed otherwise.
func (j *Job) finish(res jobResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.finished = time.Now()
	switch {
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		j.errMsg = "canceled while running; result discarded"
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
		j.files = res.files
		j.records = res.records
		j.bytesOut = res.bytesOut
	}
}

// requestCancel cancels the job's context and, for a job still in the
// queue, moves it straight to canceled (the dispatcher skips it). A
// running job keeps executing — the engines have no preemption points —
// and lands in canceled when it returns. Terminal jobs are unchanged.
func (j *Job) requestCancel() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		j.errMsg = "canceled before start"
	}
	return j.state
}

// Status is the wire representation of a job, the GET /v1/jobs/{id}
// payload.
type Status struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	Spec       JobSpec    `json:"spec"`
	Error      string     `json:"error,omitempty"`
	Files      []FileInfo `json:"files,omitempty"`
	Records    int64      `json:"records,omitempty"`
	BytesOut   int64      `json:"bytes_out,omitempty"`
	InputBytes int64      `json:"input_bytes,omitempty"`
	QueuedMS   int64      `json:"queued_ms"`
	RunMS      int64      `json:"run_ms,omitempty"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Spec: j.Spec, Error: j.errMsg,
		Files:   append([]FileInfo(nil), j.files...),
		Records: j.records, BytesOut: j.bytesOut, InputBytes: j.inputBytes,
	}
	switch {
	case j.state == StateQueued:
		st.QueuedMS = time.Since(j.submitted).Milliseconds()
	case !j.started.IsZero():
		st.QueuedMS = j.started.Sub(j.submitted).Milliseconds()
		if j.state == StateRunning {
			st.RunMS = time.Since(j.started).Milliseconds()
		} else {
			st.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	default: // canceled straight out of the queue
		st.QueuedMS = j.finished.Sub(j.submitted).Milliseconds()
	}
	return st
}

// currentState reads the state under the lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// resultFiles returns the output file list of a done job, or an error
// describing why the result is not servable.
func (j *Job) resultFiles() ([]FileInfo, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("job %s is %s, not done", j.ID, j.state)
	}
	return append([]FileInfo(nil), j.files...), nil
}
