// Package daemon is the resident conversion/analysis service: an HTTP
// front door over the conv/sorter/flagstat/hist/peaks engines with a
// bounded FIFO job queue, per-job isolation, concurrent multi-tenant
// execution on the shared BGZF deflate pool, and admission control that
// sheds load before saturation. A job arrives as a validated JSON spec
// (plus an optional streamed input upload), moves through the
// queued → running → done/failed/canceled state machine, and its result
// streams back over the same connection class that submitted it. With a
// pre-registered worker fleet (seqconvd -worker) a job with Ranks > 1
// fans out across the mpinet transport unmodified.
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path"
	"strings"

	"parseq/internal/conv"
	"parseq/internal/formats"
)

// Ops the daemon executes. Convert is the format converter; the rest
// are the analysis engines on the same substrate.
const (
	OpConvert  = "convert"
	OpSort     = "sort"
	OpFlagstat = "flagstat"
	OpHist     = "hist"
	OpPeaks    = "peaks"
)

// opShutdown is the fleet-internal sentinel broadcast to workers when
// the daemon drains; it is never a valid submitted op.
const opShutdown = "__shutdown__"

// JobSpec is the client-facing description of one job: the full option
// surface of the existing CLI converters serialized as JSON. Every
// field is optional except Op ("" defaults to "convert"); Validate
// pins the invariants before a spec is admitted.
type JobSpec struct {
	// Op selects the engine: convert, sort, flagstat, hist or peaks.
	Op string `json:"op,omitempty"`
	// Converter picks the converter instance for Op=convert: auto (by
	// input extension), sam, bam, psam, bamx, bamz or pamx.
	Converter string `json:"converter,omitempty"`
	// Format is the conversion target format (sam, bam, bed, ...).
	Format string `json:"format,omitempty"`
	// Ranks is the rank count: in-process goroutine ranks by default,
	// or — when it matches a registered worker fleet's world size — one
	// rank per fleet process. 0 means 1.
	Ranks int `json:"ranks,omitempty"`
	// CodecWorkers and ParseWorkers mirror the seqconvert flags: BGZF
	// codec goroutines per stream and per-rank parse/encode goroutines
	// (0 adaptive, 1 sequential).
	CodecWorkers int `json:"codec_workers,omitempty"`
	ParseWorkers int `json:"parse_workers,omitempty"`
	// Region restricts conversion to one chromosome region
	// ("chr1:100-200"; BAMX/BAMZ converters only).
	Region string `json:"region,omitempty"`
	// InputPath names a daemon-visible input file. Empty means the
	// job's input was streamed in the submission body; then InputName
	// supplies the filename whose extension drives auto-detection.
	InputPath string `json:"input_path,omitempty"`
	InputName string `json:"input_name,omitempty"`
	// Shards and Workers tune the region-parallel analyses (flagstat,
	// hist, peaks over .bam/.bamx/.pamx inputs): shard generation goal
	// and per-rank worker goroutines. 0 picks the adaptive defaults.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// RName and BinSize select the reference and bin width for hist and
	// peaks.
	RName   string `json:"rname,omitempty"`
	BinSize int    `json:"bin,omitempty"`
	// Sims, Seed and Candidates configure peak calling: simulation
	// dataset count and seed for the synthetic background, and the
	// candidate thresholds the FDR selection sweeps.
	Sims       int       `json:"sims,omitempty"`
	Seed       int64     `json:"seed,omitempty"`
	Candidates []float64 `json:"candidates,omitempty"`
}

// specLimits bound the numeric fields so a hostile spec cannot ask the
// daemon to allocate absurd worlds or shard counts.
const (
	maxRanks   = 1024
	maxWorkers = 1024
	maxShards  = 1 << 16
	maxSims    = 1 << 12
	maxSpecLen = 1 << 16
)

var validOps = map[string]bool{
	OpConvert: true, OpSort: true, OpFlagstat: true, OpHist: true, OpPeaks: true,
}

var validConverters = map[string]bool{
	"": true, "auto": true, "sam": true, "bam": true, "psam": true,
	"bamx": true, "bamz": true, "pamx": true,
}

// DecodeSpec parses and validates a JSON job spec. Unknown fields are
// rejected — a misspelled option silently ignored is worse than a 400.
func DecodeSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	if len(data) == 0 {
		return spec, fmt.Errorf("daemon: empty job spec")
	}
	if len(data) > maxSpecLen {
		return spec, fmt.Errorf("daemon: job spec exceeds %d bytes", maxSpecLen)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("daemon: decoding job spec: %w", err)
	}
	if dec.More() {
		return spec, fmt.Errorf("daemon: trailing data after job spec")
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// Validate normalizes defaults and pins the spec invariants. It does
// not consult daemon state (fleet size, input existence) — those checks
// happen at admission, where they can produce precise errors.
func (s *JobSpec) Validate() error {
	if s.Op == "" {
		s.Op = OpConvert
	}
	if !validOps[s.Op] {
		return fmt.Errorf("daemon: unknown op %q", s.Op)
	}
	if !validConverters[s.Converter] {
		return fmt.Errorf("daemon: unknown converter %q", s.Converter)
	}
	switch {
	case s.Ranks < 0 || s.Ranks > maxRanks:
		return fmt.Errorf("daemon: ranks %d outside [0, %d]", s.Ranks, maxRanks)
	case s.CodecWorkers < 0 || s.CodecWorkers > maxWorkers:
		return fmt.Errorf("daemon: codec_workers %d outside [0, %d]", s.CodecWorkers, maxWorkers)
	case s.ParseWorkers < 0 || s.ParseWorkers > maxWorkers:
		return fmt.Errorf("daemon: parse_workers %d outside [0, %d]", s.ParseWorkers, maxWorkers)
	case s.Workers < 0 || s.Workers > maxWorkers:
		return fmt.Errorf("daemon: workers %d outside [0, %d]", s.Workers, maxWorkers)
	case s.Shards < 0 || s.Shards > maxShards:
		return fmt.Errorf("daemon: shards %d outside [0, %d]", s.Shards, maxShards)
	case s.Sims < 0 || s.Sims > maxSims:
		return fmt.Errorf("daemon: sims %d outside [0, %d]", s.Sims, maxSims)
	case s.BinSize < 0:
		return fmt.Errorf("daemon: negative bin size %d", s.BinSize)
	}
	if s.Op == OpConvert && s.Format != "" && s.Format != "bam" {
		// "bam" is the converter's binary special case; every other
		// target must be in the format registry. Catching a typo here
		// turns a doomed job into a 400.
		if _, err := formats.New(s.Format); err != nil {
			return fmt.Errorf("daemon: %w", err)
		}
	}
	if s.Region != "" {
		if _, err := conv.ParseRegion(s.Region); err != nil {
			return err
		}
	}
	if s.InputPath != "" && s.InputName != "" {
		return fmt.Errorf("daemon: input_path and input_name are mutually exclusive")
	}
	if s.InputName != "" {
		if s.InputName != path.Base(s.InputName) || s.InputName == "." || s.InputName == ".." {
			return fmt.Errorf("daemon: input_name %q must be a bare filename", s.InputName)
		}
	}
	for _, c := range s.Candidates {
		if c != c { // NaN breaks the FDR sweep's comparisons
			return fmt.Errorf("daemon: NaN candidate threshold")
		}
	}
	switch s.Op {
	case OpHist, OpPeaks:
		if s.RName == "" {
			return fmt.Errorf("daemon: op %s requires rname", s.Op)
		}
		if s.BinSize == 0 {
			s.BinSize = 100
		}
	}
	if s.Op == OpPeaks {
		if s.Sims == 0 {
			s.Sims = 8
		}
		if len(s.Candidates) == 0 {
			return fmt.Errorf("daemon: op peaks requires candidates")
		}
	}
	return nil
}

// inputName resolves the filename the job's input will carry in its
// spool directory — the extension drives converter auto-detection.
func (s *JobSpec) inputName() string {
	if s.InputPath != "" {
		return path.Base(s.InputPath)
	}
	if s.InputName != "" {
		return s.InputName
	}
	return "input.sam"
}

// converterKind resolves Converter against the input filename the way
// seqconvert's auto mode does.
func (s *JobSpec) converterKind() (string, error) {
	kind := s.Converter
	if kind == "" || kind == "auto" {
		name := s.inputName()
		switch {
		case strings.HasSuffix(name, ".sam"):
			kind = "sam"
		case strings.HasSuffix(name, ".bam"):
			kind = "bam"
		case strings.HasSuffix(name, ".bamx"):
			kind = "bamx"
		case strings.HasSuffix(name, ".bamz"):
			kind = "bamz"
		case strings.HasSuffix(name, ".pamx"):
			kind = "pamx"
		default:
			return "", fmt.Errorf("daemon: cannot infer converter for %q; set converter", name)
		}
	}
	return kind, nil
}

// Error is the structured JSON error body every non-2xx response
// carries: a stable machine-readable code plus a human message.
type Error struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// Error codes. BadSpec and friends are contract, not prose: clients
// branch on them.
const (
	CodeBadSpec       = "bad_spec"
	CodeOverloaded    = "overloaded"
	CodeDraining      = "draining"
	CodeNotFound      = "not_found"
	CodeNotDone       = "not_done"
	CodeBadMethod     = "bad_method"
	CodeUploadFailed  = "upload_failed"
	CodeFleetRequired = "fleet_required"
)

func (e *Error) Error() string { return e.Message }
