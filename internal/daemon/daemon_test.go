// End-to-end tests over real HTTP: every byte the daemon serves must be
// identical to what the equivalent direct engine invocation produces —
// the service is a front door, never a different code path.

package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parseq/internal/conv"
	"parseq/internal/flagstat"
	"parseq/internal/hist"
	"parseq/internal/mpinet"
	"parseq/internal/obs"
	"parseq/internal/simdata"
)

// writeSAM materialises a synthetic dataset as a SAM file.
func writeSAM(t testing.TB, n int) (string, *simdata.Dataset) {
	t.Helper()
	d := simdata.Generate(simdata.DefaultConfig(n))
	path := filepath.Join(t.TempDir(), "in.sam")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// startDaemon runs a daemon behind an httptest server, torn down with
// the test.
func startDaemon(t testing.TB, opts Options) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := httptest.NewServer(muxFor(d))
	t.Cleanup(srv.Close)
	return d, srv
}

func waitDone(t testing.TB, cl *Client, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
	}
	return st
}

func fetch(t testing.TB, cl *Client, id, name string) []byte {
	t.Helper()
	body, err := cl.Result(id, name)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConvertUploadByteIdentity submits a streamed-upload conversion
// over HTTP and proves each rank file is byte-identical to a direct
// conv.ConvertSAM run with the same options.
func TestConvertUploadByteIdentity(t *testing.T) {
	samPath, _ := writeSAM(t, 3000)
	_, srv := startDaemon(t, Options{Concurrency: 2})
	cl := &Client{Base: srv.URL}

	in, err := os.Open(samPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	st, err := cl.Submit(JobSpec{Op: OpConvert, Format: "bed", Ranks: 2, InputName: "in.sam"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state %s", st.State)
	}
	st = waitDone(t, cl, st.ID)
	if len(st.Files) != 2 {
		t.Fatalf("files = %+v, want 2 rank outputs", st.Files)
	}

	refDir := t.TempDir()
	ref, err := conv.ConvertSAM(samPath, conv.Options{
		Format: "bed", Cores: 2, OutDir: refDir, OutPrefix: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != ref.Stats.Records {
		t.Fatalf("records = %d, reference %d", st.Records, ref.Stats.Records)
	}
	for i, f := range st.Files {
		got := fetch(t, cl, st.ID, f.Name)
		want, err := os.ReadFile(ref.Files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank file %s differs from direct conversion (%d vs %d bytes)",
				f.Name, len(got), len(want))
		}
		if int64(len(got)) != f.Size {
			t.Fatalf("reported size %d, streamed %d", f.Size, len(got))
		}
	}
}

// TestFlagstatJSONSubmit submits by input_path (no upload) and checks
// the report matches the direct engine output.
func TestFlagstatJSONSubmit(t *testing.T) {
	samPath, _ := writeSAM(t, 1500)
	_, srv := startDaemon(t, Options{})
	cl := &Client{Base: srv.URL}

	st, err := cl.Submit(JobSpec{Op: OpFlagstat, Ranks: 2, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, cl, st.ID)

	want, err := flagstat.SAMFileLaunch(samPath, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := fetch(t, cl, st.ID, "")
	if string(got) != want.Format() {
		t.Fatalf("flagstat report differs:\n%s\nwant:\n%s", got, want.Format())
	}
	if st.Records != want.Total {
		t.Fatalf("records = %d, want %d", st.Records, want.Total)
	}
}

// TestHistJob checks the histogram TSV against the direct engine.
func TestHistJob(t *testing.T) {
	samPath, _ := writeSAM(t, 1500)
	_, srv := startDaemon(t, Options{})
	cl := &Client{Base: srv.URL}
	rname := simdata.MouseChromosomes(1000)[0].Name

	st, err := cl.Submit(JobSpec{Op: OpHist, RName: rname, BinSize: 200, Ranks: 2, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, cl, st.ID)

	h, err := hist.FromSAMParallel(samPath, rname, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := hist.WriteTSV(&want, h.Bins); err != nil {
		t.Fatal(err)
	}
	if got := fetch(t, cl, st.ID, ""); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("hist TSV differs (%d vs %d bytes)", len(got), want.Len())
	}
}

// TestCancelQueuedJob pins the DELETE path: a queued job cancels
// immediately and never runs.
func TestCancelQueuedJob(t *testing.T) {
	samPath, _ := writeSAM(t, 200)
	d, srv := startDaemon(t, Options{Concurrency: 1})
	gate := make(chan struct{})
	d.gate = gate
	cl := &Client{Base: srv.URL}

	first, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("canceled queued job reports %s", st.State)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if st, err = cl.Wait(ctx, first.ID, 10*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("first job: %v %s", err, st.State)
	}
	if st, err = cl.Status(second.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("second job: %v %s", err, st.State)
	}
}

// TestStructuredErrors pins the non-2xx contract: every failure is a
// JSON Error body with a stable code and the right status.
func TestStructuredErrors(t *testing.T) {
	samPath, _ := writeSAM(t, 100)
	d, srv := startDaemon(t, Options{Concurrency: 1})
	cl := &Client{Base: srv.URL}

	expect := func(t *testing.T, resp *http.Response, status int, code string) Error {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, status, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error Content-Type = %q", ct)
		}
		var e Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error body not structured: %v", err)
		}
		if e.Code != code {
			t.Fatalf("code = %q, want %q (%s)", e.Code, code, e.Message)
		}
		return e
	}

	t.Run("malformed spec", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"op":`))
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusBadRequest, CodeBadSpec)
	})
	t.Run("unknown field", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"formt":"bed"}`))
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusBadRequest, CodeBadSpec)
	})
	t.Run("json submit without input_path", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"op":"convert"}`))
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusBadRequest, CodeBadSpec)
	})
	t.Run("upload with input_path", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader("data"))
		req.Header.Set(SpecHeader, fmt.Sprintf(`{"input_path":%q}`, samPath))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusBadRequest, CodeBadSpec)
	})
	t.Run("missing input file", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"input_path":"/nonexistent/x.sam"}`))
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusBadRequest, CodeBadSpec)
	})
	t.Run("unknown job", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/v1/jobs/j999999")
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusNotFound, CodeNotFound)
	})
	t.Run("bad method", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/jobs", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusMethodNotAllowed, CodeBadMethod)
	})
	t.Run("result before done", func(t *testing.T) {
		gate := make(chan struct{})
		d.gate = gate
		st, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		expect(t, resp, http.StatusConflict, CodeNotDone)
		close(gate)
		waitDone(t, cl, st.ID)
	})
}

// TestResultFileSelection pins multi-file result handling: bare /result
// on a two-file job names the choices; only listed names resolve.
func TestResultFileSelection(t *testing.T) {
	samPath, _ := writeSAM(t, 500)
	_, srv := startDaemon(t, Options{})
	cl := &Client{Base: srv.URL}

	in, err := os.Open(samPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	st, err := cl.Submit(JobSpec{Op: OpConvert, Format: "sam", Ranks: 2, InputName: "in.sam"}, in)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, cl, st.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bare /result on multi-file job: %d", resp.StatusCode)
	}
	for _, f := range st.Files {
		if !bytes.Contains(body, []byte(f.Name)) {
			t.Fatalf("selection error %s does not name %s", body, f.Name)
		}
	}
	if got := fetch(t, cl, st.ID, st.Files[1].Name); int64(len(got)) != st.Files[1].Size {
		t.Fatalf("selected file stream %d bytes, want %d", len(got), st.Files[1].Size)
	}
	if _, err := cl.Result(st.ID, "no-such-file"); err == nil {
		t.Fatal("unlisted file name served")
	}
}

// TestPanicIsolation proves a panicking job fails alone: the daemon and
// later jobs are untouched.
func TestPanicIsolation(t *testing.T) {
	samPath, _ := writeSAM(t, 100)
	reg := obs.New()
	d, srv := startDaemon(t, Options{Registry: reg, Concurrency: 1})
	cl := &Client{Base: srv.URL}

	armed := true
	d.testHook = func(*Job) {
		if armed {
			armed = false
			panic("engine blew up")
		}
	}
	st, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err = cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicked job: %s %q", st.State, st.Error)
	}

	st2, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st2.ID)
	if got := reg.Histogram("daemon.job_ns").Count(); got != 2 {
		t.Fatalf("daemon.job_ns observed %d jobs, want 2", got)
	}
}

// TestDrainingRejectsSubmissions pins the 503 contract after Drain.
func TestDrainingRejectsSubmissions(t *testing.T) {
	samPath, _ := writeSAM(t, 100)
	d, srv := startDaemon(t, Options{})
	cl := &Client{Base: srv.URL}

	if _, err := d.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Submit(JobSpec{Op: OpFlagstat, InputPath: samPath}, nil)
	var derr *Error
	if !asError(err, &derr) || derr.Code != CodeDraining {
		t.Fatalf("submit while draining: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"op":"flagstat","input_path":%q}`, samPath)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// TestDistributedFleetByteIdentity is the ranks=2 end-to-end proof: a
// daemon plus one in-process loopback worker form a real mpinet fleet,
// a distributed conversion fans out across it, and the rank outputs are
// byte-identical to the same conversion run in-process. A second job
// over the same world proves the lockstep protocol is reusable, and the
// drain broadcast shuts the worker down cleanly.
func TestDistributedFleetByteIdentity(t *testing.T) {
	samPath, _ := writeSAM(t, 2000)
	coord := freeLoopbackAddr(t)

	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(WorkerConfig{
			Rank: 1, Ranks: 2, Coord: coord,
			Logf: t.Logf,
		})
	}()
	fleet, err := DialFleet(coord, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, srv := startDaemon(t, Options{Fleet: fleet, Concurrency: 1})
	cl := &Client{Base: srv.URL}

	st, err := cl.Submit(JobSpec{Op: OpConvert, Format: "bed", Ranks: 2, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, cl, st.ID)
	if len(st.Files) != 2 {
		t.Fatalf("distributed convert files = %+v", st.Files)
	}

	refDir := t.TempDir()
	ref, err := conv.ConvertSAM(samPath, conv.Options{
		Format: "bed", Cores: 2, OutDir: refDir, OutPrefix: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range st.Files {
		got := fetch(t, cl, st.ID, f.Name)
		want, err := os.ReadFile(ref.Files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("distributed rank file %s differs from in-process conversion", f.Name)
		}
	}

	// Second distributed job over the same world: flagstat on the SAM
	// path, identical to the in-process reduction.
	st2, err := cl.Submit(JobSpec{Op: OpFlagstat, Ranks: 2, InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, cl, st2.ID)
	want, err := flagstat.SAMFileLaunch(samPath, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetch(t, cl, st2.ID, ""); string(got) != want.Format() {
		t.Fatalf("distributed flagstat differs:\n%s", got)
	}

	// A fleet-ineligible spec with matching ranks is refused up front.
	_, err = cl.Submit(JobSpec{Op: OpSort, Ranks: 2, InputPath: samPath}, nil)
	var derr *Error
	if !asError(err, &derr) || derr.Code != CodeBadSpec {
		t.Fatalf("fleet-ineligible submit: %v", err)
	}

	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not shut down after drain")
	}
}

func freeLoopbackAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestWorkerRankValidation pins the worker-side config contract.
func TestWorkerRankValidation(t *testing.T) {
	if err := RunWorker(WorkerConfig{Rank: 0, Ranks: 2}); err == nil {
		t.Fatal("rank 0 accepted as a worker")
	}
}

// TestConnectRoot checks mpinet's own rank-0 path is what DialFleet
// wraps (a fleet of one is refused — the daemon would deadlock talking
// to itself).
func TestFleetOfOneRefused(t *testing.T) {
	w, err := mpinet.Connect(mpinet.Config{Rank: 0, World: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := NewFleet(w); err == nil {
		t.Fatal("single-rank fleet accepted")
	}
}
