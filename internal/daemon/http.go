// The HTTP front door. Three verbs over /v1/jobs:
//
//	POST   /v1/jobs              submit (JSON spec, or streamed input
//	                             upload with the spec in X-Seqconvd-Spec)
//	GET    /v1/jobs              list every job
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/result  stream one output file
//
// Every non-2xx response body is a structured daemon.Error; shed
// submissions are 429 with Retry-After, drain-time submissions 503.
// Install mounts onto a caller-owned mux — seqconvd shares one mux (and
// one listener) between this API and obs.Server's /metrics, /progress,
// /trace and pprof handlers.

package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// SpecHeader carries the JSON job spec on upload submissions, whose
// body is the streamed input file.
const SpecHeader = "X-Seqconvd-Spec"

// Install mounts the job API on mux.
func (d *Daemon) Install(mux *http.ServeMux) {
	mux.HandleFunc("/v1/jobs", d.handleJobs)
	mux.HandleFunc("/v1/jobs/", d.handleJob)
}

// writeError sends one structured error body, with Retry-After on
// rejections that carry a retry hint.
func writeError(w http.ResponseWriter, status int, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.RetryAfter))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		d.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs": d.statuses(), "draining": d.Draining(),
		})
	default:
		writeError(w, http.StatusMethodNotAllowed,
			&Error{Code: CodeBadMethod, Message: "use POST to submit or GET to list"})
	}
}

// handleSubmit admits one job. Two submission shapes:
//
//   - Content-Type application/json: the body is the spec alone and
//     spec.input_path names a daemon-visible file.
//   - anything else: the spec rides in the X-Seqconvd-Spec header (or
//     ?spec= for clients that cannot set headers) and the body streams
//     the input, spooled into the job directory before queueing.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if d.Draining() {
		writeError(w, http.StatusServiceUnavailable,
			&Error{Code: CodeDraining, Message: "daemon is draining; not accepting jobs"})
		return
	}

	var (
		specJSON []byte
		upload   bool
		err      error
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		specJSON, err = io.ReadAll(io.LimitReader(r.Body, maxSpecLen+1))
		if err != nil {
			writeError(w, http.StatusBadRequest,
				&Error{Code: CodeBadSpec, Message: "reading spec body: " + err.Error()})
			return
		}
	} else {
		upload = true
		if h := r.Header.Get(SpecHeader); h != "" {
			specJSON = []byte(h)
		} else {
			specJSON = []byte(r.URL.Query().Get("spec"))
		}
	}

	spec, err := DecodeSpec(specJSON)
	if err != nil {
		writeError(w, http.StatusBadRequest, &Error{Code: CodeBadSpec, Message: err.Error()})
		return
	}
	if upload && spec.InputPath != "" {
		writeError(w, http.StatusBadRequest, &Error{Code: CodeBadSpec,
			Message: "input_path and a request-body upload are mutually exclusive"})
		return
	}
	if !upload && spec.InputPath == "" {
		writeError(w, http.StatusBadRequest, &Error{Code: CodeBadSpec,
			Message: "JSON submissions need input_path; stream the file to upload instead"})
		return
	}

	// Distributed eligibility is a submission-time contract: a rank
	// count that matches the fleet must name an engine path that runs in
	// lockstep, and a rank count above 1 without a fleet still runs —
	// in-process goroutine ranks — so it is never an error here.
	if d.fleet != nil && spec.Ranks > 1 && spec.Ranks == d.fleet.Size() {
		if err := distributable(&spec); err != nil {
			writeError(w, http.StatusBadRequest, &Error{Code: CodeBadSpec, Message: err.Error()})
			return
		}
	}

	// Size the admission decision: the upload's declared length, or the
	// referenced input's on-disk size.
	var incoming int64
	if upload {
		if r.ContentLength > 0 {
			incoming = r.ContentLength
		}
	} else {
		fi, err := os.Stat(spec.InputPath)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				&Error{Code: CodeBadSpec, Message: "input_path: " + err.Error()})
			return
		}
		incoming = fi.Size()
	}
	if dec := d.admit(incoming); !dec.Admit {
		writeError(w, http.StatusTooManyRequests, &Error{
			Code:       CodeOverloaded,
			Message:    dec.Reason + ": " + dec.Detail,
			RetryAfter: int(dec.RetryAfter.Seconds()),
		})
		return
	}

	job, err := d.register(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError,
			&Error{Code: CodeUploadFailed, Message: err.Error()})
		return
	}
	job.inputBytes = incoming
	if upload {
		n, err := spoolUpload(job.inputPath, r.Body)
		if err != nil {
			os.RemoveAll(job.dir)
			writeError(w, http.StatusBadRequest,
				&Error{Code: CodeUploadFailed, Message: "spooling input: " + err.Error()})
			return
		}
		job.inputBytes = n
		// A chunked upload's size was unknown at the admission check;
		// hold it to the byte budget now that it is.
		if r.ContentLength < 0 && d.inflight.Load()+n > d.policy.MaxBytes {
			os.RemoveAll(job.dir)
			writeError(w, http.StatusTooManyRequests, &Error{
				Code:       CodeOverloaded,
				Message:    ReasonBytes + ": chunked upload overran the in-flight byte budget",
				RetryAfter: 1,
			})
			return
		}
	}

	if derr := d.enqueue(job); derr != nil {
		os.RemoveAll(job.dir)
		status := http.StatusTooManyRequests
		if derr.Code == CodeDraining {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, derr)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

// spoolUpload streams the request body to the job's input file.
func spoolUpload(dst string, body io.Reader) (int64, error) {
	f, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(f, body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, ok := d.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			&Error{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)})
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.status())
	case sub == "" && r.Method == http.MethodDelete:
		job.requestCancel()
		writeJSON(w, http.StatusOK, job.status())
	case sub == "result" && r.Method == http.MethodGet:
		d.handleResult(w, r, job)
	case sub == "" || sub == "result":
		writeError(w, http.StatusMethodNotAllowed,
			&Error{Code: CodeBadMethod, Message: "unsupported method " + r.Method})
	default:
		writeError(w, http.StatusNotFound,
			&Error{Code: CodeNotFound, Message: "unknown resource " + r.URL.Path})
	}
}

// handleResult streams one output file of a done job. Multi-file
// results (rank-sharded conversions) select with ?file=; the bare URL
// works when there is exactly one file.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request, job *Job) {
	files, err := job.resultFiles()
	if err != nil {
		writeError(w, http.StatusConflict, &Error{Code: CodeNotDone, Message: err.Error()})
		return
	}
	want := r.URL.Query().Get("file")
	var pick *FileInfo
	switch {
	case want == "" && len(files) == 1:
		pick = &files[0]
	case want == "":
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name
		}
		writeError(w, http.StatusBadRequest, &Error{Code: CodeBadSpec,
			Message: "job has several output files; pass ?file= one of: " + strings.Join(names, ", ")})
		return
	default:
		for i := range files {
			if files[i].Name == want {
				pick = &files[i]
				break
			}
		}
		if pick == nil { // also forecloses traversal: only listed names open
			writeError(w, http.StatusNotFound,
				&Error{Code: CodeNotFound, Message: fmt.Sprintf("job has no output file %q", want)})
			return
		}
	}
	f, err := os.Open(filepath.Join(job.dir, pick.Name))
	if err != nil {
		writeError(w, http.StatusInternalServerError,
			&Error{Code: CodeNotFound, Message: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprintf("%d", pick.Size))
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", pick.Name))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}
