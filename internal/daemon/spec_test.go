package daemon

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestDecodeSpecValid(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want func(t *testing.T, s JobSpec)
	}{
		{"empty object defaults to convert", `{}`, func(t *testing.T, s JobSpec) {
			if s.Op != OpConvert {
				t.Fatalf("op = %q, want convert", s.Op)
			}
			if s.inputName() != "input.sam" {
				t.Fatalf("inputName = %q", s.inputName())
			}
		}},
		{"full convert surface", `{"op":"convert","converter":"sam","format":"bed","ranks":4,"codec_workers":2,"parse_workers":3,"input_name":"x.sam"}`,
			func(t *testing.T, s JobSpec) {
				k, err := s.converterKind()
				if err != nil || k != "sam" {
					t.Fatalf("kind = %q, %v", k, err)
				}
			}},
		{"hist defaults bin size", `{"op":"hist","rname":"chr1","input_path":"/data/in.sam"}`,
			func(t *testing.T, s JobSpec) {
				if s.BinSize != 100 {
					t.Fatalf("bin = %d, want 100", s.BinSize)
				}
			}},
		{"peaks defaults sims", `{"op":"peaks","rname":"chr1","candidates":[0.5,1.0],"input_name":"in.bam"}`,
			func(t *testing.T, s JobSpec) {
				if s.Sims != 8 {
					t.Fatalf("sims = %d, want 8", s.Sims)
				}
			}},
		{"auto converter by extension", `{"input_name":"reads.bamx"}`,
			func(t *testing.T, s JobSpec) {
				k, err := s.converterKind()
				if err != nil || k != "bamx" {
					t.Fatalf("kind = %q, %v", k, err)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := DecodeSpec([]byte(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			tc.want(t, s)
		})
	}
}

func TestDecodeSpecInvalid(t *testing.T) {
	cases := []struct {
		name, in, errSub string
	}{
		{"empty", ``, "empty"},
		{"not json", `{`, "decoding"},
		{"trailing data", `{} {}`, "trailing"},
		{"unknown field", `{"opp":"convert"}`, "unknown field"},
		{"unknown op", `{"op":"transmogrify"}`, "unknown op"},
		{"unknown converter", `{"converter":"xam"}`, "unknown converter"},
		{"unknown format", `{"op":"convert","format":"nope"}`, "unknown format"},
		{"negative ranks", `{"ranks":-1}`, "ranks"},
		{"huge ranks", `{"ranks":9999}`, "ranks"},
		{"huge sims", `{"op":"peaks","rname":"c","candidates":[1],"sims":99999}`, "sims"},
		{"negative bin", `{"op":"hist","rname":"c","bin":-5}`, "bin"},
		{"hist without rname", `{"op":"hist"}`, "rname"},
		{"peaks without candidates", `{"op":"peaks","rname":"c"}`, "candidates"},
		{"both inputs", `{"input_path":"/a/b.sam","input_name":"c.sam"}`, "mutually exclusive"},
		{"path-y input name", `{"input_name":"../evil.sam"}`, "bare filename"},
		{"bad region", `{"region":"chr1:9-1"}`, "region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.in))
			if err == nil {
				t.Fatalf("DecodeSpec(%q) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("error %q does not mention %q", err, tc.errSub)
			}
		})
	}
}

// JSON cannot spell NaN, but programmatic callers can; Validate must
// still refuse it — NaN breaks the FDR sweep's comparisons.
func TestValidateNaNCandidate(t *testing.T) {
	s := JobSpec{Op: OpPeaks, RName: "chr1", Candidates: []float64{math.NaN()}}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN candidate accepted")
	}
}

func TestDecodeSpecLengthCap(t *testing.T) {
	big := `{"input_name":"` + strings.Repeat("a", maxSpecLen) + `.sam"}`
	if _, err := DecodeSpec([]byte(big)); err == nil {
		t.Fatal("oversized spec accepted")
	}
}

// FuzzJobSpec pins the decode contract: no panic on any input, and any
// accepted spec re-encodes and re-decodes to an equally valid spec
// (validation is a fixed point, so a client may round-trip specs).
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"op":"convert","format":"bed","ranks":2}`,
		`{"op":"hist","rname":"chr1","bin":50,"input_path":"/x.sam"}`,
		`{"op":"peaks","rname":"chr1","candidates":[0.5,1,2],"sims":4,"seed":7,"input_name":"a.bam"}`,
		`{"op":"flagstat","shards":16,"workers":2,"input_name":"a.bamx"}`,
		`{"converter":"pamx","input_name":"a.pamx"}`,
		`{"region":"chr1:100-200","input_name":"a.bamx"}`,
		`{"ranks":-1}`,
		`{"unknown":"field"}`,
		`[1,2,3]`,
		`"convert"`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := DecodeSpec(out)
		if err != nil {
			t.Fatalf("re-encoded spec %s rejected: %v", out, err)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("validation not a fixed point: %s vs %s", out, out2)
		}
	})
}
