// Graceful-drain subprocess test: a child process wires a daemon the
// way cmd/seqconvd does — obsflag session, OnShutdown drain hook, HTTP
// listener — takes a job, receives SIGTERM mid-flight, and must finish
// the job, flush its metrics snapshot, and exit 128+SIGTERM. The parent
// then proves the drained job's output is byte-identical to a direct
// engine run. Re-exec follows the mpinet subprocess-test pattern: the
// test binary doubles as the daemon when SEQCONVD_TEST_MODE is set.

package daemon

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"parseq/internal/conv"
	"parseq/internal/obs"
	"parseq/internal/obsflag"
)

func TestMain(m *testing.M) {
	if os.Getenv("SEQCONVD_TEST_MODE") == "drain-daemon" {
		runDrainChild()
		return
	}
	os.Exit(m.Run())
}

// runDrainChild is the seqconvd stand-in: same session wiring, printed
// coordinates instead of flags.
func runDrainChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "drain-child:", err)
		os.Exit(1)
	}
	flags := &obsflag.Flags{Metrics: os.Getenv("SEQCONVD_TEST_METRICS")}
	session, err := flags.Start()
	if err != nil {
		fail(err)
	}
	reg := session.Registry()
	if reg == nil {
		reg = obs.New()
		obs.SetDefault(reg)
	}
	d, err := New(Options{
		Registry: reg,
		SpoolDir: os.Getenv("SEQCONVD_TEST_SPOOL"),
	})
	if err != nil {
		fail(err)
	}
	mux := http.NewServeMux()
	d.Install(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: mux}
	session.OnShutdown(func(sig os.Signal) {
		finished, err := d.Drain(30 * time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drain-child:", err)
		}
		fmt.Fprintf(os.Stderr, "drain-child: drained, %d finished\n", finished)
		srv.Close()
		d.Close()
	})
	// The parent scrapes this line for the address.
	fmt.Printf("ready %s\n", ln.Addr())
	os.Stdout.Sync()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	// The OnShutdown signal handler exits the process; serving only ends
	// through it or through a fatal error above.
	select {}
}

func TestGracefulDrainSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	samPath, _ := writeSAM(t, 5000)
	spool := t.TempDir()
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")

	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"SEQCONVD_TEST_MODE=drain-daemon",
		"SEQCONVD_TEST_SPOOL="+spool,
		"SEQCONVD_TEST_METRICS="+metricsPath,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "ready "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("child never reported ready: %v", sc.Err())
	}

	// Submit a conversion and signal immediately: the job is queued or
	// barely running when SIGTERM lands, and drain must still finish it.
	cl := &Client{Base: "http://" + addr}
	st, err := cl.Submit(JobSpec{Op: OpConvert, Format: "bed", InputPath: samPath}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child exit: %v", err)
	}
	if code := ee.ExitCode(); code != 128+int(syscall.SIGTERM) {
		t.Fatalf("exit code = %d, want %d", code, 128+int(syscall.SIGTERM))
	}

	// The drained job's output survived in the spool, byte-identical to
	// the direct conversion.
	outPath := filepath.Join(spool, st.ID, "out_p000.bed")
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("drained job output: %v", err)
	}
	refDir := t.TempDir()
	ref, err := conv.ConvertSAM(samPath, conv.Options{
		Format: "bed", Cores: 1, OutDir: refDir, OutPrefix: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("drained output differs from direct conversion (%d vs %d bytes)", len(got), len(want))
	}

	// The session flushed its telemetry on the way out, daemon metrics
	// included.
	snapshot, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics snapshot not flushed: %v", err)
	}
	if !bytes.Contains(snapshot, []byte("daemon.jobs")) {
		t.Fatalf("metrics snapshot missing daemon.jobs:\n%s", snapshot)
	}
}
