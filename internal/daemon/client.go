// Client is the Go-side consumer of the job API — what `ngsbench
// -daemon` and the end-to-end tests speak. It submits (JSON or streamed
// upload), polls, and streams results; non-2xx responses surface as
// *Error so callers branch on the stable code and honor RetryAfter.

package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one seqconvd instance.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:8371".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError turns a non-2xx response into *Error, tolerating bodies
// that are not the structured shape (proxies, panics).
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Code != "" {
		return &e
	}
	return fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// Submit sends one job. input == nil submits the spec as JSON
// (spec.InputPath names the file); otherwise the spec rides the
// X-Seqconvd-Spec header and input streams as the body.
func (c *Client) Submit(spec JobSpec, input io.Reader) (Status, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return Status{}, err
	}
	var req *http.Request
	if input == nil {
		req, err = http.NewRequest(http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(specJSON))
		if err != nil {
			return Status{}, err
		}
		req.Header.Set("Content-Type", "application/json")
	} else {
		req, err = http.NewRequest(http.MethodPost, c.url("/v1/jobs"), input)
		if err != nil {
			return Status{}, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(SpecHeader, string(specJSON))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return Status{}, decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("daemon: decoding submit response: %w", err)
	}
	return st, nil
}

// Status fetches one job's state.
func (c *Client) Status(id string) (Status, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id))
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("daemon: decoding status: %w", err)
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Result streams one output file of a done job; file "" selects the
// single output of a one-file job. The caller closes the reader.
func (c *Client) Result(id, file string) (io.ReadCloser, error) {
	u := c.url("/v1/jobs/" + id + "/result")
	if file != "" {
		u += "?file=" + file
	}
	resp, err := c.http().Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// Cancel requests cancellation and returns the post-cancel status.
func (c *Client) Cancel(id string) (Status, error) {
	req, err := http.NewRequest(http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, decodeError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("daemon: decoding cancel response: %w", err)
	}
	return st, nil
}
