// Engine dispatch: one job spec in, output files in the job directory
// out. This is the single routing table both sides of a distributed
// job execute — the daemon as rank 0 and every fleet worker as its own
// rank — so the call sequence against the launcher is identical by
// construction, which is what the mpinet transport's lockstep
// collectives require.

package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parseq/internal/conv"
	"parseq/internal/flagstat"
	"parseq/internal/formats"
	"parseq/internal/formats/pamx"
	"parseq/internal/hist"
	"parseq/internal/mpi"
	"parseq/internal/peaks"
	"parseq/internal/shard"
	"parseq/internal/simdata"
	"parseq/internal/sorter"
)

// jobResult is what an executed job reports back into its record.
type jobResult struct {
	files    []FileInfo
	records  int64
	bytesOut int64
}

// distributable reports whether a spec's engine path runs the same
// launcher call sequence on every fleet process. Only the SAM-input
// engines qualify: the BAM/psam converters and the shard analyses
// aggregate per-process file lists that distributed execution leaves
// partially empty.
func distributable(spec *JobSpec) error {
	name := spec.inputName()
	switch spec.Op {
	case OpConvert:
		kind, err := spec.converterKind()
		if err != nil {
			return err
		}
		if kind != "sam" {
			return fmt.Errorf("daemon: converter %q does not support fleet ranks; use converter sam or ranks 1", kind)
		}
	case OpFlagstat, OpHist:
		if !strings.HasSuffix(name, ".sam") {
			return fmt.Errorf("daemon: op %s over %q does not support fleet ranks; use a .sam input or ranks 1", spec.Op, name)
		}
	default:
		return fmt.Errorf("daemon: op %s does not support fleet ranks", spec.Op)
	}
	return nil
}

// runEngines executes one job: spec routed to the engine, input read
// from inputPath, outputs written under dir. launch is nil for
// in-process ranks or a distributed world's launcher; ranks is the
// world size and rank the local rank either way. Distributed callers
// must run the same sequence on every rank; analysis outputs are
// written (and stat'd) by rank 0 only, and distributed convert defers
// its output stat to the caller's post-barrier convertOutputs — worker
// ranks may still be flushing when rank 0's engine returns.
func runEngines(spec *JobSpec, inputPath, dir string, launch mpi.Launcher, ranks, rank int) (jobResult, error) {
	switch spec.Op {
	case OpConvert:
		return runConvert(spec, inputPath, dir, launch, ranks)
	case OpSort:
		return runSort(spec, inputPath, dir, ranks)
	case OpFlagstat:
		return runFlagstat(spec, inputPath, dir, launch, ranks, rank)
	case OpHist:
		return runHist(spec, inputPath, dir, launch, ranks, rank)
	case OpPeaks:
		return runPeaks(spec, inputPath, dir, ranks)
	}
	return jobResult{}, fmt.Errorf("daemon: unknown op %q", spec.Op)
}

func runConvert(spec *JobSpec, inputPath, dir string, launch mpi.Launcher, ranks int) (jobResult, error) {
	kind, err := spec.converterKind()
	if err != nil {
		return jobResult{}, err
	}
	format := spec.Format
	if format == "" {
		format = "sam"
	}
	opts := conv.Options{
		Format: format, Cores: ranks, OutDir: dir, OutPrefix: "out",
		CodecWorkers: spec.CodecWorkers, ParseWorkers: spec.ParseWorkers,
		Launch: launch,
	}
	if spec.Region != "" {
		r, err := conv.ParseRegion(spec.Region)
		if err != nil {
			return jobResult{}, err
		}
		opts.Region = &r
	}

	// The columnar converter stands apart from the per-rank Result
	// shape, exactly as in seqconvert: one file either direction.
	if kind == "pamx" {
		return runPAMX(spec, inputPath, dir)
	}

	var res *conv.Result
	switch kind {
	case "sam":
		if format == "bam" {
			res, err = conv.ConvertSAMToBAM(inputPath, opts)
			break
		}
		res, err = conv.ConvertSAM(inputPath, opts)
	case "psam":
		res, err = conv.ConvertSAMPreprocessed(inputPath, ranks, opts)
	case "bam":
		if ranks > 1 {
			res, err = conv.ConvertBAM(inputPath, opts)
			break
		}
		res, err = conv.ConvertBAMSequential(inputPath, opts)
	case "bamx":
		res, err = conv.ConvertBAMX(inputPath, sidecarIndex(inputPath, ".bamx"), opts)
	case "bamz":
		res, err = conv.ConvertBAMZ(inputPath, sidecarIndex(inputPath, ".bamz"), opts)
	default:
		err = fmt.Errorf("daemon: unknown converter %q", kind)
	}
	if err != nil {
		return jobResult{}, err
	}

	if launch != nil {
		// Peer ranks may still be flushing their files: the records
		// tally is local-rank-only and the caller fills in the file
		// list after the settle barrier (convertOutputs).
		return jobResult{records: res.Stats.Records}, nil
	}
	files, total, err := fileInfos(res.Files)
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: res.Stats.Records, bytesOut: total}, nil
}

// convertOutputs stats the reconstructed per-rank convert outputs; the
// fleet calls it after the settle barrier, once every rank's files are
// durable.
func convertOutputs(spec *JobSpec, dir string, ranks int) ([]FileInfo, int64, error) {
	format := spec.Format
	if format == "" {
		format = "sam"
	}
	paths, err := expectedConvertFiles(dir, format, ranks)
	if err != nil {
		return nil, 0, err
	}
	return fileInfos(paths)
}

// sidecarIndex returns the BAIX path next to a BAMX/BAMZ input when it
// exists; "" lets the converter rebuild the index by scanning (the
// uploaded-input case, where no sidecar was shipped).
func sidecarIndex(inputPath, ext string) string {
	ix := strings.TrimSuffix(inputPath, ext) + ".baix"
	if _, err := os.Stat(ix); err != nil {
		return ""
	}
	return ix
}

// expectedConvertFiles reconstructs the converter runtime's per-rank
// output names: <dir>/out_p<rank><ext>.
func expectedConvertFiles(dir, format string, ranks int) ([]string, error) {
	ext := ".bam"
	if format != "bam" {
		enc, err := formats.New(format)
		if err != nil {
			return nil, err
		}
		ext = enc.Extension()
	}
	paths := make([]string, ranks)
	for r := range paths {
		paths[r] = filepath.Join(dir, fmt.Sprintf("out_p%03d%s", r, ext))
	}
	return paths, nil
}

func runPAMX(spec *JobSpec, inputPath, dir string) (jobResult, error) {
	popts := pamx.Options{CodecWorkers: spec.CodecWorkers}
	var (
		dst   string
		count int64
		err   error
	)
	switch {
	case strings.HasSuffix(inputPath, ".pamx"):
		dst = filepath.Join(dir, "out.bam")
		count, err = pamx.ToBAM(inputPath, dst, popts)
	case strings.HasSuffix(inputPath, ".bamx"):
		dst = filepath.Join(dir, "out.pamx")
		count, err = pamx.FromBAMX(inputPath, dst, popts)
	case strings.HasSuffix(inputPath, ".bam"):
		dst = filepath.Join(dir, "out.pamx")
		count, err = pamx.FromBAM(inputPath, dst, popts)
	default:
		err = fmt.Errorf("daemon: converter pamx needs a .bam, .bamx or .pamx input")
	}
	if err != nil {
		return jobResult{}, err
	}
	files, total, err := fileInfos([]string{dst})
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: count, bytesOut: total}, nil
}

func runSort(spec *JobSpec, inputPath, dir string, ranks int) (jobResult, error) {
	opts := sorter.Options{Cores: ranks, CodecWorkers: spec.CodecWorkers, TmpDir: dir}
	dst := filepath.Join(dir, "out.bam")
	var (
		n   int64
		err error
	)
	switch {
	case strings.HasSuffix(inputPath, ".sam"):
		n, err = sorter.SortSAMToBAM(inputPath, dst, opts)
	case strings.HasSuffix(inputPath, ".bam"):
		n, err = sorter.SortBAM(inputPath, dst, opts)
	default:
		err = fmt.Errorf("daemon: op sort needs a .sam or .bam input")
	}
	if err != nil {
		return jobResult{}, err
	}
	files, total, err := fileInfos([]string{dst})
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: n, bytesOut: total}, nil
}

// shardConfig maps the spec's analysis tuning onto the region-parallel
// layer.
func shardConfig(spec *JobSpec, launch mpi.Launcher, ranks int) shard.Config {
	return shard.Config{
		Ranks: ranks, Workers: spec.Workers, TargetShards: spec.Shards,
		Launch: launch,
	}
}

func runFlagstat(spec *JobSpec, inputPath, dir string, launch mpi.Launcher, ranks, rank int) (jobResult, error) {
	var (
		st  flagstat.Stats
		err error
	)
	if strings.HasSuffix(inputPath, ".sam") {
		st, err = flagstat.SAMFileLaunch(inputPath, ranks, launch)
	} else {
		p := shard.OpenPathProvider(inputPath)
		defer p.Close()
		st, err = flagstat.Sharded(p, shardConfig(spec, launch, ranks))
	}
	if err != nil {
		return jobResult{}, err
	}
	if rank != 0 {
		// Only the root rank holds the reduced stats and writes the
		// report; a worker writing too would race it on the shared dir.
		return jobResult{}, nil
	}
	dst := filepath.Join(dir, "flagstat.txt")
	if err := os.WriteFile(dst, []byte(st.Format()), 0o644); err != nil {
		return jobResult{}, err
	}
	files, total, err := fileInfos([]string{dst})
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: st.Total, bytesOut: total}, nil
}

func runHist(spec *JobSpec, inputPath, dir string, launch mpi.Launcher, ranks, rank int) (jobResult, error) {
	h, err := buildHist(spec, inputPath, launch, ranks)
	if err != nil {
		return jobResult{}, err
	}
	if rank != 0 {
		return jobResult{}, nil // merged histogram lives at the root rank
	}
	dst := filepath.Join(dir, "hist.tsv")
	f, err := os.Create(dst)
	if err != nil {
		return jobResult{}, err
	}
	if err := hist.WriteTSV(f, h.Bins); err != nil {
		f.Close()
		return jobResult{}, err
	}
	if err := f.Close(); err != nil {
		return jobResult{}, err
	}
	files, total, err := fileInfos([]string{dst})
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: int64(len(h.Bins)), bytesOut: total}, nil
}

func buildHist(spec *JobSpec, inputPath string, launch mpi.Launcher, ranks int) (*hist.Histogram, error) {
	if strings.HasSuffix(inputPath, ".sam") {
		return hist.FromSAMParallelLaunch(inputPath, spec.RName, spec.BinSize, ranks, launch)
	}
	p := shard.OpenPathProvider(inputPath)
	defer p.Close()
	return hist.FromProvider(p, spec.RName, spec.BinSize, shardConfig(spec, launch, ranks))
}

func runPeaks(spec *JobSpec, inputPath, dir string, ranks int) (jobResult, error) {
	h, err := buildHist(spec, inputPath, nil, ranks)
	if err != nil {
		return jobResult{}, err
	}
	sims := simdata.Simulations(spec.Sims, len(h.Bins), spec.Seed)
	called, pt, rate, err := peaks.CallWithFDR(h.Bins, sims, spec.Candidates, peaks.Options{})
	if err != nil {
		return jobResult{}, err
	}
	dst := filepath.Join(dir, "peaks.tsv")
	f, err := os.Create(dst)
	if err != nil {
		return jobResult{}, err
	}
	fmt.Fprintf(f, "# rname=%s bin=%d p_t=%g fdr=%.6g\n", spec.RName, spec.BinSize, pt, rate)
	fmt.Fprintln(f, "start\tend\tmax_value\tmin_survive")
	for _, p := range called {
		fmt.Fprintf(f, "%d\t%d\t%g\t%d\n", p.Start, p.End, p.MaxValue, p.MinSurvive)
	}
	if err := f.Close(); err != nil {
		return jobResult{}, err
	}
	files, total, err := fileInfos([]string{dst})
	if err != nil {
		return jobResult{}, err
	}
	return jobResult{files: files, records: int64(len(called)), bytesOut: total}, nil
}

// fileInfos stats each output path, returning base-name FileInfos in
// the given order plus the total byte count.
func fileInfos(paths []string) ([]FileInfo, int64, error) {
	files := make([]FileInfo, 0, len(paths))
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, 0, fmt.Errorf("daemon: output %s: %w", p, err)
		}
		files = append(files, FileInfo{Name: filepath.Base(p), Size: fi.Size()})
		total += fi.Size()
	}
	return files, total, nil
}
