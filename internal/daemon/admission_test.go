package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parseq/internal/obs"
)

// TestDecideTable pins the accept/reject frontier at synthetic load
// samples: the policy is pure, so these are exact contracts.
func TestDecideTable(t *testing.T) {
	p := Policy{
		MaxQueue: 4,
		MaxBytes: 1 << 20,         // 1 MiB budget
		MaxWait:  2 * time.Second, //
		FloorBps: 1 << 20,         // 1 MiB/s cold floor
	}
	cases := []struct {
		name     string
		load     Load
		incoming int64
		admit    bool
		reason   string
	}{
		{"idle admits", Load{}, 1024, true, ""},
		{"queue below cap admits", Load{QueueDepth: 3}, 1024, true, ""},
		{"queue at cap sheds", Load{QueueDepth: 4}, 1024, false, ReasonQueueFull},
		{"queue above cap sheds", Load{QueueDepth: 9}, 0, false, ReasonQueueFull},
		{"bytes within budget admits", Load{InFlightBytes: 1 << 19}, 1 << 19, true, ""},
		{"bytes over budget sheds", Load{InFlightBytes: 1 << 20}, 1, false, ReasonBytes},
		{"incoming alone over budget sheds", Load{}, 1<<20 + 1, false, ReasonBytes},
		// 1 MiB floor × 1 worker = 1 MiB/s: a 1 MiB backlog waits ~1s
		// (admit), and MaxBytes stops anything big enough to exceed the
		// 2s ceiling here — so scale throughput down to see ReasonWait.
		{"slow pool long wait sheds",
			Load{InFlightBytes: 1 << 19, ThroughputBps: 1 << 10, Workers: 1}, 1 << 19, false, ReasonWait},
		{"fast pool same backlog admits",
			Load{InFlightBytes: 1 << 19, ThroughputBps: 1 << 30, Workers: 1}, 1 << 19, true, ""},
		{"many workers divide the wait",
			Load{InFlightBytes: 1 << 19, ThroughputBps: 1 << 10, Workers: 1 << 12}, 1 << 19, true, ""},
		{"cold EWMA falls back to floor", Load{InFlightBytes: 1 << 19}, 1 << 19, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := p.Decide(tc.load, tc.incoming)
			if dec.Admit != tc.admit {
				t.Fatalf("Decide(%+v, %d).Admit = %v, want %v (%s)",
					tc.load, tc.incoming, dec.Admit, tc.admit, dec.Detail)
			}
			if dec.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", dec.Reason, tc.reason)
			}
			if !dec.Admit {
				if dec.RetryAfter < time.Second || dec.RetryAfter > time.Minute {
					t.Fatalf("RetryAfter %v outside [1s, 60s]", dec.RetryAfter)
				}
				if dec.Detail == "" {
					t.Fatal("rejection carries no detail")
				}
			}
		})
	}
}

func TestDecideZeroPolicyUsesDefaults(t *testing.T) {
	dec := Policy{}.Decide(Load{QueueDepth: DefaultMaxQueue}, 0)
	if dec.Admit || dec.Reason != ReasonQueueFull {
		t.Fatalf("default queue cap not applied: %+v", dec)
	}
	if dec = (Policy{}).Decide(Load{}, 1024); !dec.Admit {
		t.Fatalf("default policy sheds a tiny idle submission: %+v", dec)
	}
}

// TestBurstShedding fires a concurrent burst at a daemon whose runners
// are gated and asserts the bounded-queue contract: admitted jobs never
// exceed queue capacity plus the runner slots, every reject is a 429
// whose body and Retry-After header are well-formed, and after the gate
// opens every admitted job completes. Run under -race this also hammers
// the submit/enqueue paths for data races.
func TestBurstShedding(t *testing.T) {
	reg := obs.New()
	const (
		maxQueue = 4
		conc     = 2
		burst    = 40
	)
	d, err := New(Options{
		Registry:    reg,
		Policy:      Policy{MaxQueue: maxQueue},
		Concurrency: conc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	gate := make(chan struct{})
	d.gate = gate // runners block here; queue can only fill

	srv := httptest.NewServer(muxFor(d))
	defer srv.Close()

	input := filepath.Join(t.TempDir(), "in.sam")
	if err := os.WriteFile(input, []byte("@HD\tVN:1.6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := fmt.Sprintf(`{"op":"flagstat","input_path":%q}`, input)

	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var st Status
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				var e Error
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Errorf("429 body not structured: %v", err)
					return
				}
				if e.Code != CodeOverloaded || e.RetryAfter < 1 {
					t.Errorf("429 body = %+v", e)
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	// The queue never exceeds its bound: at most maxQueue jobs waiting
	// plus conc parked on the gate inside the runners.
	if len(accepted) > maxQueue+conc {
		t.Fatalf("%d jobs admitted; bound is %d queued + %d running", len(accepted), maxQueue, conc)
	}
	if len(accepted) == 0 {
		t.Fatal("burst admitted nothing")
	}
	if rejected != burst-len(accepted) {
		t.Fatalf("accepted %d + rejected %d ≠ burst %d", len(accepted), rejected, burst)
	}
	if got := reg.Counter("daemon.rejected").Value(); got != int64(rejected) {
		t.Fatalf("daemon.rejected = %d, want %d", got, rejected)
	}
	if got := reg.Counter("daemon.jobs").Value(); got != int64(len(accepted)) {
		t.Fatalf("daemon.jobs = %d, want %d", got, len(accepted))
	}

	close(gate)
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range accepted {
		for {
			job, ok := d.lookup(id)
			if !ok {
				t.Fatalf("admitted job %s vanished", id)
			}
			if job.currentState().Terminal() {
				if st := job.currentState(); st != StateDone {
					t.Fatalf("job %s ended %s: %s", id, st, job.status().Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s after gate opened", id, job.currentState())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// muxFor mounts a daemon the way seqconvd does.
func muxFor(d *Daemon) *http.ServeMux {
	mux := http.NewServeMux()
	d.Install(mux)
	return mux
}
