// The daemon core: a bounded FIFO job queue drained by a fixed pool of
// runner goroutines, admission accounting, and graceful drain. Jobs
// share the process-wide bgzf.SharedPool for codec work, so concurrent
// tenants contend for one throughput-sized deflate pool instead of
// multiplying goroutines — and the pool's EWMA gauge is exactly the
// service-rate signal admission control reads back.

package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"parseq/internal/bgzf"
	"parseq/internal/obs"
)

// Options configures a Daemon.
type Options struct {
	// Registry receives the daemon.* metrics; nil falls back to
	// obs.Default() (metrics are skipped when that is nil too).
	Registry *obs.Registry
	// Policy is the admission-control policy; zero values pick the
	// package defaults.
	Policy Policy
	// SpoolDir receives one subdirectory per job (uploaded input plus
	// output files). "" creates a temporary directory removed on Close.
	SpoolDir string
	// Concurrency is the number of jobs executed in parallel. ≤ 0
	// picks 2: enough to overlap one job's IO with another's codec
	// work without thrashing the shared deflate pool.
	Concurrency int
	// Fleet is the pre-registered worker world for distributed jobs;
	// nil limits jobs to in-process ranks.
	Fleet *Fleet
}

// Daemon is the resident job service. Create with New, mount with
// Install, stop with Drain (graceful) or Close.
type Daemon struct {
	reg      *obs.Registry
	policy   Policy
	spool    string
	ownSpool bool
	fleet    *Fleet
	conc     int

	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	intakeOK bool // false once draining: enqueue would race the close

	inflight atomic.Int64 // spooled input bytes of queued+running jobs
	draining atomic.Bool

	runners  sync.WaitGroup
	gate     chan struct{} // test hook: runners block here before executing
	testHook func(*Job)    // test hook: runs inside execute's recover scope

	closeOnce sync.Once
}

// New creates the daemon and starts its runner pool.
func New(opts Options) (*Daemon, error) {
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	spool, own := opts.SpoolDir, false
	if spool == "" {
		dir, err := os.MkdirTemp("", "seqconvd-spool-*")
		if err != nil {
			return nil, fmt.Errorf("daemon: creating spool: %w", err)
		}
		spool, own = dir, true
	} else if err := os.MkdirAll(spool, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: spool %s: %w", spool, err)
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 2
	}
	policy := opts.Policy.withDefaults()
	d := &Daemon{
		reg: reg, policy: policy, spool: spool, ownSpool: own,
		fleet: opts.Fleet, conc: conc,
		queue: make(chan *Job, policy.MaxQueue),
		jobs:  make(map[string]*Job), intakeOK: true,
	}
	d.runners.Add(conc)
	for i := 0; i < conc; i++ {
		go d.runner()
	}
	return d, nil
}

// Spool returns the daemon's spool directory.
func (d *Daemon) Spool() string { return d.spool }

// counter/gauge/histogram tolerate a nil registry so the daemon runs
// (tests, embedded uses) without telemetry.
func (d *Daemon) addCounter(name string, v int64) {
	if d.reg != nil {
		d.reg.Counter(name).Add(v)
	}
}

func (d *Daemon) addGauge(name string, v int64) {
	if d.reg != nil {
		d.reg.Gauge(name).Add(v)
	}
}

func (d *Daemon) setGauge(name string, v int64) {
	if d.reg != nil {
		d.reg.Gauge(name).Set(v)
	}
}

func (d *Daemon) observe(name string, v int64) {
	if d.reg != nil {
		d.reg.Histogram(name).Observe(v)
	}
}

// load samples the admission inputs: queue depth, in-flight bytes, and
// the shared deflate pool's measured per-worker throughput.
func (d *Daemon) load() Load {
	var tput int64
	if d.reg != nil {
		tput = d.reg.Gauge("bgzf.shared_pool.throughput").Value()
	}
	return Load{
		QueueDepth:    len(d.queue),
		InFlightBytes: d.inflight.Load(),
		ThroughputBps: tput,
		Workers:       bgzf.SharedPool().Workers(),
	}
}

// admit runs the admission decision for an incoming job of `incoming`
// input bytes, counting rejections.
func (d *Daemon) admit(incoming int64) Decision {
	dec := d.policy.Decide(d.load(), incoming)
	if !dec.Admit {
		d.addCounter("daemon.rejected", 1)
	}
	return dec
}

// register creates the job record and its spool directory.
func (d *Daemon) register(spec JobSpec) (*Job, error) {
	d.mu.Lock()
	d.seq++
	id := fmt.Sprintf("j%06d", d.seq)
	d.mu.Unlock()
	dir := filepath.Join(d.spool, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: job dir: %w", err)
	}
	inputPath := spec.InputPath
	if inputPath == "" {
		inputPath = filepath.Join(dir, spec.inputName())
	}
	return newJob(id, spec, dir, inputPath, 0), nil
}

// enqueue admits a fully spooled job into the bounded queue. The mutex
// makes the intake check and the channel send atomic with respect to
// Drain's close, and the non-blocking send is the backstop bound: the
// queue channel's capacity is the policy's MaxQueue.
func (d *Daemon) enqueue(job *Job) *Error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.intakeOK {
		return &Error{Code: CodeDraining, Message: "daemon is draining"}
	}
	select {
	case d.queue <- job:
	default:
		d.addCounter("daemon.rejected", 1)
		return &Error{Code: CodeOverloaded, Message: "queue full", RetryAfter: 1}
	}
	d.jobs[job.ID] = job
	d.order = append(d.order, job.ID)
	d.inflight.Add(job.inputBytes)
	d.addCounter("daemon.jobs", 1)
	d.setGauge("daemon.queue_depth", int64(len(d.queue)))
	return nil
}

// lookup finds a job by ID.
func (d *Daemon) lookup(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	return j, ok
}

// statuses snapshots every job in submission order.
func (d *Daemon) statuses() []Status {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, d.jobs[id])
	}
	d.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// runner drains the queue. Each job runs under panic isolation; a
// panicking engine fails its job, never the daemon.
func (d *Daemon) runner() {
	defer d.runners.Done()
	for job := range d.queue {
		d.setGauge("daemon.queue_depth", int64(len(d.queue)))
		if !job.toRunning() { // canceled while queued
			d.settle(job)
			continue
		}
		if d.gate != nil {
			<-d.gate
		}
		d.addGauge("daemon.running", 1)
		start := time.Now()
		res, err := d.execute(job)
		job.finish(res, err)
		d.addGauge("daemon.running", -1)
		d.observe("daemon.job_ns", time.Since(start).Nanoseconds())
		d.settle(job)
	}
}

// settle releases a terminal job's admission accounting.
func (d *Daemon) settle(job *Job) {
	d.inflight.Add(-job.inputBytes)
}

// execute dispatches one job to the engines, isolating panics. A job
// whose rank count matches the registered fleet's world size fans out
// across the worker processes; everything else runs in-process.
func (d *Daemon) execute(job *Job) (res jobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: job %s panicked: %v", job.ID, r)
		}
	}()
	if err := job.ctx.Err(); err != nil {
		return res, err
	}
	if d.testHook != nil {
		d.testHook(job)
	}
	ranks := job.Spec.Ranks
	if ranks < 1 {
		ranks = 1
	}
	if d.fleet != nil && ranks > 1 && ranks == d.fleet.Size() {
		return d.fleet.Execute(&job.Spec, job.inputPath, job.dir, ranks)
	}
	return runEngines(&job.Spec, job.inputPath, job.dir, nil, ranks, 0)
}

// Draining reports whether the daemon has stopped admitting.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Drain gracefully stops the daemon: admission closes immediately
// (submissions get 503 + draining), queued and running jobs are given
// `timeout` to finish, stragglers are canceled, and the worker fleet —
// if any — is shut down. It returns the number of jobs that completed
// during the drain and an error if the timeout expired first.
func (d *Daemon) Drain(timeout time.Duration) (int, error) {
	d.draining.Store(true)
	d.mu.Lock()
	if d.intakeOK {
		d.intakeOK = false
		close(d.queue)
	}
	d.mu.Unlock()

	done := make(chan struct{})
	go func() {
		d.runners.Wait()
		close(done)
	}()
	var timedOut bool
	if timeout <= 0 {
		<-done
	} else {
		select {
		case <-done:
		case <-time.After(timeout):
			timedOut = true
			// Cancel whatever is left: queued jobs flip to canceled and
			// the runners skip them; running engines have no preemption
			// points, so their results are discarded on return.
			d.mu.Lock()
			for _, j := range d.jobs {
				if !j.currentState().Terminal() {
					j.requestCancel()
				}
			}
			d.mu.Unlock()
		}
	}
	if d.fleet != nil {
		d.fleet.Shutdown()
	}
	finished := 0
	for _, st := range d.statuses() {
		if st.State == StateDone || st.State == StateFailed {
			finished++
		}
	}
	if timedOut {
		return finished, fmt.Errorf("daemon: drain timed out after %v", timeout)
	}
	return finished, nil
}

// Close tears the daemon down without waiting for in-flight work
// beyond what has already started: intake closes, every non-terminal
// job is canceled, the runners drain, and an owned spool directory is
// removed. Drain first for a graceful stop.
func (d *Daemon) Close() error {
	var err error
	d.closeOnce.Do(func() {
		d.draining.Store(true)
		d.mu.Lock()
		if d.intakeOK {
			d.intakeOK = false
			close(d.queue)
		}
		for _, j := range d.jobs {
			j.requestCancel()
		}
		d.mu.Unlock()
		d.runners.Wait()
		if d.fleet != nil {
			d.fleet.Shutdown()
		}
		if d.ownSpool {
			err = os.RemoveAll(d.spool)
		}
	})
	return err
}
