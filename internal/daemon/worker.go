// The worker fleet: distributed jobs fan out over a pre-registered
// mpinet world instead of in-process goroutine ranks. The daemon is
// rank 0; each `seqconvd -worker` process is one other rank. Because
// the mpinet transport demands every process launch the same collective
// sequence, the protocol is rigidly lockstep per job:
//
//	control round:  Bcast(0, JSON fleetJob descriptor)
//	engine round:   runEngines — the shared routing table, so the
//	                collective sequence matches by construction
//	settle round:   Barrier — worker rank output files are durable
//	                before the daemon marks the job done
//
// Drain broadcasts a shutdown descriptor in place of a job. Workers
// share the daemon's filesystem (inputs and the spool are plain paths
// in the descriptor); the fleet is a same-host or shared-volume
// deployment, one world for the daemon's lifetime. An engine error on
// any rank aborts the world — the fleet is then down and later
// distributed jobs are refused rather than wedged.

package daemon

import (
	"encoding/json"
	"fmt"
	"sync"

	"parseq/internal/mpi"
	"parseq/internal/mpinet"
)

// fleetJob is the control-round descriptor rank 0 broadcasts: the job
// spec plus the daemon-side input and output paths.
type fleetJob struct {
	Op    string  `json:"op,omitempty"` // opShutdown, or "" = run Spec
	Spec  JobSpec `json:"spec"`
	Input string  `json:"input"`
	Dir   string  `json:"dir"`
}

// Fleet is the daemon-side handle on a worker world. Execute serializes
// jobs — the world is one lockstep channel, not a pool.
type Fleet struct {
	world *mpinet.World

	mu   sync.Mutex
	down bool
}

// NewFleet wraps an already-formed world whose local rank is 0.
func NewFleet(w *mpinet.World) (*Fleet, error) {
	if w.Rank() != 0 {
		return nil, fmt.Errorf("daemon: fleet root must be rank 0, got %d", w.Rank())
	}
	if w.Size() < 2 {
		return nil, fmt.Errorf("daemon: a fleet needs at least 2 ranks, got %d", w.Size())
	}
	return &Fleet{world: w}, nil
}

// DialFleet forms the daemon's world as rank 0 of `ranks` processes
// rendezvousing at coord. It blocks until every worker has joined.
// WaitTimeout is disabled: a resident fleet idles between jobs
// indefinitely by design.
func DialFleet(coord string, ranks int) (*Fleet, error) {
	w, err := mpinet.Connect(mpinet.Config{
		Rank: 0, World: ranks, Coord: coord, WaitTimeout: -1,
	})
	if err != nil {
		return nil, err
	}
	return NewFleet(w)
}

// Size returns the fleet's world size (daemon rank included).
func (f *Fleet) Size() int { return f.world.Size() }

// Execute runs one distributed job across the fleet and returns rank
// 0's view of the result with the full output file list.
func (f *Fleet) Execute(spec *JobSpec, inputPath, dir string, ranks int) (jobResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down || f.world.Err() != nil {
		f.down = true
		return jobResult{}, fmt.Errorf("daemon: worker fleet is down: %v", f.world.Err())
	}
	if ranks != f.world.Size() {
		return jobResult{}, fmt.Errorf("daemon: job wants %d ranks, fleet has %d", ranks, f.world.Size())
	}
	if err := distributable(spec); err != nil {
		return jobResult{}, err
	}
	desc, err := json.Marshal(fleetJob{Spec: *spec, Input: inputPath, Dir: dir})
	if err != nil {
		return jobResult{}, err
	}
	launch := f.world.Launcher()
	if err := launch(ranks, func(c *mpi.Comm) error {
		_, err := c.Bcast(0, desc)
		return err
	}); err != nil {
		f.down = true
		return jobResult{}, fmt.Errorf("daemon: fleet control round: %w", err)
	}
	res, err := runEngines(spec, inputPath, dir, launch, ranks, 0)
	if err != nil {
		// The failure may have struck outside a collective (an open, a
		// stat); abort explicitly so workers drain instead of wedging.
		f.world.Abort()
		f.down = true
		return jobResult{}, err
	}
	if err := launch(ranks, func(c *mpi.Comm) error { return c.Barrier() }); err != nil {
		f.down = true
		return jobResult{}, fmt.Errorf("daemon: fleet settle round: %w", err)
	}
	if spec.Op == OpConvert {
		files, total, err := convertOutputs(spec, dir, ranks)
		if err != nil {
			return jobResult{}, err
		}
		res.files, res.bytesOut = files, total
	}
	return res, nil
}

// Shutdown broadcasts the shutdown sentinel (workers exit their serve
// loop) and closes the world. Safe to call once after Drain.
func (f *Fleet) Shutdown() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down && f.world.Err() == nil {
		desc, _ := json.Marshal(fleetJob{Op: opShutdown})
		_ = f.world.Launcher()(f.world.Size(), func(c *mpi.Comm) error {
			_, err := c.Bcast(0, desc)
			return err
		})
	}
	f.down = true
	_ = f.world.Close()
}

// WorkerConfig shapes one fleet worker process.
type WorkerConfig struct {
	// Rank is this worker's rank in [1, Ranks); Ranks the world size.
	Rank, Ranks int
	// Coord is the rendezvous address the daemon listens on as rank 0.
	Coord string
	// Listen is the worker's mesh bind address (default ":0").
	Listen string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// RunWorker joins the fleet and serves jobs until the daemon broadcasts
// shutdown (returns nil) or the world dies (returns the error).
func RunWorker(cfg WorkerConfig) error {
	if cfg.Rank < 1 {
		return fmt.Errorf("daemon: worker rank must be ≥ 1, got %d", cfg.Rank)
	}
	w, err := mpinet.Connect(mpinet.Config{
		Rank: cfg.Rank, World: cfg.Ranks, Coord: cfg.Coord,
		Listen: cfg.Listen, WaitTimeout: -1,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	return ServeWorker(w, cfg.Logf)
}

// ServeWorker runs the worker side of the fleet protocol over an
// already-formed world — the seam in-process tests use to host a worker
// rank on a goroutine.
func ServeWorker(w *mpinet.World, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	launch := w.Launcher()
	for {
		var desc []byte
		if err := launch(w.Size(), func(c *mpi.Comm) error {
			d, err := c.Bcast(0, nil)
			desc = d
			return err
		}); err != nil {
			return fmt.Errorf("daemon: worker %d control round: %w", w.Rank(), err)
		}
		var fj fleetJob
		if err := json.Unmarshal(desc, &fj); err != nil {
			w.Abort()
			return fmt.Errorf("daemon: worker %d: bad control frame: %w", w.Rank(), err)
		}
		if fj.Op == opShutdown {
			logf("worker %d: shutdown", w.Rank())
			return nil
		}
		logf("worker %d: op %s input %s", w.Rank(), fj.Spec.Op, fj.Input)
		if _, err := runEngines(&fj.Spec, fj.Input, fj.Dir, launch, w.Size(), w.Rank()); err != nil {
			w.Abort() // see Fleet.Execute: unblock peers on non-collective failures
			return fmt.Errorf("daemon: worker %d: %w", w.Rank(), err)
		}
		if err := launch(w.Size(), func(c *mpi.Comm) error { return c.Barrier() }); err != nil {
			return fmt.Errorf("daemon: worker %d settle round: %w", w.Rank(), err)
		}
	}
}
