package parpipe

import (
	"sync"
)

// Pool is a shared, resizable worker executor. Where a Pipe built with
// New owns its goroutines for the life of one stream, a Pool outlives
// streams: many short-lived pipes (NewOnPool) attach to it and borrow
// its workers, so a process that opens and closes hundreds of writers —
// the per-rank BAM shards of the SAM→BAM converter, the sorter's spill
// runs — keeps one warm pool instead of churning goroutine pools.
//
// The worker count adjusts at runtime via SetWorkers, between 1 and the
// max fixed at construction. Grows take effect immediately; shrinks are
// lazy — a surplus worker exits after finishing its current job — so
// resizing never blocks and never interrupts work in flight.
type Pool struct {
	work chan func()

	mu     sync.Mutex
	target int // desired worker count
	alive  int // running worker goroutines
	max    int
	closed bool
}

// NewPool starts a pool of `workers` goroutines, resizable up to max.
// depth bounds the queued (not yet picked up) jobs; Submit blocks while
// the queue is full.
func NewPool(workers, max, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if max < workers {
		max = workers
	}
	if depth < workers {
		depth = workers
	}
	p := &Pool{
		work:   make(chan func(), depth),
		target: workers,
		alive:  workers,
		max:    max,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// worker drains the queue; after each job it exits if the pool has
// shrunk below the number of live workers.
func (p *Pool) worker() {
	for fn := range p.work {
		fn()
		p.mu.Lock()
		if p.alive > p.target {
			p.alive--
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// Submit enqueues one job. It blocks while the queue is full and must
// not be called after Close.
func (p *Pool) Submit(fn func()) { p.work <- fn }

// Workers returns the current target worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Max returns the pool's worker-count ceiling.
func (p *Pool) Max() int { return p.max }

// Backlog returns the number of queued jobs no worker has picked up
// yet — the demand signal adaptive sizers grow on.
func (p *Pool) Backlog() int { return len(p.work) }

// SetWorkers resizes the pool, clamping n to [1, max]. Growing spawns
// workers immediately; shrinking lets surplus workers retire as they
// finish their current job. It returns the clamped count.
func (p *Pool) SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > p.max {
		n = p.max
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return p.target
	}
	p.target = n
	for p.alive < n {
		p.alive++
		go p.worker()
	}
	return n
}

// Close shuts the pool down after the queued jobs finish. Pipes still
// attached to the pool must be closed first.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.work)
}
