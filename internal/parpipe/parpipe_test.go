package parpipe

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

type job struct {
	in  int
	out int
}

func TestOrderPreserved(t *testing.T) {
	p := New(4, 8, func(j *job) {
		// Stagger completion so later jobs routinely finish first.
		time.Sleep(time.Duration(j.in%3) * time.Millisecond)
		j.out = j.in * j.in
	})
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(&job{in: i})
		}
		p.Close()
	}()
	i := 0
	for j := range p.Out() {
		if j.in != i {
			t.Fatalf("job %d delivered at position %d", j.in, i)
		}
		if j.out != i*i {
			t.Fatalf("job %d not processed: out=%d", i, j.out)
		}
		i++
	}
	if i != n {
		t.Fatalf("delivered %d jobs, want %d", i, n)
	}
}

func TestSingleWorkerDegenerate(t *testing.T) {
	p := New(0, 0, func(j *job) { j.out = j.in + 1 })
	go func() {
		for i := 0; i < 50; i++ {
			p.Submit(&job{in: i})
		}
		p.Close()
	}()
	i := 0
	for j := range p.Out() {
		if j.out != i+1 {
			t.Fatalf("job %d: out=%d", i, j.out)
		}
		i++
	}
	if i != 50 {
		t.Fatalf("delivered %d jobs, want 50", i)
	}
}

func TestEmptyClose(t *testing.T) {
	p := New(2, 4, func(j *job) {})
	p.Close()
	if _, ok := <-p.Out(); ok {
		t.Fatal("Out delivered a job that was never submitted")
	}
}

func TestBoundedInFlight(t *testing.T) {
	var inFlight, maxSeen atomic.Int64
	const depth = 4
	p := New(2, depth, func(j *job) {
		cur := inFlight.Add(1)
		for {
			prev := maxSeen.Load()
			if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range p.Out() {
		}
	}()
	for i := 0; i < 64; i++ {
		p.Submit(&job{in: i})
	}
	p.Close()
	<-done
	// Processing concurrency can never exceed the worker count.
	if maxSeen.Load() > 2 {
		t.Fatalf("observed %d concurrent jobs with 2 workers", maxSeen.Load())
	}
}

func TestGoroutinesExitAfterDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		p := New(3, 6, func(j *job) { j.out = j.in })
		go func() {
			for i := 0; i < 10; i++ {
				p.Submit(&job{in: i})
			}
			p.Close()
		}()
		for range p.Out() {
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, g)
	}
}
