// Package parpipe provides a bounded, order-preserving parallel
// pipeline: jobs fan out to a fixed pool of workers and are delivered
// back in submission order. It is the concurrency skeleton shared by
// the parallel BGZF codec and the BAMZ block compressor — both exploit
// the same structure, independent blocks that must be reassembled in
// stream order.
//
// The pipeline is deliberately minimal: it moves jobs, it does not
// interpret them. Jobs carry their own payloads, results and errors;
// the consumer sees jobs exactly in the order they were submitted, so
// "first error in stream order" falls out of the delivery order for
// free.
//
// A pipeline built with NewObserved additionally reports itself to an
// obs.Registry — queue depth, per-worker busy/idle time, items
// processed, and (when tracing is on) one trace span per job on the
// worker that ran it. A pipeline built with New is untouched: the
// instrumentation fields stay nil and the hot path pays nothing.
package parpipe

import (
	"sync"
	"time"

	"parseq/internal/obs"
)

// ticket pairs a job with its completion signal. The done channel is
// buffered so a worker never blocks handing off a finished job.
type ticket[J any] struct {
	job  J
	done chan struct{}
}

// Pipe fans submitted jobs out to workers and yields them, processed,
// in submission order on Out. Submit blocks while the pipeline is full,
// bounding memory to roughly depth in-flight jobs.
type Pipe[J any] struct {
	fn      func(J)
	work    chan *ticket[J] // nil on pool-backed pipes
	pool    *Pool           // nil on pipes that own their workers
	order   chan *ticket[J]
	out     chan J
	tickets sync.Pool
	wg      sync.WaitGroup

	// Telemetry (nil/zero on unobserved pipelines).
	reg    *obs.Registry
	name   string
	pid    int
	items  *obs.Counter
	busyNS *obs.Counter
	idleNS *obs.Counter
	queue  *obs.Gauge
}

// New starts a pipeline of `workers` goroutines applying fn to each
// submitted job. depth bounds the number of in-flight jobs; it is
// raised to workers when smaller so the pool can actually fill.
func New[J any](workers, depth int, fn func(J)) *Pipe[J] {
	return NewObserved(workers, depth, fn, nil, "")
}

// NewObserved is New with telemetry: the pipeline registers
// parpipe.<name>.{items,busy_ns,idle_ns} counters and a
// parpipe.<name>.queue_depth gauge on reg, and — when reg has tracing
// enabled — emits one span per job under its own trace process, one
// trace thread per worker. A nil reg yields an uninstrumented pipeline
// identical to New's.
func NewObserved[J any](workers, depth int, fn func(J), reg *obs.Registry, name string) *Pipe[J] {
	if workers < 1 {
		workers = 1
	}
	if depth < workers {
		depth = workers
	}
	p := &Pipe[J]{
		fn:    fn,
		work:  make(chan *ticket[J], depth),
		order: make(chan *ticket[J], depth),
		out:   make(chan J, depth),
	}
	p.initObs(reg, name)
	p.tickets.New = func() any { return &ticket[J]{done: make(chan struct{}, 1)} }
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	go p.drainLoop()
	return p
}

// NewOnPool builds a pipeline whose jobs run on a shared Pool instead
// of dedicated workers: Submit hands each job to the pool, and delivery
// on Out is still strictly submission order. depth bounds the in-flight
// jobs of this pipe alone — the pool's own queue bounds total demand
// across every attached pipe. Telemetry registers under the same
// parpipe.<name>.* names as NewObserved (the idle counter stays zero:
// pool workers' idle time belongs to the pool, not to any one pipe).
// Close detaches the pipe; the pool keeps running for the next stream.
func NewOnPool[J any](pool *Pool, depth int, fn func(J), reg *obs.Registry, name string) *Pipe[J] {
	if depth < 1 {
		depth = 1
	}
	p := &Pipe[J]{
		fn:    fn,
		pool:  pool,
		order: make(chan *ticket[J], depth),
		out:   make(chan J, depth),
	}
	p.initObs(reg, name)
	p.tickets.New = func() any { return &ticket[J]{done: make(chan struct{}, 1)} }
	go p.drainLoop()
	return p
}

// initObs registers the pipe's telemetry handles; a nil reg leaves the
// pipe uninstrumented.
func (p *Pipe[J]) initObs(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	p.reg = reg
	p.name = name
	prefix := "parpipe." + name
	p.items = reg.Counter(prefix + ".items")
	p.busyNS = reg.Counter(prefix + ".busy_ns")
	p.idleNS = reg.Counter(prefix + ".idle_ns")
	p.queue = reg.Gauge(prefix + ".queue_depth")
	if reg.TracingEnabled() && p.pool == nil {
		p.pid = reg.AllocPID("pipe:" + name)
	}
}

// drainLoop delivers finished jobs in submission order, then closes Out
// once the input is complete and every worker has retired.
func (p *Pipe[J]) drainLoop() {
	for t := range p.order {
		<-t.done
		j := t.job
		var zero J
		t.job = zero
		p.tickets.Put(t)
		p.out <- j
	}
	p.wg.Wait()
	close(p.out)
}

// run executes one ticket on a pool worker, with the same busy/items
// accounting as a dedicated worker (idle time is the pool's, not the
// pipe's, so it is not attributed here).
func (p *Pipe[J]) run(t *ticket[J]) {
	if p.reg == nil {
		p.fn(t.job)
		t.done <- struct{}{}
		return
	}
	start := time.Now()
	p.fn(t.job)
	p.busyNS.Add(time.Since(start).Nanoseconds())
	p.items.Add(1)
	t.done <- struct{}{}
}

// worker drains the work channel. On observed pipelines it splits its
// lifetime into idle (waiting for a job) and busy (running fn) time —
// the two counters behind the exported busy-fraction — and emits one
// trace span per job.
func (p *Pipe[J]) worker(id int) {
	defer p.wg.Done()
	if p.reg == nil {
		for t := range p.work {
			p.fn(t.job)
			t.done <- struct{}{}
		}
		return
	}
	last := time.Now()
	for t := range p.work {
		start := time.Now()
		p.idleNS.Add(start.Sub(last).Nanoseconds())
		var sp obs.Span
		if p.pid != 0 {
			sp = p.reg.StartWorkerSpan(p.pid, id, p.name)
		}
		p.fn(t.job)
		sp.End()
		last = time.Now()
		p.busyNS.Add(last.Sub(start).Nanoseconds())
		p.items.Add(1)
		t.done <- struct{}{}
	}
}

// Submit enqueues one job. It blocks while the pipeline holds depth
// unfinished jobs, and must not be called after Close.
func (p *Pipe[J]) Submit(j J) {
	t := p.tickets.Get().(*ticket[J])
	t.job = j
	p.order <- t
	if p.pool != nil {
		p.pool.Submit(func() { p.run(t) })
		p.queue.Set(int64(len(p.order)))
		return
	}
	p.work <- t
	p.queue.Set(int64(len(p.work)))
}

// Out delivers processed jobs in submission order. The channel is
// closed after Close once every submitted job has been delivered, so a
// plain range drains the pipeline.
func (p *Pipe[J]) Out() <-chan J { return p.out }

// Close marks the input complete. Out keeps delivering the jobs already
// submitted, then closes. On a pool-backed pipe this detaches the pipe
// without touching the shared pool.
func (p *Pipe[J]) Close() {
	if p.work != nil {
		close(p.work)
	}
	close(p.order)
}
