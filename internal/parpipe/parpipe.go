// Package parpipe provides a bounded, order-preserving parallel
// pipeline: jobs fan out to a fixed pool of workers and are delivered
// back in submission order. It is the concurrency skeleton shared by
// the parallel BGZF codec and the BAMZ block compressor — both exploit
// the same structure, independent blocks that must be reassembled in
// stream order.
//
// The pipeline is deliberately minimal: it moves jobs, it does not
// interpret them. Jobs carry their own payloads, results and errors;
// the consumer sees jobs exactly in the order they were submitted, so
// "first error in stream order" falls out of the delivery order for
// free.
package parpipe

import "sync"

// ticket pairs a job with its completion signal. The done channel is
// buffered so a worker never blocks handing off a finished job.
type ticket[J any] struct {
	job  J
	done chan struct{}
}

// Pipe fans submitted jobs out to workers and yields them, processed,
// in submission order on Out. Submit blocks while the pipeline is full,
// bounding memory to roughly depth in-flight jobs.
type Pipe[J any] struct {
	fn      func(J)
	work    chan *ticket[J]
	order   chan *ticket[J]
	out     chan J
	tickets sync.Pool
	wg      sync.WaitGroup
}

// New starts a pipeline of `workers` goroutines applying fn to each
// submitted job. depth bounds the number of in-flight jobs; it is
// raised to workers when smaller so the pool can actually fill.
func New[J any](workers, depth int, fn func(J)) *Pipe[J] {
	if workers < 1 {
		workers = 1
	}
	if depth < workers {
		depth = workers
	}
	p := &Pipe[J]{
		fn:    fn,
		work:  make(chan *ticket[J], depth),
		order: make(chan *ticket[J], depth),
		out:   make(chan J, depth),
	}
	p.tickets.New = func() any { return &ticket[J]{done: make(chan struct{}, 1)} }
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.work {
				p.fn(t.job)
				t.done <- struct{}{}
			}
		}()
	}
	go func() {
		for t := range p.order {
			<-t.done
			j := t.job
			var zero J
			t.job = zero
			p.tickets.Put(t)
			p.out <- j
		}
		p.wg.Wait()
		close(p.out)
	}()
	return p
}

// Submit enqueues one job. It blocks while the pipeline holds depth
// unfinished jobs, and must not be called after Close.
func (p *Pipe[J]) Submit(j J) {
	t := p.tickets.Get().(*ticket[J])
	t.job = j
	p.order <- t
	p.work <- t
}

// Out delivers processed jobs in submission order. The channel is
// closed after Close once every submitted job has been delivered, so a
// plain range drains the pipeline.
func (p *Pipe[J]) Out() <-chan J { return p.out }

// Close marks the input complete. Out keeps delivering the jobs already
// submitted, then closes.
func (p *Pipe[J]) Close() {
	close(p.work)
	close(p.order)
}
