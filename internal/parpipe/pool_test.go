package parpipe

import (
	"sync"
	"testing"
	"time"
)

func TestPoolBackedPipeOrderPreserved(t *testing.T) {
	pool := NewPool(4, 4, 8)
	defer pool.Close()
	p := NewOnPool(pool, 8, func(j *job) {
		// Stagger completion so later jobs routinely finish first.
		time.Sleep(time.Duration(j.in%3) * time.Millisecond)
		j.out = j.in * j.in
	}, nil, "")
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(&job{in: i})
		}
		p.Close()
	}()
	i := 0
	for j := range p.Out() {
		if j.in != i {
			t.Fatalf("job %d delivered at position %d", j.in, i)
		}
		if j.out != i*i {
			t.Fatalf("job %d not processed: out=%d", i, j.out)
		}
		i++
	}
	if i != n {
		t.Fatalf("delivered %d jobs, want %d", i, n)
	}
}

// Many pipes sharing one pool must each still see their own jobs in
// their own submission order.
func TestPoolSharedAcrossPipes(t *testing.T) {
	pool := NewPool(3, 3, 8)
	defer pool.Close()
	var wg sync.WaitGroup
	for pipe := 0; pipe < 4; pipe++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewOnPool(pool, 4, func(j *job) { j.out = j.in + 1 }, nil, "")
			go func() {
				for i := 0; i < 50; i++ {
					p.Submit(&job{in: i})
				}
				p.Close()
			}()
			i := 0
			for j := range p.Out() {
				if j.in != i || j.out != i+1 {
					t.Errorf("pipe saw job %d (out=%d) at position %d", j.in, j.out, i)
					return
				}
				i++
			}
			if i != 50 {
				t.Errorf("pipe drained %d jobs, want 50", i)
			}
		}()
	}
	wg.Wait()
}

func TestPoolSetWorkersClamps(t *testing.T) {
	pool := NewPool(1, 4, 8)
	defer pool.Close()
	if got := pool.Workers(); got != 1 {
		t.Fatalf("Workers = %d, want 1", got)
	}
	if got := pool.SetWorkers(3); got != 3 || pool.Workers() != 3 {
		t.Fatalf("SetWorkers(3) = %d, Workers = %d", got, pool.Workers())
	}
	if got := pool.SetWorkers(99); got != 4 {
		t.Fatalf("SetWorkers(99) = %d, want clamp to max 4", got)
	}
	if got := pool.SetWorkers(0); got != 1 {
		t.Fatalf("SetWorkers(0) = %d, want clamp to 1", got)
	}
	if pool.Max() != 4 {
		t.Fatalf("Max = %d, want 4", pool.Max())
	}
}

// After a shrink, surplus workers retire as they finish jobs; the pool
// keeps processing correctly through the transition in either
// direction.
func TestPoolResizeUnderLoad(t *testing.T) {
	pool := NewPool(4, 8, 16)
	var done sync.WaitGroup
	submit := func(n int) {
		for i := 0; i < n; i++ {
			done.Add(1)
			pool.Submit(func() { done.Done() })
		}
	}
	submit(100)
	pool.SetWorkers(1)
	submit(100)
	pool.SetWorkers(8)
	submit(100)
	done.Wait()
	pool.Close()
	// Close is idempotent.
	pool.Close()
	if got := pool.SetWorkers(5); got != 8 {
		t.Fatalf("SetWorkers after Close = %d, want unchanged 8", got)
	}
}
