package hist

import (
	"encoding/binary"
	"io"

	"parseq/internal/bam"
	"parseq/internal/formats/pamx"
	"parseq/internal/mpi"
	"parseq/internal/sam"
	"parseq/internal/shard"
)

// addBody accumulates one BAM-encoded record body into h without
// decoding it, mirroring AddRecord's skip rules (flag-unmapped,
// unplaced, or off-reference records contribute nothing). refID is the
// histogram reference's ID in the source header.
func (h *Histogram) addBody(body []byte, refID int32) {
	if sam.Flag(binary.LittleEndian.Uint16(body[14:])).Unmapped() {
		return
	}
	id, beg, end := bam.BodySpan(body)
	if id != refID || beg < 0 {
		return
	}
	h.AddInterval(int32(beg)+1, int32(end), 1)
}

// FromProvider builds the coverage histogram for one reference
// region-parallel over an indexed provider: rank 0 cuts the reference
// into byte-balanced shards and scatters descriptor groups, each rank
// drains its group through local workers on the zero-decode body path,
// and per-shard partial histograms reduce by element-wise addition
// (every contribution is an integer bin increment, so float64 sums are
// exact and the merged bins are identical to a sequential scan at any
// shard count, worker count or transport). Under a distributed launcher
// the reduced histogram is complete on rank 0's process only.
func FromProvider(p shard.Provider, rname string, binSize int, cfg shard.Config) (*Histogram, error) {
	// Coverage needs the alignment span — the fixed prefix plus the
	// CIGAR walk bam.BodySpan performs — and nothing else; over a
	// columnar provider everything heavier stays compressed on disk.
	shard.Project(p, pamx.FieldCoord|pamx.FieldCigar)
	header, err := p.Header()
	if err != nil {
		return nil, err
	}
	refID := header.RefID(rname)
	if refID < 0 {
		return nil, &UnknownReferenceError{RName: rname}
	}
	refLen := header.RefByID(refID).Length

	total, err := New(rname, refLen, binSize)
	if err != nil {
		return nil, err
	}
	launch, ranks := cfg.Launcher()
	err = launch(ranks, func(c *mpi.Comm) error {
		var all []shard.Shard
		if c.Rank() == 0 {
			var err error
			all, err = p.GenerateShards(shard.Options{
				TargetShards: cfg.ResolveTargetShards(c.Size()),
				Refs:         []string{rname},
			})
			if err != nil {
				return err
			}
		}
		local, err := shard.Scatter(c, all)
		if err != nil {
			return err
		}
		per := make([]*Histogram, len(local))
		err = shard.ForEach(p, local, cfg.Workers, func(i int, sh shard.Shard, rr shard.RecordReader) error {
			lh, err := New(rname, refLen, binSize)
			if err != nil {
				return err
			}
			for {
				body, err := rr.NextBody()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				lh.addBody(body, int32(refID))
			}
			per[i] = lh
			return nil
		})
		if err != nil {
			return err
		}
		sum, err := New(rname, refLen, binSize)
		if err != nil {
			return err
		}
		for _, lh := range per {
			if lh == nil {
				continue
			}
			for i := range lh.Bins {
				sum.Bins[i] += lh.Bins[i]
			}
		}
		parts, err := c.Gather(0, packBins(sum.Bins))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for _, pt := range parts {
				bins, err := unpackBins(pt)
				if err != nil {
					return err
				}
				for i := range bins {
					total.Bins[i] += bins[i]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}
