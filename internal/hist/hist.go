// Package hist is the coverage-histogram substrate linking the converter
// to the statistical module: aligned reads are accumulated into
// fixed-width bins along the genome ("binned peaks"), which is the data
// the NL-means and FDR steps analyse. It also round-trips histograms
// through the BEDGRAPH text form the converter emits, and a simple
// TSV form used by the command-line tools.
package hist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parseq/internal/sam"
)

// Histogram is a binned coverage track over one reference sequence.
type Histogram struct {
	RName   string
	BinSize int
	Bins    []float64
}

// New allocates a histogram covering refLen bases at the given bin size.
func New(rname string, refLen, binSize int) (*Histogram, error) {
	if binSize < 1 {
		return nil, fmt.Errorf("hist: invalid bin size %d", binSize)
	}
	if refLen < 0 {
		return nil, fmt.Errorf("hist: invalid reference length %d", refLen)
	}
	n := (refLen + binSize - 1) / binSize
	return &Histogram{RName: rname, BinSize: binSize, Bins: make([]float64, n)}, nil
}

// AddInterval accumulates weight over the 1-based inclusive interval
// [beg, end], clipped to the histogram. Each overlapped bin receives the
// weight times its overlapped fraction in bases.
func (h *Histogram) AddInterval(beg, end int32, weight float64) {
	if end < beg || len(h.Bins) == 0 {
		return
	}
	b := int(beg) - 1 // to 0-based
	e := int(end)     // exclusive
	if b < 0 {
		b = 0
	}
	if max := len(h.Bins) * h.BinSize; e > max {
		e = max
	}
	for b < e {
		bin := b / h.BinSize
		binEnd := (bin + 1) * h.BinSize
		over := e - b
		if binEnd-b < over {
			over = binEnd - b
		}
		h.Bins[bin] += weight * float64(over)
		b += over
	}
}

// AddRecord accumulates one aligned read's reference span.
func (h *Histogram) AddRecord(rec *sam.Record) {
	if rec.Unmapped() || rec.RName != h.RName {
		return
	}
	h.AddInterval(rec.Pos, rec.End(), 1)
}

// Coverage builds a histogram for one reference from alignment records.
func Coverage(recs []sam.Record, hd *sam.Header, rname string, binSize int) (*Histogram, error) {
	id := hd.RefID(rname)
	if id < 0 {
		return nil, fmt.Errorf("hist: reference %q not in header", rname)
	}
	h, err := New(rname, hd.RefByID(id).Length, binSize)
	if err != nil {
		return nil, err
	}
	for i := range recs {
		h.AddRecord(&recs[i])
	}
	return h, nil
}

// FromBEDGraph accumulates a BEDGRAPH stream (as the converter emits:
// chrom, 0-based start, end, value) into a histogram for one reference.
// Track declaration lines are skipped.
func FromBEDGraph(r io.Reader, rname string, refLen, binSize int) (*Histogram, error) {
	h, err := New(rname, refLen, binSize)
	if err != nil {
		return nil, err
	}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if line == "" || strings.HasPrefix(line, "track") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 4 {
			return nil, fmt.Errorf("hist: BEDGRAPH line %d has %d fields", lineNo, len(fields))
		}
		if fields[0] != rname {
			continue
		}
		beg, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("hist: BEDGRAPH line %d start: %w", lineNo, err)
		}
		end, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("hist: BEDGRAPH line %d end: %w", lineNo, err)
		}
		val, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("hist: BEDGRAPH line %d value: %w", lineNo, err)
		}
		h.AddInterval(int32(beg)+1, int32(end), val)
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// WriteBEDGraph emits the histogram as BEDGRAPH, merging runs of equal
// values into single intervals (the format's concise-track property).
// Bins hold base-weighted mass; BEDGRAPH reports per-base depth, so each
// emitted value is the bin mass divided by the bin width.
func (h *Histogram) WriteBEDGraph(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("track type=bedGraph\n"); err != nil {
		return err
	}
	i := 0
	for i < len(h.Bins) {
		j := i + 1
		for j < len(h.Bins) && h.Bins[j] == h.Bins[i] {
			j++
		}
		if h.Bins[i] != 0 {
			fmt.Fprintf(bw, "%s\t%d\t%d\t%g\n",
				h.RName, i*h.BinSize, j*h.BinSize, h.Bins[i]/float64(h.BinSize))
		}
		i = j
	}
	return bw.Flush()
}

// WriteTSV emits one value per line — the flat histogram-dataset form the
// statistics tools exchange.
func WriteTSV(w io.Writer, bins []float64) error {
	bw := bufio.NewWriter(w)
	for _, v := range bins {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a one-value-per-line histogram dataset.
func ReadTSV(r io.Reader) ([]float64, error) {
	var out []float64
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("hist: line %d: %w", len(out)+1, err)
		}
		out = append(out, v)
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("hist: empty histogram dataset")
	}
	return out, nil
}
