package hist

import (
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"parseq/internal/bamx"
	"parseq/internal/mpinet"
	"parseq/internal/shard"
	"parseq/internal/simdata"
)

// writeShardDataset materialises a deterministic dataset as BAM and
// BAMX (+BAIX) files.
func writeShardDataset(t testing.TB, n int) (bamPath, bamxPath string, d *simdata.Dataset) {
	t.Helper()
	dir := t.TempDir()
	d = simdata.Generate(simdata.DefaultConfig(n))
	bamPath = filepath.Join(dir, "data.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	bamxPath = filepath.Join(dir, "data.bamx")
	xf, err := os.Create(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := bamx.BuildFromRecords(xf, d.Header, d.Records)
	if err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(filepath.Join(dir, "data.baix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(ixf); err != nil {
		t.Fatal(err)
	}
	if err := ixf.Close(); err != nil {
		t.Fatal(err)
	}
	return bamPath, bamxPath, d
}

const shardBinSize = 200

// TestFromProviderIdentity: the sharded coverage histogram must be
// byte-identical to the sequential in-memory accumulation at every
// shard count and rank count, for both providers. Every contribution
// is an integer bin increment, so the float64 merge is exact and
// order-independent — this is what the test pins down.
func TestFromProviderIdentity(t *testing.T) {
	bamPath, bamxPath, d := writeShardDataset(t, 3000)
	rname := d.Header.Refs[0].Name
	want, err := Coverage(d.Records, d.Header, rname, shardBinSize)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}

	for _, tc := range []struct {
		name string
		p    shard.Provider
	}{
		{"bam", shard.NewBAMProvider(bamPath)},
		{"bamx", shard.NewBAMXProvider(bamxPath)},
	} {
		defer tc.p.Close()
		for _, shards := range []int{1, 2, 4, 8} {
			for _, ranks := range []int{1, 2} {
				got, err := FromProvider(tc.p, rname, shardBinSize, shard.Config{
					Ranks:        ranks,
					Workers:      3,
					TargetShards: shards,
				})
				if err != nil {
					t.Fatalf("%s shards=%d ranks=%d: %v", tc.name, shards, ranks, err)
				}
				if !reflect.DeepEqual(got.Bins, want.Bins) {
					t.Fatalf("%s shards=%d ranks=%d: bins differ", tc.name, shards, ranks)
				}
				if got.RName != want.RName || got.BinSize != want.BinSize {
					t.Fatalf("%s: histogram shape differs", tc.name)
				}
			}
		}
	}

	if _, err := FromProvider(shard.NewBAMProvider(bamPath), "chrNope", shardBinSize, shard.Config{}); err == nil {
		t.Fatal("unknown reference did not error")
	}
}

// TestFromProviderIdentityTCP: the same identity with shard descriptors
// and bin partials crossing a real loopback TCP mesh.
func TestFromProviderIdentityTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP world in -short mode")
	}
	bamPath, _, d := writeShardDataset(t, 2000)
	rname := d.Header.Refs[0].Name
	want, err := Coverage(d.Records, d.Header, rname, shardBinSize)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	const worldSize = 2
	for _, shards := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		var rank0 *Histogram
		runHistLoopbackWorld(t, worldSize, func(w *mpinet.World) error {
			p := shard.NewBAMProvider(bamPath)
			defer p.Close()
			got, err := FromProvider(p, rname, shardBinSize, shard.Config{
				Ranks:        worldSize,
				Workers:      2,
				TargetShards: shards,
				Launch:       w.Launcher(),
			})
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				rank0 = got
				mu.Unlock()
			}
			return nil
		})
		if rank0 == nil {
			t.Fatalf("shards=%d: rank 0 produced no result", shards)
		}
		if !reflect.DeepEqual(rank0.Bins, want.Bins) {
			t.Fatalf("shards=%d over TCP: bins differ", shards)
		}
	}
}

// runHistLoopbackWorld forms a loopback TCP world and runs fn once per
// rank with its world.
func runHistLoopbackWorld(t *testing.T, size int, fn func(w *mpinet.World) error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	ln.Close()
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			w, err := mpinet.Connect(mpinet.Config{
				Rank:        rank,
				World:       size,
				Coord:       coord,
				DialTimeout: 10 * time.Second,
				JoinTimeout: 30 * time.Second,
				WaitTimeout: 30 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer w.Close()
			errs[rank] = fn(w)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
