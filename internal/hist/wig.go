package hist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteWIG emits the histogram in fixedStep WIG (wiggle) form — the
// remaining track format of the paper's Section II survey. Values are
// per-base depth (bin mass over bin width), one value per bin; zero runs
// are elided by restarting the step declaration, which is what keeps WIG
// compact on sparse tracks.
func (h *Histogram) WriteWIG(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "track type=wiggle_0\n"); err != nil {
		return err
	}
	inRun := false
	for i, mass := range h.Bins {
		if mass == 0 {
			inRun = false
			continue
		}
		if !inRun {
			// fixedStep positions are 1-based.
			if _, err := fmt.Fprintf(bw, "fixedStep chrom=%s start=%d step=%d span=%d\n",
				h.RName, i*h.BinSize+1, h.BinSize, h.BinSize); err != nil {
				return err
			}
			inRun = true
		}
		if _, err := fmt.Fprintf(bw, "%g\n", mass/float64(h.BinSize)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWIG accumulates a fixedStep WIG stream into a histogram for one
// reference. Declarations for other chromosomes are skipped; the step
// and span must equal the histogram's bin size (the form WriteWIG
// produces).
func ReadWIG(r io.Reader, rname string, refLen, binSize int) (*Histogram, error) {
	h, err := New(rname, refLen, binSize)
	if err != nil {
		return nil, err
	}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	lineNo := 0
	pos := -1     // next 1-based position, -1 = no active declaration
	skip := false // current declaration is for another chromosome
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "track"):
			continue
		case strings.HasPrefix(line, "variableStep"):
			return nil, fmt.Errorf("hist: line %d: variableStep WIG is not supported", lineNo)
		case strings.HasPrefix(line, "fixedStep"):
			chrom, start, step, span, err := parseFixedStep(line)
			if err != nil {
				return nil, fmt.Errorf("hist: line %d: %w", lineNo, err)
			}
			if chrom != rname {
				skip = true
				pos = -1
				continue
			}
			if step != binSize || (span != 0 && span != binSize) {
				return nil, fmt.Errorf("hist: line %d: step/span %d/%d does not match bin size %d",
					lineNo, step, span, binSize)
			}
			skip = false
			pos = start
		default:
			if skip {
				continue
			}
			if pos < 0 {
				return nil, fmt.Errorf("hist: line %d: data before fixedStep declaration", lineNo)
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				return nil, fmt.Errorf("hist: line %d: %w", lineNo, err)
			}
			h.AddInterval(int32(pos), int32(pos+binSize-1), v)
			pos += binSize
		}
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

func parseFixedStep(line string) (chrom string, start, step, span int, err error) {
	for _, field := range strings.Fields(line)[1:] {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return "", 0, 0, 0, fmt.Errorf("bad fixedStep field %q", field)
		}
		switch k {
		case "chrom":
			chrom = v
		case "start":
			start, err = strconv.Atoi(v)
		case "step":
			step, err = strconv.Atoi(v)
		case "span":
			span, err = strconv.Atoi(v)
		}
		if err != nil {
			return "", 0, 0, 0, fmt.Errorf("bad fixedStep %s %q", k, v)
		}
	}
	if chrom == "" || start < 1 || step < 1 {
		return "", 0, 0, 0, fmt.Errorf("incomplete fixedStep declaration %q", line)
	}
	return chrom, start, step, span, nil
}
