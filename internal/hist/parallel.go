package hist

import (
	"bufio"
	"io"
	"math"
	"os"

	"parseq/internal/mpi"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// FromSAMParallel builds a coverage histogram for one reference directly
// from a SAM file with `cores` ranks — the paper's Section IV entry
// point: "the user is able to convert aligned sequence data in SAM/BAM
// format into histogram data … in parallel". The file is partitioned
// with Algorithm 1, each rank accumulates a partial histogram over its
// records, and the partials reduce by element-wise addition (coverage is
// associative).
func FromSAMParallel(samPath, rname string, binSize, cores int) (*Histogram, error) {
	return FromSAMParallelLaunch(samPath, rname, binSize, cores, nil)
}

// FromSAMParallelLaunch is FromSAMParallel with an explicit launcher;
// nil selects the in-process mpi.Run. Under a distributed launcher the
// reduced histogram is complete on rank 0's process only — other ranks
// receive their unreduced local total.
func FromSAMParallelLaunch(samPath, rname string, binSize, cores int, launch mpi.Launcher) (*Histogram, error) {
	if launch == nil {
		launch = mpi.Run
	}
	if cores < 1 {
		cores = 1
	}
	f, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	header, dataStart, err := scanSAMHeader(f)
	if err != nil {
		return nil, err
	}
	refID := header.RefID(rname)
	if refID < 0 {
		return nil, &UnknownReferenceError{RName: rname}
	}
	refLen := header.RefByID(refID).Length

	total, err := New(rname, refLen, binSize)
	if err != nil {
		return nil, err
	}
	err = launch(cores, func(c *mpi.Comm) error {
		br, err := partition.SAMForwardMPI(c, f, dataStart, fi.Size())
		if err != nil {
			return err
		}
		local, err := accumulateRange(samPath, br, rname, refLen, binSize)
		if err != nil {
			return err
		}
		parts, err := c.Gather(0, packBins(local.Bins))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for _, p := range parts {
				bins, err := unpackBins(p)
				if err != nil {
					return err
				}
				for i := range bins {
					total.Bins[i] += bins[i]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// UnknownReferenceError reports a reference name missing from the header.
type UnknownReferenceError struct{ RName string }

func (e *UnknownReferenceError) Error() string {
	return "hist: reference " + e.RName + " not in header"
}

// scanSAMHeader parses the header section and returns the first
// alignment offset.
func scanSAMHeader(f *os.File) (*sam.Header, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	h := sam.NewHeader()
	br := bufio.NewReaderSize(f, 64<<10)
	var offset int64
	for {
		peek, err := br.Peek(1)
		if err == io.EOF {
			return h, offset, nil
		}
		if err != nil {
			return nil, 0, err
		}
		if peek[0] != '@' {
			return h, offset, nil
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		offset += int64(len(line))
		trimmed := line
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
			trimmed = trimmed[:n-1]
		}
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\r' {
			trimmed = trimmed[:n-1]
		}
		if perr := h.ParseHeaderLine(trimmed); perr != nil {
			return nil, 0, perr
		}
		if err == io.EOF {
			return h, offset, nil
		}
	}
}

// accumulateRange tallies one partition's coverage.
func accumulateRange(samPath string, br partition.ByteRange, rname string, refLen, binSize int) (*Histogram, error) {
	local, err := New(rname, refLen, binSize)
	if err != nil {
		return nil, err
	}
	in, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	scan := bufio.NewScanner(io.NewSectionReader(in, br.Start, br.Len()))
	scan.Buffer(make([]byte, 256<<10), 4<<20)
	var rec sam.Record
	for scan.Scan() {
		line := scan.Text()
		if line == "" {
			continue
		}
		if err := sam.ParseRecordInto(&rec, line); err != nil {
			return nil, err
		}
		local.AddRecord(&rec)
	}
	return local, scan.Err()
}

func packBins(bins []float64) []byte {
	out := make([]byte, 8*len(bins))
	for i, v := range bins {
		u := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(u >> (8 * b))
		}
	}
	return out
}

func unpackBins(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		var u uint64
		for b := 0; b < 8; b++ {
			u |= uint64(data[8*i+b]) << (8 * b)
		}
		out[i] = math.Float64frombits(u)
	}
	return out, nil
}
