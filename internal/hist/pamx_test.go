package hist

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"parseq/internal/formats/pamx"
	"parseq/internal/mpinet"
	"parseq/internal/shard"
)

// writePAMXDataset converts a BAM file into PAMX with at least target
// column groups (the group-record knob; reference changes add more).
func writePAMXDataset(t testing.TB, bamPath string, n, target int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.pamx")
	groupRecords := (n + target - 1) / target
	if _, err := pamx.FromBAM(bamPath, path, pamx.Options{GroupRecords: groupRecords}); err != nil {
		t.Fatalf("FromBAM: %v", err)
	}
	return path
}

// TestPAMXProjectionIdentity: the coverage histogram over a columnar
// PAMX provider — projected to coordinates plus CIGARs, with names,
// sequences, qualities and tags never inflated — must be bin-identical
// to the sequential in-memory accumulation at every group structure and
// rank count.
func TestPAMXProjectionIdentity(t *testing.T) {
	const n = 3000
	bamPath, _, d := writeShardDataset(t, n)
	rname := d.Header.Refs[0].Name
	want, err := Coverage(d.Records, d.Header, rname, shardBinSize)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}

	for _, target := range []int{1, 2, 4, 8} {
		pamxPath := writePAMXDataset(t, bamPath, n, target)
		for _, ranks := range []int{1, 2} {
			p := shard.NewPAMXProvider(pamxPath)
			got, err := FromProvider(p, rname, shardBinSize, shard.Config{Ranks: ranks, Workers: 3})
			p.Close()
			if err != nil {
				t.Fatalf("groups=%d ranks=%d: %v", target, ranks, err)
			}
			if !reflect.DeepEqual(got.Bins, want.Bins) {
				t.Fatalf("groups=%d ranks=%d: bins differ", target, ranks)
			}
		}
	}
}

// TestPAMXProjectionIdentityTCP: the same identity across a loopback
// TCP mesh, rank 0 holding the reduced bins.
func TestPAMXProjectionIdentityTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP world in -short mode")
	}
	const n = 2000
	bamPath, _, d := writeShardDataset(t, n)
	rname := d.Header.Refs[0].Name
	want, err := Coverage(d.Records, d.Header, rname, shardBinSize)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	const worldSize = 2
	for _, target := range []int{1, 2, 4, 8} {
		pamxPath := writePAMXDataset(t, bamPath, n, target)
		var mu sync.Mutex
		var rank0 *Histogram
		runHistLoopbackWorld(t, worldSize, func(w *mpinet.World) error {
			p := shard.NewPAMXProvider(pamxPath)
			defer p.Close()
			got, err := FromProvider(p, rname, shardBinSize, shard.Config{
				Ranks:   worldSize,
				Workers: 2,
				Launch:  w.Launcher(),
			})
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				rank0 = got
				mu.Unlock()
			}
			return nil
		})
		if rank0 == nil {
			t.Fatalf("groups=%d: rank 0 produced no result", target)
		}
		if !reflect.DeepEqual(rank0.Bins, want.Bins) {
			t.Fatalf("groups=%d over TCP: bins differ", target)
		}
	}
}
