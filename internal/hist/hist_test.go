package hist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/sam"
	"parseq/internal/simdata"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("chr1", 100, 0); err == nil {
		t.Error("bin size 0 accepted")
	}
	if _, err := New("chr1", -1, 10); err == nil {
		t.Error("negative refLen accepted")
	}
	h, err := New("chr1", 100, 25)
	if err != nil || len(h.Bins) != 4 {
		t.Errorf("New = %v bins, %v; want 4", len(h.Bins), err)
	}
	// Round-up bin count.
	h, _ = New("chr1", 101, 25)
	if len(h.Bins) != 5 {
		t.Errorf("bins = %d, want 5", len(h.Bins))
	}
}

func TestAddIntervalSplitsAcrossBins(t *testing.T) {
	h, _ := New("chr1", 100, 10)
	// Interval [6, 25] covers bases 6-10 (5 in bin 0), 11-20 (10 in bin 1),
	// 21-25 (5 in bin 2).
	h.AddInterval(6, 25, 1)
	want := []float64{5, 10, 5, 0, 0, 0, 0, 0, 0, 0}
	for i, v := range want {
		if h.Bins[i] != v {
			t.Errorf("bin %d = %g, want %g", i, h.Bins[i], v)
		}
	}
}

func TestAddIntervalClipsToReference(t *testing.T) {
	h, _ := New("chr1", 30, 10)
	h.AddInterval(-5, 1000, 2)
	want := []float64{20, 20, 20}
	for i, v := range want {
		if h.Bins[i] != v {
			t.Errorf("bin %d = %g, want %g", i, h.Bins[i], v)
		}
	}
	// Degenerate interval does nothing.
	h.AddInterval(10, 5, 1)
	if h.Bins[0] != 20 {
		t.Error("inverted interval mutated bins")
	}
}

// Property: total mass added equals interval length times weight when the
// interval lies inside the reference.
func TestAddIntervalMassConservation(t *testing.T) {
	f := func(begSeed, lenSeed uint16, w uint8) bool {
		h, _ := New("chr1", 10000, 25)
		beg := int32(begSeed%5000) + 1
		length := int32(lenSeed%4000) + 1
		weight := float64(w%7) + 0.5
		h.AddInterval(beg, beg+length-1, weight)
		var total float64
		for _, v := range h.Bins {
			total += v
		}
		return total == weight*float64(length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRecordFiltersByReference(t *testing.T) {
	h, _ := New("chr1", 1000, 10)
	r1, _ := sam.ParseRecord("a\t0\tchr1\t11\t30\t10M\t*\t0\t0\tAAAAAAAAAA\tIIIIIIIIII")
	r2, _ := sam.ParseRecord("b\t0\tchr2\t11\t30\t10M\t*\t0\t0\tAAAAAAAAAA\tIIIIIIIIII")
	r3, _ := sam.ParseRecord("c\t4\t*\t0\t0\t*\t*\t0\t0\tAAAA\tIIII")
	h.AddRecord(&r1)
	h.AddRecord(&r2)
	h.AddRecord(&r3)
	if h.Bins[1] != 10 {
		t.Errorf("bin 1 = %g, want 10", h.Bins[1])
	}
	var total float64
	for _, v := range h.Bins {
		total += v
	}
	if total != 10 {
		t.Errorf("total = %g, want 10 (other records filtered)", total)
	}
}

func TestCoverage(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(500))
	h, err := Coverage(d.Records, d.Header, "chr1", 25)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	var total float64
	for _, v := range h.Bins {
		total += v
	}
	var want float64
	for i := range d.Records {
		r := &d.Records[i]
		if !r.Unmapped() && r.RName == "chr1" {
			want += float64(r.End() - r.Pos + 1)
		}
	}
	if total != want {
		t.Errorf("total coverage = %g, want %g", total, want)
	}
	if _, err := Coverage(d.Records, d.Header, "chrNope", 25); err == nil {
		t.Error("unknown reference accepted")
	}
}

func TestBEDGraphRoundTrip(t *testing.T) {
	h, _ := New("chr1", 200, 10)
	h.AddInterval(1, 50, 1)
	h.AddInterval(31, 90, 2)
	var buf bytes.Buffer
	if err := h.WriteBEDGraph(&buf); err != nil {
		t.Fatalf("WriteBEDGraph: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "track type=bedGraph\n") {
		t.Errorf("missing track line: %q", buf.String())
	}
	got, err := FromBEDGraph(&buf, "chr1", 200, 10)
	if err != nil {
		t.Fatalf("FromBEDGraph: %v", err)
	}
	for i := range h.Bins {
		if got.Bins[i] != h.Bins[i] {
			t.Errorf("bin %d = %g, want %g", i, got.Bins[i], h.Bins[i])
		}
	}
}

func TestFromBEDGraphSkipsOtherChromosomes(t *testing.T) {
	in := "track type=bedGraph\nchr1\t0\t10\t1\nchr2\t0\t10\t5\n# comment\n"
	h, err := FromBEDGraph(strings.NewReader(in), "chr1", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0] != 10 {
		t.Errorf("bin 0 = %g, want 10", h.Bins[0])
	}
	var total float64
	for _, v := range h.Bins {
		total += v
	}
	if total != 10 {
		t.Errorf("total = %g (chr2 leaked in?)", total)
	}
}

func TestFromBEDGraphErrors(t *testing.T) {
	for _, in := range []string{
		"chr1\t0\t10",    // too few fields
		"chr1\tx\t10\t1", // bad start
		"chr1\t0\ty\t1",  // bad end
		"chr1\t0\t10\tz", // bad value
	} {
		if _, err := FromBEDGraph(strings.NewReader(in), "chr1", 100, 10); err == nil {
			t.Errorf("FromBEDGraph(%q) succeeded", in)
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	want := []float64{0, 1.5, -2, 3e10, 0.001}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("v[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	got, err := ReadTSV(strings.NewReader("# header\n1\n\n2\n  3 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("got = %v", got)
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTSV(strings.NewReader("abc\n")); err == nil {
		t.Error("non-numeric input accepted")
	}
}
