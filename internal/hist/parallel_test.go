package hist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parseq/internal/simdata"
)

func writeSAMFile(t testing.TB, n int) (string, *simdata.Dataset) {
	t.Helper()
	d := simdata.Generate(simdata.DefaultConfig(n))
	path := filepath.Join(t.TempDir(), "h.sam")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func TestFromSAMParallelMatchesSequential(t *testing.T) {
	path, d := writeSAMFile(t, 600)
	want, err := Coverage(d.Records, d.Header, "chr1", 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 5} {
		got, err := FromSAMParallel(path, "chr1", 25, cores)
		if err != nil {
			t.Fatalf("FromSAMParallel(cores=%d): %v", cores, err)
		}
		if len(got.Bins) != len(want.Bins) {
			t.Fatalf("cores=%d: bins %d vs %d", cores, len(got.Bins), len(want.Bins))
		}
		for i := range got.Bins {
			if got.Bins[i] != want.Bins[i] {
				t.Fatalf("cores=%d: bin %d = %g, want %g", cores, i, got.Bins[i], want.Bins[i])
			}
		}
	}
}

func TestFromSAMParallelErrors(t *testing.T) {
	path, _ := writeSAMFile(t, 20)
	if _, err := FromSAMParallel(path, "chrNope", 25, 2); err == nil {
		t.Error("unknown reference accepted")
	}
	if _, err := FromSAMParallel("/does/not/exist.sam", "chr1", 25, 2); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := FromSAMParallel(path, "chr1", 0, 2); err == nil {
		t.Error("zero bin size accepted")
	}
}

func TestWIGRoundTrip(t *testing.T) {
	h, _ := New("chr1", 500, 10)
	h.AddInterval(1, 100, 1)   // bins 0-9
	h.AddInterval(301, 350, 3) // bins 30-34, after a zero gap
	var buf bytes.Buffer
	if err := h.WriteWIG(&buf); err != nil {
		t.Fatalf("WriteWIG: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "track type=wiggle_0\n") {
		t.Errorf("missing track line:\n%s", out)
	}
	// The zero gap forces two fixedStep declarations.
	if got := strings.Count(out, "fixedStep"); got != 2 {
		t.Errorf("fixedStep declarations = %d, want 2:\n%s", got, out)
	}
	got, err := ReadWIG(&buf, "chr1", 500, 10)
	if err != nil {
		t.Fatalf("ReadWIG: %v", err)
	}
	for i := range h.Bins {
		if got.Bins[i] != h.Bins[i] {
			t.Errorf("bin %d = %g, want %g", i, got.Bins[i], h.Bins[i])
		}
	}
}

func TestReadWIGSkipsOtherChromosomes(t *testing.T) {
	in := "track type=wiggle_0\n" +
		"fixedStep chrom=chr2 start=1 step=10 span=10\n5\n" +
		"fixedStep chrom=chr1 start=11 step=10 span=10\n2\n"
	h, err := ReadWIG(strings.NewReader(in), "chr1", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0] != 0 || h.Bins[1] != 20 {
		t.Errorf("bins = %v", h.Bins[:3])
	}
}

func TestReadWIGErrors(t *testing.T) {
	cases := []string{
		"5\n",                            // data before declaration
		"variableStep chrom=chr1\n1 5\n", // unsupported form
		"fixedStep chrom=chr1 start=1 step=5\n1\n",    // step mismatch (bin 10)
		"fixedStep start=1 step=10\n1\n",              // missing chrom
		"fixedStep chrom=chr1 start=x step=10\n",      // bad start
		"fixedStep chrom=chr1 start=1 step=10\nxyz\n", // bad value
	}
	for _, in := range cases {
		if _, err := ReadWIG(strings.NewReader(in), "chr1", 100, 10); err == nil {
			t.Errorf("ReadWIG(%q) accepted", in)
		}
	}
}

func TestWriteWIGEmptyHistogram(t *testing.T) {
	h, _ := New("chr1", 100, 10)
	var buf bytes.Buffer
	if err := h.WriteWIG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fixedStep") {
		t.Errorf("empty histogram emitted data:\n%s", buf.String())
	}
}
