package picard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parseq/internal/conv"
	"parseq/internal/simdata"
)

func writeDataset(t testing.TB, n int) (string, string) {
	t.Helper()
	d := simdata.Generate(simdata.DefaultConfig(n))
	dir := t.TempDir()
	samPath := filepath.Join(dir, "in.sam")
	bamPath := filepath.Join(dir, "in.bam")
	sf, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	bf, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return samPath, bamPath
}

// The baseline and our converter must produce byte-identical FASTQ — they
// implement the same conversion semantics.
func TestSamToFastqMatchesConverter(t *testing.T) {
	samPath, _ := writeDataset(t, 300)
	outDir := t.TempDir()
	base := filepath.Join(outDir, "picard.fastq")
	stats, err := SamToFastq(samPath, base)
	if err != nil {
		t.Fatalf("SamToFastq: %v", err)
	}
	if stats.Records != 300 {
		t.Errorf("Records = %d, want 300", stats.Records)
	}
	if stats.Duration <= 0 {
		t.Error("Duration not recorded")
	}

	res, err := conv.ConvertSAM(samPath, conv.Options{
		Format: "fastq", Cores: 1, OutDir: outDir, OutPrefix: "ours",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("baseline FASTQ differs from converter FASTQ (%d vs %d bytes)",
			len(got), len(want))
	}
	if stats.BytesOut != int64(len(got)) {
		t.Errorf("BytesOut = %d, file is %d", stats.BytesOut, len(got))
	}
}

func TestBamToSamMatchesConverter(t *testing.T) {
	_, bamPath := writeDataset(t, 300)
	outDir := t.TempDir()
	base := filepath.Join(outDir, "picard.sam")
	stats, err := BamToSam(bamPath, base)
	if err != nil {
		t.Fatalf("BamToSam: %v", err)
	}
	if stats.Records != 300 {
		t.Errorf("Records = %d", stats.Records)
	}
	res, err := conv.ConvertBAMSequential(bamPath, conv.Options{
		Format: "sam", OutDir: outDir, OutPrefix: "ours",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("baseline SAM differs from converter SAM")
	}
}

func TestSamToFastqRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sam")
	if err := os.WriteFile(bad, []byte("not\tenough\tcolumns\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SamToFastq(bad, filepath.Join(dir, "out.fastq")); err == nil {
		t.Error("bad input accepted")
	}
	badFlag := filepath.Join(dir, "badflag.sam")
	line := "r\tXX\tchr1\t1\t0\t*\t*\t0\t0\tA\tI\n"
	if err := os.WriteFile(badFlag, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SamToFastq(badFlag, filepath.Join(dir, "out2.fastq")); err == nil {
		t.Error("bad FLAG accepted")
	}
}

func TestMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := SamToFastq(filepath.Join(dir, "nope.sam"), filepath.Join(dir, "o")); err == nil {
		t.Error("missing SAM accepted")
	}
	if _, err := BamToSam(filepath.Join(dir, "nope.bam"), filepath.Join(dir, "o")); err == nil {
		t.Error("missing BAM accepted")
	}
}

func BenchmarkSamToFastq(b *testing.B) {
	samPath, _ := writeDataset(b, 2000)
	out := filepath.Join(b.TempDir(), "out.fastq")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SamToFastq(samPath, out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnwritableOutput(t *testing.T) {
	samPath, bamPath := writeDataset(t, 10)
	bad := filepath.Join(t.TempDir(), "missing", "out")
	if _, err := SamToFastq(samPath, bad); err == nil {
		t.Error("SamToFastq wrote into a missing directory")
	}
	if _, err := BamToSam(bamPath, bad); err == nil {
		t.Error("BamToSam wrote into a missing directory")
	}
}

func TestBamToSamRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "garbage.bam")
	if err := os.WriteFile(bad, []byte("not a bam"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BamToSam(bad, filepath.Join(dir, "o.sam")); err == nil {
		t.Error("garbage BAM accepted")
	}
}

func TestSamToFastqSkipsHeaderAndSecondary(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "h.sam")
	content := "@SQ\tSN:chr1\tLN:100\n" +
		"r1\t0\tchr1\t1\t30\t4M\t*\t0\t0\tACGT\tIIII\n" +
		"r2\t256\tchr1\t5\t0\t4M\t*\t0\t0\tACGT\tIIII\n" // secondary: skipped
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "o.fastq")
	stats, err := SamToFastq(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Errorf("Records = %d", stats.Records)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "@"); got != 1 {
		t.Errorf("FASTQ entries = %d, want 1 (secondary skipped)", got)
	}
}
