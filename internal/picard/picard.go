// Package picard is the sequential baseline converter of Table I: a
// faithful stand-in for the Picard toolkit (SamToFastq, "view"-style
// BAM→SAM) written the way a conventional record-object toolkit is
// written — every line is split into a fresh field slice, every record
// becomes a freshly allocated object, and output goes through the
// formatting layer. It is deliberately competitive-but-conventional: the
// paper's claim is not that its converters dominate Picard sequentially,
// only that they are close while also parallelising.
package picard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"parseq/internal/bam"
	"parseq/internal/sam"
)

// Stats reports one baseline conversion.
type Stats struct {
	Records  int64
	BytesOut int64
	Duration time.Duration
}

// samRecord is the baseline's own record object, built with per-field
// allocation the way SAM-JDK materialises SAMRecord.
type samRecord struct {
	fields []string // the 11 mandatory columns
	tags   []string
}

func parseLine(line string) (*samRecord, error) {
	cols := strings.Split(line, "\t")
	if len(cols) < 11 {
		return nil, fmt.Errorf("picard: %d columns in alignment line", len(cols))
	}
	return &samRecord{fields: cols[:11], tags: cols[11:]}, nil
}

func (r *samRecord) qname() string { return r.fields[0] }
func (r *samRecord) seq() string   { return r.fields[9] }
func (r *samRecord) qual() string  { return r.fields[10] }

func (r *samRecord) flag() (int, error) {
	return strconv.Atoi(r.fields[1])
}

// SamToFastq converts a SAM file to FASTQ sequentially, mirroring
// Picard's SamToFastq semantics: primary alignments only, reverse-strand
// reads restored to read orientation, mate suffixes on paired reads.
func SamToFastq(samPath, outPath string) (Stats, error) {
	var stats Stats
	start := time.Now()
	in, err := os.Open(samPath)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return stats, err
	}
	bw := bufio.NewWriter(out)

	scan := bufio.NewScanner(in)
	scan.Buffer(make([]byte, 256<<10), 4<<20)
	for scan.Scan() {
		line := scan.Text()
		if line == "" || line[0] == '@' {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			out.Close()
			return stats, err
		}
		stats.Records++
		flag, err := rec.flag()
		if err != nil {
			out.Close()
			return stats, fmt.Errorf("picard: bad FLAG in %q", line)
		}
		n, err := writeFastqRecord(bw, rec.qname(), rec.seq(), rec.qual(), sam.Flag(flag))
		if err != nil {
			out.Close()
			return stats, err
		}
		stats.BytesOut += int64(n)
	}
	if err := scan.Err(); err != nil {
		out.Close()
		return stats, err
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return stats, err
	}
	if err := out.Close(); err != nil {
		return stats, err
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

func writeFastqRecord(w io.Writer, qname, seq, qual string, flag sam.Flag) (int, error) {
	if !flag.Primary() || seq == "*" {
		return 0, nil
	}
	suffix := ""
	switch {
	case flag.Paired() && flag.Read1():
		suffix = "/1"
	case flag.Paired() && flag.Read2():
		suffix = "/2"
	}
	if flag.Reverse() {
		seq = sam.ReverseComplement(seq)
		if qual != "*" {
			qual = sam.Reverse(qual)
		}
	}
	if qual == "*" {
		qual = strings.Repeat("!", len(seq))
	}
	return fmt.Fprintf(w, "@%s%s\n%s\n+\n%s\n", qname, suffix, seq, qual)
}

// BamToSam converts a BAM file to SAM text sequentially, mirroring the
// Picard/samtools "view -h" path: direct record decoding (no intermediate
// library-object adaptation) feeding a text formatter.
func BamToSam(bamPath, outPath string) (Stats, error) {
	var stats Stats
	start := time.Now()
	in, err := os.Open(bamPath)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	br, err := bam.NewReader(in)
	if err != nil {
		return stats, err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return stats, err
	}
	bw := bufio.NewWriterSize(out, 256<<10)
	if _, err := bw.WriteString(br.Header().String()); err != nil {
		out.Close()
		return stats, err
	}
	var rec sam.Record
	for {
		if err := br.ReadInto(&rec); err == io.EOF {
			break
		} else if err != nil {
			out.Close()
			return stats, err
		}
		stats.Records++
		line := rec.String()
		if _, err := bw.WriteString(line); err != nil {
			out.Close()
			return stats, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			out.Close()
			return stats, err
		}
		stats.BytesOut += int64(len(line)) + 1
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return stats, err
	}
	if err := out.Close(); err != nil {
		return stats, err
	}
	stats.Duration = time.Since(start)
	return stats, nil
}
