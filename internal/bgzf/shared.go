// Process-wide shared deflate pool. A conversion run opens many
// short-lived BGZF writers — one BAM shard per rank, one spill run per
// sorted chunk — and giving each its own worker pool multiplies
// goroutines while leaving most of them idle. SharedPool keeps one warm
// pool the writers attach to (parpipe.NewOnPool), and sizes it from
// measured throughput: an EWMA of the bytes/s one worker achieves over
// recent blocks against the windowed demand across all attached
// streams, rather than CPU count alone.

package bgzf

import (
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"parseq/internal/obs"
	"parseq/internal/parpipe"
)

var (
	sharedOnce  sync.Once
	sharedPool  *parpipe.Pool
	sharedSizer *poolSizer
)

// SharedPool returns the process-wide deflate worker pool, created on
// first use with AutoWorkers() workers and a ceiling of GOMAXPROCS.
// The pool lives for the process; writers attach and detach freely.
func SharedPool() *parpipe.Pool {
	sharedOnce.Do(func() {
		max := runtime.GOMAXPROCS(0)
		if max < 1 {
			max = 1
		}
		sharedPool = parpipe.NewPool(AutoWorkers(), max, 4*max)
		sharedSizer = newPoolSizer(sharedPool)
	})
	return sharedPool
}

// NewSharedParallelWriter returns a parallel BGZF writer whose deflate
// jobs run on SharedPool instead of a private worker pool. Output
// bytes, virtual offsets and error behaviour are identical to
// NewParallelWriter's; only the execution substrate differs, so the
// many short-lived writers a converter rank opens stop paying a pool
// start/stop per stream. Each compressed block also feeds the shared
// pool's throughput sizer.
func NewSharedParallelWriter(w io.Writer) *ParallelWriter {
	pool := SharedPool()
	pw := newParallelWriter(w, -1, MaxPayload)
	pw.sizer = sharedSizer
	pw.pipe = parpipe.NewOnPool(pool, pipeDepth(pool.Max()), pw.compress, obs.Default(), "bgzf.deflate")
	go pw.drain()
	return pw
}

// ObserveSharedDeflate feeds one deflate job that ran on SharedPool but
// outside the BGZF writers — the BAMZ block compressor — into the
// pool's throughput sizer: n payload bytes compressed in d of worker
// wall time. Every deflate consumer of the shared pool contributes to
// the same demand window, so the pool sizes for the true aggregate
// load (and the bgzf.shared_pool.throughput gauge the admission-control
// plan reads stays honest).
func ObserveSharedDeflate(n int, d time.Duration) {
	SharedPool() // force sharedSizer initialisation
	sharedSizer.observe(n, d)
}

const (
	sizerAlpha  = 0.2 // EWMA smoothing for per-worker throughput
	resizeEvery = 32  // blocks between resize decisions
)

// poolSizer adapts the shared pool's worker count to measured load.
// Every compressed block contributes its payload size and wall time,
// maintaining an EWMA of the bytes/s a single worker achieves and a
// sliding window of demand bytes/s across all attached writers. Every
// resizeEvery blocks the pool is resized to ceil(demand/perWorker),
// bumped while the queue is outrunning the workers, and clamped by the
// pool to [1, GOMAXPROCS].
type poolSizer struct {
	pool *parpipe.Pool

	mu        sync.Mutex
	perWorker float64 // EWMA of one worker's bytes/s
	winBytes  int64   // payload bytes compressed since winStart
	winStart  time.Time
	blocks    int
}

func newPoolSizer(p *parpipe.Pool) *poolSizer {
	return &poolSizer{pool: p, winStart: time.Now()}
}

// observe accounts one compressed block of n payload bytes that took d
// of worker wall time, and resizes the pool when a window completes.
func (s *poolSizer) observe(n int, d time.Duration) {
	if n <= 0 {
		return
	}
	secs := d.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	bps := float64(n) / secs
	s.mu.Lock()
	if s.perWorker == 0 {
		s.perWorker = bps
	} else {
		s.perWorker += sizerAlpha * (bps - s.perWorker)
	}
	s.winBytes += int64(n)
	s.blocks++
	if s.blocks < resizeEvery {
		s.mu.Unlock()
		return
	}
	demand := 0.0
	if elapsed := time.Since(s.winStart).Seconds(); elapsed > 0 {
		demand = float64(s.winBytes) / elapsed
	}
	per := s.perWorker
	s.blocks = 0
	s.winBytes = 0
	s.winStart = time.Now()
	s.mu.Unlock()

	need := 1
	if per > 0 && demand > 0 {
		need = int(math.Ceil(demand / per))
	}
	if s.pool.Backlog() > s.pool.Workers() && need <= s.pool.Workers() {
		// The queue is outrunning the workers regardless of what the
		// window average says; grow by at least one.
		need = s.pool.Workers() + 1
	}
	got := s.pool.SetWorkers(need)
	if reg := obs.Default(); reg != nil {
		reg.Gauge("bgzf.shared.workers").Set(int64(got))
		// The measured per-worker EWMA bytes/s behind the sizing
		// decision — the observability half of admission control: an
		// operator (or a future scheduler) can see the throughput the
		// pool believes one worker delivers.
		reg.Gauge("bgzf.shared_pool.throughput").Set(int64(per))
	}
}
