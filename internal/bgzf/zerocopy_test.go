package bgzf

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// blockSources builds a sequential and a parallel reader over the same
// stream, so every zero-copy test runs against both BlockSource faces.
func blockSources(raw []byte) map[string]func() BlockSource {
	return map[string]func() BlockSource{
		"sequential": func() BlockSource { return NewReader(bytes.NewReader(raw)) },
		"parallel":   func() BlockSource { return NewParallelReader(bytes.NewReader(raw), 3) },
	}
}

func closeSource(t *testing.T, src BlockSource) {
	t.Helper()
	if c, ok := src.(io.Closer); ok {
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// Draining a stream through NextBlock must yield exactly the bytes Read
// yields, and every returned virtual offset must resolve — Seek there on
// a fresh reader and the same bytes follow.
func TestNextBlockConcatMatchesRead(t *testing.T) {
	data := testData(5*MaxPayload+321, 51)
	raw := compress(t, data, 4096)
	for name, open := range blockSources(raw) {
		t.Run(name, func(t *testing.T) {
			src := open()
			defer closeSource(t, src)
			var got []byte
			type blockAt struct {
				off  VOffset
				size int
			}
			var blocks []blockAt
			for {
				blk, off, err := src.NextBlock()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("NextBlock: %v", err)
				}
				if len(blk) == 0 {
					t.Fatal("NextBlock returned an empty block without EOF")
				}
				blocks = append(blocks, blockAt{off, len(blk)})
				got = append(got, blk...)
				src.Recycle(blk)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("NextBlock concat = %d bytes, differs from input (%d bytes)", len(got), len(data))
			}
			// Each recorded offset must point at the bytes that followed it.
			sr := NewReader(bytes.NewReader(raw))
			pos := 0
			for i, b := range blocks {
				if err := sr.Seek(b.off); err != nil {
					t.Fatalf("Seek(block %d @ %v): %v", i, b.off, err)
				}
				buf := make([]byte, b.size)
				if _, err := io.ReadFull(sr, buf); err != nil {
					t.Fatalf("read at block %d: %v", i, err)
				}
				if !bytes.Equal(buf, data[pos:pos+b.size]) {
					t.Fatalf("block %d voffset %v resolves to wrong bytes", i, b.off)
				}
				pos += b.size
			}
		})
	}
}

// NextBlock after a partial Read returns the unread remainder of the
// block, with the intra-block offset baked into the virtual offset.
func TestNextBlockAfterPartialRead(t *testing.T) {
	data := testData(2*MaxPayload, 53)
	raw := compress(t, data, 8192)
	const skip = 1000
	for name, open := range blockSources(raw) {
		t.Run(name, func(t *testing.T) {
			src := open()
			defer closeSource(t, src)
			r := src.(io.Reader)
			head := make([]byte, skip)
			if _, err := io.ReadFull(r, head); err != nil {
				t.Fatal(err)
			}
			blk, off, err := src.NextBlock()
			if err != nil {
				t.Fatalf("NextBlock: %v", err)
			}
			if off.Intra() != skip%8192 {
				t.Errorf("intra offset = %d, want %d", off.Intra(), skip%8192)
			}
			got := append(append([]byte{}, head...), blk...)
			rest, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rest...)
			if !bytes.Equal(got, data) {
				t.Error("partial Read + NextBlock + Read does not reassemble the stream")
			}
		})
	}
}

// Interleaving Read and NextBlock must keep Offset consistent with the
// sequential reader at every step.
func TestNextBlockOffsetParity(t *testing.T) {
	data := testData(3*MaxPayload+99, 55)
	raw := compress(t, data, 2048)
	seq := NewReader(bytes.NewReader(raw))
	par := NewParallelReader(bytes.NewReader(raw), 2)
	defer par.Close()
	for step := 0; ; step++ {
		if so, po := seq.Offset(), par.Offset(); so != po {
			t.Fatalf("step %d: offsets diverge (%v vs %v)", step, so, po)
		}
		sb, so, serr := seq.NextBlock()
		pb, po, perr := par.NextBlock()
		if (serr == nil) != (perr == nil) {
			t.Fatalf("step %d: NextBlock err %v vs %v", step, serr, perr)
		}
		if serr != nil {
			if serr != io.EOF || perr != io.EOF {
				t.Fatalf("step %d: terminal errs %v vs %v", step, serr, perr)
			}
			break
		}
		if so != po {
			t.Fatalf("step %d: NextBlock offsets %v vs %v", step, so, po)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("step %d: block contents differ", step)
		}
		seq.Recycle(sb)
		par.Recycle(pb)
	}
}

// Codec errors must propagate through NextBlock exactly as through Read.
func TestNextBlockErrorPropagation(t *testing.T) {
	data := testData(3*MaxPayload, 57)
	whole := compress(t, data, 4096)

	truncated := whole[:len(whole)-len(eofMarker)]
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-len(eofMarker)-8] ^= 0xff

	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"truncated", truncated, ErrNoEOFMarker},
		{"corrupt-crc", corrupt, ErrCorrupt},
	}
	for _, tc := range cases {
		for name, open := range blockSources(tc.raw) {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				src := open()
				defer closeSource(t, src)
				var err error
				for {
					var blk []byte
					blk, _, err = src.NextBlock()
					if err != nil {
						break
					}
					src.Recycle(blk)
				}
				if !errors.Is(err, tc.want) {
					t.Errorf("terminal NextBlock err = %v, want %v", err, tc.want)
				}
			})
		}
	}
}

// Seek-then-NextBlock regression: after seeking to a recorded virtual
// offset — block-aligned or intra-block — NextBlock must return that
// offset and the bytes written there. The parallel reader restarts its
// prefetch pipeline on every Seek; iterating the offsets out of order
// exercises the drain-and-restart path repeatedly without leaking
// readahead buffers (the -race CI run guards the bookkeeping).
func TestSeekThenNextBlock(t *testing.T) {
	// Flush between chunks so every chunk starts a block; record both the
	// block-aligned offset and an intra-block offset inside each chunk.
	var buf bytes.Buffer
	w := NewWriterLevel(&buf, -1, 0)
	chunks := [][]byte{
		[]byte("alpha block payload 00"),
		[]byte("beta block payload 111"),
		[]byte("gamma block payload 22"),
		[]byte("delta block payload 33"),
	}
	var offsets []VOffset
	for _, c := range chunks {
		offsets = append(offsets, w.Offset())
		if _, err := w.Write(c); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	const intra = 6
	for name, open := range blockSources(raw) {
		t.Run(name, func(t *testing.T) {
			src := open()
			defer closeSource(t, src)
			sk := src.(interface{ Seek(VOffset) error })
			for round := 0; round < 3; round++ {
				for i := len(chunks) - 1; i >= 0; i-- {
					if err := sk.Seek(offsets[i]); err != nil {
						t.Fatalf("round %d: Seek(%v): %v", round, offsets[i], err)
					}
					blk, off, err := src.NextBlock()
					if err != nil {
						t.Fatalf("round %d: NextBlock after Seek: %v", round, err)
					}
					if off != offsets[i] {
						t.Fatalf("round %d chunk %d: NextBlock off = %v, want %v", round, i, off, offsets[i])
					}
					if !bytes.HasPrefix(blk, chunks[i]) {
						t.Fatalf("round %d chunk %d: block %q does not start with %q", round, i, blk, chunks[i])
					}
					src.Recycle(blk)

					// Intra-block: seek into the middle of the same chunk.
					at := MakeVOffset(offsets[i].Block(), intra)
					if err := sk.Seek(at); err != nil {
						t.Fatalf("round %d: Seek(%v): %v", round, at, err)
					}
					blk, off, err = src.NextBlock()
					if err != nil {
						t.Fatalf("round %d: NextBlock after intra Seek: %v", round, err)
					}
					if off != at {
						t.Fatalf("round %d chunk %d: intra off = %v, want %v", round, i, off, at)
					}
					if !bytes.HasPrefix(blk, chunks[i][intra:]) {
						t.Fatalf("round %d chunk %d: intra block %q, want prefix %q", round, i, blk, chunks[i][intra:])
					}
					src.Recycle(blk)
				}
			}
		})
	}
}
