// Parallel BGZF codec. BGZF blocks are independent gzip members, so the
// expensive halves of the codec — deflate on the write side, inflate +
// CRC on the read side — parallelise block-for-block. Both directions
// use the same shape: a bounded worker pool fed in stream order, with
// results reassembled in the same order (internal/parpipe), so the bytes
// on disk, the virtual offsets, and the first error surfaced are all
// bit-identical to the sequential codec.

package bgzf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parseq/internal/obs"
	"parseq/internal/parpipe"
)

// codecObs bundles one direction's telemetry handles: block and byte
// throughput counters plus a per-block latency histogram. A nil codecObs
// keeps the codec's hot path free of time.Now calls.
type codecObs struct {
	blocks   *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	latency  *obs.Histogram
}

// newCodecObs registers the bgzf.<dir>.* metrics, or returns nil when
// telemetry is disabled.
func newCodecObs(reg *obs.Registry, dir string) *codecObs {
	if reg == nil {
		return nil
	}
	prefix := "bgzf." + dir
	return &codecObs{
		blocks:   reg.Counter(prefix + ".blocks"),
		bytesIn:  reg.Counter(prefix + ".bytes_in"),
		bytesOut: reg.Counter(prefix + ".bytes_out"),
		latency:  reg.Histogram(prefix + ".latency_ns"),
	}
}

// maxAutoWorkers caps the adaptive default. Past ~8 workers a BGZF
// pool saturates memory bandwidth before CPU, and a process commonly
// runs several pools at once (reader, writer, record decoder); an
// explicit worker count still goes uncapped.
const maxAutoWorkers = 8

// gomaxprocs is runtime.GOMAXPROCS, indirected so tests can pin the
// apparent CPU count when exercising the adaptive worker default.
var gomaxprocs = runtime.GOMAXPROCS

// resolveWorkers applies the worker-count convention shared by the
// parallel codec constructors: n > 0 is taken as given, anything else
// means one worker per available CPU, capped at maxAutoWorkers.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	if p := gomaxprocs(0); p < maxAutoWorkers {
		return p
	}
	return maxAutoWorkers
}

// AutoWorkers is the adaptive default worker count used across the
// tree when a codec/decoder knob is left at zero: one worker per
// available CPU, capped so stacked pools do not oversubscribe the
// machine. On a single-CPU host it resolves to 1, which every
// constructor treats as the sequential path.
func AutoWorkers() int { return resolveWorkers(0) }

// pipeDepth bounds in-flight blocks per pipeline: enough read-ahead to
// keep every worker busy across scheduling hiccups, small enough to cap
// memory at a few MiB of 64 KiB blocks.
func pipeDepth(workers int) int { return 4 * workers }

// wblock is one write-side unit of work: a buffered payload on the way
// in, a wrapped BGZF member on the way out.
type wblock struct {
	payload []byte // uncompressed payload (owned by the block)
	block   []byte // compressed, wrapped member
	err     error
}

// ParallelWriter compresses a stream into BGZF blocks on a bounded
// worker pool. Blocks are deflated concurrently and written to the
// underlying writer in submission order, so the output is byte-identical
// to the sequential Writer's at every compression level. The writer
// itself is not safe for concurrent Write calls — like the sequential
// codec it serves one producing goroutine, parallelising underneath.
type ParallelWriter struct {
	w       io.Writer
	level   int
	payload int

	buf  []byte // pending uncompressed bytes, ≤ payload
	pipe *parpipe.Pipe[*wblock]

	blkPool sync.Pool // *wblock, recycled payload+block buffers
	defPool sync.Pool // *deflator, one per active worker

	mu        sync.Mutex
	cond      *sync.Cond
	unsized   int   // submitted blocks not yet size-accounted
	submitted int64 // blocks handed to the pipeline
	consumed  int64 // blocks the drain goroutine has retired
	offset    int64 // compressed bytes of every sized block
	werr      error // first error in stream order
	closed    bool

	drained chan struct{}

	met   *codecObs  // nil when telemetry is disabled
	sizer *poolSizer // non-nil on SharedPool-attached writers
}

// NewParallelWriter returns a parallel BGZF writer using the default
// compression level and maximum per-block payload. workers ≤ 0 selects
// one worker per CPU.
func NewParallelWriter(w io.Writer, workers int) *ParallelWriter {
	return NewParallelWriterLevel(w, -1, MaxPayload, workers)
}

// NewParallelWriterLevel is NewWriterLevel with a worker pool: explicit
// flate level, per-block payload size, and worker count (≤ 0 means one
// per CPU).
func NewParallelWriterLevel(w io.Writer, level, payload, workers int) *ParallelWriter {
	workers = resolveWorkers(workers)
	pw := newParallelWriter(w, level, payload)
	pw.pipe = parpipe.NewObserved(workers, pipeDepth(workers), pw.compress, obs.Default(), "bgzf.deflate")
	go pw.drain()
	return pw
}

// newParallelWriter builds the writer body shared by the private-pool
// and SharedPool constructors; the caller attaches the pipe and starts
// the drain goroutine.
func newParallelWriter(w io.Writer, level, payload int) *ParallelWriter {
	level, payload = clampLevelPayload(level, payload)
	pw := &ParallelWriter{
		w:       w,
		level:   level,
		payload: payload,
		buf:     make([]byte, 0, payload),
		drained: make(chan struct{}),
	}
	pw.cond = sync.NewCond(&pw.mu)
	pw.blkPool.New = func() any { return &wblock{} }
	pw.defPool.New = func() any { return &deflator{} }
	pw.met = newCodecObs(obs.Default(), "deflate")
	return pw
}

// compress is the worker function: wrap one payload into a BGZF member.
// The compressed size is accounted as soon as it is known so Offset can
// resolve without waiting for the block to reach the underlying writer.
func (w *ParallelWriter) compress(b *wblock) {
	var t0 time.Time
	if w.met != nil || w.sizer != nil {
		t0 = time.Now()
	}
	d := w.defPool.Get().(*deflator)
	b.block, b.err = d.wrap(b.block[:0], b.payload, w.level)
	w.defPool.Put(d)
	if w.met != nil {
		w.met.latency.Observe(time.Since(t0).Nanoseconds())
		w.met.blocks.Add(1)
		w.met.bytesIn.Add(int64(len(b.payload)))
		if b.err == nil {
			w.met.bytesOut.Add(int64(len(b.block)))
		}
	}
	if w.sizer != nil {
		w.sizer.observe(len(b.payload), time.Since(t0))
	}
	w.mu.Lock()
	if b.err == nil {
		w.offset += int64(len(b.block))
	}
	w.unsized--
	w.cond.Broadcast()
	w.mu.Unlock()
}

// drain retires compressed blocks in submission order, writing them to
// the underlying writer. After the first error — a failed compression or
// a failed write, whichever comes first in *stream* order — remaining
// blocks are consumed and discarded so the pipeline always empties.
func (w *ParallelWriter) drain() {
	defer close(w.drained)
	for b := range w.pipe.Out() {
		w.mu.Lock()
		err := w.werr
		w.mu.Unlock()
		if err == nil {
			err = b.err
			if err == nil {
				_, err = w.w.Write(b.block)
			}
			if err != nil {
				w.mu.Lock()
				w.werr = err
				w.mu.Unlock()
			}
		}
		b.payload = b.payload[:0]
		b.err = nil
		w.blkPool.Put(b)
		w.mu.Lock()
		w.consumed++
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// errNow snapshots the sticky error.
func (w *ParallelWriter) errNow() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

// submit hands the full buffer to the pipeline, swapping in a recycled
// buffer so the hot path never copies payload bytes.
func (w *ParallelWriter) submit() {
	blk := w.blkPool.Get().(*wblock)
	blk.payload, w.buf = w.buf, blk.payload[:0]
	if cap(w.buf) < w.payload {
		w.buf = make([]byte, 0, w.payload)
	}
	w.mu.Lock()
	w.unsized++
	w.submitted++
	w.mu.Unlock()
	w.pipe.Submit(blk)
}

// Offset returns the virtual offset the next written byte will have. It
// waits until every in-flight block's compressed size is known — but not
// for the blocks to be written — so the value matches the sequential
// writer's exactly.
func (w *ParallelWriter) Offset() VOffset {
	w.mu.Lock()
	for w.unsized > 0 {
		w.cond.Wait()
	}
	off := w.offset
	w.mu.Unlock()
	return MakeVOffset(off, len(w.buf))
}

// Write buffers p, handing completed payloads to the worker pool. Like
// the sequential writer it flushes lazily — a buffer is only submitted
// when the next byte needs its space — so block boundaries and Offset
// values agree between the two codecs for identical Write sequences.
func (w *ParallelWriter) Write(p []byte) (int, error) {
	if err := w.errNow(); err != nil {
		return 0, err
	}
	n := len(p)
	for len(p) > 0 {
		space := w.payload - len(w.buf)
		if space == 0 {
			w.submit()
			if err := w.errNow(); err != nil {
				return n - len(p), err
			}
			space = w.payload
		}
		if space > len(p) {
			space = len(p)
		}
		w.buf = append(w.buf, p[:space]...)
		p = p[space:]
	}
	return n, nil
}

// Flush submits any buffered bytes as one block and waits for every
// submitted block to reach the underlying writer.
func (w *ParallelWriter) Flush() error {
	if err := w.errNow(); err != nil {
		return err
	}
	if len(w.buf) > 0 {
		w.submit()
	}
	w.mu.Lock()
	for w.consumed < w.submitted {
		w.cond.Wait()
	}
	err := w.werr
	w.mu.Unlock()
	return err
}

// Close flushes pending data, shuts the worker pool down, and writes the
// EOF marker.
func (w *ParallelWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.werr
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	err := w.Flush()
	w.pipe.Close()
	<-w.drained
	w.mu.Lock()
	if err == nil {
		err = w.werr
	}
	if err == nil {
		if _, werr := w.w.Write(eofMarker); werr != nil {
			err = werr
			w.werr = werr
		} else {
			w.offset += int64(len(eofMarker))
		}
	}
	if w.werr == nil {
		w.werr = errors.New("bgzf: writer closed")
	}
	w.mu.Unlock()
	return err
}

// rblock is one read-side unit of work: a raw member on the way in, the
// verified uncompressed block on the way out.
type rblock struct {
	start int64  // compressed file offset of the member
	next  int64  // compressed file offset of the following member
	raw   []byte // compressed data + footer (owned by the block)
	data  []byte // decompressed payload (detachable via NextBlock)
	err   error
}

// ParallelReader decompresses a BGZF stream with block read-ahead: a
// scan goroutine walks the compressed members sequentially (cheap — the
// BC subfield gives each block's size without inflating it) and a worker
// pool inflates and CRC-checks them concurrently. Blocks are delivered
// in file order, so Read, Offset and error behaviour are identical to
// the sequential Reader. Seek drains the pipeline and restarts it at the
// target virtual offset, preserving the partial-conversion path.
//
// A ParallelReader owns goroutines; call Close when abandoning it before
// EOF, or the read-ahead pipeline is left parked. Like the sequential
// codec it serves one consuming goroutine.
type ParallelReader struct {
	r       io.Reader
	rs      io.ReadSeeker // non-nil when seeking is possible
	workers int

	pipe *parpipe.Pipe[*rblock]
	stop *atomic.Bool // current scan generation's cancel flag

	cur        *rblock
	pos        int
	blockStart int64
	err        error

	blkPool  sync.Pool // *rblock, recycled raw buffers
	dataPool sync.Pool // []byte inflated-payload buffers (NextBlock recycling)
	infPool  sync.Pool // *inflater, one per active worker

	reg *obs.Registry // registry at construction time (may be nil)
	met *codecObs     // nil when telemetry is disabled
}

// NewParallelReader wraps r with a pool of `workers` inflate workers
// (≤ 0 means one per CPU). When r is an io.ReadSeeker the returned
// reader supports Seek.
func NewParallelReader(r io.Reader, workers int) *ParallelReader {
	pr := &ParallelReader{r: r, workers: resolveWorkers(workers)}
	if rs, ok := r.(io.ReadSeeker); ok {
		pr.rs = rs
	}
	pr.blkPool.New = func() any { return &rblock{} }
	pr.infPool.New = func() any { return &inflater{} }
	pr.reg = obs.Default()
	pr.met = newCodecObs(pr.reg, "inflate")
	pr.start(0)
	return pr
}

// start launches a scan goroutine + worker pool generation beginning at
// compressed offset `at`.
func (r *ParallelReader) start(at int64) {
	stop := &atomic.Bool{}
	pipe := parpipe.NewObserved(r.workers, pipeDepth(r.workers), r.inflateBlock, r.reg, "bgzf.inflate")
	r.stop = stop
	r.pipe = pipe
	go r.scanLoop(pipe, stop, at)
}

// scanLoop reads raw members in file order and feeds the worker pool.
// The raw bytes come through a prefetcher, so the file read of the next
// chunk overlaps with member parsing and inflation. Empty members are
// submitted too — the workers verify their CRCs just as the sequential
// codec does — but EOF-marker bookkeeping happens here because it
// depends on member order. The loop ends by submitting a sentinel block
// carrying io.EOF, ErrNoEOFMarker, or the scan error.
//
// Defer order matters for Seek: the prefetcher is joined *before* the
// pipeline closes, so once drainPipeline sees the output channel close,
// no goroutine of this generation can still touch the underlying
// reader and Seek may reposition it.
func (r *ParallelReader) scanLoop(pipe *parpipe.Pipe[*rblock], stop *atomic.Bool, at int64) {
	defer pipe.Close()
	pf := newPrefetcher(r.r, r.reg)
	defer pf.Close()
	scan := blockScanner{r: pf}
	next := at
	sawEOF := false
	for !stop.Load() {
		blk := r.blkPool.Get().(*rblock)
		blk.start = next
		blk.data = r.dataBuf()
		blk.err = nil
		raw, bsize, err := scan.next(blk.raw[:0])
		blk.raw = raw
		if err == io.EOF {
			if !sawEOF {
				err = ErrNoEOFMarker
			}
			blk.err = err
			pipe.Submit(blk)
			return
		}
		if err != nil {
			blk.err = err
			pipe.Submit(blk)
			return
		}
		next += int64(bsize)
		blk.next = next
		// The footer's ISIZE tells us whether this member is empty without
		// inflating it; a trailing empty member is the EOF marker.
		sawEOF = binary.LittleEndian.Uint32(raw[len(raw)-4:]) == 0
		pipe.Submit(blk)
	}
}

// dataBuf draws an inflated-payload buffer from the recycle pool.
func (r *ParallelReader) dataBuf() []byte {
	if v := r.dataPool.Get(); v != nil {
		return v.([]byte)
	}
	return nil
}

// inflateBlock is the worker function: decompress and CRC-check one
// member. Sentinel blocks (err already set) pass through untouched.
func (r *ParallelReader) inflateBlock(blk *rblock) {
	if blk.err != nil {
		return
	}
	var t0 time.Time
	if r.met != nil {
		t0 = time.Now()
	}
	inf := r.infPool.Get().(*inflater)
	blk.data, blk.err = inf.inflate(blk.data[:0], blk.raw)
	r.infPool.Put(inf)
	if r.met != nil {
		r.met.latency.Observe(time.Since(t0).Nanoseconds())
		r.met.blocks.Add(1)
		r.met.bytesIn.Add(int64(len(blk.raw)))
		if blk.err == nil {
			r.met.bytesOut.Add(int64(len(blk.data)))
		}
	}
}

// recycle returns a finished block's buffers to their pools. The data
// buffer travels separately from the rblock because NextBlock detaches
// it into the caller's hands.
func (r *ParallelReader) recycle(blk *rblock) {
	if blk.data != nil {
		r.dataPool.Put(blk.data[:0])
		blk.data = nil
	}
	blk.err = nil
	r.blkPool.Put(blk)
}

// nextBlock advances r.cur to the next delivered block.
func (r *ParallelReader) nextBlock() error {
	if r.pipe == nil {
		return errors.New("bgzf: reader not positioned (a Seek failed); Seek again")
	}
	blk, ok := <-r.pipe.Out()
	if !ok {
		// The scan loop always submits a sentinel before closing, so a bare
		// close only happens after the sentinel was already consumed.
		return io.EOF
	}
	if r.cur != nil {
		r.recycle(r.cur)
		r.cur = nil
	}
	if blk.err != nil {
		err := blk.err
		r.recycle(blk)
		return err
	}
	r.cur = blk
	r.pos = 0
	r.blockStart = blk.start
	return nil
}

// Offset returns the virtual offset of the next byte Read will return.
func (r *ParallelReader) Offset() VOffset { return MakeVOffset(r.blockStart, r.pos) }

// NextBlock implements BlockSource: the unread remainder of the current
// delivered block — or the next non-empty one — is detached from the
// pipeline and handed to the caller to parse in place. This is the
// zero-copy fast path: Read memcpy's every inflated byte a second time,
// NextBlock hands over the worker's own buffer.
func (r *ParallelReader) NextBlock() ([]byte, VOffset, error) {
	if r.err != nil {
		return nil, 0, r.err
	}
	for {
		if r.cur != nil && r.pos < len(r.cur.data) {
			blk := r.cur
			data := blk.data[r.pos:]
			off := MakeVOffset(blk.start, r.pos)
			blk.data = nil // detached: the caller owns the bytes now
			r.cur = nil
			r.blockStart = blk.next
			r.pos = 0
			r.recycle(blk)
			return data, off, nil
		}
		if err := r.nextBlock(); err != nil {
			r.err = err
			return nil, 0, err
		}
	}
}

// Recycle implements BlockSource, returning a NextBlock buffer to the
// inflate workers' pool. Safe to call from a goroutine other than the
// consumer (the parallel BAM decoder recycles from its drain side).
func (r *ParallelReader) Recycle(b []byte) {
	if cap(b) > 0 {
		r.dataPool.Put(b[:0])
	}
}

// Read implements io.Reader over the decompressed stream.
func (r *ParallelReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	total := 0
	for len(p) > 0 {
		if r.cur == nil || r.pos == len(r.cur.data) {
			if err := r.nextBlock(); err != nil {
				r.err = err
				if total > 0 && err == io.EOF {
					return total, nil
				}
				return total, err
			}
			continue // empty (EOF-marker) blocks deliver no bytes
		}
		n := copy(p, r.cur.data[r.pos:])
		r.pos += n
		p = p[n:]
		total += n
	}
	return total, nil
}

// Seek positions the reader at a virtual offset: the read-ahead
// pipeline is drained — which joins the file prefetcher, so no stale
// readahead buffer or in-flight read survives — the underlying reader
// is repositioned at the target block, and a fresh pipeline started
// there. It requires the underlying reader to be an io.ReadSeeker.
func (r *ParallelReader) Seek(v VOffset) error {
	if r.rs == nil {
		return errors.New("bgzf: underlying reader is not seekable")
	}
	r.drainPipeline()
	if _, err := r.rs.Seek(v.Block(), io.SeekStart); err != nil {
		// The stream position is unknown now; nextBlock reports the parked
		// state until a later Seek lands.
		return err
	}
	r.err = nil
	r.pos = 0
	r.blockStart = v.Block()
	r.start(v.Block())
	// Load the first non-empty block to validate the intra offset, exactly
	// as the sequential Seek does (its readBlock skips empty members).
	for {
		if err := r.nextBlock(); err != nil {
			r.err = err
			return err
		}
		if len(r.cur.data) > 0 {
			break
		}
	}
	if v.Intra() > len(r.cur.data) {
		return fmt.Errorf("%w: intra-block offset %d beyond block of %d bytes",
			ErrCorrupt, v.Intra(), len(r.cur.data))
	}
	r.pos = v.Intra()
	return nil
}

// drainPipeline cancels the scan loop and consumes every in-flight
// block, leaving no goroutine behind.
func (r *ParallelReader) drainPipeline() {
	if r.pipe == nil {
		return
	}
	r.stop.Store(true)
	if r.cur != nil {
		r.recycle(r.cur)
		r.cur = nil
	}
	for blk := range r.pipe.Out() {
		r.recycle(blk)
	}
	r.pipe = nil
}

// Close shuts the read-ahead pipeline down. The reader must not be used
// afterwards. Close is how a consumer abandons a stream mid-way without
// leaking the scan and worker goroutines.
func (r *ParallelReader) Close() error {
	r.drainPipeline()
	r.err = errors.New("bgzf: reader closed")
	return nil
}

// Interface conformance: both codecs are interchangeable block streams,
// with and without the zero-copy face.
var (
	_ BlockReader = (*Reader)(nil)
	_ BlockReader = (*ParallelReader)(nil)
	_ BlockSource = (*Reader)(nil)
	_ BlockSource = (*ParallelReader)(nil)
	_ BlockWriter = (*Writer)(nil)
	_ BlockWriter = (*ParallelWriter)(nil)
)
