// Async file readahead for the parallel BGZF reader. Without it the
// scan goroutine alternates between io.ReadFull on the underlying
// reader and handing members to the inflate pool, so every disk stall
// stops the whole pipeline. The prefetcher moves the raw reads onto a
// dedicated goroutine with a small ring of fixed-size buffers: the next
// chunk is (usually) already in memory when the scanner asks for it,
// overlapping file I/O with inflation the same way inflation already
// overlaps with consumption.

package bgzf

import (
	"io"

	"parseq/internal/obs"
)

const (
	// prefetchChunk is the size of one readahead buffer: ~8 compressed
	// blocks ahead, enough to hide disk latency, small enough that a
	// Seek discards at most a megabyte of readahead.
	prefetchChunk = 512 << 10
	// prefetchDepth double-buffers the readahead: one chunk being
	// consumed while the next is being filled.
	prefetchDepth = 2
)

// pchunk is one filled readahead buffer. err (if any) positions after
// the data it arrived with.
type pchunk struct {
	data []byte
	err  error
}

// prefetcher is an io.Reader that reads ahead of its consumer on a
// dedicated goroutine. One is created per scan generation; Close joins
// the fill goroutine, so once it returns the underlying reader has no
// in-flight Read and is safe to Seek.
type prefetcher struct {
	out  chan pchunk
	free chan []byte
	stop chan struct{}
	done chan struct{}

	cur []byte // chunk currently being consumed
	pos int
	err error // sticky, delivered after cur is drained

	chunks *obs.Counter // nil when telemetry is disabled
	bytes  *obs.Counter
}

// newPrefetcher starts reading ahead of src immediately.
func newPrefetcher(src io.Reader, reg *obs.Registry) *prefetcher {
	p := &prefetcher{
		out:  make(chan pchunk, prefetchDepth),
		free: make(chan []byte, prefetchDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg != nil {
		p.chunks = reg.Counter("bgzf.prefetch.chunks")
		p.bytes = reg.Counter("bgzf.prefetch.bytes")
	}
	for i := 0; i < prefetchDepth; i++ {
		p.free <- make([]byte, prefetchChunk)
	}
	go p.fill(src)
	return p
}

// fill reads fixed-size chunks ahead of the consumer until the stream
// ends, a read fails, or Close is called. A short final read is
// delivered together with io.EOF so the goroutine never performs a
// read whose result nobody will consume.
func (p *prefetcher) fill(src io.Reader) {
	defer close(p.done)
	for {
		var buf []byte
		select {
		case buf = <-p.free:
		case <-p.stop:
			return
		}
		n, err := io.ReadFull(src, buf)
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		if p.chunks != nil && n > 0 {
			p.chunks.Add(1)
			p.bytes.Add(int64(n))
		}
		select {
		case p.out <- pchunk{data: buf[:n], err: err}:
		case <-p.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// Read drains the readahead in order, recycling consumed buffers back
// to the fill goroutine.
func (p *prefetcher) Read(b []byte) (int, error) {
	for p.pos == len(p.cur) {
		if p.err != nil {
			return 0, p.err
		}
		if p.cur != nil {
			select {
			case p.free <- p.cur[:cap(p.cur)]:
			default: // filler already stopped; drop for the GC
			}
			p.cur = nil
		}
		c := <-p.out
		p.cur, p.pos, p.err = c.data, 0, c.err
	}
	n := copy(b, p.cur[p.pos:])
	p.pos += n
	return n, nil
}

// Close stops the readahead and joins the fill goroutine. Undelivered
// chunks are dropped; nothing is leaked and the underlying reader is
// idle when Close returns, so the caller may Seek it.
func (p *prefetcher) Close() {
	close(p.stop)
	for {
		select {
		case <-p.out: // unblock a filler parked on delivery
		case <-p.done:
			return
		}
	}
}
