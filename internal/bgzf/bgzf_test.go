package bgzf

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func compress(t testing.TB, data []byte, payload int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterLevel(&buf, -1, payload)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripSmall(t *testing.T) {
	data := []byte("hello, bgzf world")
	got, err := io.ReadAll(NewReader(bytes.NewReader(compress(t, data, 0))))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	raw := compress(t, nil, 0)
	if len(raw) != len(eofMarker) {
		t.Errorf("empty file = %d bytes, want just the EOF marker (%d)", len(raw), len(eofMarker))
	}
	got, err := io.ReadAll(NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes, want 0", len(got))
	}
}

func TestRoundTripMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 3*MaxPayload+777)
	for i := range data {
		data[i] = byte(rng.Intn(8)) // compressible
	}
	got, err := io.ReadAll(NewReader(bytes.NewReader(compress(t, data, 0))))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("multi-block round trip mismatch")
	}
}

func TestRoundTripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 2*MaxPayload)
	rng.Read(data)
	got, err := io.ReadAll(NewReader(bytes.NewReader(compress(t, data, 0))))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("incompressible round trip mismatch")
	}
}

func TestSmallPayloadBlocks(t *testing.T) {
	data := bytes.Repeat([]byte("ACGT"), 4096)
	raw := compress(t, data, 512)
	got, err := io.ReadAll(NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("small-payload round trip mismatch")
	}
}

func TestGzipCompatible(t *testing.T) {
	// Every BGZF file is a valid multi-member gzip file.
	data := bytes.Repeat([]byte("interop"), 40000)
	gz, err := gzip.NewReader(bytes.NewReader(compress(t, data, 0)))
	if err != nil {
		t.Fatalf("gzip.NewReader: %v", err)
	}
	got, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("gzip ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("gzip interop mismatch")
	}
}

func TestMissingEOFMarker(t *testing.T) {
	raw := compress(t, []byte("data"), 0)
	truncated := raw[:len(raw)-len(eofMarker)]
	_, err := io.ReadAll(NewReader(bytes.NewReader(truncated)))
	if !errors.Is(err, ErrNoEOFMarker) {
		t.Errorf("err = %v, want ErrNoEOFMarker", err)
	}
}

func TestHasEOFMarker(t *testing.T) {
	raw := compress(t, []byte("data"), 0)
	ok, err := HasEOFMarker(bytes.NewReader(raw))
	if err != nil || !ok {
		t.Errorf("HasEOFMarker = %v, %v; want true", ok, err)
	}
	ok, err = HasEOFMarker(bytes.NewReader(raw[:len(raw)-1]))
	if err != nil || ok {
		t.Errorf("HasEOFMarker(truncated) = %v, %v; want false", ok, err)
	}
	ok, err = HasEOFMarker(bytes.NewReader(nil))
	if err != nil || ok {
		t.Errorf("HasEOFMarker(empty) = %v, %v; want false", ok, err)
	}
}

func TestCorruptCRC(t *testing.T) {
	raw := compress(t, []byte("payload payload payload"), 0)
	// Flip a bit in the stored CRC of the first block (footer sits just
	// before the EOF marker).
	raw[len(raw)-len(eofMarker)-8] ^= 0xff
	_, err := io.ReadAll(NewReader(bytes.NewReader(raw)))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestNotBGZF(t *testing.T) {
	// A plain gzip stream (no FEXTRA) is rejected.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte("plain gzip"))
	gz.Close()
	_, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes())))
	if !errors.Is(err, ErrNotBGZF) {
		t.Errorf("err = %v, want ErrNotBGZF", err)
	}
}

func TestGarbageInput(t *testing.T) {
	_, err := io.ReadAll(NewReader(bytes.NewReader([]byte("this is not gzip at all, definitely"))))
	if err == nil {
		t.Error("reading garbage succeeded")
	}
}

func TestVOffsetPacking(t *testing.T) {
	v := MakeVOffset(0x123456789a, 0xbcde)
	if v.Block() != 0x123456789a {
		t.Errorf("Block = %#x", v.Block())
	}
	if v.Intra() != 0xbcde {
		t.Errorf("Intra = %#x", v.Intra())
	}
	if v.String() != "78187493530:48350" {
		t.Errorf("String = %q", v.String())
	}
}

func TestVOffsetProperty(t *testing.T) {
	f := func(block int64, intra uint16) bool {
		if block < 0 {
			block = -block
		}
		block &= 1<<47 - 1
		v := MakeVOffset(block, int(intra))
		return v.Block() == block && v.Intra() == int(intra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeek(t *testing.T) {
	// Three known blocks; record the writer offset at each write.
	var buf bytes.Buffer
	w := NewWriterLevel(&buf, -1, 16)
	var offsets []VOffset
	chunks := [][]byte{
		[]byte("first block data"), // exactly one block
		[]byte("second chunk!!!!"),
		[]byte("third and last.."),
	}
	for _, c := range chunks {
		offsets = append(offsets, w.Offset())
		if _, err := w.Write(c); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i := len(chunks) - 1; i >= 0; i-- {
		if err := r.Seek(offsets[i]); err != nil {
			t.Fatalf("Seek(%v): %v", offsets[i], err)
		}
		got := make([]byte, len(chunks[i]))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatalf("read after seek: %v", err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Errorf("chunk %d after seek = %q, want %q", i, got, chunks[i])
		}
	}
}

func TestSeekIntraBlock(t *testing.T) {
	data := []byte("0123456789abcdef0123456789abcdef")
	raw := compress(t, data, 0)
	r := NewReader(bytes.NewReader(raw))
	if err := r.Seek(MakeVOffset(0, 10)); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data[10:]) {
		t.Errorf("after intra seek = %q, want %q", got, data[10:])
	}
}

func TestSeekUnseekable(t *testing.T) {
	raw := compress(t, []byte("x"), 0)
	r := NewReader(io.MultiReader(bytes.NewReader(raw))) // hides ReadSeeker
	if err := r.Seek(0); err == nil {
		t.Error("Seek on unseekable reader succeeded")
	}
}

func TestSeekBeyondBlock(t *testing.T) {
	raw := compress(t, []byte("tiny"), 0)
	r := NewReader(bytes.NewReader(raw))
	if err := r.Seek(MakeVOffset(0, 100)); err == nil {
		t.Error("Seek beyond block succeeded")
	}
}

func TestReaderOffsetTracksBlocks(t *testing.T) {
	data := bytes.Repeat([]byte("z"), 40)
	raw := compress(t, data, 16)
	r := NewReader(bytes.NewReader(raw))
	if got := r.Offset(); got != 0 {
		t.Errorf("initial Offset = %v", got)
	}
	buf := make([]byte, 20)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	// 20 bytes into 16-byte-payload blocks: inside the second block at 4.
	if got := r.Offset(); got.Intra() != 4 {
		t.Errorf("Offset after 20 bytes = %v, want intra 4", got)
	}
}

func TestWriterRejectsUseAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, payloadSeed uint16) bool {
		payload := int(payloadSeed)%4096 + 1
		raw := compress(t, data, payload)
		got, err := io.ReadAll(NewReader(bytes.NewReader(raw)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	data := bytes.Repeat([]byte("ACGTNACGT"), 100000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		w.Write(data)
		w.Close()
	}
}

func BenchmarkRead(b *testing.B) {
	data := bytes.Repeat([]byte("ACGTNACGT"), 100000)
	raw := compress(b, data, 0)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := io.Copy(io.Discard, NewReader(bytes.NewReader(raw))); err != nil {
			b.Fatal(err)
		}
	}
}

// Mutated BGZF streams must error out, never panic — the BC size field
// and deflate payloads are untrusted.
func TestReaderNeverPanicsOnMutations(t *testing.T) {
	data := bytes.Repeat([]byte("mutation fodder "), 600)
	raw := compress(t, data, 1024)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 400; trial++ {
		mutated := append([]byte(nil), raw...)
		switch rng.Intn(2) {
		case 0:
			for m := 0; m <= rng.Intn(6); m++ {
				mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
			}
		case 1:
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		_, _ = io.Copy(io.Discard, NewReader(bytes.NewReader(mutated)))
	}
}
