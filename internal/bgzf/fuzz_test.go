package bgzf

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzBGZFRoundTrip drives both codecs with fuzzer-chosen payloads,
// compression levels and block sizes, in two modes:
//
//   - corruptAt < 0: a clean round trip must reproduce the payload
//     exactly through every writer/reader pairing.
//   - corruptAt >= 0: one byte of the compressed stream is flipped; the
//     readers may still succeed (flips in ignored header bytes are
//     harmless) but must never panic, and any failure must be one of
//     the package's typed errors, never a raw slice bound or deflate
//     internal.
func FuzzBGZFRoundTrip(f *testing.F) {
	f.Add([]byte("hello bgzf"), 6, 4096, -1, byte(0))
	f.Add([]byte{}, 0, 0, -1, byte(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 70000), 1, 512, 10, byte(0xFF))
	f.Add([]byte("corrupt me"), 9, 16, 5, byte(0x01))

	f.Fuzz(func(t *testing.T, payload []byte, level, blockSize, corruptAt int, flip byte) {
		if len(payload) > 1<<20 {
			payload = payload[:1<<20]
		}
		if level < -2 || level > 9 {
			level = -1
		}

		var buf bytes.Buffer
		w := NewWriterLevel(&buf, level, blockSize)
		if _, err := w.Write(payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		raw := buf.Bytes()

		// Parallel writer must produce byte-identical output.
		var pbuf bytes.Buffer
		pw := NewParallelWriterLevel(&pbuf, level, blockSize, 3)
		if _, err := pw.Write(payload); err != nil {
			t.Fatalf("parallel Write: %v", err)
		}
		if err := pw.Close(); err != nil {
			t.Fatalf("parallel Close: %v", err)
		}
		if !bytes.Equal(raw, pbuf.Bytes()) {
			t.Fatal("parallel writer output differs from sequential")
		}

		if corruptAt >= 0 && len(raw) > 0 && flip != 0 {
			mutated := append([]byte(nil), raw...)
			mutated[corruptAt%len(mutated)] ^= flip
			raw = mutated
		}

		check := func(got []byte, err error) {
			if err == nil {
				if corruptAt < 0 && !bytes.Equal(got, payload) {
					t.Fatal("clean round trip mismatch")
				}
				return
			}
			if corruptAt < 0 {
				t.Fatalf("clean stream failed to decode: %v", err)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotBGZF) &&
				!errors.Is(err, ErrNoEOFMarker) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("corrupt stream produced untyped error: %v", err)
			}
		}

		got, err := io.ReadAll(NewReader(bytes.NewReader(raw)))
		check(got, err)

		pr := NewParallelReader(bytes.NewReader(raw), 3)
		got, err = io.ReadAll(pr)
		check(got, err)
		pr.Close()
	})
}
