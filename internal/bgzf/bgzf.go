// Package bgzf implements the BGZF blocked-gzip format BAM files are
// stored in: a series of independent RFC-1952 gzip members, each carrying
// a "BC" extra subfield recording the compressed block size so readers can
// skip between blocks without inflating them. Independent blocks are what
// make BAM indexable — a (block offset, intra-block offset) pair, the
// virtual file offset, addresses any record. Block independence is also
// what makes the format parallelisable: see ParallelWriter and
// ParallelReader for the pipelined multi-worker codec.
package bgzf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

const (
	// MaxBlockSize is the maximum size of one compressed BGZF block,
	// including the gzip wrapping, fixed by the specification.
	MaxBlockSize = 0x10000
	// MaxPayload is the maximum number of uncompressed bytes stored per
	// block. It is chosen (65280 = 2^16-256) so a worst-case incompressible
	// payload still fits MaxBlockSize after wrapping.
	MaxPayload = 0xff00

	headerSize = 18 // fixed gzip header with a single 6-byte BC extra field
	footerSize = 8  // CRC32 + ISIZE
)

// eofMarker is the specification's canonical empty terminal block. Its
// presence distinguishes a complete BGZF file from a truncated one.
var eofMarker = []byte{
	0x1f, 0x8b, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff,
	0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1b, 0x00, 0x03, 0x00,
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
}

// Errors the codec reports.
var (
	ErrNotBGZF     = errors.New("bgzf: not a BGZF block")
	ErrCorrupt     = errors.New("bgzf: corrupt block")
	ErrNoEOFMarker = errors.New("bgzf: missing EOF marker (file truncated?)")
)

// VOffset is a BGZF virtual file offset: the compressed offset of a block
// start in the upper 48 bits and the uncompressed offset within that
// block in the lower 16 bits.
type VOffset uint64

// MakeVOffset packs a block start offset and an intra-block offset.
func MakeVOffset(coffset int64, uoffset int) VOffset {
	return VOffset(uint64(coffset)<<16 | uint64(uoffset)&0xffff)
}

// Block returns the compressed file offset of the containing block.
func (v VOffset) Block() int64 { return int64(v >> 16) }

// Intra returns the uncompressed offset within the block.
func (v VOffset) Intra() int { return int(v & 0xffff) }

// String renders the offset as "block:intra".
func (v VOffset) String() string { return fmt.Sprintf("%d:%d", v.Block(), v.Intra()) }

// BlockReader is the decompression interface both the sequential Reader
// and the ParallelReader satisfy; consumers such as the BAM codec are
// agnostic to which one feeds them.
type BlockReader interface {
	io.Reader
	Offset() VOffset
	Seek(VOffset) error
}

// BlockWriter is the compression interface both the sequential Writer
// and the ParallelWriter satisfy.
type BlockWriter interface {
	io.Writer
	Offset() VOffset
	Flush() error
	Close() error
}

// BlockSource is the zero-copy face both readers present on top of
// BlockReader: whole inflated blocks are handed to the caller, who
// parses them in place instead of draining them through Read's copy
// loop, and hands buffers back through Recycle. It is the read-side
// foundation of the parallel BAM record decoder (internal/bam).
type BlockSource interface {
	BlockReader
	// NextBlock returns the unread remainder of the current block — or
	// the next non-empty block — without copying, together with the
	// virtual offset of its first byte. Ownership of the slice passes
	// to the caller until it is returned via Recycle. The stream
	// position advances past the returned bytes, so NextBlock and Read
	// calls may be interleaved. At the end of the stream it returns
	// io.EOF.
	NextBlock() (data []byte, off VOffset, err error)
	// Recycle hands a NextBlock buffer back for reuse. Optional —
	// skipping it only costs allocations.
	Recycle([]byte)
}

// deflator owns one reusable flate writer plus the scratch it deflates
// into. Reusing the pair across blocks removes the dominant per-block
// allocation of the codec (a fresh flate.Writer is ~650 KiB of state).
type deflator struct {
	fw      *flate.Writer
	scratch bytes.Buffer
}

// wrap compresses payload into a complete BGZF member appended to
// dst[:0] and returns it.
func (d *deflator) wrap(dst, payload []byte, level int) ([]byte, error) {
	d.scratch.Reset()
	if d.fw == nil {
		fw, err := flate.NewWriter(&d.scratch, level)
		if err != nil {
			return nil, err
		}
		d.fw = fw
	} else {
		d.fw.Reset(&d.scratch)
	}
	if _, err := d.fw.Write(payload); err != nil {
		return nil, err
	}
	if err := d.fw.Close(); err != nil {
		return nil, err
	}
	compressed := d.scratch.Bytes()
	bsize := headerSize + len(compressed) + footerSize
	if bsize > MaxBlockSize {
		return nil, fmt.Errorf("bgzf: block of %d bytes exceeds format limit", bsize)
	}
	if cap(dst) < bsize {
		dst = make([]byte, bsize)
	}
	block := dst[:bsize]
	for i := range block[:headerSize] {
		block[i] = 0
	}
	block[0], block[1], block[2], block[3] = 0x1f, 0x8b, 0x08, 0x04 // magic, deflate, FEXTRA
	// MTIME (4), XFL left zero.
	block[9] = 0xff // OS unknown
	binary.LittleEndian.PutUint16(block[10:], 6)
	block[12], block[13] = 'B', 'C'
	binary.LittleEndian.PutUint16(block[14:], 2)
	binary.LittleEndian.PutUint16(block[16:], uint16(bsize-1))
	copy(block[headerSize:], compressed)
	binary.LittleEndian.PutUint32(block[headerSize+len(compressed):], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(block[headerSize+len(compressed)+4:], uint32(len(payload)))
	return block, nil
}

// Writer compresses a stream into BGZF blocks. Close writes the EOF
// marker block; forgetting it produces a file readers reject.
type Writer struct {
	w       io.Writer
	level   int
	buf     []byte // pending uncompressed bytes, ≤ blockPayload
	payload int    // configured uncompressed bytes per block
	def     deflator
	block   []byte // reusable wrapped-block buffer
	offset  int64  // compressed bytes written so far
	err     error
}

// NewWriter returns a BGZF writer using the default compression level and
// the maximum per-block payload.
func NewWriter(w io.Writer) *Writer {
	return NewWriterLevel(w, flate.DefaultCompression, MaxPayload)
}

// NewWriterLevel returns a BGZF writer with an explicit flate level and
// per-block uncompressed payload size (clamped to [1, MaxPayload]).
// Smaller payloads trade compression ratio for finer random-access
// granularity — the knob the block-size ablation benchmark sweeps.
func NewWriterLevel(w io.Writer, level, payload int) *Writer {
	level, payload = clampLevelPayload(level, payload)
	return &Writer{w: w, level: level, payload: payload, buf: make([]byte, 0, payload)}
}

// clampLevelPayload applies the shared knob validation of both writers.
func clampLevelPayload(level, payload int) (int, int) {
	if payload <= 0 || payload > MaxPayload {
		payload = MaxPayload
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		level = flate.DefaultCompression
	}
	return level, payload
}

// Offset returns the virtual offset the next written byte will have.
func (w *Writer) Offset() VOffset {
	return MakeVOffset(w.offset, len(w.buf))
}

// Write buffers p, flushing completed blocks as the payload size is
// reached.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n := len(p)
	for len(p) > 0 {
		space := w.payload - len(w.buf)
		if space == 0 {
			if err := w.Flush(); err != nil {
				return n - len(p), err
			}
			space = w.payload
		}
		if space > len(p) {
			space = len(p)
		}
		w.buf = append(w.buf, p[:space]...)
		p = p[space:]
	}
	return n, nil
}

// Flush writes any buffered bytes as one block. It is a no-op when the
// buffer is empty, so files never contain spurious empty data blocks.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	block, err := w.def.wrap(w.block[:0], w.buf, w.level)
	if err != nil {
		w.err = err
		return err
	}
	w.block = block
	if _, err := w.w.Write(block); err != nil {
		w.err = err
		return err
	}
	w.offset += int64(len(block))
	w.buf = w.buf[:0]
	return nil
}

// Close flushes pending data and writes the EOF marker.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if _, err := w.w.Write(eofMarker); err != nil {
		w.err = err
		return err
	}
	w.offset += int64(len(eofMarker))
	w.err = errors.New("bgzf: writer closed")
	return nil
}

// blockScanner reads raw BGZF members sequentially, reusing its header
// and extra-field scratch across blocks. It is the shared front half of
// both readers: the sequential Reader inflates each member in place, the
// ParallelReader's scan goroutine hands members to inflate workers.
type blockScanner struct {
	r     io.Reader
	hdr   [headerSize]byte
	extra []byte // reusable FEXTRA scratch
}

// next reads one compressed member into raw (grown as needed), returning
// the member body (compressed data + footer) and the member's total
// on-disk size. A clean end of stream at a member boundary returns
// io.EOF; the caller decides whether the EOF marker was seen.
func (s *blockScanner) next(raw []byte) ([]byte, int, error) {
	if _, err := io.ReadFull(s.r, s.hdr[:]); err != nil {
		if err == io.EOF {
			return raw, 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return raw, 0, ErrCorrupt
		}
		return raw, 0, err
	}
	if s.hdr[0] != 0x1f || s.hdr[1] != 0x8b || s.hdr[2] != 0x08 || s.hdr[3]&0x04 == 0 {
		return raw, 0, ErrNotBGZF
	}
	xlen := int(binary.LittleEndian.Uint16(s.hdr[10:]))
	if cap(s.extra) < xlen {
		s.extra = make([]byte, xlen)
	}
	extra := s.extra[:xlen]
	copy(extra, s.hdr[12:])
	if xlen > headerSize-12 {
		if _, err := io.ReadFull(s.r, extra[headerSize-12:]); err != nil {
			return raw, 0, ErrCorrupt
		}
	}
	bsize := -1
	for i := 0; i+4 <= len(extra); {
		si1, si2 := extra[i], extra[i+1]
		slen := int(binary.LittleEndian.Uint16(extra[i+2:]))
		if si1 == 'B' && si2 == 'C' && slen == 2 && i+6 <= len(extra) {
			bsize = int(binary.LittleEndian.Uint16(extra[i+4:])) + 1
			break
		}
		i += 4 + slen
	}
	if bsize < 0 {
		return raw, 0, ErrNotBGZF
	}
	rawLen := bsize - 12 - xlen // compressed data + footer
	if rawLen < footerSize {
		return raw, 0, ErrCorrupt
	}
	if cap(raw) < rawLen {
		raw = make([]byte, rawLen)
	}
	raw = raw[:rawLen]
	already := 0
	if 12+xlen < headerSize {
		// Part of the data was consumed into the fixed-size header buffer.
		already = headerSize - 12 - xlen
		copy(raw, s.hdr[12+xlen:])
	}
	if _, err := io.ReadFull(s.r, raw[already:]); err != nil {
		return raw, 0, ErrCorrupt
	}
	return raw, bsize, nil
}

// inflater owns one reusable flate reader and decompresses member bodies
// produced by blockScanner.next, verifying ISIZE and CRC32.
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser
}

// inflate decompresses the member body raw into dst[:0] and returns it.
func (inf *inflater) inflate(dst, raw []byte) ([]byte, error) {
	compressed, footer := raw[:len(raw)-footerSize], raw[len(raw)-footerSize:]
	wantCRC := binary.LittleEndian.Uint32(footer)
	isize := binary.LittleEndian.Uint32(footer[4:])
	if isize > MaxBlockSize {
		// The spec bounds uncompressed blocks at 64 KiB; a larger ISIZE is
		// corruption and must not drive the allocation below.
		return dst[:0], fmt.Errorf("%w: ISIZE %d exceeds format limit", ErrCorrupt, isize)
	}
	inf.src.Reset(compressed)
	if inf.fr == nil {
		inf.fr = flate.NewReader(&inf.src)
	} else if err := inf.fr.(flate.Resetter).Reset(&inf.src, nil); err != nil {
		return dst[:0], err
	}
	if cap(dst) < int(isize) {
		dst = make([]byte, isize)
	}
	dst = dst[:isize]
	if _, err := io.ReadFull(inf.fr, dst); err != nil {
		return dst, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// The member must contain no more than ISIZE bytes.
	var one [1]byte
	if n, _ := inf.fr.Read(one[:]); n != 0 {
		return dst, fmt.Errorf("%w: block longer than ISIZE", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(dst) != wantCRC {
		return dst, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return dst, nil
}

// Reader decompresses a BGZF stream block by block. When the underlying
// reader is an io.ReadSeeker, Seek to a virtual offset is supported.
type Reader struct {
	scan       blockScanner
	inf        inflater
	rs         io.ReadSeeker // non-nil when seeking is possible
	block      []byte        // current uncompressed block
	raw        []byte        // reusable compressed-block buffer
	spareMu    sync.Mutex    // guards spare: Recycle may run on another goroutine
	spare      [][]byte      // Recycle'd block buffers awaiting reuse
	pos        int           // read position within block
	blockStart int64         // compressed offset of current block
	nextStart  int64         // compressed offset of next block
	sawEOF     bool
	err        error
}

// NewReader wraps r. When r is an io.ReadSeeker the returned reader
// supports Seek.
func NewReader(r io.Reader) *Reader {
	br := &Reader{scan: blockScanner{r: r}}
	if rs, ok := r.(io.ReadSeeker); ok {
		br.rs = rs
	}
	return br
}

// Offset returns the virtual offset of the next byte Read will return.
func (r *Reader) Offset() VOffset { return MakeVOffset(r.blockStart, r.pos) }

// readBlock loads the next non-empty block into r.block. It returns
// io.EOF at the end of the stream (after the EOF marker). Empty blocks
// are verified and skipped in a loop — a loop, not recursion, so a
// crafted file holding millions of consecutive empty members cannot
// overflow the stack.
func (r *Reader) readBlock() error {
	for {
		r.blockStart = r.nextStart
		raw, bsize, err := r.scan.next(r.raw[:0])
		r.raw = raw
		if err == io.EOF {
			if !r.sawEOF {
				return ErrNoEOFMarker
			}
			return io.EOF
		}
		if err != nil {
			return err
		}
		if r.block, err = r.inf.inflate(r.block[:0], raw); err != nil {
			return err
		}
		r.pos = 0
		r.nextStart = r.blockStart + int64(bsize)
		r.sawEOF = len(r.block) == 0
		if !r.sawEOF {
			return nil
		}
		// Empty block: could be the EOF marker; keep reading — a following
		// block resets sawEOF, trailing EOF terminates cleanly.
	}
}

// Read implements io.Reader over the decompressed stream.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	total := 0
	for len(p) > 0 {
		if r.pos == len(r.block) {
			if err := r.readBlock(); err != nil {
				r.err = err
				if total > 0 && err == io.EOF {
					return total, nil
				}
				return total, err
			}
		}
		n := copy(p, r.block[r.pos:])
		r.pos += n
		p = p[n:]
		total += n
	}
	return total, nil
}

// NextBlock implements BlockSource: it returns the unread remainder of
// the current block, or loads and returns the next non-empty one,
// detaching the buffer so the caller can parse it in place. The
// sequential codec gains no concurrency from this, but sharing the
// interface lets block-level consumers (the parallel BAM decoder) run
// unchanged over either reader.
func (r *Reader) NextBlock() ([]byte, VOffset, error) {
	if r.err != nil {
		return nil, 0, r.err
	}
	for r.pos == len(r.block) {
		if err := r.readBlock(); err != nil {
			r.err = err
			return nil, 0, err
		}
	}
	data := r.block[r.pos:]
	off := MakeVOffset(r.blockStart, r.pos)
	// Detach the buffer; the next readBlock inflates into a recycled
	// spare (or allocates when none is available).
	r.block = nil
	r.spareMu.Lock()
	if n := len(r.spare); n > 0 {
		r.block, r.spare = r.spare[n-1], r.spare[:n-1]
	}
	r.spareMu.Unlock()
	r.blockStart = r.nextStart
	r.pos = 0
	return data, off, nil
}

// Recycle implements BlockSource, handing a NextBlock buffer back for
// reuse. The free list is small and bounded: the zero-copy consumers
// hold at most a couple of blocks at a time. Like the parallel
// reader's, Recycle is safe to call from a goroutine other than the
// consumer — the parallel record decoder recycles from its drain side.
func (r *Reader) Recycle(b []byte) {
	if cap(b) == 0 {
		return
	}
	r.spareMu.Lock()
	if len(r.spare) < 4 {
		r.spare = append(r.spare, b[:0])
	}
	r.spareMu.Unlock()
}

// Seek positions the reader at a virtual offset. It requires the
// underlying reader to be an io.ReadSeeker.
func (r *Reader) Seek(v VOffset) error {
	if r.rs == nil {
		return errors.New("bgzf: underlying reader is not seekable")
	}
	if _, err := r.rs.Seek(v.Block(), io.SeekStart); err != nil {
		return err
	}
	r.err = nil
	r.block = r.block[:0]
	r.pos = 0
	r.nextStart = v.Block()
	r.sawEOF = false
	if err := r.readBlock(); err != nil {
		r.err = err
		return err
	}
	if v.Intra() > len(r.block) {
		return fmt.Errorf("%w: intra-block offset %d beyond block of %d bytes",
			ErrCorrupt, v.Intra(), len(r.block))
	}
	r.pos = v.Intra()
	return nil
}

// HasEOFMarker checks (without disturbing the stream position) whether a
// ReadSeeker ends with the canonical BGZF EOF block.
func HasEOFMarker(rs io.ReadSeeker) (bool, error) {
	cur, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return false, err
	}
	defer rs.Seek(cur, io.SeekStart)
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return false, err
	}
	if end < int64(len(eofMarker)) {
		return false, nil
	}
	if _, err := rs.Seek(end-int64(len(eofMarker)), io.SeekStart); err != nil {
		return false, err
	}
	tail := make([]byte, len(eofMarker))
	if _, err := io.ReadFull(rs, tail); err != nil {
		return false, err
	}
	return bytes.Equal(tail, eofMarker), nil
}
