package bgzf

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// testPayloads builds a mix of compressible and incompressible data
// large enough to span many blocks.
func testData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		if (i/1024)%2 == 0 {
			data[i] = byte(rng.Intn(4)) // compressible stretch
		} else {
			data[i] = byte(rng.Intn(256)) // incompressible stretch
		}
	}
	return data
}

func compressParallel(t testing.TB, data []byte, payload, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewParallelWriterLevel(&buf, -1, payload, workers)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("ParallelWriter.Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("ParallelWriter.Close: %v", err)
	}
	return buf.Bytes()
}

func TestParallelWriterBitIdenticalToSequential(t *testing.T) {
	data := testData(10*MaxPayload+12345, 7)
	for _, payload := range []int{0, 512, 4096, MaxPayload} {
		for _, workers := range []int{1, 3, 8} {
			seq := compress(t, data, payload)
			par := compressParallel(t, data, payload, workers)
			if !bytes.Equal(seq, par) {
				t.Errorf("payload=%d workers=%d: parallel output differs from sequential (%d vs %d bytes)",
					payload, workers, len(par), len(seq))
			}
		}
	}
}

func TestParallelRoundTrip(t *testing.T) {
	data := testData(6*MaxPayload+999, 9)
	raw := compressParallel(t, data, 0, 4)
	r := NewParallelReader(bytes.NewReader(raw), 4)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("parallel round trip mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestParallelCrossCodecCompatibility(t *testing.T) {
	data := testData(4*MaxPayload+77, 11)
	parRaw := compressParallel(t, data, 0, 4)
	seqRaw := compress(t, data, 0)

	// Files written by ParallelWriter are readable by the sequential Reader.
	got, err := io.ReadAll(NewReader(bytes.NewReader(parRaw)))
	if err != nil {
		t.Fatalf("sequential Reader over parallel output: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("sequential read of parallel output mismatch")
	}

	// And vice versa.
	pr := NewParallelReader(bytes.NewReader(seqRaw), 4)
	defer pr.Close()
	got, err = io.ReadAll(pr)
	if err != nil {
		t.Fatalf("ParallelReader over sequential output: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("parallel read of sequential output mismatch")
	}
}

func TestParallelWriterOffsetMatchesSequential(t *testing.T) {
	var seqBuf, parBuf bytes.Buffer
	sw := NewWriterLevel(&seqBuf, -1, 1000)
	pw := NewParallelWriterLevel(&parBuf, -1, 1000, 4)
	rng := rand.New(rand.NewSource(3))
	chunk := make([]byte, 700)
	for i := 0; i < 40; i++ {
		rng.Read(chunk)
		n := rng.Intn(len(chunk))
		if _, err := sw.Write(chunk[:n]); err != nil {
			t.Fatal(err)
		}
		if _, err := pw.Write(chunk[:n]); err != nil {
			t.Fatal(err)
		}
		if so, po := sw.Offset(), pw.Offset(); so != po {
			t.Fatalf("write %d: sequential offset %v, parallel offset %v", i, so, po)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if so, po := sw.Offset(), pw.Offset(); so != po {
		t.Errorf("post-close: sequential offset %v, parallel offset %v", so, po)
	}
	if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
		t.Error("interleaved-write output mismatch")
	}
}

func TestParallelReaderSeek(t *testing.T) {
	// Write known chunks at known offsets with the parallel writer, then
	// seek back through them with the parallel reader.
	var buf bytes.Buffer
	w := NewParallelWriterLevel(&buf, -1, 16, 3)
	var offsets []VOffset
	chunks := [][]byte{
		[]byte("first block data"),
		[]byte("second chunk!!!!"),
		[]byte("third and last.."),
	}
	for _, c := range chunks {
		offsets = append(offsets, w.Offset())
		if _, err := w.Write(c); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewParallelReader(bytes.NewReader(buf.Bytes()), 3)
	defer r.Close()
	for i := len(chunks) - 1; i >= 0; i-- {
		if err := r.Seek(offsets[i]); err != nil {
			t.Fatalf("Seek(%v): %v", offsets[i], err)
		}
		if got := r.Offset(); got != offsets[i] {
			t.Errorf("Offset after Seek = %v, want %v", got, offsets[i])
		}
		got := make([]byte, len(chunks[i]))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatalf("read after seek: %v", err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Errorf("chunk %d after seek = %q, want %q", i, got, chunks[i])
		}
	}
}

func TestParallelReaderSeekIntraBlock(t *testing.T) {
	data := []byte("0123456789abcdefghijklmnopqrstuv")
	raw := compress(t, data, 0)
	r := NewParallelReader(bytes.NewReader(raw), 2)
	defer r.Close()
	if err := r.Seek(MakeVOffset(0, 10)); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data[10:]) {
		t.Errorf("after intra seek = %q, want %q", got, data[10:])
	}
}

func TestParallelReaderSeekBeyondBlock(t *testing.T) {
	raw := compress(t, []byte("tiny"), 0)
	r := NewParallelReader(bytes.NewReader(raw), 2)
	defer r.Close()
	if err := r.Seek(MakeVOffset(0, 100)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Seek beyond block = %v, want ErrCorrupt", err)
	}
}

func TestParallelReaderSeekUnseekable(t *testing.T) {
	raw := compress(t, []byte("x"), 0)
	r := NewParallelReader(io.MultiReader(bytes.NewReader(raw)), 2)
	defer r.Close()
	if err := r.Seek(0); err == nil {
		t.Error("Seek on unseekable reader succeeded")
	}
}

func TestParallelReaderOffsetParity(t *testing.T) {
	data := testData(3*MaxPayload+500, 13)
	raw := compress(t, data, 4096)
	seq := NewReader(bytes.NewReader(raw))
	par := NewParallelReader(bytes.NewReader(raw), 3)
	defer par.Close()
	buf1 := make([]byte, 777)
	buf2 := make([]byte, 777)
	for step := 0; ; step++ {
		if so, po := seq.Offset(), par.Offset(); so != po {
			t.Fatalf("step %d: sequential offset %v, parallel offset %v", step, so, po)
		}
		n1, err1 := io.ReadFull(seq, buf1)
		n2, err2 := io.ReadFull(par, buf2)
		if n1 != n2 {
			t.Fatalf("step %d: read %d vs %d bytes", step, n1, n2)
		}
		if !bytes.Equal(buf1[:n1], buf2[:n2]) {
			t.Fatalf("step %d: data mismatch", step)
		}
		if err1 != nil || err2 != nil {
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d: err %v vs %v", step, err1, err2)
			}
			break
		}
	}
}

func TestParallelReaderMissingEOFMarker(t *testing.T) {
	raw := compress(t, []byte("data"), 0)
	truncated := raw[:len(raw)-len(eofMarker)]
	r := NewParallelReader(bytes.NewReader(truncated), 2)
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrNoEOFMarker) {
		t.Errorf("err = %v, want ErrNoEOFMarker", err)
	}
}

func TestParallelReaderCorruptCRC(t *testing.T) {
	raw := compress(t, []byte("payload payload payload"), 0)
	raw[len(raw)-len(eofMarker)-8] ^= 0xff
	r := NewParallelReader(bytes.NewReader(raw), 2)
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// The first error must be the first in stream order, not whichever
// worker happens to fail first: corrupt an early block and a late block
// and check the early one is always reported.
func TestParallelReaderDeterministicFirstError(t *testing.T) {
	data := testData(8*MaxPayload, 17)
	raw := compress(t, data, 2048)
	// Corrupt the CRC of the 3rd block and the 20th block.
	var starts []int
	r := NewReader(bytes.NewReader(raw))
	for {
		starts = append(starts, int(r.nextStart))
		if err := r.readBlock(); err != nil {
			break
		}
	}
	if len(starts) < 25 {
		t.Fatalf("fixture too small: %d blocks", len(starts))
	}
	mutated := append([]byte(nil), raw...)
	mutated[starts[3]-5] ^= 0xff  // CRC bytes live at the end of the previous member
	mutated[starts[20]-5] ^= 0xff // a later corruption that must NOT win
	for trial := 0; trial < 10; trial++ {
		pr := NewParallelReader(bytes.NewReader(mutated), 4)
		buf, err := io.ReadAll(pr)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: err = %v, want ErrCorrupt", trial, err)
		}
		// Everything before the corrupt block must have been delivered.
		want := data[:2048*2] // blocks 0 and 1 precede the corrupted member 2
		if !bytes.Equal(buf[:len(want)], want) {
			t.Fatalf("trial %d: prefix before corrupt block differs", trial)
		}
		pr.Close()
	}
}

func TestParallelWriterPropagatesSinkError(t *testing.T) {
	w := NewParallelWriterLevel(&failAfter{n: 1}, -1, 512, 4)
	data := testData(100*512, 23)
	_, werr := w.Write(data)
	ferr := w.Flush()
	cerr := w.Close()
	if werr == nil && ferr == nil && cerr == nil {
		t.Error("sink write error never surfaced")
	}
}

// failAfter accepts n writes then fails.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("sink failed")
	}
	f.n--
	return len(p), nil
}

func TestParallelWriterRejectsUseAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewParallelWriter(&buf, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); err == nil {
		t.Error("Write after Close succeeded")
	}
	if err := w.Close(); err == nil {
		t.Error("second Close succeeded")
	}
}

func TestParallelWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewParallelWriter(&buf, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), eofMarker) {
		t.Errorf("empty parallel file = %d bytes, want just the EOF marker", buf.Len())
	}
}

// Round-trip through ParallelWriter → ParallelReader while a second
// goroutine hammers Offset, exercised under -race by the CI target.
func TestParallelConcurrentRoundTrip(t *testing.T) {
	data := testData(20*MaxPayload, 29)
	var buf bytes.Buffer
	w := NewParallelWriterLevel(&buf, -1, 8192, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		// Offset is safe to interleave with Write from the writer's own
		// goroutine only; here we just verify the pipeline under load by
		// consuming the data on the other side once writing finishes.
		defer wg.Done()
		<-stop
	}()
	for off := 0; off < len(data); off += 1000 {
		end := off + 1000
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	r := NewParallelReader(bytes.NewReader(buf.Bytes()), 4)
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("concurrent round trip mismatch")
	}
}

// Abandoning a ParallelReader mid-stream then closing it must not
// deadlock or leak (the leak check lives in parpipe's tests; here we
// check Close unblocks the pipeline promptly).
func TestParallelReaderCloseMidStream(t *testing.T) {
	data := testData(50*MaxPayload, 31)
	raw := compressParallel(t, data, 0, 4)
	r := NewParallelReader(bytes.NewReader(raw), 2)
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Error("Read after Close succeeded")
	}
}

// Consecutive empty blocks must be skipped iteratively, not recursively:
// a file with hundreds of thousands of empty members once overflowed the
// stack. Regression for the readBlock recursion.
func TestManyConsecutiveEmptyBlocks(t *testing.T) {
	const n = 200000
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.Write(eofMarker)
	}
	payload := compress(t, []byte("tail data after a sea of empties"), 0)
	stream := append(buf.Bytes(), payload...)

	got, err := io.ReadAll(NewReader(bytes.NewReader(stream)))
	if err != nil {
		t.Fatalf("sequential read over %d empty blocks: %v", n, err)
	}
	if string(got) != "tail data after a sea of empties" {
		t.Errorf("data after empty blocks = %q", got)
	}

	pr := NewParallelReader(bytes.NewReader(stream), 2)
	defer pr.Close()
	got, err = io.ReadAll(pr)
	if err != nil {
		t.Fatalf("parallel read over %d empty blocks: %v", n, err)
	}
	if string(got) != "tail data after a sea of empties" {
		t.Errorf("parallel data after empty blocks = %q", got)
	}
}

// BenchmarkBGZFParallelWrite sweeps the worker pool: workers=1/seq is
// the sequential codec baseline, the rest the parallel writer.
func BenchmarkBGZFParallelWrite(b *testing.B) {
	data := testData(64<<20, 41)
	b.Run("workers=1/seq", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			w := NewWriter(io.Discard)
			if _, err := w.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				w := NewParallelWriter(io.Discard, workers)
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBGZFParallelRead sweeps inflate workers over a fixture
// compressed once up front; workers=1/seq is the sequential reader.
func BenchmarkBGZFParallelRead(b *testing.B) {
	data := testData(64<<20, 43)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("workers=1/seq", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := io.Copy(io.Discard, NewReader(bytes.NewReader(raw))); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r := NewParallelReader(bytes.NewReader(raw), workers)
				if _, err := io.Copy(io.Discard, r); err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		})
	}
}

// AutoWorkers must track the apparent CPU count: one worker per CPU,
// capped at maxAutoWorkers, and exactly 1 on a single-CPU host so every
// constructor's sequential path engages.
func TestAutoWorkersTracksProcs(t *testing.T) {
	old := gomaxprocs
	defer func() { gomaxprocs = old }()
	for _, tc := range []struct{ procs, want int }{
		{1, 1},
		{2, 2},
		{maxAutoWorkers, maxAutoWorkers},
		{maxAutoWorkers + 4, maxAutoWorkers},
	} {
		gomaxprocs = func(int) int { return tc.procs }
		if got := AutoWorkers(); got != tc.want {
			t.Errorf("AutoWorkers with %d CPUs = %d, want %d", tc.procs, got, tc.want)
		}
	}
	// An explicit worker count passes through untouched, even past the cap.
	gomaxprocs = func(int) int { return 1 }
	if got := resolveWorkers(12); got != 12 {
		t.Errorf("resolveWorkers(12) = %d, want 12", got)
	}
}
