package bgzf

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"parseq/internal/obs"
)

func compressShared(t testing.TB, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewSharedParallelWriter(&buf)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("shared Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("shared Close: %v", err)
	}
	return buf.Bytes()
}

func TestSharedWriterBitIdenticalToSequential(t *testing.T) {
	data := testData(6*MaxPayload+999, 11)
	seq := compress(t, data, MaxPayload)
	got := compressShared(t, data)
	if !bytes.Equal(seq, got) {
		t.Errorf("shared-pool output differs from sequential (%d vs %d bytes)", len(got), len(seq))
	}
}

// Short-lived writers attaching to the shared pool one after another —
// the converter's per-rank shard pattern — must each produce the
// sequential stream.
func TestSharedWriterSequentialReuse(t *testing.T) {
	for i := 0; i < 5; i++ {
		data := testData(2*MaxPayload+i*1000, int64(i))
		if !bytes.Equal(compress(t, data, MaxPayload), compressShared(t, data)) {
			t.Fatalf("iteration %d: shared output differs", i)
		}
	}
}

func TestSharedWriterConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			data := testData(3*MaxPayload+int(seed)*317, seed)
			if !bytes.Equal(compress(t, data, MaxPayload), compressShared(t, data)) {
				t.Errorf("seed %d: shared output differs", seed)
			}
		}(int64(i))
	}
	wg.Wait()
}

func TestSharedPoolSingleton(t *testing.T) {
	if SharedPool() != SharedPool() {
		t.Error("SharedPool returned distinct pools")
	}
	if SharedPool().Max() < 1 {
		t.Errorf("shared pool max = %d", SharedPool().Max())
	}
}

// The sizer must export its per-worker EWMA bytes/s so operators can
// see the throughput behind the pool's sizing decisions.
func TestSharedPoolThroughputGauge(t *testing.T) {
	reg := obs.New()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	s := newPoolSizer(SharedPool())
	// One full window at a known rate: 64 KiB per block in 1ms each.
	for i := 0; i < resizeEvery; i++ {
		s.observe(64<<10, time.Millisecond)
	}
	got := reg.Gauge("bgzf.shared_pool.throughput").Value()
	if got <= 0 {
		t.Fatalf("bgzf.shared_pool.throughput = %d, want > 0", got)
	}
	// 64 KiB / 1 ms = ~64 MiB/s; the EWMA of a constant is the constant.
	want := int64(64 << 10 * 1000)
	if got < want/2 || got > want*2 {
		t.Errorf("throughput gauge = %d, want about %d", got, want)
	}
	if reg.Gauge("bgzf.shared.workers").Value() < 1 {
		t.Errorf("bgzf.shared.workers gauge = %d", reg.Gauge("bgzf.shared.workers").Value())
	}
}
