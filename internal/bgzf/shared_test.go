package bgzf

import (
	"bytes"
	"sync"
	"testing"
)

func compressShared(t testing.TB, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewSharedParallelWriter(&buf)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("shared Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("shared Close: %v", err)
	}
	return buf.Bytes()
}

func TestSharedWriterBitIdenticalToSequential(t *testing.T) {
	data := testData(6*MaxPayload+999, 11)
	seq := compress(t, data, MaxPayload)
	got := compressShared(t, data)
	if !bytes.Equal(seq, got) {
		t.Errorf("shared-pool output differs from sequential (%d vs %d bytes)", len(got), len(seq))
	}
}

// Short-lived writers attaching to the shared pool one after another —
// the converter's per-rank shard pattern — must each produce the
// sequential stream.
func TestSharedWriterSequentialReuse(t *testing.T) {
	for i := 0; i < 5; i++ {
		data := testData(2*MaxPayload+i*1000, int64(i))
		if !bytes.Equal(compress(t, data, MaxPayload), compressShared(t, data)) {
			t.Fatalf("iteration %d: shared output differs", i)
		}
	}
}

func TestSharedWriterConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			data := testData(3*MaxPayload+int(seed)*317, seed)
			if !bytes.Equal(compress(t, data, MaxPayload), compressShared(t, data)) {
				t.Errorf("seed %d: shared output differs", seed)
			}
		}(int64(i))
	}
	wg.Wait()
}

func TestSharedPoolSingleton(t *testing.T) {
	if SharedPool() != SharedPool() {
		t.Error("SharedPool returned distinct pools")
	}
	if SharedPool().Max() < 1 {
		t.Errorf("shared pool max = %d", SharedPool().Max())
	}
}
