package bam

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"parseq/internal/sam"
)

// genSorted builds a coordinate-sorted multi-chromosome record set with
// varied spans, plus a trailing unmapped block, mirroring real BAM files.
func genSorted(seed int64, n int, h *sam.Header) []sam.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]sam.Record, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.02 {
			recs = append(recs, sam.Record{
				QName: fmt.Sprintf("u%06d", i), Flag: sam.FlagUnmapped,
				RName: "*", RNext: "*", Seq: "ACGT", Qual: "IIII",
			})
			continue
		}
		ref := h.Refs[rng.Intn(len(h.Refs))]
		span := 30 + rng.Intn(200)
		maxPos := ref.Length - span
		if maxPos < 1 {
			maxPos = 1
		}
		recs = append(recs, sam.Record{
			QName: fmt.Sprintf("r%06d", i),
			RName: ref.Name,
			Pos:   int32(1 + rng.Intn(maxPos)),
			MapQ:  60,
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, span)},
			RNext: "*",
			Seq:   strings.Repeat("A", span),
			Qual:  strings.Repeat("I", span),
		})
	}
	sort.SliceStable(recs, func(i, j int) bool {
		ri, rj := h.RefID(recs[i].RName), h.RefID(recs[j].RName)
		if ri != rj {
			if ri < 0 {
				return false
			}
			if rj < 0 {
				return true
			}
			return ri < rj
		}
		return recs[i].Pos < recs[j].Pos
	})
	return recs
}

// makeIndexedDataset writes a coordinate-sorted multi-chromosome BAM and
// builds its index from the file, as a user would.
func makeIndexedDataset(t testing.TB, n int) ([]byte, *Index, *sam.Header, []sam.Record) {
	t.Helper()
	h := sam.NewHeader(
		sam.Reference{Name: "chr1", Length: 197195},
		sam.Reference{Name: "chr2", Length: 181748},
		sam.Reference{Name: "chrX", Length: 166650},
		sam.Reference{Name: "chrY", Length: 15902},
	)
	h.SortOrder = sam.SortCoordinate
	recs := genSorted(int64(n), n, h)
	raw := writeBAM(t, h, recs)
	idx, err := BuildFileIndex(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("BuildFileIndex: %v", err)
	}
	return raw, idx, h, recs
}

func TestBuildFileIndexAndRegionReader(t *testing.T) {
	raw, idx, _, recs := makeIndexedDataset(t, 1500)
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []struct {
		ref      string
		beg, end int
	}{
		{"chr1", 0, 50000},
		{"chr1", 100000, 197195},
		{"chr2", 0, 181748},
		{"chrX", 30000, 90000},
		{"chrY", 0, 15902},
	} {
		want := map[string]int{}
		for i := range recs {
			r := &recs[i]
			if r.Unmapped() || r.RName != q.ref {
				continue
			}
			if int(r.Pos-1) < q.end && int(r.End()) > q.beg {
				want[r.String()]++
			}
		}
		rr, err := NewRegionReader(br, idx, q.ref, q.beg, q.end)
		if err != nil {
			t.Fatalf("NewRegionReader(%s:%d-%d): %v", q.ref, q.beg, q.end, err)
		}
		got := 0
		var rec sam.Record
		for {
			err := rr.ReadInto(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("ReadInto: %v", err)
			}
			if want[rec.String()] == 0 {
				t.Fatalf("region %s:%d-%d returned non-overlapping record %s:%d",
					q.ref, q.beg, q.end, rec.RName, rec.Pos)
			}
			want[rec.String()]--
			got++
		}
		missing := 0
		for _, n := range want {
			missing += n
		}
		if missing != 0 {
			t.Errorf("region %s:%d-%d missed %d records (found %d)",
				q.ref, q.beg, q.end, missing, got)
		}
		if got == 0 && q.ref != "chrY" {
			t.Errorf("region %s:%d-%d found nothing; generator too sparse?", q.ref, q.beg, q.end)
		}
	}
}

func TestCountRegion(t *testing.T) {
	raw, idx, _, recs := makeIndexedDataset(t, 800)
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range recs {
		r := &recs[i]
		if !r.Unmapped() && r.RName == "chr1" {
			want++
		}
	}
	got, err := CountRegion(br, idx, "chr1", 0, 197195)
	if err != nil {
		t.Fatalf("CountRegion: %v", err)
	}
	if got != want {
		t.Errorf("CountRegion = %d, want %d", got, want)
	}
}

func TestRegionReaderUnknownReference(t *testing.T) {
	raw, idx, _, _ := makeIndexedDataset(t, 50)
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegionReader(br, idx, "chrNope", 0, 100); err == nil {
		t.Error("unknown reference accepted")
	}
}

func TestRegionReaderOnlyOverlapping(t *testing.T) {
	raw, idx, _, _ := makeIndexedDataset(t, 400)
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRegionReader(br, idx, "chrY", 8000, 8100)
	if err != nil {
		t.Fatal(err)
	}
	var rec sam.Record
	for {
		err := rr.ReadInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if int(rec.Pos-1) >= 8100 || int(rec.End()) <= 8000 {
			t.Fatalf("non-overlapping record returned: %s:%d-%d", rec.RName, rec.Pos, rec.End())
		}
	}
}

func TestBuildFileIndexRejectsUnsorted(t *testing.T) {
	h := sam.NewHeader(sam.Reference{Name: "chr1", Length: 100000})
	recs := []sam.Record{
		{QName: "a", RName: "chr1", Pos: 500, MapQ: 60,
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, 4)},
			RNext: "*", Seq: "ACGT", Qual: "IIII"},
		{QName: "b", RName: "chr1", Pos: 100, MapQ: 60,
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, 4)},
			RNext: "*", Seq: "ACGT", Qual: "IIII"},
	}
	raw := writeBAM(t, h, recs)
	if _, err := BuildFileIndex(bytes.NewReader(raw)); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestWriteIndexFileRoundTrip(t *testing.T) {
	raw, want, _, _ := makeIndexedDataset(t, 300)
	var ixBuf bytes.Buffer
	rs := bytes.NewReader(raw)
	if err := WriteIndexFile(rs, &ixBuf); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	if pos, _ := rs.Seek(0, io.SeekCurrent); pos != 0 {
		t.Errorf("stream position = %d after WriteIndexFile", pos)
	}
	got, err := ReadIndex(&ixBuf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	for _, q := range [][2]int{{0, 10000}, {50000, 150000}} {
		a := want.Query(0, q[0], q[1])
		b := got.Query(0, q[0], q[1])
		if len(a) != len(b) {
			t.Errorf("Query(%v): %d vs %d chunks", q, len(a), len(b))
		}
	}
}

func TestBodySpan(t *testing.T) {
	h := testHeader()
	rec := mustParse(t, "r1\t0\tchr1\t101\t30\t10M5D20M\t*\t0\t0\t"+
		"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\tIIIIIIIIIIIIIIIIIIIIIIIIIIIIII")
	body, err := EncodeRecord(nil, &rec, h)
	if err != nil {
		t.Fatal(err)
	}
	refID, beg, end := bodySpan(body[4:])
	if refID != 0 {
		t.Errorf("refID = %d", refID)
	}
	if beg != 100 {
		t.Errorf("beg = %d, want 100", beg)
	}
	if end != 100+35 {
		t.Errorf("end = %d, want %d", end, 135)
	}
	// CIGAR-less record spans one base.
	un := mustParse(t, "r2\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII")
	body, err = EncodeRecord(nil, &un, h)
	if err != nil {
		t.Fatal(err)
	}
	refID, beg, end = bodySpan(body[4:])
	if refID != -1 || end != beg+1 {
		t.Errorf("unmapped span = %d [%d, %d)", refID, beg, end)
	}
}
