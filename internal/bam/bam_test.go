package bam

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/bgzf"
	"parseq/internal/sam"
)

func testHeader() *sam.Header {
	h := sam.NewHeader(
		sam.Reference{Name: "chr1", Length: 1000000},
		sam.Reference{Name: "chr2", Length: 500000},
	)
	h.SortOrder = sam.SortCoordinate
	return h
}

func mustParse(t testing.TB, line string) sam.Record {
	t.Helper()
	r, err := sam.ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord(%q): %v", line, err)
	}
	return r
}

var testLines = []string{
	"r001\t99\tchr1\t7\t30\t8M2I4M1D3M\t=\t37\t39\tTTAGATAAAGGATACTG\tIIIIIIIIIIIIIIIII\tNM:i:2\tRG:Z:grp1",
	"r002\t0\tchr2\t100\t60\t10M\t*\t0\t0\tAAAAACCCCC\tJJJJJJJJJJ",
	"r003\t16\tchr1\t500\t37\t5S12M\t*\t0\t0\tGGGGGTTTTTCCCCCAA\tABCDEFGHIJKLMNOPQ\tAS:f:-3.5\tXA:A:x",
	"r004\t4\t*\t0\t0\t*\t*\t0\t0\tACGTN\t*",
	"r005\t147\tchr1\t40\t29\t9M\t=\t7\t-42\tCGATCGATC\t*\tZB:B:c,1,-2,3\tZS:B:S,100,200\tZF:B:f,0.5,1.5\tMD:Z:9\tBQ:H:00FF",
}

func TestRecordCodecRoundTrip(t *testing.T) {
	h := testHeader()
	for _, line := range testLines {
		rec := mustParse(t, line)
		body, err := EncodeRecord(nil, &rec, h)
		if err != nil {
			t.Fatalf("EncodeRecord(%q): %v", line, err)
		}
		var got sam.Record
		if err := DecodeRecord(body[4:], &got, h); err != nil {
			t.Fatalf("DecodeRecord(%q): %v", line, err)
		}
		if got.String() != line {
			t.Errorf("round trip:\n got %q\nwant %q", got.String(), line)
		}
	}
}

func TestEncodeRejectsUnknownReference(t *testing.T) {
	h := testHeader()
	rec := mustParse(t, testLines[0])
	rec.RName = "chrZ"
	if _, err := EncodeRecord(nil, &rec, h); err == nil {
		t.Error("EncodeRecord with unknown reference succeeded")
	}
}

func TestEncodeRejectsLongQName(t *testing.T) {
	h := testHeader()
	rec := mustParse(t, testLines[1])
	rec.QName = strings.Repeat("q", 300)
	if _, err := EncodeRecord(nil, &rec, h); err == nil {
		t.Error("EncodeRecord with 300-byte QNAME succeeded")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	h := testHeader()
	rec := mustParse(t, testLines[0])
	body, err := EncodeRecord(nil, &rec, h)
	if err != nil {
		t.Fatal(err)
	}
	var got sam.Record
	for _, cut := range []int{4, 20, 36, len(body) - 1} {
		if err := DecodeRecord(body[4:cut], &got, h); err == nil {
			t.Errorf("DecodeRecord(body[:%d]) succeeded", cut)
		}
	}
}

func writeBAM(t testing.TB, h *sam.Header, recs []sam.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestFileRoundTrip(t *testing.T) {
	h := testHeader()
	var recs []sam.Record
	for _, line := range testLines {
		recs = append(recs, mustParse(t, line))
	}
	raw := writeBAM(t, h, recs)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := len(r.Header().Refs); got != 2 {
		t.Fatalf("header refs = %d, want 2", got)
	}
	if r.Header().SortOrder != sam.SortCoordinate {
		t.Errorf("SortOrder = %q", r.Header().SortOrder)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(testLines) {
		t.Fatalf("records = %d, want %d", len(got), len(testLines))
	}
	for i, line := range testLines {
		if got[i].String() != line {
			t.Errorf("record %d:\n got %q\nwant %q", i, got[i].String(), line)
		}
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	raw := writeBAM(t, testHeader(), nil)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("ReadAll = %d, %v", len(recs), err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a bam file at all"))); err == nil {
		t.Error("NewReader on garbage succeeded")
	}
	// Valid BGZF but wrong magic.
	var buf bytes.Buffer
	bw := bgzf.NewWriter(&buf)
	bw.Write([]byte("XXXX0000"))
	bw.Close()
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("NewReader on non-BAM BGZF succeeded")
	}
}

func TestReg2Bin(t *testing.T) {
	cases := []struct{ beg, end, want int }{
		{0, 1, 4681},
		{0, 1 << 14, 4681},
		{1 << 14, 1<<14 + 1, 4682},
		{0, 1<<14 + 1, 585},
		{0, 1 << 17, 585},
		{0, 1 << 20, 73},
		{0, 1 << 23, 9},
		{0, 1 << 26, 1},
		{0, 1 << 29, 0},
		{1 << 26, 1<<26 + 100, 4681 + (1<<26)>>14},
	}
	for _, tc := range cases {
		if got := reg2bin(tc.beg, tc.end); got != tc.want {
			t.Errorf("reg2bin(%d, %d) = %d, want %d", tc.beg, tc.end, got, tc.want)
		}
	}
}

// Property: reg2bins(beg,end) always contains reg2bin(b,e) for any
// sub-interval [b,e) of [beg,end) — the query must never miss a bin an
// overlapping alignment could be filed under.
func TestReg2BinsCoversContainedIntervals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		beg := rng.Intn(1 << 28)
		end := beg + 1 + rng.Intn(1<<16)
		bins := reg2bins(nil, beg, end)
		inBins := make(map[int]bool, len(bins))
		for _, b := range bins {
			inBins[b] = true
		}
		for trial := 0; trial < 20; trial++ {
			b := beg + rng.Intn(end-beg)
			e := b + 1 + rng.Intn(end-b)
			if !inBins[reg2bin(b, e)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: any alignment overlapping the query region is filed in a bin
// reg2bins returns, even when the alignment extends beyond the region.
func TestReg2BinsCoversOverlappingAlignments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qb := rng.Intn(1 << 27)
		qe := qb + 1 + rng.Intn(1<<18)
		bins := reg2bins(nil, qb, qe)
		inBins := make(map[int]bool, len(bins))
		for _, b := range bins {
			inBins[b] = true
		}
		for trial := 0; trial < 20; trial++ {
			// Alignment overlapping the query.
			ab := qb - rng.Intn(1<<14)
			if ab < 0 {
				ab = 0
			}
			ae := qb + 1 + rng.Intn(1<<15)
			if !inBins[reg2bin(ab, ae)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func makeSortedBAM(t testing.TB, n int) ([]byte, *Index, *sam.Header) {
	t.Helper()
	h := testHeader()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(len(h.Refs))
	rng := rand.New(rand.NewSource(42))
	pos := int32(1)
	for i := 0; i < n; i++ {
		pos += int32(rng.Intn(50))
		rec := sam.Record{
			QName: "q", Flag: 0, RName: "chr1", Pos: pos, MapQ: 60,
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, 90)},
			RNext: "*", Seq: strings.Repeat("A", 90), Qual: strings.Repeat("I", 90),
		}
		beg := w.Offset()
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
		if err := idx.Add(0, int(rec.Pos-1), int(rec.End()), beg, w.Offset()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), idx, h
}

func TestIndexQueryFindsAllOverlaps(t *testing.T) {
	raw, idx, _ := makeSortedBAM(t, 2000)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	queryBeg, queryEnd := 10000, 20000 // zero-based half-open
	want := 0
	for i := range all {
		if int(all[i].Pos-1) < queryEnd && int(all[i].End()) > queryBeg {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test query region matches no records; adjust the generator")
	}

	got := 0
	for _, chunk := range idx.Query(0, queryBeg, queryEnd) {
		if err := r.Seek(chunk.Beg); err != nil {
			t.Fatalf("Seek: %v", err)
		}
		var rec sam.Record
		for r.Offset() < chunk.End {
			if err := r.ReadInto(&rec); err != nil {
				t.Fatalf("ReadInto: %v", err)
			}
			if int(rec.Pos-1) < queryEnd && int(rec.End()) > queryBeg {
				got++
			}
		}
	}
	if got != want {
		t.Errorf("index query found %d overlapping records, want %d", got, want)
	}
}

func TestIndexSerializationRoundTrip(t *testing.T) {
	_, idx, _ := makeSortedBAM(t, 500)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if got.NumRefs() != idx.NumRefs() {
		t.Fatalf("NumRefs = %d, want %d", got.NumRefs(), idx.NumRefs())
	}
	for _, q := range [][2]int{{0, 1000}, {5000, 15000}, {0, 1 << 20}} {
		a := idx.Query(0, q[0], q[1])
		b := got.Query(0, q[0], q[1])
		if len(a) != len(b) {
			t.Errorf("Query(%v): %d vs %d chunks", q, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("Query(%v)[%d]: %v vs %v", q, i, a[i], b[i])
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("ReadIndex on garbage succeeded")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("BAI\x01\xff\xff\xff\xff"))); err == nil {
		t.Error("ReadIndex with negative refs succeeded")
	}
}

func TestIndexQueryEdgeCases(t *testing.T) {
	idx := NewIndex(1)
	if got := idx.Query(-1, 0, 10); got != nil {
		t.Errorf("Query(refID=-1) = %v", got)
	}
	if got := idx.Query(5, 0, 10); got != nil {
		t.Errorf("Query(refID=5) = %v", got)
	}
	if got := idx.Query(0, 10, 10); got != nil {
		t.Errorf("Query(empty interval) = %v", got)
	}
	if err := idx.Add(-1, 0, 10, 0, 1); err != nil {
		t.Errorf("Add(refID=-1) = %v, want nil (skip)", err)
	}
	if err := idx.Add(3, 0, 10, 0, 1); err == nil {
		t.Error("Add(refID out of range) succeeded")
	}
}

func TestSeekAndReread(t *testing.T) {
	h := testHeader()
	var recs []sam.Record
	for _, line := range testLines {
		recs = append(recs, mustParse(t, line))
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []bgzf.VOffset
	for i := range recs {
		offsets = append(offsets, w.Offset())
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if err := r.Seek(offsets[i]); err != nil {
			t.Fatalf("Seek(%v): %v", offsets[i], err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read after seek: %v", err)
		}
		if got.String() != testLines[i] {
			t.Errorf("record %d after seek mismatch", i)
		}
	}
}

// Property: encode→decode is the identity over randomized records.
func TestCodecProperty(t *testing.T) {
	h := testHeader()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		bases := "ACGTN"
		seq := make([]byte, n)
		qual := make([]byte, n)
		for i := range seq {
			seq[i] = bases[rng.Intn(5)]
			qual[i] = byte(33 + rng.Intn(93))
		}
		rec := sam.Record{
			QName: "q" + strings.Repeat("n", rng.Intn(20)),
			Flag:  sam.Flag(rng.Intn(1 << 12)),
			RName: "chr1",
			Pos:   int32(rng.Intn(1<<20)) + 1,
			MapQ:  uint8(rng.Intn(255)),
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, n)},
			RNext: "*",
			TLen:  int32(rng.Intn(1<<16)) - 1<<15,
			Seq:   string(seq),
			Qual:  string(qual),
			Tags: []sam.Tag{
				sam.IntTag("NM", int64(rng.Intn(1<<30))-1<<29),
				sam.StringTag("RG", "grp"),
			},
		}
		body, err := EncodeRecord(nil, &rec, h)
		if err != nil {
			return false
		}
		var got sam.Record
		if err := DecodeRecord(body[4:], &got, h); err != nil {
			return false
		}
		return got.String() == rec.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	h := testHeader()
	rec := mustParse(b, testLines[0])
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeRecord(buf[:0], &rec, h)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	h := testHeader()
	rec := mustParse(b, testLines[0])
	body, err := EncodeRecord(nil, &rec, h)
	if err != nil {
		b.Fatal(err)
	}
	var got sam.Record
	for i := 0; i < b.N; i++ {
		if err := DecodeRecord(body[4:], &got, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileRead(b *testing.B) {
	raw, _, _ := makeSortedBAM(b, 5000)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var rec sam.Record
		for {
			if err := r.ReadInto(&rec); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
