// Package bam implements the BAM binary encoding of SAM alignments on top
// of the bgzf package: the file header with its reference dictionary,
// little-endian record codec (4-bit packed sequences, binary CIGAR, typed
// auxiliary tags) and the BAI index with the UCSC R-tree binning scheme.
package bam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"parseq/internal/kern"
	"parseq/internal/sam"
)

// Magic identifies a BAM stream after BGZF decompression.
var Magic = []byte{'B', 'A', 'M', 1}

// ErrInvalidRecord reports a malformed binary record.
var ErrInvalidRecord = errors.New("bam: invalid record")

// seqNibbles maps 4-bit sequence codes to bases per the specification;
// the pack/unpack loops themselves run in the word-wide kern layer.
const seqNibbles = kern.SeqChars

// EncodeRecord appends the binary form of rec (including the leading
// block_size field) to dst and returns the extended slice. The header is
// used to resolve reference names to IDs.
func EncodeRecord(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	refID := h.RefID(rec.RName)
	nextRefID := refID
	switch rec.RNext {
	case "=":
	case "*":
		nextRefID = -1
	default:
		nextRefID = h.RefID(rec.RNext)
	}
	if rec.RName != "*" && refID < 0 {
		return nil, fmt.Errorf("%w: reference %q not in header", ErrInvalidRecord, rec.RName)
	}

	nameLen := len(rec.QName) + 1 // NUL-terminated
	if nameLen > 255 {
		return nil, fmt.Errorf("%w: QNAME longer than 254 bytes", ErrInvalidRecord)
	}
	seqLen := 0
	if rec.Seq != "*" {
		seqLen = len(rec.Seq)
	}

	sizePos := len(dst)
	dst = append(dst, 0, 0, 0, 0) // block_size placeholder
	dst = appendInt32(dst, int32(refID))
	dst = appendInt32(dst, rec.Pos-1) // BAM positions are 0-based
	dst = append(dst, byte(nameLen), rec.MapQ)
	bin := reg2bin(int(rec.Pos-1), int(rec.End()))
	if rec.Unmapped() {
		bin = 4680 // convention for unplaced reads: bin of [-1, 0)
	}
	dst = appendUint16(dst, uint16(bin))
	dst = appendUint16(dst, uint16(len(rec.Cigar)))
	dst = appendUint16(dst, uint16(rec.Flag))
	dst = appendInt32(dst, int32(seqLen))
	dst = appendInt32(dst, int32(nextRefID))
	dst = appendInt32(dst, rec.PNext-1)
	dst = appendInt32(dst, rec.TLen)
	dst = append(dst, rec.QName...)
	dst = append(dst, 0)
	for _, op := range rec.Cigar {
		dst = appendUint32(dst, uint32(op))
	}
	if seqLen > 0 {
		var tail []byte
		dst, tail = kern.Grow(dst, (seqLen+1)/2)
		kern.PackSeq(tail, kern.StringBytes(rec.Seq))
		dst, tail = kern.Grow(dst, seqLen)
		if rec.Qual == "*" {
			kern.Fill(tail, 0xff)
		} else {
			kern.AddConst(tail, kern.StringBytes(rec.Qual)[:seqLen], 256-33)
		}
	}
	var err error
	for _, tag := range rec.Tags {
		dst, err = appendTag(dst, tag)
		if err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(dst[sizePos:], uint32(len(dst)-sizePos-4))
	return dst, nil
}

func appendInt32(dst []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(v))
}

func appendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendUint16(dst []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(dst, v)
}

// appendTag encodes one auxiliary field.
func appendTag(dst []byte, tag sam.Tag) ([]byte, error) {
	dst = append(dst, tag.Name[0], tag.Name[1])
	switch tag.Type {
	case 'A':
		if len(tag.Value) != 1 {
			return nil, fmt.Errorf("%w: A tag %s", ErrInvalidRecord, tag.NameString())
		}
		dst = append(dst, 'A', tag.Value[0])
	case 'i':
		v, err := strconv.ParseInt(tag.Value, 10, 64)
		if err != nil || v < math.MinInt32 || v > math.MaxUint32 {
			return nil, fmt.Errorf("%w: i tag %s value %q", ErrInvalidRecord, tag.NameString(), tag.Value)
		}
		if v > math.MaxInt32 {
			dst = append(dst, 'I')
			dst = appendUint32(dst, uint32(v))
		} else {
			dst = append(dst, 'i')
			dst = appendInt32(dst, int32(v))
		}
	case 'f':
		v, err := strconv.ParseFloat(tag.Value, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: f tag %s value %q", ErrInvalidRecord, tag.NameString(), tag.Value)
		}
		dst = append(dst, 'f')
		dst = appendUint32(dst, math.Float32bits(float32(v)))
	case 'Z', 'H':
		dst = append(dst, tag.Type)
		dst = append(dst, tag.Value...)
		dst = append(dst, 0)
	case 'B':
		return appendArrayTag(dst, tag)
	default:
		return nil, fmt.Errorf("%w: unknown tag type %c", ErrInvalidRecord, tag.Type)
	}
	return dst, nil
}

func appendArrayTag(dst []byte, tag sam.Tag) ([]byte, error) {
	sub, err := tag.ArraySubtype()
	if err != nil {
		return nil, err
	}
	parts := strings.Split(tag.Value, ",")[1:]
	dst = append(dst, 'B', sub)
	dst = appendUint32(dst, uint32(len(parts)))
	for _, p := range parts {
		if sub == 'f' {
			v, err := strconv.ParseFloat(p, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: B tag element %q", ErrInvalidRecord, p)
			}
			dst = appendUint32(dst, math.Float32bits(float32(v)))
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: B tag element %q", ErrInvalidRecord, p)
		}
		switch sub {
		case 'c', 'C':
			dst = append(dst, byte(v))
		case 's', 'S':
			dst = appendUint16(dst, uint16(v))
		case 'i', 'I':
			dst = appendUint32(dst, uint32(v))
		}
	}
	return dst, nil
}

// DecodeRecord parses one record body (after the block_size field) into
// rec. refs resolves reference IDs to names.
func DecodeRecord(body []byte, rec *sam.Record, h *sam.Header) error {
	const fixed = 32
	if len(body) < fixed {
		return fmt.Errorf("%w: %d-byte body", ErrInvalidRecord, len(body))
	}
	refID := int32(binary.LittleEndian.Uint32(body[0:]))
	pos := int32(binary.LittleEndian.Uint32(body[4:]))
	nameLen := int(body[8])
	rec.MapQ = body[9]
	// bin at body[10:12] is derivable; skipped on decode.
	nCigar := int(binary.LittleEndian.Uint16(body[12:]))
	rec.Flag = sam.Flag(binary.LittleEndian.Uint16(body[14:]))
	seqLen := int(int32(binary.LittleEndian.Uint32(body[16:])))
	nextRefID := int32(binary.LittleEndian.Uint32(body[20:]))
	nextPos := int32(binary.LittleEndian.Uint32(body[24:]))
	rec.TLen = int32(binary.LittleEndian.Uint32(body[28:]))

	if seqLen < 0 || nameLen < 1 {
		return fmt.Errorf("%w: negative lengths", ErrInvalidRecord)
	}
	need := fixed + nameLen + nCigar*4 + (seqLen+1)/2 + seqLen
	if len(body) < need {
		return fmt.Errorf("%w: body %d bytes, need %d", ErrInvalidRecord, len(body), need)
	}

	rec.RName = h.RefByID(int(refID)).Name
	rec.Pos = pos + 1
	switch {
	case nextRefID < 0:
		rec.RNext = "*"
	case nextRefID == refID && refID >= 0:
		rec.RNext = "="
	default:
		rec.RNext = h.RefByID(int(nextRefID)).Name
	}
	rec.PNext = nextPos + 1

	off := fixed
	if nameLen > 0 && body[off+nameLen-1] != 0 {
		return fmt.Errorf("%w: read name not NUL-terminated", ErrInvalidRecord)
	}
	rec.QName = string(body[off : off+nameLen-1])
	if rec.QName == "" {
		rec.QName = "*"
	}
	off += nameLen

	if nCigar == 0 {
		rec.Cigar = nil
	} else {
		rec.Cigar = make(sam.Cigar, nCigar)
		for i := 0; i < nCigar; i++ {
			rec.Cigar[i] = sam.CigarOp(binary.LittleEndian.Uint32(body[off+i*4:]))
		}
	}
	off += nCigar * 4

	if seqLen == 0 {
		rec.Seq = "*"
		rec.Qual = "*"
	} else {
		seq := make([]byte, seqLen)
		kern.UnpackSeq(seq, body[off:], seqLen)
		rec.Seq = kern.BytesString(seq)
		off += (seqLen + 1) / 2
		if body[off] == 0xff {
			rec.Qual = "*"
		} else {
			qual := make([]byte, seqLen)
			kern.AddConst(qual, body[off:off+seqLen], 33)
			rec.Qual = kern.BytesString(qual)
		}
		off = fixed + nameLen + nCigar*4 + (seqLen+1)/2 + seqLen
	}
	if seqLen == 0 {
		off = fixed + nameLen + nCigar*4
	}

	rec.Tags = rec.Tags[:0]
	return decodeTags(body[off:], rec)
}

func decodeTags(aux []byte, rec *sam.Record) error {
	for len(aux) > 0 {
		if len(aux) < 3 {
			return fmt.Errorf("%w: truncated tag", ErrInvalidRecord)
		}
		var tag sam.Tag
		tag.Name[0], tag.Name[1] = aux[0], aux[1]
		typ := aux[2]
		aux = aux[3:]
		var err error
		aux, tag, err = decodeTagValue(aux, tag, typ)
		if err != nil {
			return err
		}
		rec.Tags = append(rec.Tags, tag)
	}
	return nil
}

func decodeTagValue(aux []byte, tag sam.Tag, typ byte) ([]byte, sam.Tag, error) {
	intVal := func(n int, signed bool) (int64, error) {
		if len(aux) < n {
			return 0, fmt.Errorf("%w: truncated %c tag", ErrInvalidRecord, typ)
		}
		var u uint64
		for i := 0; i < n; i++ {
			u |= uint64(aux[i]) << (8 * i)
		}
		aux = aux[n:]
		if signed {
			switch n {
			case 1:
				return int64(int8(u)), nil
			case 2:
				return int64(int16(u)), nil
			default:
				return int64(int32(u)), nil
			}
		}
		return int64(u), nil
	}
	switch typ {
	case 'A':
		if len(aux) < 1 {
			return nil, tag, fmt.Errorf("%w: truncated A tag", ErrInvalidRecord)
		}
		tag.Type = 'A'
		tag.Value = string(aux[:1])
		return aux[1:], tag, nil
	case 'c', 'C', 's', 'S', 'i', 'I':
		width := map[byte]int{'c': 1, 'C': 1, 's': 2, 'S': 2, 'i': 4, 'I': 4}[typ]
		signed := typ == 'c' || typ == 's' || typ == 'i'
		v, err := intVal(width, signed)
		if err != nil {
			return nil, tag, err
		}
		tag.Type = 'i'
		tag.Value = strconv.FormatInt(v, 10)
		return aux, tag, nil
	case 'f':
		if len(aux) < 4 {
			return nil, tag, fmt.Errorf("%w: truncated f tag", ErrInvalidRecord)
		}
		bits := binary.LittleEndian.Uint32(aux)
		tag.Type = 'f'
		tag.Value = strconv.FormatFloat(float64(math.Float32frombits(bits)), 'g', -1, 32)
		return aux[4:], tag, nil
	case 'Z', 'H':
		i := 0
		for i < len(aux) && aux[i] != 0 {
			i++
		}
		if i == len(aux) {
			return nil, tag, fmt.Errorf("%w: unterminated %c tag", ErrInvalidRecord, typ)
		}
		tag.Type = typ
		tag.Value = string(aux[:i])
		return aux[i+1:], tag, nil
	case 'B':
		if len(aux) < 5 {
			return nil, tag, fmt.Errorf("%w: truncated B tag", ErrInvalidRecord)
		}
		sub := aux[0]
		count := int(binary.LittleEndian.Uint32(aux[1:]))
		aux = aux[5:]
		width := map[byte]int{'c': 1, 'C': 1, 's': 2, 'S': 2, 'i': 4, 'I': 4, 'f': 4}[sub]
		if width == 0 {
			return nil, tag, fmt.Errorf("%w: B tag subtype %c", ErrInvalidRecord, sub)
		}
		if len(aux) < count*width {
			return nil, tag, fmt.Errorf("%w: truncated B tag array", ErrInvalidRecord)
		}
		var b strings.Builder
		b.WriteByte(sub)
		for i := 0; i < count; i++ {
			b.WriteByte(',')
			el := aux[i*width : (i+1)*width]
			if sub == 'f' {
				bits := binary.LittleEndian.Uint32(el)
				b.WriteString(strconv.FormatFloat(float64(math.Float32frombits(bits)), 'g', -1, 32))
				continue
			}
			var u uint64
			for j := 0; j < width; j++ {
				u |= uint64(el[j]) << (8 * j)
			}
			var v int64
			switch {
			case sub == 'c':
				v = int64(int8(u))
			case sub == 's':
				v = int64(int16(u))
			case sub == 'i':
				v = int64(int32(u))
			default:
				v = int64(u)
			}
			b.WriteString(strconv.FormatInt(v, 10))
		}
		tag.Type = 'B'
		tag.Value = b.String()
		return aux[count*width:], tag, nil
	default:
		return nil, tag, fmt.Errorf("%w: unknown tag type %c", ErrInvalidRecord, typ)
	}
}
