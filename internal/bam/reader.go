package bam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"parseq/internal/bgzf"
	"parseq/internal/sam"
)

// Option configures how a Reader or Writer drives the BGZF codec.
type Option func(*codecOptions)

type codecOptions struct {
	workers int
	shared  bool
}

// WithCodecWorkers selects the number of BGZF codec workers. Values
// above 1 route compression/decompression through the parallel codec;
// 0 or 1 keep the sequential codec. Both produce bit-identical streams
// and virtual offsets, so indexes built against either resolve on both.
func WithCodecWorkers(n int) Option {
	return func(o *codecOptions) { o.workers = n }
}

// WithSharedCodec attaches a Writer's compression to the process-wide
// bgzf.SharedPool instead of a private worker pool. Output bytes are
// identical; the difference is purely operational — short-lived writers
// (per-rank shards, sorter spill runs) share one throughput-sized pool
// rather than each starting and stopping their own. Readers ignore the
// option. It takes precedence over WithCodecWorkers on the write side.
func WithSharedCodec() Option {
	return func(o *codecOptions) { o.shared = true }
}

func applyOptions(opts []Option) codecOptions {
	var o codecOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Reader decodes a BAM stream: the BAM header (SAM header text plus the
// binary reference dictionary) eagerly, then one record per Read call.
type Reader struct {
	bg        bgzf.BlockReader
	header    *sam.Header
	dataStart bgzf.VOffset // virtual offset of the first record
	buf       []byte       // reusable record-body buffer
	sizeBuf   [4]byte      // block_size scratch; a local would escape per call
	err       error
}

// NewReader wraps a BGZF-compressed BAM stream and decodes the header.
// By default blocks inflate on the calling goroutine; pass
// WithCodecWorkers(n) with n > 1 to decode ahead on a worker pool.
func NewReader(r io.Reader, opts ...Option) (*Reader, error) {
	o := applyOptions(opts)
	var bg bgzf.BlockReader
	if o.workers > 1 {
		bg = bgzf.NewParallelReader(r, o.workers)
	} else {
		bg = bgzf.NewReader(r)
	}
	br := &Reader{bg: bg}
	if err := br.readHeader(); err != nil {
		// The parallel codec runs goroutines; release them before
		// reporting the malformed header.
		br.Close()
		return nil, err
	}
	br.dataStart = br.bg.Offset()
	return br, nil
}

func (br *Reader) readHeader() error {
	var magic [4]byte
	if _, err := io.ReadFull(br.bg, magic[:]); err != nil {
		return fmt.Errorf("bam: reading magic: %w", err)
	}
	if string(magic[:]) != string(Magic) {
		return errors.New("bam: bad magic (not a BAM file)")
	}
	var n int32
	if err := binary.Read(br.bg, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("bam: header length: %w", err)
	}
	if n < 0 {
		return errors.New("bam: negative header length")
	}
	text := make([]byte, n)
	if _, err := io.ReadFull(br.bg, text); err != nil {
		return fmt.Errorf("bam: header text: %w", err)
	}
	h, err := sam.ParseHeader(string(text))
	if err != nil {
		return err
	}
	var nRef int32
	if err := binary.Read(br.bg, binary.LittleEndian, &nRef); err != nil {
		return fmt.Errorf("bam: reference count: %w", err)
	}
	for i := int32(0); i < nRef; i++ {
		var lName int32
		if err := binary.Read(br.bg, binary.LittleEndian, &lName); err != nil {
			return fmt.Errorf("bam: reference %d: %w", i, err)
		}
		if lName <= 0 {
			return fmt.Errorf("bam: reference %d: bad name length %d", i, lName)
		}
		name := make([]byte, lName)
		if _, err := io.ReadFull(br.bg, name); err != nil {
			return fmt.Errorf("bam: reference %d name: %w", i, err)
		}
		var lRef int32
		if err := binary.Read(br.bg, binary.LittleEndian, &lRef); err != nil {
			return fmt.Errorf("bam: reference %d length: %w", i, err)
		}
		// The binary dictionary is authoritative; the SAM text usually
		// repeats it, and AddReference deduplicates.
		h.AddReference(string(name[:lName-1]), int(lRef))
	}
	br.header = h
	return nil
}

// Close releases codec resources. It matters for the parallel codec,
// which keeps a worker pool alive until the stream is drained or
// closed; on the sequential codec it is a no-op.
func (br *Reader) Close() error {
	if c, ok := br.bg.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Header returns the decoded header.
func (br *Reader) Header() *sam.Header { return br.header }

// Offset returns the virtual offset of the next record.
func (br *Reader) Offset() bgzf.VOffset { return br.bg.Offset() }

// DataStart returns the virtual offset of the first record — just past
// the header. Seeking here rewinds the stream to the record section,
// which an empty index (no mapped records) cannot describe.
func (br *Reader) DataStart() bgzf.VOffset { return br.dataStart }

// Seek positions the reader at a virtual offset previously obtained from
// Offset or from an index.
func (br *Reader) Seek(v bgzf.VOffset) error {
	if err := br.bg.Seek(v); err != nil {
		return err
	}
	br.err = nil
	return nil
}

// Read decodes the next record. It returns io.EOF at the end of stream.
func (br *Reader) Read() (sam.Record, error) {
	var rec sam.Record
	err := br.ReadInto(&rec)
	return rec, err
}

// ReadInto decodes the next record into rec, reusing its storage.
func (br *Reader) ReadInto(rec *sam.Record) error {
	body, err := br.ReadBody()
	if err != nil {
		return err
	}
	if err := DecodeRecord(body, rec, br.header); err != nil {
		br.err = err
		return err
	}
	return nil
}

// ReadBody returns the next record's raw encoded body (without the
// block_size prefix). The slice is valid until the next Read* call. It
// is the zero-decode path preprocessors use to measure and relocate
// records without materialising alignment objects.
func (br *Reader) ReadBody() ([]byte, error) {
	if br.err != nil {
		return nil, br.err
	}
	if _, err := io.ReadFull(br.bg, br.sizeBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: truncated record size", ErrInvalidRecord)
		}
		br.err = err
		return nil, err
	}
	size := int(int32(binary.LittleEndian.Uint32(br.sizeBuf[:])))
	if size < 32 {
		br.err = fmt.Errorf("%w: block_size %d", ErrInvalidRecord, size)
		return nil, br.err
	}
	if cap(br.buf) < size {
		br.buf = make([]byte, size)
	}
	body := br.buf[:size]
	if _, err := io.ReadFull(br.bg, body); err != nil {
		br.err = fmt.Errorf("%w: truncated record body: %v", ErrInvalidRecord, err)
		return nil, br.err
	}
	return body, nil
}

// ReadAll consumes the remaining records.
func (br *Reader) ReadAll() ([]sam.Record, error) {
	var recs []sam.Record
	for {
		rec, err := br.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Writer encodes records into a BAM stream.
type Writer struct {
	bg     bgzf.BlockWriter
	header *sam.Header
	buf    []byte
	err    error
}

// NewWriter wraps w, writing the BAM header immediately. Pass
// WithCodecWorkers(n) with n > 1 to compress blocks on a worker pool;
// the emitted bytes are identical either way.
func NewWriter(w io.Writer, h *sam.Header, opts ...Option) (*Writer, error) {
	o := applyOptions(opts)
	var bg bgzf.BlockWriter
	switch {
	case o.shared:
		bg = bgzf.NewSharedParallelWriter(w)
	case o.workers > 1:
		bg = bgzf.NewParallelWriter(w, o.workers)
	default:
		bg = bgzf.NewWriter(w)
	}
	bw := &Writer{bg: bg, header: h}
	text := h.String()
	hdr := make([]byte, 0, 16+len(text))
	hdr = append(hdr, Magic...)
	hdr = appendInt32(hdr, int32(len(text)))
	hdr = append(hdr, text...)
	hdr = appendInt32(hdr, int32(len(h.Refs)))
	for _, ref := range h.Refs {
		hdr = appendInt32(hdr, int32(len(ref.Name)+1))
		hdr = append(hdr, ref.Name...)
		hdr = append(hdr, 0)
		hdr = appendInt32(hdr, int32(ref.Length))
	}
	if _, err := bw.bg.Write(hdr); err != nil {
		bw.bg.Close()
		return nil, err
	}
	return bw, nil
}

// Offset returns the virtual offset the next record will be written at.
// Callers building an index record this before each Write.
func (bw *Writer) Offset() bgzf.VOffset { return bw.bg.Offset() }

// Write encodes one record.
func (bw *Writer) Write(rec *sam.Record) error {
	if bw.err != nil {
		return bw.err
	}
	var err error
	bw.buf, err = EncodeRecord(bw.buf[:0], rec, bw.header)
	if err != nil {
		bw.err = err
		return err
	}
	if _, err := bw.bg.Write(bw.buf); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// WriteEncoded writes one or more records already encoded with
// EncodeRecord (block_size prefixes included). The BGZF layer is
// agnostic to write granularity, so a batch of pre-encoded records
// produces bytes identical to the equivalent per-record Write calls —
// this is the handoff the pipelined converter uses to move record
// encoding onto its parse workers.
func (bw *Writer) WriteEncoded(p []byte) error {
	if bw.err != nil {
		return bw.err
	}
	if len(p) == 0 {
		return nil
	}
	if _, err := bw.bg.Write(p); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// Close flushes pending blocks and writes the BGZF EOF marker.
func (bw *Writer) Close() error {
	if bw.err != nil {
		// Still release the codec (worker pool, buffers) before
		// reporting the sticky error.
		bw.bg.Close()
		return bw.err
	}
	return bw.bg.Close()
}
