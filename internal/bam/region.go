package bam

import (
	"encoding/binary"
	"fmt"
	"io"

	"parseq/internal/sam"
)

// bodySpan extracts the reference span of a BAM record body without a
// full decode: refID, zero-based start, and zero-based exclusive end
// (start+1 for unmapped or CIGAR-less records, per samtools convention).
func bodySpan(body []byte) (refID int32, beg, end int) {
	refID = int32(binary.LittleEndian.Uint32(body[0:]))
	beg = int(int32(binary.LittleEndian.Uint32(body[4:])))
	nameLen := int(body[8])
	nCigar := int(binary.LittleEndian.Uint16(body[12:]))
	refLen := 0
	off := 32 + nameLen
	for i := 0; i < nCigar; i++ {
		op := sam.CigarOp(binary.LittleEndian.Uint32(body[off+4*i:]))
		if op.Type().ConsumesReference() {
			refLen += op.Len()
		}
	}
	if refLen == 0 {
		refLen = 1
	}
	return refID, beg, beg + refLen
}

// BuildFileIndex scans a coordinate-sorted BAM stream and builds its BAI
// index. The stream is consumed; callers reopen or seek to read again.
func BuildFileIndex(r io.Reader) (*Index, error) {
	return BuildFileIndexWorkers(r, 0)
}

// BuildFileIndexWorkers is BuildFileIndex with BGZF inflation pipelined
// over `workers` codec goroutines (≤ 1 keeps the sequential codec). The
// scan itself stays sequential — virtual offsets must be observed in
// stream order — but block decompression parallelises under it.
func BuildFileIndexWorkers(r io.Reader, workers int) (*Index, error) {
	br, err := NewReader(r, WithCodecWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer br.Close()
	idx := NewIndex(len(br.Header().Refs))
	lastRef, lastPos := int32(-1), -1
	for {
		chunkBeg := br.Offset()
		body, err := br.ReadBody()
		if err == io.EOF {
			return idx, nil
		}
		if err != nil {
			return nil, err
		}
		refID, beg, end := bodySpan(body)
		if refID >= 0 {
			if refID < lastRef || (refID == lastRef && beg < lastPos) {
				return nil, fmt.Errorf("bam: input not coordinate-sorted at %s:%d",
					br.Header().RefByID(int(refID)).Name, beg+1)
			}
			lastRef, lastPos = refID, beg
		}
		if err := idx.Add(int(refID), beg, end, chunkBeg, br.Offset()); err != nil {
			return nil, err
		}
	}
}

// BodySpan is bodySpan for callers outside the package (the shard
// provider's zero-decode tallies): refID, zero-based start, and
// zero-based exclusive end of an encoded record body.
func BodySpan(body []byte) (refID int32, beg, end int) {
	return bodySpan(body)
}

// RegionReader iterates the records of an indexed BAM file that overlap
// one zero-based half-open reference interval, in file order.
//
// Two membership modes exist. The default keeps every record whose span
// *overlaps* [beg, end) — the samtools-view contract, where a record
// straddling a boundary appears in both adjacent regions. The shard
// mode (NewShardRegionReader) keeps only records that *start* in
// [beg, end), so a partition of a reference into half-open intervals
// yields every record exactly once — the property region-parallel
// analysis needs to merge per-shard tallies without double counting.
type RegionReader struct {
	br          *Reader
	chunks      []Chunk
	chunk       int
	inChunk     bool
	refID       int32
	beg, end    int
	startWithin bool
	err         error
}

// NewRegionReader positions a reader over the records overlapping
// [beg, end) on refName. The reader's underlying stream must be seekable.
func NewRegionReader(br *Reader, idx *Index, refName string, beg, end int) (*RegionReader, error) {
	refID := br.Header().RefID(refName)
	if refID < 0 {
		return nil, fmt.Errorf("bam: reference %q not in header", refName)
	}
	return &RegionReader{
		br:     br,
		chunks: idx.Query(refID, beg, end),
		refID:  int32(refID),
		beg:    beg,
		end:    end,
	}, nil
}

// NewShardRegionReader is NewRegionReader in start-within mode: only
// records whose alignment starts in [beg, end) are returned, so
// adjacent shards never both claim a boundary-spanning record.
func NewShardRegionReader(br *Reader, idx *Index, refName string, beg, end int) (*RegionReader, error) {
	rr, err := NewRegionReader(br, idx, refName, beg, end)
	if err != nil {
		return nil, err
	}
	rr.startWithin = true
	return rr, nil
}

// Read returns the next overlapping record, or io.EOF.
func (rr *RegionReader) Read() (sam.Record, error) {
	var rec sam.Record
	err := rr.ReadInto(&rec)
	return rec, err
}

// NextBody returns the next in-region record's encoded body without
// decoding it — the zero-allocation path under CountRegion and the
// shard tallies. The slice aliases the reader's internal buffer and is
// valid only until the next call. Returns io.EOF when exhausted.
func (rr *RegionReader) NextBody() ([]byte, error) {
	if rr.err != nil {
		return nil, rr.err
	}
	for {
		if !rr.inChunk {
			if rr.chunk >= len(rr.chunks) {
				rr.err = io.EOF
				return nil, rr.err
			}
			if err := rr.br.Seek(rr.chunks[rr.chunk].Beg); err != nil {
				rr.err = err
				return nil, err
			}
			rr.inChunk = true
		}
		if rr.br.Offset() >= rr.chunks[rr.chunk].End {
			rr.chunk++
			rr.inChunk = false
			continue
		}
		body, err := rr.br.ReadBody()
		if err == io.EOF {
			rr.chunk++
			rr.inChunk = false
			continue
		}
		if err != nil {
			rr.err = err
			return nil, err
		}
		refID, beg, end := bodySpan(body)
		if refID != rr.refID {
			// Sorted input: past the reference means past the region.
			if refID > rr.refID {
				rr.chunk++
				rr.inChunk = false
			}
			continue
		}
		if beg >= rr.end {
			// Sorted within the reference: nothing later can overlap.
			rr.chunk++
			rr.inChunk = false
			continue
		}
		if rr.startWithin {
			if beg < rr.beg {
				continue
			}
		} else if end <= rr.beg {
			continue
		}
		return body, nil
	}
}

// ReadInto decodes the next overlapping record into rec, or returns
// io.EOF when the region is exhausted.
func (rr *RegionReader) ReadInto(rec *sam.Record) error {
	body, err := rr.NextBody()
	if err != nil {
		return err
	}
	if err := DecodeRecord(body, rec, rr.br.Header()); err != nil {
		rr.err = err
		return err
	}
	return nil
}

// CountRegion returns how many records overlap the region — the cheap
// index-backed census operation. It walks record bodies without
// decoding them, so the loop allocates nothing per record.
func CountRegion(br *Reader, idx *Index, refName string, beg, end int) (int, error) {
	rr, err := NewRegionReader(br, idx, refName, beg, end)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		if _, err := rr.NextBody(); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, err
		}
		n++
	}
}

// UnmappedTailReader iterates the fully unmapped records a
// coordinate-sorted BAM file places after the last mapped alignment.
// Paired with a start-within partition of every reference, it completes
// an exactly-once cover of the file: placed records come from exactly
// one region shard, placeless ones (refID -1) from exactly one tail
// shard. Records still carrying a reference are filtered out, so chunk
// ends that round up into the tail's first block cannot double count.
type UnmappedTailReader struct {
	br  *Reader
	err error
}

// NewUnmappedTailReader positions br at the end of the last indexed
// chunk (the start of the record section when the index holds no mapped
// records) and returns the tail iterator.
func NewUnmappedTailReader(br *Reader, idx *Index) (*UnmappedTailReader, error) {
	off := idx.EndOffset()
	if off == 0 {
		off = br.DataStart()
	}
	if err := br.Seek(off); err != nil {
		return nil, err
	}
	return &UnmappedTailReader{br: br}, nil
}

// NextBody returns the next unmapped record's encoded body, or io.EOF.
// The slice aliases the reader's internal buffer and is valid only
// until the next call.
func (ur *UnmappedTailReader) NextBody() ([]byte, error) {
	if ur.err != nil {
		return nil, ur.err
	}
	for {
		body, err := ur.br.ReadBody()
		if err != nil {
			ur.err = err
			return nil, err
		}
		if refID := int32(binary.LittleEndian.Uint32(body[0:])); refID >= 0 {
			continue
		}
		return body, nil
	}
}

// ReadInto decodes the next unmapped record into rec, or returns io.EOF.
func (ur *UnmappedTailReader) ReadInto(rec *sam.Record) error {
	body, err := ur.NextBody()
	if err != nil {
		return err
	}
	if err := DecodeRecord(body, rec, ur.br.Header()); err != nil {
		ur.err = err
		return err
	}
	return nil
}

// WriteIndexFile builds and writes a .bai file for a BAM file opened via
// the given ReadSeeker, restoring the stream position afterwards.
func WriteIndexFile(rs io.ReadSeeker, w io.Writer) error {
	start, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	idx, err := BuildFileIndex(rs)
	if err != nil {
		return err
	}
	if _, err := rs.Seek(start, io.SeekStart); err != nil {
		return err
	}
	_, err = idx.WriteTo(w)
	return err
}
