package bam

import (
	"bytes"
	"math/rand"
	"testing"

	"parseq/internal/sam"
)

// Binary decoders face hostile input (files from other tools); they must
// reject it with errors, never panic or over-read.
func TestDecodeRecordNeverPanicsOnMutations(t *testing.T) {
	h := testHeader()
	rec := mustParse(t, testLines[0])
	body, err := EncodeRecord(nil, &rec, h)
	if err != nil {
		t.Fatal(err)
	}
	body = body[4:]
	rng := rand.New(rand.NewSource(21))
	var out sam.Record
	for trial := 0; trial < 30000; trial++ {
		mutated := append([]byte(nil), body...)
		switch rng.Intn(3) {
		case 0: // flip bytes
			for m := 0; m <= rng.Intn(4); m++ {
				mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
			}
		case 1: // truncate
			mutated = mutated[:rng.Intn(len(mutated))]
		case 2: // extend with garbage
			extra := make([]byte, rng.Intn(32))
			rng.Read(extra)
			mutated = append(mutated, extra...)
		}
		_ = DecodeRecord(mutated, &out, h) // must not panic
	}
}

func TestDecodeRecordRandomBytes(t *testing.T) {
	h := testHeader()
	rng := rand.New(rand.NewSource(22))
	var out sam.Record
	for trial := 0; trial < 10000; trial++ {
		body := make([]byte, rng.Intn(200))
		rng.Read(body)
		_ = DecodeRecord(body, &out, h)
	}
}

// Whole-file fuzzing: mutated BAM streams must error out, not crash the
// reader.
func TestReaderNeverPanicsOnMutatedFiles(t *testing.T) {
	h := testHeader()
	var recs []sam.Record
	for _, line := range testLines {
		recs = append(recs, mustParse(t, line))
	}
	raw := writeBAM(t, h, recs)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		mutated := append([]byte(nil), raw...)
		for m := 0; m <= rng.Intn(6); m++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		r, err := NewReader(bytes.NewReader(mutated))
		if err != nil {
			continue
		}
		var rec sam.Record
		for i := 0; i < len(recs)+2; i++ {
			if err := r.ReadInto(&rec); err != nil {
				break
			}
		}
	}
}

func TestReadIndexNeverPanicsOnMutations(t *testing.T) {
	_, idx, _ := makeSortedBAM(t, 200)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), raw...)
		switch rng.Intn(2) {
		case 0:
			for m := 0; m <= rng.Intn(4); m++ {
				mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
			}
		case 1:
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		if got, err := ReadIndex(bytes.NewReader(mutated)); err == nil {
			// A surviving index must still answer queries sanely.
			_ = got.Query(0, 0, 1<<20)
		}
	}
}
