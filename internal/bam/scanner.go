// Zero-copy and parallel record scanning. Both scanners here sit on the
// codec's BlockSource face (bgzf.Reader and bgzf.ParallelReader alike):
// whole inflated blocks are parsed in place, so record bytes are copied
// only when a record straddles a block boundary — a few percent of the
// stream — instead of once per record through Read's copy loop.
//
// BodyScanner is the zero-decode path (raw bodies, one goroutine), the
// drop-in upgrade for ReadBody loops such as the BAMX preprocessor's
// two passes. ParallelScanner additionally fans DecodeRecord out to a
// parpipe worker pool in multi-block batches, delivering fully decoded
// records strictly in file order — the read-side mirror of the parallel
// BGZF writer. On hosts where fan-out cannot pay for its dispatch (one
// worker or one CPU) it degrades to the BodyScanner path with zero
// pipeline overhead.

package bam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"parseq/internal/bgzf"
	"parseq/internal/obs"
	"parseq/internal/parpipe"
	"parseq/internal/sam"
)

// minRecordBody is the smallest legal encoded record body: the fixed
// 32-byte prefix (shared with Reader.ReadBody's validation).
const minRecordBody = 32

// BodyScanner iterates the raw encoded record bodies of a BAM stream
// through the codec's zero-copy block API. The scanner takes over the
// reader's stream position: do not interleave it with the reader's own
// Read* calls.
type BodyScanner struct {
	br    *Reader
	src   bgzf.BlockSource
	block []byte // current inflated block, owned until exhausted
	pos   int
	carry []byte // scratch for records spanning block boundaries
	err   error
}

// NewBodyScanner wraps br, which must be positioned at the first record
// (as NewReader leaves it, mid-block after the header).
func NewBodyScanner(br *Reader) *BodyScanner {
	s := &BodyScanner{br: br}
	if src, ok := br.bg.(bgzf.BlockSource); ok {
		s.src = src
	}
	return s
}

// Next returns the next record body (without the block_size prefix),
// valid until the following Next call. It returns io.EOF at the end of
// the stream and sticks on the first error.
func (s *BodyScanner) Next() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.src == nil {
		// A custom BlockReader without the zero-copy face: fall back to
		// the copying path.
		body, err := s.br.ReadBody()
		if err != nil {
			s.err = err
		}
		return body, err
	}
	body, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return body, nil
}

// next parses the following record out of the current block, loading
// blocks as needed.
func (s *BodyScanner) next() ([]byte, error) {
	for {
		avail := len(s.block) - s.pos
		if avail >= 4 {
			size := int(int32(binary.LittleEndian.Uint32(s.block[s.pos:])))
			if size < minRecordBody {
				return nil, fmt.Errorf("%w: block_size %d", ErrInvalidRecord, size)
			}
			if avail-4 >= size {
				body := s.block[s.pos+4 : s.pos+4+size]
				s.pos += 4 + size
				return body, nil
			}
			break // record spans into the next block
		}
		if avail > 0 {
			break // even the size prefix spans blocks
		}
		if err := s.advance(); err != nil {
			return nil, err // io.EOF here is a clean end at a record boundary
		}
	}
	return s.spanning()
}

// advance recycles the exhausted block and loads the next one.
func (s *BodyScanner) advance() error {
	if s.block != nil {
		s.src.Recycle(s.block)
		s.block, s.pos = nil, 0
	}
	data, _, err := s.src.NextBlock()
	if err != nil {
		return err
	}
	s.block, s.pos = data, 0
	return nil
}

// spanning stitches a record that crosses one or more block boundaries
// into the carry buffer, starting from the record's first bytes at
// s.pos in the current block.
func (s *BodyScanner) spanning() ([]byte, error) {
	s.carry = append(s.carry[:0], s.block[s.pos:]...)
	s.pos = len(s.block)
	// The size prefix itself may straddle blocks.
	for len(s.carry) < 4 {
		if err := s.advance(); err != nil {
			return nil, truncatedErr(err, true)
		}
		take := 4 - len(s.carry)
		if take > len(s.block) {
			take = len(s.block)
		}
		s.carry = append(s.carry, s.block[:take]...)
		s.pos = take
	}
	size := int(int32(binary.LittleEndian.Uint32(s.carry)))
	if size < minRecordBody {
		return nil, fmt.Errorf("%w: block_size %d", ErrInvalidRecord, size)
	}
	for len(s.carry) < 4+size {
		if s.pos == len(s.block) {
			if err := s.advance(); err != nil {
				return nil, truncatedErr(err, false)
			}
		}
		take := 4 + size - len(s.carry)
		if m := len(s.block) - s.pos; m < take {
			take = m
		}
		s.carry = append(s.carry, s.block[s.pos:s.pos+take]...)
		s.pos += take
	}
	return s.carry[4:], nil
}

// truncatedErr maps a clean end-of-stream in the middle of a record to
// the same ErrInvalidRecord wrapping ReadBody produces; codec errors
// (ErrCorrupt, ErrNoEOFMarker, ...) pass through untouched.
func truncatedErr(err error, inSize bool) error {
	if err != io.EOF {
		return err
	}
	if inSize {
		return fmt.Errorf("%w: truncated record size", ErrInvalidRecord)
	}
	return fmt.Errorf("%w: truncated record body: %v", ErrInvalidRecord, io.ErrUnexpectedEOF)
}

// decodeBatch is a run of whole blocks' records travelling through the
// decode pipeline: the inflated blocks themselves, body slices pointing
// into them (stitched copies for records spanning block boundaries),
// and the decoded records. err, when set, positions after the last
// body — scan errors surface only once every record before them has
// been delivered.
type decodeBatch struct {
	datas  [][]byte // inflated blocks, recycled to the codec after use
	bodies [][]byte // raw bodies in file order
	recs   []sam.Record
	err    error
}

// Batch sizing for the decode pipeline. Per-batch costs — channel
// handoff, pool round trip, the records allocation, parpipe dispatch —
// are fixed, so batches grow until they hold batchBytes of record
// payload (typically one to four inflated blocks) before submitting.
// The target adapts to the worker count: few workers lean large to
// amortize dispatch, many workers lean small to keep every worker fed.
const (
	minBatchBytes   = 64 << 10
	maxBatchBytes   = 256 << 10
	batchBytesTotal = 512 << 10
)

// batchTarget returns the per-batch payload target for a worker count.
func batchTarget(workers int) int {
	t := batchBytesTotal / workers
	if t < minBatchBytes {
		return minBatchBytes
	}
	if t > maxBatchBytes {
		return maxBatchBytes
	}
	return t
}

// scannerProcs is runtime.GOMAXPROCS, indirected so tests can pin the
// apparent CPU count when choosing between the sequential bypass and
// the decode pipeline.
var scannerProcs = runtime.GOMAXPROCS

// ParallelScanner decodes BAM records on a worker pool while preserving
// file order. A feeder goroutine pulls inflated blocks through the
// zero-copy API and splits them into whole-record batches — batchTarget
// bytes of payload per batch, copying only boundary-spanning records —
// a parpipe pool fans DecodeRecord out, and Next delivers records in
// order. The pipeline reports through parpipe's "bam.decode" metrics
// (queue depth, busy/idle fractions) plus a bam.decode.records counter.
//
// The scanner owns the reader's stream position. Close it before
// closing the Reader, and do not interleave with the reader's own Read*
// calls. Records handed out by Next own their storage (DecodeRecord
// copies all bytes), so they stay valid after the scanner recycles the
// underlying block.
type ParallelScanner struct {
	br     *Reader
	src    bgzf.BlockSource
	header *sam.Header

	pipe *parpipe.Pipe[*decodeBatch]
	stop *atomic.Bool

	cur *decodeBatch
	idx int
	err error

	batchPool  sync.Pool
	batchBytes int          // per-batch payload target (batchTarget)
	met        *obs.Counter // bam.decode.records; nil when telemetry is off

	seq      *BodyScanner // sequential bypass: decode on the caller
	fallback bool         // no BlockSource underneath: decode on the caller
}

// NewParallelScanner wraps br, which must be positioned at the first
// record. workers ≤ 0 selects the adaptive default
// (bgzf.AutoWorkers). The record order, contents, and error behaviour
// are identical to a sequential ReadInto loop.
//
// When parallelism cannot win — one effective worker, or a single-CPU
// host where fan-out dispatch only adds overhead (the 57-vs-67 MB/s
// regression BENCH_decode.json pinned) — the scanner takes a
// zero-overhead sequential bypass: the zero-copy BodyScanner feeds
// DecodeRecord on the caller's goroutine, no pipeline, no channels.
func NewParallelScanner(br *Reader, workers int) *ParallelScanner {
	s := &ParallelScanner{br: br, header: br.Header()}
	src, ok := br.bg.(bgzf.BlockSource)
	if !ok {
		s.fallback = true
		return s
	}
	if workers <= 0 {
		workers = bgzf.AutoWorkers()
	}
	reg := obs.Default()
	if reg != nil {
		s.met = reg.Counter("bam.decode.records")
	}
	if workers <= 1 || scannerProcs(0) <= 1 {
		s.seq = NewBodyScanner(br)
		return s
	}
	s.src = src
	s.batchBytes = batchTarget(workers)
	s.batchPool.New = func() any { return &decodeBatch{} }
	s.stop = &atomic.Bool{}
	s.pipe = parpipe.NewObserved(workers, 4*workers, s.decode, reg, "bam.decode")
	go s.feed(s.pipe, s.stop)
	return s
}

// Header returns the decoded header, making the scanner a drop-in
// record source alongside *Reader.
func (s *ParallelScanner) Header() *sam.Header { return s.header }

// feed splits inflated blocks into record batches. carry accumulates a
// record spanning block boundaries; when the record completes, the
// stitched copy joins the bodies of the batch its block belongs to. A
// batch accumulates blocks until it holds batchBytes of record payload,
// amortizing the pipeline's per-batch dispatch over several blocks. The
// loop ends by submitting a final batch whose err is io.EOF, a
// truncation error, or the codec's error — always positioned after
// every complete record.
func (s *ParallelScanner) feed(pipe *parpipe.Pipe[*decodeBatch], stop *atomic.Bool) {
	defer pipe.Close()
	var carry []byte
	b := s.batch()
	payload := 0 // record-body bytes accumulated in b
	for !stop.Load() {
		data, _, err := s.src.NextBlock()
		if err != nil {
			b.err = feedFinalErr(err, carry)
			pipe.Submit(b)
			return
		}
		b.datas = append(b.datas, data)
		pos := 0
		// Complete a spanning record first.
		if len(carry) > 0 {
			if len(carry) < 4 {
				take := 4 - len(carry)
				if take > len(data) {
					take = len(data)
				}
				carry = append(carry, data[:take]...)
				pos = take
			}
			if len(carry) < 4 {
				continue // tiny block swallowed whole by the prefix
			}
			size := int(int32(binary.LittleEndian.Uint32(carry)))
			if size < minRecordBody {
				b.err = fmt.Errorf("%w: block_size %d", ErrInvalidRecord, size)
				pipe.Submit(b)
				return
			}
			take := 4 + size - len(carry)
			if m := len(data) - pos; m < take {
				take = m
			}
			carry = append(carry, data[pos:pos+take]...)
			pos += take
			if len(carry) < 4+size {
				continue // record spans beyond this whole block
			}
			b.bodies = append(b.bodies, carry[4:])
			payload += size
			carry = nil
		}
		// Whole records inside the block, parsed in place.
		for {
			avail := len(data) - pos
			if avail < 4 {
				break
			}
			size := int(int32(binary.LittleEndian.Uint32(data[pos:])))
			if size < minRecordBody {
				b.err = fmt.Errorf("%w: block_size %d", ErrInvalidRecord, size)
				pipe.Submit(b)
				return
			}
			if avail-4 < size {
				break
			}
			b.bodies = append(b.bodies, data[pos+4:pos+4+size])
			payload += size
			pos += 4 + size
		}
		// Tail: the start of a record continuing in the next block.
		if pos < len(data) {
			carry = append([]byte(nil), data[pos:]...)
		}
		if payload >= s.batchBytes {
			pipe.Submit(b)
			b = s.batch()
			payload = 0
		}
	}
	// Close requested mid-stream: the partial batch never ships.
	s.retire(b)
}

// feedFinalErr maps the codec's end-of-stream against any half-read
// record, mirroring ReadBody's truncation errors.
func feedFinalErr(err error, carry []byte) error {
	if err == io.EOF && len(carry) > 0 {
		if len(carry) < 4 {
			return fmt.Errorf("%w: truncated record size", ErrInvalidRecord)
		}
		return fmt.Errorf("%w: truncated record body: %v", ErrInvalidRecord, io.ErrUnexpectedEOF)
	}
	return err
}

// decode is the worker function: materialise every body in the batch.
// Records are allocated fresh per batch — DecodeRecord's tag slices
// alias the record struct, so pooling them would let a consumer-retained
// record be overwritten. A decode failure truncates the batch at the
// failing record and replaces any later-positioned scan error.
func (s *ParallelScanner) decode(b *decodeBatch) {
	b.recs = make([]sam.Record, len(b.bodies))
	for i := range b.bodies {
		if err := DecodeRecord(b.bodies[i], &b.recs[i], s.header); err != nil {
			b.recs = b.recs[:i]
			b.err = err
			break
		}
	}
	if s.met != nil {
		s.met.Add(int64(len(b.recs)))
	}
}

// batch draws a recycled batch from the pool.
func (s *ParallelScanner) batch() *decodeBatch {
	return s.batchPool.Get().(*decodeBatch)
}

// retire recycles a consumed batch: the block buffers flow back to the
// codec's inflate pool, the batch struct to the batch pool. The decoded
// records are NOT pooled — consumers may retain them. Body slices are
// cleared so the pooled batch cannot pin retired blocks or stitched
// carry buffers.
func (s *ParallelScanner) retire(b *decodeBatch) {
	for i, d := range b.datas {
		if d != nil {
			s.src.Recycle(d)
		}
		b.datas[i] = nil
	}
	b.datas = b.datas[:0]
	clear(b.bodies)
	b.bodies = b.bodies[:0]
	b.recs = nil
	b.err = nil
	s.batchPool.Put(b)
}

// Next decodes the next record into rec. It returns false at the clean
// end of the stream, and false with an error on failure.
func (s *ParallelScanner) Next(rec *sam.Record) (bool, error) {
	if s.fallback {
		err := s.br.ReadInto(rec)
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		return true, nil
	}
	if s.seq != nil {
		return s.nextSeq(rec)
	}
	if s.err != nil {
		if s.err == io.EOF {
			return false, nil
		}
		return false, s.err
	}
	for {
		if s.cur != nil {
			if s.idx < len(s.cur.recs) {
				*rec = s.cur.recs[s.idx]
				s.idx++
				return true, nil
			}
			err := s.cur.err
			s.retire(s.cur)
			s.cur = nil
			if err != nil {
				s.err = err
				if err == io.EOF {
					return false, nil
				}
				return false, err
			}
		}
		b, ok := <-s.pipe.Out()
		if !ok {
			// The feeder always submits a final error batch; a bare close
			// only happens after it was consumed.
			s.err = io.EOF
			return false, nil
		}
		s.cur, s.idx = b, 0
	}
}

// nextSeq is Next on the sequential bypass: zero-copy bodies from the
// BodyScanner decoded on the caller's goroutine. No feeder, no channel,
// no batch round trips — the only cost over a plain ReadInto loop is
// one nil check, and the zero-copy block parsing makes it faster.
func (s *ParallelScanner) nextSeq(rec *sam.Record) (bool, error) {
	if s.err != nil {
		if s.err == io.EOF {
			return false, nil
		}
		return false, s.err
	}
	body, err := s.seq.Next()
	if err != nil {
		s.err = err
		if err == io.EOF {
			return false, nil
		}
		return false, err
	}
	if err := DecodeRecord(body, rec, s.header); err != nil {
		s.err = err
		return false, err
	}
	if s.met != nil {
		s.met.Add(1)
	}
	return true, nil
}

// ReadInto adapts Next to the Reader-style contract (io.EOF at the
// end), so the scanner satisfies the same record-source interfaces.
func (s *ParallelScanner) ReadInto(rec *sam.Record) error {
	ok, err := s.Next(rec)
	if err != nil {
		return err
	}
	if !ok {
		return io.EOF
	}
	return nil
}

// Err returns the sticky error, nil at a clean EOF.
func (s *ParallelScanner) Err() error {
	if s.err == io.EOF {
		return nil
	}
	return s.err
}

// Close stops the feeder and drains the decode pipeline. It does not
// close the underlying Reader — close the scanner first, then the
// reader. Safe to call after EOF or mid-stream.
func (s *ParallelScanner) Close() error {
	if s.fallback {
		return nil
	}
	if s.seq != nil {
		if s.err == nil || s.err == io.EOF {
			s.err = errors.New("bam: parallel scanner closed")
		}
		return nil
	}
	if s.pipe == nil {
		return nil
	}
	s.stop.Store(true)
	if s.cur != nil {
		s.retire(s.cur)
		s.cur = nil
	}
	for b := range s.pipe.Out() {
		s.retire(b)
	}
	s.pipe = nil
	if s.err == nil || s.err == io.EOF {
		s.err = errors.New("bam: parallel scanner closed")
	}
	return nil
}
