package bam

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"parseq/internal/sam"
)

// recordKey identifies a record for multiset comparison.
func recordKey(rec *sam.Record) string {
	return fmt.Sprintf("%s/%d@%s:%d", rec.QName, rec.Flag, rec.RName, rec.Pos)
}

// readShardSlice drains one start-within region reader into keys.
func readShardSlice(t *testing.T, raw []byte, idx *Index, refName string, beg, end int, into map[string]int) {
	t.Helper()
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer br.Close()
	rr, err := NewShardRegionReader(br, idx, refName, beg, end)
	if err != nil {
		t.Fatalf("NewShardRegionReader: %v", err)
	}
	var rec sam.Record
	for {
		if err := rr.ReadInto(&rec); err == io.EOF {
			return
		} else if err != nil {
			t.Fatalf("ReadInto: %v", err)
		}
		into[recordKey(&rec)]++
	}
}

// TestShardPartitionExactlyOnce is the contract the shard layer builds
// on: a start-within partition of every reference plus the unmapped
// tail yields every record of the file exactly once, at any slicing.
func TestShardPartitionExactlyOnce(t *testing.T) {
	raw, idx, h, recs := makeIndexedDataset(t, 4000)

	want := map[string]int{}
	for i := range recs {
		want[recordKey(&recs[i])]++
	}

	for _, target := range []int64{1, 1 << 12, 1 << 16, 1 << 40} {
		got := map[string]int{}
		for refID, ref := range h.Refs {
			for _, sl := range idx.ByteSplits(refID, ref.Length, target) {
				readShardSlice(t, raw, idx, ref.Name, sl.Beg, sl.End, got)
			}
		}
		// The unmapped tail completes the cover.
		br, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		ur, err := NewUnmappedTailReader(br, idx)
		if err != nil {
			t.Fatalf("NewUnmappedTailReader: %v", err)
		}
		var rec sam.Record
		for {
			if err := ur.ReadInto(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("tail ReadInto: %v", err)
			}
			got[recordKey(&rec)]++
		}
		br.Close()

		if len(got) != len(want) {
			t.Fatalf("target %d: %d distinct records, want %d", target, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("target %d: record %s seen %d times, want %d", target, k, got[k], n)
			}
		}
	}
}

// TestByteSplitsProperties checks the slicer's structural guarantees:
// slices start at zero, are contiguous and half-open, cover every base
// an indexed alignment can start on, and their byte estimates sum to
// the reference's compressed span.
func TestByteSplitsProperties(t *testing.T) {
	_, idx, h, _ := makeIndexedDataset(t, 4000)
	for refID, ref := range h.Refs {
		beg, end, ok := idx.RefSpan(refID)
		if !ok {
			continue
		}
		span := end.Block() - beg.Block()
		for _, target := range []int64{1, 1 << 10, 1 << 14, 1 << 40} {
			slices := idx.ByteSplits(refID, ref.Length, target)
			if len(slices) == 0 {
				t.Fatalf("%s: no slices", ref.Name)
			}
			if slices[0].Beg != 0 {
				t.Fatalf("%s: first slice starts at %d", ref.Name, slices[0].Beg)
			}
			var bytes int64
			for i, sl := range slices {
				if sl.End <= sl.Beg {
					t.Fatalf("%s: empty slice %d: [%d, %d)", ref.Name, i, sl.Beg, sl.End)
				}
				if i > 0 && sl.Beg != slices[i-1].End {
					t.Fatalf("%s: gap between slice %d end %d and slice %d beg %d",
						ref.Name, i-1, slices[i-1].End, i, sl.Beg)
				}
				if i < len(slices)-1 && sl.Beg%LinearWindowBases != 0 {
					t.Fatalf("%s: slice %d beg %d not window-aligned", ref.Name, i, sl.Beg)
				}
				bytes += sl.Bytes
			}
			if last := slices[len(slices)-1]; last.End < ref.Length {
				t.Fatalf("%s: slices end at %d, reference is %d", ref.Name, last.End, ref.Length)
			}
			if bytes != span {
				t.Fatalf("%s target %d: slice bytes sum %d, span %d", ref.Name, target, bytes, span)
			}
		}
	}
}

// TestQueryMergesSameBlockChunks: after the merge, consecutive chunks
// must live in distinct compressed blocks — otherwise the reader would
// re-inflate a block it already holds.
func TestQueryMergesSameBlockChunks(t *testing.T) {
	_, idx, h, _ := makeIndexedDataset(t, 4000)
	for refID, ref := range h.Refs {
		chunks := idx.Query(refID, 0, ref.Length)
		for i := 1; i < len(chunks); i++ {
			if chunks[i].Beg.Block() <= chunks[i-1].End.Block() {
				t.Fatalf("%s: chunks %d and %d share compressed block %d",
					ref.Name, i-1, i, chunks[i].Beg.Block())
			}
			if chunks[i].Beg < chunks[i-1].End {
				t.Fatalf("%s: chunks %d and %d overlap", ref.Name, i-1, i)
			}
		}
	}
}

// TestUnmappedTailReaderOnly: the tail reader returns exactly the
// placeless records, even though chunk ends may round into its blocks.
func TestUnmappedTailReaderOnly(t *testing.T) {
	raw, idx, _, recs := makeIndexedDataset(t, 2000)
	want := 0
	for i := range recs {
		if recs[i].RName == "*" {
			want++
		}
	}
	br, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer br.Close()
	ur, err := NewUnmappedTailReader(br, idx)
	if err != nil {
		t.Fatalf("NewUnmappedTailReader: %v", err)
	}
	got := 0
	var rec sam.Record
	for {
		if err := ur.ReadInto(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("ReadInto: %v", err)
		}
		if rec.RName != "*" {
			t.Fatalf("tail returned placed record %s@%s", rec.QName, rec.RName)
		}
		got++
	}
	if got != want {
		t.Fatalf("tail read %d unmapped records, want %d", got, want)
	}
}

// TestCountRegionAllocs is the satellite guard: the census loop must
// not allocate per record. Fixed costs (reader construction, chunk
// list, block inflation buffers) are amortised over the records, so the
// per-record ratio sits near zero; a regression to decoding records
// again would push it past one allocation per record.
func TestCountRegionAllocs(t *testing.T) {
	raw, idx, h, recs := makeIndexedDataset(t, 4000)
	ref := h.Refs[0]
	n := 0
	for i := range recs {
		if recs[i].RName == ref.Name {
			n++
		}
	}
	if n < 100 {
		t.Fatalf("dataset has only %d %s records", n, ref.Name)
	}
	rd := bytes.NewReader(raw)
	allocs := testing.AllocsPerRun(5, func() {
		rd.Seek(0, io.SeekStart)
		br, err := NewReader(rd)
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		defer br.Close()
		got, err := CountRegion(br, idx, ref.Name, 0, ref.Length)
		if err != nil {
			t.Fatalf("CountRegion: %v", err)
		}
		if got != n {
			t.Fatalf("CountRegion = %d, want %d", got, n)
		}
	})
	if perRecord := allocs / float64(n); perRecord > 0.5 {
		t.Fatalf("CountRegion allocates %.2f objects per record (%.0f total for %d records)",
			perRecord, allocs, n)
	}
}

// BenchmarkCountRegion records the census loop's speed and allocs/op.
func BenchmarkCountRegion(b *testing.B) {
	raw, idx, h, _ := makeIndexedDataset(b, 20000)
	ref := h.Refs[0]
	rd := bytes.NewReader(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Seek(0, io.SeekStart)
		br, err := NewReader(rd)
		if err != nil {
			b.Fatalf("NewReader: %v", err)
		}
		if _, err := CountRegion(br, idx, ref.Name, 0, ref.Length); err != nil {
			b.Fatalf("CountRegion: %v", err)
		}
		br.Close()
	}
}
