package bam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"parseq/internal/bgzf"
)

// baiMagic identifies a BAI index file.
var baiMagic = []byte{'B', 'A', 'I', 1}

// Chunk is a half-open range of virtual offsets holding candidate records.
type Chunk struct {
	Beg, End bgzf.VOffset
}

// refIndex is the per-reference part of a BAI: the binned chunk lists and
// the 16 kb-window linear index.
type refIndex struct {
	bins   map[uint32][]Chunk
	linear []bgzf.VOffset
}

// Index is a BAI index: for each reference, the chunks of the file that
// may contain alignments overlapping a queried region.
type Index struct {
	refs []refIndex
}

// NewIndex returns an empty index over nRefs references.
func NewIndex(nRefs int) *Index {
	idx := &Index{refs: make([]refIndex, nRefs)}
	for i := range idx.refs {
		idx.refs[i].bins = make(map[uint32][]Chunk)
	}
	return idx
}

// Add files an alignment spanning the zero-based half-open reference
// interval [beg, end) on refID, stored at virtual offsets [chunkBeg,
// chunkEnd). Unmapped records (refID < 0) are not indexed.
func (idx *Index) Add(refID, beg, end int, chunkBeg, chunkEnd bgzf.VOffset) error {
	if refID < 0 {
		return nil
	}
	if refID >= len(idx.refs) {
		return fmt.Errorf("bam: index Add refID %d out of range", refID)
	}
	if end <= beg {
		end = beg + 1
	}
	ref := &idx.refs[refID]
	bin := uint32(reg2bin(beg, end))
	chunks := ref.bins[bin]
	// Merge with the previous chunk when contiguous — coordinate-sorted
	// input makes this the common case and keeps the index small.
	if n := len(chunks); n > 0 && chunks[n-1].End == chunkBeg {
		chunks[n-1].End = chunkEnd
	} else {
		chunks = append(chunks, Chunk{chunkBeg, chunkEnd})
	}
	ref.bins[bin] = chunks

	// Linear index: minimum offset of any alignment overlapping each
	// 16 kb window.
	for w := beg >> linearShift; w <= (end-1)>>linearShift; w++ {
		for len(ref.linear) <= w {
			ref.linear = append(ref.linear, 0)
		}
		if ref.linear[w] == 0 || chunkBeg < ref.linear[w] {
			ref.linear[w] = chunkBeg
		}
	}
	return nil
}

// Query returns the chunks that may contain alignments overlapping the
// zero-based half-open interval [beg, end) on refID, sorted and merged.
func (idx *Index) Query(refID, beg, end int) []Chunk {
	if refID < 0 || refID >= len(idx.refs) || end <= beg {
		return nil
	}
	ref := &idx.refs[refID]
	var minOffset bgzf.VOffset
	if w := beg >> linearShift; w < len(ref.linear) {
		minOffset = ref.linear[w]
	}
	var out []Chunk
	for _, bin := range reg2bins(nil, beg, end) {
		for _, c := range ref.bins[uint32(bin)] {
			if c.End > minOffset {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Beg < out[j].Beg })
	merged := out[:0]
	for _, c := range out {
		// Merge overlapping chunks, and also chunks whose gap stays within
		// one compressed BGZF block: a "seek" there re-inflates the block
		// the reader already holds, so splitting the run buys nothing and
		// costs a full block decompression per extra chunk on wide queries.
		if n := len(merged); n > 0 && c.Beg.Block() <= merged[n-1].End.Block() {
			if c.End > merged[n-1].End {
				merged[n-1].End = c.End
			}
		} else {
			merged = append(merged, c)
		}
	}
	return merged
}

// RefSpan returns the lowest and highest virtual offsets of refID's
// indexed chunks — the compressed byte range holding the reference's
// alignments. ok is false when the reference has no indexed data.
func (idx *Index) RefSpan(refID int) (beg, end bgzf.VOffset, ok bool) {
	if refID < 0 || refID >= len(idx.refs) {
		return 0, 0, false
	}
	for _, chunks := range idx.refs[refID].bins {
		for _, c := range chunks {
			if !ok || c.Beg < beg {
				beg = c.Beg
			}
			if !ok || c.End > end {
				end = c.End
			}
			ok = true
		}
	}
	return beg, end, ok
}

// EndOffset returns the largest chunk end across every reference: where
// the unmapped tail of a coordinate-sorted file begins. Zero when the
// index holds no mapped records.
func (idx *Index) EndOffset() bgzf.VOffset {
	var end bgzf.VOffset
	for refID := range idx.refs {
		if _, e, ok := idx.RefSpan(refID); ok && e > end {
			end = e
		}
	}
	return end
}

// LinearWindowBases is the base width of one linear-index window: the
// granularity at which ByteSplits can cut a reference.
const LinearWindowBases = 1 << linearShift

// RefSlice is one contiguous piece of a reference produced by
// ByteSplits: a zero-based half-open base interval and the estimated
// compressed bytes of the alignments starting under it.
type RefSlice struct {
	Beg, End int
	Bytes    int64
}

// ByteSplits cuts refID's [0, refLen) into contiguous slices of roughly
// targetBytes estimated compressed bytes each, cutting only on
// linear-index window boundaries. The estimate derives from the linear
// index's per-window minimum offsets, so balance reflects the on-disk
// compressed distribution of alignments rather than base-pair width —
// a pileup hotspot splits fine, a desert collapses into one slice.
// Returns nil when the reference has no indexed data.
func (idx *Index) ByteSplits(refID, refLen int, targetBytes int64) []RefSlice {
	beg, end, ok := idx.RefSpan(refID)
	if !ok {
		return nil
	}
	lin := idx.refs[refID].linear
	// Estimated compressed byte offset at each window boundary w (for w
	// in [0, len(lin)]): the carry-forward of the windows' minimum block
	// offsets, clamped monotonic, closed by the reference's span end.
	offs := make([]int64, len(lin)+1)
	prev := beg.Block()
	for w, v := range lin {
		if v != 0 && v.Block() > prev {
			prev = v.Block()
		}
		offs[w] = prev
	}
	offs[len(lin)] = end.Block()
	if offs[len(lin)] < prev {
		offs[len(lin)] = prev
	}
	total := offs[len(lin)] - offs[0]
	if targetBytes < 1 || targetBytes > total {
		targetBytes = total
	}
	// The last slice must cover every base an alignment can start on.
	maxBase := refLen
	if lb := len(lin) << linearShift; lb > maxBase {
		maxBase = lb
	}
	var out []RefSlice
	cut := 0 // window index of the current slice's start
	for w := 0; w < len(lin); w++ {
		if bytes := offs[w+1] - offs[cut]; bytes >= targetBytes && w+1 < len(lin) {
			out = append(out, RefSlice{
				Beg:   cut << linearShift,
				End:   (w + 1) << linearShift,
				Bytes: bytes,
			})
			cut = w + 1
		}
	}
	out = append(out, RefSlice{
		Beg:   cut << linearShift,
		End:   maxBase,
		Bytes: offs[len(lin)] - offs[cut],
	})
	return out
}

// NumRefs returns the number of references the index covers.
func (idx *Index) NumRefs() int { return len(idx.refs) }

// WriteTo serialises the index in the BAI file format.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	buf = append(buf, baiMagic...)
	buf = appendInt32(buf, int32(len(idx.refs)))
	for _, ref := range idx.refs {
		bins := make([]uint32, 0, len(ref.bins))
		for b := range ref.bins {
			bins = append(bins, b)
		}
		sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
		buf = appendInt32(buf, int32(len(bins)))
		for _, b := range bins {
			chunks := ref.bins[b]
			buf = appendUint32(buf, b)
			buf = appendInt32(buf, int32(len(chunks)))
			for _, c := range chunks {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Beg))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(c.End))
			}
		}
		buf = appendInt32(buf, int32(len(ref.linear)))
		for _, v := range ref.linear {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadIndex parses a BAI file.
func ReadIndex(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 || string(data[:4]) != string(baiMagic) {
		return nil, errors.New("bam: bad BAI magic")
	}
	off := 4
	readI32 := func() (int32, error) {
		if off+4 > len(data) {
			return 0, errors.New("bam: truncated BAI")
		}
		v := int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		return v, nil
	}
	readU64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, errors.New("bam: truncated BAI")
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	// Counts come from untrusted input: every one is validated against
	// the bytes actually present before a proportional allocation.
	remaining := func() int { return len(data) - off }
	nRef, err := readI32()
	if err != nil || nRef < 0 || int(nRef) > remaining()/4 {
		return nil, errors.New("bam: bad BAI reference count")
	}
	idx := NewIndex(int(nRef))
	for i := int32(0); i < nRef; i++ {
		nBin, err := readI32()
		if err != nil {
			return nil, err
		}
		if nBin < 0 || int(nBin) > remaining()/8 {
			return nil, errors.New("bam: bad BAI bin count")
		}
		for j := int32(0); j < nBin; j++ {
			bin, err := readI32()
			if err != nil {
				return nil, err
			}
			nChunk, err := readI32()
			if err != nil {
				return nil, err
			}
			if nChunk < 0 || int(nChunk) > remaining()/16 {
				return nil, errors.New("bam: bad BAI chunk count")
			}
			chunks := make([]Chunk, 0, nChunk)
			for k := int32(0); k < nChunk; k++ {
				beg, err := readU64()
				if err != nil {
					return nil, err
				}
				end, err := readU64()
				if err != nil {
					return nil, err
				}
				chunks = append(chunks, Chunk{bgzf.VOffset(beg), bgzf.VOffset(end)})
			}
			idx.refs[i].bins[uint32(bin)] = chunks
		}
		nIntv, err := readI32()
		if err != nil {
			return nil, err
		}
		if nIntv < 0 || int(nIntv) > remaining()/8 {
			return nil, errors.New("bam: bad BAI interval count")
		}
		linear := make([]bgzf.VOffset, 0, nIntv)
		for k := int32(0); k < nIntv; k++ {
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			linear = append(linear, bgzf.VOffset(v))
		}
		idx.refs[i].linear = linear
	}
	return idx, nil
}
