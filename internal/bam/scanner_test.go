package bam

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"parseq/internal/bgzf"
	"parseq/internal/sam"
)

// genRecords synthesizes n records with varied field sizes so encoded
// bodies differ in length — important for exercising every block
// boundary alignment in the scanners.
func genRecords(t testing.TB, n int) []sam.Record {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	bases := "ACGTN"
	recs := make([]sam.Record, 0, n)
	pos := int32(1)
	for i := 0; i < n; i++ {
		pos += int32(rng.Intn(40))
		l := 20 + rng.Intn(80)
		seq := make([]byte, l)
		qual := make([]byte, l)
		for j := range seq {
			seq[j] = bases[rng.Intn(5)]
			qual[j] = byte(33 + rng.Intn(93))
		}
		rec := sam.Record{
			QName: fmt.Sprintf("read%06d", i),
			RName: "chr1", Pos: pos, MapQ: uint8(rng.Intn(60)),
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, l)},
			RNext: "*", Seq: string(seq), Qual: string(qual),
		}
		if rng.Intn(4) == 0 {
			rec.Tags = []sam.Tag{sam.IntTag("NM", int64(rng.Intn(10)))}
		}
		recs = append(recs, rec)
	}
	return recs
}

// encodeBAM writes a BAM stream with a custom BGZF payload size. Small
// payloads force records (and even their 4-byte size prefixes) to
// straddle block boundaries, the scanners' hard case.
func encodeBAM(t testing.TB, h *sam.Header, recs []sam.Record, payload int) []byte {
	t.Helper()
	raw, err := encodeBAMTail(h, recs, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// encodeBAMTail is encodeBAM plus arbitrary trailing bytes appended to
// the record stream before the BGZF EOF marker — the hook the
// truncation tests use to plant malformed final records.
func encodeBAMTail(h *sam.Header, recs []sam.Record, payload int, tail []byte) ([]byte, error) {
	var buf bytes.Buffer
	bg := bgzf.NewWriterLevel(&buf, -1, payload)
	text := h.String()
	hdr := make([]byte, 0, 16+len(text))
	hdr = append(hdr, Magic...)
	hdr = appendInt32(hdr, int32(len(text)))
	hdr = append(hdr, text...)
	hdr = appendInt32(hdr, int32(len(h.Refs)))
	for _, ref := range h.Refs {
		hdr = appendInt32(hdr, int32(len(ref.Name)+1))
		hdr = append(hdr, ref.Name...)
		hdr = append(hdr, 0)
		hdr = appendInt32(hdr, int32(ref.Length))
	}
	if _, err := bg.Write(hdr); err != nil {
		return nil, err
	}
	var rb []byte
	for i := range recs {
		var err error
		rb, err = EncodeRecord(rb[:0], &recs[i], h)
		if err != nil {
			return nil, err
		}
		if _, err := bg.Write(rb); err != nil {
			return nil, err
		}
	}
	if len(tail) > 0 {
		if _, err := bg.Write(tail); err != nil {
			return nil, err
		}
	}
	if err := bg.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func openReader(t testing.TB, raw []byte, workers int) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw), WithCodecWorkers(workers))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

// scannerPayloads are the BGZF payload sizes the parity tests sweep:
// 64 makes nearly every record span blocks (and size prefixes straddle
// them), 512 a good fraction, 0 the default where spanning is rare.
var scannerPayloads = []int{64, 512, 0}

// forcePipeline pins the apparent CPU count to 4 so NewParallelScanner
// builds the decode pipeline even on a single-CPU host (where the
// sequential bypass would otherwise swallow every test).
func forcePipeline(t testing.TB) {
	old := scannerProcs
	scannerProcs = func(int) int { return 4 }
	t.Cleanup(func() { scannerProcs = old })
}

// forceSingleProc pins the apparent CPU count to 1 so the bypass path
// is exercised deterministically on any host.
func forceSingleProc(t testing.TB) {
	old := scannerProcs
	scannerProcs = func(int) int { return 1 }
	t.Cleanup(func() { scannerProcs = old })
}

// The scanner must pick the sequential bypass exactly when parallelism
// cannot win: one effective worker, or one CPU.
func TestParallelScannerBypassSelection(t *testing.T) {
	h := testHeader()
	raw := encodeBAM(t, h, genRecords(t, 10), 0)
	open := func(workers int) *ParallelScanner {
		br := openReader(t, raw, 1)
		t.Cleanup(func() { br.Close() })
		sc := NewParallelScanner(br, workers)
		t.Cleanup(func() { sc.Close() })
		return sc
	}
	forceSingleProc(t)
	if sc := open(8); sc.seq == nil || sc.pipe != nil {
		t.Error("workers=8 on 1 CPU: want the sequential bypass")
	}
	forcePipeline(t)
	if sc := open(1); sc.seq == nil || sc.pipe != nil {
		t.Error("workers=1 on 4 CPUs: want the sequential bypass")
	}
	if sc := open(2); sc.seq != nil || sc.pipe == nil {
		t.Error("workers=2 on 4 CPUs: want the decode pipeline")
	}
}

func TestBodyScannerMatchesReadBody(t *testing.T) {
	h := testHeader()
	recs := genRecords(t, 300)
	for _, payload := range scannerPayloads {
		raw := encodeBAM(t, h, recs, payload)
		for _, codecWorkers := range []int{1, 2} {
			t.Run(fmt.Sprintf("payload=%d/codec=%d", payload, codecWorkers), func(t *testing.T) {
				ref := openReader(t, raw, 1)
				defer ref.Close()
				br := openReader(t, raw, codecWorkers)
				defer br.Close()
				sc := NewBodyScanner(br)
				for i := 0; ; i++ {
					want, werr := ref.ReadBody()
					got, gerr := sc.Next()
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("record %d: err %v vs %v", i, werr, gerr)
					}
					if werr != nil {
						if werr != io.EOF || gerr != io.EOF {
							t.Fatalf("record %d: terminal err %v vs %v", i, werr, gerr)
						}
						break
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("record %d: body mismatch (%d vs %d bytes)", i, len(got), len(want))
					}
				}
			})
		}
	}
}

// The scanners must fall back to the copying ReadBody path when the
// underlying BlockReader hides the BlockSource face, and still produce
// identical output.
func TestScannerFallbackWithoutBlockSource(t *testing.T) {
	h := testHeader()
	recs := genRecords(t, 50)
	raw := encodeBAM(t, h, recs, 0)
	br := &Reader{bg: opaqueReader(raw)}
	if err := br.readHeader(); err != nil {
		t.Fatal(err)
	}
	sc := NewBodyScanner(br)
	ps := NewParallelScanner(br, 2)
	defer ps.Close()
	if !ps.fallback {
		t.Fatal("ParallelScanner did not detect the missing BlockSource")
	}
	n := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(recs) {
		t.Errorf("fallback scanner read %d records, want %d", n, len(recs))
	}
}

// opaqueReader wraps the sequential codec behind the bare BlockReader
// interface — a struct-embedded interface value drops the zero-copy
// methods from the dynamic type.
func opaqueReader(raw []byte) bgzf.BlockReader {
	return struct{ bgzf.BlockReader }{bgzf.NewReader(bytes.NewReader(raw))}
}

func TestParallelScannerMatchesSequential(t *testing.T) {
	forcePipeline(t) // workers=1 still takes the bypass; workers=4 the pipeline
	h := testHeader()
	recs := genRecords(t, 2000)
	for _, payload := range scannerPayloads {
		raw := encodeBAM(t, h, recs, payload)
		for _, workers := range []int{1, 4} {
			for _, codecWorkers := range []int{1, 2} {
				t.Run(fmt.Sprintf("payload=%d/workers=%d/codec=%d", payload, workers, codecWorkers), func(t *testing.T) {
					ref := openReader(t, raw, 1)
					defer ref.Close()
					br := openReader(t, raw, codecWorkers)
					defer br.Close()
					sc := NewParallelScanner(br, workers)
					defer sc.Close()
					var want, got sam.Record
					for i := 0; ; i++ {
						werr := ref.ReadInto(&want)
						gerr := sc.ReadInto(&got)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("record %d: err %v vs %v", i, werr, gerr)
						}
						if werr != nil {
							if werr != io.EOF || gerr != io.EOF {
								t.Fatalf("record %d: terminal err %v vs %v", i, werr, gerr)
							}
							break
						}
						if got.String() != want.String() {
							t.Fatalf("record %d:\n got %q\nwant %q", i, got.String(), want.String())
						}
					}
					if err := sc.Err(); err != nil {
						t.Errorf("Err after clean EOF = %v", err)
					}
				})
			}
		}
	}
}

// Malformed streams: the parallel scanner must deliver every record
// preceding the defect, then fail with the same error text as the
// sequential reader.
func TestParallelScannerErrorParity(t *testing.T) {
	forcePipeline(t)
	h := testHeader()
	recs := genRecords(t, 120)
	var half []byte
	{
		rb, err := EncodeRecord(nil, &recs[0], h)
		if err != nil {
			t.Fatal(err)
		}
		half = rb[:len(rb)/2]
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"truncated-size", []byte{0x30}},
		{"truncated-body", half},
		{"bad-block-size", []byte{10, 0, 0, 0}},
	}
	for _, tc := range cases {
		for _, payload := range []int{64, 0} {
			raw, err := encodeBAMTail(h, recs, payload, tc.tail)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(fmt.Sprintf("%s/payload=%d", tc.name, payload), func(t *testing.T) {
				ref := openReader(t, raw, 1)
				defer ref.Close()
				var want sam.Record
				wantN, werr := 0, error(nil)
				for {
					if werr = ref.ReadInto(&want); werr != nil {
						break
					}
					wantN++
				}
				if wantN != len(recs) {
					t.Fatalf("sequential reader delivered %d records before the defect, want %d", wantN, len(recs))
				}
				if !errors.Is(werr, ErrInvalidRecord) {
					t.Fatalf("sequential err = %v, want ErrInvalidRecord", werr)
				}

				// workers=1 exercises the bypass, workers=3 the pipeline —
				// both must reproduce the sequential error exactly.
				for _, workers := range []int{1, 3} {
					br := openReader(t, raw, 2)
					defer br.Close()
					sc := NewParallelScanner(br, workers)
					defer sc.Close()
					var got sam.Record
					gotN, gerr := 0, error(nil)
					for {
						if gerr = sc.ReadInto(&got); gerr != nil {
							break
						}
						gotN++
					}
					if gotN != wantN {
						t.Errorf("workers=%d: delivered %d records before the defect, want %d", workers, gotN, wantN)
					}
					if gerr == nil || gerr.Error() != werr.Error() {
						t.Errorf("workers=%d: err = %v, want %v", workers, gerr, werr)
					}
					if sc.Err() == nil {
						t.Errorf("workers=%d: Err() nil after failure", workers)
					}
				}
			})
		}
	}
}

// Closing mid-stream must stop the feeder and drain the pipeline without
// deadlocking, and subsequent Next calls must fail.
func TestParallelScannerEarlyClose(t *testing.T) {
	forcePipeline(t)
	h := testHeader()
	raw := encodeBAM(t, h, genRecords(t, 3000), 256)
	for _, workers := range []int{1, 4} { // bypass and pipeline
		for _, codecWorkers := range []int{1, 2} {
			br := openReader(t, raw, codecWorkers)
			sc := NewParallelScanner(br, workers)
			var rec sam.Record
			for i := 0; i < 10; i++ {
				if ok, err := sc.Next(&rec); !ok || err != nil {
					t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
				}
			}
			if err := sc.Close(); err != nil {
				t.Fatal(err)
			}
			if ok, err := sc.Next(&rec); ok || err == nil {
				t.Errorf("workers=%d: Next after Close succeeded", workers)
			}
			if err := br.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestParallelScannerEmptyStream(t *testing.T) {
	forcePipeline(t)
	h := testHeader()
	raw := encodeBAM(t, h, nil, 0)
	for _, workers := range []int{1, 2} { // bypass and pipeline
		br := openReader(t, raw, 1)
		defer br.Close()
		sc := NewParallelScanner(br, workers)
		defer sc.Close()
		var rec sam.Record
		if ok, err := sc.Next(&rec); ok || err != nil {
			t.Errorf("workers=%d: Next on empty stream = %v, %v", workers, ok, err)
		}
		if err := sc.Err(); err != nil {
			t.Errorf("workers=%d: Err on empty stream = %v", workers, err)
		}
	}
}

// BenchmarkParallelBAMScan sweeps the decode worker pool over a
// synthetic BAM: workers=1/seq is the sequential ReadInto loop, the rest
// run the parallel scanner (block inflate + record decode fan-out). On a
// single-CPU host the workers>1 variants resolve to the sequential
// bypass, which is exactly the 1-CPU acceptance story: parallel must
// stay at least as fast as sequential. The */pipe variants pin the
// apparent CPU count to force the real pipeline so its dispatch
// overhead stays measurable everywhere.
func BenchmarkParallelBAMScan(b *testing.B) {
	h := testHeader()
	raw := encodeBAM(b, h, genRecords(b, 30000), 0)
	b.Run("workers=1/seq", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			br := openReader(b, raw, 1)
			var rec sam.Record
			for {
				if err := br.ReadInto(&rec); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
			br.Close()
		}
	})
	scan := func(b *testing.B, workers int) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			br := openReader(b, raw, workers)
			sc := NewParallelScanner(br, workers)
			var rec sam.Record
			for {
				if err := sc.ReadInto(&rec); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
			sc.Close()
			br.Close()
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scan(b, workers)
		})
	}
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d/pipe", workers), func(b *testing.B) {
			forcePipeline(b)
			scan(b, workers)
		})
	}
}
