package bam

// The UCSC binning scheme (Kent et al.) is a 6-level R-tree flattening:
// the genome is covered by bins of 512 Mb, 64 Mb, 8 Mb, 1 Mb, 128 kb and
// 16 kb, and every alignment is filed under the smallest bin that wholly
// contains it. BAI reuses the scheme so a region query touches at most a
// few dozen bins instead of the whole file.

// maxBin is the number of bins in the scheme (bin IDs 0..37449).
const maxBin = ((1 << 18) - 1) / 7

// linearShift is the 16 kb window size of the BAI linear index.
const linearShift = 14

// reg2bin returns the smallest bin containing the zero-based half-open
// interval [beg, end). end must be > beg for meaningful results; callers
// pass end = beg+1 for zero-length features, as samtools does.
func reg2bin(beg, end int) int {
	end--
	switch {
	case beg>>14 == end>>14:
		return ((1<<15)-1)/7 + (beg >> 14)
	case beg>>17 == end>>17:
		return ((1<<12)-1)/7 + (beg >> 17)
	case beg>>20 == end>>20:
		return ((1<<9)-1)/7 + (beg >> 20)
	case beg>>23 == end>>23:
		return ((1<<6)-1)/7 + (beg >> 23)
	case beg>>26 == end>>26:
		return ((1<<3)-1)/7 + (beg >> 26)
	}
	return 0
}

// reg2bins appends to dst the IDs of all bins that may contain alignments
// overlapping [beg, end), zero-based half-open.
func reg2bins(dst []int, beg, end int) []int {
	if beg < 0 {
		beg = 0
	}
	if end <= beg {
		return dst
	}
	end--
	dst = append(dst, 0)
	for _, lvl := range []struct{ offset, shift int }{
		{1, 26}, {9, 23}, {73, 20}, {585, 17}, {4681, 14},
	} {
		for k := lvl.offset + (beg >> lvl.shift); k <= lvl.offset+(end>>lvl.shift); k++ {
			dst = append(dst, k)
		}
	}
	return dst
}
