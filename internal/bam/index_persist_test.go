package bam

import (
	"bytes"
	"math/rand"
	"testing"

	"parseq/internal/bgzf"
)

// randomIndex builds a structurally valid index with rng-driven shape:
// references with and without data, multi-chunk bins, sparse linear
// windows.
func randomIndex(rng *rand.Rand) *Index {
	nRefs := 1 + rng.Intn(5)
	idx := NewIndex(nRefs)
	for refID := 0; refID < nRefs; refID++ {
		if rng.Float64() < 0.2 {
			continue // reference with no alignments
		}
		var off uint64 = uint64(rng.Intn(1000))
		pos := 0
		for n := rng.Intn(50); n > 0; n-- {
			pos += rng.Intn(40000)
			span := 1 + rng.Intn(300)
			beg := bgzf.VOffset(off)
			off += uint64(1 + rng.Intn(5000))
			idx.Add(refID, pos, pos+span, beg, bgzf.VOffset(off))
		}
	}
	return idx
}

// TestIndexPersistenceRoundTrip is the property test: for many random
// indexes, WriteTo → ReadIndex must preserve observable behaviour
// (every Query result) and re-serialise to identical bytes.
func TestIndexPersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		idx := randomIndex(rng)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatalf("trial %d: WriteTo: %v", trial, err)
		}
		encoded := append([]byte(nil), buf.Bytes()...)

		got, err := ReadIndex(bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("trial %d: ReadIndex: %v", trial, err)
		}
		if got.NumRefs() != idx.NumRefs() {
			t.Fatalf("trial %d: NumRefs %d, want %d", trial, got.NumRefs(), idx.NumRefs())
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatalf("trial %d: re-WriteTo: %v", trial, err)
		}
		if !bytes.Equal(encoded, buf2.Bytes()) {
			t.Fatalf("trial %d: round-tripped bytes differ (%d vs %d bytes)",
				trial, len(encoded), buf2.Len())
		}
		for refID := 0; refID < idx.NumRefs(); refID++ {
			for q := 0; q < 10; q++ {
				beg := rng.Intn(1 << 21)
				end := beg + 1 + rng.Intn(1<<20)
				want := idx.Query(refID, beg, end)
				have := got.Query(refID, beg, end)
				if len(want) != len(have) {
					t.Fatalf("trial %d ref %d [%d,%d): %d chunks, want %d",
						trial, refID, beg, end, len(have), len(want))
				}
				for i := range want {
					if want[i] != have[i] {
						t.Fatalf("trial %d ref %d [%d,%d): chunk %d = %+v, want %+v",
							trial, refID, beg, end, i, have[i], want[i])
					}
				}
			}
			wb, we, wok := idx.RefSpan(refID)
			gb, ge, gok := got.RefSpan(refID)
			if wb != gb || we != ge || wok != gok {
				t.Fatalf("trial %d ref %d: RefSpan (%d,%d,%v), want (%d,%d,%v)",
					trial, refID, gb, ge, gok, wb, we, wok)
			}
		}
		if idx.EndOffset() != got.EndOffset() {
			t.Fatalf("trial %d: EndOffset %d, want %d", trial, got.EndOffset(), idx.EndOffset())
		}
	}
}

// FuzzReadIndex hardens the binary decoder: arbitrary input must error
// or parse, never panic or over-allocate, and whatever parses must
// re-serialise losslessly.
func FuzzReadIndex(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		var buf bytes.Buffer
		if _, err := randomIndex(rng).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("BAI\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful ReadIndex: %v", err)
		}
		if _, err := ReadIndex(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-read of re-serialised index: %v", err)
		}
	})
}
