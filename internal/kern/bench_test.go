package kern

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// benchSizes spans a short-read seq (151 bases, the Illumina staple)
// and a buffer-sized payload where the word loop dominates.
var benchSizes = []int{151, 4096}

func benchPacked(n int) []byte {
	rng := rand.New(rand.NewSource(11))
	p := make([]byte, (n+1)/2)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func benchQual(n int) []byte {
	rng := rand.New(rand.NewSource(12))
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(94))
	}
	return p
}

// BenchmarkKernUnpackSeq and its Scalar twin time the 4-bit expansion
// paths separately; bytes/s counts expanded bases.
func BenchmarkKernUnpackSeq(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchPacked(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				UnpackSeq(dst, src, n)
			}
		})
	}
}

// BenchmarkKernUnpackSeqBitTrick times the table-free SWAR variant —
// kept for the record: it documents why UnpackSeq uses the pair table.
func BenchmarkKernUnpackSeqBitTrick(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchPacked(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				unpackSeqBitTrick(dst, src, n)
			}
		})
	}
}

func BenchmarkKernUnpackSeqScalar(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchPacked(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				unpackSeqScalar(dst, src, n)
			}
		})
	}
}

// BenchmarkKernShiftQual times the +33 quality shift with the paired
// range check — the full decode-side qual path.
func BenchmarkKernShiftQual(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchQual(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				AddConst(dst, src, 33)
				if !RangeOK(dst, '!', '~') {
					b.Fatal("range check failed")
				}
			}
		})
	}
}

func BenchmarkKernShiftQualScalar(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchQual(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				addConstScalar(dst, src, 33)
				if !rangeOKScalar(dst, '!', '~') {
					b.Fatal("range check failed")
				}
			}
		})
	}
}

// BenchmarkKernReverseComplement times both revcomp paths.
func BenchmarkKernReverseComplement(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchQual(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				ReverseComplement(dst, src)
			}
		})
	}
}

func BenchmarkKernReverseComplementScalar(b *testing.B) {
	for _, n := range benchSizes {
		src, dst := benchQual(n), make([]byte, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				reverseComplementScalar(dst, src)
			}
		})
	}
}

// BenchmarkKernParseUint times the digit kernel on a POS-shaped field.
func BenchmarkKernParseUint(b *testing.B) {
	field := []byte("248956422")
	b.SetBytes(int64(len(field)))
	for i := 0; i < b.N; i++ {
		if _, ok := ParseUint(field, 1<<31-1); !ok {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkKernParseUintScalar(b *testing.B) {
	field := []byte("248956422")
	b.SetBytes(int64(len(field)))
	for i := 0; i < b.N; i++ {
		if _, ok := parseUintScalar(field, 1<<31-1); !ok {
			b.Fatal("parse failed")
		}
	}
}

// BenchmarkKernSpeedup is the paired before/after contract for the two
// acceptance kernels: each iteration runs one scalar batch and one
// kernel batch back-to-back, per-side minima absorb machine weather,
// and the ratio lands in the "speedup" metric (target ≥ 1.5 for both,
// per ISSUE 6). The batch repeats the op enough times that timer
// granularity cannot swamp a microsecond-scale kernel.
func BenchmarkKernSpeedup(b *testing.B) {
	const n, reps = 4096, 64
	b.Run("unpack/n=4096", func(b *testing.B) {
		src, dst := benchPacked(n), make([]byte, n)
		minScalar, minKern := time.Duration(1<<62), time.Duration(1<<62)
		b.SetBytes(int64(n) * reps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				unpackSeqScalar(dst, src, n)
			}
			t1 := time.Now()
			for r := 0; r < reps; r++ {
				UnpackSeq(dst, src, n)
			}
			if d := t1.Sub(t0); d < minScalar {
				minScalar = d
			}
			if d := time.Since(t1); d < minKern {
				minKern = d
			}
		}
		b.ReportMetric(float64(minScalar)/float64(minKern), "speedup")
	})
	b.Run("qualshift/n=4096", func(b *testing.B) {
		src, dst := benchQual(n), make([]byte, n)
		minScalar, minKern := time.Duration(1<<62), time.Duration(1<<62)
		b.SetBytes(int64(n) * reps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				addConstScalar(dst, src, 33)
			}
			t1 := time.Now()
			for r := 0; r < reps; r++ {
				AddConst(dst, src, 33)
			}
			if d := t1.Sub(t0); d < minScalar {
				minScalar = d
			}
			if d := time.Since(t1); d < minKern {
				minKern = d
			}
		}
		b.ReportMetric(float64(minScalar)/float64(minKern), "speedup")
	})
}
