package kern

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randBytes returns n pseudo-random bytes from rng.
func randBytes(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

// misalign reslices p to start at an odd offset inside a larger
// allocation, so word loads in the kernels cross the original
// alignment; content is preserved.
func misalign(p []byte) []byte {
	buf := make([]byte, len(p)+16)
	off := 3
	copy(buf[off:], p)
	return buf[off : off+len(p)]
}

// TestUnpackSeqMatchesScalar holds the equivalence contract for the
// 4-bit unpack kernel over every length in the first few word
// multiples (both parities, so the half-byte tail is covered) on
// random packed input, at natural and odd alignments.
func TestUnpackSeqMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 70; n++ {
		src := randBytes(rng, (n+1)/2)
		for _, s := range [][]byte{src, misalign(src)} {
			got := make([]byte, n)
			want := make([]byte, n)
			UnpackSeq(got, s, n)
			unpackSeqScalar(want, s, n)
			if !bytes.Equal(got, want) {
				t.Fatalf("UnpackSeq n=%d: got %q want %q", n, got, want)
			}
			trick := make([]byte, n)
			unpackSeqBitTrick(trick, s, n)
			if !bytes.Equal(trick, want) {
				t.Fatalf("unpackSeqBitTrick n=%d: got %q want %q", n, trick, want)
			}
		}
	}
}

// TestPackSeqMatchesScalar holds the pack contract on arbitrary ASCII —
// bases of both cases plus junk bytes that must all collapse to the 'N'
// code — including odd lengths whose final base lands in a high nibble.
func TestPackSeqMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 70; n++ {
		src := make([]byte, n)
		for i := range src {
			switch rng.Intn(3) {
			case 0:
				src[i] = SeqChars[rng.Intn(16)]
			case 1:
				src[i] = SeqChars[rng.Intn(16)] | 0x20
			default:
				src[i] = byte(rng.Intn(256))
			}
		}
		for _, s := range [][]byte{src, misalign(src)} {
			got := make([]byte, (n+1)/2)
			want := make([]byte, (n+1)/2)
			PackSeq(got, s)
			packSeqScalar(want, s)
			if !bytes.Equal(got, want) {
				t.Fatalf("PackSeq n=%d src=%q: got %x want %x", n, s, got, want)
			}
		}
	}
}

// TestPackUnpackRoundTrip pins the BAM invariant: canonical upper-case
// alphabet text survives pack→unpack byte-for-byte.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 40; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = SeqChars[rng.Intn(16)]
		}
		packed := make([]byte, (n+1)/2)
		PackSeq(packed, src)
		back := make([]byte, n)
		UnpackSeq(back, packed, n)
		if !bytes.Equal(back, src) {
			t.Fatalf("round trip n=%d: %q became %q", n, src, back)
		}
	}
}

// TestAddConstMatchesScalar covers the quality-shift kernel for the two
// live constants (+33 decode, 256-33 encode) and wrap-heavy ones, both
// out-of-place and aliased in place (the BAM encoder shifts in place).
func TestAddConstMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range []byte{0, 1, 33, 223, 255} {
		for n := 0; n <= 70; n++ {
			src := randBytes(rng, n)
			got := make([]byte, n)
			want := make([]byte, n)
			AddConst(got, src, c)
			addConstScalar(want, src, c)
			if !bytes.Equal(got, want) {
				t.Fatalf("AddConst c=%d n=%d: got %x want %x", c, n, got, want)
			}
			inPlace := append([]byte(nil), src...)
			AddConst(inPlace, inPlace, c)
			if !bytes.Equal(inPlace, want) {
				t.Fatalf("AddConst in place c=%d n=%d: got %x want %x", c, n, inPlace, want)
			}
		}
	}
}

// TestRangeOKMatchesScalar sweeps random bounds — including inverted,
// lo>128 and hi>127 fallback territory — over random payloads, then
// pins the boundary bytes lo-1/lo/hi/hi+1 at every lane position.
func TestRangeOKMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		lo := byte(rng.Intn(256))
		hi := byte(rng.Intn(256))
		n := rng.Intn(40)
		p := make([]byte, n)
		for i := range p {
			// Cluster near the bounds so in-range inputs actually occur.
			p[i] = byte(int(lo) + rng.Intn(64) - 8)
		}
		if got, want := RangeOK(p, lo, hi), rangeOKScalar(p, lo, hi); got != want {
			t.Fatalf("RangeOK(%x, %d, %d) = %v, scalar %v", p, lo, hi, got, want)
		}
	}
	for _, bounds := range [][2]byte{{'!', '~'}, {33, 126}, {0, 127}, {1, 1}, {128, 200}} {
		lo, hi := bounds[0], bounds[1]
		for pos := 0; pos < 17; pos++ {
			for _, b := range []byte{lo - 1, lo, hi, hi + 1, 0, 0xff} {
				p := bytes.Repeat([]byte{(lo + hi) / 2}, 17)
				p[pos] = b
				if got, want := RangeOK(p, lo, hi), rangeOKScalar(p, lo, hi); got != want {
					t.Fatalf("RangeOK boundary b=%d pos=%d lo=%d hi=%d = %v, scalar %v",
						b, pos, lo, hi, got, want)
				}
			}
		}
	}
	if !RangeOK(nil, 2, 1) || !rangeOKScalar(nil, 2, 1) {
		t.Error("empty input must satisfy any bounds")
	}
	if RangeOK([]byte{1}, 2, 1) {
		t.Error("inverted bounds accepted a byte")
	}
}

// TestReverseMatchesScalar holds both mirror kernels to their scalar
// twins across the tail lengths and at odd alignment.
func TestReverseMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 0; n <= 70; n++ {
		src := randBytes(rng, n)
		for _, s := range [][]byte{src, misalign(src)} {
			got := make([]byte, n)
			want := make([]byte, n)
			Reverse(got, s)
			reverseScalar(want, s)
			if !bytes.Equal(got, want) {
				t.Fatalf("Reverse n=%d: got %x want %x", n, got, want)
			}
			ReverseComplement(got, s)
			reverseComplementScalar(want, s)
			if !bytes.Equal(got, want) {
				t.Fatalf("ReverseComplement n=%d: got %x want %x", n, got, want)
			}
		}
	}
}

// TestComplementTable pins the IUPAC pairs and the unknown→'N' default.
func TestComplementTable(t *testing.T) {
	for _, pair := range [][2]byte{{'A', 'T'}, {'C', 'G'}, {'R', 'Y'}, {'K', 'M'}, {'B', 'V'}, {'D', 'H'}} {
		if Complement[pair[0]] != pair[1] || Complement[pair[1]] != pair[0] {
			t.Errorf("Complement[%c]=%c, Complement[%c]=%c; want a mutual pair",
				pair[0], Complement[pair[0]], pair[1], Complement[pair[1]])
		}
		a, b := pair[0]|0x20, pair[1]|0x20
		if Complement[a] != b || Complement[b] != a {
			t.Errorf("lower-case pair %c/%c broken", a, b)
		}
	}
	for _, b := range []byte{'x', '*', 0, 0xff, '5'} {
		if Complement[b] != 'N' {
			t.Errorf("Complement[%q] = %q, want 'N'", b, Complement[b])
		}
	}
	if Complement['S'] != 'S' || Complement['W'] != 'W' || Complement['N'] != 'N' {
		t.Error("self-complementary codes must map to themselves")
	}
}

// TestScanKernelsMatchScalar holds IndexByte/IndexAll/CountByte/Fill to
// their twins on delimiter-dense and delimiter-free inputs.
func TestScanKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(80)
		p := make([]byte, n)
		for i := range p {
			if rng.Intn(4) == 0 {
				p[i] = '\t'
			} else {
				p[i] = byte('a' + rng.Intn(26))
			}
		}
		for _, c := range []byte{'\t', '\n', 'a', 0} {
			if got, want := IndexByte(p, c), indexByteScalar(p, c); got != want {
				t.Fatalf("IndexByte(%q, %q) = %d, scalar %d", p, c, got, want)
			}
			if got, want := CountByte(p, c), countByteScalar(p, c); got != want {
				t.Fatalf("CountByte(%q, %q) = %d, scalar %d", p, c, got, want)
			}
			got := IndexAll(nil, p, c)
			want := indexAllScalar(nil, p, c)
			if len(got) != len(want) {
				t.Fatalf("IndexAll(%q, %q) found %d, scalar %d", p, c, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("IndexAll(%q, %q)[%d] = %d, scalar %d", p, c, i, got[i], want[i])
				}
			}
		}
	}
	for n := 0; n <= 40; n++ {
		got := randBytes(rng, n)
		want := make([]byte, n)
		Fill(got, '!')
		fillScalar(want, '!')
		if !bytes.Equal(got, want) {
			t.Fatalf("Fill n=%d: got %q", n, got)
		}
	}
	// IndexAll must append, not clobber, a non-empty destination.
	pre := IndexAll([]int{-1}, []byte("a\tb"), '\t')
	if len(pre) != 2 || pre[0] != -1 || pre[1] != 1 {
		t.Errorf("IndexAll append semantics broken: %v", pre)
	}
}

// TestParseUintMatchesScalar fuzzes digit strings (with occasional
// junk) against the scalar twin across the live field bounds, then
// pins the edges: empty, leading zeros past a word boundary, exact-max
// and max+1 at word and tail lengths, and huge-max scalar fallback.
func TestParseUintMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	maxes := []uint64{0, 9, 255, 65535, math.MaxInt32, 1 << 31, 1 << 32, 1 << 60, math.MaxUint64}
	for trial := 0; trial < 4000; trial++ {
		n := rng.Intn(24)
		p := make([]byte, n)
		for i := range p {
			if rng.Intn(12) == 0 {
				p[i] = byte(rng.Intn(256))
			} else {
				p[i] = byte('0' + rng.Intn(10))
			}
		}
		max := maxes[rng.Intn(len(maxes))]
		gv, gok := ParseUint(p, max)
		wv, wok := parseUintScalar(p, max)
		if gv != wv || gok != wok {
			t.Fatalf("ParseUint(%q, %d) = (%d, %v), scalar (%d, %v)", p, max, gv, gok, wv, wok)
		}
	}
	cases := []struct {
		in  string
		max uint64
		v   uint64
		ok  bool
	}{
		{"", 255, 0, false},
		{"0", 255, 0, true},
		{"000000000000000042", 255, 42, true},
		{"2147483647", math.MaxInt32, math.MaxInt32, true},
		{"2147483648", math.MaxInt32, 0, false},
		{"2147483648", 1 << 31, 1 << 31, true},
		{"65535", 65535, 65535, true},
		{"65536", 65535, 0, false},
		{"18446744073709551615", math.MaxUint64, math.MaxUint64, true},
		{"18446744073709551616", math.MaxUint64, 0, false},
		{"1234567x", math.MaxInt32, 0, false},
		{"+1", math.MaxInt32, 0, false},
		{"-1", math.MaxInt32, 0, false},
		{" 1", math.MaxInt32, 0, false},
	}
	for _, tc := range cases {
		gv, gok := ParseUint([]byte(tc.in), tc.max)
		if gv != tc.v || gok != tc.ok {
			t.Errorf("ParseUint(%q, %d) = (%d, %v), want (%d, %v)", tc.in, tc.max, gv, gok, tc.v, tc.ok)
		}
		wv, wok := parseUintScalar([]byte(tc.in), tc.max)
		if wv != tc.v || wok != tc.ok {
			t.Errorf("parseUintScalar(%q, %d) = (%d, %v), want (%d, %v)", tc.in, tc.max, wv, wok, tc.v, tc.ok)
		}
	}
}

// TestBaseCode pins the encoder table contract shared with bam.
func TestBaseCode(t *testing.T) {
	for i := 0; i < len(SeqChars); i++ {
		if BaseCode(SeqChars[i]) != byte(i) {
			t.Errorf("BaseCode(%q) = %d, want %d", SeqChars[i], BaseCode(SeqChars[i]), i)
		}
		if BaseCode(SeqChars[i]|0x20) != byte(i) {
			t.Errorf("BaseCode(lower %q) = %d, want %d", SeqChars[i]|0x20, BaseCode(SeqChars[i]|0x20), i)
		}
	}
	for _, b := range []byte{'x', 'Z', 0, 0xff, '!'} {
		if BaseCode(b) != 15 {
			t.Errorf("BaseCode(%q) = %d, want 15 ('N')", b, BaseCode(b))
		}
	}
}
