package kern

// SeqChars is the BAM specification's 4-bit sequence alphabet: code i
// renders as SeqChars[i].
const SeqChars = "=ACMGRSVTWYHKDBN"

// seqLo and seqHi hold the alphabet as two register-resident words —
// codes 0-7 in seqLo, 8-15 in seqHi, one character per little-endian
// byte lane — so expanding a code is a shift-and-mask on constants
// instead of a table load ("table-free expansion").
const (
	seqLo uint64 = 0x56_53_52_47_4D_43_41_3D // 'V','S','R','G','M','C','A','='
	seqHi uint64 = 0x4E_42_44_4B_48_59_57_54 // 'N','B','D','K','H','Y','W','T'
)

// baseCode maps an ASCII base (either case) to its 4-bit code; bytes
// outside the alphabet map to 15 ('N'), matching the BAM encoder's
// convention.
var baseCode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 15
	}
	for i := 0; i < len(SeqChars); i++ {
		t[SeqChars[i]] = byte(i)
		t[SeqChars[i]|0x20] = byte(i)
	}
	return t
}()

// spread moves byte k of x to byte lane 2k of the result, leaving the
// odd lanes zero — half of a byte-granularity interleave.
func spread(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	return v
}

// expand8 maps eight 4-bit codes, one per byte lane of v, to their
// ASCII bases by selecting between the two alphabet words — no memory
// lookup, so the lane loop is pure register arithmetic.
func expand8(v uint64) uint64 {
	var out uint64
	for k := 0; k < 64; k += 8 {
		c := (v >> uint(k)) & 0xff
		m := uint64(int64(c<<60) >> 63) // all-ones when code ≥ 8
		t := (seqLo &^ m) | (seqHi & m)
		out |= ((t >> ((c & 7) << 3)) & 0xff) << uint(k)
	}
	return out
}

// seqPair expands a whole packed byte — two 4-bit codes — to its two
// ASCII bases in one load: base for the high nibble in the low byte
// (it comes first in the read), base for the low nibble above it,
// ready to OR into a little-endian word. 512 bytes, permanently
// cache-resident.
var seqPair = func() [256]uint16 {
	var t [256]uint16
	for b := 0; b < 256; b++ {
		t[b] = uint16(SeqChars[b>>4]) | uint16(SeqChars[b&0xf])<<8
	}
	return t
}()

// UnpackSeq expands n 4-bit sequence codes packed two per byte in src
// (high nibble first, as BAM stores them) into ASCII bases in dst.
// src must hold at least (n+1)/2 bytes and dst at least n. The word
// path emits sixteen bases per iteration from eight pair-table loads
// folded into two word stores — one lookup and ~one ALU op per base,
// against the divide/branch/lookup round trip per base of the scalar
// form. (A fully table-free variant exists as unpackSeqBitTrick; the
// pair table wins on scalar cores, see BenchmarkKernUnpackSeqBitTrick.)
func UnpackSeq(dst, src []byte, n int) {
	i := 0
	for ; i+16 <= n; i += 16 {
		s := src[i>>1 : i>>1+8 : len(src)]
		store64(dst[i:], uint64(seqPair[s[0]])|uint64(seqPair[s[1]])<<16|
			uint64(seqPair[s[2]])<<32|uint64(seqPair[s[3]])<<48)
		store64(dst[i+8:], uint64(seqPair[s[4]])|uint64(seqPair[s[5]])<<16|
			uint64(seqPair[s[6]])<<32|uint64(seqPair[s[7]])<<48)
	}
	for ; i < n; i++ {
		b := src[i>>1]
		if i&1 == 0 {
			b >>= 4
		}
		dst[i] = SeqChars[b&0xf]
	}
}

// unpackSeqBitTrick is the table-free variant of UnpackSeq: one load
// per eight packed bytes, a nibble split, two byte interleaves and two
// register-only alphabet expansions. It holds the same contract (the
// equivalence tests run it too) but loses to the pair table on scalar
// cores — the per-lane variable shift in expand8 serializes — so
// UnpackSeq does not use it; it is kept as the reference SWAR shuffle
// for a future wide-vector port.
func unpackSeqBitTrick(dst, src []byte, n int) {
	i := 0
	for ; i+16 <= n; i += 16 {
		w := load64(src[i>>1:])
		hi := (w >> 4) & 0x0f0f0f0f0f0f0f0f // even bases
		lo := w & 0x0f0f0f0f0f0f0f0f        // odd bases
		store64(dst[i:], expand8(spread(uint32(hi))|spread(uint32(lo))<<8))
		store64(dst[i+8:], expand8(spread(uint32(hi>>32))|spread(uint32(lo>>32))<<8))
	}
	for ; i < n; i++ {
		b := src[i>>1]
		if i&1 == 0 {
			b >>= 4
		}
		dst[i] = SeqChars[b&0xf]
	}
}

// unpackSeqScalar is UnpackSeq's scalar reference twin — the pre-kernel
// decode loop, one base per iteration.
func unpackSeqScalar(dst, src []byte, n int) {
	for i := 0; i < n; i++ {
		b := src[i/2]
		if i%2 == 0 {
			b >>= 4
		}
		dst[i] = SeqChars[b&0xf]
	}
}

// PackSeq packs the ASCII bases of src two codes per byte into dst
// (high nibble first); dst must hold at least (len(src)+1)/2 bytes.
// An odd final base lands in the high nibble of the last byte with the
// low nibble zero, exactly as the BAM encoder emits it. The word path
// packs eight bases per iteration behind a single 4-byte store.
func PackSeq(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := uint32(baseCode[src[i]])<<4 | uint32(baseCode[src[i+1]])
		p |= (uint32(baseCode[src[i+2]])<<4 | uint32(baseCode[src[i+3]])) << 8
		p |= (uint32(baseCode[src[i+4]])<<4 | uint32(baseCode[src[i+5]])) << 16
		p |= (uint32(baseCode[src[i+6]])<<4 | uint32(baseCode[src[i+7]])) << 24
		dst[i>>1] = byte(p)
		dst[i>>1+1] = byte(p >> 8)
		dst[i>>1+2] = byte(p >> 16)
		dst[i>>1+3] = byte(p >> 24)
	}
	for ; i < n; i += 2 {
		b := baseCode[src[i]] << 4
		if i+1 < n {
			b |= baseCode[src[i+1]]
		}
		dst[i>>1] = b
	}
}

// packSeqScalar is PackSeq's scalar reference twin — the pre-kernel
// encode loop.
func packSeqScalar(dst, src []byte) {
	n := len(src)
	for i := 0; i < n; i += 2 {
		b := baseCode[src[i]] << 4
		if i+1 < n {
			b |= baseCode[src[i+1]]
		}
		dst[i/2] = b
	}
}

// BaseCode exposes the ASCII-base → 4-bit code mapping (either case;
// unknown bytes map to the code of 'N'), so encoders share one table.
func BaseCode(b byte) byte { return baseCode[b] }
