package kern

import (
	"bytes"
	"testing"
)

// FuzzUnpackSeq drives the pack/unpack kernels with arbitrary packed
// bytes, both length parities and a fuzzer-chosen misalignment, holding
// kernel ≡ scalar plus the canonical round trip.
func FuzzUnpackSeq(f *testing.F) {
	f.Add([]byte{}, false, uint8(0))
	f.Add([]byte{0x12}, true, uint8(1))
	f.Add([]byte{0x01, 0x24, 0x8f, 0xff, 0x00, 0x42, 0x99, 0xa5, 0x3c}, false, uint8(3))
	f.Add(bytes.Repeat([]byte{0xff}, 33), true, uint8(7))
	f.Fuzz(func(t *testing.T, packed []byte, odd bool, off uint8) {
		n := len(packed) * 2
		if odd && n > 0 {
			n--
		}
		buf := make([]byte, len(packed)+int(off%8))
		src := buf[off%8:]
		copy(src, packed)

		got := make([]byte, n)
		want := make([]byte, n)
		UnpackSeq(got, src, n)
		unpackSeqScalar(want, src, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("UnpackSeq(%x, %d): got %q want %q", src, n, got, want)
		}

		// Unpacked text is canonical alphabet, so packing it back must
		// agree with the scalar packer and reproduce the nibbles.
		repacked := make([]byte, (n+1)/2)
		repackedScalar := make([]byte, (n+1)/2)
		PackSeq(repacked, got)
		packSeqScalar(repackedScalar, want)
		if !bytes.Equal(repacked, repackedScalar) {
			t.Fatalf("PackSeq(%q): got %x scalar %x", got, repacked, repackedScalar)
		}
		back := make([]byte, n)
		UnpackSeq(back, repacked, n)
		if !bytes.Equal(back, got) {
			t.Fatalf("round trip diverged: %q became %q", got, back)
		}
	})
}

// FuzzShiftQual drives the quality-shift and range-check kernels with
// arbitrary payloads, shift constants and bounds, holding kernel ≡
// scalar for both, including the in-place aliased shift.
func FuzzShiftQual(f *testing.F) {
	f.Add([]byte{}, uint8(33), uint8('!'), uint8('~'))
	f.Add([]byte("IIIIIIIIIIIIIIIII"), uint8(223), uint8('!'), uint8('~'))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 33, 126, 32, 127, 1}, uint8(33), uint8(0), uint8(255))
	f.Fuzz(func(t *testing.T, p []byte, c, lo, hi uint8) {
		got := make([]byte, len(p))
		want := make([]byte, len(p))
		AddConst(got, p, c)
		addConstScalar(want, p, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("AddConst(%x, %d): got %x want %x", p, c, got, want)
		}
		inPlace := append([]byte(nil), p...)
		AddConst(inPlace, inPlace, c)
		if !bytes.Equal(inPlace, want) {
			t.Fatalf("AddConst in place (%x, %d): got %x want %x", p, c, inPlace, want)
		}
		if g, w := RangeOK(p, lo, hi), rangeOKScalar(p, lo, hi); g != w {
			t.Fatalf("RangeOK(%x, %d, %d) = %v, scalar %v", p, lo, hi, g, w)
		}
	})
}

// FuzzParseUint holds the digit kernel to its scalar twin for arbitrary
// bytes and bounds — the overflow guards differ structurally (per-chunk
// vs per-digit), so the fuzzer hunts for a divergence between them.
func FuzzParseUint(f *testing.F) {
	f.Add([]byte("2147483647"), uint64(1<<31-1))
	f.Add([]byte("00000000000000000009"), uint64(255))
	f.Add([]byte("99999999999999999999"), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, p []byte, max uint64) {
		gv, gok := ParseUint(p, max)
		wv, wok := parseUintScalar(p, max)
		if gv != wv || gok != wok {
			t.Fatalf("ParseUint(%q, %d) = (%d, %v), scalar (%d, %v)", p, max, gv, gok, wv, wok)
		}
	})
}
