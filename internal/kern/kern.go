// Package kern is the word-wide transcoding kernel layer: dependency-free
// pure-Go uint64 (SWAR — "SIMD within a register") implementations of the
// per-byte inner loops that dominate single-rank transcoding throughput —
// BAM 4-bit sequence unpack/pack, quality ±33 shifting, reverse
// complement, byte scanning/counting and bulk ASCII-digit parsing.
//
// The paper removes the coarse-grained sequential bottlenecks of NGS
// analysis; these kernels attack the fine-grained one left underneath:
// every converter rank, codec worker and analysis pass ultimately runs a
// byte-at-a-time loop over record payloads, so single-core loop speed
// caps what any amount of rank parallelism can deliver (grailbio's
// biosimd makes the same investment with SSE; htslib with its hand-tuned
// codecs). Here the loops go eight to sixteen bytes per iteration on
// plain uint64 loads and stores — portable, allocation-free, and safe on
// any alignment, since encoding/binary loads compile to single MOVs on
// little-endian targets and byte-reversed loads elsewhere.
//
// Every exported kernel has an unexported scalar reference twin
// (unpackSeqScalar, addConstScalar, ...) that states the contract in
// obvious one-byte-at-a-time code. The equivalence tests and fuzz
// targets in this package hold kernel ≡ scalar on arbitrary inputs,
// lengths and alignments; the benchmarks pin the speedups.
package kern

import "encoding/binary"

const (
	// ones has the low bit of every byte lane set; multiplying a byte
	// value by it broadcasts that byte across all eight lanes.
	ones uint64 = 0x0101010101010101
	// highs has the high bit of every byte lane set — the carry fence
	// and comparison-result mask of the SWAR idioms below.
	highs uint64 = 0x8080808080808080
)

// load64 and store64 move one register-width lane. On little-endian
// machines (every supported amd64/arm64 target) they compile to a single
// unaligned MOV.
func load64(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func store64(p []byte, v uint64) { binary.LittleEndian.PutUint64(p, v) }

// nonzeroLanes returns a word whose byte lanes hold 0x80 where the
// corresponding lane of v is nonzero and 0x00 where it is zero. Unlike
// the classic (v-ones)&^v&highs zero test it is exact per lane — the
// 7-bit partial sums cannot carry across lane boundaries — so the result
// can be fed to bits.OnesCount64 to count matches.
func nonzeroLanes(v uint64) uint64 {
	return ((v &^ highs) + ^highs | v) & highs
}

// addLanes adds the byte lanes of a and b independently, each wrapping
// mod 256 with no carry into its neighbour.
func addLanes(a, b uint64) uint64 {
	return ((a &^ highs) + (b &^ highs)) ^ ((a ^ b) & highs)
}
