package kern

const (
	digitHigh uint64 = 0xf0f0f0f0f0f0f0f0
	digitLow  uint64 = 0x0f0f0f0f0f0f0f0f
	ascii0    uint64 = 0x3030303030303030
	// digitProbe pushes '9'+1 .. '9'+6 (0x3a-0x3f, which share the '0'
	// high nibble and would slip past the nibble test alone) out of
	// nibble 3, without ever carrying across a lane for true digits.
	digitProbe uint64 = 0x0606060606060606
)

// ParseUint parses p as an unsigned decimal integer — every byte must
// be an ASCII digit and the value must not exceed max — returning the
// value and ok=false on empty input, a non-digit, or overflow. It
// accepts any number of leading zeros, exactly like the per-digit
// loop it replaces. The word path converts eight digits per iteration:
// a two-probe SWAR validity check, then three multiply-shift folds that
// collapse the lanes into one integer. Word chunks engage only for
// max < 2^32 (every SAM numeric field qualifies); larger bounds take
// the scalar twin, whose per-digit guard is overflow-safe for any max.
func ParseUint(p []byte, max uint64) (uint64, bool) {
	if max >= 1<<32 || len(p) < 8 {
		return parseUintScalar(p, max)
	}
	var v uint64
	i := 0
	for ; i+8 <= len(p); i += 8 {
		w := load64(p[i:])
		if w&digitHigh != ascii0 || (w+digitProbe)&digitHigh != ascii0 {
			return 0, false
		}
		d := w & digitLow
		d = (d * 2561) >> 8
		d = ((d & 0x00ff00ff00ff00ff) * 6553601) >> 16
		d = ((d & 0x0000ffff0000ffff) * 42949672960001) >> 32
		// v ≤ max < 2^32 here, so v*1e8 + d < 2^59: no uint64 overflow
		// between bound checks.
		v = v*100000000 + d
		if v > max {
			return 0, false
		}
	}
	for ; i < len(p); i++ {
		c := p[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > max {
			return 0, false
		}
	}
	return v, true
}

// parseUintScalar is ParseUint's scalar reference twin — the classic
// per-digit accumulate with a divide-based guard that cannot overflow
// for any max.
func parseUintScalar(p []byte, max uint64) (uint64, bool) {
	if len(p) == 0 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > max/10 {
			return 0, false
		}
		v *= 10 // ≤ (max/10)*10, so no overflow and max-v below cannot wrap
		if d > max-v {
			return 0, false
		}
		v += d
	}
	return v, true
}
