package kern

import "math/bits"

// Complement is the IUPAC nucleotide complement table: ambiguity codes
// map through their complements (case preserved) and unknown bytes map
// to 'N', matching the SAM renderer's convention.
var Complement = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 'N'
	}
	pairs := []struct{ a, b byte }{
		{'A', 'T'}, {'C', 'G'}, {'G', 'C'}, {'T', 'A'}, {'U', 'A'},
		{'R', 'Y'}, {'Y', 'R'}, {'S', 'S'}, {'W', 'W'}, {'K', 'M'},
		{'M', 'K'}, {'B', 'V'}, {'V', 'B'}, {'D', 'H'}, {'H', 'D'},
		{'N', 'N'},
	}
	for _, p := range pairs {
		t[p.a] = p.b
		t[p.a+'a'-'A'] = p.b + 'a' - 'A'
	}
	return t
}()

// ReverseComplement writes the reverse complement of src into dst
// (dst[i] = Complement[src[n-1-i]]); dst must be at least len(src)
// long and must not overlap src. The word path reverses eight bytes at
// a time with a single byte-swapped load and batches the complement
// lookups behind one store.
func ReverseComplement(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := bits.ReverseBytes64(load64(src[n-i-8:]))
		out := uint64(Complement[byte(w)]) |
			uint64(Complement[byte(w>>8)])<<8 |
			uint64(Complement[byte(w>>16)])<<16 |
			uint64(Complement[byte(w>>24)])<<24 |
			uint64(Complement[byte(w>>32)])<<32 |
			uint64(Complement[byte(w>>40)])<<40 |
			uint64(Complement[byte(w>>48)])<<48 |
			uint64(Complement[byte(w>>56)])<<56
		store64(dst[i:], out)
	}
	for ; i < n; i++ {
		dst[i] = Complement[src[n-1-i]]
	}
}

// reverseComplementScalar is ReverseComplement's scalar reference twin.
func reverseComplementScalar(dst, src []byte) {
	n := len(src)
	for i := 0; i < n; i++ {
		dst[i] = Complement[src[n-1-i]]
	}
}

// Reverse writes src reversed into dst; dst must be at least len(src)
// long and must not overlap src. Eight bytes per iteration via
// byte-swapped loads — the quality-string mirror of ReverseComplement.
func Reverse(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		store64(dst[i:], bits.ReverseBytes64(load64(src[n-i-8:])))
	}
	for ; i < n; i++ {
		dst[i] = src[n-1-i]
	}
}

// reverseScalar is Reverse's scalar reference twin.
func reverseScalar(dst, src []byte) {
	n := len(src)
	for i := 0; i < n; i++ {
		dst[i] = src[n-1-i]
	}
}
