// Zero-copy marshaling helpers shared by the kernel call sites: record
// fields live in strings, kernels run on byte slices, and the hot paths
// cannot afford a copy per crossing. Centralizing the unsafe aliasing
// here keeps every other package free of unsafe.

package kern

import "unsafe"

// StringBytes aliases s as a byte slice without copying. The result is
// read-only by contract — writing through it is undefined behavior, so
// it must only be passed as a kernel's src argument.
func StringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// BytesString aliases b as a string without copying. Safe exactly as
// long as b is never mutated while the string is reachable; callers
// pass freshly built buffers that are not retained elsewhere.
func BytesString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Grow extends dst by n bytes and returns the extended slice plus its
// writable n-byte tail, so kernels fill output in place instead of the
// caller appending byte-by-byte.
func Grow(dst []byte, n int) (all, tail []byte) {
	if cap(dst)-len(dst) < n {
		next := make([]byte, len(dst), len(dst)+n+len(dst)/2)
		copy(next, dst)
		dst = next
	}
	dst = dst[:len(dst)+n]
	return dst, dst[len(dst)-n:]
}
