package kern

// AddConst writes src[i]+c (each byte wrapping mod 256) into dst for
// every byte of src; dst must be at least as long as src and may alias
// it exactly (dst == src) but must not otherwise overlap. This is the
// quality-score shift kernel: +33 turns raw BAM qualities into ASCII
// (decode), +223 ≡ −33 turns ASCII back into raw scores (encode). The
// word path shifts eight scores per iteration with a carryless lane
// add instead of eight bounds-checked byte round trips.
func AddConst(dst, src []byte, c byte) {
	cw := ones * uint64(c)
	i := 0
	for ; i+8 <= len(src); i += 8 {
		store64(dst[i:], addLanes(load64(src[i:]), cw))
	}
	for ; i < len(src); i++ {
		dst[i] = src[i] + c
	}
}

// addConstScalar is AddConst's scalar reference twin.
func addConstScalar(dst, src []byte, c byte) {
	for i := 0; i < len(src); i++ {
		dst[i] = src[i] + c
	}
}

// RangeOK reports whether every byte of p lies in [lo, hi] — the
// validity check paired with the quality shift (ASCII qualities live in
// ['!', '~']). The word path tests eight bytes per iteration with the
// classic SWAR under/over probes, which are exact existence tests for
// lo ≤ 128 and hi ≤ 127; wider bounds fall back to the scalar loop.
func RangeOK(p []byte, lo, hi byte) bool {
	if lo > hi {
		return len(p) == 0
	}
	if lo > 128 || hi > 127 {
		return rangeOKScalar(p, lo, hi)
	}
	low := ones * uint64(lo)
	over := ones * uint64(127-hi)
	i := 0
	for ; i+8 <= len(p); i += 8 {
		v := load64(p[i:])
		// Both probes may carry/borrow across lanes, but only when some
		// lane is already out of range — so the word-level verdict stays
		// exact even though individual lane bits may smear.
		if (v-low)&^v&highs != 0 { // any byte < lo
			return false
		}
		if ((v+over)|v)&highs != 0 { // any byte > hi
			return false
		}
	}
	for ; i < len(p); i++ {
		if p[i] < lo || p[i] > hi {
			return false
		}
	}
	return true
}

// rangeOKScalar is RangeOK's scalar reference twin.
func rangeOKScalar(p []byte, lo, hi byte) bool {
	for i := 0; i < len(p); i++ {
		if p[i] < lo || p[i] > hi {
			return false
		}
	}
	return true
}
