package kern

import "math/bits"

// matchLanes returns a word with 0x80 in every byte lane of v that
// equals the broadcast byte bb (bb = ones*c) and 0x00 elsewhere; the
// result is exact per lane, so it can be popcounted or trailing-zero
// scanned.
func matchLanes(v, bb uint64) uint64 {
	return nonzeroLanes(v^bb) ^ highs
}

// IndexByte returns the index of the first occurrence of c in p, or -1
// — memchr, eight bytes per probe. The stdlib's assembly IndexByte only
// works on whole slices; this one is the building block the other scan
// kernels share and keeps the package dependency-free.
func IndexByte(p []byte, c byte) int {
	bb := ones * uint64(c)
	i := 0
	for ; i+8 <= len(p); i += 8 {
		if m := matchLanes(load64(p[i:]), bb); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(p); i++ {
		if p[i] == c {
			return i
		}
	}
	return -1
}

// indexByteScalar is IndexByte's scalar reference twin.
func indexByteScalar(p []byte, c byte) int {
	for i := 0; i < len(p); i++ {
		if p[i] == c {
			return i
		}
	}
	return -1
}

// IndexAll appends to dst the index of every occurrence of c in p and
// returns the extended slice — the field-delimitation kernel: one pass
// over a SAM line yields all tab positions, replacing per-field
// IndexByte rescans. Matches inside a word drain via trailing-zero
// iteration, so sparse delimiters cost one popcount-free test per word.
func IndexAll(dst []int, p []byte, c byte) []int {
	bb := ones * uint64(c)
	i := 0
	for ; i+8 <= len(p); i += 8 {
		m := matchLanes(load64(p[i:]), bb)
		for m != 0 {
			dst = append(dst, i+bits.TrailingZeros64(m)>>3)
			m &= m - 1
		}
	}
	for ; i < len(p); i++ {
		if p[i] == c {
			dst = append(dst, i)
		}
	}
	return dst
}

// indexAllScalar is IndexAll's scalar reference twin.
func indexAllScalar(dst []int, p []byte, c byte) []int {
	for i := 0; i < len(p); i++ {
		if p[i] == c {
			dst = append(dst, i)
		}
	}
	return dst
}

// CountByte returns the number of occurrences of c in p — the counting
// kernel behind base tallies and newline counts: one popcount per eight
// bytes instead of eight compare-and-branch rounds.
func CountByte(p []byte, c byte) int {
	bb := ones * uint64(c)
	n := 0
	i := 0
	for ; i+8 <= len(p); i += 8 {
		n += bits.OnesCount64(matchLanes(load64(p[i:]), bb))
	}
	for ; i < len(p); i++ {
		if p[i] == c {
			n++
		}
	}
	return n
}

// countByteScalar is CountByte's scalar reference twin.
func countByteScalar(p []byte, c byte) int {
	n := 0
	for i := 0; i < len(p); i++ {
		if p[i] == c {
			n++
		}
	}
	return n
}

// Fill sets every byte of p to c, eight per store — the memset behind
// missing-quality placeholders (0xff in BAM, '!' in FASTQ).
func Fill(p []byte, c byte) {
	bb := ones * uint64(c)
	i := 0
	for ; i+8 <= len(p); i += 8 {
		store64(p[i:], bb)
	}
	for ; i < len(p); i++ {
		p[i] = c
	}
}

// fillScalar is Fill's scalar reference twin.
func fillScalar(p []byte, c byte) {
	for i := range p {
		p[i] = c
	}
}
