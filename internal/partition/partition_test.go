package partition

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/mpi"
)

// makeLines builds a synthetic line-oriented payload with varying line
// lengths and returns the text plus the individual lines.
func makeLines(seed int64, n int) (string, []string) {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, n)
	var b strings.Builder
	for i := range lines {
		lines[i] = fmt.Sprintf("rec%06d %s", i, strings.Repeat("x", rng.Intn(120)))
		b.WriteString(lines[i])
		b.WriteByte('\n')
	}
	return b.String(), lines
}

// linesIn extracts the complete lines contained in data[start:end).
func linesIn(data string, r ByteRange) []string {
	chunk := data[r.Start:r.End]
	if chunk == "" {
		return nil
	}
	var out []string
	for _, l := range strings.Split(strings.TrimSuffix(chunk, "\n"), "\n") {
		out = append(out, l)
	}
	return out
}

func checkTiling(t *testing.T, data string, lines []string, parts []ByteRange) {
	t.Helper()
	// Ranges tile the region with no gaps or overlaps.
	var prev int64
	for i, p := range parts {
		if p.Start != prev {
			t.Fatalf("partition %d starts at %d, want %d", i, p.Start, prev)
		}
		if p.End < p.Start {
			t.Fatalf("partition %d inverted: %+v", i, p)
		}
		prev = p.End
	}
	if prev != int64(len(data)) {
		t.Fatalf("partitions end at %d, want %d", prev, len(data))
	}
	// Boundaries sit on line boundaries: concatenating per-partition
	// lines reproduces the input lines exactly.
	var got []string
	for _, p := range parts {
		got = append(got, linesIn(data, p)...)
	}
	if len(got) != len(lines) {
		t.Fatalf("partitioned lines = %d, want %d", len(got), len(lines))
	}
	for i := range got {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestSAMForwardTiles(t *testing.T) {
	data, lines := makeLines(1, 1000)
	r := strings.NewReader(data)
	for _, n := range []int{1, 2, 3, 7, 16, 61} {
		parts, err := SAMForward(r, 0, int64(len(data)), n)
		if err != nil {
			t.Fatalf("SAMForward(n=%d): %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("got %d parts, want %d", len(parts), n)
		}
		checkTiling(t, data, lines, parts)
	}
}

func TestSAMBackwardTiles(t *testing.T) {
	data, lines := makeLines(2, 1000)
	r := strings.NewReader(data)
	for _, n := range []int{1, 2, 3, 7, 16, 61} {
		parts, err := SAMBackward(r, 0, int64(len(data)), n)
		if err != nil {
			t.Fatalf("SAMBackward(n=%d): %v", n, err)
		}
		checkTiling(t, data, lines, parts)
	}
}

func TestForwardBackwardEquivalent(t *testing.T) {
	// The paper calls the two implementations equivalent: both must yield
	// line-aligned tilings covering identical line sets per the whole file
	// (individual boundaries may differ by one line).
	data, lines := makeLines(3, 500)
	r := strings.NewReader(data)
	for _, n := range []int{2, 5, 13} {
		fw, err := SAMForward(r, 0, int64(len(data)), n)
		if err != nil {
			t.Fatal(err)
		}
		bw, err := SAMBackward(r, 0, int64(len(data)), n)
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, data, lines, fw)
		checkTiling(t, data, lines, bw)
	}
}

func TestSAMForwardMoreRanksThanLines(t *testing.T) {
	data, lines := makeLines(4, 3)
	r := strings.NewReader(data)
	parts, err := SAMForward(r, 0, int64(len(data)), 16)
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, data, lines, parts)
}

func TestSAMForwardSingleHugeLine(t *testing.T) {
	data := strings.Repeat("z", 100000) + "\n"
	r := strings.NewReader(data)
	parts, err := SAMForward(r, 0, int64(len(data)), 8)
	if err != nil {
		t.Fatal(err)
	}
	// All content must land in partition 0.
	if parts[0].Len() != int64(len(data)) {
		t.Errorf("partition 0 = %+v, want the whole file", parts[0])
	}
	for i := 1; i < 8; i++ {
		if parts[i].Len() != 0 {
			t.Errorf("partition %d nonempty: %+v", i, parts[i])
		}
	}
}

func TestSAMForwardEmptyInput(t *testing.T) {
	parts, err := SAMForward(strings.NewReader(""), 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p.Len() != 0 {
			t.Errorf("empty input yielded %+v", p)
		}
	}
}

func TestSAMForwardWithHeaderOffset(t *testing.T) {
	header := "@HD\tVN:1.4\n@SQ\tSN:chr1\tLN:100\n"
	data, lines := makeLines(5, 200)
	full := header + data
	r := strings.NewReader(full)
	parts, err := SAMForward(r, int64(len(header)), int64(len(full)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Start != int64(len(header)) {
		t.Errorf("partition 0 starts at %d, want %d", parts[0].Start, len(header))
	}
	var got []string
	for _, p := range parts {
		got = append(got, linesIn(full, p)...)
	}
	if len(got) != len(lines) {
		t.Fatalf("lines = %d, want %d", len(got), len(lines))
	}
}

func TestSAMForwardErrors(t *testing.T) {
	if _, err := SAMForward(strings.NewReader("x"), 0, 1, 0); err == nil {
		t.Error("n=0 succeeded")
	}
	if _, err := SAMForward(strings.NewReader("x"), 5, 1, 2); err == nil {
		t.Error("inverted region succeeded")
	}
}

func TestSAMForwardMPIMatchesSequential(t *testing.T) {
	data, lines := makeLines(6, 800)
	r := strings.NewReader(data)
	for _, n := range []int{1, 2, 4, 9} {
		seq, err := SAMForward(r, 0, int64(len(data)), n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]ByteRange, n)
		err = mpi.Run(n, func(c *mpi.Comm) error {
			br, err := SAMForwardMPI(c, r, 0, int64(len(data)))
			if err != nil {
				return err
			}
			got[c.Rank()] = br
			return nil
		})
		if err != nil {
			t.Fatalf("SAMForwardMPI(n=%d): %v", n, err)
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Errorf("n=%d rank %d: MPI %+v vs sequential %+v", n, i, got[i], seq[i])
			}
		}
		checkTiling(t, data, lines, got)
	}
}

func TestRecords(t *testing.T) {
	parts := Records(10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("Records(10,3)[%d] = %v, want %v", i, parts[i], want[i])
		}
	}
	if got := Records(5, 0); got != nil {
		t.Errorf("Records(5,0) = %v", got)
	}
}

// Property: partitioning preserves every byte of every line for random
// inputs, partition counts and header offsets.
func TestSAMForwardProperty(t *testing.T) {
	f := func(seed int64, nLines uint8, nParts uint8) bool {
		data, lines := makeLines(seed, int(nLines%200)+1)
		n := int(nParts%30) + 1
		parts, err := SAMForward(strings.NewReader(data), 0, int64(len(data)), n)
		if err != nil {
			return false
		}
		var got []string
		for _, p := range parts {
			got = append(got, linesIn(data, p)...)
		}
		if len(got) != len(lines) {
			return false
		}
		for i := range got {
			if got[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFindLineBreakScansAcrossChunks(t *testing.T) {
	// Line breaker beyond one scan chunk.
	data := strings.Repeat("a", scanChunk+100) + "\n" + "tail\n"
	r := bytes.NewReader([]byte(data))
	off, err := findLineBreakForward(r, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(scanChunk+100) {
		t.Errorf("forward offset = %d, want %d", off, scanChunk+100)
	}
	back, err := findLineBreakBackward(r, int64(len(data)-1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if back != int64(scanChunk+100) {
		t.Errorf("backward offset = %d, want %d", back, scanChunk+100)
	}
}

func BenchmarkSAMForward(b *testing.B) {
	data, _ := makeLines(7, 100000)
	r := strings.NewReader(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SAMForward(r, 0, int64(len(data)), 64); err != nil {
			b.Fatal(err)
		}
	}
}
