// Package partition implements the input-partitioning strategies of the
// paper's three converter instances: Algorithm 1's even byte split with
// line-breaker boundary adjustment for SAM text (in both the forward
// variant the paper's system chooses and the backward variant it
// describes as equivalent), and equal-record-count splitting for
// fixed-stride BAMX data.
package partition

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"parseq/internal/mpi"
)

// ByteRange is a half-open [Start, End) span of a file.
type ByteRange struct {
	Start, End int64
}

// Len returns the number of bytes in the range.
func (r ByteRange) Len() int64 { return r.End - r.Start }

// ErrNoLineBreak reports that a partition boundary could not be adjusted
// because no line breaker exists between it and the end of the data.
var ErrNoLineBreak = errors.New("partition: no line breaker found")

// scanChunk is the granularity of the boundary-adjustment scans. SAM
// lines are short (a few hundred bytes), so one chunk almost always
// suffices.
const scanChunk = 64 << 10

// findLineBreakForward returns the absolute offset of the first '\n' at
// or after off, scanning no further than limit.
func findLineBreakForward(r io.ReaderAt, off, limit int64) (int64, error) {
	buf := make([]byte, scanChunk)
	for off < limit {
		n := int64(len(buf))
		if off+n > limit {
			n = limit - off
		}
		read, err := r.ReadAt(buf[:n], off)
		if read > 0 {
			if i := bytes.IndexByte(buf[:read], '\n'); i >= 0 {
				return off + int64(i), nil
			}
			off += int64(read)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return 0, ErrNoLineBreak
}

// findLineBreakBackward returns the absolute offset of the last '\n'
// strictly before off, scanning no earlier than floor.
func findLineBreakBackward(r io.ReaderAt, off, floor int64) (int64, error) {
	buf := make([]byte, scanChunk)
	for off > floor {
		n := int64(len(buf))
		if off-n < floor {
			n = off - floor
		}
		start := off - n
		read, err := r.ReadAt(buf[:n], start)
		if err != nil && err != io.EOF {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf[:read], '\n'); i >= 0 {
			return start + int64(i), nil
		}
		off = start
	}
	return 0, ErrNoLineBreak
}

// SAMForward evenly splits the [dataStart, dataEnd) region of a SAM file
// into n line-aligned ranges using Algorithm 1's forward variant: each
// partition but the first advances its starting point past the first line
// breaker, and each partition's end is its successor's start. Partitions
// may be empty when n exceeds the number of lines.
func SAMForward(r io.ReaderAt, dataStart, dataEnd int64, n int) ([]ByteRange, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: invalid partition count %d", n)
	}
	if dataEnd < dataStart {
		return nil, fmt.Errorf("partition: invalid region [%d, %d)", dataStart, dataEnd)
	}
	size := dataEnd - dataStart
	starts := make([]int64, n+1)
	starts[n] = dataEnd
	for i := 0; i < n; i++ {
		lo, _ := mpi.SplitRange(int(size), n, i)
		starts[i] = dataStart + int64(lo)
	}
	// Adjust starting points forward for the last n-1 partitions
	// (Algorithm 1 lines 3-10).
	for i := 1; i < n; i++ {
		if starts[i] <= dataStart {
			continue
		}
		nl, err := findLineBreakForward(r, starts[i], dataEnd)
		if err == ErrNoLineBreak {
			// The boundary sits inside the final line: this partition and
			// all later ones are empty.
			starts[i] = dataEnd
			continue
		}
		if err != nil {
			return nil, err
		}
		starts[i] = nl + 1
		if starts[i] > dataEnd {
			starts[i] = dataEnd
		}
	}
	// Later starts must not precede earlier ones (possible when several
	// initial boundaries land inside one long line).
	for i := 1; i <= n; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	out := make([]ByteRange, n)
	for i := 0; i < n; i++ {
		out[i] = ByteRange{Start: starts[i], End: starts[i+1]}
	}
	return out, nil
}

// SAMBackward is the paper's second, equivalent implementation: each
// partition but the last retreats its ending point to just past the last
// line breaker before the initial boundary.
func SAMBackward(r io.ReaderAt, dataStart, dataEnd int64, n int) ([]ByteRange, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: invalid partition count %d", n)
	}
	if dataEnd < dataStart {
		return nil, fmt.Errorf("partition: invalid region [%d, %d)", dataStart, dataEnd)
	}
	size := dataEnd - dataStart
	ends := make([]int64, n+1)
	ends[0] = dataStart
	for i := 1; i <= n; i++ {
		_, hi := mpi.SplitRange(int(size), n, i-1)
		ends[i] = dataStart + int64(hi)
	}
	for i := 1; i < n; i++ {
		nl, err := findLineBreakBackward(r, ends[i], dataStart)
		if err == ErrNoLineBreak {
			ends[i] = dataStart
			continue
		}
		if err != nil {
			return nil, err
		}
		ends[i] = nl + 1
	}
	for i := 1; i <= n; i++ {
		if ends[i] < ends[i-1] {
			ends[i] = ends[i-1]
		}
	}
	out := make([]ByteRange, n)
	for i := 0; i < n; i++ {
		out[i] = ByteRange{Start: ends[i], End: ends[i+1]}
	}
	return out, nil
}

// SAMForwardMPI is Algorithm 1 exactly as published: each rank computes
// its own adjusted range, sending its new starting point to its
// predecessor to become that rank's ending point. All ranks return their
// own range; collectively the ranges tile [dataStart, dataEnd).
func SAMForwardMPI(c *mpi.Comm, r io.ReaderAt, dataStart, dataEnd int64) (ByteRange, error) {
	n, rank := c.Size(), c.Rank()
	size := dataEnd - dataStart
	lo, _ := mpi.SplitRange(int(size), n, rank)
	start := dataStart + int64(lo)

	// Lines 3-10: adjust starting points forward for ranks 1..n-1.
	if rank != 0 && start > dataStart {
		nl, err := findLineBreakForward(r, start, dataEnd)
		if err == ErrNoLineBreak {
			start = dataEnd
		} else if err != nil {
			return ByteRange{}, err
		} else {
			start = nl + 1
		}
	}
	// Lines 11-15: rank i+1's start becomes rank i's end.
	end := dataEnd
	if rank != n-1 {
		if err := c.SendInt64(rank+1, 0, 0); err != nil { // request (pairs the exchange)
			return ByteRange{}, err
		}
	}
	if rank != 0 {
		if _, err := c.RecvInt64(rank-1, 0); err != nil {
			return ByteRange{}, err
		}
		if err := c.SendInt64(rank-1, 1, start); err != nil {
			return ByteRange{}, err
		}
	}
	if rank != n-1 {
		v, err := c.RecvInt64(rank+1, 1)
		if err != nil {
			return ByteRange{}, err
		}
		end = v
	}
	// Line 16: global barrier before lengths are used.
	if err := c.Barrier(); err != nil {
		return ByteRange{}, err
	}
	if end < start {
		end = start
	}
	return ByteRange{Start: start, End: end}, nil
}

// Records divides a count of fixed-stride records into n partitions with
// an almost equal number of records each, returning [lo, hi) record-index
// ranges. This is the BAM/BAMX converter's partitioning: random access
// makes the byte layout irrelevant.
func Records(count, n int) [][2]int {
	if n < 1 {
		return nil
	}
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		lo, hi := mpi.SplitRange(count, n, i)
		out[i] = [2]int{lo, hi}
	}
	return out
}
