package peaks

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parseq/internal/hist"
	"parseq/internal/shard"
	"parseq/internal/simdata"
)

// TestCoveragePeaksMatchesSequential: the region-parallel pipeline must
// call exactly the peaks a sequential histogram produces — the sharded
// histogram is identical, so the downstream FDR selection and calls
// must be too, at any shard count.
func TestCoveragePeaksMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	d := simdata.Generate(simdata.DefaultConfig(3000))
	bamPath := filepath.Join(dir, "data.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rname := d.Header.Refs[0].Name
	const binSize = 500
	seq, err := hist.Coverage(d.Records, d.Header, rname, binSize)
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	sims := [][]float64{
		simdata.Histogram(len(seq.Bins), 7),
		simdata.Histogram(len(seq.Bins), 8),
		simdata.Histogram(len(seq.Bins), 9),
	}
	candidates := []float64{0, 1, 2}
	opts := Options{MaxGap: 1, MinWidth: 1}
	wantPeaks, wantPT, wantFDR, err := CallWithFDR(seq.Bins, sims, candidates, opts)
	if err != nil {
		t.Fatalf("CallWithFDR: %v", err)
	}

	for _, shards := range []int{1, 4, 8} {
		p := shard.NewBAMProvider(bamPath)
		ps, h, pt, fdr, err := CoveragePeaks(p, rname, binSize, sims, candidates, opts, shard.Config{
			Ranks:        2,
			Workers:      2,
			TargetShards: shards,
		})
		p.Close()
		if err != nil {
			t.Fatalf("shards=%d: CoveragePeaks: %v", shards, err)
		}
		if !reflect.DeepEqual(h.Bins, seq.Bins) {
			t.Fatalf("shards=%d: histogram differs from sequential", shards)
		}
		if !reflect.DeepEqual(ps, wantPeaks) || pt != wantPT || fdr != wantFDR {
			t.Fatalf("shards=%d: calls differ: got %d peaks pt=%v fdr=%v, want %d peaks pt=%v fdr=%v",
				shards, len(ps), pt, fdr, len(wantPeaks), wantPT, wantFDR)
		}
	}
}
