package peaks

import (
	"testing"

	"parseq/internal/simdata"
)

// flatSims builds B simulations with constant background value.
func flatSims(b, bins int, value float64) [][]float64 {
	out := make([][]float64, b)
	for i := range out {
		s := make([]float64, bins)
		for j := range s {
			s[j] = value
		}
		out[i] = s
	}
	return out
}

func TestSurvivalCounts(t *testing.T) {
	hist := []float64{0, 5, 10}
	sims := [][]float64{
		{5, 5, 5},
		{10, 4, 20},
	}
	p, err := SurvivalCounts(hist, sims)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("p[%d] = %d, want %d", i, p[i], want[i])
		}
	}
	if _, err := SurvivalCounts(hist, [][]float64{{1}}); err == nil {
		t.Error("ragged simulations accepted")
	}
}

func TestCallFindsPlantedPeaks(t *testing.T) {
	const bins = 1000
	hist := make([]float64, bins)
	for i := range hist {
		hist[i] = 5
	}
	// Two planted peaks well above the simulated background.
	for i := 100; i < 140; i++ {
		hist[i] = 50
	}
	for i := 600; i < 630; i++ {
		hist[i] = 80
	}
	sims := flatSims(20, bins, 10)
	got, err := Call(hist, sims, 0, Options{MinWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("peaks = %+v, want 2", got)
	}
	if got[0].Start != 100 || got[0].End != 140 {
		t.Errorf("peak 0 = %+v", got[0])
	}
	if got[1].Start != 600 || got[1].End != 630 {
		t.Errorf("peak 1 = %+v", got[1])
	}
	if got[1].MaxValue != 80 {
		t.Errorf("peak 1 MaxValue = %g", got[1].MaxValue)
	}
	if got[0].MinSurvive != 0 {
		t.Errorf("peak 0 MinSurvive = %d", got[0].MinSurvive)
	}
	if got[0].Width() != 40 {
		t.Errorf("peak 0 Width = %d", got[0].Width())
	}
}

func TestCallMergesAcrossGaps(t *testing.T) {
	const bins = 200
	hist := make([]float64, bins)
	for i := range hist {
		hist[i] = 5
	}
	for i := 50; i < 60; i++ {
		hist[i] = 50
	}
	hist[60] = 5 // one-bin dip
	for i := 61; i < 70; i++ {
		hist[i] = 50
	}
	sims := flatSims(10, bins, 10)

	split, err := Call(hist, sims, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 2 {
		t.Fatalf("no-gap call = %+v, want 2 peaks", split)
	}
	merged, err := Call(hist, sims, 0, Options{MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 {
		t.Fatalf("gap-1 call = %+v, want 1 peak", merged)
	}
	if merged[0].Start != 50 || merged[0].End != 70 {
		t.Errorf("merged peak = %+v", merged[0])
	}
}

func TestCallMinWidthFilters(t *testing.T) {
	hist := []float64{5, 50, 5, 50, 50, 50, 5}
	sims := flatSims(5, len(hist), 10)
	got, err := Call(hist, sims, 0, Options{MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 3 {
		t.Errorf("peaks = %+v, want only the wide one", got)
	}
}

func TestCallNoPeaks(t *testing.T) {
	hist := []float64{1, 2, 3}
	sims := flatSims(4, 3, 100)
	got, err := Call(hist, sims, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("peaks = %+v, want none", got)
	}
	if _, err := Call(hist, nil, 0, Options{}); err == nil {
		t.Error("no simulations accepted")
	}
}

func TestCallWithFDR(t *testing.T) {
	hist := simdata.Histogram(4000, 3)
	sims := simdata.Simulations(20, 4000, 4)
	ps, pt, estimate, err := CallWithFDR(hist, sims, []float64{0, 1, 2, 4}, Options{MinWidth: 2})
	if err != nil {
		t.Fatalf("CallWithFDR: %v", err)
	}
	if len(ps) == 0 {
		t.Error("no peaks called on peaked synthetic data")
	}
	if estimate < 0 || estimate > 1.5 {
		t.Errorf("FDR estimate = %g", estimate)
	}
	found := false
	for _, c := range []float64{0, 1, 2, 4} {
		if pt == c {
			found = true
		}
	}
	if !found {
		t.Errorf("chosen threshold %g not among candidates", pt)
	}
	if _, _, _, err := CallWithFDR(hist, sims, nil, Options{}); err == nil {
		t.Error("empty candidates accepted")
	}
}
