// Package peaks implements the enriched-region selection that consumes
// the statistical module's outputs, completing the Han et al. pipeline
// the paper parallelises: survival counts p_i per bin against the
// simulation datasets, thresholding at the FDR-selected p_t, and merging
// qualifying bins into peak calls.
package peaks

import (
	"fmt"

	"parseq/internal/fdr"
)

// Peak is one enriched region in bin coordinates, half-open [Start, End).
type Peak struct {
	Start, End int
	MaxValue   float64 // highest histogram value inside the peak
	MinSurvive int     // smallest p_i inside the peak (strongest evidence)
}

// Width returns the peak width in bins.
func (p Peak) Width() int { return p.End - p.Start }

// SurvivalCounts computes p_i = Σ_b I(r_i ≤ r*_ib) for every bin — how
// many simulations match or beat the observation (Equation 4).
func SurvivalCounts(hist []float64, sims [][]float64) ([]int, error) {
	for b, s := range sims {
		if len(s) != len(hist) {
			return nil, fmt.Errorf("peaks: simulation %d has %d bins, histogram has %d",
				b, len(s), len(hist))
		}
	}
	p := make([]int, len(hist))
	for i := range hist {
		for b := range sims {
			if hist[i] <= sims[b][i] {
				p[i]++
			}
		}
	}
	return p, nil
}

// Options tunes peak calling.
type Options struct {
	// MaxGap merges qualifying runs separated by at most this many
	// non-qualifying bins.
	MaxGap int
	// MinWidth drops peaks narrower than this many bins.
	MinWidth int
}

// Call returns the enriched regions of the histogram: maximal runs of
// bins whose survival count is at or below pt, merged across gaps of at
// most opts.MaxGap bins and filtered to opts.MinWidth.
func Call(hist []float64, sims [][]float64, pt float64, opts Options) ([]Peak, error) {
	if len(sims) == 0 {
		return nil, fmt.Errorf("peaks: no simulation datasets")
	}
	p, err := SurvivalCounts(hist, sims)
	if err != nil {
		return nil, err
	}
	var out []Peak
	i := 0
	for i < len(hist) {
		if float64(p[i]) > pt {
			i++
			continue
		}
		peak := Peak{Start: i, End: i + 1, MaxValue: hist[i], MinSurvive: p[i]}
		gap := 0
		for j := i + 1; j < len(hist); j++ {
			if float64(p[j]) <= pt {
				peak.End = j + 1
				if hist[j] > peak.MaxValue {
					peak.MaxValue = hist[j]
				}
				if p[j] < peak.MinSurvive {
					peak.MinSurvive = p[j]
				}
				gap = 0
				continue
			}
			gap++
			if gap > opts.MaxGap {
				break
			}
		}
		if peak.Width() >= opts.MinWidth {
			out = append(out, peak)
		}
		i = peak.End + gap
		if i <= peak.End {
			i = peak.End
		}
	}
	return out, nil
}

// CallWithFDR selects the best threshold from candidates by estimated
// FDR (lowest non-zero estimate wins; ties break toward the larger
// threshold, which selects more bins) and calls peaks at it. It returns
// the peaks, the chosen threshold and its FDR estimate.
func CallWithFDR(hist []float64, sims [][]float64, candidates []float64, opts Options) ([]Peak, float64, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, 0, fmt.Errorf("peaks: no candidate thresholds")
	}
	estimates, err := fdr.Sweep(hist, sims, candidates)
	if err != nil {
		return nil, 0, 0, err
	}
	best := -1
	for k := range candidates {
		if estimates[k] <= 0 {
			continue
		}
		if best < 0 || estimates[k] < estimates[best] ||
			(estimates[k] == estimates[best] && candidates[k] > candidates[best]) {
			best = k
		}
	}
	if best < 0 {
		best = 0
	}
	ps, err := Call(hist, sims, candidates[best], opts)
	if err != nil {
		return nil, 0, 0, err
	}
	return ps, candidates[best], estimates[best], nil
}
