package peaks

import (
	"parseq/internal/hist"
	"parseq/internal/shard"
)

// CoveragePeaks runs the whole calling pipeline region-parallel: the
// coverage histogram for rname builds over the shard provider
// (hist.FromProvider — byte-balanced shards across ranks and workers),
// then the FDR threshold is selected from candidates and peaks are
// called at it. It returns the peaks, the underlying histogram, the
// chosen threshold and its FDR estimate. Because the sharded histogram
// is identical to a sequential scan, so are the calls.
func CoveragePeaks(p shard.Provider, rname string, binSize int, sims [][]float64, candidates []float64, opts Options, cfg shard.Config) ([]Peak, *hist.Histogram, float64, float64, error) {
	h, err := hist.FromProvider(p, rname, binSize, cfg)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	ps, pt, fdr, err := CallWithFDR(h.Bins, sims, candidates, opts)
	if err != nil {
		return nil, h, 0, 0, err
	}
	return ps, h, pt, fdr, nil
}
