package shard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"parseq/internal/obs"
)

// defaultWorkers sizes the local worker pool: the machine's parallelism,
// capped — shard readers are I/O-plus-inflate loops that stop scaling
// past a modest fan-out.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach drains shards through a pool of worker goroutines pulling
// from one dynamic queue: a worker finishing a cheap shard immediately
// steals the next descriptor rather than idling on a static partition,
// so one pileup hotspot cannot serialise the run. fn receives the
// shard's position i in shards (for indexing per-shard result slots —
// fn must not touch any other slot), the shard, and an open reader the
// loop closes afterwards. The first error cancels the queue and is
// returned; remaining undrained shards are skipped.
//
// Telemetry (when obs is enabled): shard.count/shard.bytes for drained
// shards, shard.steal for every pull past a worker's first, shard.skew
// (per-mille, busiest worker's bytes over the mean) for balance, and a
// per-shard span per worker lane feeding the trace viewer.
func ForEach(p Provider, shards []Shard, workers int, fn func(i int, sh Shard, rr RecordReader) error) error {
	if len(shards) == 0 {
		return nil
	}
	if workers < 1 {
		workers = defaultWorkers()
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	reg := obs.Default()
	var cntC, bytesC, stealC *obs.Counter
	var skewG *obs.Gauge
	pid := 0
	if reg != nil {
		cntC = reg.Counter("shard.count")
		bytesC = reg.Counter("shard.bytes")
		stealC = reg.Counter("shard.steal")
		skewG = reg.Gauge("shard.skew")
		if reg.TracingEnabled() {
			pid = reg.AllocPID("shard workers")
		}
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	perWorker := make([]int64, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for pulls := 0; ; pulls++ {
				i := int(next.Add(1) - 1)
				if i >= len(shards) || failed.Load() {
					return
				}
				if pulls > 0 && stealC != nil {
					stealC.Add(1)
				}
				sh := shards[i]
				var span obs.Span
				if reg != nil {
					span = reg.StartWorkerSpan(pid, w, "shard "+sh.String())
				}
				err := drainOne(p, i, sh, fn)
				span.End()
				if err != nil {
					fail(err)
					return
				}
				perWorker[w] += shardWeight(sh)
				if cntC != nil {
					cntC.Add(1)
					bytesC.Add(sh.Bytes)
				}
			}
		}(w)
	}
	wg.Wait()
	if skewG != nil && firstErr == nil {
		var sum, max int64
		for _, b := range perWorker {
			sum += b
			if b > max {
				max = b
			}
		}
		if sum > 0 {
			skewG.Set(max * 1000 * int64(workers) / sum)
		}
	}
	return firstErr
}

// drainOne opens, runs and closes one shard, folding the close error in
// after fn's (fn's wins — a close failure after a real error is noise).
func drainOne(p Provider, i int, sh Shard, fn func(int, Shard, RecordReader) error) error {
	rr, err := p.NewReader(sh)
	if err != nil {
		return err
	}
	ferr := fn(i, sh, rr)
	cerr := rr.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
