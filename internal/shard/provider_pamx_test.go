package shard

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"parseq/internal/formats/pamx"
	"parseq/internal/simdata"
)

// writePAMXFile materialises a deterministic dataset as BAM and
// converts it to PAMX with roughly target column groups.
func writePAMXFile(t testing.TB, n, target int) (string, *simdata.Dataset) {
	t.Helper()
	dir := t.TempDir()
	d := simdata.Generate(simdata.DefaultConfig(n))
	bamPath := filepath.Join(dir, "data.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	pamxPath := filepath.Join(dir, "data.pamx")
	if _, err := pamx.FromBAM(bamPath, pamxPath, pamx.Options{GroupRecords: (n + target - 1) / target}); err != nil {
		t.Fatal(err)
	}
	return pamxPath, d
}

// TestPAMXProviderShards: one shard per column group, exactly-once
// record coverage over the full shard list, reference filtering at
// group granularity, and projection-sensitive byte weights.
func TestPAMXProviderShards(t *testing.T) {
	const n = 2000
	path, d := writePAMXFile(t, n, 6)
	p := NewPAMXProvider(path)
	defer p.Close()

	shards, err := p.GenerateShards(Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pamx.OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	groups := pf.NumGroups()
	pf.Close()
	if len(shards) != groups {
		t.Fatalf("%d shards for %d groups", len(shards), groups)
	}

	var total int64
	for _, sh := range shards {
		rr, err := p.NewReader(sh)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := rr.NextBody(); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatal(err)
			}
			total++
		}
		rr.Close()
	}
	if total != n {
		t.Fatalf("full shard list yields %d records, want %d", total, n)
	}

	// Reference filtering keeps only that reference's groups, no tail.
	rname := d.Header.Refs[0].Name
	refID := int32(d.Header.RefID(rname))
	only, err := p.GenerateShards(Options{Refs: []string{rname}})
	if err != nil {
		t.Fatal(err)
	}
	if len(only) == 0 {
		t.Fatalf("no shards for %s", rname)
	}
	for _, sh := range only {
		if sh.RefID != refID {
			t.Fatalf("Refs=[%s] yielded a shard on ref %d", rname, sh.RefID)
		}
	}

	// A narrow projection must shrink the shard byte weights: the
	// estimate counts only the compressed columns a reader will load.
	fullBytes := shards[0].Bytes
	p2 := NewPAMXProvider(path)
	defer p2.Close()
	p2.Project(pamx.FieldFlag)
	narrow, err := p2.GenerateShards(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if narrow[0].Bytes >= fullBytes {
		t.Fatalf("projected weight %d not below full weight %d", narrow[0].Bytes, fullBytes)
	}
}

// TestOpenPathProviderPAMX: the path dispatcher must route .pamx files
// to the columnar provider.
func TestOpenPathProviderPAMX(t *testing.T) {
	path, _ := writePAMXFile(t, 200, 2)
	p := OpenPathProvider(path)
	defer p.Close()
	if _, ok := p.(*PAMXProvider); !ok {
		t.Fatalf("OpenPathProvider(%q) = %T, want *PAMXProvider", path, p)
	}
	if _, err := p.Header(); err != nil {
		t.Fatal(err)
	}
}
