package shard_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"parseq/internal/bamx"
	"parseq/internal/flagstat"
	"parseq/internal/formats/pamx"
	"parseq/internal/shard"
)

// benchPAMX lazily converts the shared benchmark BAM into PAMX once;
// like the sidecar indexes, the conversion is offline preprocessing the
// analysis benchmarks don't pay for.
var benchPAMX struct {
	once sync.Once
	path string
	err  error
}

func benchPAMXPath(b *testing.B) string {
	bamPath, _ := benchPaths(b)
	benchPAMX.once.Do(func() {
		path := bamPath + ".pamx"
		_, err := pamx.FromBAM(bamPath, path, pamx.Options{})
		benchPAMX.path, benchPAMX.err = path, err
	})
	if benchPAMX.err != nil {
		b.Fatal(benchPAMX.err)
	}
	return benchPAMX.path
}

// BenchmarkPAMXAnalysis sweeps projected whole-genome flagstat over the
// columnar provider at 1/2/4/8 workers against the row-major BAMX
// sharded scan at the same worker counts — the two container layouts
// under the identical drain, isolating what column projection buys.
func BenchmarkPAMXAnalysis(b *testing.B) {
	bamPath, bamxPath := benchPaths(b)
	pamxPath := benchPAMXPath(b)
	st, err := os.Stat(bamPath)
	if err != nil {
		b.Fatal(err)
	}
	want, err := singleStreamFlagstat(bamPath)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, fn func() (flagstat.Stats, error)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(st.Size())
			for i := 0; i < b.N; i++ {
				got, err := fn()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("result mismatch:\n got %+v\nwant %+v", got, want)
				}
			}
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		run(fmt.Sprintf("ShardedBAMX/workers=%d", workers), func() (flagstat.Stats, error) {
			p := shard.NewBAMXProvider(bamxPath)
			defer p.Close()
			return shardedFlagstat(p, workers)
		})
		run(fmt.Sprintf("ProjectedPAMX/workers=%d", workers), func() (flagstat.Stats, error) {
			p := shard.NewPAMXProvider(pamxPath)
			defer p.Close()
			return shardedFlagstat(p, workers)
		})
	}
}

// BenchmarkPAMXSpeedup is the column-projection headline: projected
// flagstat over PAMX against the row-major BAMX sharded scan, both at 4
// workers, run back to back inside each iteration with per-side minima
// (the ratio survives CPU steal). Reported metrics: "speedup" — the
// records/s ratio (record counts are equal, so it is the inverse time
// ratio) — and "bytes_inflated_ratio" — uncompressed bytes the
// projected scan materialises (the 36-byte coordinate column) over the
// bytes the fixed-stride BAMX scan reads (stride × records).
func BenchmarkPAMXSpeedup(b *testing.B) {
	_, bamxPath := benchPaths(b)
	pamxPath := benchPAMXPath(b)

	pf, err := pamx.OpenPath(pamxPath)
	if err != nil {
		b.Fatal(err)
	}
	var inflated int64
	for i := 0; i < pf.NumGroups(); i++ {
		inflated += pf.Group(i).Records * 36 // coord column ULen under FieldFlag
	}
	records := pf.NumRecords()
	pf.Close()
	xin, err := os.Open(bamxPath)
	if err != nil {
		b.Fatal(err)
	}
	xst, err := xin.Stat()
	if err != nil {
		b.Fatal(err)
	}
	xf, err := bamx.Open(xin, xst.Size())
	if err != nil {
		b.Fatal(err)
	}
	rowBytes := int64(xf.Stride()) * xf.NumRecords()
	xin.Close()

	minRow, minCol := time.Duration(1<<62), time.Duration(1<<62)
	timer := func(fn func() error) time.Duration {
		start := time.Now()
		if err := fn(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := timer(func() error {
			p := shard.NewBAMXProvider(bamxPath)
			defer p.Close()
			_, err := shardedFlagstat(p, 4)
			return err
		}); d < minRow {
			minRow = d
		}
		if d := timer(func() error {
			p := shard.NewPAMXProvider(pamxPath)
			defer p.Close()
			_, err := shardedFlagstat(p, 4)
			return err
		}); d < minCol {
			minCol = d
		}
	}
	b.ReportMetric(float64(minRow)/float64(minCol), "speedup")
	b.ReportMetric(float64(inflated)/float64(rowBytes), "bytes_inflated_ratio")
	b.ReportMetric(float64(records)/minCol.Seconds(), "records/s")
}
