package shard_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"parseq/internal/bam"
	"parseq/internal/bamx"
	"parseq/internal/flagstat"
	"parseq/internal/sam"
	"parseq/internal/shard"
	"parseq/internal/simdata"
)

// benchData lazily materialises one shared benchmark dataset with its
// persistent artifacts: BAM + .bai sidecar, BAMX + .baix sidecar. The
// indexes are built once here the way they would be built once offline;
// the benchmarks then measure analysis, not preprocessing.
var benchData struct {
	once     sync.Once
	bamPath  string
	bamxPath string
	err      error
}

func benchPaths(b *testing.B) (bamPath, bamxPath string) {
	benchData.once.Do(func() { benchData.err = buildBenchData() })
	if benchData.err != nil {
		b.Fatal(benchData.err)
	}
	return benchData.bamPath, benchData.bamxPath
}

func buildBenchData() error {
	dir, err := os.MkdirTemp("", "shardbench")
	if err != nil {
		return err
	}
	d := simdata.Generate(simdata.DefaultConfig(60000))

	bamPath := filepath.Join(dir, "bench.bam")
	f, err := os.Create(bamPath)
	if err != nil {
		return err
	}
	if err := d.WriteBAM(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	bf, err := os.Open(bamPath)
	if err != nil {
		return err
	}
	idx, err := bam.BuildFileIndex(bf)
	bf.Close()
	if err != nil {
		return err
	}
	bif, err := os.Create(bamPath + ".bai")
	if err != nil {
		return err
	}
	if _, err := idx.WriteTo(bif); err != nil {
		return err
	}
	if err := bif.Close(); err != nil {
		return err
	}

	bamxPath := filepath.Join(dir, "bench.bamx")
	xf, err := os.Create(bamxPath)
	if err != nil {
		return err
	}
	xidx, err := bamx.BuildFromRecords(xf, d.Header, d.Records)
	if err != nil {
		return err
	}
	if err := xf.Close(); err != nil {
		return err
	}
	ixf, err := os.Create(filepath.Join(dir, "bench.baix"))
	if err != nil {
		return err
	}
	if _, err := xidx.WriteTo(ixf); err != nil {
		return err
	}
	if err := ixf.Close(); err != nil {
		return err
	}

	benchData.bamPath = bamPath
	benchData.bamxPath = bamxPath
	return nil
}

// singleStreamFlagstat is the pre-shard baseline: one sequential scan
// of the whole BAM stream decoding every record — the natural
// whole-file analysis loop before this layer existed.
func singleStreamFlagstat(path string) (flagstat.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return flagstat.Stats{}, err
	}
	defer f.Close()
	br, err := bam.NewReader(f)
	if err != nil {
		return flagstat.Stats{}, err
	}
	defer br.Close()
	var s flagstat.Stats
	var rec sam.Record
	for {
		if err := br.ReadInto(&rec); err == io.EOF {
			return s, nil
		} else if err != nil {
			return s, err
		}
		s.Add(&rec)
	}
}

func shardedFlagstat(p shard.Provider, workers int) (flagstat.Stats, error) {
	return flagstat.Sharded(p, shard.Config{Workers: workers})
}

// BenchmarkShardedAnalysis sweeps whole-genome flagstat over the shard
// queue at 1/2/4/8 workers for both providers against the two
// sequential baselines: the record-decoding single stream (the
// pre-shard path) and the zero-decode sequential body scan. Bytes/op
// is the BAM file size for every variant, so MB/s compares directly.
// Providers are fresh per op — each measurement includes shard
// generation from the persistent sidecar index, as a cold run would.
func BenchmarkShardedAnalysis(b *testing.B) {
	bamPath, bamxPath := benchPaths(b)
	st, err := os.Stat(bamPath)
	if err != nil {
		b.Fatal(err)
	}
	want, err := singleStreamFlagstat(bamPath)
	if err != nil {
		b.Fatal(err)
	}

	run := func(name string, fn func() (flagstat.Stats, error)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(st.Size())
			for i := 0; i < b.N; i++ {
				got, err := fn()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("result mismatch:\n got %+v\nwant %+v", got, want)
				}
			}
		})
	}
	run("SingleStreamDecode", func() (flagstat.Stats, error) { return singleStreamFlagstat(bamPath) })
	run("SequentialBody", func() (flagstat.Stats, error) { return flagstat.BAMFile(bamPath) })
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		run(fmt.Sprintf("ShardedBAM/workers=%d", workers), func() (flagstat.Stats, error) {
			p := shard.NewBAMProvider(bamPath)
			defer p.Close()
			return shardedFlagstat(p, workers)
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		run(fmt.Sprintf("ShardedBAMX/workers=%d", workers), func() (flagstat.Stats, error) {
			p := shard.NewBAMXProvider(bamxPath)
			defer p.Close()
			return shardedFlagstat(p, workers)
		})
	}
}

// BenchmarkShardedSpeedup is the headline number: whole-genome flagstat
// region-parallel over the preprocessed container at 4 workers against
// the single-stream record-decoding BAM scan — the paper's pipeline
// (transcode once, then analyse in parallel) versus the sequential
// bottleneck it removes. Both sides run back to back inside each
// iteration and the ratio uses per-side minima, so the metric holds up
// on hosts with CPU steal where separately-timed runs drift.
func BenchmarkShardedSpeedup(b *testing.B) {
	bamPath, bamxPath := benchPaths(b)
	minSingle, minSharded := time.Duration(1<<62), time.Duration(1<<62)
	timer := func(fn func() error) time.Duration {
		start := time.Now()
		if err := fn(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := timer(func() error { _, err := singleStreamFlagstat(bamPath); return err }); d < minSingle {
			minSingle = d
		}
		if d := timer(func() error {
			p := shard.NewBAMXProvider(bamxPath)
			defer p.Close()
			_, err := shardedFlagstat(p, 4)
			return err
		}); d < minSharded {
			minSharded = d
		}
	}
	b.ReportMetric(float64(minSingle)/float64(minSharded), "speedup")
}
