package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"parseq/internal/bam"
	"parseq/internal/bamx"
	"parseq/internal/sam"
)

// BAMXProvider serves shards of a BAMX file through its BAIX index. The
// fixed stride makes shard weights exact — every record costs the same
// bytes — so shards split entry ranges evenly instead of estimating
// from compression. One read-only file handle is shared by every
// reader: ReadAt is position-less and safe concurrently.
type BAMXProvider struct {
	path     string
	baixPath string

	mu     sync.Mutex
	osf    *os.File
	file   *bamx.File
	index  *bamx.Index
	loaded bool
}

// NewBAMXProvider returns a provider over the BAMX file at path, with
// its BAIX sidecar at path minus ".bamx" plus ".baix" (the bamxtool
// convention), or rebuilt by a scan when the sidecar is missing.
func NewBAMXProvider(path string) *BAMXProvider {
	return &BAMXProvider{
		path:     path,
		baixPath: strings.TrimSuffix(path, ".bamx") + ".baix",
	}
}

func (p *BAMXProvider) load() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.loaded {
		return nil
	}
	f, err := os.Open(p.path)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	xf, err := bamx.Open(f, st.Size())
	if err != nil {
		f.Close()
		return err
	}
	var idx *bamx.Index
	if inf, err := os.Open(p.baixPath); err == nil {
		idx, err = bamx.ReadIndex(inf)
		inf.Close()
		if err != nil {
			f.Close()
			return fmt.Errorf("shard: reading %s: %w", p.baixPath, err)
		}
	} else if idx, err = bamx.BuildIndex(xf); err != nil {
		f.Close()
		return err
	}
	p.osf, p.file, p.index, p.loaded = f, xf, idx, true
	return nil
}

// Header returns the embedded SAM header.
func (p *BAMXProvider) Header() (*sam.Header, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	return p.file.Header(), nil
}

// GenerateShards splits each selected reference's BAIX entry range into
// even record-count pieces (stride × records is the exact byte weight),
// plus the physical tail of unmapped records for whole-file selections.
func (p *BAMXProvider) GenerateShards(opts Options) ([]Shard, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	h := p.file.Header()
	refIDs, withTail, err := resolveRefs(h, opts)
	if err != nil {
		return nil, err
	}
	stride := int64(p.file.Stride())
	total := int64(p.index.Len()) * stride
	target := opts.TargetBytes
	if target <= 0 {
		n := opts.TargetShards
		if n <= 0 {
			n = DefaultTargetShards
		}
		target = total / int64(n)
	}
	if target < stride {
		target = stride
	}
	entries := p.index.Entries()
	var shards []Shard
	var maxPhys int64 = -1
	for _, e := range entries {
		if e.Index > maxPhys {
			maxPhys = e.Index
		}
	}
	for _, id := range refIDs {
		lo, hi := p.index.RefRange(int32(id))
		count := int64(hi - lo)
		if count == 0 {
			continue
		}
		pieces := int((count*stride + target - 1) / target)
		if pieces < 1 {
			pieces = 1
		}
		ref := h.RefByID(id)
		for k := 0; k < pieces; k++ {
			a := lo + int(count*int64(k)/int64(pieces))
			b := lo + int(count*int64(k+1)/int64(pieces))
			if a == b {
				continue
			}
			shards = append(shards, Shard{
				Seq:     len(shards),
				RefID:   int32(id),
				RefName: ref.Name,
				Beg:     int(entries[a].Pos) - 1,
				End:     int(entries[b-1].Pos),
				RecLo:   int64(a),
				RecHi:   int64(b),
				Bytes:   int64(b-a) * stride,
			})
		}
	}
	if withTail {
		physLo := maxPhys + 1
		physHi := p.file.NumRecords()
		shards = append(shards, Shard{
			Seq:   len(shards),
			RefID: -1,
			RecLo: physLo,
			RecHi: physHi,
			Bytes: (physHi - physLo) * stride,
		})
	}
	return shards, nil
}

// bamxShardReader iterates one shard's records by random access: BAIX
// entry positions for region shards, the physical tail range for the
// unmapped shard (filtered to refID < 0 as defence in depth).
type bamxShardReader struct {
	file    *bamx.File
	entries []bamx.Entry // region shards; nil for the tail
	pos     int
	phys    int64 // tail cursor
	physHi  int64
	tail    bool
	raw     []byte
	body    []byte
}

func (r *bamxShardReader) NextBody() ([]byte, error) {
	for {
		var idx int64
		if r.tail {
			if r.phys >= r.physHi {
				return nil, io.EOF
			}
			idx = r.phys
			r.phys++
		} else {
			if r.pos >= len(r.entries) {
				return nil, io.EOF
			}
			idx = r.entries[r.pos].Index
			r.pos++
		}
		if err := r.file.ReadRaw(idx, r.raw); err != nil {
			return nil, err
		}
		var err error
		r.body, err = r.file.AppendBody(r.body[:0], r.raw)
		if err != nil {
			return nil, err
		}
		if r.tail {
			if refID := int32(binary.LittleEndian.Uint32(r.body[0:])); refID >= 0 {
				continue
			}
		}
		return r.body, nil
	}
}

func (r *bamxShardReader) ReadInto(rec *sam.Record) error {
	body, err := r.NextBody()
	if err != nil {
		return err
	}
	return bam.DecodeRecord(body, rec, r.file.Header())
}

// Close is a no-op: the file handle belongs to the provider.
func (r *bamxShardReader) Close() error { return nil }

// NewReader opens an iterator over one shard.
func (p *BAMXProvider) NewReader(sh Shard) (RecordReader, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	r := &bamxShardReader{
		file: p.file,
		raw:  make([]byte, p.file.Stride()),
	}
	if sh.Unmapped() {
		r.tail = true
		r.phys, r.physHi = sh.RecLo, sh.RecHi
	} else {
		lo, hi := int(sh.RecLo), int(sh.RecHi)
		entries := p.index.Entries()
		if lo < 0 || hi < lo || hi > len(entries) {
			return nil, fmt.Errorf("shard: BAIX record range [%d, %d) out of bounds [0, %d)", lo, hi, len(entries))
		}
		r.entries = entries[lo:hi]
	}
	return r, nil
}

// Close releases the shared file handle.
func (p *BAMXProvider) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.osf == nil {
		return nil
	}
	err := p.osf.Close()
	p.osf = nil
	return err
}
