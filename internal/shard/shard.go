// Package shard cuts an indexed alignment file into genomic-range
// shards and hands each worker — local goroutine or distributed rank —
// an independent seek-and-scan iterator. Block-level parallelism inside
// one stream plateaus on the ordered scan; this layer is the scaling
// story past it: the partition step of the paper applied at the genome
// level, in the style of htslib's region threading and grailbio's
// bamprovider.
//
// The contract every provider upholds is exactly-once coverage: a
// record belongs to the shard whose half-open interval contains its
// alignment *start* (never the shards it merely overlaps into), and
// fully unmapped records belong to the single unmapped-tail shard. Any
// partition of the shard list over workers, ranks and transports
// therefore tallies every record exactly once, which is what makes the
// analyses' merged results identical to a sequential scan at any shard
// count.
package shard

import (
	"encoding/binary"
	"fmt"

	"parseq/internal/mpi"
	"parseq/internal/sam"
)

// Shard is one unit of region-parallel work: a half-open base interval
// of one reference, or the unmapped tail (RefID -1). Bytes is the
// provider's estimate of the compressed input under the shard — the
// balancing weight for partitioning across ranks. Seq is the shard's
// ordinal in generation order; drivers fold per-shard results in Seq
// order so merged output is deterministic.
type Shard struct {
	Seq     int
	RefID   int32
	RefName string // "" for the unmapped tail
	Beg     int    // zero-based half-open base interval (region shards)
	End     int
	RecLo   int64 // BAMX: BAIX entry range (region) or physical range (tail)
	RecHi   int64
	Bytes   int64
}

// Unmapped reports whether this is the unmapped-tail shard.
func (sh Shard) Unmapped() bool { return sh.RefID < 0 }

// String renders the shard for spans and logs.
func (sh Shard) String() string {
	if sh.Unmapped() {
		return "*:unmapped"
	}
	return fmt.Sprintf("%s:%d-%d", sh.RefName, sh.Beg, sh.End)
}

// RecordReader iterates one shard's records. NextBody is the
// zero-decode hot path: the returned slice is the BAM-encoded record
// body, aliases an internal buffer, and is valid only until the next
// call. ReadInto decodes into a caller-owned record for consumers that
// need full fields. Both return io.EOF when the shard is exhausted.
type RecordReader interface {
	ReadInto(rec *sam.Record) error
	NextBody() ([]byte, error)
	Close() error
}

// Options tunes shard generation.
type Options struct {
	// TargetShards is the shard count to aim for across the selected
	// references (a guide, not a guarantee: cuts land on index-window
	// boundaries). ≤ 0 picks DefaultTargetShards.
	TargetShards int
	// TargetBytes, when > 0, overrides TargetShards with an absolute
	// per-shard compressed-byte goal.
	TargetBytes int64
	// Refs selects references by name. nil means every reference plus
	// the unmapped tail; non-nil restricts to the named references only
	// (no tail shard), the whole-chromosome analysis case.
	Refs []string
}

// DefaultTargetShards is the generation goal when Options leaves both
// targets unset: enough shards that a dynamic queue can balance skew,
// few enough that per-shard seek overhead stays negligible.
const DefaultTargetShards = 16

// Provider generates shards of one indexed input and opens independent
// readers over them. Implementations must allow concurrent NewReader
// calls and concurrent use of the returned readers — that is the whole
// point.
type Provider interface {
	Header() (*sam.Header, error)
	GenerateShards(opts Options) ([]Shard, error)
	NewReader(sh Shard) (RecordReader, error)
	Close() error
}

// shardWeight is the partitioning weight: estimated bytes, floored at
// one so empty-estimate shards still count toward balance.
func shardWeight(sh Shard) int64 {
	if sh.Bytes < 1 {
		return 1
	}
	return sh.Bytes
}

// PartitionByBytes splits shards into n contiguous groups balanced by
// their compressed-byte estimates: each group targets the remaining
// mean, so a fat reference concentrates groups and deserts spread out.
// Deterministic; trailing groups may be empty when shards run out.
func PartitionByBytes(shards []Shard, n int) [][]Shard {
	if n < 1 {
		n = 1
	}
	groups := make([][]Shard, n)
	var rem int64
	for _, sh := range shards {
		rem += shardWeight(sh)
	}
	start := 0
	for g := range groups {
		if start >= len(shards) {
			break
		}
		if g == n-1 {
			groups[g] = shards[start:]
			break
		}
		target := rem / int64(n-g)
		end := start + 1
		acc := shardWeight(shards[start])
		// Take the next shard while more than half of it fits under the
		// target — the closest-cut rule keeps groups near the mean.
		for end < len(shards) && acc+shardWeight(shards[end])/2 <= target {
			acc += shardWeight(shards[end])
			end++
		}
		groups[g] = shards[start:end]
		start = end
		rem -= acc
	}
	return groups
}

// Wire format: one shard is a fixed 44-byte prefix plus the name.
const shardWirePrefix = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 2

// AppendShard appends sh's wire encoding to dst.
func AppendShard(dst []byte, sh Shard) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.Seq))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.RefID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.Beg))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.End))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.RecLo))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.RecHi))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.Bytes))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(sh.RefName)))
	return append(dst, sh.RefName...)
}

// EncodeShards serialises a shard list for Scatter.
func EncodeShards(shards []Shard) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(shards)))
	for _, sh := range shards {
		dst = AppendShard(dst, sh)
	}
	return dst
}

// DecodeShards parses an EncodeShards payload.
func DecodeShards(data []byte) ([]Shard, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("shard: truncated shard list")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	// n is untrusted wire input: bound it by the bytes present.
	if n < 0 || n > len(data)/shardWirePrefix {
		return nil, fmt.Errorf("shard: shard list declares %d shards, data holds %d bytes", n, len(data))
	}
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < shardWirePrefix {
			return nil, fmt.Errorf("shard: truncated shard %d", i)
		}
		sh := Shard{
			Seq:   int(int32(binary.LittleEndian.Uint32(data[0:]))),
			RefID: int32(binary.LittleEndian.Uint32(data[4:])),
			Beg:   int(int64(binary.LittleEndian.Uint64(data[8:]))),
			End:   int(int64(binary.LittleEndian.Uint64(data[16:]))),
			RecLo: int64(binary.LittleEndian.Uint64(data[24:])),
			RecHi: int64(binary.LittleEndian.Uint64(data[32:])),
			Bytes: int64(binary.LittleEndian.Uint64(data[40:])),
		}
		nameLen := int(binary.LittleEndian.Uint16(data[48:]))
		data = data[shardWirePrefix:]
		if nameLen > len(data) {
			return nil, fmt.Errorf("shard: truncated shard %d name", i)
		}
		sh.RefName = string(data[:nameLen])
		data = data[nameLen:]
		shards = append(shards, sh)
	}
	return shards, nil
}

// Scatter distributes a shard list across the communicator: rank 0
// partitions shards into Size() contiguous byte-balanced groups and
// scatters the descriptors; every rank returns its own group. Only rank
// 0's shards argument is consulted.
func Scatter(c *mpi.Comm, shards []Shard) ([]Shard, error) {
	var parts [][]byte
	if c.Rank() == 0 {
		groups := PartitionByBytes(shards, c.Size())
		parts = make([][]byte, len(groups))
		for i, g := range groups {
			parts[i] = EncodeShards(g)
		}
	}
	mine, err := c.Scatter(0, parts)
	if err != nil {
		return nil, err
	}
	return DecodeShards(mine)
}

// Config tunes a region-parallel analysis run.
type Config struct {
	// Ranks is the world size to launch (≥ 1; under a TCP launcher it
	// must equal the world size). Zero means 1.
	Ranks int
	// Workers is the per-rank worker goroutine count draining the local
	// shard queue. Zero picks a GOMAXPROCS-derived default.
	Workers int
	// TargetShards overrides the generation goal. Zero derives it from
	// the aggregate worker count so the dynamic queue has slack.
	TargetShards int
	// Launch runs the rank functions. nil means mpi.Run, the in-process
	// channel world.
	Launch mpi.Launcher
}

// Launcher resolves the launcher and rank count a driver should run
// with: mpi.Run when unset, and at least one rank.
func (cfg Config) Launcher() (mpi.Launcher, int) {
	launch := cfg.Launch
	if launch == nil {
		launch = mpi.Run
	}
	ranks := cfg.Ranks
	if ranks < 1 {
		ranks = 1
	}
	return launch, ranks
}

// ResolveTargetShards resolves the generation goal for a world of the
// given size: explicit when set, otherwise four shards per worker
// across the world so the dynamic queues can rebalance stragglers.
func (cfg Config) ResolveTargetShards(worldSize int) int {
	if cfg.TargetShards > 0 {
		return cfg.TargetShards
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = defaultWorkers()
	}
	n := 4 * workers * worldSize
	if n < DefaultTargetShards {
		n = DefaultTargetShards
	}
	return n
}
