package shard

import (
	"sync"

	"parseq/internal/formats/pamx"
	"parseq/internal/sam"
)

// Projector is implemented by providers whose storage is columnar
// enough to skip fields: Project narrows subsequent readers to the
// given projection and re-weights shard byte estimates to the columns
// actually inflated. Must be called before GenerateShards/NewReader.
type Projector interface {
	Project(fields pamx.Fields)
}

// Project narrows p to fields when its storage supports projection and
// is a no-op otherwise — the seam analysis drivers call with their
// minimal field set so row-major providers keep working unchanged.
func Project(p Provider, fields pamx.Fields) {
	if pr, ok := p.(Projector); ok {
		pr.Project(fields)
	}
}

// PAMXProvider serves shards of a columnar PAMX file: one shard per
// column group. Groups never mix references, so reference selection
// filters whole groups, and the exactly-once contract is inherited from
// the writer's start-within group assignment. The byte weight of a
// shard is the compressed size of only the projected columns, so
// partitioning balances the work a projection actually does. One
// read-only handle is shared by every reader: column loads are
// position-less ReadAt calls.
type PAMXProvider struct {
	path string

	mu     sync.Mutex
	pf     *pamx.PathFile
	fields pamx.Fields
	loaded bool
}

// NewPAMXProvider returns a provider over the PAMX file at path with
// the full projection; Project narrows it.
func NewPAMXProvider(path string) *PAMXProvider {
	return &PAMXProvider{path: path, fields: pamx.FieldAll}
}

// Project restricts readers to the given columns (the coordinate column
// is always loaded) and shard weights to their compressed bytes.
func (p *PAMXProvider) Project(fields pamx.Fields) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fields = fields | pamx.FieldCoord
}

func (p *PAMXProvider) load() (*pamx.PathFile, pamx.Fields, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.loaded {
		pf, err := pamx.OpenPath(p.path)
		if err != nil {
			return nil, 0, err
		}
		p.pf, p.loaded = pf, true
	}
	return p.pf, p.fields, nil
}

// Header returns the embedded SAM header.
func (p *PAMXProvider) Header() (*sam.Header, error) {
	pf, _, err := p.load()
	if err != nil {
		return nil, err
	}
	return pf.Header(), nil
}

// GenerateShards maps each selected column group to one shard. The
// TargetShards/TargetBytes guides are ignored: the file's group
// structure is the partition, fixed at write time.
func (p *PAMXProvider) GenerateShards(opts Options) ([]Shard, error) {
	pf, fields, err := p.load()
	if err != nil {
		return nil, err
	}
	h := pf.Header()
	refIDs, withTail, err := resolveRefs(h, opts)
	if err != nil {
		return nil, err
	}
	selected := make(map[int32]bool, len(refIDs))
	for _, id := range refIDs {
		selected[int32(id)] = true
	}
	var shards []Shard
	for i := 0; i < pf.NumGroups(); i++ {
		g := pf.Group(i)
		var name string
		switch {
		case g.RefID < 0:
			if !withTail {
				continue
			}
		case !selected[g.RefID]:
			continue
		default:
			name = h.RefByID(int(g.RefID)).Name
		}
		shards = append(shards, Shard{
			Seq:     len(shards),
			RefID:   g.RefID,
			RefName: name,
			Beg:     int(g.Beg),
			End:     int(g.End),
			RecLo:   int64(i), // the group index; RecHi is unused
			RecHi:   int64(i) + 1,
			Bytes:   g.CompressedBytes(fields),
		})
	}
	return shards, nil
}

// NewReader opens a projected reader over one shard's column group.
func (p *PAMXProvider) NewReader(sh Shard) (RecordReader, error) {
	pf, fields, err := p.load()
	if err != nil {
		return nil, err
	}
	return pf.NewGroupReader(int(sh.RecLo), fields)
}

// Close releases the shared file handle.
func (p *PAMXProvider) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pf == nil {
		return nil
	}
	err := p.pf.Close()
	p.pf = nil
	return err
}

var _ Provider = (*PAMXProvider)(nil)
var _ Projector = (*PAMXProvider)(nil)
var _ RecordReader = (*pamx.GroupReader)(nil)
