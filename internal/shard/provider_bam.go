package shard

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"parseq/internal/bam"
	"parseq/internal/sam"
)

// BAMProvider serves shards of an indexed, coordinate-sorted BAM file.
// NewReader opens an independent file handle and BGZF stream per shard,
// so readers run concurrently across local workers and rank goroutines
// without shared mutable state. The index loads lazily on first use:
// from the .bai sidecar when present, otherwise built in memory by one
// scan (kept for the provider's lifetime).
type BAMProvider struct {
	path         string
	indexPath    string
	codecWorkers int

	mu     sync.Mutex
	header *sam.Header
	index  *bam.Index
	size   int64
	loaded bool
}

// BAMOption tunes a BAMProvider.
type BAMOption func(*BAMProvider)

// WithIndexPath overrides the .bai sidecar path (default path + ".bai").
func WithIndexPath(p string) BAMOption {
	return func(b *BAMProvider) { b.indexPath = p }
}

// WithCodecWorkers sets the BGZF inflate worker count of each per-shard
// reader. Shard readers default to the sequential codec: the shards
// themselves are the parallelism, and stacking a decode pipeline per
// shard oversubscribes the machine.
func WithCodecWorkers(n int) BAMOption {
	return func(b *BAMProvider) { b.codecWorkers = n }
}

// NewBAMProvider returns a provider over the BAM file at path.
func NewBAMProvider(path string, opts ...BAMOption) *BAMProvider {
	p := &BAMProvider{path: path, indexPath: path + ".bai"}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// load resolves the header, index and file size once, under the mutex —
// concurrent rank goroutines share one provider.
func (p *BAMProvider) load() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.loaded {
		return nil
	}
	f, err := os.Open(p.path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	br, err := bam.NewReader(f)
	if err != nil {
		return err
	}
	header := br.Header()
	br.Close()

	var idx *bam.Index
	if inf, err := os.Open(p.indexPath); err == nil {
		idx, err = bam.ReadIndex(inf)
		inf.Close()
		if err != nil {
			return fmt.Errorf("shard: reading %s: %w", p.indexPath, err)
		}
	} else {
		// No sidecar: build the index in memory from a fresh stream.
		bf, err := os.Open(p.path)
		if err != nil {
			return err
		}
		idx, err = bam.BuildFileIndex(bf)
		bf.Close()
		if err != nil {
			return err
		}
	}
	p.header, p.index, p.size, p.loaded = header, idx, st.Size(), true
	return nil
}

// Header returns the BAM header.
func (p *BAMProvider) Header() (*sam.Header, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	return p.header, nil
}

// Index exposes the resolved BAI index (loading it if needed).
func (p *BAMProvider) Index() (*bam.Index, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	return p.index, nil
}

// resolveRefs maps Options.Refs to reference IDs: every header
// reference when nil, the named subset otherwise. withTail reports
// whether the unmapped-tail shard belongs in the generation.
func resolveRefs(h *sam.Header, opts Options) (refIDs []int, withTail bool, err error) {
	if opts.Refs == nil {
		refIDs = make([]int, len(h.Refs))
		for i := range h.Refs {
			refIDs[i] = i
		}
		return refIDs, true, nil
	}
	for _, name := range opts.Refs {
		id := h.RefID(name)
		if id < 0 {
			return nil, false, fmt.Errorf("shard: reference %q not in header", name)
		}
		refIDs = append(refIDs, id)
	}
	return refIDs, false, nil
}

// GenerateShards cuts the selected references into shards of roughly
// equal compressed size, derived from the BAI linear index, plus the
// unmapped-tail shard for whole-file selections.
func (p *BAMProvider) GenerateShards(opts Options) ([]Shard, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	refIDs, withTail, err := resolveRefs(p.header, opts)
	if err != nil {
		return nil, err
	}
	// Total compressed bytes under the selection sets the per-shard goal.
	var total int64
	for _, id := range refIDs {
		if beg, end, ok := p.index.RefSpan(id); ok {
			total += end.Block() - beg.Block() + 1
		}
	}
	target := opts.TargetBytes
	if target <= 0 {
		n := opts.TargetShards
		if n <= 0 {
			n = DefaultTargetShards
		}
		target = total / int64(n)
	}
	if target < 1 {
		target = 1
	}
	var shards []Shard
	for _, id := range refIDs {
		ref := p.header.RefByID(id)
		for _, sl := range p.index.ByteSplits(id, ref.Length, target) {
			shards = append(shards, Shard{
				Seq:     len(shards),
				RefID:   int32(id),
				RefName: ref.Name,
				Beg:     sl.Beg,
				End:     sl.End,
				Bytes:   sl.Bytes,
			})
		}
	}
	if withTail {
		tail := p.size - p.index.EndOffset().Block()
		if tail < 0 {
			tail = 0
		}
		shards = append(shards, Shard{
			Seq:   len(shards),
			RefID: -1,
			Bytes: tail,
		})
	}
	return shards, nil
}

// bamShardReader is one shard's independent stream: its own file handle
// and BGZF reader, positioned by the BAI, filtered to the shard.
type bamShardReader struct {
	f  *os.File
	br *bam.Reader
	it interface {
		ReadInto(*sam.Record) error
		NextBody() ([]byte, error)
	}
}

func (r *bamShardReader) ReadInto(rec *sam.Record) error { return r.it.ReadInto(rec) }
func (r *bamShardReader) NextBody() ([]byte, error)      { return r.it.NextBody() }

func (r *bamShardReader) Close() error {
	err := r.br.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewReader opens an independent iterator over one shard: a start-within
// region reader for reference shards, the unmapped-tail reader for the
// tail.
func (p *BAMProvider) NewReader(sh Shard) (RecordReader, error) {
	if err := p.load(); err != nil {
		return nil, err
	}
	f, err := os.Open(p.path)
	if err != nil {
		return nil, err
	}
	var bopts []bam.Option
	if p.codecWorkers > 1 {
		bopts = append(bopts, bam.WithCodecWorkers(p.codecWorkers))
	}
	br, err := bam.NewReader(f, bopts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &bamShardReader{f: f, br: br}
	if sh.Unmapped() {
		r.it, err = bam.NewUnmappedTailReader(br, p.index)
	} else {
		r.it, err = bam.NewShardRegionReader(br, p.index, sh.RefName, sh.Beg, sh.End)
	}
	if err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// Close releases the provider. Per-shard readers own their handles, so
// this is a no-op kept for the Provider contract.
func (p *BAMProvider) Close() error { return nil }

// OpenPathProvider dispatches on the file extension: .bamx files get a
// BAMXProvider (BAIX sidecar), .pamx files a columnar PAMXProvider, and
// everything else a BAMProvider.
func OpenPathProvider(path string) Provider {
	switch {
	case strings.HasSuffix(path, ".bamx"):
		return NewBAMXProvider(path)
	case strings.HasSuffix(path, ".pamx"):
		return NewPAMXProvider(path)
	}
	return NewBAMProvider(path)
}
