package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parseq/internal/bamx"
	"parseq/internal/mpi"
	"parseq/internal/sam"
	"parseq/internal/simdata"
)

// writeDataset materialises one deterministic simdata dataset as a BAM
// file (no .bai sidecar — the provider builds the index in memory) and
// a BAMX file with its BAIX sidecar, returning both paths.
func writeDataset(t testing.TB, n int) (bamPath, bamxPath string, d *simdata.Dataset) {
	t.Helper()
	dir := t.TempDir()
	d = simdata.Generate(simdata.DefaultConfig(n))

	bamPath = filepath.Join(dir, "data.bam")
	bf, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	bamxPath = filepath.Join(dir, "data.bamx")
	xf, err := os.Create(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := bamx.BuildFromRecords(xf, d.Header, d.Records)
	if err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(filepath.Join(dir, "data.baix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(ixf); err != nil {
		t.Fatal(err)
	}
	if err := ixf.Close(); err != nil {
		t.Fatal(err)
	}
	return bamPath, bamxPath, d
}

func recordKey(rec *sam.Record) string {
	return fmt.Sprintf("%s/%d@%s:%d", rec.QName, rec.Flag, rec.RName, rec.Pos)
}

// drainShards reads every shard through the provider and returns the
// record multiset.
func drainShards(t *testing.T, p Provider, shards []Shard) map[string]int {
	t.Helper()
	got := map[string]int{}
	var rec sam.Record
	for _, sh := range shards {
		rr, err := p.NewReader(sh)
		if err != nil {
			t.Fatalf("NewReader(%v): %v", sh, err)
		}
		for {
			if err := rr.ReadInto(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("shard %v: ReadInto: %v", sh, err)
			}
			got[recordKey(&rec)]++
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	return got
}

func wantMultiset(d *simdata.Dataset) map[string]int {
	want := map[string]int{}
	for i := range d.Records {
		want[recordKey(&d.Records[i])]++
	}
	return want
}

func checkMultiset(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct records, want %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: record %s seen %d times, want %d", label, k, got[k], n)
		}
	}
}

// TestProvidersExactlyOnce is the tentpole contract for both providers:
// at every shard-count target the generated shards cover the dataset
// exactly once, including the unmapped tail.
func TestProvidersExactlyOnce(t *testing.T) {
	bamPath, bamxPath, d := writeDataset(t, 3000)
	want := wantMultiset(d)
	providers := []struct {
		name string
		p    Provider
	}{
		{"bam", NewBAMProvider(bamPath)},
		{"bamx", NewBAMXProvider(bamxPath)},
	}
	for _, tc := range providers {
		defer tc.p.Close()
		for _, target := range []int{1, 2, 4, 8, 64} {
			shards, err := tc.p.GenerateShards(Options{TargetShards: target})
			if err != nil {
				t.Fatalf("%s: GenerateShards(%d): %v", tc.name, target, err)
			}
			if len(shards) == 0 {
				t.Fatalf("%s: no shards at target %d", tc.name, target)
			}
			for i, sh := range shards {
				if sh.Seq != i {
					t.Fatalf("%s: shard %d carries Seq %d", tc.name, i, sh.Seq)
				}
			}
			got := drainShards(t, tc.p, shards)
			checkMultiset(t, fmt.Sprintf("%s target %d", tc.name, target), got, want)
		}
	}
}

// TestGenerateShardsRefsSubset: a named-reference selection stays on
// those references and omits the tail.
func TestGenerateShardsRefsSubset(t *testing.T) {
	bamPath, bamxPath, d := writeDataset(t, 2000)
	ref := d.Header.Refs[0].Name
	want := map[string]int{}
	for i := range d.Records {
		if d.Records[i].RName == ref {
			want[recordKey(&d.Records[i])]++
		}
	}
	for _, p := range []Provider{NewBAMProvider(bamPath), NewBAMXProvider(bamxPath)} {
		shards, err := p.GenerateShards(Options{TargetShards: 6, Refs: []string{ref}})
		if err != nil {
			t.Fatalf("GenerateShards: %v", err)
		}
		for _, sh := range shards {
			if sh.Unmapped() || sh.RefName != ref {
				t.Fatalf("subset generation produced shard %v", sh)
			}
		}
		checkMultiset(t, "subset", drainShards(t, p, shards), want)
		if _, err := p.GenerateShards(Options{Refs: []string{"chrNope"}}); err == nil {
			t.Fatal("unknown reference did not error")
		}
		p.Close()
	}
}

// TestPartitionByBytes checks contiguity, completeness and balance.
func TestPartitionByBytes(t *testing.T) {
	shards := make([]Shard, 20)
	var total int64
	for i := range shards {
		shards[i] = Shard{Seq: i, Bytes: int64(1000 * (1 + i%5))}
		total += shards[i].Bytes
	}
	for _, n := range []int{1, 2, 3, 7, 20, 30} {
		groups := PartitionByBytes(shards, n)
		if len(groups) != n {
			t.Fatalf("n=%d: %d groups", n, len(groups))
		}
		seq := 0
		for g, grp := range groups {
			var bytes int64
			for _, sh := range grp {
				if sh.Seq != seq {
					t.Fatalf("n=%d group %d: shard Seq %d, want %d (not contiguous)", n, g, sh.Seq, seq)
				}
				seq++
				bytes += sh.Bytes
			}
			if n <= 20 && len(grp) > 0 && bytes > 2*total/int64(n)+5000 {
				t.Fatalf("n=%d group %d holds %d bytes of %d total", n, g, bytes, total)
			}
		}
		if seq != len(shards) {
			t.Fatalf("n=%d: %d shards distributed, want %d", n, seq, len(shards))
		}
	}
}

// TestShardCodecRoundTrip: the wire codec is lossless and rejects
// truncation.
func TestShardCodecRoundTrip(t *testing.T) {
	shards := []Shard{
		{Seq: 0, RefID: 2, RefName: "chr3", Beg: 16384, End: 197152, RecLo: 7, RecHi: 200, Bytes: 123456},
		{Seq: 1, RefID: -1, RecLo: 200, RecHi: 210, Bytes: 99},
		{},
	}
	data := EncodeShards(shards)
	got, err := DecodeShards(data)
	if err != nil {
		t.Fatalf("DecodeShards: %v", err)
	}
	if !reflect.DeepEqual(shards, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, shards)
	}
	for cut := 1; cut < len(data); cut++ {
		if dec, err := DecodeShards(data[:cut]); err == nil && len(dec) == len(shards) {
			t.Fatalf("truncation at %d bytes decoded fully", cut)
		}
	}
	if _, err := DecodeShards(nil); err == nil {
		t.Fatal("nil payload did not error")
	}
}

// TestScatter: every rank of a channel world receives a contiguous
// group and the union is the full list.
func TestScatter(t *testing.T) {
	shards := make([]Shard, 11)
	for i := range shards {
		shards[i] = Shard{Seq: i, RefName: "chr1", Beg: i * 100, End: (i + 1) * 100, Bytes: int64(100 + i)}
	}
	const ranks = 4
	gotBy := make([][]Shard, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		var all []Shard
		if c.Rank() == 0 {
			all = shards
		}
		mine, err := Scatter(c, all)
		if err != nil {
			return err
		}
		gotBy[c.Rank()] = mine
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var union []Shard
	for _, g := range gotBy {
		union = append(union, g...)
	}
	if !reflect.DeepEqual(union, shards) {
		t.Fatalf("scattered union mismatch:\n got %+v\nwant %+v", union, shards)
	}
}

// TestForEach: the dynamic queue visits every shard exactly once, keeps
// the i-th result in the i-th slot, and propagates the first error.
func TestForEach(t *testing.T) {
	bamPath, _, _ := writeDataset(t, 1500)
	p := NewBAMProvider(bamPath)
	defer p.Close()
	shards, err := p.GenerateShards(Options{TargetShards: 8})
	if err != nil {
		t.Fatalf("GenerateShards: %v", err)
	}
	for _, workers := range []int{1, 3, 8} {
		counts := make([]int, len(shards))
		err := ForEach(p, shards, workers, func(i int, sh Shard, rr RecordReader) error {
			for {
				if _, err := rr.NextBody(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
				counts[i]++
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: ForEach: %v", workers, err)
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != 1500 {
			t.Fatalf("workers=%d: drained %d records, want 1500", workers, total)
		}
	}
	wantErr := fmt.Errorf("boom")
	err = ForEach(p, shards, 4, func(i int, sh Shard, rr RecordReader) error {
		if i == 2 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("ForEach error = %v, want %v", err, wantErr)
	}
}

// TestOpenPathProvider dispatches on extension.
func TestOpenPathProvider(t *testing.T) {
	bamPath, bamxPath, _ := writeDataset(t, 200)
	if _, ok := OpenPathProvider(bamPath).(*BAMProvider); !ok {
		t.Fatal("BAM path did not open a BAMProvider")
	}
	if _, ok := OpenPathProvider(bamxPath).(*BAMXProvider); !ok {
		t.Fatal("BAMX path did not open a BAMXProvider")
	}
}
