// Package bed reads and writes the BED and BEDGRAPH interval formats,
// the remaining leg of the converter's cross-utilization story: the
// tracks the converter emits can be read back, validated, intersected
// with regions and turned into coverage histograms.
package bed

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parseq/internal/kern"
)

// Feature is one BED line. Start/End are 0-based half-open, per the
// format. Optional columns beyond the first three are zero-valued when
// absent; columns beyond six are kept verbatim in Extra.
type Feature struct {
	Chrom  string
	Start  int
	End    int
	Name   string
	Score  float64
	Strand byte // '+', '-' or 0 when absent
	Extra  []string
}

// Overlaps reports whether the feature overlaps [start, end) on chrom.
func (f Feature) Overlaps(chrom string, start, end int) bool {
	return f.Chrom == chrom && f.Start < end && f.End > start
}

// Len returns the feature length in bases.
func (f Feature) Len() int { return f.End - f.Start }

// ErrMalformed reports a syntactically invalid line.
var ErrMalformed = errors.New("bed: malformed input")

// atoiCoord converts a coordinate column. The overwhelmingly common
// case — a plain run of digits fitting int32, which is every genomic
// coordinate — takes the kern word-wide digit kernel; anything it
// rejects (signs, 2^31 and larger, junk) falls back to strconv.Atoi so
// accept/reject semantics and platform int-range behavior stay exactly
// Atoi's.
func atoiCoord(s string) (int, error) {
	if v, ok := kern.ParseUint(kern.StringBytes(s), 1<<31-1); ok {
		return int(v), nil
	}
	return strconv.Atoi(s)
}

// skippable reports track/browser/comment/blank lines.
func skippable(line string) bool {
	return line == "" || strings.HasPrefix(line, "#") ||
		strings.HasPrefix(line, "track") || strings.HasPrefix(line, "browser")
}

// Reader streams BED features.
type Reader struct {
	scan *bufio.Scanner
	line int
	err  error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	return &Reader{scan: scan}
}

// Read returns the next feature, or io.EOF.
func (r *Reader) Read() (Feature, error) {
	if r.err != nil {
		return Feature{}, r.err
	}
	for r.scan.Scan() {
		r.line++
		line := r.scan.Text()
		if skippable(line) {
			continue
		}
		f, err := ParseFeature(line)
		if err != nil {
			r.err = fmt.Errorf("line %d: %w", r.line, err)
			return Feature{}, r.err
		}
		return f, nil
	}
	if err := r.scan.Err(); err != nil {
		r.err = err
		return Feature{}, err
	}
	r.err = io.EOF
	return Feature{}, io.EOF
}

// ReadAll consumes the remaining features.
func (r *Reader) ReadAll() ([]Feature, error) {
	var out []Feature
	for {
		f, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

// ParseFeature parses one BED line (3-12 columns).
func ParseFeature(line string) (Feature, error) {
	cols := strings.Split(line, "\t")
	if len(cols) < 3 {
		return Feature{}, fmt.Errorf("%w: %d columns", ErrMalformed, len(cols))
	}
	start, err := atoiCoord(cols[1])
	if err != nil {
		return Feature{}, fmt.Errorf("%w: start %q", ErrMalformed, cols[1])
	}
	end, err := atoiCoord(cols[2])
	if err != nil {
		return Feature{}, fmt.Errorf("%w: end %q", ErrMalformed, cols[2])
	}
	if start < 0 || end < start {
		return Feature{}, fmt.Errorf("%w: interval [%d, %d)", ErrMalformed, start, end)
	}
	f := Feature{Chrom: cols[0], Start: start, End: end}
	if len(cols) > 3 {
		f.Name = cols[3]
	}
	if len(cols) > 4 && cols[4] != "" && cols[4] != "." {
		f.Score, err = strconv.ParseFloat(cols[4], 64)
		if err != nil {
			return Feature{}, fmt.Errorf("%w: score %q", ErrMalformed, cols[4])
		}
	}
	if len(cols) > 5 {
		switch cols[5] {
		case "+":
			f.Strand = '+'
		case "-":
			f.Strand = '-'
		case ".", "":
		default:
			return Feature{}, fmt.Errorf("%w: strand %q", ErrMalformed, cols[5])
		}
	}
	if len(cols) > 6 {
		f.Extra = cols[6:]
	}
	return f, nil
}

// String renders the feature as a BED line with as many columns as it
// carries values for.
func (f Feature) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\t%d\t%d", f.Chrom, f.Start, f.End)
	cols := 3
	emitTo := func(n int) {
		for cols < n {
			switch cols {
			case 3:
				b.WriteByte('\t')
				if f.Name == "" {
					b.WriteByte('.')
				} else {
					b.WriteString(f.Name)
				}
			case 4:
				fmt.Fprintf(&b, "\t%g", f.Score)
			case 5:
				b.WriteByte('\t')
				if f.Strand == 0 {
					b.WriteByte('.')
				} else {
					b.WriteByte(f.Strand)
				}
			}
			cols++
		}
	}
	max := 3
	if f.Name != "" {
		max = 4
	}
	if f.Score != 0 {
		max = 5
	}
	if f.Strand != 0 {
		max = 6
	}
	if len(f.Extra) > 0 {
		max = 6
	}
	emitTo(max)
	for _, e := range f.Extra {
		b.WriteByte('\t')
		b.WriteString(e)
	}
	return b.String()
}

// Writer emits BED features.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write emits one feature line.
func (w *Writer) Write(f Feature) error {
	if _, err := w.bw.WriteString(f.String()); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// GraphInterval is one BEDGRAPH line: a value over a 0-based half-open
// interval.
type GraphInterval struct {
	Chrom string
	Start int
	End   int
	Value float64
}

// ReadGraph parses a BEDGRAPH stream, skipping track and comment lines.
func ReadGraph(r io.Reader) ([]GraphInterval, error) {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	var out []GraphInterval
	line := 0
	for scan.Scan() {
		line++
		text := scan.Text()
		if skippable(text) {
			continue
		}
		cols := strings.Split(text, "\t")
		if len(cols) < 4 {
			return nil, fmt.Errorf("line %d: %w: %d columns", line, ErrMalformed, len(cols))
		}
		start, err := atoiCoord(cols[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w: start %q", line, ErrMalformed, cols[1])
		}
		end, err := atoiCoord(cols[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w: end %q", line, ErrMalformed, cols[2])
		}
		value, err := strconv.ParseFloat(cols[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w: value %q", line, ErrMalformed, cols[3])
		}
		if start < 0 || end < start {
			return nil, fmt.Errorf("line %d: %w: interval [%d, %d)", line, ErrMalformed, start, end)
		}
		out = append(out, GraphInterval{Chrom: cols[0], Start: start, End: end, Value: value})
	}
	return out, scan.Err()
}

// FilterOverlapping returns the features overlapping [start, end) on
// chrom, in input order.
func FilterOverlapping(fs []Feature, chrom string, start, end int) []Feature {
	var out []Feature
	for _, f := range fs {
		if f.Overlaps(chrom, start, end) {
			out = append(out, f)
		}
	}
	return out
}

// TotalCoverage sums value×length over graph intervals on chrom — the
// aggregate the coverage histogram conserves.
func TotalCoverage(gs []GraphInterval, chrom string) float64 {
	total := 0.0
	for _, g := range gs {
		if g.Chrom == chrom {
			total += g.Value * float64(g.End-g.Start)
		}
	}
	return total
}
