package bed

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/formats"
	"parseq/internal/simdata"
)

func TestParseFeature(t *testing.T) {
	f, err := ParseFeature("chr1\t100\t200\tread1\t37\t-\textra1\textra2")
	if err != nil {
		t.Fatalf("ParseFeature: %v", err)
	}
	want := Feature{
		Chrom: "chr1", Start: 100, End: 200, Name: "read1",
		Score: 37, Strand: '-', Extra: []string{"extra1", "extra2"},
	}
	if f.Chrom != want.Chrom || f.Start != want.Start || f.End != want.End ||
		f.Name != want.Name || f.Score != want.Score || f.Strand != want.Strand {
		t.Errorf("f = %+v", f)
	}
	if len(f.Extra) != 2 {
		t.Errorf("Extra = %v", f.Extra)
	}
	if f.Len() != 100 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestParseFeatureMinimal(t *testing.T) {
	f, err := ParseFeature("chrX\t0\t5")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "" || f.Score != 0 || f.Strand != 0 {
		t.Errorf("minimal feature carries optionals: %+v", f)
	}
	// Dot placeholders.
	f, err = ParseFeature("chrX\t0\t5\tname\t.\t.")
	if err != nil {
		t.Fatal(err)
	}
	if f.Score != 0 || f.Strand != 0 {
		t.Errorf("dot placeholders parsed as values: %+v", f)
	}
}

func TestParseFeatureErrors(t *testing.T) {
	for _, line := range []string{
		"chr1\t100",
		"chr1\tx\t200",
		"chr1\t100\ty",
		"chr1\t-1\t5",
		"chr1\t10\t5",
		"chr1\t1\t5\tn\tbad",
		"chr1\t1\t5\tn\t0\t*",
	} {
		if _, err := ParseFeature(line); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseFeature(%q) err = %v", line, err)
		}
	}
}

func TestFeatureStringRoundTrip(t *testing.T) {
	cases := []Feature{
		{Chrom: "chr1", Start: 0, End: 10},
		{Chrom: "chr1", Start: 5, End: 9, Name: "r1"},
		{Chrom: "chr2", Start: 5, End: 9, Name: "r1", Score: 30, Strand: '+'},
		{Chrom: "chr2", Start: 5, End: 9, Name: "r1", Score: 0, Strand: '-'},
	}
	for _, f := range cases {
		got, err := ParseFeature(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if got.Chrom != f.Chrom || got.Start != f.Start || got.End != f.End ||
			got.Name != f.Name || got.Score != f.Score || got.Strand != f.Strand {
			t.Errorf("round trip %q → %+v", f.String(), got)
		}
	}
}

func TestReaderSkipsDecorations(t *testing.T) {
	in := "browser position chr1\ntrack name=x\n# comment\n\nchr1\t1\t2\n"
	r := NewReader(strings.NewReader(in))
	fs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Start != 1 {
		t.Errorf("features = %+v", fs)
	}
}

func TestReaderReportsLineNumbers(t *testing.T) {
	r := NewReader(strings.NewReader("chr1\t1\t2\nbogus line here\n"))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
	// Sticky error.
	if _, err2 := r.Read(); err2 == nil {
		t.Error("error not sticky")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fs := []Feature{
		{Chrom: "chr1", Start: 0, End: 10, Name: "a", Score: 1, Strand: '+'},
		{Chrom: "chr2", Start: 100, End: 110, Name: "b", Score: 2, Strand: '-'},
	}
	for _, f := range fs {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Name != "b" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestConverterBEDOutputReadsBack(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(300))
	enc, err := formats.New("bed")
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	mapped := 0
	for i := range d.Records {
		before := len(out)
		out, err = enc.Encode(out, &d.Records[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > before {
			mapped++
		}
	}
	fs, err := NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("converter BED unreadable: %v", err)
	}
	if len(fs) != mapped {
		t.Errorf("read %d features, converter emitted %d", len(fs), mapped)
	}
	for i, f := range fs {
		if f.Strand != '+' && f.Strand != '-' {
			t.Fatalf("feature %d strand %q", i, f.Strand)
		}
		if f.Len() <= 0 {
			t.Fatalf("feature %d empty interval", i)
		}
	}
}

func TestConverterBEDGraphOutputReadsBack(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(300))
	enc, err := formats.New("bedgraph")
	if err != nil {
		t.Fatal(err)
	}
	out := enc.Header(d.Header)
	var mass float64
	for i := range d.Records {
		before := len(out)
		out, err = enc.Encode(out, &d.Records[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > before && d.Records[i].RName == "chr1" {
			mass += float64(d.Records[i].End() - d.Records[i].Pos + 1)
		}
	}
	gs, err := ReadGraph(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("converter BEDGRAPH unreadable: %v", err)
	}
	if got := TotalCoverage(gs, "chr1"); got != mass {
		t.Errorf("chr1 coverage mass = %g, want %g", got, mass)
	}
}

func TestReadGraphErrors(t *testing.T) {
	for _, in := range []string{
		"chr1\t1\t2\n",    // 3 columns
		"chr1\tx\t2\t1\n", // bad start
		"chr1\t1\ty\t1\n", // bad end
		"chr1\t1\t2\tz\n", // bad value
		"chr1\t5\t2\t1\n", // inverted
	} {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("ReadGraph(%q) accepted", in)
		}
	}
}

func TestFilterOverlapping(t *testing.T) {
	fs := []Feature{
		{Chrom: "chr1", Start: 0, End: 10},
		{Chrom: "chr1", Start: 10, End: 20},
		{Chrom: "chr2", Start: 0, End: 100},
	}
	got := FilterOverlapping(fs, "chr1", 5, 15)
	if len(got) != 2 {
		t.Fatalf("overlapping = %+v", got)
	}
	if got := FilterOverlapping(fs, "chr1", 20, 30); len(got) != 0 {
		t.Errorf("non-overlap query = %+v", got)
	}
}

// Property: any valid feature round-trips through text.
func TestFeatureRoundTripProperty(t *testing.T) {
	f := func(start uint16, length uint8, score int8, strandSeed uint8) bool {
		strands := []byte{0, '+', '-'}
		feat := Feature{
			Chrom:  "chrP",
			Start:  int(start),
			End:    int(start) + int(length),
			Name:   "n",
			Score:  float64(score),
			Strand: strands[int(strandSeed)%3],
		}
		got, err := ParseFeature(feat.String())
		if err != nil {
			return false
		}
		return got.Chrom == feat.Chrom && got.Start == feat.Start &&
			got.End == feat.End && got.Score == feat.Score && got.Strand == feat.Strand
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
