package fdr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"parseq/internal/mpi"
	"parseq/internal/simdata"
)

// tinyCase builds a hand-checkable instance: 4 bins, 2 simulations.
func tinyCase() ([]float64, [][]float64) {
	hist := []float64{10, 1, 5, 0}
	sims := [][]float64{
		{2, 3, 5, 1},
		{4, 0, 6, 2},
	}
	return hist, sims
}

// Hand computation for tinyCase at p_t = 1:
//
// p_i = Σ_b I(r_i ≤ r*_ib):
//
//	bin0: 10≤2? no, 10≤4? no → 0
//	bin1: 1≤3 yes, 1≤0 no → 1
//	bin2: 5≤5 yes, 5≤6 yes → 2
//	bin3: 0≤1 yes, 0≤2 yes → 2
//
// denominator = #(p_i ≤ 1) = 2 (bins 0 and 1).
//
// rank_ib = Σ_b' I(r*_ib ≤ r*_ib'):
//
//	b=0: bins (2,3,5,1) vs columns:
//	  bin0: 2≤2,2≤4 → 2;  bin1: 3≤3,3≥0 → 1... careful: I(r*_i0 ≤ r*_ib'):
//	    bin1: 3≤3 yes, 3≤0 no → 1
//	  bin2: 5≤5 yes, 5≤6 yes → 2;  bin3: 1≤1 yes, 1≤2 yes → 2
//	d_0 = #(rank ≤ 1) = 1 (bin1).
//	b=1: bins (4,0,6,2):
//	  bin0: 4≤2 no, 4≤4 yes → 1;  bin1: 0≤3 yes, 0≤0 yes → 2
//	  bin2: 6≤5 no, 6≤6 yes → 1;  bin3: 2≤1 no, 2≤2 yes → 1
//	d_1 = 3 (bins 0, 2, 3).
//
// numerator = (1+3)/2 = 2.
// FDR(1) = 2 / 2 = 1.
func TestSequentialHandComputed(t *testing.T) {
	hist, sims := tinyCase()
	got, err := Sequential(hist, sims, 1)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("FDR(1) = %g, want 1", got)
	}
}

func TestFusedMatchesSequential(t *testing.T) {
	hist := simdata.Histogram(500, 21)
	sims := simdata.Simulations(12, 500, 22)
	for _, pt := range []float64{0, 1, 3, 6, 12} {
		seq, errSeq := Sequential(hist, sims, pt)
		fused, errFused := Fused(hist, sims, pt)
		if (errSeq == nil) != (errFused == nil) {
			t.Fatalf("pt=%g: error mismatch %v vs %v", pt, errSeq, errFused)
		}
		if errSeq != nil {
			continue
		}
		if math.Abs(seq-fused) > 1e-12 {
			t.Errorf("pt=%g: Sequential %g vs Fused %g", pt, seq, fused)
		}
	}
}

func TestParallelFusedMatchesSequential(t *testing.T) {
	hist := simdata.Histogram(300, 31)
	sims := simdata.Simulations(10, 300, 32)
	want, err := Sequential(hist, sims, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 5, 16} {
		results := make([]float64, ranks)
		err := mpi.Run(ranks, func(c *mpi.Comm) error {
			v, err := ParallelFused(c, hist, sims, 2)
			if err != nil {
				return err
			}
			results[c.Rank()] = v
			return nil
		})
		if err != nil {
			t.Fatalf("ParallelFused(ranks=%d): %v", ranks, err)
		}
		for r, v := range results {
			if math.Abs(v-want) > 1e-12 {
				t.Errorf("ranks=%d rank %d = %g, want %g", ranks, r, v, want)
			}
		}
	}
}

func TestParallelTwoPassMatchesFused(t *testing.T) {
	hist := simdata.Histogram(200, 41)
	sims := simdata.Simulations(8, 200, 42)
	for _, pt := range []float64{1, 4} {
		var fused, twoPass float64
		err := mpi.Run(4, func(c *mpi.Comm) error {
			f, err := ParallelFused(c, hist, sims, pt)
			if err != nil {
				return err
			}
			tp, err := ParallelTwoPass(c, hist, sims, pt)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fused, twoPass = f, tp
			}
			return nil
		})
		if err != nil {
			t.Fatalf("pt=%g: %v", pt, err)
		}
		if fused != twoPass {
			t.Errorf("pt=%g: fused %g vs two-pass %g", pt, fused, twoPass)
		}
	}
}

func TestShapeValidation(t *testing.T) {
	if _, err := Sequential(nil, [][]float64{{1}}, 1); !errors.Is(err, ErrShape) {
		t.Errorf("empty histogram: %v", err)
	}
	if _, err := Sequential([]float64{1}, nil, 1); !errors.Is(err, ErrShape) {
		t.Errorf("no simulations: %v", err)
	}
	if _, err := Sequential([]float64{1, 2}, [][]float64{{1}}, 1); !errors.Is(err, ErrShape) {
		t.Errorf("ragged simulation: %v", err)
	}
	if _, err := Fused([]float64{1, 2}, [][]float64{{1}}, 1); !errors.Is(err, ErrShape) {
		t.Errorf("Fused ragged: %v", err)
	}
}

func TestNoSelectionError(t *testing.T) {
	// Histogram hugely above all simulations: p_i = 0 everywhere, so with
	// p_t = -1 nothing selects.
	hist := []float64{100, 100}
	sims := [][]float64{{1, 1}, {2, 2}}
	if _, err := Sequential(hist, sims, -1); !errors.Is(err, ErrNoSelection) {
		t.Errorf("Sequential err = %v, want ErrNoSelection", err)
	}
	if _, err := Fused(hist, sims, -1); !errors.Is(err, ErrNoSelection) {
		t.Errorf("Fused err = %v, want ErrNoSelection", err)
	}
}

// Property: FDR is scale-free in the simulated ranks — permuting the
// simulation order leaves the result unchanged.
func TestSimulationOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		hist := simdata.Histogram(100, seed)
		sims := simdata.Simulations(6, 100, seed+1)
		a, errA := Fused(hist, sims, 2)
		// Rotate simulations.
		rot := append(append([][]float64{}, sims[3:]...), sims[:3]...)
		b, errB := Fused(hist, rot, 2)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: FDR numerator and denominator both grow with p_t, and the
// denominator count is monotone, so selection counts never shrink.
func TestThresholdMonotonicity(t *testing.T) {
	hist := simdata.Histogram(400, 51)
	sims := simdata.Simulations(10, 400, 52)
	prevDen := int64(-1)
	for pt := 0.0; pt <= 10; pt++ {
		_, ss := binSums(hist, sims, pt, 0, len(hist))
		if ss < prevDen {
			t.Fatalf("denominator shrank at pt=%g: %d < %d", pt, ss, prevDen)
		}
		prevDen = ss
	}
}

func TestSweep(t *testing.T) {
	hist := simdata.Histogram(200, 61)
	sims := simdata.Simulations(8, 200, 62)
	thresholds := []float64{0, 2, 4, 8}
	got, err := Sweep(hist, sims, thresholds)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(got) != len(thresholds) {
		t.Fatalf("len = %d", len(got))
	}
	for k, pt := range thresholds {
		want, err := Fused(hist, sims, pt)
		if errors.Is(err, ErrNoSelection) {
			want = 0
		} else if err != nil {
			t.Fatal(err)
		}
		if got[k] != want {
			t.Errorf("Sweep[%d] = %g, want %g", k, got[k], want)
		}
	}
}

func BenchmarkSequential(b *testing.B) {
	hist := simdata.Histogram(1000, 71)
	sims := simdata.Simulations(20, 1000, 72)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sequential(hist, sims, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFused(b *testing.B) {
	hist := simdata.Histogram(1000, 71)
	sims := simdata.Simulations(20, 1000, 72)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fused(hist, sims, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelValidationErrors(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := ParallelFused(c, []float64{1, 2}, [][]float64{{1}}, 1); !errors.Is(err, ErrShape) {
			return errors.New("ParallelFused accepted ragged input")
		}
		if _, err := ParallelTwoPass(c, []float64{1, 2}, [][]float64{{1}}, 1); !errors.Is(err, ErrShape) {
			return errors.New("ParallelTwoPass accepted ragged input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelNoSelection(t *testing.T) {
	hist := []float64{100, 100, 100, 100}
	sims := [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := ParallelFused(c, hist, sims, -1); !errors.Is(err, ErrNoSelection) {
			return errors.New("ParallelFused without selection succeeded")
		}
		if _, err := ParallelTwoPass(c, hist, sims, -1); !errors.Is(err, ErrNoSelection) {
			return errors.New("ParallelTwoPass without selection succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTwoPassMatchesSequential(t *testing.T) {
	hist := simdata.Histogram(150, 81)
	sims := simdata.Simulations(7, 150, 82)
	for _, pt := range []float64{0, 2, 5} {
		seq, errA := Sequential(hist, sims, pt)
		tp, errB := TwoPass(hist, sims, pt)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("pt=%g: error mismatch %v vs %v", pt, errA, errB)
		}
		// The two formulations associate the divisions differently, so
		// allow a last-ulp difference.
		if errA == nil && math.Abs(seq-tp) > 1e-12*(1+math.Abs(seq)) {
			t.Errorf("pt=%g: Sequential %g vs TwoPass %g", pt, seq, tp)
		}
	}
	if _, err := TwoPass(nil, sims, 1); !errors.Is(err, ErrShape) {
		t.Error("TwoPass accepted empty histogram")
	}
}

func TestSweepPropagatesShapeError(t *testing.T) {
	if _, err := Sweep([]float64{1}, [][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("Sweep err = %v", err)
	}
}
