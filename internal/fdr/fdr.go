// Package fdr implements the false discovery rate computation of the
// paper's Section IV-B (after Han et al.): given one observed coverage
// histogram and B random-simulation datasets over the same M bins, it
// computes FDR(p_t), the expected fraction of reported peaks that are
// false, for a candidate threshold p_t.
//
// Three implementations are provided: a direct sequential transcription
// of Equations 4-6; the paper's fused parallel Algorithm 2, which applies
// the summation permutation of Equations 7-9 so numerator and denominator
// are reduced in a single pass with one global synchronisation; and a
// two-pass parallel version kept as the ablation baseline the paper's
// "certain extra speedup" claim is measured against.
package fdr

import (
	"errors"
	"fmt"

	"parseq/internal/mpi"
)

// Errors reported by the computations.
var (
	ErrShape       = errors.New("fdr: simulation datasets must match the histogram's bin count")
	ErrNoSelection = errors.New("fdr: no bins selected at this threshold (denominator is zero)")
)

func validate(hist []float64, sims [][]float64) error {
	if len(hist) == 0 {
		return fmt.Errorf("%w: empty histogram", ErrShape)
	}
	if len(sims) == 0 {
		return fmt.Errorf("%w: no simulation datasets", ErrShape)
	}
	for b, s := range sims {
		if len(s) != len(hist) {
			return fmt.Errorf("%w: simulation %d has %d bins, histogram has %d",
				ErrShape, b, len(s), len(hist))
		}
	}
	return nil
}

// Sequential computes FDR(p_t) by direct transcription of Equations 4-6:
// first the per-bin p_i counts and per-simulation false-peak counts d_b,
// then the ratio. Complexity is Θ(M·B²).
func Sequential(hist []float64, sims [][]float64, pt float64) (float64, error) {
	if err := validate(hist, sims); err != nil {
		return 0, err
	}
	m, bCount := len(hist), len(sims)

	// Equation 4: p_i = Σ_b I(r_i ≤ r*_ib).
	p := make([]int, m)
	for i := 0; i < m; i++ {
		for b := 0; b < bCount; b++ {
			if hist[i] <= sims[b][i] {
				p[i]++
			}
		}
	}
	// Equation 5: d_b = Σ_i I( Σ_b' I(r*_ib ≤ r*_ib') ≤ p_t ).
	d := make([]int, bCount)
	for b := 0; b < bCount; b++ {
		for i := 0; i < m; i++ {
			rank := 0
			for b2 := 0; b2 < bCount; b2++ {
				if sims[b][i] <= sims[b2][i] {
					rank++
				}
			}
			if float64(rank) <= pt {
				d[b]++
			}
		}
	}
	// Equation 6.
	num := 0.0
	for _, db := range d {
		num += float64(db)
	}
	num /= float64(bCount)
	den := 0.0
	for i := 0; i < m; i++ {
		if float64(p[i]) <= pt {
			den++
		}
	}
	if den == 0 {
		return 0, ErrNoSelection
	}
	return num / den, nil
}

// binSums computes the fused per-bin contributions of Equations 7-8 for
// bins [lo, hi): sumDiamond = Σ_i Σ_b I(rank_ib ≤ p_t) and
// sumStar = Σ_i I(p_i ≤ p_t).
func binSums(hist []float64, sims [][]float64, pt float64, lo, hi int) (sumDiamond, sumStar int64) {
	bCount := len(sims)
	for i := lo; i < hi; i++ {
		// Equation 8 component: the observed bin's survival count.
		pi := 0
		for b := 0; b < bCount; b++ {
			if hist[i] <= sims[b][i] {
				pi++
			}
		}
		if float64(pi) <= pt {
			sumStar++
		}
		// Equation 7 component: simulated ranks within the bin.
		for b := 0; b < bCount; b++ {
			rank := 0
			vb := sims[b][i]
			for b2 := 0; b2 < bCount; b2++ {
				if vb <= sims[b2][i] {
					rank++
				}
			}
			if float64(rank) <= pt {
				sumDiamond++
			}
		}
	}
	return sumDiamond, sumStar
}

// fromSums applies Equation 9.
func fromSums(sumDiamond, sumStar int64, bCount int) (float64, error) {
	if sumStar == 0 {
		return 0, ErrNoSelection
	}
	return float64(sumDiamond) / (float64(bCount) * float64(sumStar)), nil
}

// Fused computes FDR(p_t) with the reformulated single-pass summation of
// Equations 7-9 on one core — the arithmetic Algorithm 2 distributes.
func Fused(hist []float64, sims [][]float64, pt float64) (float64, error) {
	if err := validate(hist, sims); err != nil {
		return 0, err
	}
	sd, ss := binSums(hist, sims, pt, 0, len(hist))
	return fromSums(sd, ss, len(sims))
}

// TwoPass computes FDR(p_t) with the unfused two-sweep arithmetic on one
// core: one full pass over the bins for the numerator, a second for the
// denominator. It exists so the fusion ablation can measure the real cost
// of sweeping the simulation matrix twice.
func TwoPass(hist []float64, sims [][]float64, pt float64) (float64, error) {
	if err := validate(hist, sims); err != nil {
		return 0, err
	}
	bCount := len(sims)
	var sd int64
	for i := 0; i < len(hist); i++ {
		for b := 0; b < bCount; b++ {
			rank := 0
			vb := sims[b][i]
			for b2 := 0; b2 < bCount; b2++ {
				if vb <= sims[b2][i] {
					rank++
				}
			}
			if float64(rank) <= pt {
				sd++
			}
		}
	}
	var ss int64
	for i := 0; i < len(hist); i++ {
		pi := 0
		for b := 0; b < bCount; b++ {
			if hist[i] <= sims[b][i] {
				pi++
			}
		}
		if float64(pi) <= pt {
			ss++
		}
	}
	return fromSums(sd, ss, bCount)
}

// ParallelFused is Algorithm 2: the datasets are partitioned in the bin
// direction, each rank computes its local sum◇ and sum* concurrently, and
// after one global synchronisation the master reduces both sums and
// computes the FDR. All ranks return the result.
func ParallelFused(c *mpi.Comm, hist []float64, sims [][]float64, pt float64) (float64, error) {
	if err := validate(hist, sims); err != nil {
		return 0, err
	}
	lo, hi := c.SplitRange(len(hist)) // line 1: bin-direction partitioning
	sd, ss := binSums(hist, sims, pt, lo, hi)

	// Lines 4-8: one synchronisation covers both reductions because the
	// summation permutation made them independent local sums.
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	totalD, err := c.AllreduceInt64Sum(sd)
	if err != nil {
		return 0, err
	}
	totalS, err := c.AllreduceInt64Sum(ss)
	if err != nil {
		return 0, err
	}
	return fromSums(totalD, totalS, len(sims))
}

// ParallelTwoPass is the unfused ablation baseline: the numerator is
// reduced in one parallel step, then — after an additional global
// synchronisation — the denominator in a second. The paper's summation
// permutation exists to eliminate exactly this extra barrier.
func ParallelTwoPass(c *mpi.Comm, hist []float64, sims [][]float64, pt float64) (float64, error) {
	if err := validate(hist, sims); err != nil {
		return 0, err
	}
	lo, hi := c.SplitRange(len(hist))
	bCount := len(sims)

	// Pass 1: FDR numerator.
	var sd int64
	for i := lo; i < hi; i++ {
		for b := 0; b < bCount; b++ {
			rank := 0
			vb := sims[b][i]
			for b2 := 0; b2 < bCount; b2++ {
				if vb <= sims[b2][i] {
					rank++
				}
			}
			if float64(rank) <= pt {
				sd++
			}
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	totalD, err := c.AllreduceInt64Sum(sd)
	if err != nil {
		return 0, err
	}

	// Pass 2: FDR denominator, behind its own barrier.
	var ss int64
	for i := lo; i < hi; i++ {
		pi := 0
		for b := 0; b < bCount; b++ {
			if hist[i] <= sims[b][i] {
				pi++
			}
		}
		if float64(pi) <= pt {
			ss++
		}
	}
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	totalS, err := c.AllreduceInt64Sum(ss)
	if err != nil {
		return 0, err
	}
	return fromSums(totalD, totalS, bCount)
}

// Sweep evaluates FDR over several candidate thresholds sequentially
// (with the fused kernel) and returns the FDR for each. Callers use it to
// pick the smallest threshold whose FDR is below a target.
func Sweep(hist []float64, sims [][]float64, thresholds []float64) ([]float64, error) {
	if err := validate(hist, sims); err != nil {
		return nil, err
	}
	out := make([]float64, len(thresholds))
	for k, pt := range thresholds {
		v, err := Fused(hist, sims, pt)
		if err != nil && !errors.Is(err, ErrNoSelection) {
			return nil, err
		}
		if errors.Is(err, ErrNoSelection) {
			v = 0
		}
		out[k] = v
	}
	return out, nil
}
