package sorter

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parseq/internal/bam"
	"parseq/internal/sam"
	"parseq/internal/simdata"
)

// unsortedDataset writes an unsorted dataset as SAM and BAM files.
func unsortedDataset(t testing.TB, n int) (samPath, bamPath string, d *simdata.Dataset) {
	t.Helper()
	cfg := simdata.DefaultConfig(n)
	cfg.Sorted = false
	d = simdata.Generate(cfg)
	dir := t.TempDir()
	samPath = filepath.Join(dir, "u.sam")
	bamPath = filepath.Join(dir, "u.bam")
	sf, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	bf, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return samPath, bamPath, d
}

// checkSorted validates coordinate order and content equality against the
// reference records.
func checkSorted(t *testing.T, outPath string, d *simdata.Dataset, wantCount int) {
	t.Helper()
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bam.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().SortOrder != sam.SortCoordinate {
		t.Errorf("output SortOrder = %q", r.Header().SortOrder)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != wantCount {
		t.Fatalf("output records = %d, want %d", len(recs), wantCount)
	}
	// Order check.
	lastRef, lastPos := -1, int32(0)
	seenUnmapped := false
	for i := range recs {
		ref := r.Header().RefID(recs[i].RName)
		if ref < 0 {
			seenUnmapped = true
			continue
		}
		if seenUnmapped {
			t.Fatalf("mapped record %d after unmapped block", i)
		}
		if ref < lastRef || (ref == lastRef && recs[i].Pos < lastPos) {
			t.Fatalf("record %d out of order: ref %d pos %d after ref %d pos %d",
				i, ref, recs[i].Pos, lastRef, lastPos)
		}
		lastRef, lastPos = ref, recs[i].Pos
	}
	// Content check: the sorted output is a permutation of the input.
	want := map[string]int{}
	for i := range d.Records {
		want[d.Records[i].String()]++
	}
	for i := range recs {
		if want[recs[i].String()] == 0 {
			t.Fatalf("record %d not in input (or duplicated): %s", i, recs[i].QName)
		}
		want[recs[i].String()]--
	}
}

func TestSortSAMToBAM(t *testing.T) {
	samPath, _, d := unsortedDataset(t, 1000)
	for _, opts := range []Options{
		{},                             // defaults: one big chunk
		{ChunkRecords: 100, Cores: 4},  // many runs, parallel chunk sort
		{ChunkRecords: 1000, Cores: 1}, // exactly one chunk
		{ChunkRecords: 999, Cores: 2},  // trailing partial chunk
	} {
		out := filepath.Join(t.TempDir(), "s.bam")
		n, err := SortSAMToBAM(samPath, out, opts)
		if err != nil {
			t.Fatalf("SortSAMToBAM(%+v): %v", opts, err)
		}
		if n != 1000 {
			t.Errorf("sorted %d records", n)
		}
		checkSorted(t, out, d, 1000)
	}
}

func TestSortBAM(t *testing.T) {
	_, bamPath, d := unsortedDataset(t, 600)
	out := filepath.Join(t.TempDir(), "s.bam")
	n, err := SortBAM(bamPath, out, Options{ChunkRecords: 128, Cores: 3})
	if err != nil {
		t.Fatalf("SortBAM: %v", err)
	}
	if n != 600 {
		t.Errorf("sorted %d records", n)
	}
	checkSorted(t, out, d, 600)
}

func TestSortedOutputIndexes(t *testing.T) {
	// The whole point: sorted output feeds the index builder.
	_, bamPath, _ := unsortedDataset(t, 400)
	out := filepath.Join(t.TempDir(), "s.bam")
	if _, err := SortBAM(bamPath, out, Options{ChunkRecords: 64, Cores: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := bam.BuildFileIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("BuildFileIndex over sorted output: %v", err)
	}
	if idx.NumRefs() == 0 {
		t.Error("empty index")
	}
}

func TestSortRecordsStable(t *testing.T) {
	h := sam.NewHeader(sam.Reference{Name: "chr1", Length: 1000})
	mk := func(name string, pos int32) sam.Record {
		return sam.Record{
			QName: name, RName: "chr1", Pos: pos, MapQ: 60,
			Cigar: sam.Cigar{sam.NewCigarOp(sam.CigarMatch, 4)},
			RNext: "*", Seq: "ACGT", Qual: "IIII",
		}
	}
	recs := []sam.Record{mk("b", 5), mk("a", 5), mk("c", 1)}
	SortRecords(h, recs)
	if recs[0].QName != "c" || recs[1].QName != "b" || recs[2].QName != "a" {
		t.Errorf("order = %s %s %s (stability broken)", recs[0].QName, recs[1].QName, recs[2].QName)
	}
}

func TestSortEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "e.sam")
	if err := os.WriteFile(empty, []byte("@SQ\tSN:chr1\tLN:100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "e.bam")
	n, err := SortSAMToBAM(empty, out, Options{})
	if err != nil {
		t.Fatalf("empty sort: %v", err)
	}
	if n != 0 {
		t.Errorf("n = %d", n)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bam.NewReader(f)
	if err != nil {
		t.Fatalf("empty output unreadable: %v", err)
	}
	if recs, _ := r.ReadAll(); len(recs) != 0 {
		t.Errorf("records = %d", len(recs))
	}
}

func TestSortMissingInput(t *testing.T) {
	if _, err := SortSAMToBAM("/nope.sam", filepath.Join(t.TempDir(), "o.bam"), Options{}); err == nil {
		t.Error("missing SAM accepted")
	}
	if _, err := SortBAM("/nope.bam", filepath.Join(t.TempDir(), "o.bam"), Options{}); err == nil {
		t.Error("missing BAM accepted")
	}
}

func BenchmarkSortSAMToBAM(b *testing.B) {
	samPath, _, _ := unsortedDataset(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := filepath.Join(b.TempDir(), "s.bam")
		if _, err := SortSAMToBAM(samPath, out, Options{ChunkRecords: 1024, Cores: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// SortBAM with codec workers routes the input through the parallel
// record scanner; output bytes must match the sequential path exactly
// across the worker ladder.
func TestSortBAMCodecWorkersIdentical(t *testing.T) {
	_, bamPath, _ := unsortedDataset(t, 800)
	dir := t.TempDir()
	ref := filepath.Join(dir, "w1.bam")
	opts := Options{ChunkRecords: 128, Cores: 2, CodecWorkers: 1}
	if _, err := SortBAM(bamPath, ref, opts); err != nil {
		t.Fatalf("CodecWorkers=1 sort: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4, 8} {
		out := filepath.Join(dir, fmt.Sprintf("w%d.bam", workers))
		opts.CodecWorkers = workers
		if _, err := SortBAM(bamPath, out, opts); err != nil {
			t.Fatalf("CodecWorkers=%d sort: %v", workers, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("CodecWorkers=%d output differs from sequential (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// The adaptive codec default routes spill and merge writers through
// bgzf.SharedPool; the output must stay byte-identical to the private
// per-stream pools and the sequential codec.
func TestSortSharedCodecDefaultIdentical(t *testing.T) {
	samPath, _, _ := unsortedDataset(t, 700)
	dir := t.TempDir()
	ref := filepath.Join(dir, "seq.bam")
	if _, err := SortSAMToBAM(samPath, ref, Options{ChunkRecords: 100, Cores: 2, CodecWorkers: 1}); err != nil {
		t.Fatalf("sequential sort: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// CodecWorkers 0 selects the adaptive count and the shared pool for
	// spills and the merge; an explicit SharedCodec with a fixed budget
	// must agree too.
	for _, opts := range []Options{
		{ChunkRecords: 100, Cores: 2},
		{ChunkRecords: 100, Cores: 2, CodecWorkers: 3, SharedCodec: true},
	} {
		out := filepath.Join(dir, fmt.Sprintf("shared%d.bam", opts.CodecWorkers))
		if _, err := SortSAMToBAM(samPath, out, opts); err != nil {
			t.Fatalf("shared sort (workers=%d): %v", opts.CodecWorkers, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shared-codec output (workers=%d) differs from sequential (%d vs %d bytes)",
				opts.CodecWorkers, len(got), len(want))
		}
	}
}
