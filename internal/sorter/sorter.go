// Package sorter coordinate-sorts alignment datasets, the precondition
// for every index in this repository (BAI binning, BAIX starting
// positions) and for the paper's sorted 117 GB BAM input. The sort is an
// external merge sort in the samtools mould: the input streams into
// bounded in-memory chunks, chunks sort in parallel ranks and spill as
// sorted temporary runs, and a k-way merge produces the output. Unmapped
// records sort after all mapped ones, as samtools does.
package sorter

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"parseq/internal/bam"
	"parseq/internal/bgzf"
	"parseq/internal/obs"
	"parseq/internal/sam"
)

// Options tunes the sort.
type Options struct {
	// ChunkRecords is the number of records sorted in memory per run
	// (default 100k ≈ tens of MB for short reads).
	ChunkRecords int
	// Cores sorts chunks with this many parallel workers.
	Cores int
	// TmpDir receives the temporary runs; "" uses the OS default.
	TmpDir string
	// CodecWorkers is the BGZF codec/decoder worker budget. The input
	// reader gets the full budget — codec workers plus, for BAM input,
	// the parallel record decoder (bam.ParallelScanner) — while spilled
	// runs and merge readers share it, clamped per stream so many runs
	// do not multiply the goroutine count. 0 selects the adaptive
	// default (bgzf.AutoWorkers); 1 forces the sequential paths.
	// Orthogonal to Cores, exactly as in the converter runtime.
	CodecWorkers int
	// SharedCodec attaches the spill and merge BGZF writers to the
	// process-wide bgzf shared deflate pool (bgzf.SharedPool) instead
	// of giving each short-lived stream its own CodecWorkers
	// goroutines. With many parallel spill workers this keeps the
	// codec goroutine count at the pool's throughput-sized level
	// rather than Cores × per-stream. It defaults on whenever
	// CodecWorkers is left adaptive, matching the converter's shard
	// writers; an explicit CodecWorkers keeps private per-stream pools.
	SharedCodec bool
}

func (o *Options) normalize() {
	if o.ChunkRecords < 1 {
		o.ChunkRecords = 100_000
	}
	if o.Cores < 1 {
		o.Cores = 1
	}
	if o.CodecWorkers <= 0 {
		o.CodecWorkers = bgzf.AutoWorkers()
		o.SharedCodec = true
	}
}

// perStreamWorkers divides one codec worker budget across streams that
// are open simultaneously (parallel spill writers, merge readers).
func perStreamWorkers(budget, streams int) int {
	if streams < 1 {
		streams = 1
	}
	per := budget / streams
	if per < 1 {
		per = 1
	}
	return per
}

// key is a record's coordinate sort key. Unmapped records (refID -1) map
// past every reference.
type key struct {
	refID int32
	pos   int32
}

func keyOf(h *sam.Header, rec *sam.Record) key {
	id := h.RefID(rec.RName)
	if id < 0 || rec.Unmapped() {
		return key{refID: 1<<31 - 1, pos: rec.Pos}
	}
	return key{refID: int32(id), pos: rec.Pos}
}

func (k key) less(other key) bool {
	if k.refID != other.refID {
		return k.refID < other.refID
	}
	return k.pos < other.pos
}

// SortRecords coordinate-sorts records in place (stable, so equal
// positions keep input order).
func SortRecords(h *sam.Header, recs []sam.Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		return keyOf(h, &recs[i]).less(keyOf(h, &recs[j]))
	})
}

// recordSource abstracts SAM/BAM inputs for the sorter.
type recordSource interface {
	Header() *sam.Header
	ReadInto(*sam.Record) error
}

// SortSAMToBAM sorts a SAM file into a coordinate-sorted BAM file.
func SortSAMToBAM(samPath, outPath string, opts Options) (int64, error) {
	opts.normalize()
	in, err := os.Open(samPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	src, err := sam.NewReader(in)
	if err != nil {
		return 0, err
	}
	return sortToBAM(src, outPath, opts)
}

// SortBAM sorts a BAM file into a coordinate-sorted BAM file. With more
// than one codec worker the input decodes through bam.ParallelScanner —
// record order and output bytes stay identical to the sequential path.
func SortBAM(bamPath, outPath string, opts Options) (int64, error) {
	opts.normalize()
	in, err := os.Open(bamPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	src, err := bam.NewReader(in, bam.WithCodecWorkers(opts.CodecWorkers))
	if err != nil {
		return 0, err
	}
	defer src.Close()
	if opts.CodecWorkers > 1 {
		sc := bam.NewParallelScanner(src, opts.CodecWorkers)
		defer sc.Close() // runs before src.Close: the scanner owns the stream
		return sortToBAM(sc, outPath, opts)
	}
	return sortToBAM(src, outPath, opts)
}

// sortToBAM drives the external merge sort.
func sortToBAM(src recordSource, outPath string, opts Options) (int64, error) {
	opts.normalize()
	header := src.Header().Clone()
	header.SortOrder = sam.SortCoordinate

	tmpDir, err := os.MkdirTemp(opts.TmpDir, "parseq-sort-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmpDir)

	reg := obs.Default()
	ph := obs.NewPhaseSet(reg)
	spill := ph.Start(0, "sort.spill")

	// Phase 1: read chunks, sort them in parallel workers, spill runs.
	type job struct {
		idx  int
		recs []sam.Record
	}
	jobs := make(chan job, opts.Cores)
	runPaths := make([]string, 0, 8)
	var runMu sync.Mutex
	var wg sync.WaitGroup
	workerErr := make([]error, opts.Cores)
	spillWorkers := perStreamWorkers(opts.CodecWorkers, opts.Cores)
	for w := 0; w < opts.Cores; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range jobs {
				SortRecords(header, j.recs)
				path := filepath.Join(tmpDir, fmt.Sprintf("run%06d.bam", j.idx))
				if err := writeRun(path, header, j.recs, spillWorkers, opts.SharedCodec); err != nil {
					workerErr[worker] = err
					// Drain remaining jobs so the producer never blocks.
					continue
				}
				runMu.Lock()
				runPaths = append(runPaths, path)
				runMu.Unlock()
			}
		}(w)
	}

	var total int64
	chunk := make([]sam.Record, 0, opts.ChunkRecords)
	chunkIdx := 0
	var readErr error
	for {
		var rec sam.Record
		err := src.ReadInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		total++
		chunk = append(chunk, rec)
		if len(chunk) == opts.ChunkRecords {
			jobs <- job{idx: chunkIdx, recs: chunk}
			chunkIdx++
			chunk = make([]sam.Record, 0, opts.ChunkRecords)
		}
	}
	if len(chunk) > 0 && readErr == nil {
		jobs <- job{idx: chunkIdx, recs: chunk}
	}
	close(jobs)
	wg.Wait()
	if readErr != nil {
		return 0, readErr
	}
	for _, err := range workerErr {
		if err != nil {
			return 0, err
		}
	}
	spill.End()
	reg.Counter("sorter.records").Add(total)
	reg.Counter("sorter.runs").Add(int64(len(runPaths)))

	// Phase 2: k-way merge of the sorted runs.
	merge := ph.Start(0, "sort.merge")
	sort.Strings(runPaths)
	if err := mergeRuns(runPaths, header, outPath, opts.CodecWorkers, opts.SharedCodec); err != nil {
		return 0, err
	}
	merge.End()
	return total, nil
}

// writeRun spills one sorted chunk as a BAM run.
func writeRun(path string, h *sam.Header, recs []sam.Record, codecWorkers int, shared bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	wopt := bam.WithCodecWorkers(codecWorkers)
	if shared {
		wopt = bam.WithSharedCodec()
	}
	w, err := bam.NewWriter(f, h, wopt)
	if err != nil {
		f.Close()
		return err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeItem is one run's head record in the merge heap.
type mergeItem struct {
	rec sam.Record
	k   key
	src int
}

type mergeHeap struct {
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.k != b.k {
		return a.k.less(b.k)
	}
	// Equal keys: earlier run wins, keeping the sort stable.
	return a.src < b.src
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// mergeRuns streams the runs through a heap into the output BAM.
func mergeRuns(runPaths []string, header *sam.Header, outPath string, codecWorkers int, shared bool) error {
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	wopt := bam.WithCodecWorkers(codecWorkers)
	if shared {
		wopt = bam.WithSharedCodec()
	}
	w, err := bam.NewWriter(out, header, wopt)
	if err != nil {
		out.Close()
		return err
	}
	readers := make([]*bam.Reader, len(runPaths))
	files := make([]*os.File, len(runPaths))
	defer func() {
		for i, f := range files {
			if readers[i] != nil {
				readers[i].Close()
			}
			if f != nil {
				f.Close()
			}
		}
	}()
	h := &mergeHeap{}
	// The merge keeps every run open at once; clamp the per-run codec
	// worker count so k runs never cost k × budget goroutines.
	runWorkers := perStreamWorkers(codecWorkers, len(runPaths))
	for i, path := range runPaths {
		f, err := os.Open(path)
		if err != nil {
			out.Close()
			return err
		}
		files[i] = f
		r, err := bam.NewReader(f, bam.WithCodecWorkers(runWorkers))
		if err != nil {
			out.Close()
			return err
		}
		readers[i] = r
		var rec sam.Record
		if err := r.ReadInto(&rec); err == io.EOF {
			continue
		} else if err != nil {
			out.Close()
			return err
		}
		heap.Push(h, mergeItem{rec: rec, k: keyOf(header, &rec), src: i})
	}
	for h.Len() > 0 {
		item := heap.Pop(h).(mergeItem)
		if err := w.Write(&item.rec); err != nil {
			out.Close()
			return err
		}
		var rec sam.Record
		err := readers[item.src].ReadInto(&rec)
		if err == io.EOF {
			continue
		}
		if err != nil {
			out.Close()
			return err
		}
		heap.Push(h, mergeItem{rec: rec, k: keyOf(header, &rec), src: item.src})
	}
	if err := w.Close(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
