package conv

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"parseq/internal/bamx"
	"parseq/internal/mpi"
	"parseq/internal/obs"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// PreprocessSAMParallel is the preprocessing phase of the
// preprocessing-optimized SAM format converter (Section III-C): the SAM
// input is partitioned with Algorithm 1, and each of the M ranks converts
// its text partition into a separate binary BAMX file with a BAIX index.
// Unlike the BAM preprocessor this phase parallelises, because SAM's line
// breakers make the partitioning possible.
func PreprocessSAMParallel(samPath, outDir, prefix string, cores int) (*PreprocessResult, error) {
	return PreprocessSAMParallelWorkers(samPath, outDir, prefix, cores, 0)
}

// PreprocessSAMParallelWorkers is PreprocessSAMParallel with an
// explicit per-rank parse worker count: parseWorkers > 1 parses each
// rank's text partition on the batch pipeline ("conv.parse" stage),
// 1 forces the sequential loop, and ≤ 0 selects the adaptive count
// (GOMAXPROCS/cores, clamped).
func PreprocessSAMParallelWorkers(samPath, outDir, prefix string, cores, parseWorkers int) (*PreprocessResult, error) {
	return PreprocessSAMParallelLaunch(samPath, outDir, prefix, cores, parseWorkers, nil)
}

// PreprocessSAMParallelLaunch is PreprocessSAMParallelWorkers with an
// explicit launcher; nil selects the in-process mpi.Run. Under a
// distributed launcher each process preprocesses and records only its
// own rank's BAMX/BAIX pair — the files on disk are the shared result.
func PreprocessSAMParallelLaunch(samPath, outDir, prefix string, cores, parseWorkers int, launch mpi.Launcher) (*PreprocessResult, error) {
	if launch == nil {
		launch = mpi.Run
	}
	if cores < 1 {
		cores = 1
	}
	if parseWorkers <= 0 {
		parseWorkers = adaptiveParseWorkers(cores)
	}
	if prefix == "" {
		prefix = "pre"
	}
	start := time.Now()
	f, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	header, dataStart, err := scanHeader(f)
	if err != nil {
		return nil, err
	}

	res := &PreprocessResult{
		BAMXFiles: make([]string, cores),
		BAIXFiles: make([]string, cores),
	}
	var tally counters
	ph := obs.NewPhaseSet(obs.Default())
	err = launch(cores, func(c *mpi.Comm) error {
		psp := ph.Start(c.Rank(), "partition")
		br, err := partition.SAMForwardMPI(c, f, dataStart, fi.Size())
		psp.End()
		if err != nil {
			return err
		}
		esp := ph.Start(c.Rank(), "preprocess")
		defer esp.End()
		bamxPath := filepath.Join(outDir, fmt.Sprintf("%s_m%03d.bamx", prefix, c.Rank()))
		baixPath := filepath.Join(outDir, fmt.Sprintf("%s_m%03d.baix", prefix, c.Rank()))
		n, err := preprocessSAMRange(samPath, br, header, bamxPath, baixPath, parseWorkers)
		if err != nil {
			return err
		}
		tally.records.Add(n)
		res.BAMXFiles[c.Rank()] = bamxPath
		res.BAIXFiles[c.Rank()] = baixPath
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Records = tally.records.Load()
	res.Duration = time.Since(start)
	return res, nil
}

// preprocessSAMRange parses one rank's text partition and writes it as a
// BAMX file plus BAIX index. parseWorkers > 1 fans the parse out across
// the batch pipeline; the sequential loop is the baseline.
func preprocessSAMRange(samPath string, br partition.ByteRange, h *sam.Header,
	bamxPath, baixPath string, parseWorkers int) (int64, error) {

	var recs []sam.Record
	if parseWorkers > 1 {
		var err error
		recs, err = preprocessSAMRangePipelined(samPath, br, parseWorkers)
		if err != nil {
			return 0, err
		}
	} else {
		in, err := os.Open(samPath)
		if err != nil {
			return 0, err
		}
		defer in.Close()
		section := io.NewSectionReader(in, br.Start, br.Len())
		scan := newLineScanner(section, br.Start)
		for scan.Scan() {
			line := scan.Text()
			if line == "" {
				continue
			}
			rec, err := sam.ParseRecord(line)
			if err != nil {
				return 0, err
			}
			recs = append(recs, rec)
		}
		if err := scan.Err(); err != nil {
			return 0, err
		}
	}

	out, err := os.Create(bamxPath)
	if err != nil {
		return 0, err
	}
	idx, err := bamx.BuildFromRecords(out, h, recs)
	if err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	ixf, err := os.Create(baixPath)
	if err != nil {
		return 0, err
	}
	if _, err := idx.WriteTo(ixf); err != nil {
		ixf.Close()
		return 0, err
	}
	return int64(len(recs)), ixf.Close()
}

// ConvertPreprocessed runs the parallel conversion phase of the
// preprocessing-optimized SAM converter: each of the M BAMX files is
// converted in turn by N ranks, yielding M×N target files as the paper
// describes. baixFiles may be nil when no partial conversion is needed.
func ConvertPreprocessed(bamxFiles, baixFiles []string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(bamxFiles) == 0 {
		return nil, fmt.Errorf("conv: no BAMX files to convert")
	}
	total := &Result{}
	basePrefix := opts.OutPrefix
	for m, bamxPath := range bamxFiles {
		baix := ""
		if m < len(baixFiles) {
			baix = baixFiles[m]
		}
		sub := opts
		sub.OutPrefix = fmt.Sprintf("%s_m%03d", basePrefix, m)
		r, err := ConvertBAMX(bamxPath, baix, sub)
		if err != nil {
			return nil, err
		}
		total.Files = append(total.Files, r.Files...)
		total.Stats.Records += r.Stats.Records
		total.Stats.Emitted += r.Stats.Emitted
		total.Stats.BytesIn += r.Stats.BytesIn
		total.Stats.BytesOut += r.Stats.BytesOut
		total.Stats.PartitionTime += r.Stats.PartitionTime
		total.Stats.ConvertTime += r.Stats.ConvertTime
	}
	return total, nil
}

// ConvertSAMPreprocessed is the complete preprocessing-optimized SAM
// format converter: parallel SAM→BAMX preprocessing with preCores ranks,
// then parallel conversion with opts.Cores ranks. The returned Result's
// PreprocessTime carries the preprocessing phase separately, since the
// paper reports (and amortises) it separately.
func ConvertSAMPreprocessed(samPath string, preCores int, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	// Under a distributed launcher both phases run on the same world, so
	// preCores must equal opts.Cores there (the launcher checks).
	pre, err := PreprocessSAMParallelLaunch(samPath, opts.OutDir, opts.OutPrefix+"_pre", preCores, opts.ParseWorkers, opts.Launch)
	if err != nil {
		return nil, err
	}
	res, err := ConvertPreprocessed(pre.BAMXFiles, pre.BAIXFiles, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.PreprocessTime = pre.Duration
	return res, nil
}
