package conv

import (
	"io"

	"parseq/internal/bam"
	"parseq/internal/sam"
)

// bamToolsReader reproduces the pipeline structure the paper's BAM format
// converter inherits from BamTools: the third-party library materialises
// its own per-alignment memory object, and an adaptation step copies that
// object into the converter's alignment object before the user program
// can run. The paper measures this double-materialisation as the ~30%
// sequential deficit against Picard in Table I; keeping the shim makes
// our Table I reproduce the same effect rather than accidentally fixing
// it.
type bamToolsReader struct {
	r       *bam.Reader
	scratch sam.Record // the "BamTools memory object"
}

func newBAMToolsReader(rs io.Reader, codecWorkers int) (*bamToolsReader, error) {
	r, err := bam.NewReader(rs, bam.WithCodecWorkers(codecWorkers))
	if err != nil {
		return nil, err
	}
	return &bamToolsReader{r: r}, nil
}

func (b *bamToolsReader) Header() *sam.Header { return b.r.Header() }

// Close releases the underlying codec's resources.
func (b *bamToolsReader) Close() error { return b.r.Close() }

// Next decodes the next alignment into the library-side object, then
// adapts it into rec. It reports false at end of stream.
func (b *bamToolsReader) Next(rec *sam.Record) (bool, error) {
	if err := b.r.ReadInto(&b.scratch); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, err
	}
	adaptAlignment(rec, &b.scratch)
	return true, nil
}

// adaptAlignment deep-copies the library object into the converter's
// alignment object, field by field, as the BamTools-to-runtime adaptation
// the paper describes.
func adaptAlignment(dst, src *sam.Record) {
	dst.QName = cloneString(src.QName)
	dst.Flag = src.Flag
	dst.RName = cloneString(src.RName)
	dst.Pos = src.Pos
	dst.MapQ = src.MapQ
	dst.Cigar = append(dst.Cigar[:0], src.Cigar...)
	dst.RNext = cloneString(src.RNext)
	dst.PNext = src.PNext
	dst.TLen = src.TLen
	dst.Seq = cloneString(src.Seq)
	dst.Qual = cloneString(src.Qual)
	dst.Tags = dst.Tags[:0]
	for _, t := range src.Tags {
		dst.Tags = append(dst.Tags, sam.Tag{
			Name:  t.Name,
			Type:  t.Type,
			Value: cloneString(t.Value),
		})
	}
}

// cloneString forces a copy, defeating Go's string sharing the way a
// cross-library object adaptation in C++ would.
func cloneString(s string) string {
	return string(append([]byte(nil), s...))
}
