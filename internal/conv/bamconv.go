package conv

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parseq/internal/bamx"
	"parseq/internal/formats"
	"parseq/internal/mpi"
	"parseq/internal/obs"
	"parseq/internal/sam"
)

// PreprocessResult reports a preprocessing phase.
type PreprocessResult struct {
	BAMXFiles []string      // generated BAMX files (one per preprocessing rank)
	BAIXFiles []string      // matching BAIX index files
	Records   int64         // records preprocessed
	Duration  time.Duration // wall-clock preprocessing time
}

// PreprocessBAMFile is the sequential preprocessing phase of the BAM
// format converter: BAM in, BAMX + BAIX out. The BAM format's lack of
// record delimiters forces this phase to be sequential (Section III-B).
func PreprocessBAMFile(bamPath, bamxPath, baixPath string) (*PreprocessResult, error) {
	return PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, 0)
}

// PreprocessBAMFileWorkers is PreprocessBAMFile with BGZF inflation
// running on codecWorkers goroutines: the record scan stays sequential
// (the format forces that), but block decompression pipelines under it.
func PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath string, codecWorkers int) (*PreprocessResult, error) {
	start := time.Now()
	sp := obs.Default().StartSpan(0, 0, "preprocess")
	defer sp.End()
	in, err := os.Open(bamPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	out, err := os.Create(bamxPath)
	if err != nil {
		return nil, err
	}
	idx, err := bamx.PreprocessBAMWorkers(in, out, codecWorkers)
	if err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	ixf, err := os.Create(baixPath)
	if err != nil {
		return nil, err
	}
	if _, err := idx.WriteTo(ixf); err != nil {
		ixf.Close()
		return nil, err
	}
	if err := ixf.Close(); err != nil {
		return nil, err
	}
	return &PreprocessResult{
		BAMXFiles: []string{bamxPath},
		BAIXFiles: []string{baixPath},
		Records:   int64(idx.Len()),
		Duration:  time.Since(start),
	}, nil
}

// ConvertBAMSequential converts a BAM file record-at-a-time on one core —
// the paper's "BAM format converter without preprocessing" Table I
// configuration. It reproduces the BamTools adaptation the paper blames
// for its 30% deficit: the library-side memory object is copied into the
// converter's alignment object before the user program runs.
func ConvertBAMSequential(bamPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.Region != nil {
		return nil, fmt.Errorf("conv: sequential BAM conversion does not support partial conversion; preprocess to BAMX first")
	}
	enc, err := formats.New(opts.Format)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(bamPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br, err := newBAMToolsReader(f, opts.CodecWorkers)
	if err != nil {
		return nil, err
	}
	defer br.Close()
	ph := obs.NewPhaseSet(obs.Default())
	csp := ph.Start(0, "convert")
	w, err := newRankWriter(&opts, enc, br.Header(), 0)
	if err != nil {
		return nil, err
	}
	var res Result
	res.Files = []string{opts.outPath(enc.Extension(), 0)}
	var out []byte
	var rec sam.Record
	for {
		ok, err := br.Next(&rec)
		if err != nil {
			w.close()
			return nil, err
		}
		if !ok {
			break
		}
		res.Stats.Records++
		var emitted bool
		out, emitted, err = w.emit(out, &rec, br.Header())
		if err != nil {
			w.close()
			return nil, err
		}
		if emitted {
			res.Stats.Emitted++
		}
	}
	res.Stats.BytesOut = w.n
	res.Stats.BytesIn = fi.Size()
	if err := w.close(); err != nil {
		return nil, err
	}
	csp.End()
	res.Stats.ConvertTime = ph.Wall("convert")
	return &res, nil
}

// ConvertBAMX is the parallel conversion phase of the BAM format
// converter (and of the preprocessing-optimized SAM converter): the
// fixed-stride BAMX file is divided into partitions holding an equal
// number of records, retrieved by random access and converted with no
// inter-rank communication. With opts.Region set, the BAIX index maps the
// chromosome region to a contiguous record range first (partial
// conversion); baixPath may be empty for full conversion.
func ConvertBAMX(bamxPath, baixPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	enc, err := formats.New(opts.Format)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(bamxPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	xf, err := bamx.Open(f, fi.Size())
	if err != nil {
		return nil, err
	}

	ph := obs.NewPhaseSet(obs.Default())
	psp := ph.Start(0, "partition")
	// The unit of partitioning: either every record, or the BAIX region's
	// entries for partial conversion.
	var regionEntries []bamx.Entry
	useRegion := false
	if opts.Region != nil {
		idx, err := loadOrBuildIndex(baixPath, xf)
		if err != nil {
			return nil, err
		}
		refID := xf.Header().RefID(opts.Region.RName)
		if refID < 0 {
			return nil, fmt.Errorf("conv: region reference %q not in header", opts.Region.RName)
		}
		beg, end := opts.Region.Beg, opts.Region.End
		if beg <= 0 {
			beg = 1
		}
		if end <= 0 {
			end = 1<<31 - 1
		}
		lo, hi := idx.Region(int32(refID), beg, end)
		regionEntries = idx.Entries()[lo:hi]
		useRegion = true
	}
	count := int(xf.NumRecords())
	if useRegion {
		count = len(regionEntries)
	}
	psp.End()

	var res Result
	res.Files = make([]string, opts.Cores)
	var tally counters
	err = opts.launch()(opts.Cores, func(c *mpi.Comm) error {
		csp := ph.Start(c.Rank(), "convert")
		defer csp.End()
		lo, hi := c.SplitRange(count)
		stats, err := convertBAMXRange(bamxPath, regionEntries, useRegion, lo, hi, enc, &opts, c.Rank())
		if err != nil {
			return err
		}
		tally.records.Add(stats.records)
		tally.emitted.Add(stats.emitted)
		tally.bytesIn.Add(int64(hi-lo) * int64(xf.Stride()))
		tally.bytesOut.Add(stats.bytesOut)
		res.Files[c.Rank()] = opts.outPath(enc.Extension(), c.Rank())
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.PartitionTime = ph.Wall("partition")
	res.Stats.ConvertTime = ph.Wall("convert")
	tally.into(&res.Stats)
	return &res, nil
}

// ConvertBAM is the complete BAM format converter of Section III-B:
// sequential preprocessing into a temporary BAMX/BAIX pair, then
// embarrassingly parallel conversion of the fixed-stride file. The
// temporary files live under OutDir (same filesystem as the output) and
// are removed when the conversion finishes. PreprocessTime carries the
// sequential phase separately, as the paper reports it.
func ConvertBAM(bamPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tmpDir, err := os.MkdirTemp(opts.OutDir, ".parseq-pre-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	bamxPath := filepath.Join(tmpDir, "pre.bamx")
	baixPath := filepath.Join(tmpDir, "pre.baix")
	pre, err := PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, opts.CodecWorkers)
	if err != nil {
		return nil, err
	}
	res, err := ConvertBAMX(bamxPath, baixPath, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.PreprocessTime = pre.Duration
	return res, nil
}

// loadOrBuildIndex reads the BAIX file, falling back to a rebuild scan.
func loadOrBuildIndex(baixPath string, xf *bamx.File) (*bamx.Index, error) {
	if baixPath != "" {
		ixf, err := os.Open(baixPath)
		if err == nil {
			defer ixf.Close()
			return bamx.ReadIndex(ixf)
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return bamx.BuildIndex(xf)
}

// convertBAMXRange converts records [lo, hi) of the partitioned unit
// (record indices, or region entries) on one rank.
func convertBAMXRange(path string, entries []bamx.Entry, useRegion bool,
	lo, hi int, enc formats.Encoder, opts *Options, rank int) (rangeStats, error) {

	var stats rangeStats
	// Each rank opens its own descriptor, as each MPI process would.
	in, err := os.Open(path)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	fi, err := in.Stat()
	if err != nil {
		return stats, err
	}
	xf, err := bamx.Open(in, fi.Size())
	if err != nil {
		return stats, err
	}

	w, err := newRankWriter(opts, enc, xf.Header(), rank)
	if err != nil {
		return stats, err
	}
	var rec sam.Record
	var out []byte
	emit := func() error {
		stats.records++
		var emitted bool
		out, emitted, err = w.emit(out, &rec, xf.Header())
		if err != nil {
			return err
		}
		if emitted {
			stats.emitted++
		}
		return nil
	}
	if useRegion {
		// Region entries may be non-contiguous; random access with
		// reusable buffers.
		raw := make([]byte, xf.Stride())
		var body []byte
		for i := lo; i < hi; i++ {
			if err := xf.ReadRaw(entries[i].Index, raw); err != nil {
				w.close()
				return stats, err
			}
			if body, err = xf.DecodeInto(raw, body, &rec); err != nil {
				w.close()
				return stats, err
			}
			if err := emit(); err != nil {
				w.close()
				return stats, err
			}
		}
	} else {
		// Contiguous partition: chunked scan, one read per megabyte.
		scan := xf.Scan(int64(lo), int64(hi))
		for {
			ok, err := scan.Next(&rec)
			if err != nil {
				w.close()
				return stats, err
			}
			if !ok {
				break
			}
			if err := emit(); err != nil {
				w.close()
				return stats, err
			}
		}
	}
	stats.bytesOut = w.n
	return stats, w.close()
}
