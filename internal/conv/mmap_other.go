//go:build !linux

package conv

import (
	"errors"
	"os"
)

// mmapFile is unavailable off Linux; the pipelined converter then
// streams the partition through pooled chunks instead.
func mmapFile(f *os.File) ([]byte, func(), error) {
	return nil, nil, errors.New("conv: mmap not supported on this platform")
}
