package conv

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The parallel BGZF codec must be invisible in the outputs: preprocessing
// a BAM with codec workers yields byte-identical BAMX/BAIX files, and a
// SAM→BAM conversion with codec workers yields byte-identical shards.
func TestCodecWorkersProduceIdenticalArtifacts(t *testing.T) {
	samPath, bamPath, _ := writeDataset(t, 400)
	dir := t.TempDir()

	seqX := filepath.Join(dir, "seq.bamx")
	seqIx := filepath.Join(dir, "seq.baix")
	parX := filepath.Join(dir, "par.bamx")
	parIx := filepath.Join(dir, "par.baix")
	if _, err := PreprocessBAMFile(bamPath, seqX, seqIx); err != nil {
		t.Fatalf("sequential preprocess: %v", err)
	}
	if _, err := PreprocessBAMFileWorkers(bamPath, parX, parIx, 4); err != nil {
		t.Fatalf("parallel preprocess: %v", err)
	}
	mustEqualFiles(t, seqX, parX)
	mustEqualFiles(t, seqIx, parIx)

	// BAMZ compression with deflate workers is also byte-identical.
	seqZ := filepath.Join(dir, "seq.bamz")
	parZ := filepath.Join(dir, "par.bamz")
	if _, err := CompressBAMXFile(seqX, seqZ, 64); err != nil {
		t.Fatalf("sequential compress: %v", err)
	}
	if _, err := CompressBAMXFileWorkers(parX, parZ, 64, 4); err != nil {
		t.Fatalf("parallel compress: %v", err)
	}
	mustEqualFiles(t, seqZ, parZ)

	// SAM→BAM with codec workers on the writer side, then merge with
	// codec workers on both sides.
	optsSeq := Options{Format: "bam", Cores: 2, OutDir: filepath.Join(dir, "s"), OutPrefix: "shard"}
	optsPar := optsSeq
	optsPar.OutDir = filepath.Join(dir, "p")
	optsPar.CodecWorkers = 4
	for _, d := range []string{optsSeq.OutDir, optsPar.OutDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	resSeq, err := ConvertSAMToBAM(samPath, optsSeq)
	if err != nil {
		t.Fatalf("sequential SAM→BAM: %v", err)
	}
	resPar, err := ConvertSAMToBAM(samPath, optsPar)
	if err != nil {
		t.Fatalf("parallel SAM→BAM: %v", err)
	}
	if len(resSeq.Files) != len(resPar.Files) {
		t.Fatalf("shard counts differ: %d vs %d", len(resSeq.Files), len(resPar.Files))
	}
	for i := range resSeq.Files {
		mustEqualFiles(t, resSeq.Files[i], resPar.Files[i])
	}

	mergedSeq := filepath.Join(dir, "merged_seq.bam")
	mergedPar := filepath.Join(dir, "merged_par.bam")
	nSeq, err := MergeBAMShards(resSeq.Files, mergedSeq)
	if err != nil {
		t.Fatalf("sequential merge: %v", err)
	}
	nPar, err := MergeBAMShardsWorkers(resPar.Files, mergedPar, 4)
	if err != nil {
		t.Fatalf("parallel merge: %v", err)
	}
	if nSeq != nPar {
		t.Fatalf("merged record counts differ: %d vs %d", nSeq, nPar)
	}
	mustEqualFiles(t, mergedSeq, mergedPar)
}

// The full worker ladder — the adaptive default (0), sequential (1) and
// explicit pools (4, 8) — must produce byte-identical BAMX and BAIX
// files: codec parallelism and the parallel record scanner may never
// show in the preprocessing artifacts.
func TestPreprocessBAMWorkerSweepIdentical(t *testing.T) {
	_, bamPath, _ := writeDataset(t, 400)
	dir := t.TempDir()
	refX := filepath.Join(dir, "ref.bamx")
	refIx := filepath.Join(dir, "ref.baix")
	if _, err := PreprocessBAMFileWorkers(bamPath, refX, refIx, 1); err != nil {
		t.Fatalf("workers=1 preprocess: %v", err)
	}
	for _, workers := range []int{0, 4, 8} {
		x := filepath.Join(dir, fmt.Sprintf("w%d.bamx", workers))
		ix := filepath.Join(dir, fmt.Sprintf("w%d.baix", workers))
		if _, err := PreprocessBAMFileWorkers(bamPath, x, ix, workers); err != nil {
			t.Fatalf("workers=%d preprocess: %v", workers, err)
		}
		mustEqualFiles(t, refX, x)
		mustEqualFiles(t, refIx, ix)
	}
}

func mustEqualFiles(t *testing.T, a, b string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Errorf("%s and %s differ (%d vs %d bytes)", a, b, len(da), len(db))
	}
}
