// Pipelined per-rank convert hot path. The sequential loop in
// convertSAMRange handles one line at a time: scan, allocate a string,
// parse, encode, write. This file replaces it (when ParseWorkers > 1)
// with an order-preserving parpipe stage in the mould of
// bam.ParallelScanner:
//
//	scan goroutine:  cut the rank's byte range into ~64 KiB pooled
//	                 chunks of whole lines (boundary lines stitched
//	                 through a dedicated carry buffer),
//	parse workers:   parse each chunk's lines in place
//	                 (sam.ParseRecordIntoBytes — zero per-line
//	                 allocation) and encode into pooled output buffers,
//	writer (caller): drain batches in submission order and write them.
//
// Because delivery is in submission order, the output bytes and the
// first error surfaced are identical to the sequential loop's — the
// byte-identity and error-parity tests pin both.

package conv

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"parseq/internal/bam"
	"parseq/internal/formats"
	"parseq/internal/obs"
	"parseq/internal/parpipe"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// maxSAMLineBytes caps one alignment line. The old converter silently
// capped lines at bufio.Scanner's 4 MiB default and surfaced a bare
// "token too long"; long-read SAM (ONT ultralong alignments carry
// multi-megabyte SEQ/QUAL plus CIGAR) hit it in practice. Both the
// sequential and pipelined paths now allow lines up to this limit and
// report the offending line's file offset when it is exceeded. A var
// so tests can exercise the limit without half-gigabyte fixtures.
var maxSAMLineBytes = 512 << 20

// errLineTooLong is the shared over-limit error; both converter paths
// produce it with the same wording so error parity holds.
func errLineTooLong(fileOff int64) error {
	return fmt.Errorf("conv: SAM line starting at file offset %d exceeds the %d byte line limit: %w",
		fileOff, maxSAMLineBytes, bufio.ErrTooLong)
}

// adaptiveParseWorkers sizes a rank's parse/encode pool when the knob
// is zero: the ranks already occupy Cores CPUs, so each gets its share
// of the remaining parallelism, clamped like the codec's AutoWorkers.
func adaptiveParseWorkers(cores int) int {
	if cores < 1 {
		cores = 1
	}
	w := runtime.GOMAXPROCS(0) / cores
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// batchBytes is the target chunk size of the scan stage: large enough
// to amortise per-batch channel traffic and goroutine handoffs over
// thousands of records (on a loaded core each handoff costs a
// scheduler pass), small enough that the in-flight window of batches
// stays memory-friendly and a rank's section still splits into enough
// batches to balance across the workers.
const batchBytes = 256 << 10

// lineScanner wraps bufio.Scanner for the sequential loop with the
// raised line limit and exact offset tracking, so the over-limit error
// reports where the offending line starts instead of a bare
// bufio.ErrTooLong (the silent 4 MiB cap this replaces).
type lineScanner struct {
	scan *bufio.Scanner
	pos  int64 // bytes advanced past completed lines
	base int64 // absolute file offset of the scanned section
}

func newLineScanner(r io.Reader, base int64) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 256<<10), maxSAMLineBytes)
	ls := &lineScanner{scan: s, base: base}
	s.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		adv, tok, err := bufio.ScanLines(data, atEOF)
		ls.pos += int64(adv)
		return adv, tok, err
	})
	return ls
}

func (s *lineScanner) Scan() bool   { return s.scan.Scan() }
func (s *lineScanner) Text() string { return s.scan.Text() }

// Err is bufio.Scanner.Err with ErrTooLong wrapped: when the scanner
// gives up, every completed line has been advanced past, so pos is the
// section-relative offset of the line that exceeded the limit.
func (s *lineScanner) Err() error {
	err := s.scan.Err()
	if err == bufio.ErrTooLong {
		return errLineTooLong(s.base + s.pos)
	}
	return err
}

// lineBatch is the pipeline's unit of work: one pooled chunk of whole
// input lines on the way in; encoded output bytes (or parsed records,
// on the preprocessing path) plus tallies on the way out.
type lineBatch struct {
	chunk   []byte       // whole input lines (pooled; nil on sentinel batches)
	base    int64        // absolute file offset of chunk[0]
	out     []byte       // encoded target bytes (pooled)
	recs    []sam.Record // parsed records (preprocessing path only)
	records int64        // records parsed
	emitted int64        // records that produced output
	err     error        // first parse/encode error, or terminal scan error
}

// batchScanner cuts a stream into pooled chunks of whole lines. The
// partial line at a chunk's end is copied into a dedicated carry buffer
// and prepended to the next chunk — copied, not aliased, so recycling a
// chunk can never corrupt a boundary line in flight (the same stitching
// discipline as bam.BodyScanner's carry).
type batchScanner struct {
	r     io.Reader
	pool  *sync.Pool
	carry []byte
	off   int64 // absolute file offset of the next chunk's first byte
	eof   bool
}

// next returns the next chunk of whole lines and the absolute offset of
// its first byte. The final chunk may lack a trailing newline, exactly
// as bufio.ScanLines delivers a final unterminated line. After the
// stream is exhausted it returns io.EOF.
func (s *batchScanner) next() ([]byte, int64, error) {
	if s.eof && len(s.carry) == 0 {
		return nil, 0, io.EOF
	}
	chunk := s.pool.Get().([]byte)[:0]
	chunk = append(chunk, s.carry...)
	s.carry = s.carry[:0]
	for {
		for !s.eof && len(chunk) < cap(chunk) {
			n, err := s.r.Read(chunk[len(chunk):cap(chunk)])
			chunk = chunk[:len(chunk)+n]
			if err == io.EOF {
				s.eof = true
				break
			}
			if err != nil {
				return nil, 0, err
			}
		}
		if s.eof {
			if len(chunk) == 0 {
				return nil, 0, io.EOF
			}
			base := s.off
			s.off += int64(len(chunk))
			return chunk, base, nil
		}
		if i := bytes.LastIndexByte(chunk, '\n'); i >= 0 {
			s.carry = append(s.carry[:0], chunk[i+1:]...)
			base := s.off
			s.off += int64(i + 1)
			return chunk[:i+1], base, nil
		}
		// No newline in the whole chunk: its first (and only) line is
		// longer than the chunk. Grow and keep reading, up to the line
		// limit — chunk[0] is always a line start, so the offending
		// line's offset is the chunk's.
		if len(chunk) >= maxSAMLineBytes {
			return nil, 0, errLineTooLong(s.off)
		}
		grown := cap(chunk) * 2
		if grown > maxSAMLineBytes {
			grown = maxSAMLineBytes
		}
		bigger := make([]byte, len(chunk), grown)
		copy(bigger, chunk)
		chunk = bigger
	}
}

// cutLine splits data at the first newline with bufio.ScanLines
// semantics: the line excludes the newline and a trailing carriage
// return; without a newline the remainder is the final line.
func cutLine(data []byte) (line, rest []byte) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line, rest = data[:i], data[i+1:]
	} else {
		line, rest = data, nil
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, rest
}

// The batch buffer pools are process-wide: every pipeline cuts chunks
// of the same capacity, so ranks and successive conversions reuse one
// warm buffer population instead of each run allocating (and the
// runtime zeroing) a fresh in-flight window.
var (
	chunkPool = sync.Pool{New: func() any { return make([]byte, 0, batchBytes) }}
	// Output buffers start at the batch size: most targets emit at most
	// about as many bytes as they read, so a full-size buffer avoids the
	// append-doubling copies a nil slice would pay on its first batches.
	outPool   = sync.Pool{New: func() any { return make([]byte, 0, batchBytes) }}
	batchPool = sync.Pool{New: func() any { return &lineBatch{} }}
)

// linePipeline bundles the scan goroutine and the parpipe worker stage
// of one rank's pipelined conversion.
type linePipeline struct {
	pipe          *parpipe.Pipe[*lineBatch]
	stop          atomic.Bool
	recycleChunks bool
}

// newLinePipeline starts the worker stage under the given parpipe
// metric/span name ("conv.encode" for the converting paths,
// "conv.parse" for the preprocessing path).
func newLinePipeline(workers int, process func(*lineBatch), name string, recycleChunks bool) *linePipeline {
	p := &linePipeline{recycleChunks: recycleChunks}
	p.pipe = parpipe.NewObserved(workers, 4*workers, process, obs.Default(), name)
	return p
}

// start launches the scan goroutine over r, whose first byte sits at
// absolute file offset base. A scan error travels as the final batch's
// err, so the drain side sees it after every complete batch — first
// error in stream order, like the sequential loop.
func (p *linePipeline) start(r io.Reader, base int64) {
	sc := &batchScanner{r: r, pool: &chunkPool, off: base}
	go func() {
		defer p.pipe.Close()
		for !p.stop.Load() {
			chunk, off, err := sc.next()
			if err == io.EOF {
				return
			}
			b := batchPool.Get().(*lineBatch)
			b.chunk, b.base = chunk, off
			b.out = outPool.Get().([]byte)[:0]
			if err != nil {
				b.err = err
				p.pipe.Submit(b)
				return
			}
			p.pipe.Submit(b)
		}
	}()
}

// startMapped is start over a memory-mapped partition: batches are
// plain subslices of the mapping cut at line boundaries — no reads, no
// copies, no pooled chunks. The caller must keep the mapping alive
// until the drain loop has consumed the pipe's output.
func (p *linePipeline) startMapped(data []byte, base int64) {
	p.recycleChunks = false // batches alias the mapping, not pool chunks
	go func() {
		defer p.pipe.Close()
		off := 0
		for off < len(data) && !p.stop.Load() {
			end := off + batchBytes
			if end >= len(data) {
				end = len(data)
			} else if i := bytes.LastIndexByte(data[off:end], '\n'); i >= 0 {
				end = off + i + 1
			} else if j := bytes.IndexByte(data[end:], '\n'); j >= 0 {
				// One line longer than a batch: the batch becomes that
				// whole line, and the worker's per-line limit check
				// enforces maxSAMLineBytes with the right offset.
				end += j + 1
			} else {
				end = len(data)
			}
			b := batchPool.Get().(*lineBatch)
			b.chunk, b.base = data[off:end], base+int64(off)
			b.out = outPool.Get().([]byte)[:0]
			p.pipe.Submit(b)
			off = end
		}
	}()
}

// recycle returns a drained batch's buffers to their pools. Chunks are
// held back on the preprocessing path, whose records alias them.
func (p *linePipeline) recycle(b *lineBatch) {
	// Chunks grown past batchBytes by a long line stay out of the pool,
	// keeping the shared population uniformly sized.
	if b.chunk != nil && p.recycleChunks && cap(b.chunk) == batchBytes {
		chunkPool.Put(b.chunk[:0])
	}
	if b.out != nil {
		outPool.Put(b.out[:0])
	}
	*b = lineBatch{}
	batchPool.Put(b)
}

// parseBatchLines drives one batch's line loop: every non-empty line is
// parsed in place into rec and handed to emit. On any error the batch
// stops there, recording it — batches are independent, and the ordered
// drain surfaces the first error in stream order.
func parseBatchLines(b *lineBatch, rec *sam.Record, emit func(*sam.Record) error) {
	if b.err != nil || b.chunk == nil {
		return
	}
	data := b.chunk
	rel := int64(0)
	for len(data) > 0 {
		line, rest := cutLine(data)
		if len(line) >= maxSAMLineBytes {
			// Line-limit parity with the sequential scanner, which
			// refuses any line of at least the limit.
			b.err = errLineTooLong(b.base + rel)
			return
		}
		rel += int64(len(data) - len(rest))
		data = rest
		if len(line) == 0 {
			continue
		}
		if err := sam.ParseRecordIntoBytes(rec, line); err != nil {
			b.err = err
			return
		}
		b.records++
		if err := emit(rec); err != nil {
			b.err = err
			return
		}
	}
}

// convertSAMRangePipelined is convertSAMRange's pipelined body: scan
// goroutine → ParseWorkers parse+encode workers → in-order drain into
// the rank's target file. Each worker draws its own encoder instance
// from a pool, since user-registered encoders may hold per-run state
// that is not safe to share across goroutines.
func convertSAMRangePipelined(samPath string, br partition.ByteRange, h *sam.Header,
	opts *Options, rank int) (rangeStats, error) {

	var stats rangeStats
	enc, err := formats.New(opts.Format)
	if err != nil {
		return stats, err
	}
	in, err := os.Open(samPath)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	mapped, unmap, mmapErr := mmapFile(in)
	if mmapErr == nil {
		defer unmap()
	}

	w, err := newRankWriter(opts, enc, h, rank)
	if err != nil {
		return stats, err
	}

	var encPool sync.Pool
	encPool.New = func() any {
		e, _ := formats.New(opts.Format)
		return e
	}
	p := newLinePipeline(opts.ParseWorkers, func(b *lineBatch) {
		e := encPool.Get().(formats.Encoder)
		var rec sam.Record
		parseBatchLines(b, &rec, func(r *sam.Record) error {
			n := len(b.out)
			out, err := e.Encode(b.out, r, h)
			if err != nil {
				return err
			}
			b.out = out
			if len(out) != n {
				b.emitted++
			}
			return nil
		})
		encPool.Put(e)
	}, "conv.encode", true)
	if mmapErr == nil {
		p.startMapped(mapped[br.Start:br.Start+br.Len()], br.Start)
	} else {
		p.start(io.NewSectionReader(in, br.Start, br.Len()), br.Start)
	}

	live := newLiveProgress()
	var firstErr error
	for b := range p.pipe.Out() {
		if firstErr == nil {
			if len(b.out) > 0 {
				if werr := w.writeBatch(b.out); werr != nil {
					firstErr = werr
				}
			}
			stats.records += b.records
			stats.emitted += b.emitted
			live.batch(b.records, int64(len(b.chunk)), int64(len(b.out)))
			if firstErr == nil {
				firstErr = b.err
			}
			if firstErr != nil {
				p.stop.Store(true)
			}
		}
		p.recycle(b)
	}
	if firstErr != nil {
		w.close()
		return stats, firstErr
	}
	stats.bytesOut = w.n
	return stats, w.close()
}

// encodeSAMRangeToBAMPipelined is the SAM→BAM counterpart: workers
// parse and binary-encode whole batches (bam.EncodeRecord), and the
// drain hands the pre-encoded bytes to the shard writer in order —
// BGZF framing is write-granularity independent, so the shard is
// byte-identical to the per-record sequential path.
func encodeSAMRangeToBAMPipelined(samPath string, br partition.ByteRange, h *sam.Header,
	outPath string, opts *Options) (int64, int64, error) {

	in, err := os.Open(samPath)
	if err != nil {
		return 0, 0, err
	}
	defer in.Close()
	mapped, unmap, mmapErr := mmapFile(in)
	if mmapErr == nil {
		defer unmap()
	}

	out, err := os.Create(outPath)
	if err != nil {
		return 0, 0, err
	}
	bw, err := bam.NewWriter(out, h, shardCodecOptions(opts)...)
	if err != nil {
		out.Close()
		return 0, 0, err
	}

	p := newLinePipeline(opts.ParseWorkers, func(b *lineBatch) {
		var rec sam.Record
		parseBatchLines(b, &rec, func(r *sam.Record) error {
			n := len(b.out)
			enc, err := bam.EncodeRecord(b.out, r, h)
			if err != nil {
				b.out = b.out[:n]
				return err
			}
			b.out = enc
			b.emitted++
			return nil
		})
	}, "conv.encode", true)
	if mmapErr == nil {
		p.startMapped(mapped[br.Start:br.Start+br.Len()], br.Start)
	} else {
		p.start(io.NewSectionReader(in, br.Start, br.Len()), br.Start)
	}

	live := newLiveProgress()
	var n int64
	var firstErr error
	for b := range p.pipe.Out() {
		if firstErr == nil {
			if err := bw.WriteEncoded(b.out); err != nil {
				firstErr = err
			}
			n += b.emitted
			live.batch(b.records, int64(len(b.chunk)), int64(len(b.out)))
			if firstErr == nil {
				firstErr = b.err
			}
			if firstErr != nil {
				p.stop.Store(true)
			}
		}
		p.recycle(b)
	}
	if firstErr != nil {
		bw.Close() // release codec workers before abandoning the shard
		out.Close()
		return 0, 0, firstErr
	}
	if err := bw.Close(); err != nil {
		out.Close()
		return 0, 0, err
	}
	fi, err := out.Stat()
	if err != nil {
		out.Close()
		return 0, 0, err
	}
	return n, fi.Size(), out.Close()
}

// preprocessSAMRangePipelined parallelises the parse half of the
// preprocessing-optimized converter: workers parse batches into record
// slices ("conv.parse" stage), the drain concatenates them in input
// order, and the BAMX/BAIX build proceeds as before. Records alias
// their chunks, so chunks are detached from the pool rather than
// recycled — the lifetime contract of sam.ParseRecordBytes.
func preprocessSAMRangePipelined(samPath string, br partition.ByteRange,
	parseWorkers int) ([]sam.Record, error) {

	in, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	section := io.NewSectionReader(in, br.Start, br.Len())

	p := newLinePipeline(parseWorkers, func(b *lineBatch) {
		if b.err != nil || b.chunk == nil {
			return
		}
		data := b.chunk
		rel := int64(0)
		for len(data) > 0 {
			line, rest := cutLine(data)
			if len(line) >= maxSAMLineBytes {
				b.err = errLineTooLong(b.base + rel)
				return
			}
			rel += int64(len(data) - len(rest))
			data = rest
			if len(line) == 0 {
				continue
			}
			rec, err := sam.ParseRecordBytes(line)
			if err != nil {
				b.err = err
				return
			}
			b.recs = append(b.recs, rec)
			b.records++
		}
	}, "conv.parse", false)
	p.start(section, br.Start)

	var recs []sam.Record
	var firstErr error
	for b := range p.pipe.Out() {
		if firstErr == nil {
			recs = append(recs, b.recs...)
			firstErr = b.err
			if firstErr != nil {
				p.stop.Store(true)
			}
		}
		p.recycle(b)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return recs, nil
}

// shardCodecOptions picks the codec wiring of one BAM shard writer:
// when CodecWorkers was left adaptive the shard attaches to the
// process-wide shared deflate pool (bgzf.SharedPool) — the many
// short-lived writers ConvertSAMToBAM spawns per rank stop paying a
// pool start/stop each — while an explicit worker count keeps the
// per-stream pool or the sequential codec.
func shardCodecOptions(opts *Options) []bam.Option {
	if opts.sharedCodec {
		return []bam.Option{bam.WithSharedCodec()}
	}
	return []bam.Option{bam.WithCodecWorkers(opts.CodecWorkers)}
}
