package conv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parseq/internal/formats"
	"parseq/internal/sam"
)

// TestPipelinedConvertSAMByteIdentity is the tentpole's contract: the
// pipelined converter produces byte-for-byte the sequential loop's
// output for every registered target format, at every worker count, at
// one and several ranks. ParseWorkers 0 exercises the adaptive default,
// 1 the sequential baseline, 4 and 8 the batch pipeline.
func TestPipelinedConvertSAMByteIdentity(t *testing.T) {
	samPath, _, d := writeDataset(t, 800)
	for _, format := range formats.Names() {
		want := expected(t, d, format)
		ref, err := ConvertSAM(samPath, Options{
			Format: format, Cores: 1, ParseWorkers: 1,
			OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("sequential ConvertSAM(%s): %v", format, err)
		}
		for _, workers := range []int{0, 1, 4, 8} {
			for _, cores := range []int{1, 3} {
				res, err := ConvertSAM(samPath, Options{
					Format: format, Cores: cores, ParseWorkers: workers,
					OutDir: t.TempDir(), OutPrefix: "t",
				})
				if err != nil {
					t.Fatalf("ConvertSAM(%s, workers=%d, cores=%d): %v",
						format, workers, cores, err)
				}
				if got := concatFiles(t, res.Files); got != want {
					t.Errorf("%s workers=%d cores=%d output differs from reference (got %d bytes, want %d)",
						format, workers, cores, len(got), len(want))
				}
				if res.Stats.Records != ref.Stats.Records {
					t.Errorf("%s workers=%d cores=%d Records = %d, want %d",
						format, workers, cores, res.Stats.Records, ref.Stats.Records)
				}
				if res.Stats.Emitted != ref.Stats.Emitted {
					t.Errorf("%s workers=%d cores=%d Emitted = %d, want %d",
						format, workers, cores, res.Stats.Emitted, ref.Stats.Emitted)
				}
				if res.Stats.BytesOut != ref.Stats.BytesOut {
					t.Errorf("%s workers=%d cores=%d BytesOut = %d, want %d",
						format, workers, cores, res.Stats.BytesOut, ref.Stats.BytesOut)
				}
			}
		}
	}
}

// TestPipelinedConvertSAMToBAMByteIdentity pins the binary target: each
// shard written through the batch pipeline (pre-encoded records handed
// to WriteEncoded) is byte-identical to the per-record sequential
// shard, both with the per-stream codec pinned sequential and with the
// adaptive default that attaches the shards to the shared deflate pool.
func TestPipelinedConvertSAMToBAMByteIdentity(t *testing.T) {
	samPath, _, _ := writeDataset(t, 600)
	ref, err := ConvertSAMToBAM(samPath, Options{
		Cores: 2, ParseWorkers: 1, CodecWorkers: 1,
		OutDir: t.TempDir(), OutPrefix: "shard",
	})
	if err != nil {
		t.Fatalf("sequential ConvertSAMToBAM: %v", err)
	}
	refShards := make([][]byte, len(ref.Files))
	for i, f := range ref.Files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		refShards[i] = b
	}
	for _, workers := range []int{1, 4, 8} {
		for _, codec := range []int{1, 0} { // 0 = adaptive → shared pool
			res, err := ConvertSAMToBAM(samPath, Options{
				Cores: 2, ParseWorkers: workers, CodecWorkers: codec,
				OutDir: t.TempDir(), OutPrefix: "shard",
			})
			if err != nil {
				t.Fatalf("ConvertSAMToBAM(workers=%d, codec=%d): %v", workers, codec, err)
			}
			if res.Stats.Records != ref.Stats.Records {
				t.Errorf("workers=%d codec=%d Records = %d, want %d",
					workers, codec, res.Stats.Records, ref.Stats.Records)
			}
			for i, f := range res.Files {
				b, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				if string(b) != string(refShards[i]) {
					t.Errorf("workers=%d codec=%d shard %d differs from sequential (%d vs %d bytes)",
						workers, codec, i, len(b), len(refShards[i]))
				}
			}
		}
	}
}

// TestPipelinedPreprocessedConverterIdentity covers the psam path: the
// parallel SAM→BAMX preprocessing with pipelined parsing feeds the same
// converter output as the sequential parse.
func TestPipelinedPreprocessedConverterIdentity(t *testing.T) {
	samPath, _, d := writeDataset(t, 500)
	want := expected(t, d, "fastq")
	for _, workers := range []int{1, 4} {
		res, err := ConvertSAMPreprocessed(samPath, 2, Options{
			Format: "fastq", Cores: 2, ParseWorkers: workers,
			OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("ConvertSAMPreprocessed(workers=%d): %v", workers, err)
		}
		if got := concatFiles(t, res.Files); got != want {
			t.Errorf("workers=%d preprocessed conversion differs from reference", workers)
		}
	}
	// The preprocessing entry point itself, with explicit pipelined parse.
	pre, err := PreprocessSAMParallelWorkers(samPath, t.TempDir(), "pp", 3, 4)
	if err != nil {
		t.Fatalf("PreprocessSAMParallelWorkers: %v", err)
	}
	if pre.Records != 500 {
		t.Errorf("preprocessed Records = %d, want 500", pre.Records)
	}
	res, err := ConvertPreprocessed(pre.BAMXFiles, pre.BAIXFiles, Options{
		Format: "fastq", Cores: 1, OutDir: t.TempDir(), OutPrefix: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := concatFiles(t, res.Files); got != want {
		t.Error("pipelined-preprocess shards convert to different bytes")
	}
}

// corruptRecord rewrites samPath with alignment line n's FLAG field
// replaced by a non-number, returning the corrupted copy's path.
func corruptRecord(t *testing.T, samPath string, n int) string {
	t.Helper()
	data, err := os.ReadFile(samPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	seen := 0
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "@") {
			continue
		}
		if seen == n {
			fields := strings.Split(line, "\t")
			if len(fields) < 2 {
				t.Fatalf("line %d has %d fields", i, len(fields))
			}
			fields[1] = "notaflag"
			lines[i] = strings.Join(fields, "\t")
			out := filepath.Join(t.TempDir(), "corrupt.sam")
			if err := os.WriteFile(out, []byte(strings.Join(lines, "")), 0o644); err != nil {
				t.Fatal(err)
			}
			return out
		}
		seen++
	}
	t.Fatalf("fewer than %d alignment lines", n)
	return ""
}

// TestPipelinedErrorParity pins the failure contract: a malformed
// record surfaces the same error message from the pipelined path as
// from the sequential loop, and the partial rank file holds the same
// bytes — everything before the failing record, nothing after.
func TestPipelinedErrorParity(t *testing.T) {
	samPath, _, _ := writeDataset(t, 400)
	corrupt := corruptRecord(t, samPath, 250)

	seqDir := t.TempDir()
	_, seqErr := ConvertSAM(corrupt, Options{
		Format: "sam", Cores: 1, ParseWorkers: 1, OutDir: seqDir, OutPrefix: "t",
	})
	if seqErr == nil {
		t.Fatal("sequential conversion of corrupt input succeeded")
	}
	seqPartial, err := os.ReadFile(filepath.Join(seqDir, "t_p000.sam"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPartial) == 0 {
		t.Fatal("sequential partial output is empty; corruption is too early to test ordering")
	}
	for _, workers := range []int{4, 8} {
		pipDir := t.TempDir()
		_, pipErr := ConvertSAM(corrupt, Options{
			Format: "sam", Cores: 1, ParseWorkers: workers, OutDir: pipDir, OutPrefix: "t",
		})
		if pipErr == nil {
			t.Fatalf("workers=%d conversion of corrupt input succeeded", workers)
		}
		if pipErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d error differs:\n pipelined:  %v\n sequential: %v",
				workers, pipErr, seqErr)
		}
		pipPartial, err := os.ReadFile(filepath.Join(pipDir, "t_p000.sam"))
		if err != nil {
			t.Fatal(err)
		}
		if string(pipPartial) != string(seqPartial) {
			t.Errorf("workers=%d partial output differs from sequential (%d vs %d bytes)",
				workers, len(pipPartial), len(seqPartial))
		}
	}

	// The binary target fails with the same message too.
	_, seqBAMErr := ConvertSAMToBAM(corrupt, Options{
		Cores: 1, ParseWorkers: 1, OutDir: t.TempDir(), OutPrefix: "s",
	})
	if seqBAMErr == nil {
		t.Fatal("sequential SAM→BAM of corrupt input succeeded")
	}
	for _, workers := range []int{4, 8} {
		_, pipBAMErr := ConvertSAMToBAM(corrupt, Options{
			Cores: 1, ParseWorkers: workers, OutDir: t.TempDir(), OutPrefix: "s",
		})
		if pipBAMErr == nil {
			t.Fatalf("workers=%d SAM→BAM of corrupt input succeeded", workers)
		}
		if pipBAMErr.Error() != seqBAMErr.Error() {
			t.Errorf("workers=%d SAM→BAM error differs:\n pipelined:  %v\n sequential: %v",
				workers, pipBAMErr, seqBAMErr)
		}
	}
}

// TestLongLineBeyondOldCap feeds a 5 MiB alignment line — over the old
// converter's silent 4 MiB bufio cap, the shape of an ONT ultralong
// read — through both paths and requires identical successful output.
func TestLongLineBeyondOldCap(t *testing.T) {
	const seqLen = 5 << 20
	line := fmt.Sprintf("ont1\t0\tchr1\t1\t60\t%dM\t*\t0\t0\t%s\t%s",
		seqLen, strings.Repeat("A", seqLen), strings.Repeat("I", seqLen))
	hdr := "@SQ\tSN:chr1\tLN:100000000\n"
	path := filepath.Join(t.TempDir(), "long.sam")
	if err := os.WriteFile(path, []byte(hdr+line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var first string
	for _, workers := range []int{1, 4} {
		res, err := ConvertSAM(path, Options{
			Format: "sam", Cores: 1, ParseWorkers: workers,
			OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Records != 1 {
			t.Errorf("workers=%d Records = %d, want 1", workers, res.Stats.Records)
		}
		got := concatFiles(t, res.Files)
		if !strings.Contains(got, line) {
			t.Errorf("workers=%d output lost the long line (%d bytes out)", workers, len(got))
		}
		if first == "" {
			first = got
		} else if got != first {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

// TestLineLimitErrorParity shrinks the line limit and requires both
// paths to fail with the identical wrapped error: bufio.ErrTooLong
// under errors.Is, carrying the offending line's absolute file offset.
func TestLineLimitErrorParity(t *testing.T) {
	old := maxSAMLineBytes
	maxSAMLineBytes = 512 << 10
	defer func() { maxSAMLineBytes = old }()

	hdr := "@SQ\tSN:chr1\tLN:1000\n"
	good1 := "ok1\t0\tchr1\t1\t30\t4M\t*\t0\t0\tACGT\tIIII\n"
	good2 := "ok2\t0\tchr1\t5\t30\t4M\t*\t0\t0\tGGGG\tIIII\n"
	long := "toolong\t0\tchr1\t9\t30\t*\t*\t0\t0\t" +
		strings.Repeat("C", maxSAMLineBytes+1000) + "\t*\n"
	path := filepath.Join(t.TempDir(), "cap.sam")
	if err := os.WriteFile(path, []byte(hdr+good1+good2+long), 0o644); err != nil {
		t.Fatal(err)
	}
	wantOff := int64(len(hdr) + len(good1) + len(good2))
	want := errLineTooLong(wantOff).Error()
	for _, workers := range []int{1, 4} {
		_, err := ConvertSAM(path, Options{
			Format: "bed", Cores: 1, ParseWorkers: workers,
			OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err == nil {
			t.Fatalf("workers=%d over-limit line converted successfully", workers)
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Errorf("workers=%d error does not wrap bufio.ErrTooLong: %v", workers, err)
		}
		if err.Error() != want {
			t.Errorf("workers=%d error = %q, want %q", workers, err, want)
		}
	}
}

// TestLineJustUnderLimitSucceeds pins the boundary: content of exactly
// limit-1 bytes plus the newline passes on both paths (bufio's rule),
// so the pipelined per-line check cannot be stricter than the scanner.
func TestLineJustUnderLimitSucceeds(t *testing.T) {
	old := maxSAMLineBytes
	maxSAMLineBytes = 512 << 10
	defer func() { maxSAMLineBytes = old }()

	hdr := "@SQ\tSN:chr1\tLN:1000\n"
	stem := "edge\t0\tchr1\t1\t30\t*\t*\t0\t0\t"
	line := stem + strings.Repeat("C", maxSAMLineBytes-1-len(stem)-2) + "\t*"
	if len(line) != maxSAMLineBytes-1 {
		t.Fatalf("test bug: line is %d bytes, want %d", len(line), maxSAMLineBytes-1)
	}
	path := filepath.Join(t.TempDir(), "edge.sam")
	if err := os.WriteFile(path, []byte(hdr+line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := ConvertSAM(path, Options{
			Format: "sam", Cores: 1, ParseWorkers: workers,
			OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("workers=%d limit-1 line failed: %v", workers, err)
		}
		if res.Stats.Records != 1 {
			t.Errorf("workers=%d Records = %d, want 1", workers, res.Stats.Records)
		}
	}
}

// BenchmarkConvertSAM sweeps the pipelined converter's worker counts on
// one rank, for the allocation-heavy text target (sam) and a
// parse-dominated one (bed). bytes/s is input throughput.
func BenchmarkConvertSAM(b *testing.B) {
	samPath, _, _ := writeDataset(b, 20000)
	fi, err := os.Stat(samPath)
	if err != nil {
		b.Fatal(err)
	}
	for _, format := range []string{"sam", "bed"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("format=%s/workers=%d", format, workers), func(b *testing.B) {
				outDir := b.TempDir()
				b.SetBytes(fi.Size())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ConvertSAM(samPath, Options{
						Format: format, Cores: 1, ParseWorkers: workers,
						OutDir: outDir, OutPrefix: "b",
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConvertSAMPrePR measures the converter hot loop as it stood
// before the pipelined path landed — bufio.Scanner with the 4 MiB cap,
// a fresh string per line (scan.Text), a freshly allocated CIGAR per
// record and the strings.Builder SAM renderer — so BENCH_convert.json
// carries the before/after comparison on the same dataset.
func BenchmarkConvertSAMPrePR(b *testing.B) {
	samPath, _, _ := writeDataset(b, 20000)
	fi, err := os.Stat(samPath)
	if err != nil {
		b.Fatal(err)
	}
	for _, format := range []string{"sam", "bed"} {
		b.Run(fmt.Sprintf("format=%s", format), func(b *testing.B) {
			outDir := b.TempDir()
			b.SetBytes(fi.Size())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := legacyConvertSAM(samPath, format, outDir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvertSAMSpeedup is the before/after headline: it
// interleaves one pre-PR-loop pass and one pipelined (4 workers) pass
// per iteration on the same dataset and reports the paired throughput
// ratio as "speedup". Pairing makes the ratio robust against machine
// weather (CPU steal on shared hosts) that skews two separately-timed
// benchmarks.
func BenchmarkConvertSAMSpeedup(b *testing.B) {
	samPath, _, _ := writeDataset(b, 20000)
	fi, err := os.Stat(samPath)
	if err != nil {
		b.Fatal(err)
	}
	for _, format := range []string{"sam", "bed"} {
		b.Run(fmt.Sprintf("format=%s/workers=4", format), func(b *testing.B) {
			outDir := b.TempDir()
			b.SetBytes(fi.Size())
			// One untimed pair first: page-cache and buffer-pool warmup
			// otherwise lands entirely on whichever side runs first.
			if err := legacyConvertSAM(samPath, format, outDir); err != nil {
				b.Fatal(err)
			}
			if _, err := ConvertSAM(samPath, Options{
				Format: format, Cores: 1, ParseWorkers: 4,
				OutDir: outDir, OutPrefix: "b",
			}); err != nil {
				b.Fatal(err)
			}
			// Per-side minimum over the iterations: external noise (CPU
			// steal on a shared host) only ever adds time, so the minimum
			// is the robust estimator of each path's true cost and their
			// ratio the robust speedup.
			minLegacy, minPipe := time.Duration(1<<62), time.Duration(1<<62)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := legacyConvertSAM(samPath, format, outDir); err != nil {
					b.Fatal(err)
				}
				t1 := time.Now()
				if _, err := ConvertSAM(samPath, Options{
					Format: format, Cores: 1, ParseWorkers: 4,
					OutDir: outDir, OutPrefix: "b",
				}); err != nil {
					b.Fatal(err)
				}
				if d := t1.Sub(t0); d < minLegacy {
					minLegacy = d
				}
				if d := time.Since(t1); d < minPipe {
					minPipe = d
				}
			}
			b.ReportMetric(float64(minLegacy)/float64(minPipe), "speedup")
		})
	}
}

// legacyConvertSAM replicates the pre-pipeline sequential rank loop for
// the baseline benchmark: per-line string, per-record CIGAR allocation,
// builder-based SAM rendering, 4 MiB scanner cap.
func legacyConvertSAM(samPath, format, outDir string) error {
	enc, err := formats.New(format)
	if err != nil {
		return err
	}
	f, err := os.Open(samPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	h, dataStart, err := scanHeader(f)
	if err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(outDir, "legacy"+enc.Extension()))
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 256<<10) // the pre-PR write buffer size
	if _, err := bw.Write(enc.Header(h)); err != nil {
		return err
	}
	scan := bufio.NewScanner(io.NewSectionReader(f, dataStart, fi.Size()-dataStart))
	scan.Buffer(make([]byte, 64<<10), 4<<20)
	var rec sam.Record
	var buf []byte
	for scan.Scan() {
		line := scan.Text()
		if line == "" {
			continue
		}
		rec.Cigar = nil // pre-PR ParseCigar allocated per record
		if err := sam.ParseRecordInto(&rec, line); err != nil {
			return err
		}
		if format == "sam" {
			var sb strings.Builder
			rec.AppendText(&sb)
			buf = append(buf[:0], sb.String()...)
			buf = append(buf, '\n')
		} else {
			buf, err = enc.Encode(buf[:0], &rec, h)
			if err != nil {
				return err
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if err := scan.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
