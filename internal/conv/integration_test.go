package conv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/formats"
	"parseq/internal/simdata"
)

// Property: for random datasets, partition counts and target formats,
// the parallel SAM converter's concatenated output equals the sequential
// reference conversion.
func TestConvertSAMParallelEqualsSequentialProperty(t *testing.T) {
	formatsList := formats.Names()
	f := func(seed int64, sizeSeed uint8, coreSeed uint8, fmtSeed uint8) bool {
		n := int(sizeSeed)%150 + 10
		cores := int(coreSeed)%6 + 1
		format := formatsList[int(fmtSeed)%len(formatsList)]

		cfg := simdata.DefaultConfig(n)
		cfg.Seed = seed
		d := simdata.Generate(cfg)
		dir := t.TempDir()
		samPath := filepath.Join(dir, "p.sam")
		sf, err := os.Create(samPath)
		if err != nil {
			return false
		}
		if err := d.WriteSAM(sf); err != nil {
			return false
		}
		if err := sf.Close(); err != nil {
			return false
		}

		res, err := ConvertSAM(samPath, Options{
			Format: format, Cores: cores, OutDir: dir, OutPrefix: "q",
		})
		if err != nil {
			return false
		}
		got := concatFiles(t, res.Files)
		return got == expected(t, d, format)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// A malformed record inside one rank's partition must fail the whole
// conversion (no silent partial output), exercising the runtime's abort
// path.
func TestConvertSAMPropagatesMidPartitionError(t *testing.T) {
	samPath, _, _ := writeDataset(t, 200)
	data, err := os.ReadFile(samPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	// Corrupt an alignment line near the middle.
	for i := len(lines) / 2; i < len(lines); i++ {
		if lines[i] != "" && lines[i][0] != '@' {
			lines[i] = "corrupted record line"
			break
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.sam")
	if err := os.WriteFile(bad, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 4} {
		if _, err := ConvertSAM(bad, Options{Format: "bed", Cores: cores, OutDir: t.TempDir()}); err == nil {
			t.Errorf("cores=%d: corrupted input converted without error", cores)
		}
	}
}

// A truncated BAMX file must fail cleanly at open or read time.
func TestConvertBAMXTruncatedInput(t *testing.T) {
	_, bamPath, _ := writeDataset(t, 100)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "t.bamx")
	baixPath := filepath.Join(dir, "t.baix")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, baixPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bamx")
	if err := os.WriteFile(trunc, data[:len(data)-13], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertBAMX(trunc, baixPath, Options{Format: "bed", OutDir: t.TempDir()}); err == nil {
		t.Error("truncated BAMX converted without error")
	}
}

// Unwritable output directories surface as errors from every converter.
func TestConvertersRejectUnwritableOutDir(t *testing.T) {
	samPath, bamPath, _ := writeDataset(t, 20)
	bad := filepath.Join(t.TempDir(), "missing", "nested")
	if _, err := ConvertSAM(samPath, Options{Format: "bed", OutDir: bad}); err == nil {
		t.Error("ConvertSAM wrote into a missing directory")
	}
	if _, err := ConvertBAMSequential(bamPath, Options{Format: "sam", OutDir: bad}); err == nil {
		t.Error("ConvertBAMSequential wrote into a missing directory")
	}
	if _, err := ConvertSAMToBAM(samPath, Options{OutDir: bad}); err == nil {
		t.Error("ConvertSAMToBAM wrote into a missing directory")
	}
}

// More ranks than records still tiles correctly for the BAMX converter.
func TestConvertBAMXMoreCoresThanRecords(t *testing.T) {
	_, bamPath, d := writeDataset(t, 5)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "s.bamx")
	baixPath := filepath.Join(dir, "s.baix")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, baixPath); err != nil {
		t.Fatal(err)
	}
	res, err := ConvertBAMX(bamxPath, baixPath, Options{
		Format: "sam", Cores: 16, OutDir: t.TempDir(), OutPrefix: "w",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := concatFiles(t, res.Files), expected(t, d, "sam"); got != want {
		t.Error("over-partitioned BAMX conversion differs")
	}
}
