package conv

import (
	"os"
	"path/filepath"
	"testing"
)

// prepBAMZ preprocesses the dataset's BAM into plain and compressed BAMX.
func prepBAMZ(t *testing.T, n int) (bamxPath, bamzPath, baixPath string) {
	t.Helper()
	_, bamPath, _ := writeDataset(t, n)
	dir := t.TempDir()
	bamxPath = filepath.Join(dir, "d.bamx")
	bamzPath = filepath.Join(dir, "d.bamz")
	baixPath = filepath.Join(dir, "d.baix")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, baixPath); err != nil {
		t.Fatal(err)
	}
	count, err := CompressBAMXFile(bamxPath, bamzPath, 64)
	if err != nil {
		t.Fatalf("CompressBAMXFile: %v", err)
	}
	if count != int64(n) {
		t.Fatalf("compressed %d records, want %d", count, n)
	}
	return bamxPath, bamzPath, baixPath
}

func TestCompressedFileSmaller(t *testing.T) {
	bamxPath, bamzPath, _ := prepBAMZ(t, 400)
	xi, err := os.Stat(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	zi, err := os.Stat(bamzPath)
	if err != nil {
		t.Fatal(err)
	}
	if zi.Size() >= xi.Size() {
		t.Errorf("compressed %d bytes ≥ plain %d", zi.Size(), xi.Size())
	}
}

func TestConvertBAMZMatchesPlain(t *testing.T) {
	bamxPath, bamzPath, baixPath := prepBAMZ(t, 400)
	for _, format := range []string{"sam", "bed", "fastq"} {
		for _, cores := range []int{1, 3} {
			plain, err := ConvertBAMX(bamxPath, baixPath, Options{
				Format: format, Cores: cores, OutDir: t.TempDir(), OutPrefix: "p",
			})
			if err != nil {
				t.Fatal(err)
			}
			comp, err := ConvertBAMZ(bamzPath, baixPath, Options{
				Format: format, Cores: cores, OutDir: t.TempDir(), OutPrefix: "z",
			})
			if err != nil {
				t.Fatalf("ConvertBAMZ(%s, cores=%d): %v", format, cores, err)
			}
			if got, want := concatFiles(t, comp.Files), concatFiles(t, plain.Files); got != want {
				t.Errorf("%s cores=%d: compressed conversion differs from plain", format, cores)
			}
			if comp.Stats.Records != plain.Stats.Records {
				t.Errorf("records %d vs %d", comp.Stats.Records, plain.Stats.Records)
			}
		}
	}
}

func TestConvertBAMZPartialMatchesPlain(t *testing.T) {
	bamxPath, bamzPath, baixPath := prepBAMZ(t, 500)
	region := &Region{RName: "chr1", Beg: 1, End: 90000}
	plain, err := ConvertBAMX(bamxPath, baixPath, Options{
		Format: "sam", Cores: 2, OutDir: t.TempDir(), OutPrefix: "p", Region: region,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := ConvertBAMZ(bamzPath, baixPath, Options{
		Format: "sam", Cores: 2, OutDir: t.TempDir(), OutPrefix: "z", Region: region,
	})
	if err != nil {
		t.Fatalf("partial ConvertBAMZ: %v", err)
	}
	if plain.Stats.Records == 0 {
		t.Fatal("region selected no records")
	}
	if got, want := concatFiles(t, comp.Files), concatFiles(t, plain.Files); got != want {
		t.Error("compressed partial conversion differs from plain")
	}
}

func TestConvertBAMZPartialRequiresIndex(t *testing.T) {
	_, bamzPath, _ := prepBAMZ(t, 100)
	_, err := ConvertBAMZ(bamzPath, "", Options{
		Format: "sam", OutDir: t.TempDir(),
		Region: &Region{RName: "chr1", Beg: 1},
	})
	if err == nil {
		t.Error("partial conversion without BAIX succeeded")
	}
}

func TestConvertBAMZRejectsPlainFile(t *testing.T) {
	bamxPath, _, baixPath := prepBAMZ(t, 50)
	if _, err := ConvertBAMZ(bamxPath, baixPath, Options{Format: "sam", OutDir: t.TempDir()}); err == nil {
		t.Error("plain BAMX accepted by ConvertBAMZ")
	}
}
