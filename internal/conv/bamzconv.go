package conv

import (
	"fmt"
	"os"

	"parseq/internal/bamx"
	"parseq/internal/formats"
	"parseq/internal/mpi"
	"parseq/internal/obs"
	"parseq/internal/sam"
)

// CompressBAMXFile rewrites a plain BAMX file as a compressed one (the
// paper's Section VII compression extension). The BAIX index is
// unchanged: record indices are preserved, so an existing index keeps
// working against the compressed file.
func CompressBAMXFile(bamxPath, bamzPath string, recsPerBlock int) (int64, error) {
	return CompressBAMXFileWorkers(bamxPath, bamzPath, recsPerBlock, 0)
}

// CompressBAMXFileWorkers is CompressBAMXFile with block deflation
// fanned out over `workers` goroutines.
func CompressBAMXFileWorkers(bamxPath, bamzPath string, recsPerBlock, workers int) (int64, error) {
	in, err := os.Open(bamxPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	fi, err := in.Stat()
	if err != nil {
		return 0, err
	}
	xf, err := bamx.Open(in, fi.Size())
	if err != nil {
		return 0, err
	}
	out, err := os.Create(bamzPath)
	if err != nil {
		return 0, err
	}
	n, err := bamx.CompressBAMXWorkers(xf, out, recsPerBlock, workers)
	if err != nil {
		out.Close()
		return 0, err
	}
	return n, out.Close()
}

// ConvertBAMZ is ConvertBAMX for compressed BAMX files: the same
// equal-record partitioning and optional BAIX-backed partial conversion,
// with each rank decompressing only the blocks its records live in.
func ConvertBAMZ(bamzPath, baixPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	enc, err := formats.New(opts.Format)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(bamzPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	zf, err := bamx.OpenCompressed(f, fi.Size())
	if err != nil {
		return nil, err
	}

	ph := obs.NewPhaseSet(obs.Default())
	psp := ph.Start(0, "partition")
	var regionEntries []bamx.Entry
	useRegion := false
	if opts.Region != nil {
		idx, err := loadCompressedIndex(baixPath)
		if err != nil {
			return nil, err
		}
		refID := zf.Header().RefID(opts.Region.RName)
		if refID < 0 {
			return nil, fmt.Errorf("conv: region reference %q not in header", opts.Region.RName)
		}
		beg, end := opts.Region.Beg, opts.Region.End
		if beg <= 0 {
			beg = 1
		}
		if end <= 0 {
			end = 1<<31 - 1
		}
		lo, hi := idx.Region(int32(refID), beg, end)
		regionEntries = idx.Entries()[lo:hi]
		useRegion = true
	}
	count := int(zf.NumRecords())
	if useRegion {
		count = len(regionEntries)
	}
	psp.End()

	var res Result
	res.Files = make([]string, opts.Cores)
	var tally counters
	err = opts.launch()(opts.Cores, func(c *mpi.Comm) error {
		csp := ph.Start(c.Rank(), "convert")
		defer csp.End()
		lo, hi := c.SplitRange(count)
		stats, err := convertBAMZRange(bamzPath, regionEntries, useRegion, lo, hi, enc, &opts, c.Rank())
		if err != nil {
			return err
		}
		tally.records.Add(stats.records)
		tally.emitted.Add(stats.emitted)
		tally.bytesIn.Add(int64(hi-lo) * int64(zf.Caps().Stride()))
		tally.bytesOut.Add(stats.bytesOut)
		res.Files[c.Rank()] = opts.outPath(enc.Extension(), c.Rank())
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.PartitionTime = ph.Wall("partition")
	res.Stats.ConvertTime = ph.Wall("convert")
	tally.into(&res.Stats)
	return &res, nil
}

// loadCompressedIndex reads a BAIX file; compressed files cannot fall
// back to a scan rebuild through the plain-file path, so the index is
// rebuilt by decoding when missing.
func loadCompressedIndex(baixPath string) (*bamx.Index, error) {
	if baixPath == "" {
		return nil, fmt.Errorf("conv: partial conversion of a compressed BAMX needs its BAIX index")
	}
	ixf, err := os.Open(baixPath)
	if err != nil {
		return nil, err
	}
	defer ixf.Close()
	return bamx.ReadIndex(ixf)
}

// convertBAMZRange converts records [lo, hi) of the partitioned unit on
// one rank, each rank holding its own CompressedFile (and block cache).
func convertBAMZRange(path string, entries []bamx.Entry, useRegion bool,
	lo, hi int, enc formats.Encoder, opts *Options, rank int) (rangeStats, error) {

	var stats rangeStats
	in, err := os.Open(path)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	fi, err := in.Stat()
	if err != nil {
		return stats, err
	}
	zf, err := bamx.OpenCompressed(in, fi.Size())
	if err != nil {
		return stats, err
	}
	if opts.CodecWorkers > 1 {
		// Inflate ahead of the record loop. The codec worker budget is
		// shared across ranks; even a single readahead worker overlaps
		// decompression with conversion.
		per := opts.CodecWorkers / opts.Cores
		if per < 1 {
			per = 1
		}
		zf.StartReadahead(per)
		defer zf.Close()
	}

	w, err := newRankWriter(opts, enc, zf.Header(), rank)
	if err != nil {
		return stats, err
	}
	var rec sam.Record
	var out []byte
	for i := lo; i < hi; i++ {
		recIdx := int64(i)
		if useRegion {
			recIdx = entries[i].Index
		}
		if err := zf.ReadRecord(recIdx, &rec); err != nil {
			w.close()
			return stats, err
		}
		stats.records++
		var emitted bool
		out, emitted, err = w.emit(out, &rec, zf.Header())
		if err != nil {
			w.close()
			return stats, err
		}
		if emitted {
			stats.emitted++
		}
	}
	stats.bytesOut = w.n
	return stats, w.close()
}
