package conv

import (
	"os"
	"path/filepath"
	"testing"

	"parseq/internal/bam"
)

func TestConvertSAMToBAMRoundTrip(t *testing.T) {
	samPath, _, d := writeDataset(t, 400)
	for _, cores := range []int{1, 4} {
		outDir := t.TempDir()
		res, err := ConvertSAMToBAM(samPath, Options{
			Cores: cores, OutDir: outDir, OutPrefix: "shard",
		})
		if err != nil {
			t.Fatalf("ConvertSAMToBAM(cores=%d): %v", cores, err)
		}
		if len(res.Files) != cores {
			t.Fatalf("shards = %d, want %d", len(res.Files), cores)
		}
		if res.Stats.Records != 400 {
			t.Errorf("records = %d", res.Stats.Records)
		}

		// Every shard is a standalone valid BAM with the full header.
		var all []string
		for _, shard := range res.Files {
			f, err := os.Open(shard)
			if err != nil {
				t.Fatal(err)
			}
			r, err := bam.NewReader(f)
			if err != nil {
				t.Fatalf("shard %s unreadable: %v", shard, err)
			}
			if len(r.Header().Refs) != len(d.Header.Refs) {
				t.Errorf("shard %s refs = %d", shard, len(r.Header().Refs))
			}
			recs, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				all = append(all, recs[i].String())
			}
			f.Close()
		}
		if len(all) != len(d.Records) {
			t.Fatalf("cores=%d: %d records across shards, want %d", cores, len(all), len(d.Records))
		}
		for i := range all {
			if all[i] != d.Records[i].String() {
				t.Fatalf("cores=%d: record %d differs after SAM→BAM", cores, i)
			}
		}
	}
}

func TestMergeBAMShards(t *testing.T) {
	samPath, _, d := writeDataset(t, 300)
	outDir := t.TempDir()
	res, err := ConvertSAMToBAM(samPath, Options{Cores: 3, OutDir: outDir, OutPrefix: "s"})
	if err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(outDir, "merged.bam")
	n, err := MergeBAMShards(res.Files, merged)
	if err != nil {
		t.Fatalf("MergeBAMShards: %v", err)
	}
	if n != 300 {
		t.Errorf("merged %d records", n)
	}
	f, err := os.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bam.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 300 {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range recs {
		if recs[i].String() != d.Records[i].String() {
			t.Fatalf("merged record %d differs", i)
		}
	}
}

func TestMergeBAMShardsErrors(t *testing.T) {
	if _, err := MergeBAMShards(nil, filepath.Join(t.TempDir(), "o.bam")); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := MergeBAMShards([]string{"/does/not/exist.bam"}, filepath.Join(t.TempDir(), "o.bam")); err == nil {
		t.Error("missing shard accepted")
	}
}

func TestConvertSAMToBAMRejectsRegion(t *testing.T) {
	samPath, _, _ := writeDataset(t, 10)
	_, err := ConvertSAMToBAM(samPath, Options{
		OutDir: t.TempDir(), Region: &Region{RName: "chr1", Beg: 1},
	})
	if err == nil {
		t.Error("region accepted")
	}
}
