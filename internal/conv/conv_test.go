package conv

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"parseq/internal/formats"
	"parseq/internal/sam"
	"parseq/internal/simdata"
)

// writeDataset materialises a synthetic dataset as SAM and BAM files in a
// temp dir and returns their paths.
func writeDataset(t testing.TB, n int) (string, string, *simdata.Dataset) {
	t.Helper()
	d := simdata.Generate(simdata.DefaultConfig(n))
	dir := t.TempDir()
	samPath := filepath.Join(dir, "in.sam")
	bamPath := filepath.Join(dir, "in.bam")
	sf, err := os.Create(samPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSAM(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	bf, err := os.Create(bamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return samPath, bamPath, d
}

// concatFiles concatenates the per-rank output files in rank order.
func concatFiles(t testing.TB, files []string) string {
	t.Helper()
	var b bytes.Buffer
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		b.Write(data)
	}
	return b.String()
}

// expected computes the single-threaded reference conversion.
func expected(t testing.TB, d *simdata.Dataset, format string) string {
	t.Helper()
	enc, err := formats.New(format)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	out = append(out, enc.Header(d.Header)...)
	for i := range d.Records {
		out, err = enc.Encode(out, &d.Records[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
	}
	return string(out)
}

func TestParseRegion(t *testing.T) {
	cases := []struct {
		in   string
		want Region
	}{
		{"chr1", Region{RName: "chr1", Beg: 1}},
		{"chr1:100-200", Region{RName: "chr1", Beg: 100, End: 200}},
		{"chr1:100-", Region{RName: "chr1", Beg: 100}},
		{"chrX:5", Region{RName: "chrX", Beg: 5, End: 5}},
	}
	for _, tc := range cases {
		got, err := ParseRegion(tc.in)
		if err != nil {
			t.Errorf("ParseRegion(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRegion(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", ":5-10", "chr1:x-10", "chr1:10-x", "chr1:20-10", "chr1:99999999999-"} {
		if _, err := ParseRegion(bad); err == nil {
			t.Errorf("ParseRegion(%q) succeeded", bad)
		}
	}
}

func TestRegionString(t *testing.T) {
	if got := (Region{RName: "chr1", Beg: 5, End: 10}).String(); got != "chr1:5-10" {
		t.Errorf("String = %q", got)
	}
	if got := (Region{RName: "chr1", Beg: 5}).String(); got != "chr1:5-" {
		t.Errorf("open String = %q", got)
	}
}

func TestConvertSAMSequentialMatchesReference(t *testing.T) {
	samPath, _, d := writeDataset(t, 300)
	for _, format := range formats.Names() {
		res, err := ConvertSAM(samPath, Options{
			Format: format, Cores: 1, OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("ConvertSAM(%s): %v", format, err)
		}
		got := concatFiles(t, res.Files)
		if want := expected(t, d, format); got != want {
			t.Errorf("%s conversion differs from reference (got %d bytes, want %d)",
				format, len(got), len(want))
		}
		if res.Stats.Records != 300 {
			t.Errorf("%s Records = %d, want 300", format, res.Stats.Records)
		}
	}
}

func TestConvertSAMParallelMatchesSequential(t *testing.T) {
	samPath, _, d := writeDataset(t, 500)
	want := expected(t, d, "bed")
	for _, cores := range []int{2, 3, 8} {
		res, err := ConvertSAM(samPath, Options{
			Format: "bed", Cores: cores, OutDir: t.TempDir(), OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("ConvertSAM(cores=%d): %v", cores, err)
		}
		if len(res.Files) != cores {
			t.Fatalf("files = %d, want %d", len(res.Files), cores)
		}
		if got := concatFiles(t, res.Files); got != want {
			t.Errorf("cores=%d output differs from sequential", cores)
		}
		if res.Stats.Records != 500 {
			t.Errorf("cores=%d Records = %d", cores, res.Stats.Records)
		}
		if res.Stats.BytesOut == 0 || res.Stats.BytesIn == 0 {
			t.Errorf("cores=%d zero byte counters: %+v", cores, res.Stats)
		}
	}
}

func TestConvertSAMRejectsRegion(t *testing.T) {
	samPath, _, _ := writeDataset(t, 10)
	_, err := ConvertSAM(samPath, Options{
		Format: "bed", Region: &Region{RName: "chr1", Beg: 1, End: 100},
		OutDir: t.TempDir(),
	})
	if err == nil {
		t.Error("ConvertSAM with region succeeded")
	}
}

func TestConvertSAMMissingFile(t *testing.T) {
	if _, err := ConvertSAM("/does/not/exist.sam", Options{Format: "bed", OutDir: t.TempDir()}); err == nil {
		t.Error("missing input succeeded")
	}
}

func TestConvertSAMBadFormat(t *testing.T) {
	samPath, _, _ := writeDataset(t, 10)
	if _, err := ConvertSAM(samPath, Options{Format: "xml", OutDir: t.TempDir()}); err == nil {
		t.Error("unknown format succeeded")
	}
}

func TestConvertBAMSequentialMatchesReference(t *testing.T) {
	_, bamPath, d := writeDataset(t, 300)
	res, err := ConvertBAMSequential(bamPath, Options{
		Format: "sam", Cores: 1, OutDir: t.TempDir(), OutPrefix: "t",
	})
	if err != nil {
		t.Fatalf("ConvertBAMSequential: %v", err)
	}
	got := concatFiles(t, res.Files)
	if want := expected(t, d, "sam"); got != want {
		t.Error("BAM→SAM sequential conversion differs from reference")
	}
}

func TestPreprocessAndConvertBAMX(t *testing.T) {
	_, bamPath, d := writeDataset(t, 400)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "in.bamx")
	baixPath := filepath.Join(dir, "in.baix")
	pre, err := PreprocessBAMFile(bamPath, bamxPath, baixPath)
	if err != nil {
		t.Fatalf("PreprocessBAMFile: %v", err)
	}
	if pre.Duration <= 0 {
		t.Error("preprocessing duration not recorded")
	}
	for _, format := range []string{"bed", "bedgraph", "fasta", "sam"} {
		for _, cores := range []int{1, 4} {
			res, err := ConvertBAMX(bamxPath, baixPath, Options{
				Format: format, Cores: cores, OutDir: t.TempDir(), OutPrefix: "t",
			})
			if err != nil {
				t.Fatalf("ConvertBAMX(%s, cores=%d): %v", format, cores, err)
			}
			got := concatFiles(t, res.Files)
			if want := expected(t, d, format); got != want {
				t.Errorf("%s cores=%d BAMX conversion differs from reference", format, cores)
			}
		}
	}
}

func TestConvertBAMXPartial(t *testing.T) {
	_, bamPath, d := writeDataset(t, 600)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "in.bamx")
	baixPath := filepath.Join(dir, "in.baix")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, baixPath); err != nil {
		t.Fatal(err)
	}
	region := Region{RName: "chr1", Beg: 1, End: 100000}
	res, err := ConvertBAMX(bamxPath, baixPath, Options{
		Format: "sam", Cores: 3, OutDir: t.TempDir(), OutPrefix: "t",
		Region: &region,
	})
	if err != nil {
		t.Fatalf("partial ConvertBAMX: %v", err)
	}
	got := concatFiles(t, res.Files)
	// Reference: records starting within the region, in BAIX (position)
	// order, prefixed by the SAM header.
	enc, _ := formats.New("sam")
	var want []byte
	want = append(want, enc.Header(d.Header)...)
	var selected []sam.Record
	for i := range d.Records {
		r := d.Records[i]
		if !r.Unmapped() && r.RName == region.RName && r.Pos >= region.Beg && r.Pos <= region.End {
			selected = append(selected, r)
		}
	}
	sort.SliceStable(selected, func(i, j int) bool { return selected[i].Pos < selected[j].Pos })
	for i := range selected {
		var err error
		want, err = enc.Encode(want, &selected[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(selected) == 0 {
		t.Fatal("test region selected no records; enlarge it")
	}
	if got != string(want) {
		t.Errorf("partial conversion differs: got %d bytes, want %d (%d records)",
			len(got), len(want), len(selected))
	}
	if res.Stats.Records != int64(len(selected)) {
		t.Errorf("Records = %d, want %d", res.Stats.Records, len(selected))
	}
}

func TestConvertBAMXPartialWithoutBAIXFallsBack(t *testing.T) {
	_, bamPath, _ := writeDataset(t, 100)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "in.bamx")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, filepath.Join(dir, "in.baix")); err != nil {
		t.Fatal(err)
	}
	// Point at a missing BAIX: index is rebuilt by scanning.
	res, err := ConvertBAMX(bamxPath, filepath.Join(dir, "missing.baix"), Options{
		Format: "bed", Cores: 2, OutDir: t.TempDir(), OutPrefix: "t",
		Region: &Region{RName: "chr2", Beg: 1},
	})
	if err != nil {
		t.Fatalf("ConvertBAMX without BAIX: %v", err)
	}
	if res.Stats.Records == 0 {
		t.Error("no records converted via rebuilt index")
	}
}

func TestConvertBAMXUnknownRegionRef(t *testing.T) {
	_, bamPath, _ := writeDataset(t, 50)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "in.bamx")
	baixPath := filepath.Join(dir, "in.baix")
	if _, err := PreprocessBAMFile(bamPath, bamxPath, baixPath); err != nil {
		t.Fatal(err)
	}
	_, err := ConvertBAMX(bamxPath, baixPath, Options{
		Format: "bed", OutDir: t.TempDir(),
		Region: &Region{RName: "chrNope", Beg: 1},
	})
	if err == nil {
		t.Error("unknown region reference succeeded")
	}
}

func TestPreprocessedSAMConverterMatchesReference(t *testing.T) {
	samPath, _, d := writeDataset(t, 400)
	for _, preCores := range []int{1, 3} {
		outDir := t.TempDir()
		res, err := ConvertSAMPreprocessed(samPath, preCores, Options{
			Format: "fasta", Cores: 2, OutDir: outDir, OutPrefix: "t",
		})
		if err != nil {
			t.Fatalf("ConvertSAMPreprocessed(M=%d): %v", preCores, err)
		}
		// M BAMX files × N ranks of output files.
		if len(res.Files) != preCores*2 {
			t.Errorf("files = %d, want %d", len(res.Files), preCores*2)
		}
		if res.Stats.PreprocessTime <= 0 {
			t.Error("PreprocessTime not recorded")
		}
		got := concatFiles(t, res.Files)
		// The fasta encoder writes no header, so concatenation in
		// (M, rank) order equals the sequential reference.
		if want := expected(t, d, "fasta"); got != want {
			t.Errorf("M=%d preprocessed conversion differs from reference", preCores)
		}
	}
}

func TestPreprocessSAMParallelProducesValidBAMX(t *testing.T) {
	samPath, _, d := writeDataset(t, 300)
	outDir := t.TempDir()
	pre, err := PreprocessSAMParallel(samPath, outDir, "pp", 4)
	if err != nil {
		t.Fatalf("PreprocessSAMParallel: %v", err)
	}
	if len(pre.BAMXFiles) != 4 || len(pre.BAIXFiles) != 4 {
		t.Fatalf("file counts = %d/%d", len(pre.BAMXFiles), len(pre.BAIXFiles))
	}
	if pre.Records != 300 {
		t.Errorf("Records = %d, want 300", pre.Records)
	}
	// Converting the shards sequentially reproduces the dataset.
	res, err := ConvertPreprocessed(pre.BAMXFiles, pre.BAIXFiles, Options{
		Format: "fastq", Cores: 1, OutDir: t.TempDir(), OutPrefix: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := concatFiles(t, res.Files)
	if want := expected(t, d, "fastq"); got != want {
		t.Error("sharded conversion differs from reference")
	}
}

func TestConvertPreprocessedEmptyInput(t *testing.T) {
	if _, err := ConvertPreprocessed(nil, nil, Options{Format: "bed", OutDir: t.TempDir()}); err == nil {
		t.Error("ConvertPreprocessed with no files succeeded")
	}
}

func TestStatsEmittedExcludesSkipped(t *testing.T) {
	// BED skips unmapped records; Emitted must be less than Records.
	samPath, _, d := writeDataset(t, 1000)
	unmapped := 0
	for i := range d.Records {
		if d.Records[i].Unmapped() {
			unmapped++
		}
	}
	if unmapped == 0 {
		t.Skip("dataset has no unmapped records")
	}
	res, err := ConvertSAM(samPath, Options{Format: "bed", Cores: 2, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Emitted != res.Stats.Records-int64(unmapped) {
		t.Errorf("Emitted = %d, Records = %d, unmapped = %d",
			res.Stats.Emitted, res.Stats.Records, unmapped)
	}
}

func TestScanHeaderHeaderless(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "h.sam")
	line := "r1\t0\tchr1\t1\t30\t4M\t*\t0\t0\tACGT\tIIII\n"
	if err := os.WriteFile(p, []byte("@SQ\tSN:chr1\tLN:100\n"+line), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, off, err := scanHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len("@SQ\tSN:chr1\tLN:100\n")) {
		t.Errorf("offset = %d", off)
	}
	if len(h.Refs) != 1 {
		t.Errorf("refs = %d", len(h.Refs))
	}
}

func TestConvertSAMManyMoreCoresThanRecords(t *testing.T) {
	samPath, _, d := writeDataset(t, 5)
	res, err := ConvertSAM(samPath, Options{Format: "sam", Cores: 16, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := concatFiles(t, res.Files), expected(t, d, "sam"); got != want {
		t.Error("over-partitioned conversion differs")
	}
}

func TestOutputFileNaming(t *testing.T) {
	samPath, _, _ := writeDataset(t, 20)
	dir := t.TempDir()
	res, err := ConvertSAM(samPath, Options{Format: "bed", Cores: 2, OutDir: dir, OutPrefix: "myrun"})
	if err != nil {
		t.Fatal(err)
	}
	for rank, f := range res.Files {
		base := filepath.Base(f)
		if !strings.HasPrefix(base, "myrun_p") || !strings.HasSuffix(base, ".bed") {
			t.Errorf("rank %d file = %q", rank, base)
		}
	}
}
