package conv

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"parseq/internal/bam"
	"parseq/internal/mpi"
	"parseq/internal/obs"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// ConvertSAMToBAM converts a SAM file into BAM in parallel: Algorithm 1
// partitions the text, each rank encodes its records into a separate BAM
// shard (each a complete, valid BAM file carrying the header), and the
// shards can be fused with MergeBAMShards. This is the converter's
// binary-target path — SAM/BAM is in the paper's target-format list
// alongside the text formats.
func ConvertSAMToBAM(samPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.Region != nil {
		return nil, fmt.Errorf("conv: SAM→BAM does not support partial conversion; preprocess to BAMX first")
	}
	f, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	header, dataStart, err := scanHeader(f)
	if err != nil {
		return nil, err
	}

	var res Result
	res.Files = make([]string, opts.Cores)
	var tally counters
	ph := obs.NewPhaseSet(obs.Default())
	err = opts.launch()(opts.Cores, func(c *mpi.Comm) error {
		psp := ph.Start(c.Rank(), "partition")
		br, err := partition.SAMForwardMPI(c, f, dataStart, fi.Size())
		psp.End()
		if err != nil {
			return err
		}
		addBytesTotal(br.Len()) // the /progress ETA denominator
		csp := ph.Start(c.Rank(), "convert")
		defer csp.End()
		outPath := filepath.Join(opts.OutDir, fmt.Sprintf("%s_p%03d.bam", opts.OutPrefix, c.Rank()))
		n, bytesOut, err := encodeSAMRangeToBAM(samPath, br, header, outPath, &opts)
		if err != nil {
			return err
		}
		tally.records.Add(n)
		tally.emitted.Add(n)
		tally.bytesIn.Add(br.Len())
		tally.bytesOut.Add(bytesOut)
		res.Files[c.Rank()] = outPath
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.PartitionTime = ph.Wall("partition")
	res.Stats.ConvertTime = ph.Wall("convert")
	tally.into(&res.Stats)
	return &res, nil
}

// encodeSAMRangeToBAM encodes one text partition as a standalone BAM
// file. With ParseWorkers > 1 the parse and record encode fan out
// across the batch pipeline (pipeline.go) and the shard writer receives
// pre-encoded batches; the loop below is the sequential baseline. In
// either case an adaptive CodecWorkers attaches the shard's compression
// to the process-wide shared deflate pool.
func encodeSAMRangeToBAM(samPath string, br partition.ByteRange, h *sam.Header, outPath string, opts *Options) (int64, int64, error) {
	if opts.ParseWorkers > 1 {
		return encodeSAMRangeToBAMPipelined(samPath, br, h, outPath, opts)
	}
	in, err := os.Open(samPath)
	if err != nil {
		return 0, 0, err
	}
	defer in.Close()

	out, err := os.Create(outPath)
	if err != nil {
		return 0, 0, err
	}
	bw, err := bam.NewWriter(out, h, shardCodecOptions(opts)...)
	if err != nil {
		out.Close()
		return 0, 0, err
	}
	n := int64(0)
	var rec sam.Record
	scan := newLineScanner(io.NewSectionReader(in, br.Start, br.Len()), br.Start)
	live := newLiveProgress()
	var flushedN, flushedIn int64
	flush := func() {
		live.batch(n-flushedN, scan.pos-flushedIn, 0)
		flushedN, flushedIn = n, scan.pos
	}
	defer flush()
	for scan.Scan() {
		line := scan.Text()
		if line == "" {
			continue
		}
		if err := sam.ParseRecordInto(&rec, line); err != nil {
			bw.Close() // release codec workers before abandoning the shard
			out.Close()
			return 0, 0, err
		}
		if err := bw.Write(&rec); err != nil {
			bw.Close()
			out.Close()
			return 0, 0, err
		}
		if n++; n%liveFlushEvery == 0 {
			flush()
		}
	}
	if err := scan.Err(); err != nil {
		bw.Close()
		out.Close()
		return 0, 0, err
	}
	if err := bw.Close(); err != nil {
		out.Close()
		return 0, 0, err
	}
	fi, err := out.Stat()
	if err != nil {
		out.Close()
		return 0, 0, err
	}
	return n, fi.Size(), out.Close()
}

// MergeBAMShards fuses per-rank BAM shards (which share one header) into
// a single BAM file, streaming records in shard order.
func MergeBAMShards(shardPaths []string, outPath string) (int64, error) {
	return MergeBAMShardsWorkers(shardPaths, outPath, 0)
}

// MergeBAMShardsWorkers is MergeBAMShards with both the shard decode and
// the fused encode running codecWorkers BGZF goroutines per stream.
func MergeBAMShardsWorkers(shardPaths []string, outPath string, codecWorkers int) (int64, error) {
	if len(shardPaths) == 0 {
		return 0, fmt.Errorf("conv: no shards to merge")
	}
	first, err := os.Open(shardPaths[0])
	if err != nil {
		return 0, err
	}
	firstReader, err := bam.NewReader(first)
	if err != nil {
		first.Close()
		return 0, err
	}
	header := firstReader.Header()
	firstReader.Close()
	first.Close()

	out, err := os.Create(outPath)
	if err != nil {
		return 0, err
	}
	bw, err := bam.NewWriter(out, header, bam.WithCodecWorkers(codecWorkers))
	if err != nil {
		out.Close()
		return 0, err
	}
	var total int64
	var rec sam.Record
	fail := func(f *os.File, r *bam.Reader, err error) (int64, error) {
		if r != nil {
			r.Close()
		}
		if f != nil {
			f.Close()
		}
		bw.Close()
		out.Close()
		return total, err
	}
	for _, shard := range shardPaths {
		f, err := os.Open(shard)
		if err != nil {
			return fail(nil, nil, err)
		}
		r, err := bam.NewReader(f, bam.WithCodecWorkers(codecWorkers))
		if err != nil {
			return fail(f, nil, err)
		}
		if len(r.Header().Refs) != len(header.Refs) {
			return fail(f, r, fmt.Errorf("conv: shard %s has %d references, expected %d",
				shard, len(r.Header().Refs), len(header.Refs)))
		}
		for {
			if err := r.ReadInto(&rec); err == io.EOF {
				break
			} else if err != nil {
				return fail(f, r, err)
			}
			if err := bw.Write(&rec); err != nil {
				return fail(f, r, err)
			}
			total++
		}
		r.Close()
		f.Close()
	}
	if err := bw.Close(); err != nil {
		out.Close()
		return total, err
	}
	return total, out.Close()
}
