package conv

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"parseq/internal/formats"
	"parseq/internal/mpi"
	"parseq/internal/obs"
	"parseq/internal/partition"
	"parseq/internal/sam"
)

// scanHeader reads the header section of a SAM file and returns the
// parsed header plus the byte offset where alignment data starts.
func scanHeader(f *os.File) (*sam.Header, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	h := sam.NewHeader()
	br := bufio.NewReaderSize(f, 64<<10)
	var offset int64
	for {
		peek, err := br.Peek(1)
		if err == io.EOF {
			return h, offset, nil
		}
		if err != nil {
			return nil, 0, err
		}
		if peek[0] != '@' {
			return h, offset, nil
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		offset += int64(len(line))
		trimmed := line
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
			trimmed = trimmed[:n-1]
		}
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\r' {
			trimmed = trimmed[:n-1]
		}
		if err := h.ParseHeaderLine(trimmed); err != nil {
			return nil, 0, err
		}
		if err == io.EOF {
			return h, offset, nil
		}
	}
}

// ConvertSAM is the paper's SAM format converter: the input file is
// evenly partitioned by bytes with Algorithm 1's line-breaker adjustment,
// and each rank independently parses its partition's records and emits
// target objects to its own file. There is no inter-rank communication
// after partitioning.
func ConvertSAM(samPath string, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.Region != nil {
		return nil, fmt.Errorf("conv: the SAM format converter does not support partial conversion; preprocess to BAMX first")
	}
	enc, err := formats.New(opts.Format)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	header, dataStart, err := scanHeader(f)
	if err != nil {
		return nil, err
	}

	var res Result
	res.Files = make([]string, opts.Cores)
	var tally counters

	// Phase spans carry the timing decomposition on every rank, not just
	// rank 0: PartitionTime/ConvertTime are the spans' wall-clock windows
	// across ranks, and the same spans land in the trace when enabled.
	ph := obs.NewPhaseSet(obs.Default())
	err = opts.launch()(opts.Cores, func(c *mpi.Comm) error {
		psp := ph.Start(c.Rank(), "partition")
		br, err := partition.SAMForwardMPI(c, f, dataStart, fi.Size())
		psp.End()
		if err != nil {
			return err
		}
		addBytesTotal(br.Len()) // the /progress ETA denominator
		csp := ph.Start(c.Rank(), "convert")
		defer csp.End()
		stats, err := convertSAMRange(samPath, br, header, enc, &opts, c.Rank())
		if err != nil {
			return err
		}
		tally.records.Add(stats.records)
		tally.emitted.Add(stats.emitted)
		tally.bytesIn.Add(br.Len())
		tally.bytesOut.Add(stats.bytesOut)
		res.Files[c.Rank()] = opts.outPath(enc.Extension(), c.Rank())
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.PartitionTime = ph.Wall("partition")
	res.Stats.ConvertTime = ph.Wall("convert")
	tally.into(&res.Stats)
	return &res, nil
}

type rangeStats struct {
	records  int64
	emitted  int64
	bytesOut int64
}

// convertSAMRange is one rank's work: stream the byte range through the
// read buffer, parse each line into an alignment object, run the user
// program and write to the rank's target file. With ParseWorkers > 1
// the work pipelines across a scan goroutine, parse+encode workers and
// an in-order drain (pipeline.go); the sequential loop below is the
// ParseWorkers == 1 baseline, byte-identical by construction.
func convertSAMRange(samPath string, br partition.ByteRange, h *sam.Header,
	enc formats.Encoder, opts *Options, rank int) (rangeStats, error) {

	if opts.ParseWorkers > 1 {
		return convertSAMRangePipelined(samPath, br, h, opts, rank)
	}

	var stats rangeStats
	in, err := os.Open(samPath)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	section := io.NewSectionReader(in, br.Start, br.Len())

	w, err := newRankWriter(opts, enc, h, rank)
	if err != nil {
		return stats, err
	}

	scan := newLineScanner(section, br.Start)
	live := newLiveProgress()
	var flushed struct{ records, bytesIn, bytesOut int64 }
	flush := func() {
		live.batch(stats.records-flushed.records, scan.pos-flushed.bytesIn, w.n-flushed.bytesOut)
		flushed.records, flushed.bytesIn, flushed.bytesOut = stats.records, scan.pos, w.n
	}
	defer flush()
	var rec sam.Record
	var out []byte
	for scan.Scan() {
		line := scan.Text()
		if line == "" {
			continue
		}
		if err := sam.ParseRecordInto(&rec, line); err != nil {
			w.close()
			return stats, err
		}
		stats.records++
		// Periodic flush keeps /progress live without an atomic per line.
		if stats.records%liveFlushEvery == 0 {
			flush()
		}
		var emitted bool
		out, emitted, err = w.emit(out, &rec, h)
		if err != nil {
			w.close()
			return stats, err
		}
		if emitted {
			stats.emitted++
		}
	}
	if err := scan.Err(); err != nil {
		w.close()
		return stats, err
	}
	stats.bytesOut = w.n
	return stats, w.close()
}
