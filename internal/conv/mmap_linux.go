//go:build linux

package conv

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only and returns the mapping plus its unmap
// function. The pipelined converter parses straight out of the page
// cache through it: no read syscalls, no kernel→user copy, no chunk
// buffers. Callers fall back to streamed reads when mapping fails
// (empty file, pipe, filesystem without mmap).
func mmapFile(f *os.File) ([]byte, func(), error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	// The converter walks the partition front to back; tell the kernel
	// so readahead stays aggressive.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	return data, func() { _ = syscall.Munmap(data) }, nil
}
