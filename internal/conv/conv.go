// Package conv implements the paper's scalable sequence data format
// converter: the runtime system (partitioning, read buffers, textual/
// binary parsing, write buffers, per-processor target files) and the
// three converter instances of Section III —
//
//   - the SAM format converter (Algorithm 1 byte partitioning),
//   - the BAM format converter (sequential BAMX/BAIX preprocessing, then
//     embarrassingly parallel conversion with partial-conversion support),
//   - the preprocessing-optimized SAM format converter (parallel SAM→BAMX
//     preprocessing, then BAMX-based conversion).
//
// The "user program" side is a formats.Encoder: converting into a new
// format means writing one Encode function; partitioning, concurrency and
// file management stay in this runtime.
package conv

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"parseq/internal/bgzf"
	"parseq/internal/formats"
	"parseq/internal/mpi"
	"parseq/internal/sam"
)

// Region selects a chromosome region for partial conversion, 1-based
// inclusive on both ends. A zero End means "to the end of the reference".
type Region struct {
	RName string
	Beg   int32
	End   int32
}

// String renders the region in samtools syntax.
func (r Region) String() string {
	if r.End == 0 {
		return fmt.Sprintf("%s:%d-", r.RName, r.Beg)
	}
	return fmt.Sprintf("%s:%d-%d", r.RName, r.Beg, r.End)
}

// ParseRegion parses "chr1", "chr1:100-200" or "chr1:100-".
func ParseRegion(s string) (Region, error) {
	var r Region
	colon := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			colon = i
			break
		}
	}
	if colon < 0 {
		if s == "" {
			return r, fmt.Errorf("conv: empty region")
		}
		return Region{RName: s, Beg: 1}, nil
	}
	r.RName = s[:colon]
	if r.RName == "" {
		return r, fmt.Errorf("conv: region %q has no reference name", s)
	}
	rest := s[colon+1:]
	dash := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == '-' {
			dash = i
			break
		}
	}
	parse := func(t string) (int32, error) {
		var n int64
		if t == "" {
			return 0, fmt.Errorf("conv: empty coordinate in region %q", s)
		}
		for i := 0; i < len(t); i++ {
			if t[i] < '0' || t[i] > '9' {
				return 0, fmt.Errorf("conv: bad coordinate %q in region %q", t, s)
			}
			n = n*10 + int64(t[i]-'0')
			if n > 1<<31-1 {
				return 0, fmt.Errorf("conv: coordinate overflow in region %q", s)
			}
		}
		return int32(n), nil
	}
	if dash < 0 {
		beg, err := parse(rest)
		if err != nil {
			return r, err
		}
		r.Beg, r.End = beg, beg
		return r, nil
	}
	beg, err := parse(rest[:dash])
	if err != nil {
		return r, err
	}
	r.Beg = beg
	if rest[dash+1:] != "" {
		end, err := parse(rest[dash+1:])
		if err != nil {
			return r, err
		}
		if end < beg {
			return r, fmt.Errorf("conv: inverted region %q", s)
		}
		r.End = end
	}
	return r, nil
}

// Options configures one conversion.
type Options struct {
	// Format is the target format name (see formats.Names).
	Format string
	// Cores is the number of parallel ranks; 0 or 1 means sequential.
	Cores int
	// OutDir receives the per-rank target files.
	OutDir string
	// OutPrefix names the target files: <OutPrefix>_p<rank><ext>.
	OutPrefix string
	// Region restricts conversion to one chromosome region (partial
	// conversion). Only the BAMX-based converters support it.
	Region *Region
	// CodecWorkers is the number of BGZF codec goroutines used wherever
	// BAM streams are read or written. 0 (the default) selects the
	// adaptive count — one worker per CPU, capped (bgzf.AutoWorkers) —
	// so CLIs get the parallel codec without flags; 1 forces the
	// sequential codec (the paper-faithful baseline). The codec
	// parallelism is orthogonal to Cores: Cores splits records across
	// ranks, CodecWorkers pipelines block compression/decompression
	// under each stream.
	CodecWorkers int
	// ParseWorkers is the per-rank parse/encode worker count of the
	// pipelined converter: each rank's partition is scanned into ~64 KiB
	// batches of whole lines, ParseWorkers goroutines parse and encode
	// the batches in place (zero per-line allocation), and a single
	// writer drains them in input order — output bytes and error
	// behaviour are identical to the sequential loop's. 0 (the default)
	// selects the adaptive count, GOMAXPROCS/Cores clamped to [1, 8];
	// 1 forces the line-at-a-time sequential loop (the paper-faithful
	// baseline). With ParseWorkers > 1, user formats registered via
	// formats.Register get one encoder instance per worker, so their
	// Encode must not rely on cross-record state.
	ParseWorkers int
	// Launch runs the converter's rank function across the world. Nil
	// (the default) selects mpi.Run — Cores goroutine ranks in this
	// process. A distributed launcher (mpinet.World.Launcher) executes
	// only the local process's rank, so Files, Stats and the shared
	// tally cover this rank alone; the per-rank target files on disk
	// are the cross-process ground truth.
	Launch mpi.Launcher

	// sharedCodec records that CodecWorkers was left at the adaptive
	// default: the short-lived per-rank BAM shard writers then attach to
	// the process-wide bgzf.SharedPool (sized from measured bytes/s per
	// worker) instead of each starting a private pool.
	sharedCodec bool
}

func (o *Options) normalize() error {
	if o.Format == "" {
		o.Format = "sam"
	}
	if o.Cores < 1 {
		o.Cores = 1
	}
	if o.CodecWorkers <= 0 {
		o.CodecWorkers = bgzf.AutoWorkers()
		o.sharedCodec = true
	}
	if o.ParseWorkers <= 0 {
		o.ParseWorkers = adaptiveParseWorkers(o.Cores)
	}
	if o.OutDir == "" {
		o.OutDir = "."
	}
	if o.OutPrefix == "" {
		o.OutPrefix = "out"
	}
	return nil
}

// launch resolves the Launch option, defaulting to the in-process world.
func (o *Options) launch() mpi.Launcher {
	if o.Launch != nil {
		return o.Launch
	}
	return mpi.Run
}

// outPath names rank r's target file.
func (o *Options) outPath(ext string, rank int) string {
	return filepath.Join(o.OutDir, fmt.Sprintf("%s_p%03d%s", o.OutPrefix, rank, ext))
}

// Stats aggregates counters over all ranks of a conversion.
type Stats struct {
	Records  int64 // alignment objects parsed
	Emitted  int64 // target objects written (skipped records excluded)
	BytesIn  int64 // input bytes consumed
	BytesOut int64 // target bytes written

	PartitionTime  time.Duration // Algorithm 1 / BAIX partitioning
	ConvertTime    time.Duration // parallel conversion phase (wall clock)
	PreprocessTime time.Duration // preprocessing phase, when one ran
}

// Result reports a completed conversion.
type Result struct {
	Files []string // per-rank target files, rank order
	Stats Stats
}

// counters is the shared atomic tally ranks add into.
type counters struct {
	records  atomic.Int64
	emitted  atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

func (c *counters) into(s *Stats) {
	s.Records = c.records.Load()
	s.Emitted = c.emitted.Load()
	s.BytesIn = c.bytesIn.Load()
	s.BytesOut = c.bytesOut.Load()
}

// writeBufSize is the per-rank write buffer (the paper's "write buffer"
// between the user program and the target file). One megabyte keeps
// the write syscall count low enough that the pipelined converter's
// drain stage is not syscall-bound when batches arrive back to back.
const writeBufSize = 1 << 20

// rankWriter is one rank's buffered target file.
type rankWriter struct {
	f   *os.File
	bw  *bufio.Writer
	n   int64
	enc formats.Encoder
}

// newRankWriter creates rank r's target file; rank 0 carries the format's
// prologue (e.g. the SAM header or the BEDGRAPH track line).
func newRankWriter(opts *Options, enc formats.Encoder, h *sam.Header, rank int) (*rankWriter, error) {
	f, err := os.Create(opts.outPath(enc.Extension(), rank))
	if err != nil {
		return nil, err
	}
	w := &rankWriter{f: f, bw: bufio.NewWriterSize(f, writeBufSize), enc: enc}
	if rank == 0 {
		if hdr := enc.Header(h); len(hdr) > 0 {
			if _, err := w.bw.Write(hdr); err != nil {
				f.Close()
				return nil, err
			}
			w.n += int64(len(hdr))
		}
	}
	return w, nil
}

// emit converts one record and writes the target object, reusing buf.
func (w *rankWriter) emit(buf []byte, rec *sam.Record, h *sam.Header) ([]byte, bool, error) {
	out, err := w.enc.Encode(buf[:0], rec, h)
	if err != nil {
		return buf, false, err
	}
	if len(out) == 0 {
		return out, false, nil
	}
	if _, err := w.bw.Write(out); err != nil {
		return out, false, err
	}
	w.n += int64(len(out))
	return out, true, nil
}

// writeBatch writes one pre-encoded run of target bytes. Batch-sized
// runs from the pipelined drain go straight to the file — copying a
// 256 KiB run through the bufio buffer only to flush it moments later
// would memmove the entire output once for nothing — while small runs
// keep the buffer's syscall batching.
func (w *rankWriter) writeBatch(p []byte) error {
	if len(p) < 64<<10 {
		if _, err := w.bw.Write(p); err != nil {
			return err
		}
		w.n += int64(len(p))
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if _, err := w.f.Write(p); err != nil {
		return err
	}
	w.n += int64(len(p))
	return nil
}

func (w *rankWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
