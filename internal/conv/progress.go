// Live conversion progress. The converter's result structs report
// totals only after a range finishes; the observability plane wants the
// numbers while the run is in flight, so the drain loops also bump
// process-wide counters per batch:
//
//	conv.records      records converted so far
//	conv.bytes_in     input bytes consumed
//	conv.bytes_out    output bytes produced
//	conv.bytes_total  input bytes this process's ranks own (gauge)
//
// The /progress endpoint turns these into records/s, bytes/s, completion
// and ETA, and rank 0's straggler detection compares conv.records across
// ranks. All handles are nil-safe: with telemetry disabled the per-batch
// cost is a few nil checks.
package conv

import "parseq/internal/obs"

// liveProgress memoises the counter handles once per drain loop, so the
// per-batch hot path skips the registry's name lookup.
type liveProgress struct {
	records  *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

func newLiveProgress() liveProgress {
	reg := obs.Default()
	return liveProgress{
		records:  reg.Counter("conv.records"),
		bytesIn:  reg.Counter("conv.bytes_in"),
		bytesOut: reg.Counter("conv.bytes_out"),
	}
}

// batch records one drained batch's tallies.
func (lp *liveProgress) batch(records, bytesIn, bytesOut int64) {
	lp.records.Add(records)
	lp.bytesIn.Add(bytesIn)
	lp.bytesOut.Add(bytesOut)
}

// liveFlushEvery is the sequential loop's counter-flush period in
// records: frequent enough that /progress tracks a live run, rare
// enough that the atomics vanish in the per-line parse cost.
const liveFlushEvery = 4096

// addBytesTotal grows the ETA denominator by one rank's input share.
func addBytesTotal(n int64) {
	obs.Default().Gauge("conv.bytes_total").Add(n)
}
