// Package fastq reads and writes the FASTA and FASTQ sequence formats,
// closing the converter's loop: the files the converter emits can be
// read back, validated and fed to downstream tools. FASTA sequences may
// span multiple lines; FASTQ records are the conventional four-line form
// with free-text "+" separators tolerated.
package fastq

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Record is one sequence entry. Qual is empty for FASTA records.
type Record struct {
	Name string // without the '>' or '@' marker
	Seq  string
	Qual string
}

// IsFASTQ reports whether the record carries qualities.
func (r Record) IsFASTQ() bool { return r.Qual != "" }

// Format identifies the detected stream format.
type Format int

// Stream formats.
const (
	FormatUnknown Format = iota
	FormatFASTA
	FormatFASTQ
)

// ErrMalformed reports a syntactically invalid stream.
var ErrMalformed = errors.New("fastq: malformed input")

// Reader streams FASTA or FASTQ records, auto-detecting the format from
// the first record marker.
type Reader struct {
	br     *bufio.Reader
	format Format
	line   int
	err    error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Detected returns the stream format once the first record has been read.
func (r *Reader) Detected() Format { return r.format }

func (r *Reader) readLine() (string, error) {
	line, err := r.br.ReadString('\n')
	if line == "" && err != nil {
		return "", err
	}
	r.line++
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// peekByte returns the next byte without consuming it.
func (r *Reader) peekByte() (byte, error) {
	b, err := r.br.Peek(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Read returns the next record, or io.EOF.
func (r *Reader) Read() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	// Skip blank lines between records.
	for {
		b, err := r.peekByte()
		if err != nil {
			r.err = err
			return Record{}, err
		}
		if b == '\n' || b == '\r' {
			if _, err := r.readLine(); err != nil {
				r.err = err
				return Record{}, err
			}
			continue
		}
		switch b {
		case '>':
			if r.format == FormatFASTQ {
				r.err = fmt.Errorf("%w: FASTA record in FASTQ stream at line %d", ErrMalformed, r.line+1)
				return Record{}, r.err
			}
			r.format = FormatFASTA
			return r.readFASTA()
		case '@':
			if r.format == FormatFASTA {
				r.err = fmt.Errorf("%w: FASTQ record in FASTA stream at line %d", ErrMalformed, r.line+1)
				return Record{}, r.err
			}
			r.format = FormatFASTQ
			return r.readFASTQ()
		default:
			r.err = fmt.Errorf("%w: unexpected %q at line %d", ErrMalformed, b, r.line+1)
			return Record{}, r.err
		}
	}
}

// readFASTA consumes one '>' header plus sequence lines until the next
// header or EOF.
func (r *Reader) readFASTA() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		r.err = err
		return Record{}, err
	}
	rec := Record{Name: strings.TrimPrefix(header, ">")}
	var seq strings.Builder
	for {
		b, err := r.peekByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.err = err
			return Record{}, err
		}
		if b == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil {
			r.err = err
			return Record{}, err
		}
		seq.WriteString(strings.TrimSpace(line))
	}
	rec.Seq = seq.String()
	if rec.Seq == "" {
		return Record{}, fmt.Errorf("%w: empty FASTA sequence for %q", ErrMalformed, rec.Name)
	}
	return rec, nil
}

// readFASTQ consumes the four-line record form.
func (r *Reader) readFASTQ() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		r.err = err
		return Record{}, err
	}
	seq, err := r.readLine()
	if err != nil {
		r.err = fmt.Errorf("%w: truncated FASTQ record %q", ErrMalformed, header)
		return Record{}, r.err
	}
	plus, err := r.readLine()
	if err != nil || !strings.HasPrefix(plus, "+") {
		r.err = fmt.Errorf("%w: missing '+' line for %q", ErrMalformed, header)
		return Record{}, r.err
	}
	qual, err := r.readLine()
	if err != nil {
		r.err = fmt.Errorf("%w: missing quality line for %q", ErrMalformed, header)
		return Record{}, r.err
	}
	if len(qual) != len(seq) {
		r.err = fmt.Errorf("%w: %q SEQ/QUAL length mismatch (%d vs %d)",
			ErrMalformed, header, len(seq), len(qual))
		return Record{}, r.err
	}
	return Record{
		Name: strings.TrimPrefix(header, "@"),
		Seq:  seq,
		Qual: qual,
	}, nil
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Writer emits FASTA or FASTQ records.
type Writer struct {
	bw        *bufio.Writer
	lineWidth int // FASTA wrap width; ≤ 0 means unwrapped
}

// NewWriter wraps w. lineWidth sets FASTA sequence wrapping (0 = none).
func NewWriter(w io.Writer, lineWidth int) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10), lineWidth: lineWidth}
}

// WriteFASTA emits rec as a FASTA entry.
func (w *Writer) WriteFASTA(rec Record) error {
	if _, err := fmt.Fprintf(w.bw, ">%s\n", rec.Name); err != nil {
		return err
	}
	seq := rec.Seq
	if w.lineWidth <= 0 {
		_, err := fmt.Fprintf(w.bw, "%s\n", seq)
		return err
	}
	for len(seq) > 0 {
		n := w.lineWidth
		if n > len(seq) {
			n = len(seq)
		}
		if _, err := fmt.Fprintf(w.bw, "%s\n", seq[:n]); err != nil {
			return err
		}
		seq = seq[n:]
	}
	return nil
}

// WriteFASTQ emits rec as a FASTQ entry.
func (w *Writer) WriteFASTQ(rec Record) error {
	if len(rec.Qual) != len(rec.Seq) {
		return fmt.Errorf("%w: %q SEQ/QUAL length mismatch", ErrMalformed, rec.Name)
	}
	_, err := fmt.Fprintf(w.bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, rec.Qual)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }
