package fastq

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"parseq/internal/formats"
	"parseq/internal/simdata"
)

func TestReadFASTQ(t *testing.T) {
	in := "@r1/1\nACGT\n+\nIIII\n@r2\nGG\n+r2 comment\nAB\n"
	r := NewReader(strings.NewReader(in))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if r.Detected() != FormatFASTQ {
		t.Errorf("Detected = %v", r.Detected())
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Name != "r1/1" || recs[0].Seq != "ACGT" || recs[0].Qual != "IIII" {
		t.Errorf("recs[0] = %+v", recs[0])
	}
	if !recs[0].IsFASTQ() {
		t.Error("IsFASTQ = false")
	}
	if recs[1].Qual != "AB" {
		t.Errorf("recs[1] = %+v", recs[1])
	}
}

func TestReadFASTAMultiline(t *testing.T) {
	in := ">seq one\nACGT\nACGT\n\n>seq2\nGGGG\n"
	r := NewReader(strings.NewReader(in))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if r.Detected() != FormatFASTA {
		t.Errorf("Detected = %v", r.Detected())
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Name != "seq one" || recs[0].Seq != "ACGTACGT" {
		t.Errorf("recs[0] = %+v", recs[0])
	}
	if recs[0].IsFASTQ() {
		t.Error("FASTA record claims qualities")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"not a record\n",
		"@r1\nACGT\nIIII\n",         // missing '+'
		"@r1\nACGT\n+\nII\n",        // qual length mismatch
		"@r1\nACGT\n+\n",            // truncated
		">empty\n>next\nAC\n",       // empty FASTA sequence
		"@q\nAC\n+\nII\n>mix\nAC\n", // format mix
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		if _, err := r.ReadAll(); !errors.Is(err, ErrMalformed) && err == nil {
			t.Errorf("ReadAll(%q) accepted", in)
		}
	}
}

func TestWriteFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "a", Seq: strings.Repeat("ACGT", 30)},
		{Name: "b desc", Seq: "GG"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 60)
	for _, rec := range recs {
		if err := w.WriteFASTA(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wrapping happened.
	if !strings.Contains(buf.String(), "\nACGTACGT") {
		t.Errorf("no wrapped lines:\n%s", buf.String())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != recs[0].Seq || got[1].Name != "b desc" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestWriteFASTQValidation(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 0)
	if err := w.WriteFASTQ(Record{Name: "x", Seq: "ACGT", Qual: "II"}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// The converter's FASTQ output must read back with one record per
// primary alignment.
func TestConverterFASTQOutputReadsBack(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(300))
	enc, err := formats.New("fastq")
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	want := 0
	for i := range d.Records {
		before := len(out)
		out, err = enc.Encode(out, &d.Records[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > before {
			want++
		}
	}
	recs, err := NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll over converter output: %v", err)
	}
	if len(recs) != want {
		t.Errorf("read %d records, converter emitted %d", len(recs), want)
	}
	for i, rec := range recs {
		if len(rec.Seq) != 90 || len(rec.Qual) != 90 {
			t.Fatalf("record %d lengths %d/%d", i, len(rec.Seq), len(rec.Qual))
		}
	}
}

// Same for FASTA output.
func TestConverterFASTAOutputReadsBack(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(200))
	enc, err := formats.New("fasta")
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for i := range d.Records {
		out, err = enc.Encode(out, &d.Records[i], d.Header)
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll over converter output: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records read back")
	}
}

// Property: FASTQ write→read is the identity for clean records.
func TestFASTQRoundTripProperty(t *testing.T) {
	f := func(nameSeed, seqSeed []byte) bool {
		if len(seqSeed) == 0 {
			seqSeed = []byte{0}
		}
		const bases = "ACGTN"
		name := "r"
		for _, b := range nameSeed {
			if b > 0x20 && b < 0x7f {
				name += string(b)
			}
		}
		seq := make([]byte, len(seqSeed))
		qual := make([]byte, len(seqSeed))
		for i, b := range seqSeed {
			seq[i] = bases[int(b)%len(bases)]
			qual[i] = byte(33 + int(b)%90)
		}
		rec := Record{Name: name, Seq: string(seq), Qual: string(qual)}
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		if err := w.WriteFASTQ(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
