// Package formats implements the target-format side of the paper's
// converter: the "user programs" that turn one alignment object into one
// target object. Encoders exist for every format the paper lists —
// SAM, BED, BEDGRAPH, FASTA, FASTQ, JSON and YAML — and the Encoder
// interface is the extension point the paper advertises: supporting a new
// format means implementing one conversion function, with partitioning
// and I/O handled by the runtime.
package formats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"parseq/internal/kern"
	"parseq/internal/sam"
)

// Encoder converts alignment objects into one target format. Encode
// appends the target object's textual form to dst; returning dst
// unchanged skips the record (how encoders express "this record has no
// representation in my format", e.g. an unmapped read in BED).
type Encoder interface {
	// Name is the format's registry key, e.g. "bed".
	Name() string
	// Extension is the conventional file suffix, e.g. ".bed".
	Extension() string
	// Header returns the file prologue for the format (possibly empty).
	Header(h *sam.Header) []byte
	// Encode appends rec's representation to dst.
	Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Encoder{
		"sam":      func() Encoder { return SAM{} },
		"bed":      func() Encoder { return BED{} },
		"bedgraph": func() Encoder { return BEDGraph{} },
		"fasta":    func() Encoder { return FASTA{} },
		"fastq":    func() Encoder { return FASTQ{} },
		"json":     func() Encoder { return JSON{} },
		"yaml":     func() Encoder { return YAML{} },
	}
)

// Register adds a user-supplied target format — the extension mechanism
// of the paper's Section III-A: "all the user has to do is to implement
// a format conversion function in the user program". The factory is
// called once per conversion so encoders may hold per-run state.
// Registering an existing name (including a built-in) is an error;
// formats are global, and silent replacement would change other callers'
// conversions.
func Register(name string, factory func() Encoder) error {
	name = strings.ToLower(name)
	if name == "" || factory == nil {
		return fmt.Errorf("formats: invalid registration")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, exists := registry[name]; exists {
		return fmt.Errorf("formats: format %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// New returns a fresh encoder for the named format.
func New(name string) (Encoder, error) {
	registryMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("formats: unknown format %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists the registered formats, sorted.
func Names() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}

// appendInt appends the decimal form of a possibly negative integer.
func appendInt(dst []byte, n int64) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	if n == 0 {
		return append(dst, '0')
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}

// SAM re-emits records as SAM text (the BAM→SAM path of Table I).
type SAM struct{}

// Name implements Encoder.
func (SAM) Name() string { return "sam" }

// Extension implements Encoder.
func (SAM) Extension() string { return ".sam" }

// Header implements Encoder: the full SAM header section.
func (SAM) Header(h *sam.Header) []byte {
	if h == nil {
		return nil
	}
	return []byte(h.String())
}

// Encode implements Encoder. The record renders straight into dst
// (Record.AppendTo), so re-emitting SAM text costs no per-record
// allocation.
func (SAM) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	dst = rec.AppendTo(dst)
	return append(dst, '\n'), nil
}

// BED emits one six-column BED feature per mapped alignment: chrom,
// 0-based start, end, read name, score (MAPQ) and strand.
type BED struct{}

// Name implements Encoder.
func (BED) Name() string { return "bed" }

// Extension implements Encoder.
func (BED) Extension() string { return ".bed" }

// Header implements Encoder: BED files carry no header.
func (BED) Header(*sam.Header) []byte { return nil }

// Encode implements Encoder. Unmapped records are skipped.
func (BED) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	if rec.Unmapped() {
		return dst, nil
	}
	dst = append(dst, rec.RName...)
	dst = append(dst, '\t')
	dst = appendInt(dst, int64(rec.Pos-1))
	dst = append(dst, '\t')
	dst = appendInt(dst, int64(rec.End()))
	dst = append(dst, '\t')
	dst = append(dst, rec.QName...)
	dst = append(dst, '\t')
	dst = appendInt(dst, int64(rec.MapQ))
	dst = append(dst, '\t')
	if rec.Flag.Reverse() {
		dst = append(dst, '-')
	} else {
		dst = append(dst, '+')
	}
	return append(dst, '\n'), nil
}

// BEDGraph emits one four-column interval per mapped alignment: chrom,
// 0-based start, end and a unit coverage contribution. Accumulating the
// fourth column over overlapping intervals yields the coverage histogram
// the statistical module consumes. A BEDGRAPH record carries the least
// text of the paper's target formats, which is why its conversion is the
// least I/O intensive (and scales best in Figure 6).
type BEDGraph struct{}

// Name implements Encoder.
func (BEDGraph) Name() string { return "bedgraph" }

// Extension implements Encoder.
func (BEDGraph) Extension() string { return ".bedgraph" }

// Header implements Encoder: the conventional track declaration.
func (BEDGraph) Header(*sam.Header) []byte {
	return []byte("track type=bedGraph\n")
}

// Encode implements Encoder. Unmapped records are skipped.
func (BEDGraph) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	if rec.Unmapped() {
		return dst, nil
	}
	dst = append(dst, rec.RName...)
	dst = append(dst, '\t')
	dst = appendInt(dst, int64(rec.Pos-1))
	dst = append(dst, '\t')
	dst = appendInt(dst, int64(rec.End()))
	dst = append(dst, "\t1\n"...)
	return dst, nil
}

// FASTA emits each primary alignment's read as a FASTA entry,
// reverse-complementing reverse-strand alignments so the original read
// orientation is recovered.
type FASTA struct{}

// Name implements Encoder.
func (FASTA) Name() string { return "fasta" }

// Extension implements Encoder.
func (FASTA) Extension() string { return ".fasta" }

// Header implements Encoder.
func (FASTA) Header(*sam.Header) []byte { return nil }

// Encode implements Encoder. Secondary and supplementary alignments are
// skipped so each read appears exactly once, matching Picard's SamToFastq
// semantics.
func (FASTA) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	if !rec.Flag.Primary() || rec.Seq == "*" {
		return dst, nil
	}
	dst = append(dst, '>')
	dst = append(dst, rec.QName...)
	dst = append(dst, readSuffix(rec.Flag)...)
	dst = append(dst, '\n')
	if rec.Flag.Reverse() {
		var tail []byte
		dst, tail = kern.Grow(dst, len(rec.Seq))
		kern.ReverseComplement(tail, kern.StringBytes(rec.Seq))
	} else {
		dst = append(dst, rec.Seq...)
	}
	return append(dst, '\n'), nil
}

// FASTQ emits each primary alignment's read and qualities as a FASTQ
// entry (the SAM→FASTQ path of Table I).
type FASTQ struct{}

// Name implements Encoder.
func (FASTQ) Name() string { return "fastq" }

// Extension implements Encoder.
func (FASTQ) Extension() string { return ".fastq" }

// Header implements Encoder.
func (FASTQ) Header(*sam.Header) []byte { return nil }

// Encode implements Encoder. Secondary and supplementary alignments are
// skipped; reverse-strand reads are restored to read orientation.
func (FASTQ) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	if !rec.Flag.Primary() || rec.Seq == "*" {
		return dst, nil
	}
	dst = append(dst, '@')
	dst = append(dst, rec.QName...)
	dst = append(dst, readSuffix(rec.Flag)...)
	dst = append(dst, '\n')
	// Reverse-strand reads mirror straight into the output buffer — the
	// kern word loops replace the per-record intermediate string the old
	// path allocated for sam.ReverseComplement/sam.Reverse.
	rev := rec.Flag.Reverse()
	var tail []byte
	if rev {
		dst, tail = kern.Grow(dst, len(rec.Seq))
		kern.ReverseComplement(tail, kern.StringBytes(rec.Seq))
	} else {
		dst = append(dst, rec.Seq...)
	}
	dst = append(dst, "\n+\n"...)
	switch {
	case rec.Qual == "*":
		// Missing qualities render as the lowest score, one per base.
		dst, tail = kern.Grow(dst, len(rec.Seq))
		kern.Fill(tail, '!')
	case rev:
		dst, tail = kern.Grow(dst, len(rec.Qual))
		kern.Reverse(tail, kern.StringBytes(rec.Qual))
	default:
		dst = append(dst, rec.Qual...)
	}
	return append(dst, '\n'), nil
}

// readSuffix marks paired-end mates "/1" and "/2" in FASTA/FASTQ names.
func readSuffix(f sam.Flag) string {
	switch {
	case f.Paired() && f.Read1():
		return "/1"
	case f.Paired() && f.Read2():
		return "/2"
	}
	return ""
}
