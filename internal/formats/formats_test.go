package formats

import (
	"encoding/json"
	"strings"
	"testing"

	"parseq/internal/sam"
	"parseq/internal/simdata"
)

func testHeader() *sam.Header {
	return sam.NewHeader(
		sam.Reference{Name: "chr1", Length: 1000000},
		sam.Reference{Name: "chr2", Length: 500000},
	)
}

func rec(t *testing.T, line string) *sam.Record {
	t.Helper()
	r, err := sam.ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	return &r
}

const fwdLine = "r001\t99\tchr1\t7\t30\t10M\t=\t37\t39\tTTAGATAAAG\tIIIIIIIIIA\tNM:i:2"
const revLine = "r002\t147\tchr1\t40\t29\t10M\t=\t7\t-43\tCGATCGATCA\tABCDEFGHIJ"
const unmappedLine = "r003\t4\t*\t0\t0\t*\t*\t0\t0\tACGTA\tIIIII"
const secondaryLine = "r004\t256\tchr1\t50\t0\t5M\t*\t0\t0\tACGTA\tIIIII"

func TestRegistry(t *testing.T) {
	names := Names()
	// Every built-in must be present (tests may Register extras).
	want := []string{"bed", "bedgraph", "fasta", "fastq", "json", "sam", "yaml"}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("built-in %q missing from Names = %v", w, names)
		}
	}
	for _, n := range names {
		enc, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if enc.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, enc.Name())
		}
		if !strings.HasPrefix(enc.Extension(), ".") {
			t.Errorf("%s extension = %q", n, enc.Extension())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) succeeded")
	}
	if enc, err := New("BED"); err != nil || enc.Name() != "bed" {
		t.Errorf("New is not case-insensitive: %v %v", enc, err)
	}
}

func encode(t *testing.T, encName string, r *sam.Record) string {
	t.Helper()
	enc, err := New(encName)
	if err != nil {
		t.Fatal(err)
	}
	out, err := enc.Encode(nil, r, testHeader())
	if err != nil {
		t.Fatalf("%s Encode: %v", encName, err)
	}
	return string(out)
}

func TestSAMEncoder(t *testing.T) {
	if got := encode(t, "sam", rec(t, fwdLine)); got != fwdLine+"\n" {
		t.Errorf("sam = %q", got)
	}
	h := testHeader()
	if got := string((SAM{}).Header(h)); got != h.String() {
		t.Errorf("sam header = %q", got)
	}
	if got := (SAM{}).Header(nil); got != nil {
		t.Errorf("sam nil header = %q", got)
	}
}

func TestBEDEncoder(t *testing.T) {
	if got := encode(t, "bed", rec(t, fwdLine)); got != "chr1\t6\t16\tr001\t30\t+\n" {
		t.Errorf("bed fwd = %q", got)
	}
	if got := encode(t, "bed", rec(t, revLine)); got != "chr1\t39\t49\tr002\t29\t-\n" {
		t.Errorf("bed rev = %q", got)
	}
	if got := encode(t, "bed", rec(t, unmappedLine)); got != "" {
		t.Errorf("bed unmapped = %q, want skip", got)
	}
}

func TestBEDGraphEncoder(t *testing.T) {
	if got := encode(t, "bedgraph", rec(t, fwdLine)); got != "chr1\t6\t16\t1\n" {
		t.Errorf("bedgraph = %q", got)
	}
	if got := encode(t, "bedgraph", rec(t, unmappedLine)); got != "" {
		t.Errorf("bedgraph unmapped = %q, want skip", got)
	}
	if got := string((BEDGraph{}).Header(nil)); got != "track type=bedGraph\n" {
		t.Errorf("bedgraph header = %q", got)
	}
	// BEDGRAPH must be the shortest per-record output (the paper's
	// explanation for its superior scaling in Figure 6).
	bg := encode(t, "bedgraph", rec(t, fwdLine))
	bed := encode(t, "bed", rec(t, fwdLine))
	fa := encode(t, "fasta", rec(t, fwdLine))
	if len(bg) >= len(bed) || len(bg) >= len(fa) {
		t.Errorf("bedgraph (%d) not shorter than bed (%d) and fasta (%d)",
			len(bg), len(bed), len(fa))
	}
}

func TestFASTAEncoder(t *testing.T) {
	if got := encode(t, "fasta", rec(t, fwdLine)); got != ">r001/1\nTTAGATAAAG\n" {
		t.Errorf("fasta fwd = %q", got)
	}
	// Reverse-strand read is reverse-complemented back to read orientation.
	if got := encode(t, "fasta", rec(t, revLine)); got != ">r002/2\nTGATCGATCG\n" {
		t.Errorf("fasta rev = %q", got)
	}
	// Unmapped reads still have sequence: not skipped.
	if got := encode(t, "fasta", rec(t, unmappedLine)); got != ">r003\nACGTA\n" {
		t.Errorf("fasta unmapped = %q", got)
	}
	if got := encode(t, "fasta", rec(t, secondaryLine)); got != "" {
		t.Errorf("fasta secondary = %q, want skip", got)
	}
}

func TestFASTQEncoder(t *testing.T) {
	if got := encode(t, "fastq", rec(t, fwdLine)); got != "@r001/1\nTTAGATAAAG\n+\nIIIIIIIIIA\n" {
		t.Errorf("fastq fwd = %q", got)
	}
	// Reverse: sequence reverse-complemented, qualities reversed.
	if got := encode(t, "fastq", rec(t, revLine)); got != "@r002/2\nTGATCGATCG\n+\nJIHGFEDCBA\n" {
		t.Errorf("fastq rev = %q", got)
	}
	// Missing qualities become '!' runs.
	noQual := rec(t, "r9\t0\tchr1\t5\t1\t4M\t*\t0\t0\tACGT\t*")
	if got := encode(t, "fastq", noQual); got != "@r9\nACGT\n+\n!!!!\n" {
		t.Errorf("fastq noqual = %q", got)
	}
	// No sequence at all: skipped.
	noSeq := rec(t, "r9\t0\tchr1\t5\t1\t*\t*\t0\t0\t*\t*")
	if got := encode(t, "fastq", noSeq); got != "" {
		t.Errorf("fastq noseq = %q, want skip", got)
	}
}

func TestJSONEncoderIsValidJSON(t *testing.T) {
	for _, line := range []string{fwdLine, revLine, unmappedLine} {
		out := encode(t, "json", rec(t, line))
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("json output not newline-terminated: %q", out)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(out), &m); err != nil {
			t.Fatalf("invalid JSON for %q: %v\n%s", line, err, out)
		}
		r := rec(t, line)
		if m["qname"] != r.QName {
			t.Errorf("qname = %v", m["qname"])
		}
		if int(m["pos"].(float64)) != int(r.Pos) {
			t.Errorf("pos = %v", m["pos"])
		}
		if m["cigar"] != r.Cigar.String() {
			t.Errorf("cigar = %v", m["cigar"])
		}
	}
}

func TestJSONEncoderTags(t *testing.T) {
	out := encode(t, "json", rec(t, fwdLine))
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatal(err)
	}
	tags, ok := m["tags"].(map[string]any)
	if !ok {
		t.Fatalf("tags = %T", m["tags"])
	}
	if tags["NM"] != float64(2) {
		t.Errorf("NM = %v, want numeric 2", tags["NM"])
	}
}

func TestJSONStringEscaping(t *testing.T) {
	r := rec(t, fwdLine)
	r.QName = `we"ird\name` + string(rune(1))
	out := encode(t, "json", r)
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("escaping broke JSON: %v\n%s", err, out)
	}
	if m["qname"] != r.QName {
		t.Errorf("qname = %q, want %q", m["qname"], r.QName)
	}
}

func TestYAMLEncoderShape(t *testing.T) {
	out := encode(t, "yaml", rec(t, fwdLine))
	if !strings.HasPrefix(out, "- qname: ") {
		t.Errorf("yaml = %q", out)
	}
	for _, key := range []string{"flag: 99", "rname: chr1", "pos: 7", "cigar: 10M", `rnext: "="`, "NM: "} {
		if !strings.Contains(out, key) {
			t.Errorf("yaml missing %q:\n%s", key, out)
		}
	}
	// SAM's special "*" values must be quoted so YAML does not read an alias.
	un := encode(t, "yaml", rec(t, unmappedLine))
	if !strings.Contains(un, `rname: "*"`) {
		t.Errorf("yaml unmapped rname not quoted:\n%s", un)
	}
}

func TestYAMLPlainSafe(t *testing.T) {
	cases := []struct {
		s    string
		safe bool
	}{
		{"chr1", true},
		{"r001", true},
		{"*", false},
		{"=", false},
		{"", false},
		{"7", false},
		{"-5", false},
		{"has space", false},
		{"колон:pair", false},
		{"a#comment", false},
	}
	for _, tc := range cases {
		if got := yamlPlainSafe(tc.s); got != tc.safe {
			t.Errorf("yamlPlainSafe(%q) = %v, want %v", tc.s, got, tc.safe)
		}
	}
}

// Conversions over a realistic generated dataset must never error, and
// line-oriented outputs must be concatenable (ends with newline).
func TestAllEncodersOverGeneratedData(t *testing.T) {
	d := simdata.Generate(simdata.DefaultConfig(300))
	for _, name := range Names() {
		enc, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		var out []byte
		for i := range d.Records {
			out, err = enc.Encode(out, &d.Records[i], d.Header)
			if err != nil {
				t.Fatalf("%s record %d: %v", name, i, err)
			}
		}
		if len(out) == 0 {
			t.Fatalf("%s produced no output over 300 records", name)
		}
		if out[len(out)-1] != '\n' {
			t.Errorf("%s output does not end in newline", name)
		}
	}
}

func BenchmarkEncoders(b *testing.B) {
	d := simdata.Generate(simdata.DefaultConfig(1000))
	for _, name := range Names() {
		enc, _ := New(name)
		b.Run(name, func(b *testing.B) {
			var out []byte
			for i := 0; i < b.N; i++ {
				out = out[:0]
				for j := range d.Records {
					var err error
					out, err = enc.Encode(out, &d.Records[j], d.Header)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetBytes(int64(len(out)))
		})
	}
}

type testEncoder struct{}

func (testEncoder) Name() string              { return "testenc" }
func (testEncoder) Extension() string         { return ".tst" }
func (testEncoder) Header(*sam.Header) []byte { return nil }
func (testEncoder) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	return append(dst, 'x', '\n'), nil
}

func TestRegister(t *testing.T) {
	if err := Register("testenc", func() Encoder { return testEncoder{} }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	enc, err := New("TESTENC")
	if err != nil {
		t.Fatalf("New after Register: %v", err)
	}
	out, err := enc.Encode(nil, rec(t, fwdLine), testHeader())
	if err != nil || string(out) != "x\n" {
		t.Errorf("custom Encode = %q, %v", out, err)
	}
	// Duplicate and built-in registrations are rejected.
	if err := Register("testenc", func() Encoder { return testEncoder{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register("bed", func() Encoder { return testEncoder{} }); err == nil {
		t.Error("built-in override accepted")
	}
	if err := Register("", func() Encoder { return testEncoder{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("other", nil); err == nil {
		t.Error("nil factory accepted")
	}
	found := false
	for _, n := range Names() {
		if n == "testenc" {
			found = true
		}
	}
	if !found {
		t.Error("registered format missing from Names")
	}
}
