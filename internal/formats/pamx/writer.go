package pamx

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"parseq/internal/bam"
	"parseq/internal/bgzf"
	"parseq/internal/sam"
)

// Writer emits a PAMX file: records buffer into per-column streams until
// the current column group cuts (size cap, record cap, or reference
// change), at which point each non-empty column compresses into an
// independent BGZF blob and appends to the file. Close flushes the last
// group and writes the footer index.
type Writer struct {
	w      io.Writer
	header *sam.Header
	opts   Options

	off    int64 // absolute file offset of the next byte written
	cols   [numColumns][]byte
	cur    GroupInfo
	open   bool // the current group holds at least one record
	groups []GroupInfo
	count  int64
	err    error
}

// encodeHeader renders the file prologue: magic, header-text length and
// the SAM header text.
func encodeHeader(h *sam.Header) []byte {
	text := h.String()
	hdr := make([]byte, 0, len(Magic)+4+len(text))
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(text)))
	return append(hdr, text...)
}

// NewWriter writes the PAMX prologue and returns a record writer.
func NewWriter(w io.Writer, h *sam.Header, opts Options) (*Writer, error) {
	if opts.GroupBytes <= 0 {
		opts.GroupBytes = DefaultGroupBytes
	}
	hdr := encodeHeader(h)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: w, header: h, opts: opts, off: int64(len(hdr))}, nil
}

// Write encodes one alignment and appends it.
func (w *Writer) Write(rec *sam.Record) error {
	if w.err != nil {
		return w.err
	}
	body, err := bam.EncodeRecord(nil, rec, w.header)
	if err != nil {
		w.err = err
		return err
	}
	return w.WriteBody(body[4:])
}

// WriteBody appends one record given its BAM-encoded body (without the
// block_size prefix) — the zero-decode handoff conversions use. The body
// is split across the column buffers; nothing aliases it after return.
func (w *Writer) WriteBody(body []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(body) < 32 {
		return w.fail(fmt.Errorf("%w: %d-byte record body", ErrCorrupt, len(body)))
	}
	nameLen, nCigar, seqLen, auxLen := bodyLens(body)
	if nameLen < 1 || auxLen < 0 {
		return w.fail(fmt.Errorf("%w: inconsistent record lengths (name %d, cigar %d, seq %d, aux %d)",
			ErrCorrupt, nameLen, nCigar, seqLen, auxLen))
	}
	refID, beg, end := bam.BodySpan(body)

	if w.open && w.shouldCut(refID, len(body)) {
		if err := w.flushGroup(); err != nil {
			return err
		}
	}
	if !w.open {
		w.cur = GroupInfo{RefID: refID}
		w.open = true
		if refID >= 0 {
			w.cur.Beg, w.cur.End = int64(beg), int64(end)
		}
	} else if refID >= 0 {
		if int64(beg) < w.cur.Beg {
			w.cur.Beg = int64(beg)
		}
		if int64(end) > w.cur.End {
			w.cur.End = int64(end)
		}
	}

	w.cols[colCoord] = append(w.cols[colCoord], body[:32]...)
	w.cols[colCoord] = binary.LittleEndian.AppendUint32(w.cols[colCoord], uint32(auxLen))
	rest := body[32:]
	w.cols[colQName] = append(w.cols[colQName], rest[:nameLen]...)
	rest = rest[nameLen:]
	w.cols[colCigar] = append(w.cols[colCigar], rest[:4*nCigar]...)
	rest = rest[4*nCigar:]
	w.cols[colSeq] = append(w.cols[colSeq], rest[:(seqLen+1)/2]...)
	rest = rest[(seqLen+1)/2:]
	w.cols[colQual] = append(w.cols[colQual], rest[:seqLen]...)
	w.cols[colAux] = append(w.cols[colAux], rest[seqLen:]...)

	w.cur.Records++
	w.count++
	return nil
}

// shouldCut reports whether the current group must close before a record
// of the given reference and body size joins it.
func (w *Writer) shouldCut(refID int32, bodyLen int) bool {
	if refID != w.cur.RefID {
		return true
	}
	if w.opts.GroupRecords > 0 && w.cur.Records >= int64(w.opts.GroupRecords) {
		return true
	}
	var buffered int64
	for c := 0; c < numColumns; c++ {
		buffered += int64(len(w.cols[c]))
	}
	// +4: the coordinate column stores the aux length alongside the prefix.
	return buffered+int64(bodyLen)+4 > w.opts.GroupBytes
}

// compressColumn deflates one column stream into an in-memory BGZF blob
// on the codec Options select; every path emits bit-identical bytes.
func (w *Writer) compressColumn(col []byte) ([]byte, error) {
	var buf bytes.Buffer
	var zw bgzf.BlockWriter
	switch {
	case w.opts.CodecWorkers == 1:
		zw = bgzf.NewWriter(&buf)
	case w.opts.CodecWorkers > 1:
		zw = bgzf.NewParallelWriter(&buf, w.opts.CodecWorkers)
	default:
		zw = bgzf.NewSharedParallelWriter(&buf)
	}
	if _, err := zw.Write(col); err != nil {
		zw.Close()
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// flushGroup compresses and appends the buffered columns as one group.
func (w *Writer) flushGroup() error {
	for c := 0; c < numColumns; c++ {
		col := w.cols[c]
		if len(col) == 0 {
			w.cur.Cols[c] = colEntry{}
			continue
		}
		blob, err := w.compressColumn(col)
		if err != nil {
			return w.fail(err)
		}
		if _, err := w.w.Write(blob); err != nil {
			return w.fail(err)
		}
		w.cur.Cols[c] = colEntry{Off: w.off, CLen: int64(len(blob)), ULen: int64(len(col))}
		w.off += int64(len(blob))
		w.cols[c] = col[:0]
	}
	w.groups = append(w.groups, w.cur)
	w.open = false
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

// Count returns the records written so far.
func (w *Writer) Count() int64 { return w.count }

// Groups returns the column groups flushed so far (the open group, if
// any, is not counted until Close).
func (w *Writer) Groups() int { return len(w.groups) }

// Close flushes the open group and writes the footer index and trailer.
// It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.open {
		if err := w.flushGroup(); err != nil {
			return err
		}
	}
	footer := EncodeFooter(w.groups)
	if _, err := w.w.Write(footer); err != nil {
		return w.fail(err)
	}
	tail := binary.LittleEndian.AppendUint64(nil, uint64(len(footer)))
	tail = append(tail, TrailerMagic...)
	if _, err := w.w.Write(tail); err != nil {
		return w.fail(err)
	}
	w.err = fmt.Errorf("pamx: writer closed")
	return nil
}
