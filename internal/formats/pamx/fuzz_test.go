package pamx

import (
	"bytes"
	"testing"
)

// FuzzPAMXFooter holds the footer codec to its untrusted-input
// contract: DecodeFooter never panics, rejects truncation, trailing
// garbage, size-cap violations and inconsistent geometry with an error,
// and any payload it does accept re-encodes byte-identically.
func FuzzPAMXFooter(f *testing.F) {
	valid := EncodeFooter([]GroupInfo{
		{
			RefID: 0, Beg: 100, End: 5000, Records: 3,
			Cols: [numColumns]colEntry{
				{Off: 64, CLen: 40, ULen: 3 * coordStride},
				{Off: 104, CLen: 30, ULen: 90},
				{Off: 134, CLen: 20, ULen: 24},
				{Off: 154, CLen: 50, ULen: 135},
				{Off: 204, CLen: 60, ULen: 270},
				{Off: 264, CLen: 25, ULen: 33},
			},
		},
		{
			RefID: -1, Beg: 0, End: 0, Records: 1,
			Cols: [numColumns]colEntry{
				{Off: 289, CLen: 30, ULen: coordStride},
				{Off: 319, CLen: 20, ULen: 12},
				{}, {}, {}, {},
			},
		},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0xa5}, groupWireSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		groups, err := DecodeFooter(data)
		if err != nil {
			return
		}
		re := EncodeFooter(groups)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted footer does not re-encode identically: %d bytes in, %d out", len(data), len(re))
		}
		// Accepted groups must also survive the geometry layer without
		// panicking, whatever its verdict.
		_ = boundsCheck(groups, 0, 1<<62)
	})
}
