package pamx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"parseq/internal/bam"
	"parseq/internal/bamx"
	"parseq/internal/sam"
)

// bamWriterOpts maps pamx codec Options onto the bam.Writer option set
// with the same semantics: 0 shares the process pool, 1 is sequential,
// n > 1 a private pool. Every path emits bit-identical BGZF bytes.
func bamWriterOpts(opts Options) []bam.Option {
	switch {
	case opts.CodecWorkers == 1:
		return nil
	case opts.CodecWorkers > 1:
		return []bam.Option{bam.WithCodecWorkers(opts.CodecWorkers)}
	default:
		return []bam.Option{bam.WithSharedCodec()}
	}
}

// FromBAM converts a BAM file into PAMX at pamxPath, streaming record
// bodies straight into the column splitter without decoding. Returns the
// record count.
func FromBAM(bamPath, pamxPath string, opts Options) (int64, error) {
	in, err := os.Open(bamPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	var ropts []bam.Option
	if opts.CodecWorkers > 1 {
		ropts = append(ropts, bam.WithCodecWorkers(opts.CodecWorkers))
	}
	br, err := bam.NewReader(bufio.NewReaderSize(in, 1<<20), ropts...)
	if err != nil {
		return 0, err
	}
	defer br.Close()
	return writePAMX(pamxPath, br.Header(), opts, func(w *Writer) error {
		for {
			body, err := br.ReadBody()
			if err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
			if err := w.WriteBody(body); err != nil {
				return err
			}
		}
	})
}

// FromBAMX converts a fixed-stride BAMX file into PAMX, reassembling
// each record body from its padded slot.
func FromBAMX(bamxPath, pamxPath string, opts Options) (int64, error) {
	in, err := os.Open(bamxPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return 0, err
	}
	xf, err := bamx.Open(in, st.Size())
	if err != nil {
		return 0, err
	}
	return writePAMX(pamxPath, xf.Header(), opts, func(w *Writer) error {
		raw := make([]byte, xf.Stride())
		var body []byte
		for i := int64(0); i < xf.NumRecords(); i++ {
			if err := xf.ReadRaw(i, raw); err != nil {
				return err
			}
			body, err = xf.AppendBody(body[:0], raw)
			if err != nil {
				return err
			}
			if err := w.WriteBody(body); err != nil {
				return err
			}
		}
		return nil
	})
}

// writePAMX runs fill against a Writer on a fresh file at path, closing
// both in order and unlinking the partial file on error.
func writePAMX(path string, h *sam.Header, opts Options, fill func(*Writer) error) (int64, error) {
	out, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	w, err := NewWriter(bw, h, opts)
	if err == nil {
		err = fill(w)
	}
	if err == nil {
		err = w.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	return w.Count(), nil
}

// ToBAM converts a PAMX file back into BAM at bamPath with the full
// projection — the return leg of the byte-identity round-trip contract.
func ToBAM(pamxPath, bamPath string, opts Options) (int64, error) {
	pf, err := OpenPath(pamxPath)
	if err != nil {
		return 0, err
	}
	defer pf.Close()
	out, err := os.Create(bamPath)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	w, err := bam.NewWriter(bw, pf.Header(), bamWriterOpts(opts)...)
	if err != nil {
		out.Close()
		os.Remove(bamPath)
		return 0, err
	}
	var count int64
	var rec []byte
	err = func() error {
		for i := 0; i < pf.NumGroups(); i++ {
			gr, err := pf.NewGroupReader(i, FieldAll)
			if err != nil {
				return err
			}
			for {
				body, err := gr.NextBody()
				if err == io.EOF {
					break
				}
				if err != nil {
					gr.Close()
					return err
				}
				rec = binary.LittleEndian.AppendUint32(rec[:0], uint32(len(body)))
				rec = append(rec, body...)
				if err := w.WriteEncoded(rec); err != nil {
					gr.Close()
					return err
				}
				count++
			}
			gr.Close()
		}
		return nil
	}()
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(bamPath)
		return 0, err
	}
	if want := pf.NumRecords(); count != want {
		return count, fmt.Errorf("%w: footer declares %d records, read %d", ErrCorrupt, want, count)
	}
	return count, nil
}
