package pamx

import (
	"encoding/binary"
	"fmt"
)

// Footer wire format: a uint32 group count followed by fixed-size group
// entries, then (outside the footer proper) the uint64 footer length and
// the trailer magic. Everything is little-endian. The decoder treats the
// bytes as untrusted input: every length is bounded before allocation
// and every accepted footer re-encodes byte-identically, which is the
// property FuzzPAMXFooter holds the codec to.

// groupWireSize is the encoded size of one group entry: refID + beg +
// end + records + numColumns × {off, clen, ulen}.
const groupWireSize = 4 + 8 + 8 + 8 + numColumns*24

// maxFooterGroups bounds the group count a footer may declare — a
// size-cap against hostile headers, far above any real file (2^24
// groups × the minimum non-empty group is already petabytes).
const maxFooterGroups = 1 << 24

// maxFooterBytes bounds the footer blob Open will read into memory.
const maxFooterBytes = 4 + int64(maxFooterGroups)*groupWireSize

// EncodeFooter serialises the group index.
func EncodeFooter(groups []GroupInfo) []byte {
	dst := make([]byte, 0, 4+len(groups)*groupWireSize)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(groups)))
	for _, g := range groups {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(g.RefID))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Beg))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(g.End))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Records))
		for c := 0; c < numColumns; c++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Cols[c].Off))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Cols[c].CLen))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Cols[c].ULen))
		}
	}
	return dst
}

// DecodeFooter parses an EncodeFooter payload, rejecting truncation,
// trailing garbage, and any group whose geometry is internally
// inconsistent (negative lengths, coord column not records×36,
// empty/non-empty disagreement between clen and ulen).
func DecodeFooter(data []byte) ([]GroupInfo, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorrupt)
	}
	n := int64(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > maxFooterGroups {
		return nil, fmt.Errorf("%w: footer declares %d groups", ErrCorrupt, n)
	}
	if int64(len(data)) != n*groupWireSize {
		return nil, fmt.Errorf("%w: footer declares %d groups, holds %d bytes", ErrCorrupt, n, len(data))
	}
	groups := make([]GroupInfo, 0, n)
	for i := int64(0); i < n; i++ {
		g := GroupInfo{
			RefID:   int32(binary.LittleEndian.Uint32(data[0:])),
			Beg:     int64(binary.LittleEndian.Uint64(data[4:])),
			End:     int64(binary.LittleEndian.Uint64(data[12:])),
			Records: int64(binary.LittleEndian.Uint64(data[20:])),
		}
		off := 28
		for c := 0; c < numColumns; c++ {
			g.Cols[c] = colEntry{
				Off:  int64(binary.LittleEndian.Uint64(data[off:])),
				CLen: int64(binary.LittleEndian.Uint64(data[off+8:])),
				ULen: int64(binary.LittleEndian.Uint64(data[off+16:])),
			}
			off += 24
		}
		if err := g.validate(int(i)); err != nil {
			return nil, err
		}
		if g.Beg < 0 || g.End < g.Beg {
			return nil, fmt.Errorf("%w: group %d span [%d, %d)", ErrCorrupt, i, g.Beg, g.End)
		}
		groups = append(groups, g)
		data = data[groupWireSize:]
	}
	return groups, nil
}

// boundsCheck verifies every column blob lies inside [dataStart,
// dataEnd) of the file — Open's second validation layer, applied once
// the file geometry is known.
func boundsCheck(groups []GroupInfo, dataStart, dataEnd int64) error {
	for i := range groups {
		for c := 0; c < numColumns; c++ {
			e := groups[i].Cols[c]
			if e.CLen == 0 {
				continue
			}
			if e.Off < dataStart || e.Off+e.CLen > dataEnd {
				return fmt.Errorf("%w: group %d column %d blob [%d, %d) outside data section [%d, %d)",
					ErrCorrupt, i, c, e.Off, e.Off+e.CLen, dataStart, dataEnd)
			}
		}
	}
	return nil
}
