package pamx

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"parseq/internal/bam"
	"parseq/internal/bgzf"
	"parseq/internal/obs"
	"parseq/internal/sam"
)

// File provides random access to a PAMX file through its footer index.
// The io.ReaderAt is position-less, so one File serves concurrent group
// readers — the property the shard provider builds on.
type File struct {
	r         io.ReaderAt
	header    *sam.Header
	groups    []GroupInfo
	dataStart int64
}

// Open validates the prologue and footer of a PAMX file of the given
// total size and returns a random-access handle. Both index layers are
// treated as untrusted: the footer must decode cleanly and every column
// blob must lie inside the data section.
func Open(r io.ReaderAt, size int64) (*File, error) {
	fixed := make([]byte, len(Magic)+4)
	if size < int64(len(fixed)) {
		return nil, ErrNotPAMX
	}
	if _, err := r.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPAMX, err)
	}
	if !bytes.Equal(fixed[:len(Magic)], Magic) {
		return nil, ErrNotPAMX
	}
	textLen := int64(binary.LittleEndian.Uint32(fixed[len(Magic):]))
	dataStart := int64(len(fixed)) + textLen
	if textLen < 0 || dataStart+16 > size {
		return nil, fmt.Errorf("%w: header text of %d bytes in a %d-byte file", ErrCorrupt, textLen, size)
	}
	text := make([]byte, textLen)
	if _, err := r.ReadAt(text, int64(len(fixed))); err != nil {
		return nil, fmt.Errorf("%w: header text: %v", ErrCorrupt, err)
	}
	h, err := sam.ParseHeader(string(text))
	if err != nil {
		return nil, err
	}

	tail := make([]byte, 16)
	if _, err := r.ReadAt(tail, size-16); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(tail[8:], TrailerMagic) {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	footLen := int64(binary.LittleEndian.Uint64(tail))
	if footLen < 4 || footLen > maxFooterBytes || dataStart+footLen+16 > size {
		return nil, fmt.Errorf("%w: footer of %d bytes", ErrCorrupt, footLen)
	}
	footStart := size - 16 - footLen
	foot := make([]byte, footLen)
	if _, err := r.ReadAt(foot, footStart); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrCorrupt, err)
	}
	groups, err := DecodeFooter(foot)
	if err != nil {
		return nil, err
	}
	if err := boundsCheck(groups, dataStart, footStart); err != nil {
		return nil, err
	}
	return &File{r: r, header: h, groups: groups, dataStart: dataStart}, nil
}

// PathFile is a File bound to the *os.File it was opened from.
type PathFile struct {
	*File
	osf *os.File
}

// OpenPath opens the PAMX file at path; Close releases the handle.
func OpenPath(path string) (*PathFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pf, err := Open(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &PathFile{File: pf, osf: f}, nil
}

// Close releases the underlying file handle.
func (p *PathFile) Close() error { return p.osf.Close() }

// Header returns the embedded SAM header.
func (f *File) Header() *sam.Header { return f.header }

// NumGroups returns the column group count.
func (f *File) NumGroups() int { return len(f.groups) }

// Group returns group i's descriptor.
func (f *File) Group(i int) GroupInfo { return f.groups[i] }

// NumRecords sums the record counts of all groups.
func (f *File) NumRecords() int64 {
	var n int64
	for i := range f.groups {
		n += f.groups[i].Records
	}
	return n
}

// readColumn inflates one column blob into a fresh exact-size buffer.
func (f *File) readColumn(e colEntry) ([]byte, error) {
	if e.ULen == 0 {
		return nil, nil
	}
	raw := make([]byte, e.CLen)
	if _, err := f.r.ReadAt(raw, e.Off); err != nil {
		return nil, fmt.Errorf("%w: column blob: %v", ErrCorrupt, err)
	}
	out := make([]byte, e.ULen)
	zr := bgzf.NewReader(bytes.NewReader(raw))
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: column inflate: %v", ErrCorrupt, err)
	}
	return out, nil
}

// GroupReader iterates one column group's records under a field
// projection, reassembling each record as a valid BAM body view:
// projected fields carry their stored bytes; skipped variable fields are
// elided from the view with the prefix patched to match (read name "\0",
// zero CIGAR ops, zero-length sequence), and a skipped quality column
// under a projected sequence renders as the 0xff missing-qualities fill.
// With only FieldCoord projected the view is the 33-byte minimal body —
// the zero-decode span counting analyses tally from.
type GroupReader struct {
	f      *File
	g      GroupInfo
	fields Fields
	cols   [numColumns][]byte
	loaded [numColumns]bool
	offs   [numColumns]int
	i      int64
	buf    []byte
}

// NewGroupReader opens group i, inflating exactly the projected columns
// (the coordinate column is always loaded — it delimits the others).
// Inflated and skipped compressed bytes feed the pamx.{bytes_inflated,
// bytes_skipped} counters, the measured half of the column-skipping win.
func (f *File) NewGroupReader(i int, fields Fields) (*GroupReader, error) {
	if i < 0 || i >= len(f.groups) {
		return nil, fmt.Errorf("pamx: group %d out of range [0, %d)", i, len(f.groups))
	}
	fields |= FieldCoord
	g := f.groups[i]
	gr := &GroupReader{f: f, g: g, fields: fields}
	var inflated, skipped int64
	for c := 0; c < numColumns; c++ {
		if !fields.Has(columnField[c]) {
			skipped += g.Cols[c].ULen
			continue
		}
		col, err := f.readColumn(g.Cols[c])
		if err != nil {
			return nil, err
		}
		gr.cols[c], gr.loaded[c] = col, true
		inflated += g.Cols[c].ULen
	}
	if reg := obs.Default(); reg != nil {
		reg.Counter("pamx.bytes_inflated").Add(inflated)
		reg.Counter("pamx.bytes_skipped").Add(skipped)
		reg.Gauge("pamx.fields").Set(int64(fields))
	}
	return gr, nil
}

// Fields returns the effective projection (always including FieldCoord).
func (r *GroupReader) Fields() Fields { return r.fields }

// take consumes n bytes from a loaded column's cursor.
func (r *GroupReader) take(c, n int) ([]byte, error) {
	if n < 0 || r.offs[c]+n > len(r.cols[c]) {
		return nil, fmt.Errorf("%w: column %d exhausted at record %d", ErrCorrupt, c, r.i)
	}
	b := r.cols[c][r.offs[c] : r.offs[c]+n]
	r.offs[c] += n
	return b, nil
}

// appendN appends n copies of b.
func appendN(dst []byte, b byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, b)
	}
	return dst
}

// NextBody returns the next record's reassembled body view. The slice
// aliases an internal buffer and is valid only until the next call. It
// returns io.EOF when the group is exhausted.
func (r *GroupReader) NextBody() ([]byte, error) {
	if r.i >= r.g.Records {
		return nil, io.EOF
	}
	coord := r.cols[colCoord][r.i*coordStride : r.i*coordStride+coordStride]
	nameLen := int(coord[8])
	nCigar := int(binary.LittleEndian.Uint16(coord[12:]))
	seqLen := int(int32(binary.LittleEndian.Uint32(coord[16:])))
	auxLen := int(int32(binary.LittleEndian.Uint32(coord[32:])))
	if nameLen < 1 || seqLen < 0 || auxLen < 0 {
		return nil, fmt.Errorf("%w: record %d declares name %d, seq %d, aux %d",
			ErrCorrupt, r.i, nameLen, seqLen, auxLen)
	}

	buf := append(r.buf[:0], coord[:32]...)
	if r.loaded[colQName] {
		b, err := r.take(colQName, nameLen)
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	} else {
		buf[8] = 1
		buf = append(buf, 0)
	}
	if r.loaded[colCigar] {
		b, err := r.take(colCigar, 4*nCigar)
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	} else {
		binary.LittleEndian.PutUint16(buf[12:], 0)
	}
	if r.loaded[colSeq] || r.loaded[colQual] {
		if r.loaded[colSeq] {
			b, err := r.take(colSeq, (seqLen+1)/2)
			if err != nil {
				return nil, err
			}
			buf = append(buf, b...)
		} else {
			buf = appendN(buf, 0, (seqLen+1)/2)
		}
		if r.loaded[colQual] {
			b, err := r.take(colQual, seqLen)
			if err != nil {
				return nil, err
			}
			buf = append(buf, b...)
		} else {
			buf = appendN(buf, 0xff, seqLen)
		}
	} else {
		binary.LittleEndian.PutUint32(buf[16:], 0)
	}
	if r.loaded[colAux] {
		b, err := r.take(colAux, auxLen)
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	}
	r.i++
	r.buf = buf
	return buf, nil
}

// ReadInto decodes the next record view into rec. Skipped fields decode
// to their placeholder values (QName "*", no CIGAR, Seq/Qual "*", no
// tags) — a partial view, not the stored record.
func (r *GroupReader) ReadInto(rec *sam.Record) error {
	body, err := r.NextBody()
	if err != nil {
		return err
	}
	return bam.DecodeRecord(body, rec, r.f.header)
}

// Close releases the group's column buffers. The File stays open.
func (r *GroupReader) Close() error {
	for c := range r.cols {
		r.cols[c] = nil
	}
	r.buf = nil
	return nil
}
