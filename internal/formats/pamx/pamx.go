// Package pamx implements PAMX, a columnar sibling of BAM/BAMX in the
// style of grailbio's PAM ("a faster, smaller alternative to BAM"):
// records are split into per-field streams — the fixed coordinate/flag
// prefix, read names, CIGARs, packed sequences, qualities and auxiliary
// tags — grouped into coordinate-sharded column groups, and each column
// stream is BGZF-compressed independently. A seekable footer indexes
// every group's columns, so a reader can project exactly the fields an
// analysis touches: flagstat over PAMX inflates the 36-byte coordinate
// column and skips the sequence/quality bulk it would otherwise pay to
// decompress and discard.
//
// The layout:
//
//	magic "PAMX\x01"
//	uint32 header-text length | SAM header text
//	column group 0: coord blob | qname blob | cigar blob | seq blob | qual blob | aux blob
//	column group 1: ...
//	footer: per-group {refID, beg, end, records, per-column {off, clen, ulen}}
//	uint64 footer length | trailer magic "PAMXIDX1"
//
// Each blob is an independent BGZF stream (empty columns are omitted
// entirely), compressed through the process-wide bgzf.SharedPool by
// default, so file bytes are bit-identical at any codec worker count. A
// group never spans a reference change, which is what lets the shard
// provider hand whole groups to region-parallel analyses with the
// exactly-once ownership contract intact.
package pamx

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a PAMX file.
var Magic = []byte{'P', 'A', 'M', 'X', 1}

// TrailerMagic closes a PAMX file after the footer-length word; Open
// seeks here first to find the footer without scanning the data.
var TrailerMagic = []byte{'P', 'A', 'M', 'X', 'I', 'D', 'X', '1'}

// Errors reported by the codec.
var (
	ErrNotPAMX = errors.New("pamx: not a PAMX file")
	ErrCorrupt = errors.New("pamx: corrupt file")
)

// Fields selects the columns a reader inflates. The coordinate column is
// always loaded — it carries the per-record field lengths every other
// column is delimited by — so any projection implicitly includes it.
type Fields uint32

const (
	// FieldCoord is the fixed 32-byte BAM record prefix (refID, pos,
	// mapq, bin, flag, mate info, tlen) plus the per-record auxiliary
	// length. It is the whole input of counting analyses like flagstat.
	FieldCoord Fields = 1 << iota
	// FieldQName projects the NUL-terminated read names.
	FieldQName
	// FieldCigar projects the binary CIGAR operations.
	FieldCigar
	// FieldSeq projects the 4-bit packed sequences.
	FieldSeq
	// FieldQual projects the raw quality bytes.
	FieldQual
	// FieldAux projects the encoded auxiliary tags.
	FieldAux
)

// FieldFlag aliases FieldCoord: the FLAG word lives in the fixed prefix,
// so projecting flags means projecting the coordinate column.
const FieldFlag = FieldCoord

// FieldAll projects every column — the full-record view conversions use.
const FieldAll = FieldCoord | FieldQName | FieldCigar | FieldSeq | FieldQual | FieldAux

// Has reports whether f includes every bit of sub.
func (f Fields) Has(sub Fields) bool { return f&sub == sub }

// String renders the projection for logs and spans.
func (f Fields) String() string {
	if f == 0 {
		return "none"
	}
	names := []struct {
		bit  Fields
		name string
	}{
		{FieldCoord, "coord"}, {FieldQName, "qname"}, {FieldCigar, "cigar"},
		{FieldSeq, "seq"}, {FieldQual, "qual"}, {FieldAux, "aux"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit == 0 {
			continue
		}
		if out != "" {
			out += "|"
		}
		out += n.name
	}
	return out
}

// Column indices into a group's per-column entry table, in file order.
const (
	colCoord = iota
	colQName
	colCigar
	colSeq
	colQual
	colAux
	numColumns
)

// columnField maps a column index to its projection bit.
var columnField = [numColumns]Fields{
	FieldCoord, FieldQName, FieldCigar, FieldSeq, FieldQual, FieldAux,
}

// coordStride is the per-record size of the coordinate column: the
// 32-byte fixed BAM prefix plus a uint32 recording the auxiliary-data
// length (the one variable-section length the prefix does not carry).
const coordStride = 36

// Options tunes a Writer.
type Options struct {
	// CodecWorkers drives the per-column BGZF compression: 0 attaches to
	// the process-wide bgzf.SharedPool, 1 uses the sequential codec, and
	// n > 1 a private n-worker pool. All three emit bit-identical bytes.
	CodecWorkers int
	// GroupBytes caps the uncompressed bytes buffered into one column
	// group before it is cut (summed across columns). ≤ 0 picks
	// DefaultGroupBytes. Groups also cut on every reference change, so a
	// group never mixes references.
	GroupBytes int64
	// GroupRecords, when > 0, additionally caps the records per group —
	// the knob tests and benchmarks use to force exact group counts.
	GroupRecords int
}

// DefaultGroupBytes is the group target when Options leaves it unset:
// large enough to amortise per-column stream overhead and keep the
// footer tiny, small enough that many groups exist to parallelise over.
const DefaultGroupBytes = 4 << 20

// bodyLens extracts the variable-section lengths from a BAM record body
// and validates their sum against the body size. auxLen is negative when
// the declared lengths exceed the body.
func bodyLens(body []byte) (nameLen, nCigar, seqLen, auxLen int) {
	nameLen = int(body[8])
	nCigar = int(binary.LittleEndian.Uint16(body[12:]))
	seqLen = int(int32(binary.LittleEndian.Uint32(body[16:])))
	if seqLen < 0 {
		return nameLen, nCigar, seqLen, -1
	}
	auxLen = len(body) - 32 - nameLen - 4*nCigar - (seqLen+1)/2 - seqLen
	return nameLen, nCigar, seqLen, auxLen
}

// colEntry locates one column blob of one group in the file.
type colEntry struct {
	Off  int64 // absolute file offset of the BGZF blob; 0 when empty
	CLen int64 // compressed blob length; 0 when the column is empty
	ULen int64 // uncompressed column length
}

// GroupInfo describes one column group: its reference (or -1 for
// unmapped records), the zero-based base span its records start in, the
// record count, and the per-column blob locations.
type GroupInfo struct {
	RefID   int32
	Beg     int64 // zero-based start of the first record
	End     int64 // zero-based exclusive end over all records
	Records int64
	Cols    [numColumns]colEntry
}

// CompressedBytes sums the compressed column blob sizes of the group
// under the given projection (the coordinate column always counts).
func (g *GroupInfo) CompressedBytes(fields Fields) int64 {
	fields |= FieldCoord
	var n int64
	for c := 0; c < numColumns; c++ {
		if fields.Has(columnField[c]) {
			n += g.Cols[c].CLen
		}
	}
	return n
}

func (g *GroupInfo) validate(i int) error {
	if g.RefID < -1 {
		return fmt.Errorf("%w: group %d refID %d", ErrCorrupt, i, g.RefID)
	}
	if g.Records <= 0 {
		return fmt.Errorf("%w: group %d declares %d records", ErrCorrupt, i, g.Records)
	}
	if g.Cols[colCoord].ULen != g.Records*coordStride {
		return fmt.Errorf("%w: group %d coord column %d bytes for %d records",
			ErrCorrupt, i, g.Cols[colCoord].ULen, g.Records)
	}
	for c := 0; c < numColumns; c++ {
		e := g.Cols[c]
		if e.Off < 0 || e.CLen < 0 || e.ULen < 0 {
			return fmt.Errorf("%w: group %d column %d negative geometry", ErrCorrupt, i, c)
		}
		if (e.ULen == 0) != (e.CLen == 0) {
			return fmt.Errorf("%w: group %d column %d empty/non-empty mismatch", ErrCorrupt, i, c)
		}
	}
	return nil
}
