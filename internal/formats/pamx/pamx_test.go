package pamx

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"parseq/internal/bam"
	"parseq/internal/bamx"
	"parseq/internal/sam"
	"parseq/internal/simdata"
)

// writeTestBAM materialises a deterministic coordinate-sorted dataset
// (multiple references plus an unmapped tail) as a BAM file.
func writeTestBAM(t testing.TB, n int) (string, *simdata.Dataset) {
	t.Helper()
	d := simdata.Generate(simdata.DefaultConfig(n))
	path := filepath.Join(t.TempDir(), "data.bam")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBAM(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// rewriteBAM streams a BAM file through the sequential reader/writer
// pair — the canonical byte reference a PAMX round trip must reproduce.
func rewriteBAM(t testing.TB, path string) []byte {
	t.Helper()
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	br, err := bam.NewReader(bufio.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	var buf bytes.Buffer
	bw, err := bam.NewWriter(&buf, br.Header())
	if err != nil {
		t.Fatal(err)
	}
	var rec []byte
	for {
		body, err := br.ReadBody()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rec = append(rec[:0], byte(len(body)), byte(len(body)>>8), byte(len(body)>>16), byte(len(body)>>24))
		rec = append(rec, body...)
		if err := bw.WriteEncoded(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readBAMBodies collects every record body of a BAM file.
func readBAMBodies(t testing.TB, path string) [][]byte {
	t.Helper()
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	br, err := bam.NewReader(bufio.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	var bodies [][]byte
	for {
		body, err := br.ReadBody()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, append([]byte(nil), body...))
	}
	return bodies
}

// TestRoundTripByteIdentity is the correctness contract: BAM → PAMX →
// BAM reproduces the canonical rewrite byte for byte at codec workers
// {0, 1, 4} across group structures forced to target counts {1, 2, 4,
// 8}, and the PAMX file bytes themselves are identical at every worker
// count (the BGZF writer paths are bit-identical).
func TestRoundTripByteIdentity(t *testing.T) {
	const n = 2000
	bamPath, _ := writeTestBAM(t, n)
	want := rewriteBAM(t, bamPath)
	dir := t.TempDir()

	for _, target := range []int{1, 2, 4, 8} {
		groupRecords := (n + target - 1) / target
		var pamxBytes []byte
		for _, workers := range []int{0, 1, 4} {
			opts := Options{CodecWorkers: workers, GroupRecords: groupRecords}
			pamxPath := filepath.Join(dir, "data.pamx")
			count, err := FromBAM(bamPath, pamxPath, opts)
			if err != nil {
				t.Fatalf("target %d workers %d: FromBAM: %v", target, workers, err)
			}
			if count != n {
				t.Fatalf("target %d workers %d: FromBAM wrote %d records, want %d", target, workers, count, n)
			}
			raw, err := os.ReadFile(pamxPath)
			if err != nil {
				t.Fatal(err)
			}
			if pamxBytes == nil {
				pamxBytes = raw
			} else if !bytes.Equal(raw, pamxBytes) {
				t.Fatalf("target %d workers %d: PAMX bytes differ from workers-0 output", target, workers)
			}

			pf, err := OpenPath(pamxPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := pf.NumRecords(); got != n {
				t.Fatalf("target %d: footer counts %d records, want %d", target, got, n)
			}
			if got := pf.NumGroups(); got < target {
				t.Fatalf("target %d: only %d groups", target, got)
			}
			pf.Close()

			outPath := filepath.Join(dir, "back.bam")
			count, err = ToBAM(pamxPath, outPath, opts)
			if err != nil {
				t.Fatalf("target %d workers %d: ToBAM: %v", target, workers, err)
			}
			if count != n {
				t.Fatalf("target %d workers %d: ToBAM wrote %d records, want %d", target, workers, count, n)
			}
			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("target %d workers %d: round-tripped BAM differs from canonical rewrite", target, workers)
			}
		}
	}
}

// TestFromBAMXMatchesFromBAM converts the same dataset from its BAM and
// BAMX renderings and requires identical PAMX bytes — the two ingest
// paths feed identical bodies into the column splitter.
func TestFromBAMXMatchesFromBAM(t *testing.T) {
	bamPath, d := writeTestBAM(t, 500)
	dir := t.TempDir()
	bamxPath := filepath.Join(dir, "data.bamx")
	xf, err := os.Create(bamxPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bamx.BuildFromRecords(xf, d.Header, d.Records); err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}

	opts := Options{CodecWorkers: 1, GroupRecords: 100}
	fromBAM := filepath.Join(dir, "a.pamx")
	fromBAMX := filepath.Join(dir, "b.pamx")
	if _, err := FromBAM(bamPath, fromBAM, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := FromBAMX(bamxPath, fromBAMX, opts); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(fromBAM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fromBAMX)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("PAMX from BAM and from BAMX differ")
	}
}

// TestProjectionViews checks the reassembled view contract per
// projection: FieldAll reproduces the original bodies exactly; partial
// projections stay valid BAM bodies whose projected fields match the
// original and whose prefix is patched for the elided ones.
func TestProjectionViews(t *testing.T) {
	bamPath, _ := writeTestBAM(t, 600)
	pamxPath := filepath.Join(t.TempDir(), "data.pamx")
	if _, err := FromBAM(bamPath, pamxPath, Options{CodecWorkers: 1, GroupRecords: 128}); err != nil {
		t.Fatal(err)
	}
	orig := readBAMBodies(t, bamPath)
	pf, err := OpenPath(pamxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	collect := func(fields Fields) [][]byte {
		var views [][]byte
		for g := 0; g < pf.NumGroups(); g++ {
			gr, err := pf.NewGroupReader(g, fields)
			if err != nil {
				t.Fatalf("%v: %v", fields, err)
			}
			for {
				body, err := gr.NextBody()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%v: %v", fields, err)
				}
				views = append(views, append([]byte(nil), body...))
			}
			gr.Close()
		}
		return views
	}

	full := collect(FieldAll)
	if len(full) != len(orig) {
		t.Fatalf("FieldAll yields %d records, want %d", len(full), len(orig))
	}
	for i := range full {
		if !bytes.Equal(full[i], orig[i]) {
			t.Fatalf("FieldAll view %d differs from original body", i)
		}
	}

	for _, fields := range []Fields{FieldFlag, FieldCoord | FieldCigar, FieldCoord | FieldSeq, FieldQName | FieldAux} {
		views := collect(fields)
		if len(views) != len(orig) {
			t.Fatalf("%v yields %d records, want %d", fields, len(views), len(orig))
		}
		var rec sam.Record
		for i, v := range views {
			// The fixed prefix outside the patched length fields must
			// survive any projection.
			for _, off := range []int{0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 14, 15, 20, 21, 24, 25, 28, 29} {
				if v[off] != orig[i][off] {
					t.Fatalf("%v view %d: prefix byte %d = %#x, want %#x", fields, i, off, v[off], orig[i][off])
				}
			}
			// Every view must stay a decodable BAM body.
			if err := bam.DecodeRecord(v, &rec, pf.Header()); err != nil {
				t.Fatalf("%v view %d does not decode: %v", fields, i, err)
			}
			refID, beg, _ := bam.BodySpan(v)
			wantRef, wantBeg, _ := bam.BodySpan(orig[i])
			if refID != wantRef || beg != wantBeg {
				t.Fatalf("%v view %d spans (%d, %d), want (%d, %d)", fields, i, refID, beg, wantRef, wantBeg)
			}
		}
	}

	// FieldCoord|FieldCigar must reproduce the exact reference span —
	// the histogram driver depends on it.
	views := collect(FieldCoord | FieldCigar)
	for i, v := range views {
		r1, b1, e1 := bam.BodySpan(v)
		r0, b0, e0 := bam.BodySpan(orig[i])
		if r1 != r0 || b1 != b0 || e1 != e0 {
			t.Fatalf("coord|cigar view %d spans (%d, %d, %d), want (%d, %d, %d)", i, r1, b1, e1, r0, b0, e0)
		}
	}
}

// TestGroupsNeverMixReferences asserts the reference-change cut rule the
// shard provider's region filtering relies on.
func TestGroupsNeverMixReferences(t *testing.T) {
	bamPath, _ := writeTestBAM(t, 1000)
	pamxPath := filepath.Join(t.TempDir(), "data.pamx")
	if _, err := FromBAM(bamPath, pamxPath, Options{CodecWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPath(pamxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	var rec sam.Record
	for g := 0; g < pf.NumGroups(); g++ {
		info := pf.Group(g)
		gr, err := pf.NewGroupReader(g, FieldCoord)
		if err != nil {
			t.Fatal(err)
		}
		for {
			err := gr.ReadInto(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			refID := pf.Header().RefID(rec.RName)
			if int32(refID) != info.RefID {
				t.Fatalf("group %d (ref %d) holds a record on ref %d", g, info.RefID, refID)
			}
		}
		gr.Close()
	}
}

// TestOpenRejectsCorruption exercises the untrusted-input layers of
// Open: truncation, bad magic, bad trailer, and footer damage must all
// error without panicking.
func TestOpenRejectsCorruption(t *testing.T) {
	bamPath, _ := writeTestBAM(t, 200)
	pamxPath := filepath.Join(t.TempDir(), "data.pamx")
	if _, err := FromBAM(bamPath, pamxPath, Options{CodecWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(pamxPath)
	if err != nil {
		t.Fatal(err)
	}

	tryOpen := func(raw []byte) error {
		_, err := Open(bytes.NewReader(raw), int64(len(raw)))
		return err
	}
	if err := tryOpen(good); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	for cut := 0; cut < len(good); cut += 97 {
		if tryOpen(good[:cut]) == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for _, off := range []int{0, 4, len(good) - 1, len(good) - 9, len(good) - 16} {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0xff
		if tryOpen(mut) == nil {
			t.Fatalf("bit damage at offset %d accepted", off)
		}
	}
}
