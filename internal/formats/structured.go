package formats

import (
	"strconv"
	"strings"

	"parseq/internal/sam"
)

// JSON emits one JSON object per alignment, newline-delimited (NDJSON).
// One-object-per-line keeps the format order-preserving and concatenable,
// which is what lets independent partitions emit JSON in parallel.
type JSON struct{}

// Name implements Encoder.
func (JSON) Name() string { return "json" }

// Extension implements Encoder.
func (JSON) Extension() string { return ".json" }

// Header implements Encoder.
func (JSON) Header(*sam.Header) []byte { return nil }

// Encode implements Encoder.
func (JSON) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	dst = append(dst, `{"qname":`...)
	dst = appendJSONString(dst, rec.QName)
	dst = append(dst, `,"flag":`...)
	dst = appendInt(dst, int64(rec.Flag))
	dst = append(dst, `,"rname":`...)
	dst = appendJSONString(dst, rec.RName)
	dst = append(dst, `,"pos":`...)
	dst = appendInt(dst, int64(rec.Pos))
	dst = append(dst, `,"mapq":`...)
	dst = appendInt(dst, int64(rec.MapQ))
	dst = append(dst, `,"cigar":`...)
	dst = appendJSONString(dst, rec.Cigar.String())
	dst = append(dst, `,"rnext":`...)
	dst = appendJSONString(dst, rec.RNext)
	dst = append(dst, `,"pnext":`...)
	dst = appendInt(dst, int64(rec.PNext))
	dst = append(dst, `,"tlen":`...)
	dst = appendInt(dst, int64(rec.TLen))
	dst = append(dst, `,"seq":`...)
	dst = appendJSONString(dst, rec.Seq)
	dst = append(dst, `,"qual":`...)
	dst = appendJSONString(dst, rec.Qual)
	if len(rec.Tags) > 0 {
		dst = append(dst, `,"tags":{`...)
		for i, t := range rec.Tags {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, t.NameString())
			dst = append(dst, ':')
			switch t.Type {
			case 'i':
				dst = append(dst, t.Value...)
			case 'f':
				// SAM float syntax is JSON-compatible except for leading "+".
				dst = append(dst, strings.TrimPrefix(t.Value, "+")...)
			default:
				dst = appendJSONString(dst, string(t.Type)+":"+t.Value)
			}
		}
		dst = append(dst, '}')
	}
	dst = append(dst, '}', '\n')
	return dst, nil
}

// appendJSONString appends a JSON-quoted string. SAM field content is
// ASCII (tabs and newlines are field/record separators), so only quotes,
// backslashes and control bytes need escaping.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch b := s[i]; {
		case b == '"' || b == '\\':
			dst = append(dst, '\\', b)
		case b < 0x20:
			dst = append(dst, `\u00`...)
			const hex = "0123456789abcdef"
			dst = append(dst, hex[b>>4], hex[b&0xf])
		default:
			dst = append(dst, b)
		}
	}
	return append(dst, '"')
}

// YAML emits one YAML document-list item per alignment. Like the JSON
// encoder it is self-delimiting per record, so partitions concatenate.
type YAML struct{}

// Name implements Encoder.
func (YAML) Name() string { return "yaml" }

// Extension implements Encoder.
func (YAML) Extension() string { return ".yaml" }

// Header implements Encoder.
func (YAML) Header(*sam.Header) []byte { return nil }

// Encode implements Encoder.
func (YAML) Encode(dst []byte, rec *sam.Record, h *sam.Header) ([]byte, error) {
	dst = append(dst, "- qname: "...)
	dst = appendYAMLString(dst, rec.QName)
	dst = append(dst, "\n  flag: "...)
	dst = appendInt(dst, int64(rec.Flag))
	dst = append(dst, "\n  rname: "...)
	dst = appendYAMLString(dst, rec.RName)
	dst = append(dst, "\n  pos: "...)
	dst = appendInt(dst, int64(rec.Pos))
	dst = append(dst, "\n  mapq: "...)
	dst = appendInt(dst, int64(rec.MapQ))
	dst = append(dst, "\n  cigar: "...)
	dst = appendYAMLString(dst, rec.Cigar.String())
	dst = append(dst, "\n  rnext: "...)
	dst = appendYAMLString(dst, rec.RNext)
	dst = append(dst, "\n  pnext: "...)
	dst = appendInt(dst, int64(rec.PNext))
	dst = append(dst, "\n  tlen: "...)
	dst = appendInt(dst, int64(rec.TLen))
	dst = append(dst, "\n  seq: "...)
	dst = appendYAMLString(dst, rec.Seq)
	dst = append(dst, "\n  qual: "...)
	dst = appendYAMLString(dst, rec.Qual)
	if len(rec.Tags) > 0 {
		dst = append(dst, "\n  tags:"...)
		for _, t := range rec.Tags {
			dst = append(dst, "\n    "...)
			dst = append(dst, t.NameString()...)
			dst = append(dst, ": "...)
			dst = appendYAMLString(dst, string(t.Type)+":"+t.Value)
		}
	}
	return append(dst, '\n'), nil
}

// appendYAMLString quotes s when plain-scalar rules would misread it;
// SAM's special values ("*", "=") and anything with YAML indicator
// characters get double quotes.
func appendYAMLString(dst []byte, s string) []byte {
	if yamlPlainSafe(s) {
		return append(dst, s...)
	}
	return append(dst, strconv.Quote(s)...)
}

func yamlPlainSafe(s string) bool {
	if s == "" || s == "*" || s == "=" || s == "~" {
		return false
	}
	if strings.ContainsAny(s, ":#{}[],&!|>'\"%@`\\\n\t ") {
		return false
	}
	switch s[0] {
	case '-', '?', '*', '&', '=':
		return false
	}
	// Purely numeric-looking strings are quoted to preserve type.
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return false
	}
	return true
}
