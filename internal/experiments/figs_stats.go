package experiments

import (
	"fmt"
	"time"

	"parseq/internal/cluster"
	"parseq/internal/fdr"
	"parseq/internal/nlmeans"
	"parseq/internal/simdata"
)

// Fig11 reproduces the NL-means scaling figure: denoising a binned
// histogram with search radius r ∈ {20, 80, 320}, l = 15, σ = 10 (paper:
// 16M bp of histogram data in 25 bp bins, i.e. 640k bins; sequential
// times 10213 s, 41010 s and 163231 s). The real kernel is measured at
// each r on the scaled histogram to verify its Θ(N(2r+1)(2l+1)) cost
// profile, and the cluster model runs from the paper's sequential anchors.
func Fig11(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	v := simdata.Histogram(sc.Bins, 101)
	radii := []int{20, 80, 320}
	paperSeq := []float64{10213, 41010, 163231}
	const paperBins = 640_000 // 16M bp at 25 bp per bin

	notes := []string{
		fmt.Sprintf("measured histogram: %d bins (paper: 640k bins), l=15, σ=10", sc.Bins),
		"paper's finding to reproduce: near-linear scaling, improving as r grows (compute dominates the halo-replication overhead)",
	}
	ws := make([]cluster.Workload, len(radii))
	measured := make([]float64, len(radii))
	for i, r := range radii {
		p := nlmeans.Params{R: r, L: 15, Sigma: 10}
		start := time.Now()
		if _, err := nlmeans.Denoise(v, p); err != nil {
			return nil, err
		}
		measured[i] = time.Since(start).Seconds()
		bytes := int64(8 * paperBins)
		ws[i] = paperWorkload(sc.Machine, fmt.Sprintf("nlmeans r=%d", r),
			paperSeq[i], 1, bytes, bytes, 0, 1)
		notes = append(notes, fmt.Sprintf("r=%d: measured sequential kernel %s at %d bins (paper anchor: %.0f s at 640k bins)",
			r, fseconds(measured[i]), sc.Bins, paperSeq[i]))
	}
	// Sanity note: the measured kernel cost must grow ≈ linearly with r,
	// the profile the paper's sequential times exhibit.
	if measured[0] > 0 {
		notes = append(notes, fmt.Sprintf(
			"measured cost ratios r=80/r=20: %.1f (paper: %.1f), r=320/r=20: %.1f (paper: %.1f)",
			measured[1]/measured[0], paperSeq[1]/paperSeq[0],
			measured[2]/measured[0], paperSeq[2]/paperSeq[0]))
	}
	rep := &Report{
		ID:      "fig11",
		Title:   "Speedup of NL-means processing (modelled from the paper's sequential anchors; kernel costs verified by measurement)",
		Columns: []string{"Cores", "r=20", "r=80", "r=320"},
		Notes:   notes,
	}
	if err := addSpeedupRows(rep, sc, ws); err != nil {
		return nil, err
	}
	return rep, nil
}

// paperFig12 is the paper's reported FDR speedup series.
var paperFig12 = map[int]float64{
	8: 8.30, 16: 16.60, 32: 33.15, 64: 66.16, 128: 132.14, 256: 263.94,
}

// Fig12 reproduces the FDR computation scaling figure: 1 histogram + B
// simulation datasets (paper: B=80, 16M bins each, 1164 s sequential).
// Algorithm 2's fused reduction is measured on the scaled data for
// correctness and cost, and modelled at the paper's anchor up to 256
// cores; the two-pass formulation is modelled alongside to show the
// fusion's saved synchronisation.
func Fig12(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	hist := simdata.Histogram(sc.Bins, 111)
	sims := simdata.Simulations(sc.Sims, sc.Bins, 112)
	pt := float64(sc.Sims) / 4

	// Measure both kernels: the fused single sweep and the unfused double
	// sweep. Their measured ratio is the fusion's real compute saving;
	// the extra barrier is the synchronisation saving.
	start := time.Now()
	if _, err := fdr.Fused(hist, sims, pt); err != nil {
		return nil, err
	}
	fusedSecs := time.Since(start).Seconds()
	start = time.Now()
	if _, err := fdr.TwoPass(hist, sims, pt); err != nil {
		return nil, err
	}
	twoPassSecs := time.Since(start).Seconds()
	rel := twoPassSecs / fusedSecs
	if rel < 1 {
		rel = 1 // the fused kernel never loses; clamp measurement noise
	}

	// The FDR inputs live in memory after distribution (the paper's 16M
	// bins × 81 datasets fit the cluster's aggregate RAM), so the model
	// carries no disk term — matching the paper's near-linear curve.
	fused := paperWorkload(sc.Machine, "fdr fused", 1164, 1, 0, 0, 0, 1)
	twoPass := paperWorkload(sc.Machine, "fdr two-pass", 1164, rel, 0, 0, 0, 2)

	rep := &Report{
		ID:      "fig12",
		Title:   "Speedup of FDR computation (modelled from the paper's 1164 s sequential anchor)",
		Columns: []string{"Cores", "Fused (Alg. 2)", "Two-pass", "Paper"},
		Notes: []string{
			fmt.Sprintf("measured sequential fused FDR: %s for %d bins × %d simulations (paper: 1164 s avg for 16M bins × 80 sims)",
				fseconds(fusedSecs), sc.Bins, sc.Sims),
			fmt.Sprintf("measured fusion saving: two-pass kernel costs %.2fx the fused kernel", rel),
			"paper's finding to reproduce: near-linear speedup; the summation permutation gains extra speedup over two separate reductions",
			"the paper's slight superlinearity at 256 cores (263.94x) is a cache effect the analytic model does not carry",
		},
	}
	// Both parallel variants are compared against the one sequential
	// baseline, as the paper's Figure 12 does ("compared with the
	// sequential version that averagely consumes 1164 s").
	tSeq, err := sc.Machine.Time(fused, 1)
	if err != nil {
		return nil, err
	}
	for _, cores := range []int{8, 16, 32, 64, 128, 256} {
		tf, err := sc.Machine.Time(fused, cores)
		if err != nil {
			return nil, err
		}
		tt, err := sc.Machine.Time(twoPass, cores)
		if err != nil {
			return nil, err
		}
		paper := "-"
		if v, ok := paperFig12[cores]; ok {
			paper = fmt.Sprintf("%.2fx", v)
		}
		rep.AddRow(fmt.Sprintf("%d", cores), fspeedup(tSeq/tf), fspeedup(tSeq/tt), paper)
	}
	return rep, nil
}
