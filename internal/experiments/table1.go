package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"parseq/internal/conv"
	"parseq/internal/picard"
)

// table1Reps is how many times each sequential conversion runs; the
// minimum is reported, suppressing scheduler and page-cache noise.
const table1Reps = 3

// bestOf runs fn table1Reps times and returns the smallest duration.
func bestOf(fn func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < table1Reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Table1 reproduces the sequential comparison against Picard: SAM→FASTQ
// and BAM→SAM with our converters (with and without preprocessing)
// against the conventional record-object baseline. All runs are real
// sequential executions on the scaled dataset (paper datasets: 37.54 GB
// SAM / 7.72 GB BAM restricted to chr1).
func Table1(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	// The paper's Table I datasets are single-chromosome (chr1) extracts.
	samPath, bamPath, err := sc.datasetPaths(1)
	if err != nil {
		return nil, err
	}
	outDir := sc.TmpDir

	r := &Report{
		ID:    "table1",
		Title: "Sequential comparison against Picard (measured, scaled dataset)",
		Columns: []string{"Conversion", "System", "Measured", "Paper(s)",
			"vs baseline"},
		Notes: []string{
			fmt.Sprintf("dataset: %d chr1 reads (SAM %d bytes, BAM %d bytes); paper: 37.54 GB SAM / 7.72 GB BAM",
				sc.Reads, fileSize(samPath), fileSize(bamPath)),
			"'with preprocessing' times exclude the preprocessing pass, as in the paper (amortised across conversions)",
		},
	}

	// --- SAM → FASTQ ---
	noPre, err := bestOf(func() (time.Duration, error) {
		// ParseWorkers pinned to 1: Table I anchors the *sequential*
		// line-at-a-time converter, so the batch parse pipeline must not
		// kick in here (same rationale as the CodecWorkers pin below).
		res, err := conv.ConvertSAM(samPath, conv.Options{
			Format: "fastq", Cores: 1, OutDir: outDir, OutPrefix: "t1_sam_nopre", ParseWorkers: 1,
		})
		if err != nil {
			return 0, err
		}
		return res.Stats.PartitionTime + res.Stats.ConvertTime, nil
	})
	if err != nil {
		return nil, err
	}
	pre, err := conv.PreprocessSAMParallelWorkers(samPath, outDir, "t1_pre", 1, 1)
	if err != nil {
		return nil, err
	}
	withPre, err := bestOf(func() (time.Duration, error) {
		res, err := conv.ConvertPreprocessed(pre.BAMXFiles, pre.BAIXFiles, conv.Options{
			Format: "fastq", Cores: 1, OutDir: outDir, OutPrefix: "t1_sam_pre",
		})
		if err != nil {
			return 0, err
		}
		return res.Stats.PartitionTime + res.Stats.ConvertTime, nil
	})
	if err != nil {
		return nil, err
	}
	base, err := bestOf(func() (time.Duration, error) {
		st, err := picard.SamToFastq(samPath, filepath.Join(outDir, "t1_picard.fastq"))
		if err != nil {
			return 0, err
		}
		return st.Duration, nil
	})
	if err != nil {
		return nil, err
	}
	addTable1Rows(r, "SAM→FASTQ", noPre, withPre, base, 3214, 2804, 3121)

	// --- BAM → SAM ---
	noPreBAM, err := bestOf(func() (time.Duration, error) {
		// CodecWorkers pinned to 1: Table I reproduces the *sequential*
		// baseline, so the adaptive codec default must not kick in here.
		res, err := conv.ConvertBAMSequential(bamPath, conv.Options{
			Format: "sam", OutDir: outDir, OutPrefix: "t1_bam_nopre", CodecWorkers: 1,
		})
		if err != nil {
			return 0, err
		}
		return res.Stats.ConvertTime, nil
	})
	if err != nil {
		return nil, err
	}
	bamxPath := filepath.Join(outDir, "t1.bamx")
	baixPath := filepath.Join(outDir, "t1.baix")
	if _, err := conv.PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, sc.CodecWorkers); err != nil {
		return nil, err
	}
	withPreBAM, err := bestOf(func() (time.Duration, error) {
		res, err := conv.ConvertBAMX(bamxPath, baixPath, conv.Options{
			Format: "sam", Cores: 1, OutDir: outDir, OutPrefix: "t1_bam_pre",
		})
		if err != nil {
			return 0, err
		}
		return res.Stats.PartitionTime + res.Stats.ConvertTime, nil
	})
	if err != nil {
		return nil, err
	}
	baseBAM, err := bestOf(func() (time.Duration, error) {
		st, err := picard.BamToSam(bamPath, filepath.Join(outDir, "t1_picard.sam"))
		if err != nil {
			return 0, err
		}
		return st.Duration, nil
	})
	if err != nil {
		return nil, err
	}
	addTable1Rows(r, "BAM→SAM", noPreBAM, withPreBAM, baseBAM, 2043, 1548, 1425)
	return r, nil
}

func addTable1Rows(r *Report, conversion string, noPre, withPre, baseline time.Duration,
	paperNoPre, paperWithPre, paperBase float64) {

	ratio := func(d time.Duration) string {
		return fmt.Sprintf("%+.0f%%", 100*(d.Seconds()-baseline.Seconds())/baseline.Seconds())
	}
	r.AddRow(conversion, "ours, no preprocessing", fseconds(noPre.Seconds()),
		fmt.Sprintf("%.0f", paperNoPre), ratio(noPre))
	r.AddRow(conversion, "ours, with preprocessing", fseconds(withPre.Seconds()),
		fmt.Sprintf("%.0f", paperWithPre), ratio(withPre))
	r.AddRow(conversion, "baseline (Picard-style)", fseconds(baseline.Seconds()),
		fmt.Sprintf("%.0f", paperBase), "+0%")
}
