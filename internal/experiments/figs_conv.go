package experiments

import (
	"fmt"
	"path/filepath"

	"parseq/internal/cluster"
	"parseq/internal/conv"
)

var figFormats = []string{"bed", "bedgraph", "fasta"}

const gb = float64(1 << 30)

// Paper-anchored sequential processing rates, derived from Table I.
// The model extrapolates at the paper's dataset scale: our Go code runs
// on a 2020s core and would otherwise look artificially I/O-bound
// against the 2014 cluster's 100 MB/s disks.
const (
	// paperSAMFastqRate is seconds per GB of SAM input for text-parsing
	// conversions (Table I: 3214 s / 37.54 GB).
	paperSAMFastqRate = 3214.0 / 37.54
	// paperPreSAMFastqRate is the same conversion reading preprocessed
	// BAMX (Table I: 2804 s / 37.54 GB of original SAM).
	paperPreSAMFastqRate = 2804.0 / 37.54
	// paperBAMXRate is seconds per GB of BAM input for BAMX-based
	// conversion (Table I with preprocessing: 1548 s / 7.72 GB).
	paperBAMXRate = 1548.0 / 7.72
)

// paperWorkload builds a paper-scale workload: byte counts at the
// paper's dataset size and compute anchored to a paper-reported
// sequential time, with our measured runs supplying the relative compute
// cost across variants (relCPU = measured seconds of this variant /
// measured seconds of the anchor's variant).
func paperWorkload(m cluster.Machine, name string, anchorSeconds, relCPU float64,
	paperRead, paperWrite int64, seqSeconds float64, barriers int) cluster.Workload {
	w := cluster.Workload{
		Name:       name,
		ReadBytes:  paperRead,
		WriteBytes: paperWrite,
		SeqSeconds: seqSeconds,
		Barriers:   barriers,
	}
	w = m.CalibrateCPU(w, anchorSeconds)
	w.CPUSeconds *= relCPU
	return w
}

// bamxIOBonus is the effective-bandwidth factor regular fixed-stride
// BAMX streaming gains over ragged text, per the paper's MPI-IO
// observation. Applied to every BAMX-based workload.
const bamxIOBonus = 1.3

// measureSAMConversion runs one sequential SAM conversion and returns
// its wall seconds and output bytes.
func measureSAMConversion(sc *Scale, samPath, format, prefix string) (float64, int64, error) {
	res, err := conv.ConvertSAM(samPath, conv.Options{
		Format: format, Cores: 1, OutDir: sc.TmpDir, OutPrefix: prefix + format,
		ParseWorkers: sc.ParseWorkers,
	})
	if err != nil {
		return 0, 0, err
	}
	return (res.Stats.PartitionTime + res.Stats.ConvertTime).Seconds(), res.Stats.BytesOut, nil
}

// Fig6 reproduces the SAM format converter speedup figure: conversion of
// a SAM dataset into BED, BEDGRAPH and FASTA at 1-128 cores (paper
// dataset: 100 GB). Relative per-format compute costs and output sizes
// are measured from real sequential runs; the cluster model extrapolates
// them at paper scale.
func Fig6(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	samPath, _, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	samSize := fileSize(samPath)
	const paperSAMBytes = 100 * gb
	scaleUp := paperSAMBytes / float64(samSize)

	// Compute is anchored to Table I's SAM rate and held equal across
	// target formats: per-record cost is dominated by parsing the input
	// line, which every format shares. The formats differ in their
	// measured output volume — the I/O term the paper's Figure 6
	// discussion turns on.
	anchor := paperSAMFastqRate * 100
	workloads := make([]cluster.Workload, len(figFormats))
	measuredNote := "measured 1-core runs:"
	for i, format := range figFormats {
		secs, outBytes, err := measureSAMConversion(&sc, samPath, format, "fig6_")
		if err != nil {
			return nil, err
		}
		measuredNote += fmt.Sprintf(" %s %s/%dB", format, fseconds(secs), outBytes)
		workloads[i] = paperWorkload(sc.Machine, "sam→"+format,
			anchor, 1,
			int64(paperSAMBytes), int64(float64(outBytes)*scaleUp), 0, 0)
	}
	r := &Report{
		ID:      "fig6",
		Title:   "Conversion speedup of SAM format converter (measured 1-core profile, modelled at paper scale)",
		Columns: []string{"Cores", "BED", "BEDGRAPH", "FASTA"},
		Notes: []string{
			fmt.Sprintf("measured dataset: %d reads, %d SAM bytes; modelled at the paper's 100 GB on %d-core nodes with %.0f MB/s shared disk",
				sc.Reads, samSize, sc.Machine.CoresPerNode, sc.Machine.DiskMBps),
			"paper's finding to reproduce: all three scale well; BEDGRAPH scales best (least output text → least I/O-bound)",
			measuredNote,
		},
	}
	if err := addSpeedupRows(r, sc, workloads); err != nil {
		return nil, err
	}
	return r, nil
}

// addSpeedupRows fills one speedup row per core count, one column per
// workload.
func addSpeedupRows(r *Report, sc Scale, workloads []cluster.Workload) error {
	for _, cores := range sc.coresFig {
		row := []string{fmt.Sprintf("%d", cores)}
		for _, w := range workloads {
			s, err := sc.Machine.Speedup(w, cores)
			if err != nil {
				return err
			}
			row = append(row, fspeedup(s))
		}
		r.AddRow(row...)
	}
	return nil
}

// Fig7 reproduces the full-conversion speedup of the BAM format
// converter: BAMX-based conversion into BED, BEDGRAPH and FASTA at 1-128
// cores (paper dataset: 117 GB sorted BAM).
func Fig7(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	_, bamPath, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	bamxPath := filepath.Join(sc.TmpDir, "fig7.bamx")
	baixPath := filepath.Join(sc.TmpDir, "fig7.baix")
	if _, err := conv.PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, sc.CodecWorkers); err != nil {
		return nil, err
	}
	bamxSize := fileSize(bamxPath)
	const paperBAMBytes = 117 * gb
	scaleUp := paperBAMBytes / float64(bamxSize)

	measure := func(format, prefix string) (float64, int64, error) {
		res, err := conv.ConvertBAMX(bamxPath, baixPath, conv.Options{
			Format: format, Cores: 1, OutDir: sc.TmpDir, OutPrefix: prefix + format,
		})
		if err != nil {
			return 0, 0, err
		}
		return (res.Stats.PartitionTime + res.Stats.ConvertTime).Seconds(), res.Stats.BytesOut, nil
	}
	anchor := paperBAMXRate * 117
	workloads := make([]cluster.Workload, len(figFormats))
	measuredNote := "measured 1-core runs:"
	for i, format := range figFormats {
		secs, outBytes, err := measure(format, "fig7_")
		if err != nil {
			return nil, err
		}
		measuredNote += fmt.Sprintf(" %s %s/%dB", format, fseconds(secs), outBytes)
		workloads[i] = paperWorkload(sc.Machine, "bamx→"+format,
			anchor, 1,
			int64(paperBAMBytes), int64(float64(outBytes)*scaleUp), 0, 0)
		workloads[i].IOBonus = bamxIOBonus
	}
	r := &Report{
		ID:      "fig7",
		Title:   "Full conversion speedup of BAM format converter (measured 1-core profile, modelled at paper scale)",
		Columns: []string{"Cores", "BED", "BEDGRAPH", "FASTA"},
		Notes: []string{
			fmt.Sprintf("measured BAMX input: %d bytes; modelled at the paper's 117 GB; preprocessing excluded (amortised)", bamxSize),
			"paper's finding to reproduce: good scaling from (1) regular padded layout aiding I/O and (2) fully independent per-rank conversion",
			measuredNote,
		},
	}
	if err := addSpeedupRows(r, sc, workloads); err != nil {
		return nil, err
	}
	return r, nil
}

// Fig8 reproduces the partial-conversion experiment: converting 20-100%
// chromosome-region subsets of the BAM dataset into SAM at 8-128 cores.
// The check is the paper's: conversion time stays proportional to the
// subset size at every core count, because the BAIX binary search makes
// region lookup free.
func Fig8(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	_, bamPath, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	bamxPath := filepath.Join(sc.TmpDir, "fig8.bamx")
	baixPath := filepath.Join(sc.TmpDir, "fig8.baix")
	if _, err := conv.PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, sc.CodecWorkers); err != nil {
		return nil, err
	}
	bamxSize := fileSize(bamxPath)
	const paperBAMBytes = 117 * gb
	scaleUp := paperBAMBytes / float64(bamxSize)

	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	type run struct {
		secs    float64
		in, out int64
		records int64
	}
	runs := make([]run, len(fractions))
	for i, frac := range fractions {
		res, err := conv.ConvertBAMX(bamxPath, baixPath, conv.Options{
			Format: "sam", Cores: 1, OutDir: sc.TmpDir,
			OutPrefix: fmt.Sprintf("fig8_%02.0f", frac*100),
			Region:    regionForFraction(frac),
		})
		if err != nil {
			return nil, err
		}
		runs[i] = run{
			secs:    (res.Stats.PartitionTime + res.Stats.ConvertTime).Seconds(),
			in:      res.Stats.BytesIn,
			out:     res.Stats.BytesOut,
			records: res.Stats.Records,
		}
	}
	full := runs[len(runs)-1]
	// Anchor: the 100% chr1 subset at the paper's scale and rate.
	anchor := paperBAMXRate * 117 * (float64(full.in) / float64(bamxSize))

	workloads := make([]cluster.Workload, len(fractions))
	var recordCounts []int64
	for i, frac := range fractions {
		workloads[i] = paperWorkload(sc.Machine, fmt.Sprintf("partial %.0f%%", frac*100),
			anchor, float64(runs[i].records)/float64(full.records),
			int64(float64(runs[i].in)*scaleUp), int64(float64(runs[i].out)*scaleUp), 0, 0)
		workloads[i].IOBonus = bamxIOBonus
		recordCounts = append(recordCounts, runs[i].records)
	}

	r := &Report{
		ID:      "fig8",
		Title:   "Partial conversion times of BAM format converter (modelled, normalised to the 100% subset per core count)",
		Columns: []string{"Cores", "20%", "40%", "60%", "80%", "100%"},
		Notes: []string{
			fmt.Sprintf("records selected per subset: %v", recordCounts),
			"paper's finding to reproduce: times ≈ proportional to the region fraction; BAIX binary-search overhead is trivial",
		},
	}
	for _, cores := range []int{8, 16, 32, 64, 128} {
		row := []string{fmt.Sprintf("%d", cores)}
		t100, err := sc.Machine.Time(workloads[len(workloads)-1], cores)
		if err != nil {
			return nil, err
		}
		for _, w := range workloads {
			tp, err := sc.Machine.Time(w, cores)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", tp/t100))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// regionForFraction maps a subset fraction to a chromosome-region query:
// the generator places reads uniformly, so the first frac of chr1's
// positions holds ≈ frac of chr1's reads. All fractions query chr1 and
// Fig8 normalises against the 100% chr1 subset, mirroring the paper's
// region-subset construction.
func regionForFraction(frac float64) *conv.Region {
	const chr1Len = 197195 // MouseChromosomes(1000) chr1 length
	end := int32(float64(chr1Len) * frac)
	if end < 1 {
		end = 1
	}
	return &conv.Region{RName: "chr1", Beg: 1, End: end}
}
