package experiments

import (
	"os"
	"path/filepath"

	"parseq/internal/cluster"
	"parseq/internal/simdata"
)

// Scale sets the workload sizes the experiments run at. The paper's
// datasets (37.5-117 GB alignments, 16M-bin histograms) are scaled to
// laptop size; the cluster model extrapolates the parallel behaviour, so
// speedup shapes do not depend on the absolute size (compute and I/O
// shrink together).
type Scale struct {
	Reads   int    // alignment records per generated dataset
	Bins    int    // histogram bins for the statistical experiments
	Sims    int    // FDR simulation datasets (paper: 80)
	TmpDir  string // scratch directory; "" uses a fresh temp dir
	KeepTmp bool   // leave scratch files behind for inspection
	// CodecWorkers is the number of BGZF/deflate codec goroutines the
	// BAM preprocessing and BAMZ compression steps use; 0 selects the
	// adaptive default (bgzf.AutoWorkers), 1 the sequential codec. The
	// *measured* sequential baselines (Table I BAM→SAM, the BAMZ
	// ablation) pin their own codec to 1 regardless, preserving the
	// paper's configuration.
	CodecWorkers int
	// ParseWorkers is the per-rank parse/encode goroutine count the
	// measured SAM-text conversions run with (conv.Options.ParseWorkers);
	// 0 selects the adaptive default, 1 the sequential line loop. Table I
	// pins its own runs to 1 regardless: its measured times anchor the
	// paper's *sequential* converter, so the batch pipeline must not leak
	// into the baseline.
	ParseWorkers int
	Machine      cluster.Machine
	coresFig     []int // core counts for the figure sweeps
}

// DefaultScale is sized so the full suite finishes in a couple of
// minutes on one core.
func DefaultScale() Scale {
	return Scale{
		Reads:   20000,
		Bins:    40000,
		Sims:    80,
		Machine: cluster.Paper(),
	}
}

// QuickScale is sized for unit tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		Reads:   1500,
		Bins:    3000,
		Sims:    10,
		Machine: cluster.Paper(),
	}
}

func (s *Scale) normalize() error {
	if s.Reads <= 0 {
		s.Reads = DefaultScale().Reads
	}
	if s.Bins <= 0 {
		s.Bins = DefaultScale().Bins
	}
	if s.Sims <= 0 {
		s.Sims = DefaultScale().Sims
	}
	if s.Machine.CoresPerNode == 0 {
		s.Machine = cluster.Paper()
	}
	if len(s.coresFig) == 0 {
		s.coresFig = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if s.TmpDir == "" {
		dir, err := os.MkdirTemp("", "parseq-exp-")
		if err != nil {
			return err
		}
		s.TmpDir = dir
	}
	return os.MkdirAll(s.TmpDir, 0o755)
}

// cleanup removes the scratch directory unless KeepTmp is set.
func (s *Scale) cleanup() {
	if !s.KeepTmp && s.TmpDir != "" {
		os.RemoveAll(s.TmpDir)
	}
}

// datasetPaths materialises the generated dataset as SAM and BAM files
// in the scratch dir (idempotent per Scale).
func (s *Scale) datasetPaths(chromsOnly int) (samPath, bamPath string, err error) {
	cfg := simdata.DefaultConfig(s.Reads)
	if chromsOnly > 0 {
		cfg.Chromosomes = cfg.Chromosomes[:chromsOnly]
	}
	d := simdata.Generate(cfg)
	samPath = filepath.Join(s.TmpDir, "dataset.sam")
	bamPath = filepath.Join(s.TmpDir, "dataset.bam")
	sf, err := os.Create(samPath)
	if err != nil {
		return "", "", err
	}
	if err := d.WriteSAM(sf); err != nil {
		sf.Close()
		return "", "", err
	}
	if err := sf.Close(); err != nil {
		return "", "", err
	}
	bf, err := os.Create(bamPath)
	if err != nil {
		return "", "", err
	}
	if err := d.WriteBAM(bf); err != nil {
		bf.Close()
		return "", "", err
	}
	if err := bf.Close(); err != nil {
		return "", "", err
	}
	return samPath, bamPath, nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
