package experiments

import (
	"fmt"

	"parseq/internal/cluster"
	"parseq/internal/conv"
)

// Fig9 reproduces the comparison of the preprocessing-optimized SAM
// format converter against the original SAM format converter: conversion
// speedups into BED, BEDGRAPH and FASTA for both (paper dataset: 15.7 GB
// SAM; preprocessing cost excluded, as in the paper's "_P" bars).
func Fig9(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	samPath, _, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	samSize := fileSize(samPath)
	paperSAMBytes := 15.7 * gb
	scaleUp := paperSAMBytes / float64(samSize)

	// --- Original converter: anchored to Table I's plain-SAM rate.
	// Compute is held equal across target formats (parse-dominated); the
	// formats differ in measured output volume. ---
	anchorOrig := paperSAMFastqRate * 15.7
	orig := make([]cluster.Workload, len(figFormats))
	for i, format := range figFormats {
		_, outBytes, err := measureSAMConversion(&sc, samPath, format, "fig9o_")
		if err != nil {
			return nil, err
		}
		orig[i] = paperWorkload(sc.Machine, "sam→"+format,
			anchorOrig, 1,
			int64(paperSAMBytes), int64(float64(outBytes)*scaleUp), 0, 0)
	}

	// --- Preprocessing-optimized converter: anchored to Table I's
	// preprocessed rate; input is the binary BAMX shards. ---
	pre, err := conv.PreprocessSAMParallelWorkers(samPath, sc.TmpDir, "fig9_pre", 1, sc.ParseWorkers)
	if err != nil {
		return nil, err
	}
	bamxSize := int64(0)
	for _, f := range pre.BAMXFiles {
		bamxSize += fileSize(f)
	}
	paperBAMXBytes := float64(bamxSize) * scaleUp
	measurePre := func(format, prefix string) (float64, int64, error) {
		res, err := conv.ConvertPreprocessed(pre.BAMXFiles, pre.BAIXFiles, conv.Options{
			Format: format, Cores: 1, OutDir: sc.TmpDir, OutPrefix: prefix + format,
		})
		if err != nil {
			return 0, 0, err
		}
		return (res.Stats.PartitionTime + res.Stats.ConvertTime).Seconds(), res.Stats.BytesOut, nil
	}
	anchorPre := paperPreSAMFastqRate * 15.7
	opt := make([]cluster.Workload, len(figFormats))
	for i, format := range figFormats {
		_, outBytes, err := measurePre(format, "fig9p_")
		if err != nil {
			return nil, err
		}
		opt[i] = paperWorkload(sc.Machine, "bamx→"+format,
			anchorPre, 1,
			int64(paperBAMXBytes), int64(float64(outBytes)*scaleUp), 0, 0)
		opt[i].IOBonus = bamxIOBonus
	}

	r := &Report{
		ID:    "fig9",
		Title: "Preprocessing-optimized vs original SAM format converter (modelled speedups; _P = with preprocessing)",
		Columns: []string{"Cores", "BED", "BEDGRAPH", "FASTA",
			"BED_P", "BEDGRAPH_P", "FASTA_P"},
		Notes: []string{
			fmt.Sprintf("measured SAM input: %d bytes, BAMX shards: %d bytes; modelled at the paper's 15.7 GB", samSize, bamxSize),
			"paper's 128-core times: BED 16.64s→11.51s (+30.8%), BEDGRAPH 15.10s→11.48s (+24.0%), FASTA 18.54s→12.80s (+31.0%)",
		},
	}
	if err := addSpeedupRows(r, sc, append(append([]cluster.Workload{}, orig...), opt...)); err != nil {
		return nil, err
	}

	// Modelled 128-core times and improvement factors, against the
	// paper's reported values.
	paperImp := map[string]string{"bed": "30.8%", "bedgraph": "24.0%", "fasta": "31.0%"}
	for i, format := range figFormats {
		t128o, err := sc.Machine.Time(orig[i], 128)
		if err != nil {
			return nil, err
		}
		t128p, err := sc.Machine.Time(opt[i], 128)
		if err != nil {
			return nil, err
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: modelled 128-core times %s → %s, improvement %.1f%% (paper: %s)",
			format, fseconds(t128o), fseconds(t128p),
			100*(t128o-t128p)/t128p, paperImp[format]))
	}
	return r, nil
}

// Fig10 reproduces the preprocessing speedup of the
// preprocessing-optimized SAM format converter: the SAM→BAMX
// preprocessing phase at 1-128 cores (paper: 15.7 GB SAM, 2187 s
// sequential — the anchor the model uses directly).
func Fig10(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	samPath, _, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	samSize := fileSize(samPath)
	paperSAMBytes := 15.7 * gb
	scaleUp := paperSAMBytes / float64(samSize)

	pre, err := conv.PreprocessSAMParallelWorkers(samPath, sc.TmpDir, "fig10", 1, sc.ParseWorkers)
	if err != nil {
		return nil, err
	}
	bamxSize := int64(0)
	for _, f := range pre.BAMXFiles {
		bamxSize += fileSize(f)
	}
	w := paperWorkload(sc.Machine, "sam→bamx", 2187, 1,
		int64(paperSAMBytes), int64(float64(bamxSize)*scaleUp), 0, 0)

	r := &Report{
		ID:      "fig10",
		Title:   "Preprocessing speedup of preprocessing-optimized SAM format converter (modelled)",
		Columns: []string{"Cores", "Speedup"},
		Notes: []string{
			fmt.Sprintf("measured sequential preprocessing: %s for %d bytes; modelled at the paper's 2187 s for 15.7 GB",
				fseconds(pre.Duration.Seconds()), samSize),
			"paper's finding to reproduce: scalability within a node bridled by I/O; scales well across nodes via Algorithm 1",
		},
	}
	if err := addSpeedupRows(r, sc, []cluster.Workload{w}); err != nil {
		return nil, err
	}
	return r, nil
}
