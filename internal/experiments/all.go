package experiments

import (
	"fmt"
	"io"
	"sort"
)

// registry maps experiment IDs to their drivers.
var registry = map[string]func(Scale) (*Report, error){
	"table1":    Table1,
	"fig6":      Fig6,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"ablations": Ablations,
}

// order fixes the presentation order of All.
var order = []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations"}

// IDs lists the available experiment identifiers.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, sc Scale) (*Report, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return f(sc)
}

// All runs every experiment in paper order.
func All(sc Scale) ([]*Report, error) {
	reports := make([]*Report, 0, len(order))
	for _, id := range order {
		r, err := registry[id](sc)
		if err != nil {
			return reports, fmt.Errorf("experiments: %s: %w", id, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// PrintAll runs and prints every experiment.
func PrintAll(w io.Writer, sc Scale) error {
	reports, err := All(sc)
	for _, r := range reports {
		if perr := r.Print(w); perr != nil {
			return perr
		}
	}
	return err
}
