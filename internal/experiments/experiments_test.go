package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick(t *testing.T) Scale {
	t.Helper()
	sc := QuickScale()
	sc.TmpDir = t.TempDir()
	sc.KeepTmp = true // the test's TempDir handles cleanup
	return sc
}

// parseSpeedup reads "12.34x" cells.
func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

func TestIDsAndRun(t *testing.T) {
	ids := IDs()
	if len(ids) != 9 {
		t.Fatalf("IDs = %v", ids)
	}
	if _, err := Run("nope", quick(t)); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestReportPrint(t *testing.T) {
	r := &Report{
		ID: "t", Title: "test", Columns: []string{"A", "Blong"},
		Notes: []string{"a note"},
	}
	r.AddRow("1", "2")
	var buf bytes.Buffer
	if err := r.Print(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: test ==", "A  Blong", "1  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(quick(t))
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	// Each row: conversion, system, measured, paper, ratio.
	for _, row := range r.Rows {
		if len(row) != 5 {
			t.Fatalf("row = %v", row)
		}
	}
	if r.Rows[0][0] != "SAM→FASTQ" || r.Rows[3][0] != "BAM→SAM" {
		t.Errorf("unexpected conversions: %v / %v", r.Rows[0][0], r.Rows[3][0])
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	r, err := Fig6(quick(t))
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(r.Rows) != 8 { // 1..128 cores
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Speedups increase monotonically per column and start at 1x.
	for col := 1; col <= 3; col++ {
		prev := 0.0
		for i, row := range r.Rows {
			s := parseSpeedup(t, row[col])
			if i == 0 && (s < 0.99 || s > 1.01) {
				t.Errorf("col %d speedup(1) = %g", col, s)
			}
			if s < prev {
				t.Errorf("col %d speedup not monotone at row %d: %g < %g", col, i, s, prev)
			}
			prev = s
		}
	}
	// BEDGRAPH (col 2) scales at least as well as BED (col 1) at 128 cores.
	last := r.Rows[len(r.Rows)-1]
	if parseSpeedup(t, last[2]) < parseSpeedup(t, last[1])*0.95 {
		t.Errorf("BEDGRAPH %s not ≥ BED %s at 128 cores", last[2], last[1])
	}
}

func TestFig7Runs(t *testing.T) {
	r, err := Fig7(quick(t))
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(r.Rows) != 8 || len(r.Columns) != 4 {
		t.Fatalf("shape = %dx%d", len(r.Rows), len(r.Columns))
	}
	last := r.Rows[len(r.Rows)-1]
	if s := parseSpeedup(t, last[1]); s < 4 {
		t.Errorf("BAMX conversion speedup at 128 = %g, want substantial", s)
	}
}

func TestFig8Proportionality(t *testing.T) {
	r, err := Fig8(quick(t))
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	// Normalised times: 20% subset should cost well under half the 100%
	// run at every core count, and the 100% column is 1.00 by definition.
	for _, row := range r.Rows {
		t20, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		t100, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if t100 != 1.00 {
			t.Errorf("100%% column = %g", t100)
		}
		if t20 > 0.55 {
			t.Errorf("cores=%s: 20%% subset cost %g of full, want ≲ 0.5", row[0], t20)
		}
	}
}

func TestFig9ReportsImprovement(t *testing.T) {
	r, err := Fig9(quick(t))
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(r.Columns) != 7 {
		t.Fatalf("columns = %v", r.Columns)
	}
	// The preprocessed converter scales at least as well as the original
	// at 128 cores (regular layout, binary input).
	last := r.Rows[len(r.Rows)-1]
	for col := 1; col <= 3; col++ {
		orig := parseSpeedup(t, last[col])
		pre := parseSpeedup(t, last[col+3])
		if pre < orig*0.9 {
			t.Errorf("column %s: preprocessed speedup %g below original %g",
				r.Columns[col], pre, orig)
		}
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "improvement") {
			found = true
		}
	}
	if !found {
		t.Error("improvement notes missing")
	}
}

func TestFig10Runs(t *testing.T) {
	r, err := Fig10(quick(t))
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	last := parseSpeedup(t, r.Rows[len(r.Rows)-1][1])
	if last < 4 {
		t.Errorf("preprocessing speedup at 128 = %g", last)
	}
}

func TestFig11NearLinearAndImprovingWithR(t *testing.T) {
	sc := quick(t)
	sc.Bins = 2000 // keep the r=320 kernel quick
	r, err := Fig11(sc)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	last := r.Rows[len(r.Rows)-1]
	s20 := parseSpeedup(t, last[1])
	s320 := parseSpeedup(t, last[3])
	if s320 < s20 {
		t.Errorf("r=320 speedup %g below r=20 speedup %g", s320, s20)
	}
	if s320 < 64 {
		t.Errorf("r=320 speedup at 128 cores = %g, want near-linear", s320)
	}
}

func TestFig12FusedBeatsTwoPass(t *testing.T) {
	sc := quick(t)
	r, err := Fig12(sc)
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		fused := parseSpeedup(t, row[1])
		twoPass := parseSpeedup(t, row[2])
		if fused < twoPass {
			t.Errorf("cores=%s: fused %g below two-pass %g", row[0], fused, twoPass)
		}
	}
	// Near-linear at 256 cores, echoing the paper's 263.94x (modelled
	// without the cache superlinearity).
	last := parseSpeedup(t, r.Rows[len(r.Rows)-1][1])
	if last < 128 {
		t.Errorf("fused speedup at 256 = %g, want near-linear", last)
	}
}

func TestAblationsReport(t *testing.T) {
	sc := quick(t)
	sc.Bins = 2000
	r, err := Ablations(sc)
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != 5 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestPrintAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	sc := quick(t)
	sc.Bins = 2000
	var buf bytes.Buffer
	if err := PrintAll(&buf, sc); err != nil {
		t.Fatalf("PrintAll: %v", err)
	}
	for _, id := range order {
		if !strings.Contains(buf.String(), strings.ToUpper(id)) {
			t.Errorf("output missing %s", id)
		}
	}
}
