package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parseq/internal/conv"
	"parseq/internal/fdr"
	"parseq/internal/mpi"
	"parseq/internal/nlmeans"
	"parseq/internal/partition"
	"parseq/internal/simdata"
)

// Ablations measures the design choices DESIGN.md calls out, head to
// head, on the scaled dataset: Algorithm 1's two boundary-adjustment
// directions, BAIX-indexed partial conversion vs a full scan, the fused
// vs two-pass FDR kernels, NL-means halo replication vs shared memory,
// and plain vs compressed BAMX conversion.
func Ablations(sc Scale) (*Report, error) {
	if err := sc.normalize(); err != nil {
		return nil, err
	}
	defer sc.cleanup()
	samPath, bamPath, err := sc.datasetPaths(0)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "ablations",
		Title:   "Design-choice ablations (measured on the scaled dataset; best of 3)",
		Columns: []string{"Ablation", "Variant A", "Variant B", "A", "B"},
	}
	measure := func(fn func() error) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	// 1. Partition boundary adjustment direction.
	f, err := os.Open(samPath)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fwd, err := measure(func() error {
		_, err := partition.SAMForward(f, 0, fi.Size(), 64)
		return err
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	bwd, err := measure(func() error {
		_, err := partition.SAMBackward(f, 0, fi.Size(), 64)
		return err
	})
	f.Close()
	if err != nil {
		return nil, err
	}
	r.AddRow("Algorithm 1 direction (64 parts)", "forward", "backward",
		fseconds(fwd.Seconds()), fseconds(bwd.Seconds()))

	// 2. Partial conversion: BAIX index vs full scan with filter.
	bamxPath := filepath.Join(sc.TmpDir, "abl.bamx")
	baixPath := filepath.Join(sc.TmpDir, "abl.baix")
	if _, err := conv.PreprocessBAMFileWorkers(bamPath, bamxPath, baixPath, sc.CodecWorkers); err != nil {
		return nil, err
	}
	region := &conv.Region{RName: "chr1", Beg: 1, End: 40000}
	indexed, err := measure(func() error {
		opts := conv.Options{Format: "bed", Cores: 1, OutDir: sc.TmpDir, OutPrefix: "abl_ix", Region: region}
		_, err := conv.ConvertBAMX(bamxPath, baixPath, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	fullScan, err := measure(func() error {
		opts := conv.Options{Format: "bed", Cores: 1, OutDir: sc.TmpDir, OutPrefix: "abl_fs"}
		_, err := conv.ConvertBAMX(bamxPath, baixPath, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("Region query (chr1:1-40000)", "BAIX binary search", "full scan",
		fseconds(indexed.Seconds()), fseconds(fullScan.Seconds()))

	// 3. FDR kernel fusion.
	histData := simdata.Histogram(sc.Bins, 201)
	sims := simdata.Simulations(sc.Sims, sc.Bins, 202)
	pt := float64(sc.Sims) / 4
	fused, err := measure(func() error {
		_, err := fdr.Fused(histData, sims, pt)
		return err
	})
	if err != nil {
		return nil, err
	}
	twoPass, err := measure(func() error {
		_, err := fdr.TwoPass(histData, sims, pt)
		return err
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("FDR reduction", "fused (Alg. 2)", "two-pass",
		fseconds(fused.Seconds()), fseconds(twoPass.Seconds()))

	// 4. NL-means halo replication vs shared-memory workers.
	p := nlmeans.Params{R: 20, L: 15, Sigma: 10}
	v := histData
	if len(v) > 8000 {
		v = v[:8000]
	}
	halo, err := measure(func() error {
		return mpi.Run(4, func(c *mpi.Comm) error {
			_, err := nlmeans.DenoiseDistributed(c, v, p)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	shared, err := measure(func() error {
		_, err := nlmeans.DenoiseParallel(v, p, 4)
		return err
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("NL-means boundaries (4 ranks)", "replicated halo", "shared memory",
		fseconds(halo.Seconds()), fseconds(shared.Seconds()))

	// 5. Plain vs compressed BAMX conversion.
	bamzPath := filepath.Join(sc.TmpDir, "abl.bamz")
	if _, err := conv.CompressBAMXFileWorkers(bamxPath, bamzPath, 512, sc.CodecWorkers); err != nil {
		return nil, err
	}
	plain, err := measure(func() error {
		_, err := conv.ConvertBAMX(bamxPath, baixPath, conv.Options{
			Format: "bed", Cores: 1, OutDir: sc.TmpDir, OutPrefix: "abl_px",
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	compressed, err := measure(func() error {
		// CodecWorkers pinned to 1: this ablation isolates the inherent
		// decompression cost of BAMZ, so block readahead stays off.
		_, err := conv.ConvertBAMZ(bamzPath, baixPath, conv.Options{
			Format: "bed", Cores: 1, OutDir: sc.TmpDir, OutPrefix: "abl_pz", CodecWorkers: 1,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	xi := fileSize(bamxPath)
	zi := fileSize(bamzPath)
	r.AddRow("BAMX storage (full→BED)", "plain", "compressed (BAMZ)",
		fseconds(plain.Seconds()), fseconds(compressed.Seconds()))
	r.Notes = append(r.Notes,
		fmt.Sprintf("BAMZ is %d of %d bytes (%.0f%% of plain BAMX)", zi, xi, 100*float64(zi)/float64(xi)),
		"go test -bench=Ablation . runs the same comparisons under testing.B")
	return r, nil
}
