// Package experiments regenerates every table and figure of the paper's
// evaluation (Table I, Figures 6-12): it generates the scaled synthetic
// workload, runs the real Go implementations to measure single-core phase
// costs and verify correctness, and extrapolates multi-core behaviour
// with the calibrated cluster model (see internal/cluster for why: the
// paper's 256-core testbed is simulated on this machine).
//
// Each experiment returns a Report that prints as an aligned text table
// with the paper's reference values alongside the reproduced ones.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string // "table1", "fig6", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(r.Columns); err != nil {
		return err
	}
	var rule []string
	for _, width := range widths {
		rule = append(rule, strings.Repeat("-", width))
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// fseconds formats seconds compactly.
func fseconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

// fspeedup formats a speedup factor.
func fspeedup(s float64) string { return fmt.Sprintf("%.2fx", s) }
