package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// The runtime sampler: a lightweight goroutine that periodically reads
// runtime/metrics and publishes the results as go.* gauges on a
// registry, so heap footprint, GC effort, goroutine count and
// scheduling latency ride the same /metrics scrape (and the same
// cross-rank telemetry deltas) as the pipeline's own counters.

// samplerGauges maps runtime/metrics names onto the stable go.* gauge
// names in the canonical inventory. Units are converted to the gauge's
// declared unit (seconds → ns where the name says _ns).
var samplerGauges = []struct {
	sample string
	gauge  string
	toNS   bool // value is float64 seconds; publish nanoseconds
}{
	{"/sched/goroutines:goroutines", "go.goroutines", false},
	{"/memory/classes/heap/objects:bytes", "go.heap_objects_bytes", false},
	{"/memory/classes/total:bytes", "go.mem_total_bytes", false},
	{"/gc/cycles/total:gc-cycles", "go.gc_cycles", false},
	{"/sync/mutex/wait/total:seconds", "go.mutex_wait_ns", true},
	{"/cpu/classes/gc/total:cpu-seconds", "go.gc_cpu_ns", true},
	{"/gc/pauses:seconds", "go.gc_pause_total_ns", true}, // histogram: sum estimate
}

// schedLatencySample is the scheduler-latency histogram the sampler
// summarises into go.sched_latency_p50_ns / p99.
const schedLatencySample = "/sched/latencies:seconds"

// float64Histogram quantile: walk buckets until the cumulative count
// crosses q·total, report that bucket's upper bound in seconds.
func histFloat64Quantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			// Bucket i spans Buckets[i]..Buckets[i+1]; use the upper
			// bound, falling back past the +Inf edge.
			if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
				return h.Buckets[i+1]
			}
			if !isInf(h.Buckets[i]) {
				return h.Buckets[i]
			}
			return 0
		}
	}
	return 0
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }

// histFloat64Sum estimates a Float64Histogram's total as Σ count·mid.
func histFloat64Sum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if isInf(lo) {
			lo = hi
		}
		if isInf(hi) {
			hi = lo
		}
		sum += float64(c) * (lo + hi) / 2
	}
	return sum
}

// SampleRuntimeGauges reads runtime/metrics once and publishes the go.*
// gauges on r. Exported so one-shot contexts (tests, final snapshots)
// can refresh the gauges without running the sampler goroutine.
func SampleRuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, 0, len(samplerGauges)+1)
	for _, sg := range samplerGauges {
		samples = append(samples, metrics.Sample{Name: sg.sample})
	}
	samples = append(samples, metrics.Sample{Name: schedLatencySample})
	metrics.Read(samples)
	for i, sg := range samplerGauges {
		v := samples[i].Value
		var f float64
		switch v.Kind() {
		case metrics.KindUint64:
			f = float64(v.Uint64())
		case metrics.KindFloat64:
			f = v.Float64()
		case metrics.KindFloat64Histogram:
			f = histFloat64Sum(v.Float64Histogram())
		default:
			continue // metric not exported by this Go version
		}
		if sg.toNS {
			f *= 1e9
		}
		r.Gauge(sg.gauge).Set(int64(f))
	}
	if lat := samples[len(samples)-1]; lat.Value.Kind() == metrics.KindFloat64Histogram {
		h := lat.Value.Float64Histogram()
		r.Gauge("go.sched_latency_p50_ns").Set(int64(histFloat64Quantile(h, 0.50) * 1e9))
		r.Gauge("go.sched_latency_p99_ns").Set(int64(histFloat64Quantile(h, 0.99) * 1e9))
	}
}

// StartRuntimeSampler samples the runtime into r's go.* gauges every
// interval (≤ 0 selects 1s) until the returned stop function is called.
// Stop performs one final sample so short runs still report.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	SampleRuntimeGauges(r)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntimeGauges(r)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			SampleRuntimeGauges(r)
		})
	}
}
